package rex

import (
	"context"
	"testing"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

func TestClusterQuickstart(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 3})
	c.MustCreateTable("items", Schema("k:Integer", "v:Double"), 0)
	var rows []Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, NewTuple(int64(i), float64(i)))
	}
	c.MustLoad("items", rows)
	res, err := c.Session().QueryCtx(context.Background(), `SELECT sum(v), count(*) FROM items WHERE k >= 50`)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := types.AsFloat(res.Tuples[0][0])
	n, _ := types.AsInt(res.Tuples[0][1])
	if n != 50 || sum != float64(50+99)*50/2 {
		t.Fatalf("sum=%v n=%v", sum, n)
	}
	if c.BytesShipped() <= 0 {
		t.Fatal("bytes shipped should be positive")
	}
}

func TestClusterCustomHandlersRecursive(t *testing.T) {
	// Connected reachability via custom while handler through the public
	// API only.
	c := NewCluster(ClusterConfig{Nodes: 2})
	c.MustCreateTable("graph", Schema("srcId:Integer", "destId:Integer"), 0)
	c.MustCreateTable("seed", Schema("srcId:Integer", "dist:Double"), 0)
	g := datagen.DBPediaGraph(100, 5)
	c.MustLoad("graph", g.Edges)
	c.MustLoad("seed", []Tuple{NewTuple(int64(0), 0.0)})

	err := c.JoinHandler("hops", Schema("nbr:Integer", "d:Double"),
		func(left, right *TupleSet, d Delta, fromLeft bool) ([]Delta, error) {
			if fromLeft {
				left.Add(d.Tup)
				return nil, nil
			}
			dist, _ := types.AsFloat(d.Tup[1])
			var out []Delta
			for _, e := range left.Tuples {
				out = append(out, Update(NewTuple(e[1], dist+1)))
			}
			return out, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	err = c.WhileHandler("keepmin", func(rel *TupleSet, d Delta) ([]Delta, error) {
		nd, _ := types.AsFloat(d.Tup[1])
		if rel.Len() > 0 {
			cur, _ := types.AsFloat(rel.Tuples[0][1])
			if nd >= cur {
				return nil, nil
			}
			rel.ReplaceFirst(rel.Tuples[0], NewTuple(d.Tup[0], nd))
		} else {
			rel.Add(NewTuple(d.Tup[0], nd))
		}
		return []Delta{Update(NewTuple(d.Tup[0], nd))}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.Session().QueryCtx(context.Background(), `
WITH SP (srcId, dist) AS (
  SELECT srcId, dist FROM seed
) UNION ALL UNTIL FIXPOINT BY srcId USING keepmin (
  SELECT nbr, min(d)
  FROM (SELECT hops(srcId, dist).{nbr, d}
        FROM graph, SP WHERE graph.srcId = SP.srcId GROUP BY srcId)
  GROUP BY nbr)`, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 100 {
		t.Fatalf("reached %d vertices, want 100", len(res.Tuples))
	}
}

func TestRegisterFuncAndUse(t *testing.T) {
	c := NewCluster(ClusterConfig{})
	c.MustCreateTable("t", Schema("x:Integer"), 0)
	c.MustLoad("t", []Tuple{NewTuple(int64(2)), NewTuple(int64(5))})
	err := c.RegisterFunc("sq", []types.Kind{types.KindInt}, types.KindInt, true,
		func(args []Value) (Value, error) {
			n, _ := types.AsInt(args[0])
			return n * n, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Session().QueryCtx(context.Background(), `SELECT sq(x) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, tup := range res.Tuples {
		n, _ := types.AsInt(tup[0])
		got[n] = true
	}
	if !got[4] || !got[25] {
		t.Fatalf("got %v", got)
	}
}

func TestKillPanicsOnBadNode(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Kill(99) must panic")
		}
	}()
	c.Kill(99)
}
