package rex_test

import (
	"context"
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/server"
)

// Example_serverMode runs a rexd server in-process and connects two
// client sessions to it — the deployment shape `cmd/rexd` serves over
// real machine boundaries. Both clients send the same query text, so the
// server compiles it once into the shared plan cache and the second
// session's execution is a cache hit.
func Example_serverMode() {
	ctx := context.Background()

	// Production deployments start this as its own process:
	//
	//	rexd -listen 127.0.0.1:7400 -stats 127.0.0.1:7401
	srv, err := server.New(server.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// Clients open ordinary sessions against the server address; every
	// Session API — QueryCtx, Stream, Prepare, Subscribe, Insert — routes
	// over the connection.
	addr := ln.Addr().String()
	alice, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	if err := alice.CreateTable("items", rex.Schema("k:Integer", "v:Double"), 0); err != nil {
		log.Fatal(err)
	}
	var rows []rex.Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, rex.NewTuple(int64(i), float64(i)))
	}
	if err := alice.Load("items", rows); err != nil {
		log.Fatal(err)
	}

	bob, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	const q = `SELECT count(*) FROM items WHERE k >= 50`
	for _, sess := range []*rex.Session{alice, bob} {
		res, err := sess.QueryCtx(ctx, q, rex.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("count=%v\n", res.Tuples[0][0])
	}

	// The server's counters show one compile serving both sessions.
	stats, err := alice.ServerStats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queries=%d compiles=%d hits>0=%v\n",
		stats.Queries, stats.Compiles, stats.PlanCacheHits > 0)
	// Output:
	// count=50
	// count=50
	// queries=2 compiles=1 hits>0=true
}
