package rex_test

import (
	"context"
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/server"
)

// Example_serverMode runs a rexd server in-process and connects two
// client sessions to it — the deployment shape `cmd/rexd` serves over
// real machine boundaries. Both clients send the same query text, so the
// server compiles it once into the shared plan cache and the second
// session's execution is a cache hit.
func Example_serverMode() {
	ctx := context.Background()

	// Production deployments start this as its own process:
	//
	//	rexd -listen 127.0.0.1:7400 -stats 127.0.0.1:7401
	srv, err := server.New(server.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// Clients open ordinary sessions against the server address; every
	// Session API — QueryCtx, Stream, Prepare, Subscribe, Insert — routes
	// over the connection.
	addr := ln.Addr().String()
	alice, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	if err := alice.CreateTable("items", rex.Schema("k:Integer", "v:Double"), 0); err != nil {
		log.Fatal(err)
	}
	var rows []rex.Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, rex.NewTuple(int64(i), float64(i)))
	}
	if err := alice.Load("items", rows); err != nil {
		log.Fatal(err)
	}

	bob, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	const q = `SELECT count(*) FROM items WHERE k >= 50`
	for _, sess := range []*rex.Session{alice, bob} {
		res, err := sess.QueryCtx(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("count=%v\n", res.Tuples[0][0])
	}

	// The server's counters show one compile serving both sessions.
	stats, err := alice.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queries=%d compiles=%d hits>0=%v\n",
		stats.Server.Queries, stats.Server.Compiles, stats.Server.PlanCacheHits > 0)
	// Output:
	// count=50
	// count=50
	// queries=2 compiles=1 hits>0=true
}

// Example_tenantScheduling shows the per-query options API against a
// multi-tenant server: sessions carry a default tenant id, individual
// queries can override it and set a scheduling priority, and the unified
// Stats snapshot reports per-tenant admission counters. A tenant at its
// inflight quota is rejected immediately with rex.ErrTenantBusy —
// errors.Is-testable after the wire round trip — instead of crowding the
// shared queue.
func Example_tenantScheduling() {
	ctx := context.Background()

	// rexd -sub-pools 2 -tenant-quotas batch=2 is the process form.
	srv, err := server.New(server.Config{
		Nodes:        2,
		SubPools:     2, // two queries execute genuinely in parallel
		TenantQuotas: map[string]int{"batch": 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// The session's tenant is set at Open; every request it sends is
	// admitted and scheduled under that tenant's lane.
	ops, err := rex.Open(ctx, rex.WithServer(ln.Addr().String()), rex.WithServerTenant("ops"))
	if err != nil {
		log.Fatal(err)
	}
	defer ops.Close()
	if err := ops.CreateTable("events", rex.Schema("k:Integer", "n:Integer"), 0); err != nil {
		log.Fatal(err)
	}
	var rows []rex.Tuple
	for i := 0; i < 60; i++ {
		rows = append(rows, rex.NewTuple(int64(i%6), int64(i)))
	}
	if err := ops.Load("events", rows); err != nil {
		log.Fatal(err)
	}

	const q = `SELECT k, count(*) FROM events GROUP BY k`
	// An urgent query jumps the tenant's lane ahead of normal traffic.
	res, err := ops.QueryCtx(ctx, q, rex.WithPriority(rex.PriorityHigh))
	if err != nil {
		log.Fatal(err)
	}
	// The same session can file work under another tenant's quota —
	// here a background scan billed to (and throttled as) "batch".
	if _, err := ops.QueryCtx(ctx, q, rex.WithTenant("batch"), rex.WithPriority(rex.PriorityLow)); err != nil {
		log.Fatal(err)
	}

	st, err := ops.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("groups=%d sub_pools=%d\n", len(res.Tuples), st.Server.SubPools)
	fmt.Printf("ops_admitted>0=%v batch_admitted>0=%v quota_rejections=%d\n",
		st.Server.Tenants["ops"].Admitted > 0,
		st.Server.Tenants["batch"].Admitted > 0,
		st.Server.QuotaRejections)
	// Output:
	// groups=6 sub_pools=2
	// ops_admitted>0=true batch_admitted>0=true quota_rejections=0
}
