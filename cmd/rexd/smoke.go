package main

import (
	"context"
	"fmt"
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/types"
)

// Smoke workload shape: an immutable graph table the ad-hoc clients
// hammer (identical query texts across clients, so the plan cache must
// hit), and a mutable feed table one subscriber watches while ingesting.
const (
	smokeEdges    = 240
	smokeVerts    = 40
	smokeFeedKeys = 7

	smokeQ1       = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	smokeQ2       = `SELECT destId FROM graph WHERE srcId > 25`
	smokePrepared = `SELECT count(*) FROM graph WHERE srcId > $1`
	smokeSubQ     = `SELECT k, count(*) FROM feed GROUP BY k`
)

func smokeGraph() []rex.Tuple {
	edges := make([]rex.Tuple, smokeEdges)
	for i := range edges {
		edges[i] = rex.NewTuple(int64(i%smokeVerts), int64((i*7+3)%smokeVerts))
	}
	return edges
}

// smokeFeed returns the feed rows ingested in round r (r = 0 is the
// initial load).
func smokeFeed(r int) []rex.Tuple {
	rows := make([]rex.Tuple, smokeFeedKeys)
	for i := range rows {
		rows[i] = rex.NewTuple(int64((i+r)%smokeFeedKeys), int64(r*100+i))
	}
	return rows
}

type smokeRun struct {
	addr    string
	clients int
	iters   int
	ctx     context.Context

	admin *rex.Session // server session that stages the tables
	local *rex.Session // direct in-proc session computing reference hashes

	refQ1, refQ2 string
	refPrepared  map[int64]string
	refSubFinal  string
}

func newSmokeRun(ctx context.Context, addr string, clients, iters int) (*smokeRun, error) {
	r := &smokeRun{addr: addr, clients: clients, iters: iters, ctx: ctx, refPrepared: map[int64]string{}}

	admin, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		return nil, die("dial %s: %w", addr, err)
	}
	r.admin = admin
	local, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		admin.Close()
		return nil, err
	}
	r.local = local

	// Stage identical data on the server and on the local reference
	// session; reference hashes come from direct (serverless) execution,
	// so the gate proves wire results match in-process results.
	for _, s := range []*rex.Session{admin, local} {
		if err := s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
			return nil, err
		}
		if err := s.CreateTable("feed", rex.Schema("k:Integer", "v:Integer"), 0); err != nil {
			return nil, err
		}
		if err := s.Load("graph", smokeGraph()); err != nil {
			return nil, err
		}
		if err := s.Load("feed", smokeFeed(0)); err != nil {
			return nil, err
		}
	}
	if r.refQ1, err = r.localHash(smokeQ1); err != nil {
		return nil, err
	}
	if r.refQ2, err = r.localHash(smokeQ2); err != nil {
		return nil, err
	}
	stmt, err := local.Prepare(smokePrepared)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 5; i++ {
		res, err := stmt.QueryCtx(ctx, rex.Options{}, int64(i))
		if err != nil {
			return nil, err
		}
		r.refPrepared[int64(i)] = bench.ResultHash(res.Tuples)
	}
	// The subscriber ingests rounds 1..iters into feed; the reference is
	// the aggregate over everything.
	for round := 1; round <= iters; round++ {
		if err := local.Load("feed", smokeFeed(round)); err != nil {
			return nil, err
		}
	}
	if r.refSubFinal, err = r.localHash(smokeSubQ); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *smokeRun) localHash(q string) (string, error) {
	res, err := r.local.QueryCtx(r.ctx, q, rex.Options{})
	if err != nil {
		return "", err
	}
	return bench.ResultHash(res.Tuples), nil
}

func (r *smokeRun) close() {
	if r.admin != nil {
		r.admin.Close()
	}
	if r.local != nil {
		r.local.Close()
	}
}

// run drives the concurrent clients: one subscriber+ingester, one
// prepared-statement client, the rest ad-hoc.
func (r *smokeRun) run() error {
	var wg sync.WaitGroup
	errc := make(chan error, r.clients)
	for i := 0; i < r.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch {
			case i == 0:
				err = r.runSubscriber()
			case i == 1:
				err = r.runPrepared(i)
			default:
				err = r.runAdhoc(i)
			}
			if err != nil {
				errc <- fmt.Errorf("client %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err // first failure gates the whole run
	}
	return nil
}

func (r *smokeRun) runAdhoc(i int) error {
	s, err := rex.Open(r.ctx, rex.WithServer(r.addr))
	if err != nil {
		return err
	}
	defer s.Close()
	for it := 0; it < r.iters; it++ {
		for _, q := range []struct{ src, want string }{{smokeQ1, r.refQ1}, {smokeQ2, r.refQ2}} {
			res, err := s.QueryCtx(r.ctx, q.src, rex.Options{})
			if err != nil {
				return err
			}
			if h := bench.ResultHash(res.Tuples); h != q.want {
				return die("iter %d: hash %s, want %s (query %q)", it, h, q.want, q.src)
			}
		}
	}
	return nil
}

func (r *smokeRun) runPrepared(i int) error {
	s, err := rex.Open(r.ctx, rex.WithServer(r.addr))
	if err != nil {
		return err
	}
	defer s.Close()
	stmt, err := s.Prepare(smokePrepared)
	if err != nil {
		return err
	}
	for it := 0; it < r.iters; it++ {
		arg := int64(it % 5)
		res, err := stmt.QueryCtx(r.ctx, rex.Options{}, arg)
		if err != nil {
			return err
		}
		if h := bench.ResultHash(res.Tuples); h != r.refPrepared[arg] {
			return die("prepared($%d): hash %s, want %s", arg, h, r.refPrepared[arg])
		}
	}
	return nil
}

// runSubscriber installs the standing query, ingests iters rounds, closes
// the subscription, and checks the folded stream against the reference
// aggregate over all ingested data.
func (r *smokeRun) runSubscriber() error {
	s, err := rex.Open(r.ctx, rex.WithServer(r.addr))
	if err != nil {
		return err
	}
	defer s.Close()
	sub, err := s.Subscribe(r.ctx, smokeSubQ, rex.Options{})
	if err != nil {
		return err
	}
	for round := 1; round <= r.iters; round++ {
		if err := s.Insert("feed", smokeFeed(round)...); err != nil {
			sub.Close()
			return die("ingest round %d: %w", round, err)
		}
	}
	if err := sub.Close(); err != nil {
		return err
	}
	<-sub.Done()
	if err := sub.Err(); err != nil {
		return die("subscription ended with: %w", err)
	}
	folded := foldStream(sub.Stream())
	if h := bench.ResultHash(folded); h != r.refSubFinal {
		return die("folded subscription hash %s, want %s", h, r.refSubFinal)
	}
	if len(sub.Rounds()) == 0 {
		return die("subscription reported no rounds")
	}
	return nil
}

// foldStream folds a finished subscription stream's buffered delta
// batches into the final relation.
func foldStream(st *rex.DeltaStream) []rex.Tuple {
	type entry struct {
		tup   rex.Tuple
		count int
	}
	state := map[string]*entry{}
	for {
		b, ok := st.TryNext()
		if !ok {
			break
		}
		for _, d := range b.Deltas {
			k := string(types.AppendTuple(nil, d.Tup))
			e := state[k]
			if e == nil {
				e = &entry{tup: d.Tup}
				state[k] = e
			}
			switch d.Op {
			case types.OpInsert:
				e.count++
			case types.OpDelete:
				e.count--
			default: // replace: new value wins outright
				e.count = 1
			}
		}
	}
	var out []rex.Tuple
	for _, e := range state {
		for i := 0; i < e.count; i++ {
			out = append(out, e.tup)
		}
	}
	return out
}

// gate asserts the server-side counters: the plan cache must have been
// hit, and compilations must be rarer than queries.
func (r *smokeRun) gate() error {
	st, err := r.admin.ServerStats(r.ctx)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: sessions=%d queries=%d compiles=%d cache_hits=%d cache_misses=%d subs=%d rounds=%d ingests=%d rejected=%d\n",
		st.Sessions, st.Queries, st.Compiles, st.PlanCacheHits, st.PlanCacheMisses,
		st.Subscriptions, st.Rounds, st.Ingests, st.Rejected)
	if st.PlanCacheHits == 0 {
		return die("plan cache was never hit (hits=0, misses=%d)", st.PlanCacheMisses)
	}
	if st.Compiles >= st.Queries {
		return die("compiles (%d) not below queries (%d): plan cache is not amortizing", st.Compiles, st.Queries)
	}
	if st.Rejected != 0 {
		return die("server rejected %d requests during an under-capacity smoke", st.Rejected)
	}
	fmt.Println("smoke: OK")
	return nil
}
