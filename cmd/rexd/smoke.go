package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/types"
)

// Smoke workload shape: an immutable graph table the ad-hoc clients
// hammer (identical query texts across clients, so the plan cache must
// hit), a mutable feed table one subscriber watches while ingesting, and
// a wide big table whose aggregation is heavy enough to measure whether
// K admitted queries genuinely overlap on the sub-pooled engine.
//
// The 8 mixed clients are spread across 3 tenants with mixed priorities,
// exercising the per-tenant lanes of the scheduler; a separate storm
// phase drives a deliberately throttled tenant into quota rejections.
const (
	smokeEdges    = 240
	smokeVerts    = 40
	smokeFeedKeys = 7
	smokeBigRows  = 120000
	smokeBigKeys  = 64

	smokeQ1       = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	smokeQ2       = `SELECT destId FROM graph WHERE srcId > 25`
	smokePrepared = `SELECT count(*) FROM graph WHERE srcId > $1`
	smokeSubQ     = `SELECT k, count(*) FROM feed GROUP BY k`
	smokeHeavyQ   = `SELECT srcId, sum(destId), count(*) FROM big GROUP BY srcId`

	// overlapFactor is the CI gate: wall-clock for K concurrent heavy
	// queries must come in under this fraction of the sequential sum.
	overlapFactor = 0.6
	overlapK      = 4
)

// smokeTenants are the tenant ids the 8 mixed clients rotate through.
var smokeTenants = []string{"team-red", "team-green", "team-blue"}

func smokeGraph() []rex.Tuple {
	edges := make([]rex.Tuple, smokeEdges)
	for i := range edges {
		edges[i] = rex.NewTuple(int64(i%smokeVerts), int64((i*7+3)%smokeVerts))
	}
	return edges
}

// smokeFeed returns the feed rows ingested in round r (r = 0 is the
// initial load).
func smokeFeed(r int) []rex.Tuple {
	rows := make([]rex.Tuple, smokeFeedKeys)
	for i := range rows {
		rows[i] = rex.NewTuple(int64((i+r)%smokeFeedKeys), int64(r*100+i))
	}
	return rows
}

func smokeBig() []rex.Tuple {
	rows := make([]rex.Tuple, smokeBigRows)
	for i := range rows {
		rows[i] = rex.NewTuple(int64(i%smokeBigKeys), int64((i*2654435761)%1000003))
	}
	return rows
}

type smokeRun struct {
	addr     string
	clients  int
	iters    int
	throttle string // tenant expected to hit quota rejections ("" = skip)
	ctx      context.Context

	admin *rex.Session // server session that stages the tables
	local *rex.Session // direct in-proc session computing reference hashes

	refQ1, refQ2 string
	refHeavy     string
	refPrepared  map[int64]string
	refSubFinal  string
}

func newSmokeRun(ctx context.Context, addr string, clients, iters int, throttle string) (*smokeRun, error) {
	r := &smokeRun{addr: addr, clients: clients, iters: iters, throttle: throttle, ctx: ctx, refPrepared: map[int64]string{}}

	admin, err := rex.Open(ctx, rex.WithServer(addr))
	if err != nil {
		return nil, die("dial %s: %w", addr, err)
	}
	r.admin = admin
	local, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		admin.Close()
		return nil, err
	}
	r.local = local

	// Stage identical data on the server and on the local reference
	// session; reference hashes come from direct (serverless) execution,
	// so the gate proves wire results match in-process results.
	for _, s := range []*rex.Session{admin, local} {
		if err := s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
			return nil, err
		}
		if err := s.CreateTable("feed", rex.Schema("k:Integer", "v:Integer"), 0); err != nil {
			return nil, err
		}
		if err := s.CreateTable("big", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
			return nil, err
		}
		if err := s.Load("graph", smokeGraph()); err != nil {
			return nil, err
		}
		if err := s.Load("feed", smokeFeed(0)); err != nil {
			return nil, err
		}
		if err := s.Load("big", smokeBig()); err != nil {
			return nil, err
		}
	}
	if r.refQ1, err = r.localHash(smokeQ1); err != nil {
		return nil, err
	}
	if r.refQ2, err = r.localHash(smokeQ2); err != nil {
		return nil, err
	}
	if r.refHeavy, err = r.localHash(smokeHeavyQ); err != nil {
		return nil, err
	}
	stmt, err := local.Prepare(smokePrepared)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 5; i++ {
		res, err := stmt.QueryCtx(ctx, rex.Options{}, int64(i))
		if err != nil {
			return nil, err
		}
		r.refPrepared[int64(i)] = bench.ResultHash(res.Tuples)
	}
	// The subscriber ingests rounds 1..iters into feed; the reference is
	// the aggregate over everything.
	for round := 1; round <= iters; round++ {
		if err := local.Load("feed", smokeFeed(round)); err != nil {
			return nil, err
		}
	}
	if r.refSubFinal, err = r.localHash(smokeSubQ); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *smokeRun) localHash(q string) (string, error) {
	res, err := r.local.QueryCtx(r.ctx, q)
	if err != nil {
		return "", err
	}
	return bench.ResultHash(res.Tuples), nil
}

func (r *smokeRun) close() {
	if r.admin != nil {
		r.admin.Close()
	}
	if r.local != nil {
		r.local.Close()
	}
}

// tenantFor spreads the mixed clients across the three smoke tenants.
func tenantFor(i int) string { return smokeTenants[i%len(smokeTenants)] }

// prioFor mixes priorities deterministically: low, normal, high, low, ...
func prioFor(i int) int { return i%3 - 1 }

// dialTenant opens one client session bound to client i's tenant.
func (r *smokeRun) dialTenant(i int) (*rex.Session, error) {
	return rex.Open(r.ctx, rex.WithServer(r.addr), rex.WithServerTenant(tenantFor(i)))
}

// run drives the concurrent clients: one subscriber+ingester, one
// prepared-statement client, the rest ad-hoc — spread over 3 tenants
// with mixed per-query priorities.
func (r *smokeRun) run() error {
	var wg sync.WaitGroup
	errc := make(chan error, r.clients)
	for i := 0; i < r.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch {
			case i == 0:
				err = r.runSubscriber(i)
			case i == 1:
				err = r.runPrepared(i)
			default:
				err = r.runAdhoc(i)
			}
			if err != nil {
				errc <- fmt.Errorf("client %d (tenant %s): %w", i, tenantFor(i), err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err // first failure gates the whole run
	}
	return nil
}

func (r *smokeRun) runAdhoc(i int) error {
	s, err := r.dialTenant(i)
	if err != nil {
		return err
	}
	defer s.Close()
	for it := 0; it < r.iters; it++ {
		for _, q := range []struct{ src, want string }{{smokeQ1, r.refQ1}, {smokeQ2, r.refQ2}} {
			res, err := s.QueryCtx(r.ctx, q.src, rex.WithPriority(prioFor(i+it)))
			if err != nil {
				return err
			}
			if h := bench.ResultHash(res.Tuples); h != q.want {
				return die("iter %d: hash %s, want %s (query %q)", it, h, q.want, q.src)
			}
		}
	}
	return nil
}

func (r *smokeRun) runPrepared(i int) error {
	s, err := r.dialTenant(i)
	if err != nil {
		return err
	}
	defer s.Close()
	stmt, err := s.Prepare(smokePrepared, rex.WithPriority(prioFor(i)))
	if err != nil {
		return err
	}
	for it := 0; it < r.iters; it++ {
		arg := int64(it % 5)
		res, err := stmt.QueryCtx(r.ctx, rex.Options{}, arg)
		if err != nil {
			return err
		}
		if h := bench.ResultHash(res.Tuples); h != r.refPrepared[arg] {
			return die("prepared($%d): hash %s, want %s", arg, h, r.refPrepared[arg])
		}
	}
	return nil
}

// runSubscriber installs the standing query, ingests iters rounds, closes
// the subscription, and checks the folded stream against the reference
// aggregate over all ingested data. On the sub-pool server the standing
// query is a RESIDENT dataflow: each ingest round costs one incremental
// pump round, not a cached-plan re-run.
func (r *smokeRun) runSubscriber(i int) error {
	s, err := r.dialTenant(i)
	if err != nil {
		return err
	}
	defer s.Close()
	sub, err := s.Subscribe(r.ctx, smokeSubQ, rex.WithPriority(rex.PriorityHigh))
	if err != nil {
		return err
	}
	for round := 1; round <= r.iters; round++ {
		if err := s.Insert("feed", smokeFeed(round)...); err != nil {
			sub.Close()
			return die("ingest round %d: %w", round, err)
		}
	}
	if err := sub.Close(); err != nil {
		return err
	}
	<-sub.Done()
	if err := sub.Err(); err != nil {
		return die("subscription ended with: %w", err)
	}
	folded := foldStream(sub.Stream())
	if h := bench.ResultHash(folded); h != r.refSubFinal {
		return die("folded subscription hash %s, want %s", h, r.refSubFinal)
	}
	if len(sub.Rounds()) == 0 {
		return die("subscription reported no rounds")
	}
	return nil
}

// overlap measures true intra-server concurrency: overlapK identical
// heavy aggregations run once sequentially on a single session, then
// concurrently on overlapK sessions. On a multi-core pool with sub-pools
// the concurrent wall-clock must land below overlapFactor of the
// sequential sum. Every result hash is checked against direct execution
// in both phases. The timing gate only arms on hardware that can show
// overlap (>= 4 CPUs, >= 2 sub-pools); the hash gates always apply.
func (r *smokeRun) overlap(subPools int64) error {
	check := func(res *rex.Result, err error) error {
		if err != nil {
			return err
		}
		if h := bench.ResultHash(res.Tuples); h != r.refHeavy {
			return die("heavy query hash %s, want %s", h, r.refHeavy)
		}
		return nil
	}
	// Warm the plan cache so neither phase pays the one-time compile.
	if err := check(r.admin.QueryCtx(r.ctx, smokeHeavyQ)); err != nil {
		return err
	}

	sessions := make([]*rex.Session, overlapK)
	for i := range sessions {
		s, err := r.dialTenant(i)
		if err != nil {
			return err
		}
		defer s.Close()
		sessions[i] = s
	}

	gateArmed := runtime.NumCPU() >= 4 && subPools >= 2
	var bestRatio float64
	const attempts = 3
	for attempt := 1; attempt <= attempts; attempt++ {
		seqStart := time.Now()
		for i := 0; i < overlapK; i++ {
			if err := check(sessions[0].QueryCtx(r.ctx, smokeHeavyQ)); err != nil {
				return err
			}
		}
		seq := time.Since(seqStart)

		var wg sync.WaitGroup
		errc := make(chan error, overlapK)
		conStart := time.Now()
		for i := 0; i < overlapK; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := check(sessions[i].QueryCtx(r.ctx, smokeHeavyQ)); err != nil {
					errc <- err
				}
			}(i)
		}
		wg.Wait()
		con := time.Since(conStart)
		close(errc)
		for err := range errc {
			return err
		}

		ratio := float64(con) / float64(seq)
		if attempt == 1 || ratio < bestRatio {
			bestRatio = ratio
		}
		fmt.Printf("smoke: overlap attempt %d: %d queries sequential=%v concurrent=%v ratio=%.2f (cpus=%d sub-pools=%d)\n",
			attempt, overlapK, seq.Round(time.Millisecond), con.Round(time.Millisecond), ratio, runtime.NumCPU(), subPools)
		if !gateArmed || bestRatio < overlapFactor {
			break // gate satisfied (or informational only)
		}
	}
	if gateArmed && bestRatio >= overlapFactor {
		return die("no overlap: concurrent/sequential ratio %.2f >= %.2f on %d CPUs with %d sub-pools",
			bestRatio, overlapFactor, runtime.NumCPU(), subPools)
	}
	if !gateArmed {
		fmt.Printf("smoke: overlap gate skipped (cpus=%d sub-pools=%d)\n", runtime.NumCPU(), subPools)
	}
	return nil
}

// quotaStorm bursts concurrent heavy queries from the throttled tenant
// until the server's per-tenant quota pushes back: at least one request
// must be rejected with rex.ErrTenantBusy (checked via errors.Is after
// the wire round trip), and every non-rejected request must still return
// the correct result.
func (r *smokeRun) quotaStorm() error {
	if r.throttle == "" {
		return nil
	}
	const stormSessions = 4
	sessions := make([]*rex.Session, stormSessions)
	for i := range sessions {
		s, err := rex.Open(r.ctx, rex.WithServer(r.addr), rex.WithServerTenant(r.throttle))
		if err != nil {
			return err
		}
		defer s.Close()
		sessions[i] = s
	}
	for attempt := 0; attempt < 10; attempt++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var busy int
		errc := make(chan error, stormSessions)
		for _, s := range sessions {
			wg.Add(1)
			go func(s *rex.Session) {
				defer wg.Done()
				res, err := s.QueryCtx(r.ctx, smokeHeavyQ)
				switch {
				case errors.Is(err, rex.ErrTenantBusy):
					mu.Lock()
					busy++
					mu.Unlock()
				case err != nil:
					errc <- die("storm query failed with a non-quota error: %w", err)
				default:
					if h := bench.ResultHash(res.Tuples); h != r.refHeavy {
						errc <- die("storm query hash %s, want %s", h, r.refHeavy)
					}
				}
			}(s)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			return err
		}
		if busy > 0 {
			fmt.Printf("smoke: quota storm: %d/%d requests rejected with ErrTenantBusy for tenant %q\n",
				busy, stormSessions, r.throttle)
			return nil
		}
	}
	return die("tenant %q was never rejected — is its quota configured on the server (-tenant-quotas %s=1)?",
		r.throttle, r.throttle)
}

// foldStream folds a finished subscription stream's buffered delta
// batches into the final relation.
func foldStream(st *rex.DeltaStream) []rex.Tuple {
	type entry struct {
		tup   rex.Tuple
		count int
	}
	state := map[string]*entry{}
	bump := func(tup rex.Tuple, by int) {
		k := string(types.AppendTuple(nil, tup))
		e := state[k]
		if e == nil {
			e = &entry{tup: tup}
			state[k] = e
		}
		e.count += by
	}
	for {
		b, ok := st.TryNext()
		if !ok {
			break
		}
		for _, d := range b.Deltas {
			switch d.Op {
			case types.OpDelete:
				bump(d.Tup, -1)
			case types.OpReplace: // retract the old value, assert the new
				bump(d.Old, -1)
				bump(d.Tup, 1)
			default:
				bump(d.Tup, 1)
			}
		}
	}
	var out []rex.Tuple
	for _, e := range state {
		for i := 0; i < e.count; i++ {
			out = append(out, e.tup)
		}
	}
	return out
}

// gate asserts the server-side counters: the plan cache must have been
// hit, compilations must be rarer than queries, under-capacity traffic
// must never see ErrServerBusy, and — when a throttled tenant is
// configured — its quota rejections must be visible in the per-tenant
// stats while other tenants stay clean.
func (r *smokeRun) gate() error {
	snap, err := r.admin.Stats(r.ctx)
	if err != nil {
		return err
	}
	st := snap.Server
	if st == nil {
		return die("server session returned no server stats block")
	}
	fmt.Printf("smoke: sessions=%d queries=%d compiles=%d cache_hits=%d cache_misses=%d subs=%d rounds=%d ingests=%d rejected=%d quota_rejected=%d sub_pools=%d\n",
		st.Sessions, st.Queries, st.Compiles, st.PlanCacheHits, st.PlanCacheMisses,
		st.Subscriptions, st.Rounds, st.Ingests, st.Rejected, st.QuotaRejections, st.SubPools)
	for tn, ts := range st.Tenants {
		fmt.Printf("smoke:   tenant %-10s admitted=%d inflight=%d quota_rejected=%d\n", tn, ts.Admitted, ts.Inflight, ts.QuotaRejections)
	}
	if st.PlanCacheHits == 0 {
		return die("plan cache was never hit (hits=0, misses=%d)", st.PlanCacheMisses)
	}
	if st.Compiles >= st.Queries {
		return die("compiles (%d) not below queries (%d): plan cache is not amortizing", st.Compiles, st.Queries)
	}
	if st.Rejected != 0 {
		return die("server rejected %d requests with ErrServerBusy during an under-capacity smoke", st.Rejected)
	}
	if r.throttle != "" {
		ts, ok := st.Tenants[r.throttle]
		if !ok || ts.QuotaRejections == 0 {
			return die("throttled tenant %q shows no quota rejections", r.throttle)
		}
		for _, tn := range smokeTenants {
			if other := st.Tenants[tn]; other.QuotaRejections != 0 {
				return die("unthrottled tenant %q collected %d quota rejections", tn, other.QuotaRejections)
			}
		}
	}
	fmt.Println("smoke: OK")
	return nil
}
