// Command rexd is the multi-tenant REX query server: one process owning
// one worker pool (in-process workers, or external rexnode daemons via
// -peers) and one catalog, admitting many concurrent client sessions.
// Clients connect with rex.Open(ctx, rex.WithServer(addr)) and use the
// normal Session API; the server interleaves their queries and
// standing-query rounds fairly on the shared pool and compiles each
// distinct query text once into a cross-session plan cache.
//
// Usage:
//
//	rexd -listen 127.0.0.1:7400 -stats 127.0.0.1:7401 &
//	rexsql -server 127.0.0.1:7400          # or any rex.WithServer client
//	curl -s 127.0.0.1:7401/stats           # plan-cache hits, sessions, ...
//
// With -listen :0 the server picks a free port and announces it on
// stdout as REXD_LISTEN=<addr>.
//
// -client-smoke flips the binary into a self-test client harness: it
// drives -clients concurrent mixed sessions (ad-hoc, prepared, one
// subscriber with ingests) against -server, gates on zero errors,
// identical result hashes across clients, and a warm plan cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/rex-data/rex/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "address to serve client sessions on (use :0 for a free port)")
	stats := flag.String("stats", "", "address to serve the /stats HTTP endpoint on (empty: disabled)")
	nodes := flag.Int("nodes", 4, "in-process worker pool size (ignored with -peers)")
	peers := flag.String("peers", "", "comma-separated rexnode daemon addresses (front a distributed pool)")
	dataset := flag.String("dataset", "", "dataset to stage at startup (dbpedia|lineitem|points|galaxy)")
	size := flag.Int("size", 2000, "dataset scale")
	seed := flag.Int64("seed", 1, "dataset seed")
	handlers := flag.String("handlers", "", "delta-handler bundle to register (e.g. sssp)")
	replication := flag.Int("replication", 0, "store replication factor (0 = default)")
	dataDir := flag.String("data-dir", "", "directory for paged spill-to-disk stores (in-process pool only; empty = in-memory)")
	poolPages := flag.Int("buffer-pool-pages", 0, "buffer pool capacity in 8 KiB pages (0 = default)")
	maxSessions := flag.Int("max-sessions", 0, "concurrent client session cap (0 = default 64)")
	maxInflight := flag.Int("max-inflight", 0, "admitted interactive request cap (0 = default 16)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue cap (0 = default 64)")
	subPools := flag.Int("sub-pools", 0, "engine sub-pools: concurrently executing queries (0 = default 2; forced 1 with -peers)")
	tenantQuota := flag.Int("tenant-quota", 0, "per-tenant inflight request quota (0 = unlimited)")
	tenantQuotas := flag.String("tenant-quotas", "", "comma-separated tenant=quota overrides (e.g. acme=2,batch=8)")
	quiet := flag.Bool("quiet", false, "suppress per-session log lines")

	smoke := flag.Bool("client-smoke", false, "run as a smoke-test client harness against -server instead of serving")
	serverAddr := flag.String("server", "", "rexd address the smoke harness dials")
	clients := flag.Int("clients", 8, "smoke harness: concurrent client sessions")
	iters := flag.Int("iters", 5, "smoke harness: query iterations per ad-hoc client")
	throttle := flag.String("throttle", "", "smoke harness: tenant expected to hit quota rejections (must be quota-limited server-side; empty = skip)")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*serverAddr, *clients, *iters, *throttle); err != nil {
			fmt.Fprintf(os.Stderr, "rexd: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := server.Config{
		Nodes: *nodes, Dataset: *dataset, Size: *size, Seed: *seed,
		Handlers: *handlers, Replication: *replication,
		DataDir: *dataDir, BufferPoolPages: *poolPages,
		MaxSessions: *maxSessions, MaxInflight: *maxInflight, MaxQueue: *maxQueue,
		SubPools: *subPools, TenantQuota: *tenantQuota,
	}
	if *tenantQuotas != "" {
		cfg.TenantQuotas = map[string]int{}
		for _, kv := range strings.Split(*tenantQuotas, ",") {
			name, val, ok := strings.Cut(kv, "=")
			var q int
			if ok {
				_, err := fmt.Sscanf(val, "%d", &q)
				ok = err == nil && q > 0
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "rexd: bad -tenant-quotas entry %q (want tenant=quota)\n", kv)
				os.Exit(2)
			}
			cfg.TenantQuotas[name] = q
		}
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}
	if !*quiet {
		cfg.LogWriter = os.Stderr
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexd: %v\n", err)
		os.Exit(1)
	}
	ln, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("REXD_LISTEN=%s\n", ln.Addr())
	if *stats != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		go func() {
			if err := http.ListenAndServe(*stats, mux); err != nil {
				fmt.Fprintf(os.Stderr, "rexd: stats endpoint: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rexd: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// die is a tiny helper for the smoke harness's error plumbing.
func die(format string, args ...any) error { return fmt.Errorf(format, args...) }

// runSmoke drives a mixed concurrent workload at a running rexd and
// gates on correctness: zero errors, identical result hashes across
// tenants and priorities, a subscriber whose stream folds to the
// ingested state, measured query overlap on multi-core pools, quota
// pushback for the throttled tenant, and a plan cache that actually got
// hit.
func runSmoke(addr string, clients, iters int, throttle string) error {
	if addr == "" {
		return die("-server is required with -client-smoke")
	}
	if clients < 2 {
		clients = 2
	}
	ctx := context.Background()
	r, err := newSmokeRun(ctx, addr, clients, iters, throttle)
	if err != nil {
		return err
	}
	defer r.close()
	if err := r.run(); err != nil {
		return err
	}
	snap, err := r.admin.Stats(ctx)
	if err != nil || snap.Server == nil {
		return die("server stats unavailable before overlap phase: %v", err)
	}
	if err := r.overlap(snap.Server.SubPools); err != nil {
		return err
	}
	if err := r.quotaStorm(); err != nil {
		return err
	}
	return r.gate()
}
