// Standing-query benchmark: subscribe the incremental shortest-path query,
// push deterministic edge-churn rounds through the resident dataflow, and
// hold the incremental wire bytes against a from-scratch recompute over
// the same revised base tables. The record's result hashes are comparable
// across transports (and across commits), so CI can gate on both
// "incremental == recompute" and "inproc == tcp". This lives in the
// command (not internal/bench) because it drives the public rex session
// API, which internal/bench must not import — the root package's own
// tests import internal/bench.
package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/types"
)

// standingChurn builds the deterministic ingestion rounds for a graph of
// the given vertex count: shortcut edges out of the low-numbered (reached)
// core, so every round re-derives distances through resident state.
func standingChurn(size int) [][]types.Tuple {
	var rounds [][]types.Tuple
	for r := 0; r < 3; r++ {
		var edges []types.Tuple
		for i := 0; i < 4; i++ {
			a := int64((7*r + 3*i + 1) % size)
			b := int64((11*r + 5*i + 13) % size)
			edges = append(edges, types.NewTuple(a, b))
		}
		rounds = append(rounds, edges)
	}
	return rounds
}

// standingOpts assembles the session options for the standing suites.
func standingOpts(sc bench.Scale, transport, peers string, size int) ([]rex.Option, error) {
	opts := []rex.Option{rex.WithDataset("sssp", size, 1), rex.WithHandlers("sssp-inc")}
	switch transport {
	case "inproc":
		opts = append(opts, rex.WithInProc(sc.Nodes))
	case "tcp":
		if peers != "" {
			opts = append(opts, rex.WithTCPPeers(job.ParsePeers(peers)...))
		} else {
			opts = append(opts, rex.WithAutoSpawn(sc.Nodes))
		}
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
	return opts, nil
}

// standingSuite runs the standing-query benchmarks on one transport and
// returns their CI rows: the incremental-vs-recompute scenario plus the
// write-heavy coalescing churn scenario. peers selects already-running
// rexnode daemons for -transport tcp; empty spawns local ones (the calling
// binary must serve -node).
func standingSuite(w io.Writer, sc bench.Scale, transport, peers string) ([]bench.CIStanding, error) {
	size := sc.DBPediaVertices
	if size < 100 {
		size = 100
	}
	opts, err := standingOpts(sc, transport, peers, size)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sess, err := rex.Open(ctx, opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	start := time.Now()
	sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, rex.WithMaxStrata(300), rex.WithCompaction(0))
	if err != nil {
		return nil, fmt.Errorf("bench: subscribe on %s: %w", transport, err)
	}
	st := sub.Stream()
	var view fold
	consume := func(batches int) error {
		for i := 0; i < batches; i++ {
			b, ok := st.Next()
			if !ok {
				return fmt.Errorf("bench: stream ended early: %v", st.Err())
			}
			view.apply(b.Deltas)
		}
		return nil
	}
	if err := consume(sub.Rounds()[0].Batches); err != nil {
		return nil, err
	}
	for _, edges := range standingChurn(size) {
		if err := sess.Insert("graph", edges...); err != nil {
			return nil, fmt.Errorf("bench: ingest on %s: %w", transport, err)
		}
		rs := sub.Rounds()
		if err := consume(rs[len(rs)-1].Batches); err != nil {
			return nil, err
		}
	}
	rounds := sub.Rounds()
	if err := sub.Close(); err != nil {
		return nil, fmt.Errorf("bench: subscription close on %s: %w", transport, err)
	}

	// From-scratch reference on the same session: the base tables already
	// carry the ingested churn (store revision in-process, change-log
	// replay over TCP).
	res, err := sess.QueryCtx(ctx, algos.IncSSSPQuery)
	if err != nil {
		return nil, fmt.Errorf("bench: recompute on %s: %w", transport, err)
	}
	row := bench.CIStanding{
		Query:          "inc-sssp",
		Transport:      transport,
		Rounds:         len(rounds) - 1,
		RecomputeBytes: res.BytesSent,
		ResultHash:     bench.ResultHash(view.tuples()),
		Millis:         float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i, r := range rounds {
		if i == 0 {
			row.InitialBytes = r.BytesSent
			continue
		}
		row.Strata += r.Strata
		row.IncrementalBytes += r.BytesSent
		row.IngestBytes += r.IngestBytes
	}
	if h := bench.ResultHash(res.Tuples); h != row.ResultHash {
		return nil, fmt.Errorf("bench: standing fold %s != recompute %s on %s", row.ResultHash, h, transport)
	}
	if row.IncrementalBytes <= 0 || row.IncrementalBytes >= row.RecomputeBytes {
		return nil, fmt.Errorf("bench: incremental rounds shipped %d bytes vs %d for recompute on %s — standing must ship fewer",
			row.IncrementalBytes, row.RecomputeBytes, transport)
	}

	rep := &bench.Report{
		Title: fmt.Sprintf("Standing queries (%s)", transport),
		Notes: "incremental ingestion vs from-scratch recompute over identical revised tables",
		Headers: []string{"query", "rounds", "strata", "initial_bytes", "incremental_bytes",
			"ingest_bytes", "recompute_bytes", "result_hash", "ms"},
		Rows: [][]string{{
			row.Query, fmt.Sprint(row.Rounds), fmt.Sprint(row.Strata),
			fmt.Sprint(row.InitialBytes), fmt.Sprint(row.IncrementalBytes),
			fmt.Sprint(row.IngestBytes), fmt.Sprint(row.RecomputeBytes),
			row.ResultHash, fmt.Sprintf("%.1f", row.Millis),
		}},
	}
	rep.Print(w)
	churn, err := standingChurnSuite(w, sc, transport, peers, size)
	if err != nil {
		return nil, err
	}
	return append([]bench.CIStanding{row}, churn...), nil
}

// churnIngestCount is the write-heavy scenario's ingest volume: ≥100
// queued single-edge writes, enough that coalescing — not round latency —
// dominates the round count.
const churnIngestCount = 120

// churnEdge is the i-th deterministic single-edge write of the scenario.
func churnEdge(i, size int) types.Tuple {
	return types.NewTuple(int64(i%7), int64((7*i+13)%size))
}

// standingChurnSuite is the write-heavy coalescing scenario: the same
// churnIngestCount single-edge writes are ingested twice — once one
// awaited round at a time (the sequential reference), once fired through
// IngestAsync without waiting so queued requests coalesce — and the two
// folded streams must hash-match while the coalesced run completes in
// measurably fewer rounds and no more wire bytes.
func standingChurnSuite(w io.Writer, sc bench.Scale, transport, peers string, size int) ([]bench.CIStanding, error) {
	ctx := context.Background()
	subscribe := func() (*rex.Session, *rex.Subscription, *fold, error) {
		opts, err := standingOpts(sc, transport, peers, size)
		if err != nil {
			return nil, nil, nil, err
		}
		sess, err := rex.Open(ctx, opts...)
		if err != nil {
			return nil, nil, nil, err
		}
		sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, rex.WithMaxStrata(300), rex.WithCompaction(0))
		if err != nil {
			sess.Close()
			return nil, nil, nil, err
		}
		view := &fold{}
		st := sub.Stream()
		for i := 0; i < sub.Rounds()[0].Batches; i++ {
			b, ok := st.Next()
			if !ok {
				sess.Close()
				return nil, nil, nil, fmt.Errorf("bench: churn stream ended early: %v", st.Err())
			}
			view.apply(b.Deltas)
		}
		return sess, sub, view, nil
	}

	// Sequential reference: every write is its own awaited round.
	seqSess, seqSub, seqView, err := subscribe()
	if err != nil {
		return nil, err
	}
	defer seqSess.Close()
	start := time.Now()
	for i := 0; i < churnIngestCount; i++ {
		if err := seqSess.Insert("graph", churnEdge(i, size)); err != nil {
			return nil, fmt.Errorf("bench: sequential churn ingest on %s: %w", transport, err)
		}
	}
	seqRounds := seqSub.Rounds()
	st := seqSub.Stream()
	for _, r := range seqRounds[1:] {
		for i := 0; i < r.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				return nil, fmt.Errorf("bench: sequential churn stream ended early: %v", st.Err())
			}
			seqView.apply(b.Deltas)
		}
	}
	if err := seqSub.Close(); err != nil {
		return nil, err
	}
	seqMillis := float64(time.Since(start)) / float64(time.Millisecond)
	var seqBytes int64
	for _, r := range seqRounds[1:] {
		seqBytes += r.BytesSent
	}
	seqHash := bench.ResultHash(seqView.tuples())

	// Coalesced run: fire everything, wait for the acks afterwards.
	coSess, coSub, coView, err := subscribe()
	if err != nil {
		return nil, err
	}
	defer coSess.Close()
	coStart := time.Now()
	acks := make([]*rex.IngestAck, 0, churnIngestCount)
	for i := 0; i < churnIngestCount; i++ {
		ack, err := coSess.IngestAsync("graph", []rex.Delta{rex.Insert(churnEdge(i, size))})
		if err != nil {
			return nil, fmt.Errorf("bench: coalesced churn ingest on %s: %w", transport, err)
		}
		acks = append(acks, ack)
	}
	for i, ack := range acks {
		if _, err := ack.Wait(ctx); err != nil {
			return nil, fmt.Errorf("bench: coalesced churn ack %d on %s: %w", i, transport, err)
		}
	}
	coRounds := coSub.Rounds()
	st = coSub.Stream()
	row := bench.CIStanding{
		Query:        "inc-sssp-churn",
		Transport:    transport,
		Rounds:       len(coRounds) - 1,
		Ingests:      churnIngestCount,
		InitialBytes: coRounds[0].BytesSent,
	}
	for _, r := range coRounds[1:] {
		for i := 0; i < r.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				return nil, fmt.Errorf("bench: coalesced churn stream ended early: %v", st.Err())
			}
			coView.apply(b.Deltas)
		}
		row.Strata += r.Strata
		row.IncrementalBytes += r.BytesSent
		row.IngestBytes += r.IngestBytes
		row.StagedDeltas += r.IngestedDeltas
		row.FoldedDeltas += r.CoalescedDeltas
	}
	if err := coSub.Close(); err != nil {
		return nil, err
	}
	row.SequentialBytes = seqBytes
	row.ResultHash = bench.ResultHash(coView.tuples())
	row.Millis = float64(time.Since(coStart)) / float64(time.Millisecond)
	if row.FoldedDeltas > 0 {
		row.CoalesceRatio = float64(row.StagedDeltas) / float64(row.FoldedDeltas)
	}
	if row.Millis > 0 {
		row.RowsPerSec = float64(row.StagedDeltas) / (row.Millis / 1000)
	}

	// The scenario's gates: identical folded streams, measurably fewer
	// rounds than ingests, and coalesced rounds shipping no more bytes
	// than the sequential reference.
	if row.ResultHash != seqHash {
		return nil, fmt.Errorf("bench: churn coalesced fold %s != sequential %s on %s", row.ResultHash, seqHash, transport)
	}
	if row.Rounds >= churnIngestCount {
		return nil, fmt.Errorf("bench: %d queued ingests still ran %d rounds on %s — coalescing failed", churnIngestCount, row.Rounds, transport)
	}
	if row.IncrementalBytes > seqBytes {
		return nil, fmt.Errorf("bench: coalesced rounds shipped %d bytes vs %d sequential on %s", row.IncrementalBytes, seqBytes, transport)
	}

	rep := &bench.Report{
		Title: fmt.Sprintf("Standing churn / coalescing (%s)", transport),
		Notes: fmt.Sprintf("%d queued single-edge ingests, sequential reference took %.1f ms",
			churnIngestCount, seqMillis),
		Headers: []string{"query", "ingests", "rounds", "staged", "folded", "coalesce_ratio",
			"coalesced_bytes", "sequential_bytes", "result_hash", "ms"},
		Rows: [][]string{{
			row.Query, fmt.Sprint(row.Ingests), fmt.Sprint(row.Rounds),
			fmt.Sprint(row.StagedDeltas), fmt.Sprint(row.FoldedDeltas),
			fmt.Sprintf("%.2f", row.CoalesceRatio),
			fmt.Sprint(row.IncrementalBytes), fmt.Sprint(row.SequentialBytes),
			row.ResultHash, fmt.Sprintf("%.1f", row.Millis),
		}},
	}
	rep.Print(w)
	return []bench.CIStanding{row}, nil
}

// fold replays a delta stream into the relation it describes.
type fold struct{ live []types.Tuple }

func (f *fold) apply(batch []types.Delta) {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			f.live = append(f.live, d.Tup)
		case types.OpDelete:
			f.remove(d.Tup)
		case types.OpReplace:
			f.remove(d.Old)
			f.live = append(f.live, d.Tup)
		}
	}
}

func (f *fold) remove(t types.Tuple) {
	for i, x := range f.live {
		if x != nil && x.Equal(t) {
			f.live[i] = f.live[len(f.live)-1]
			f.live = f.live[:len(f.live)-1]
			return
		}
	}
}

func (f *fold) tuples() []types.Tuple { return f.live }
