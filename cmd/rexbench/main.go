// Command rexbench regenerates the tables and figures of the REX paper's
// evaluation section (§6). Each experiment prints the same rows/series the
// paper plots; see EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	rexbench -exp all            # every figure at the default scale
//	rexbench -exp fig6,fig12     # selected figures
//	rexbench -exp fig6 -scale 4  # 4× the default dataset sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/rex-data/rex/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig2..fig12) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	nodes := flag.Int("nodes", 0, "override simulated cluster size")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write a machine-readable summary (experiment timings plus a wire-traffic benchmark) to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	sc := bench.DefaultScale()
	sc.DBPediaVertices = int(float64(sc.DBPediaVertices) * *scale)
	sc.TwitterVertices = int(float64(sc.TwitterVertices) * *scale)
	sc.GeoBasePoints = int(float64(sc.GeoBasePoints) * *scale)
	sc.LineItemRows = int(float64(sc.LineItemRows) * *scale)
	if *nodes > 0 {
		sc.Nodes = *nodes
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	record := &bench.CIRecord{Scale: *scale, Nodes: sc.Nodes}
	ran := 0
	for _, e := range bench.Experiments {
		if !want["all"] && !want[e.ID] {
			continue
		}
		ran++
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		dur := time.Since(start)
		record.Experiments = append(record.Experiments, bench.CIExperiment{
			ID: e.ID, Millis: float64(dur) / float64(time.Millisecond),
		})
		fmt.Printf("\n[%s completed in %v]\n", e.ID, dur.Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rexbench: no experiment matches %q (use -list)\n", *exp)
		os.Exit(1)
	}
	if *jsonPath != "" {
		wire, err := bench.WireBench(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: wire benchmark: %v\n", err)
			os.Exit(1)
		}
		record.Wire = wire
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexbench: %v\n", err)
			os.Exit(1)
		}
		werr := record.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "rexbench: write %s: %v\n", *jsonPath, werr)
			os.Exit(1)
		}
		fmt.Printf("\n[summary written to %s]\n", *jsonPath)
	}
}
