// Command rexbench regenerates the tables and figures of the REX paper's
// evaluation section (§6), plus a transport suite that runs PageRank,
// SSSP, and K-means on a selectable transport backend. Each experiment
// prints the same rows/series the paper plots; see EXPERIMENTS.md for
// paper-vs-measured commentary.
//
// Usage:
//
//	rexbench -exp all            # every figure at the default scale
//	rexbench -exp fig6,fig12     # selected figures
//	rexbench -exp fig6 -scale 4  # 4× the default dataset sizes
//
//	rexbench -transport tcp                      # spawn rexnode children, run over sockets
//	rexbench -transport tcp -peers h1:7101,...   # drive already-running rexnode daemons
//
// With -transport tcp the figure experiments are skipped (they measure
// the simulated substrate) and the transport suite runs across real OS
// processes; its JSON record carries result hashes comparable against an
// inproc run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig2..fig12) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	nodes := flag.Int("nodes", 0, "override cluster size")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write a machine-readable summary (experiment timings plus wire-traffic benchmarks) to this file")
	transport := flag.String("transport", "inproc", "transport backend: inproc (goroutine nodes) | tcp (one OS process per node)")
	peers := flag.String("peers", "", "comma-separated rexnode addresses for -transport tcp; spawns local daemons when empty")
	nodeMode := flag.Bool("node", false, "run as a rexnode worker daemon (internal: used by -transport tcp auto-spawn)")
	listen := flag.String("listen", "127.0.0.1:0", "daemon listen address (with -node)")
	flag.Parse()

	if *nodeMode {
		if err := rex.ServeNode(*listen, os.Stderr); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	sc := bench.DefaultScale()
	sc.DBPediaVertices = int(float64(sc.DBPediaVertices) * *scale)
	sc.TwitterVertices = int(float64(sc.TwitterVertices) * *scale)
	sc.GeoBasePoints = int(float64(sc.GeoBasePoints) * *scale)
	sc.LineItemRows = int(float64(sc.LineItemRows) * *scale)
	if *nodes > 0 {
		sc.Nodes = *nodes
	}

	record := &bench.CIRecord{
		SchemaVersion: bench.CISchemaVersion,
		GoVersion:     runtime.Version(),
		Commit:        commitID(),
		Scale:         *scale, Nodes: sc.Nodes, Transport: *transport,
	}
	if err := run(sc, record, *transport, *peers, *exp, *jsonPath); err != nil {
		fatalf("%v", err)
	}
}

// commitID identifies the built revision so JSON artifacts are comparable
// across runs: the VCS stamp when the binary was built inside a checkout,
// else the CI-provided SHA, else "unknown".
func commitID() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

func run(sc bench.Scale, record *bench.CIRecord, transport, peers, exp, jsonPath string) error {
	// Pick the transport suite's runner: the in-process engine, or a
	// session over rexnode worker processes (the public rex.Open path).
	var runner bench.Runner
	switch transport {
	case "inproc":
		runner = job.RunInProc
	case "tcp":
		var sess *rex.Session
		var err error
		if peers != "" {
			sess, err = rex.Open(context.Background(), rex.WithTCPPeers(job.ParsePeers(peers)...))
		} else {
			fmt.Printf("spawning %d local rexnode daemons\n", sc.Nodes)
			sess, err = rex.Open(context.Background(), rex.WithAutoSpawn(sc.Nodes))
		}
		if err != nil {
			return err
		}
		defer sess.Close()
		// The peer list, not the default scale, decides the cluster
		// size: keep the suite specs and the JSON record honest.
		sc.Nodes = sess.Nodes()
		record.Nodes = sc.Nodes
		runner = func(spec *job.Spec, tune func(*exec.Options)) (*exec.Result, error) {
			return sess.RunWorkload(context.Background(), spec, tune)
		}
	default:
		return fmt.Errorf("unknown transport %q (inproc | tcp)", transport)
	}

	// Figure experiments measure the simulated substrate; they run only
	// in-process. "-exp none" skips them entirely (the bench-trend CI job
	// wants just the transport + standing suites).
	if transport == "inproc" && exp != "none" {
		want := map[string]bool{}
		for _, id := range strings.Split(exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
		ran := 0
		for _, e := range bench.Experiments {
			if !want["all"] && !want[e.ID] {
				continue
			}
			ran++
			start := time.Now()
			if err := e.Run(os.Stdout, sc); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			dur := time.Since(start)
			record.Experiments = append(record.Experiments, bench.CIExperiment{
				ID: e.ID, Millis: float64(dur) / float64(time.Millisecond),
			})
			fmt.Printf("\n[%s completed in %v]\n", e.ID, dur.Round(time.Millisecond))
		}
		if ran == 0 {
			return fmt.Errorf("no experiment matches %q (use -list)", exp)
		}
	}

	// The transport suite runs on every backend: identical plans and
	// seeds, so its result hashes are comparable across transports.
	suite, err := bench.TransportSuite(os.Stdout, sc, transport, runner)
	if err != nil {
		return err
	}
	record.Suite = suite

	// Shuffle inner-loop benchmark: row vs columnar decode→route→encode.
	// Pure CPU work, identical on every backend — measured once, on the
	// inproc record.
	if transport == "inproc" {
		inner, err := bench.InnerLoopBench(os.Stdout)
		if err != nil {
			return fmt.Errorf("inner-loop benchmark: %w", err)
		}
		record.InnerLoop = inner

		// Expression-kernel microloop: the filter inner loop with compiled
		// column kernels vs the scratch-tuple bridge.
		kern, err := bench.KernelBench(os.Stdout)
		if err != nil {
			return fmt.Errorf("kernel benchmark: %w", err)
		}
		record.Kernel = kern

		// Spill workload: the SSSP suite spec through paged stores whose
		// buffer pool is far smaller than the dataset, gated against the
		// in-RAM hash.
		spill, err := bench.SpillBench(os.Stdout, sc)
		if err != nil {
			return fmt.Errorf("spill benchmark: %w", err)
		}
		record.Spill = spill
	}

	// Standing-query suite: resident dataflow + incremental ingestion vs
	// from-scratch recompute, on the same backend. It opens its own
	// session (auto-spawning fresh daemons when no peers were given — this
	// binary serves -node).
	standing, err := standingSuite(os.Stdout, sc, transport, peers)
	if err != nil {
		return err
	}
	record.Standing = standing

	if jsonPath != "" {
		if transport == "inproc" {
			wire, err := bench.WireBench(sc)
			if err != nil {
				return fmt.Errorf("wire benchmark: %w", err)
			}
			record.Wire = wire
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		werr := record.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write %s: %w", jsonPath, werr)
		}
		fmt.Printf("\n[summary written to %s]\n", jsonPath)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rexbench: "+format+"\n", args...)
	os.Exit(1)
}
