// Command rexsql loads a generated dataset into a REX session and
// executes an RQL query against it, printing the result rows and the
// per-stratum Δ statistics for recursive queries. With -transport tcp the
// cluster is real OS processes (rexnode daemons) instead of goroutines:
// each daemon rebuilds the catalog, compiles the same query, and loads
// its partition of the same deterministic dataset.
//
// Usage:
//
//	rexsql -nodes 4 -dataset dbpedia -q 'SELECT srcId, count(*) FROM graph GROUP BY srcId'
//	rexsql -dataset lineitem -q 'SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1'
//	rexsql -dataset dbpedia -pagerank            # runs the Listing 1 PageRank query
//	rexsql -stream -dataset dbpedia -pagerank    # print each stratum's Δ batch as it closes
//	rexsql -transport tcp -dataset dbpedia -pagerank             # spawn daemons, run over sockets
//	rexsql -transport tcp -peers h1:7101,h2:7102 -q '...'        # drive running daemons
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/types"
)

// datasetSeeds keeps TCP runs byte-identical to the historical in-process
// datasets.
var datasetSeeds = map[string]int64{"dbpedia": 1, "twitter": 2, "lineitem": 4, "points": 3}

func main() {
	nodes := flag.Int("nodes", 4, "worker count")
	dataset := flag.String("dataset", "dbpedia", "dbpedia | twitter | lineitem | points")
	size := flag.Int("size", 2000, "dataset size (vertices / rows / points)")
	query := flag.String("q", "", "RQL query to run")
	pagerank := flag.Bool("pagerank", false, "run the built-in Listing 1 PageRank query")
	limit := flag.Int("limit", 20, "max result rows to print")
	stream := flag.Bool("stream", false, "stream per-stratum delta batches instead of buffering the result")
	timeout := flag.Duration("timeout", 0, "cancel the query after this long (0 = no deadline)")
	transport := flag.String("transport", "inproc", "transport backend: inproc | tcp")
	peers := flag.String("peers", "", "comma-separated rexnode addresses for -transport tcp; spawns local daemons when empty")
	nodeMode := flag.Bool("node", false, "run as a rexnode worker daemon (internal)")
	listen := flag.String("listen", "127.0.0.1:0", "daemon listen address (with -node)")
	flag.Parse()

	if *nodeMode {
		if err := rex.ServeNode(*listen, os.Stderr); err != nil {
			fatal(err)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	q := *query
	handlers := ""
	var prCfg algos.PageRankConfig
	if *pagerank {
		prCfg = algos.PageRankConfig{Epsilon: 0.001, Delta: true}
		handlers = "pagerank"
		// Handler names are deterministic per config; a throwaway catalog
		// yields them without touching the execution catalog.
		jn, wn, err := algos.RegisterPageRank(catalog.New(), prCfg)
		if err != nil {
			fatal(err)
		}
		q = `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + wn + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + jn + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`
		fmt.Println("running Listing 1 PageRank query")
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "rexsql: provide -q or -pagerank")
		os.Exit(1)
	}
	seed, ok := datasetSeeds[*dataset]
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	// Open the session on the selected transport; the query path is the
	// same from here on.
	var opts []rex.Option
	switch *transport {
	case "inproc":
		opts = []rex.Option{rex.WithInProc(*nodes)}
	case "tcp":
		if *peers != "" {
			opts = []rex.Option{rex.WithTCPPeers(job.ParsePeers(*peers)...)}
		} else {
			fmt.Printf("spawning %d local rexnode daemons\n", *nodes)
			opts = []rex.Option{rex.WithAutoSpawn(*nodes)}
		}
	default:
		fatal(fmt.Errorf("unknown transport %q (inproc | tcp)", *transport))
	}
	sess, err := rex.Open(ctx, opts...)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	// Queries referencing delta-handler bundles (PageRank) must ship as a
	// workload so every process registers the same handlers; plain RQL
	// goes through Query/Stream directly.
	w := &rex.Workload{
		Workload: "rql", Dataset: *dataset, Size: *size, Seed: seed,
		Query: q, Handlers: handlers, Nodes: *nodes, MaxStrata: 500,
		Epsilon: prCfg.Epsilon, Delta: prCfg.Delta,
		// Match the session ring defaults so both transports partition
		// (and therefore accumulate) identically.
		VNodes: 64, Replication: 3,
	}

	if *stream {
		st, err := sess.StreamWorkload(ctx, w, nil)
		if err != nil {
			fatal(err)
		}
		rows := 0
		for stratum, deltas := range st.Seq() {
			rows += len(deltas)
			fmt.Printf("  stratum %2d: %6d deltas (first: %v)\n", stratum, len(deltas), deltas[0].Tup)
		}
		if err := st.Err(); err != nil {
			fatal(err)
		}
		res := st.Result()
		fmt.Printf("\n%d deltas streamed over %d strata in %v (%d bytes shipped)\n",
			rows, len(res.Strata), res.Duration, res.BytesSent)
		return
	}

	res, err := sess.RunWorkload(ctx, w, nil)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%d result rows in %v (%d bytes shipped)\n", len(res.Tuples), res.Duration, res.BytesSent)
	sort.Slice(res.Tuples, func(i, j int) bool {
		return types.ValueCompare(res.Tuples[i][0], res.Tuples[j][0]) < 0
	})
	for i, t := range res.Tuples {
		if i >= *limit {
			fmt.Printf("... (%d more)\n", len(res.Tuples)-*limit)
			break
		}
		fmt.Println(" ", t)
	}
	if len(res.Strata) > 0 {
		fmt.Println("\nstrata (Δi sizes):")
		for _, s := range res.Strata {
			fmt.Printf("  stratum %2d: %6d new tuples in %v\n", s.Stratum, s.NewTuples, s.Duration.Round(10*time.Microsecond))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexsql:", err)
	os.Exit(1)
}
