// Command rexsql loads a generated dataset into a REX cluster and
// executes an RQL query against it, printing the result rows and the
// per-stratum Δ statistics for recursive queries. With -transport tcp the
// cluster is real OS processes (rexnode daemons) instead of goroutines:
// each daemon rebuilds the catalog, compiles the same query, and loads
// its partition of the same deterministic dataset.
//
// Usage:
//
//	rexsql -nodes 4 -dataset dbpedia -q 'SELECT srcId, count(*) FROM graph GROUP BY srcId'
//	rexsql -dataset lineitem -q 'SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1'
//	rexsql -dataset dbpedia -pagerank            # runs the Listing 1 PageRank query
//	rexsql -transport tcp -dataset dbpedia -pagerank             # spawn daemons, run over sockets
//	rexsql -transport tcp -peers h1:7101,h2:7102 -q '...'        # drive running daemons
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/noded"
	"github.com/rex-data/rex/internal/types"
)

// datasetSeeds keeps TCP runs byte-identical to the historical in-process
// datasets.
var datasetSeeds = map[string]int64{"dbpedia": 1, "twitter": 2, "lineitem": 4, "points": 3}

func main() {
	nodes := flag.Int("nodes", 4, "worker count")
	dataset := flag.String("dataset", "dbpedia", "dbpedia | twitter | lineitem | points")
	size := flag.Int("size", 2000, "dataset size (vertices / rows / points)")
	query := flag.String("q", "", "RQL query to run")
	pagerank := flag.Bool("pagerank", false, "run the built-in Listing 1 PageRank query")
	limit := flag.Int("limit", 20, "max result rows to print")
	transport := flag.String("transport", "inproc", "transport backend: inproc | tcp")
	peers := flag.String("peers", "", "comma-separated rexnode addresses for -transport tcp; spawns local daemons when empty")
	nodeMode := flag.Bool("node", false, "run as a rexnode worker daemon (internal)")
	listen := flag.String("listen", "127.0.0.1:0", "daemon listen address (with -node)")
	flag.Parse()

	if *nodeMode {
		n, err := noded.Listen(*listen, os.Stderr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s%s\n", job.SpawnPrefix, n.Addr())
		if err := n.Serve(); err != nil {
			fatal(err)
		}
		return
	}

	q := *query
	handlers := ""
	var prCfg algos.PageRankConfig
	if *pagerank {
		prCfg = algos.PageRankConfig{Epsilon: 0.001, Delta: true}
		handlers = "pagerank"
		// Handler names are deterministic per config; a throwaway catalog
		// yields them without touching the execution catalog.
		jn, wn, err := algos.RegisterPageRank(catalog.New(), prCfg)
		if err != nil {
			fatal(err)
		}
		q = `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + wn + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + jn + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`
		fmt.Println("running Listing 1 PageRank query")
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "rexsql: provide -q or -pagerank")
		os.Exit(1)
	}

	var res *rex.Result
	switch *transport {
	case "inproc":
		res = runInProc(*nodes, *dataset, *size, q, handlers, prCfg)
	case "tcp":
		seed, ok := datasetSeeds[*dataset]
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *dataset))
		}
		spec := &job.Spec{
			Workload: "rql", Dataset: *dataset, Size: *size, Seed: seed,
			Query: q, Handlers: handlers, Nodes: *nodes, MaxStrata: 500,
			Epsilon: prCfg.Epsilon, Delta: prCfg.Delta,
			// Match rex.NewCluster's ring defaults so -transport tcp
			// partitions (and therefore accumulates) exactly like the
			// inproc path of the same command.
			VNodes: 64, Replication: 3,
		}
		var cl *job.Cluster
		var err error
		if *peers != "" {
			cl, err = job.Connect(job.ParsePeers(*peers))
		} else {
			fmt.Printf("spawning %d local rexnode daemons\n", *nodes)
			cl, err = job.SpawnLocal(*nodes, os.Args[0], []string{"-node"})
		}
		if err != nil {
			fatal(err)
		}
		res, err = cl.Run(spec, nil)
		cl.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown transport %q (inproc | tcp)", *transport))
	}

	fmt.Printf("\n%d result rows in %v (%d bytes shipped)\n", len(res.Tuples), res.Duration, res.BytesSent)
	sort.Slice(res.Tuples, func(i, j int) bool {
		return types.ValueCompare(res.Tuples[i][0], res.Tuples[j][0]) < 0
	})
	for i, t := range res.Tuples {
		if i >= *limit {
			fmt.Printf("... (%d more)\n", len(res.Tuples)-*limit)
			break
		}
		fmt.Println(" ", t)
	}
	if len(res.Strata) > 0 {
		fmt.Println("\nstrata (Δi sizes):")
		for _, s := range res.Strata {
			fmt.Printf("  stratum %2d: %6d new tuples in %v\n", s.Stratum, s.NewTuples, s.Duration.Round(10e3))
		}
	}
}

// runInProc keeps the historical single-process path through the public
// API (it registers handlers and loads data through rex.Cluster).
func runInProc(nodes int, dataset string, size int, q, handlers string, prCfg algos.PageRankConfig) *rex.Result {
	c := rex.NewCluster(rex.ClusterConfig{Nodes: nodes})
	switch dataset {
	case "dbpedia", "twitter":
		c.MustCreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)
		var g *datagen.Graph
		if dataset == "dbpedia" {
			g = datagen.DBPediaGraph(size, datasetSeeds["dbpedia"])
		} else {
			g = datagen.TwitterGraph(size, datasetSeeds["twitter"])
		}
		c.MustLoad("graph", g.Edges)
		fmt.Printf("loaded graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
	case "lineitem":
		c.MustCreateTable("lineitem", rex.Schema(datagen.LineItemSchema...), 0)
		rows := datagen.LineItems(size, datasetSeeds["lineitem"])
		c.MustLoad("lineitem", rows)
		fmt.Printf("loaded lineitem: %d rows\n", len(rows))
	case "points":
		c.MustCreateTable("points", rex.Schema("id:Integer", "x:Double", "y:Double"), 0)
		pts := datagen.GeoPoints(size, 8, 1, datasetSeeds["points"])
		c.MustLoad("points", pts)
		fmt.Printf("loaded points: %d\n", len(pts))
	default:
		fatal(fmt.Errorf("unknown dataset %q", dataset))
	}
	if handlers == "pagerank" {
		if _, _, err := algos.RegisterPageRank(c.Catalog(), prCfg); err != nil {
			fatal(err)
		}
	}
	res, err := c.QueryWithOptions(q, rex.Options{MaxStrata: 500})
	if err != nil {
		fatal(err)
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexsql:", err)
	os.Exit(1)
}
