// Command rexsql loads a generated dataset into a simulated REX cluster
// and executes an RQL query against it, printing the result rows and the
// per-stratum Δ statistics for recursive queries.
//
// Usage:
//
//	rexsql -nodes 4 -dataset dbpedia -q 'SELECT srcId, count(*) FROM graph GROUP BY srcId'
//	rexsql -dataset lineitem -q 'SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1'
//	rexsql -dataset dbpedia -pagerank            # runs the Listing 1 PageRank query
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

func main() {
	nodes := flag.Int("nodes", 4, "simulated worker count")
	dataset := flag.String("dataset", "dbpedia", "dbpedia | twitter | lineitem | points")
	size := flag.Int("size", 2000, "dataset size (vertices / rows / points)")
	query := flag.String("q", "", "RQL query to run")
	pagerank := flag.Bool("pagerank", false, "run the built-in Listing 1 PageRank query")
	limit := flag.Int("limit", 20, "max result rows to print")
	flag.Parse()

	c := rex.NewCluster(rex.ClusterConfig{Nodes: *nodes})
	switch *dataset {
	case "dbpedia", "twitter":
		c.MustCreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)
		var g *datagen.Graph
		if *dataset == "dbpedia" {
			g = datagen.DBPediaGraph(*size, 1)
		} else {
			g = datagen.TwitterGraph(*size, 2)
		}
		c.MustLoad("graph", g.Edges)
		fmt.Printf("loaded graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
	case "lineitem":
		c.MustCreateTable("lineitem", rex.Schema(datagen.LineItemSchema...), 0)
		rows := datagen.LineItems(*size, 4)
		c.MustLoad("lineitem", rows)
		fmt.Printf("loaded lineitem: %d rows\n", len(rows))
	case "points":
		c.MustCreateTable("points", rex.Schema("id:Integer", "x:Double", "y:Double"), 0)
		pts := datagen.GeoPoints(*size, 8, 1, 3)
		c.MustLoad("points", pts)
		fmt.Printf("loaded points: %d\n", len(pts))
	default:
		fmt.Fprintf(os.Stderr, "rexsql: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}

	q := *query
	if *pagerank {
		cfg := algos.PageRankConfig{Epsilon: 0.001, Delta: true}
		jn, wn, err := algos.RegisterPageRank(c.Catalog(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexsql:", err)
			os.Exit(1)
		}
		q = `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + wn + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + jn + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`
		fmt.Println("running Listing 1 PageRank query")
	}
	if q == "" {
		fmt.Fprintln(os.Stderr, "rexsql: provide -q or -pagerank")
		os.Exit(1)
	}

	res, err := c.QueryWithOptions(q, rex.Options{MaxStrata: 500})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexsql:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d result rows in %v (%d bytes shipped)\n", len(res.Tuples), res.Duration, res.BytesSent)
	sort.Slice(res.Tuples, func(i, j int) bool {
		return types.ValueCompare(res.Tuples[i][0], res.Tuples[j][0]) < 0
	})
	for i, t := range res.Tuples {
		if i >= *limit {
			fmt.Printf("... (%d more)\n", len(res.Tuples)-*limit)
			break
		}
		fmt.Println(" ", t)
	}
	if len(res.Strata) > 0 {
		fmt.Println("\nstrata (Δi sizes):")
		for _, s := range res.Strata {
			fmt.Printf("  stratum %2d: %6d new tuples in %v\n", s.Stratum, s.NewTuples, s.Duration.Round(10e3))
		}
	}
}
