// Command rexnode is the REX worker daemon: one OS process hosting one
// worker node of a multi-process cluster. Start one per node, then point
// a driver (rexbench or rexsql with -transport tcp) at the listen
// addresses; the driver ships each daemon a job description from which it
// rebuilds the plan and loads its data partition, and queries run over
// real TCP links.
//
// Usage:
//
//	rexnode -listen 127.0.0.1:7101 &
//	rexnode -listen 127.0.0.1:7102 &
//	rexbench -transport tcp -peers 127.0.0.1:7101,127.0.0.1:7102
//
// With -listen :0 the daemon picks a free port and announces it on
// stdout as REXNODE_LISTEN=<addr> (how driver auto-spawn finds its
// children).
//
// With -data-dir the daemon's store pages to disk through a buffer pool
// (sized by -buffer-pool-pages) and its active job is persisted: killed
// and restarted on the same address and directory, the daemon restores
// the job and its committed data before announcing the address, so a
// driver can respawn crashed workers mid-query.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/noded"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7101", "address to listen on (use :0 for a free port)")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	dataDir := flag.String("data-dir", "", "directory for paged store files and durable job state (empty = in-memory)")
	poolPages := flag.Int("buffer-pool-pages", 0, "buffer pool capacity in 8 KiB pages (0 = default)")
	flag.Parse()

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = io.Discard
	}
	n, err := noded.Listen(*listen, logw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexnode: %v\n", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		if err := n.UseDataDir(*dataDir, *poolPages); err != nil {
			fmt.Fprintf(os.Stderr, "rexnode: %v\n", err)
			os.Exit(1)
		}
		// Restore before announcing: a respawning driver reads the
		// announcement as "the restored job is being served again".
		if _, err := n.Restore(); err != nil {
			fmt.Fprintf(os.Stderr, "rexnode: restore: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("%s%s\n", job.SpawnPrefix, n.Addr())
	if err := n.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "rexnode: %v\n", err)
		os.Exit(1)
	}
}
