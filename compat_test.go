package rex

import (
	"context"
	"errors"
	"testing"

	"github.com/rex-data/rex/internal/types"
)

// TestDeprecatedQueryWrappers pins the source-compatibility contract: the
// deprecated Query/QueryWithOptions/Stmt.Query wrappers keep working and
// return exactly what their context-first canonical forms return.
func TestDeprecatedQueryWrappers(t *testing.T) {
	ctx := context.Background()
	sess, err := Open(ctx, WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.CreateTable("t", Schema("x:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	for i := 0; i < 10; i++ {
		rows = append(rows, NewTuple(int64(i)))
	}
	if err := sess.Load("t", rows); err != nil {
		t.Fatal(err)
	}

	want, err := sess.QueryCtx(ctx, `SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatalf("deprecated Query: %v", err)
	}
	if n, _ := types.AsInt(got.Tuples[0][0]); n != 10 {
		t.Fatalf("Query count = %d, want 10", n)
	}
	got, err = sess.QueryWithOptions(`SELECT count(*) FROM t`, Options{})
	if err != nil {
		t.Fatalf("deprecated QueryWithOptions: %v", err)
	}
	if w, g := types.AsString(want.Tuples[0][0]), types.AsString(got.Tuples[0][0]); w != g {
		t.Fatalf("QueryWithOptions = %s, QueryCtx = %s", g, w)
	}
	stmt, err := sess.Prepare(`SELECT count(*) FROM t WHERE x >= $1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(int64(5))
	if err != nil {
		t.Fatalf("deprecated Stmt.Query: %v", err)
	}
	if n, _ := types.AsInt(res.Tuples[0][0]); n != 5 {
		t.Fatalf("Stmt.Query count = %d, want 5", n)
	}
}

// TestSentinelErrors asserts the typed sentinels with errors.Is on the
// in-process paths (the server paths are covered in internal/server).
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	sess, err := Open(ctx, WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueryCtx(ctx, `SELECT x FROM nope`); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown table: err = %v, want ErrUnknownTable", err)
	}
	if err := sess.CreateTable("t", Schema("x:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueryCtx(ctx, `SELECT x FROM t`); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed session: err = %v, want ErrSessionClosed", err)
	}
	if err := sess.Load("t", []Tuple{NewTuple(int64(1))}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed session load: err = %v, want ErrSessionClosed", err)
	}
}
