package rex_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/rex-data/rex"
)

// openSeeded boots a small in-process session with a toy key/value table.
func openSeeded(ctx context.Context) (*rex.Session, error) {
	s, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		return nil, err
	}
	if err := s.CreateTable("items", rex.Schema("k:Integer", "v:Double"), 0); err != nil {
		return nil, err
	}
	var rows []rex.Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, rex.NewTuple(int64(i), float64(i)))
	}
	if err := s.Load("items", rows); err != nil {
		return nil, err
	}
	return s, nil
}

// ExampleOpen boots an in-process session, loads a table, and runs an
// aggregation under a context.
func ExampleOpen() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	res, err := s.QueryCtx(ctx, `SELECT sum(v), count(*) FROM items WHERE k >= 50`, rex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum=%v count=%v\n", res.Tuples[0][0], res.Tuples[0][1])
	// Output: sum=3725 count=50
}

// ExampleSession_Prepare compiles a parameterized statement once and
// executes it repeatedly with different $1 bindings.
func ExampleSession_Prepare() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	stmt, err := s.Prepare(`SELECT count(*) FROM items WHERE k >= $1`)
	if err != nil {
		log.Fatal(err)
	}
	for _, min := range []int64{0, 50, 90} {
		res, err := stmt.Query(min)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k>=%d: %v rows\n", min, res.Tuples[0][0])
	}
	// Output:
	// k>=0: 100 rows
	// k>=50: 50 rows
	// k>=90: 10 rows
}

// ExampleSession_Stream consumes a query's delta batches through the
// Go 1.23 iterator adapter instead of buffering the result set.
func ExampleSession_Stream() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	st, err := s.Stream(ctx, `SELECT k, sum(v) FROM items WHERE k < 3 GROUP BY k`, rex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var groups []string
	for _, deltas := range st.Seq() {
		for _, d := range deltas {
			groups = append(groups, fmt.Sprintf("k=%v sum=%v", d.Tup[0], d.Tup[1]))
		}
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Println(g)
	}
	// Output:
	// k=0 sum=0
	// k=1 sum=1
	// k=2 sum=2
}
