package rex_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/rex-data/rex"
)

// openSeeded boots a small in-process session with a toy key/value table.
func openSeeded(ctx context.Context) (*rex.Session, error) {
	s, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		return nil, err
	}
	if err := s.CreateTable("items", rex.Schema("k:Integer", "v:Double"), 0); err != nil {
		return nil, err
	}
	var rows []rex.Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, rex.NewTuple(int64(i), float64(i)))
	}
	if err := s.Load("items", rows); err != nil {
		return nil, err
	}
	return s, nil
}

// ExampleOpen boots an in-process session, loads a table, and runs an
// aggregation under a context.
func ExampleOpen() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	res, err := s.QueryCtx(ctx, `SELECT sum(v), count(*) FROM items WHERE k >= 50`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum=%v count=%v\n", res.Tuples[0][0], res.Tuples[0][1])
	// Output: sum=3725 count=50
}

// ExampleSession_Prepare compiles a parameterized statement once and
// executes it repeatedly with different $1 bindings.
func ExampleSession_Prepare() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	stmt, err := s.Prepare(`SELECT count(*) FROM items WHERE k >= $1`)
	if err != nil {
		log.Fatal(err)
	}
	for _, min := range []int64{0, 50, 90} {
		res, err := stmt.QueryCtx(ctx, rex.Options{}, min)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k>=%d: %v rows\n", min, res.Tuples[0][0])
	}
	// Output:
	// k>=0: 100 rows
	// k>=50: 50 rows
	// k>=90: 10 rows
}

// ExampleSession_Subscribe registers a standing aggregation: the dataflow
// stays resident after the initial result, and every Insert/Delete runs an
// incremental round whose output deltas revise the subscribed view.
func ExampleSession_Subscribe() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	sub, err := s.Subscribe(ctx, `SELECT count(*), sum(v) FROM items WHERE k < 10`)
	if err != nil {
		log.Fatal(err)
	}
	st := sub.Stream()

	// view folds the stream: after each round it IS the query result.
	var view rex.Tuple
	consume := func(batches int) {
		for i := 0; i < batches; i++ {
			if b, ok := st.Next(); ok && len(b.Deltas) > 0 {
				view = b.Deltas[len(b.Deltas)-1].Tup
			}
		}
	}
	consume(sub.Rounds()[0].Batches)
	fmt.Printf("initial: count=%v sum=%v\n", view[0], view[1])

	// Base-table changes run incremental rounds through the resident
	// dataflow — no recompute, work proportional to the change.
	if err := s.Insert("items", rex.NewTuple(int64(5), 100.0)); err != nil {
		log.Fatal(err)
	}
	consume(sub.Rounds()[1].Batches)
	fmt.Printf("after insert: count=%v sum=%v\n", view[0], view[1])

	if err := s.Delete("items", rex.NewTuple(int64(9), 9.0)); err != nil {
		log.Fatal(err)
	}
	consume(sub.Rounds()[2].Batches)
	fmt.Printf("after delete: count=%v sum=%v\n", view[0], view[1])

	if err := sub.Close(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// initial: count=10 sum=45
	// after insert: count=11 sum=145
	// after delete: count=10 sum=136
}

// ExampleSession_IngestAsync fires a write burst through the asynchronous
// ingestion pipeline: each call enqueues without blocking, requests queued
// while a round is running coalesce — same-key deltas folded through the
// shuffle compactor — into a single follow-up round, and every ack
// resolves when its covering round's fixpoint completes.
func ExampleSession_IngestAsync() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	sub, err := s.Subscribe(ctx, `SELECT count(*), sum(v) FROM items WHERE k < 10`)
	if err != nil {
		log.Fatal(err)
	}
	st := sub.Stream()
	var view rex.Tuple
	drain := func() { // fold everything buffered: after each round it IS the result
		for {
			b, ok := st.TryNext()
			if !ok {
				break
			}
			if len(b.Deltas) > 0 {
				view = b.Deltas[len(b.Deltas)-1].Tup
			}
		}
	}
	drain()
	fmt.Printf("initial: count=%v sum=%v\n", view[0], view[1])

	// Three writes fired back to back: no waiting between them, so they
	// typically fold into one incremental round instead of three.
	var acks []*rex.IngestAck
	for i := 0; i < 3; i++ {
		ack, err := s.IngestAsync("items", []rex.Delta{rex.Insert(rex.NewTuple(int64(5), 10.0))})
		if err != nil {
			log.Fatal(err)
		}
		acks = append(acks, ack)
	}
	for _, ack := range acks {
		if _, err := ack.Wait(ctx); err != nil { // resolves at the covering round's fixpoint
			log.Fatal(err)
		}
	}
	drain()
	fmt.Printf("after burst: count=%v sum=%v\n", view[0], view[1])

	if err := sub.Close(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// initial: count=10 sum=45
	// after burst: count=13 sum=75
}

// ExampleSession_Stream consumes a query's delta batches through the
// Go 1.23 iterator adapter instead of buffering the result set.
func ExampleSession_Stream() {
	ctx := context.Background()
	s, err := openSeeded(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	st, err := s.Stream(ctx, `SELECT k, sum(v) FROM items WHERE k < 3 GROUP BY k`)
	if err != nil {
		log.Fatal(err)
	}
	var groups []string
	for _, deltas := range st.Seq() {
		for _, d := range deltas {
			groups = append(groups, fmt.Sprintf("k=%v sum=%v", d.Tup[0], d.Tup[1]))
		}
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Println(g)
	}
	// Output:
	// k=0 sum=0
	// k=1 sum=1
	// k=2 sum=2
}
