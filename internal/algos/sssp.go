package algos

import (
	"math"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// SSSPConfig tunes the single-source shortest-path query (Listing 2).
type SSSPConfig struct {
	// Source is the start vertex.
	Source int64
	// Delta selects frontier-style incremental evaluation; false re-feeds
	// every known distance each iteration (REX no-delta).
	Delta bool
	// MaxIterations caps recursion (the paper runs 6 on DBPedia for every
	// strategy except REX delta, which runs to the true fixpoint).
	MaxIterations int
}

// RegisterSSSP installs the SPAgg join handler and shortest-path while
// handler under config-specific names.
func RegisterSSSP(cat *catalog.Catalog, cfg SSSPConfig) (joinName, whileName string, err error) {
	suffix := "delta"
	if !cfg.Delta {
		suffix = "nodelta"
	}
	joinName = "sp_join_" + suffix
	whileName = "sp_while_" + suffix

	// SPAgg (Listing 2): edges accumulate on the left; a distance delta
	// δ(srcId, d) emits d+1 to every out-neighbor.
	join := &uda.FuncJoinHandler{
		HName: joinName,
		Out:   types.MustSchema("nbr:Integer", "distOut:Double"),
		Fn: func(left, right *uda.TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			if fromLeft {
				left.Add(d.Tup)
				return nil, nil
			}
			dist, ok := types.AsFloat(d.Tup[1])
			if !ok {
				return nil, nil
			}
			out := make([]types.Delta, 0, left.Len())
			for _, e := range left.Tuples {
				out = append(out, types.Update(types.NewTuple(e[1], dist+1)))
			}
			return out, nil
		},
	}
	if err := cat.RegisterJoinHandler(join); err != nil {
		return "", "", err
	}

	// While handler: the mutable relation maps vertex → minimum distance;
	// the Δᵢ set is exactly the vertices whose minimum improved (Fig. 3).
	while := &uda.FuncWhileHandler{
		HName: whileName,
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			nd, ok := types.AsFloat(d.Tup[1])
			if !ok || math.IsInf(nd, 0) {
				return nil, nil
			}
			if rel.Len() > 0 {
				cur, _ := types.AsFloat(rel.Tuples[0][1])
				if nd >= cur {
					return nil, nil
				}
				rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(d.Tup[0], nd))
			} else {
				rel.Add(types.NewTuple(d.Tup[0], nd))
			}
			return []types.Delta{types.Update(types.NewTuple(d.Tup[0], nd))}, nil
		},
	}
	if err := cat.RegisterWhileHandler(while); err != nil {
		return "", "", err
	}
	return joinName, whileName, nil
}

// RegisterIncSSSP installs the standing-query variant of the SSSP handlers
// under the fixed names "spinc" (join) and "spmin" (while). Unlike SPAgg,
// the join handler is ingestion-aware: it remembers each source's best
// known distance in the right bucket, so an edge INSERTED after the
// initial fixpoint immediately re-derives a distance for its endpoint from
// resident state — the incremental view-maintenance behavior standing
// queries need. Distances are monotone (keep-min), so incremental rounds
// and a from-scratch recompute converge to the identical relation for
// insert-only edge churn.
func RegisterIncSSSP(cat *catalog.Catalog) error {
	join := &uda.FuncJoinHandler{
		HName: "spinc",
		Out:   types.MustSchema("nbr:Integer", "distOut:Double"),
		Fn: func(left, right *uda.TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			if fromLeft {
				// Edge delta. Inserts join against the source's current
				// best distance; deletes only retire the edge (min
				// distances are not invertible — deletions need recompute).
				switch d.Op {
				case types.OpDelete:
					left.Remove(d.Tup)
					return nil, nil
				default:
					left.Add(d.Tup)
					if right.Len() == 0 {
						return nil, nil // source unreached so far
					}
					dist, ok := types.AsFloat(right.Tuples[0][1])
					if !ok {
						return nil, nil
					}
					return []types.Delta{types.Update(types.NewTuple(d.Tup[1], dist+1))}, nil
				}
			}
			// Distance delta δ(srcId, d): remember the best distance for
			// future edge inserts, emit d+1 to every out-neighbor.
			dist, ok := types.AsFloat(d.Tup[1])
			if !ok {
				return nil, nil
			}
			if right.Len() > 0 {
				cur, _ := types.AsFloat(right.Tuples[0][1])
				if dist < cur {
					right.ReplaceFirst(right.Tuples[0], d.Tup.Clone())
				}
			} else {
				right.Add(d.Tup.Clone())
			}
			out := make([]types.Delta, 0, left.Len())
			for _, e := range left.Tuples {
				out = append(out, types.Update(types.NewTuple(e[1], dist+1)))
			}
			return out, nil
		},
	}
	if err := cat.RegisterJoinHandler(join); err != nil {
		return err
	}
	return cat.RegisterWhileHandler(&uda.FuncWhileHandler{
		HName: "spmin",
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			nd, ok := types.AsFloat(d.Tup[1])
			if !ok || math.IsInf(nd, 0) {
				return nil, nil
			}
			if rel.Len() > 0 {
				cur, _ := types.AsFloat(rel.Tuples[0][1])
				if nd >= cur {
					return nil, nil
				}
				rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(d.Tup[0], nd))
			} else {
				rel.Add(types.NewTuple(d.Tup[0], nd))
			}
			return []types.Delta{types.Update(types.NewTuple(d.Tup[0], nd))}, nil
		},
	})
}

// IncSSSPQuery is the standing shortest-path RQL text over the "sssp"
// dataset (graph + spseed), using the ingestion-aware handler bundle.
const IncSSSPQuery = `
WITH SP (srcId, dist) AS (
  SELECT srcId, dist FROM spseed
) UNION ALL UNTIL FIXPOINT BY srcId USING spmin (
  SELECT nbr, min(d)
  FROM (SELECT spinc(srcId, dist).{nbr, d}
        FROM graph, SP WHERE graph.srcId = SP.srcId GROUP BY srcId)
  GROUP BY nbr)`

// SSSPPlan builds the recursive shortest-path plan over graph(srcId,
// destId) and a single-row seed table spseed(srcId, dist).
func SSSPPlan(cfg SSSPConfig, joinName, whileName string) *exec.PlanSpec {
	p := exec.NewPlanSpec()
	if cfg.MaxIterations > 0 {
		p.MaxStrata = cfg.MaxIterations
	}
	seed := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "spseed"})
	fix := p.Add(&exec.OpSpec{
		Kind: exec.OpFixpoint, FixpointKey: []int{0},
		WhileHandlerName: whileName,
		NoDelta:          !cfg.Delta,
	})
	graphScan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "graph"})
	join := p.Add(&exec.OpSpec{
		Kind: exec.OpHashJoin, Inputs: []int{graphScan.ID, fix.ID},
		LeftKey: []int{0}, RightKey: []int{0},
		JoinHandlerName: joinName, ImmutablePort: 0,
	})
	// Competing distance deltas for one vertex collapse to the minimum in
	// the shuffle compactor — the downstream group-by keeps only the min.
	rehash := p.Add(&exec.OpSpec{
		Kind: exec.OpRehash, Inputs: []int{join.ID}, HashKey: []int{0},
		CompactMerge: map[int]string{1: "min"},
	})
	gby := p.Add(&exec.OpSpec{
		Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []exec.AggSpec{{
			Fn: "min", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "distOut")}, OutName: "dist",
		}},
		ResetPerStratum: !cfg.Delta,
	})
	fix.Inputs = []int{seed.ID, gby.ID}
	fix.RecursiveOut = join.ID
	p.RootID = fix.ID
	return p
}

// SSSPSeed builds the one-row seed relation for the source vertex.
func SSSPSeed(cfg SSSPConfig) []types.Tuple {
	return []types.Tuple{types.NewTuple(cfg.Source, 0.0)}
}
