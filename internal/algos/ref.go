package algos

import (
	"math"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

// PageRankRef computes reference PageRank by Jacobi iteration until no
// vertex changes by more than eps, returning the final ranks and the
// number of iterations.
func PageRankRef(g *datagen.Graph, eps float64, maxIters int) ([]float64, int) {
	n := g.NumVertices
	adj := g.Adjacency()
	deg := g.OutDegrees()
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0
	}
	next := make([]float64, n)
	iters := 0
	for it := 0; it < maxIters; it++ {
		iters++
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if deg[v] == 0 {
				continue
			}
			share := pr[v] / float64(deg[v])
			for _, u := range adj[v] {
				next[u] += share
			}
		}
		changed := false
		for v := 0; v < n; v++ {
			nv := (1 - Damping) + Damping*next[v]
			if math.Abs(nv-pr[v]) > eps {
				changed = true
			}
			pr[v] = nv
		}
		if !changed {
			break
		}
	}
	return pr, iters
}

// ConvergenceProfile records, per iteration, how many vertices have not
// yet converged (|Δpr| > eps) — the data behind Fig. 2(b) — plus the
// iteration at which each vertex last changed (Fig. 2(a)).
type ConvergenceProfile struct {
	NonConverged []int
	LastChange   []int
}

// PageRankConvergence runs the reference iteration while recording the
// convergence profile of Fig. 2.
func PageRankConvergence(g *datagen.Graph, eps float64, maxIters int) *ConvergenceProfile {
	n := g.NumVertices
	adj := g.Adjacency()
	deg := g.OutDegrees()
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0
	}
	next := make([]float64, n)
	prof := &ConvergenceProfile{LastChange: make([]int, n)}
	for it := 1; it <= maxIters; it++ {
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if deg[v] == 0 {
				continue
			}
			share := pr[v] / float64(deg[v])
			for _, u := range adj[v] {
				next[u] += share
			}
		}
		non := 0
		for v := 0; v < n; v++ {
			nv := (1 - Damping) + Damping*next[v]
			if math.Abs(nv-pr[v]) > eps {
				non++
				prof.LastChange[v] = it
			}
			pr[v] = nv
		}
		prof.NonConverged = append(prof.NonConverged, non)
		if non == 0 {
			break
		}
	}
	return prof
}

// BFSRef computes reference hop distances from src (−1 = unreachable).
func BFSRef(g *datagen.Graph, src int64) []int {
	adj := g.Adjacency()
	dist := make([]int, g.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// KMeansRef runs Lloyd's algorithm with the given initial centroids,
// returning final centroids and the iteration count (until no point
// switches assignment).
func KMeansRef(points []types.Tuple, centroids []types.Tuple, maxIters int) ([][2]float64, int) {
	cs := make([][2]float64, len(centroids))
	for i, c := range centroids {
		x, _ := types.AsFloat(c[1])
		y, _ := types.AsFloat(c[2])
		cs[i] = [2]float64{x, y}
	}
	px := make([]float64, len(points))
	py := make([]float64, len(points))
	for i, p := range points {
		px[i], _ = types.AsFloat(p[1])
		py[i], _ = types.AsFloat(p[2])
	}
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for it := 0; it < maxIters; it++ {
		iters++
		switched := 0
		for i := range points {
			best, bestD := -1, math.Inf(1)
			for c := range cs {
				if d := dist2(px[i], py[i], cs[c][0], cs[c][1]); d < bestD {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				switched++
			}
		}
		if switched == 0 {
			break
		}
		sx := make([]float64, len(cs))
		sy := make([]float64, len(cs))
		n := make([]int, len(cs))
		for i := range points {
			c := assign[i]
			sx[c] += px[i]
			sy[c] += py[i]
			n[c]++
		}
		for c := range cs {
			if n[c] > 0 {
				cs[c] = [2]float64{sx[c] / float64(n[c]), sy[c] / float64(n[c])}
			}
		}
	}
	return cs, iters
}
