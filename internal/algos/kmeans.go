package algos

import (
	"math"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// KMeansConfig tunes the K-means clustering query (Listing 3).
type KMeansConfig struct {
	K             int
	MaxIterations int
}

// Point-bucket tuple layout inside the join handler's left bucket:
// (pointId, x, y, assignedCid, distToAssigned).
const (
	kmPid = iota
	kmX
	kmY
	kmCid
	kmDist
)

// RegisterKMeans installs KMAgg (Listing 3) and the K-means while handler.
// KMAgg maintains nodeBucket (the local points with their current
// assignments — the mutable set of Fig. 3) and centrBucket (the centroid
// coordinates); each centroid movement re-checks the affected points and
// emits coordinate/count adjustments only for points that switched
// centroids — the Δᵢ set of Fig. 3.
func RegisterKMeans(cat *catalog.Catalog, cfg KMeansConfig) (joinName, whileName string, err error) {
	joinName = "km_join"
	whileName = "km_while"

	join := &uda.FuncJoinHandler{
		HName: joinName,
		Out:   types.MustSchema("cid:Integer", "xDiff:Double", "yDiff:Double", "nDiff:Integer"),
		Fn: func(nodeBucket, centrBucket *uda.TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			if fromLeft {
				// Point insert (key, pid, x, y). Base data arrives exactly
				// once per run: K-means recovers via the restart strategy
				// (its assignment state is join-handler-local), so no
				// duplicate-insert guard is needed on this hot path.
				nodeBucket.Add(types.NewTuple(d.Tup[1], d.Tup[2], d.Tup[3], int64(-1), math.Inf(1)))
				return nil, nil
			}
			// Centroid delta (key, cid, cx, cy).
			cid, _ := types.AsInt(d.Tup[1])
			cx, _ := types.AsFloat(d.Tup[2])
			cy, _ := types.AsFloat(d.Tup[3])
			centrBucket.Put(0, cid, 1, cx, func() types.Tuple {
				return types.NewTuple(cid, 0.0, 0.0)
			})
			centrBucket.Put(0, cid, 2, cy, nil)

			var out []types.Delta
			for i, p := range nodeBucket.Tuples {
				px, _ := types.AsFloat(p[kmX])
				py, _ := types.AsFloat(p[kmY])
				curCid, _ := types.AsInt(p[kmCid])
				curDist, _ := types.AsFloat(p[kmDist])
				newCid, newDist := curCid, curDist
				if curCid == cid {
					// The point's own centroid moved: full re-check
					// against every centroid (its stored distance is
					// stale either way).
					newCid, newDist = nearestCentroid(centrBucket, px, py)
				} else {
					dd := dist2(px, py, cx, cy)
					if dd < curDist {
						newCid, newDist = cid, dd
					}
				}
				if newCid == curCid {
					if newDist != curDist {
						np := p.Clone()
						np[kmDist] = newDist
						nodeBucket.Set(i, np)
					}
					continue
				}
				// The point switched centroids: Listing 3's
				// resBag.add({cid,nx,ny},{oldCid,-nx,-ny}).
				np := p.Clone()
				np[kmCid] = newCid
				np[kmDist] = newDist
				nodeBucket.Set(i, np)
				out = append(out, types.Update(types.NewTuple(newCid, px, py, int64(1))))
				if curCid >= 0 {
					out = append(out, types.Update(types.NewTuple(curCid, -px, -py, int64(-1))))
				}
			}
			return out, nil
		},
	}
	if err := cat.RegisterJoinHandler(join); err != nil {
		return "", "", err
	}

	// While handler: centroids are the fixpoint relation keyed by cid;
	// a recomputed centroid is propagated only when it actually moved.
	while := &uda.FuncWhileHandler{
		HName: whileName,
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			cid := d.Tup[0]
			cx, okx := types.AsFloat(d.Tup[1])
			cy, oky := types.AsFloat(d.Tup[2])
			if !okx || !oky || math.IsNaN(cx) || math.IsNaN(cy) || math.IsInf(cx, 0) || math.IsInf(cy, 0) {
				return nil, nil // empty cluster: keep the old centroid
			}
			if rel.Len() == 0 {
				rel.Add(types.NewTuple(cid, cx, cy))
				return []types.Delta{types.Update(types.NewTuple(cid, cx, cy))}, nil
			}
			ox, _ := types.AsFloat(rel.Tuples[0][1])
			oy, _ := types.AsFloat(rel.Tuples[0][2])
			if ox == cx && oy == cy {
				return nil, nil
			}
			rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(cid, cx, cy))
			return []types.Delta{types.Update(types.NewTuple(cid, cx, cy))}, nil
		},
	}
	if err := cat.RegisterWhileHandler(while); err != nil {
		return "", "", err
	}
	return joinName, whileName, nil
}

func nearestCentroid(centroids *uda.TupleSet, px, py float64) (int64, float64) {
	best := int64(-1)
	bestD := math.Inf(1)
	for _, c := range centroids.Tuples {
		cid, _ := types.AsInt(c[0])
		cx, _ := types.AsFloat(c[1])
		cy, _ := types.AsFloat(c[2])
		if d := dist2(px, py, cx, cy); d < bestD || (d == bestD && cid < best) {
			best, bestD = cid, d
		}
	}
	return best, bestD
}

func dist2(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	return dx*dx + dy*dy
}

// KMeansPlan builds the clustering plan over points(id, x, y) and the
// sampled centroid seed table kmseed(cid, x, y). Centroid deltas broadcast
// to every node (each node holds a partition of the points); coordinate
// and count adjustments rehash by centroid id and cumulative sums yield
// the refreshed centroid positions.
func KMeansPlan(cfg KMeansConfig, joinName, whileName string) *exec.PlanSpec {
	p := exec.NewPlanSpec()
	if cfg.MaxIterations > 0 {
		p.MaxStrata = cfg.MaxIterations
	}
	seed := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "kmseed"})
	fix := p.Add(&exec.OpSpec{
		Kind: exec.OpFixpoint, FixpointKey: []int{0},
		WhileHandlerName: whileName,
	})

	pointScan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "points"})
	// Both join inputs get a constant bucket key so each node keeps one
	// nodeBucket of all its points and one centrBucket of all centroids.
	pointKey := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{pointScan.ID},
		Exprs: []expr.Expr{
			expr.NewConst(int64(0)),
			expr.NewCol(0, types.KindInt, "id"),
			expr.NewCol(1, types.KindFloat, "x"),
			expr.NewCol(2, types.KindFloat, "y"),
		},
	})
	bcast := p.Add(&exec.OpSpec{Kind: exec.OpBroadcast, Inputs: []int{fix.ID}})
	centKey := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{bcast.ID},
		Exprs: []expr.Expr{
			expr.NewConst(int64(0)),
			expr.NewCol(0, types.KindInt, "cid"),
			expr.NewCol(1, types.KindFloat, "x"),
			expr.NewCol(2, types.KindFloat, "y"),
		},
	})
	join := p.Add(&exec.OpSpec{
		Kind: exec.OpHashJoin, Inputs: []int{pointKey.ID, centKey.ID},
		LeftKey: []int{0}, RightKey: []int{0},
		JoinHandlerName: joinName, ImmutablePort: -1,
	})
	// Per-centroid coordinate/count adjustments sum in the shuffle
	// compactor, mirroring the downstream sums.
	rehash := p.Add(&exec.OpSpec{
		Kind: exec.OpRehash, Inputs: []int{join.ID}, HashKey: []int{0},
		CompactMerge: map[int]string{1: "sum", 2: "sum", 3: "sum"},
	})
	gby := p.Add(&exec.OpSpec{
		Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []exec.AggSpec{
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "xDiff")}, OutName: "sx"},
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(2, types.KindFloat, "yDiff")}, OutName: "sy"},
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(3, types.KindFloat, "nDiff")}, OutName: "n"},
		},
	})
	proj := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{gby.ID},
		Exprs: []expr.Expr{
			expr.NewCol(0, types.KindInt, "cid"),
			expr.NewArith(expr.OpDiv, expr.NewCol(1, types.KindFloat, "sx"),
				expr.NewCall("toFloat", asFloatFn, types.KindFloat, true, expr.NewCol(3, types.KindInt, "n"))),
			expr.NewArith(expr.OpDiv, expr.NewCol(2, types.KindFloat, "sy"),
				expr.NewCall("toFloat", asFloatFn, types.KindFloat, true, expr.NewCol(3, types.KindInt, "n"))),
		},
	})
	fix.Inputs = []int{seed.ID, proj.ID}
	fix.RecursiveOut = bcast.ID
	p.RootID = fix.ID
	return p
}

func asFloatFn(args []types.Value) (types.Value, error) {
	f, _ := types.AsFloat(args[0])
	return f, nil
}

// KMeansSeed deterministically samples k initial centroids from the point
// set (the role of the paper's KMSampleAgg): the k points with the
// smallest id hashes, giving a seed independent of partitioning.
func KMeansSeed(points []types.Tuple, k int) []types.Tuple {
	type cand struct {
		h uint64
		t types.Tuple
	}
	best := make([]cand, 0, k+1)
	for _, p := range points {
		h := types.HashValue(p[0])
		if len(best) < k || h < best[len(best)-1].h {
			best = append(best, cand{h, p})
			for i := len(best) - 1; i > 0 && best[i].h < best[i-1].h; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]types.Tuple, len(best))
	for i, c := range best {
		x, _ := types.AsFloat(c.t[1])
		y, _ := types.AsFloat(c.t[2])
		out[i] = types.NewTuple(int64(i), x, y)
	}
	return out
}
