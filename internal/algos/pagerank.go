// Package algos contains the paper's delta-oriented implementations of
// PageRank, single-source shortest path, and K-means clustering (§3.5 and
// the appendix listings), each as a set of REX delta handlers plus a
// physical-plan builder, in both delta and no-delta configurations, along
// with sequential reference implementations used to validate results.
package algos

import (
	"fmt"
	"math"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// Damping is the PageRank damping factor.
const Damping = 0.85

// PageRankConfig tunes the PageRank query.
type PageRankConfig struct {
	// Epsilon is the Δ threshold: diffs smaller than this are not
	// propagated (Listing 1 uses 0.01).
	Epsilon float64
	// Delta selects the incremental strategy; false builds the no-delta
	// variant that re-processes every vertex each iteration.
	Delta bool
	// MaxIterations caps the recursion (the no-delta variant relies on
	// this, matching the paper's fixed-iteration runs).
	MaxIterations int
}

// RegisterPageRank installs the PRAgg join handler and the PageRank while
// handler (Listing 1) into the catalog, under names unique to the config.
func RegisterPageRank(cat *catalog.Catalog, cfg PageRankConfig) (joinName, whileName string, err error) {
	suffix := "delta"
	if !cfg.Delta {
		suffix = "nodelta"
	}
	joinName = "pr_join_" + suffix
	whileName = "pr_while_" + suffix

	// PRAgg: graph edges accumulate in the left bucket; an incoming
	// PageRank diff δ(srcId, d) fans out d/outdeg to every out-neighbor
	// (Listing 1's resBag.add(nbr, deltaPr/nbrBucket.size())). In the
	// no-delta variant the incoming value is the full PageRank and the
	// contribution is pr/outdeg.
	join := &uda.FuncJoinHandler{
		HName: joinName,
		Out:   types.MustSchema("nbr:Integer", "prDiff:Double"),
		Fn: func(left, right *uda.TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			if fromLeft {
				left.Add(d.Tup)
				return nil, nil
			}
			v, ok := types.AsFloat(d.Tup[1])
			if !ok {
				return nil, fmt.Errorf("algos: PageRank delta with non-numeric value %v", d.Tup[1])
			}
			deg := float64(left.Len())
			if deg == 0 {
				return nil, nil
			}
			out := make([]types.Delta, 0, left.Len())
			for _, e := range left.Tuples {
				out = append(out, types.Update(types.NewTuple(e[1], v/deg)))
			}
			return out, nil
		},
	}
	if err := cat.RegisterJoinHandler(join); err != nil {
		return "", "", err
	}

	// While handler: the mutable relation maps srcId → PageRank. The
	// recursive case delivers refreshed values 0.15 + 0.85·sum; the
	// handler refines the state in place and propagates only diffs above
	// Epsilon — exactly the refinement-of-state semantics of §3.3.
	eps := cfg.Epsilon
	delta := cfg.Delta
	while := &uda.FuncWhileHandler{
		HName: whileName,
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			newPr, ok := types.AsFloat(d.Tup[1])
			if !ok || math.IsNaN(newPr) || math.IsInf(newPr, 0) {
				return nil, nil
			}
			if rel.Len() == 0 {
				rel.Add(types.NewTuple(d.Tup[0], newPr))
				return []types.Delta{types.Update(types.NewTuple(d.Tup[0], newPr))}, nil
			}
			old, _ := types.AsFloat(rel.Tuples[0][1])
			diff := newPr - old
			if !delta {
				// No-delta mode: always refine the state; the fixpoint
				// re-feeds the whole relation each stratum, so emissions
				// only signal "still changing" for implicit termination.
				if diff == 0 {
					return nil, nil
				}
				rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(d.Tup[0], newPr))
				if math.Abs(diff) > eps {
					return []types.Delta{types.Update(types.NewTuple(d.Tup[0], newPr))}, nil
				}
				return nil, nil
			}
			// Delta mode: refine the state only when the change is worth
			// propagating; otherwise the stored value keeps marking the
			// last propagated rank, so sub-ε changes accumulate until
			// they cross the threshold instead of being silently lost.
			if math.Abs(diff) <= eps {
				return nil, nil
			}
			rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(d.Tup[0], newPr))
			return []types.Delta{types.Update(types.NewTuple(d.Tup[0], diff))}, nil
		},
	}
	if err := cat.RegisterWhileHandler(while); err != nil {
		return "", "", err
	}
	return joinName, whileName, nil
}

// PageRankPlan builds the physical plan of Figure 1 for the graph table
// (srcId, destId) partitioned by srcId.
func PageRankPlan(cfg PageRankConfig, joinName, whileName string) *exec.PlanSpec {
	p := exec.NewPlanSpec()
	if cfg.MaxIterations > 0 {
		p.MaxStrata = cfg.MaxIterations
	}

	// Base case: SELECT srcId, 1.0 FROM graph (duplicates per out-edge are
	// absorbed by the while handler).
	baseScan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "graph"})
	baseInit := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{baseScan.ID},
		Exprs: []expr.Expr{expr.NewCol(0, types.KindInt, "srcId"), expr.NewConst(1.0)},
	})

	fix := p.Add(&exec.OpSpec{
		Kind: exec.OpFixpoint, FixpointKey: []int{0},
		WhileHandlerName: whileName,
		NoDelta:          !cfg.Delta,
	})

	// Recursive case: join diffs with the graph, split PageRank among
	// out-edges, redistribute by destination, and sum.
	graphScan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "graph"})
	join := p.Add(&exec.OpSpec{
		Kind: exec.OpHashJoin, Inputs: []int{graphScan.ID, fix.ID},
		LeftKey: []int{0}, RightKey: []int{0},
		JoinHandlerName: joinName, ImmutablePort: 0,
	})
	// Same-key contribution deltas may merge by summation in the shuffle
	// compactor because the downstream group-by sums them anyway.
	rehash := p.Add(&exec.OpSpec{
		Kind: exec.OpRehash, Inputs: []int{join.ID}, HashKey: []int{0},
		CompactMerge: map[int]string{1: "sum"},
	})
	gby := p.Add(&exec.OpSpec{
		Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []exec.AggSpec{{
			Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "prDiff")}, OutName: "prSum",
		}},
		ResetPerStratum: !cfg.Delta,
	})
	proj := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{gby.ID},
		Exprs: []expr.Expr{
			expr.NewCol(0, types.KindInt, "nbr"),
			expr.NewArith(expr.OpAdd, expr.NewConst(1-Damping),
				expr.NewArith(expr.OpMul, expr.NewConst(Damping), expr.NewCol(1, types.KindFloat, "prSum"))),
		},
	})

	fix.Inputs = []int{baseInit.ID, proj.ID}
	fix.RecursiveOut = join.ID
	p.RootID = fix.ID
	return p
}
