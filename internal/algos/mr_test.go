package algos

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
)

func TestHadoopPageRankMatchesReference(t *testing.T) {
	g := datagen.DBPediaGraph(200, 5)
	want, iters := PageRankRef(g, 1e-9, 30)
	eng := mapred.NewEngine(mapred.Config{Workers: 4})
	res, err := HadoopPageRank(eng, g, iters)
	must(t, err)
	got := PageRankFromMR(res.State)
	for v, w := range want {
		if math.Abs(got[int64(v)]-w) > 1e-6 {
			t.Fatalf("pr[%d] = %v, want %v", v, got[int64(v)], w)
		}
	}
}

func TestHaLoopPageRankMatchesHadoopWithLessShuffle(t *testing.T) {
	g := datagen.DBPediaGraph(200, 6)
	mh := &mapred.Metrics{}
	eh := mapred.NewEngine(mapred.Config{Workers: 4, Metrics: mh})
	hres, err := HadoopPageRank(eh, g, 10)
	must(t, err)

	ml := &mapred.Metrics{}
	el := mapred.NewEngine(mapred.Config{Workers: 4, Metrics: ml})
	hl := mapred.NewHaLoopEngine(el)
	lres, err := HaLoopPageRank(hl, g, 10)
	must(t, err)

	hpr := PageRankFromMR(hres.State)
	lpr := PageRankFromMR(lres.State)
	for v, w := range hpr {
		if math.Abs(lpr[v]-w) > 1e-9 {
			t.Fatalf("HaLoop pr[%d] = %v, Hadoop %v", v, lpr[v], w)
		}
	}
	_, _, hBytes := mh.Snapshot()
	_, _, lBytes := ml.Snapshot()
	if lBytes >= hBytes {
		t.Fatalf("HaLoop must shuffle less: %d vs %d", lBytes, hBytes)
	}
}

func TestHadoopSSSPMatchesBFS(t *testing.T) {
	g := datagen.DBPediaGraph(300, 8)
	want := BFSRef(g, 0)
	eng := mapred.NewEngine(mapred.Config{Workers: 4})
	res, err := HadoopSSSP(eng, g, 0, 40)
	must(t, err)
	got := DistsFromMR(res.State)
	for v, d := range want {
		if d < 0 {
			if _, ok := got[int64(v)]; ok {
				t.Fatalf("vertex %d should be unreachable", v)
			}
			continue
		}
		if got[int64(v)] != float64(d) {
			t.Fatalf("dist[%d] = %v, want %d", v, got[int64(v)], d)
		}
	}
}

func TestHaLoopSSSPMatchesBFS(t *testing.T) {
	g := datagen.DBPediaGraph(300, 8)
	want := BFSRef(g, 0)
	eng := mapred.NewEngine(mapred.Config{Workers: 4})
	hl := mapred.NewHaLoopEngine(eng)
	res, err := HaLoopSSSP(hl, g, 0, 40)
	must(t, err)
	got := DistsFromMR(res.State)
	for v, d := range want {
		if d >= 0 && got[int64(v)] != float64(d) {
			t.Fatalf("dist[%d] = %v, want %d", v, got[int64(v)], d)
		}
	}
}

func TestHadoopKMeansMatchesLloyd(t *testing.T) {
	points := datagen.GeoPoints(300, 4, 1, 31)
	seed := KMeansSeed(points, 4)
	want, _ := KMeansRef(points, seed, 60)
	eng := mapred.NewEngine(mapred.Config{Workers: 4})
	res, err := HadoopKMeans(eng, points, 4, 60)
	must(t, err)
	if len(res.State) != 4 {
		t.Fatalf("centroids = %d", len(res.State))
	}
	for _, kv := range res.State {
		cid, _ := types.AsInt(kv.K)
		var x, y float64
		if _, err := fmtSscan(kv.V.(string), &x, &y); err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-want[cid][0]) > 1e-6 || math.Abs(y-want[cid][1]) > 1e-6 {
			t.Fatalf("centroid %d = (%v,%v), want %v", cid, x, y, want[cid])
		}
	}
}

// fmtSscan parses "x,y" into floats.
func fmtSscan(s string, x, y *float64) (int, error) {
	xs, ys, _ := strings.Cut(s, ",")
	var err error
	if *x, err = strconv.ParseFloat(xs, 64); err != nil {
		return 0, err
	}
	if *y, err = strconv.ParseFloat(ys, 64); err != nil {
		return 1, err
	}
	return 2, nil
}
