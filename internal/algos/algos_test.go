package algos

import (
	"math"
	"testing"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/types"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func graphCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name: "graph", Schema: types.MustSchema("srcId:Integer", "destId:Integer"), PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name: "spseed", Schema: types.MustSchema("srcId:Integer", "dist:Double"), PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name: "points", Schema: types.MustSchema("id:Integer", "x:Double", "y:Double"), PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name: "kmseed", Schema: types.MustSchema("cid:Integer", "x:Double", "y:Double"), PartitionKey: 0,
	}))
	return cat
}

func prMap(res *exec.Result) map[int64]float64 {
	out := map[int64]float64{}
	for _, tup := range res.Tuples {
		id, _ := types.AsInt(tup[0])
		v, _ := types.AsFloat(tup[1])
		out[id] = v
	}
	return out
}

func TestPageRankDeltaMatchesReference(t *testing.T) {
	g := datagen.DBPediaGraph(400, 7)
	want, _ := PageRankRef(g, 1e-6, 200)

	cat := graphCatalog(t)
	cfg := PageRankConfig{Epsilon: 1e-4, Delta: true, MaxIterations: 200}
	jn, wn, err := RegisterPageRank(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(4, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	res, err := eng.Run(PageRankPlan(cfg, jn, wn), exec.Options{})
	must(t, err)

	got := prMap(res)
	if len(got) != g.NumVertices {
		t.Fatalf("got %d vertices, want %d", len(got), g.NumVertices)
	}
	for v, w := range want {
		// ε-thresholded propagation leaves bounded error: each vertex's
		// rank may lag by accumulated sub-ε residue.
		if math.Abs(got[int64(v)]-w) > 0.05*math.Max(w, 1) {
			t.Fatalf("pr[%d] = %v, want %v", v, got[int64(v)], w)
		}
	}
	// Δᵢ sets must shrink as the computation converges (Fig. 2).
	last := res.Strata[len(res.Strata)-1]
	if last.NewTuples != 0 {
		t.Fatal("PageRank must reach an implicit fixpoint")
	}
	first := res.Strata[1]
	if first.NewTuples <= last.NewTuples {
		t.Fatal("Δ set should shrink over time")
	}
}

func TestPageRankNoDeltaMatchesReference(t *testing.T) {
	g := datagen.DBPediaGraph(200, 11)
	want, iters := PageRankRef(g, 1e-3, 100)

	cat := graphCatalog(t)
	cfg := PageRankConfig{Epsilon: 1e-3, Delta: false, MaxIterations: iters + 2}
	jn, wn, err := RegisterPageRank(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(3, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	res, err := eng.Run(PageRankPlan(cfg, jn, wn), exec.Options{})
	must(t, err)
	got := prMap(res)
	for v, w := range want {
		if math.Abs(got[int64(v)]-w) > 0.02*math.Max(w, 1) {
			t.Fatalf("pr[%d] = %v, want %v", v, got[int64(v)], w)
		}
	}
}

func TestPageRankDeltaMovesLessData(t *testing.T) {
	g := datagen.DBPediaGraph(300, 3)
	run := func(delta bool) int64 {
		cat := graphCatalog(t)
		cfg := PageRankConfig{Epsilon: 1e-3, Delta: delta, MaxIterations: 30}
		jn, wn, err := RegisterPageRank(cat, cfg)
		must(t, err)
		eng := exec.NewEngine(4, 32, 2, cat)
		must(t, eng.Load("graph", 0, g.Edges))
		res, err := eng.Run(PageRankPlan(cfg, jn, wn), exec.Options{})
		must(t, err)
		return res.BytesSent
	}
	deltaBytes := run(true)
	noDeltaBytes := run(false)
	if deltaBytes >= noDeltaBytes {
		t.Fatalf("delta should ship fewer bytes: %d vs %d", deltaBytes, noDeltaBytes)
	}
}

func TestSSSPDeltaMatchesBFS(t *testing.T) {
	g := datagen.DBPediaGraph(500, 13)
	want := BFSRef(g, 0)
	cat := graphCatalog(t)
	cfg := SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}
	jn, wn, err := RegisterSSSP(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(4, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	must(t, eng.Load("spseed", 0, SSSPSeed(cfg)))
	res, err := eng.Run(SSSPPlan(cfg, jn, wn), exec.Options{})
	must(t, err)
	got := prMap(res)
	reachable := 0
	for v, d := range want {
		if d < 0 {
			continue
		}
		reachable++
		if got[int64(v)] != float64(d) {
			t.Fatalf("dist[%d] = %v, want %d", v, got[int64(v)], d)
		}
	}
	if len(got) != reachable {
		t.Fatalf("reached %d, want %d", len(got), reachable)
	}
}

func TestSSSPNoDeltaTruncatedIterations(t *testing.T) {
	// The paper's non-delta strategies run a fixed 6 iterations, reaching
	// ~99% of vertices; distances found must still be optimal.
	g := datagen.DBPediaGraph(300, 17)
	want := BFSRef(g, 0)
	cat := graphCatalog(t)
	cfg := SSSPConfig{Source: 0, Delta: false, MaxIterations: 6}
	jn, wn, err := RegisterSSSP(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(3, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	must(t, eng.Load("spseed", 0, SSSPSeed(cfg)))
	res, err := eng.Run(SSSPPlan(cfg, jn, wn), exec.Options{})
	must(t, err)
	for _, tup := range res.Tuples {
		id, _ := types.AsInt(tup[0])
		d, _ := types.AsFloat(tup[1])
		if want[id] < 0 || float64(want[id]) != d {
			t.Fatalf("dist[%d] = %v, want %d", id, d, want[id])
		}
		if int(d) > 5 {
			t.Fatalf("dist[%d] = %v beyond 6 iterations", id, d)
		}
	}
}

func TestKMeansMatchesLloyd(t *testing.T) {
	points := datagen.GeoPoints(400, 5, 1, 21)
	seed := KMeansSeed(points, 5)
	wantCentroids, _ := KMeansRef(points, seed, 100)

	cat := graphCatalog(t)
	cfg := KMeansConfig{K: 5, MaxIterations: 100}
	jn, wn, err := RegisterKMeans(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(3, 32, 2, cat)
	must(t, eng.Load("points", 0, points))
	must(t, eng.Load("kmseed", 0, seed))
	res, err := eng.Run(KMeansPlan(cfg, jn, wn), exec.Options{})
	must(t, err)
	if len(res.Tuples) != 5 {
		t.Fatalf("centroids = %d, want 5: %v", len(res.Tuples), res.Tuples)
	}
	got := map[int64][2]float64{}
	for _, tup := range res.Tuples {
		cid, _ := types.AsInt(tup[0])
		x, _ := types.AsFloat(tup[1])
		y, _ := types.AsFloat(tup[2])
		got[cid] = [2]float64{x, y}
	}
	for c, w := range wantCentroids {
		g := got[int64(c)]
		if math.Abs(g[0]-w[0]) > 1e-6 || math.Abs(g[1]-w[1]) > 1e-6 {
			t.Fatalf("centroid %d = %v, want %v", c, g, w)
		}
	}
}

func TestKMeansSeedDeterministic(t *testing.T) {
	points := datagen.GeoPoints(100, 3, 1, 5)
	s1 := KMeansSeed(points, 4)
	s2 := KMeansSeed(points, 4)
	if len(s1) != 4 {
		t.Fatalf("seed size %d", len(s1))
	}
	for i := range s1 {
		if !s1[i].Equal(s2[i]) {
			t.Fatal("seed must be deterministic")
		}
	}
}

func TestConvergenceProfileShrinks(t *testing.T) {
	g := datagen.DBPediaGraph(500, 9)
	prof := PageRankConvergence(g, 0.001, 60)
	if len(prof.NonConverged) < 3 {
		t.Fatalf("too few iterations: %d", len(prof.NonConverged))
	}
	first := prof.NonConverged[0]
	last := prof.NonConverged[len(prof.NonConverged)-1]
	if last != 0 {
		t.Fatal("profile should end converged")
	}
	if first <= last {
		t.Fatal("non-converged count should decline")
	}
}

func TestReferenceBFS(t *testing.T) {
	g := &datagen.Graph{NumVertices: 4}
	g.Edges = []types.Tuple{
		types.NewTuple(int64(0), int64(1)),
		types.NewTuple(int64(1), int64(2)),
	}
	d := BFSRef(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 || d[3] != -1 {
		t.Fatalf("BFS = %v", d)
	}
}

// runSSSPOpts executes SSSP on a fresh engine with the given options.
func runSSSPOpts(t *testing.T, g *datagen.Graph, opts exec.Options) *exec.Result {
	t.Helper()
	cat := graphCatalog(t)
	cfg := SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}
	jn, wn, err := RegisterSSSP(cat, cfg)
	must(t, err)
	eng := exec.NewEngine(4, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	must(t, eng.Load("spseed", 0, SSSPSeed(cfg)))
	res, err := eng.Run(SSSPPlan(cfg, jn, wn), opts)
	must(t, err)
	return res
}

// Delta-batch compaction must not change query results, and it must
// measurably shrink the wire volume: SSSP fans many same-destination
// distance updates into the shuffle, which min-merge collapses.
func TestSSSPCompactionEquivalence(t *testing.T) {
	g := datagen.DBPediaGraph(600, 21)
	off := runSSSPOpts(t, g, exec.Options{})
	on := runSSSPOpts(t, g, exec.Options{Compaction: true})

	wantDist := prMap(off)
	gotDist := prMap(on)
	if len(gotDist) != len(wantDist) {
		t.Fatalf("compaction changed result size: %d vs %d", len(gotDist), len(wantDist))
	}
	for v, d := range wantDist {
		if gotDist[v] != d {
			t.Fatalf("compaction changed dist[%d]: %v vs %v", v, gotDist[v], d)
		}
	}
	if off.CompactIn != 0 || off.CompactOut != 0 {
		t.Fatalf("compaction-off run reported compactor traffic: %d/%d", off.CompactIn, off.CompactOut)
	}
	if on.CompactIn == 0 || on.CompactOut >= on.CompactIn {
		t.Fatalf("compactor did not coalesce: in=%d out=%d", on.CompactIn, on.CompactOut)
	}
	if on.BytesSent >= off.BytesSent {
		t.Fatalf("compaction did not reduce wire bytes: on=%d off=%d", on.BytesSent, off.BytesSent)
	}
}

// PageRank with sum-merge compaction must converge to the same ranks
// (floating-point addition order may differ, hence a tolerance).
func TestPageRankCompactionEquivalence(t *testing.T) {
	g := datagen.DBPediaGraph(400, 23)
	cfg := PageRankConfig{Epsilon: 1e-4, Delta: true, MaxIterations: 200}
	run := func(opts exec.Options) *exec.Result {
		cat := graphCatalog(t)
		jn, wn, err := RegisterPageRank(cat, cfg)
		must(t, err)
		eng := exec.NewEngine(4, 32, 2, cat)
		must(t, eng.Load("graph", 0, g.Edges))
		res, err := eng.Run(PageRankPlan(cfg, jn, wn), opts)
		must(t, err)
		return res
	}
	off := prMap(run(exec.Options{}))
	onRes := run(exec.Options{Compaction: true})
	on := prMap(onRes)
	if len(on) != len(off) {
		t.Fatalf("compaction changed result size: %d vs %d", len(on), len(off))
	}
	for v, w := range off {
		if math.Abs(on[v]-w) > 0.02*math.Max(w, 1) {
			t.Fatalf("pr[%d] = %v with compaction, %v without", v, on[v], w)
		}
	}
	if onRes.CompactOut >= onRes.CompactIn {
		t.Fatalf("compactor did not coalesce: in=%d out=%d", onRes.CompactIn, onRes.CompactOut)
	}
}
