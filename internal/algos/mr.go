package algos

import (
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
)

// This file holds the MapReduce implementations the paper benchmarks
// against: classic Hadoop-style PageRank / shortest path / K-means, plus
// HaLoop variants that keep the immutable relation in loop-aware caches.
// State values use the textual encodings typical of Hadoop jobs — the
// formatting overhead is part of what §6.1/§6.3 measure.

// encodeAdj renders an adjacency list as "n1,n2,...".
func encodeAdj(adj []int32) string {
	parts := make([]string, len(adj))
	for i, n := range adj {
		parts[i] = strconv.Itoa(int(n))
	}
	return strings.Join(parts, ",")
}

func decodeAdj(s string) []int64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err == nil {
			out = append(out, n)
		}
	}
	return out
}

// MRResult captures an iterative MapReduce run.
type MRResult struct {
	State      []mapred.KV
	Iterations int
	PerIter    []time.Duration
	Duration   time.Duration
}

// HadoopPageRank runs classic MapReduce PageRank: each iteration maps the
// full state (rank and adjacency ride together through the shuffle — the
// immutable-data reprocessing §1 criticizes), sums contributions, and
// rewrites the state. Runs exactly iters iterations (the paper's
// fixed-iteration methodology; convergence testing is free and external).
func HadoopPageRank(eng *mapred.Engine, g *datagen.Graph, iters int) (*MRResult, error) {
	state := PageRankMRState(g)
	job := PageRankMRJob()
	return runIters(state, iters, func(st []mapred.KV) ([]mapred.KV, error) {
		return eng.Run(job, st)
	})
}

// PageRankMRState builds the initial (node, "1|adj") state records.
func PageRankMRState(g *datagen.Graph) []mapred.KV {
	state := make([]mapred.KV, 0, g.NumVertices)
	adj := g.Adjacency()
	for v := 0; v < g.NumVertices; v++ {
		state = append(state, mapred.KV{K: int64(v), V: "1|" + encodeAdj(adj[v])})
	}
	return state
}

// PageRankMRJob is the classic Hadoop PageRank job (also executed inside
// REX by the §4.4 wrappers).
func PageRankMRJob() *mapred.Job {
	return &mapred.Job{
		Name: "pagerank",
		Mapper: mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			s, _ := v.(string)
			prStr, adjStr, _ := strings.Cut(s, "|")
			pr, _ := strconv.ParseFloat(prStr, 64)
			nbrs := decodeAdj(adjStr)
			emit(k, "S|"+adjStr)
			if len(nbrs) == 0 {
				return nil
			}
			share := strconv.FormatFloat(pr/float64(len(nbrs)), 'g', -1, 64)
			for _, n := range nbrs {
				emit(n, "P|"+share)
			}
			return nil
		}),
		Combiner: prCombiner(),
		Reducer: mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			sum := 0.0
			adjStr := ""
			for _, v := range vs {
				s, _ := v.(string)
				tag, rest, _ := strings.Cut(s, "|")
				if tag == "S" {
					adjStr = rest
				} else {
					p, _ := strconv.ParseFloat(rest, 64)
					sum += p
				}
			}
			pr := (1 - Damping) + Damping*sum
			emit(k, strconv.FormatFloat(pr, 'g', -1, 64)+"|"+adjStr)
			return nil
		}),
	}
}

// prCombiner pre-sums P contributions within a map task.
func prCombiner() mapred.Reducer {
	return mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		sum := 0.0
		have := false
		for _, v := range vs {
			s, _ := v.(string)
			tag, rest, _ := strings.Cut(s, "|")
			if tag == "P" {
				p, _ := strconv.ParseFloat(rest, 64)
				sum += p
				have = true
			} else {
				emit(k, s)
			}
		}
		if have {
			emit(k, "P|"+strconv.FormatFloat(sum, 'g', -1, 64))
		}
		return nil
	})
}

// HaLoopPageRank keeps the adjacency lists in HaLoop's loop-aware cache:
// only ranks and contributions move, but every vertex still recomputes
// every iteration (HaLoop saves I/O, not computation — §1).
func HaLoopPageRank(hl *mapred.HaLoopEngine, g *datagen.Graph, iters int) (*MRResult, error) {
	adj := g.Adjacency()
	adjCache := make([]mapred.KV, 0, g.NumVertices)
	state := make([]mapred.KV, 0, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		adjCache = append(adjCache, mapred.KV{K: int64(v), V: encodeAdj(adj[v])})
		state = append(state, mapred.KV{K: int64(v), V: "1"})
	}
	hl.BuildCache("pr_adj", adjCache)
	job := &mapred.Job{
		Name: "pagerank-haloop",
		Mapper: mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			s, _ := v.(string)
			pr, _ := strconv.ParseFloat(s, 64)
			emit(k, "Z") // presence marker keeps sink vertices alive
			var nbrs []int64
			for _, av := range hl.CacheLookup("pr_adj", k) {
				nbrs = append(nbrs, decodeAdj(av.(string))...)
			}
			if len(nbrs) == 0 {
				return nil
			}
			share := strconv.FormatFloat(pr/float64(len(nbrs)), 'g', -1, 64)
			for _, n := range nbrs {
				emit(n, "P|"+share)
			}
			return nil
		}),
		Combiner: prCombiner(),
		Reducer: mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			sum := 0.0
			for _, v := range vs {
				s, _ := v.(string)
				if tag, rest, _ := strings.Cut(s, "|"); tag == "P" {
					p, _ := strconv.ParseFloat(rest, 64)
					sum += p
				}
			}
			pr := (1 - Damping) + Damping*sum
			emit(k, strconv.FormatFloat(pr, 'g', -1, 64))
			return nil
		}),
	}
	return runIters(state, iters, func(st []mapred.KV) ([]mapred.KV, error) {
		return hl.Run(job, st, "")
	})
}

// HadoopSSSP runs shortest path with relation-level Δ updates (the paper
// grants Hadoop and HaLoop frontier awareness for this query, §6.3): the
// whole state maps each iteration, but only frontier vertices emit
// candidate distances. State: "dist|flag|adj", dist = -1 for unreached.
func HadoopSSSP(eng *mapred.Engine, g *datagen.Graph, source int64, iters int) (*MRResult, error) {
	adj := g.Adjacency()
	state := make([]mapred.KV, 0, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		d, f := "-1", "0"
		if int64(v) == source {
			d, f = "0", "1"
		}
		state = append(state, mapred.KV{K: int64(v), V: d + "|" + f + "|" + encodeAdj(adj[v])})
	}
	job := &mapred.Job{
		Name: "sssp",
		Mapper: mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			s, _ := v.(string)
			parts := strings.SplitN(s, "|", 3)
			emit(k, "S|"+parts[0]+"|"+parts[2])
			if parts[1] == "1" && parts[0] != "-1" {
				d, _ := strconv.ParseFloat(parts[0], 64)
				cand := strconv.FormatFloat(d+1, 'g', -1, 64)
				for _, n := range decodeAdj(parts[2]) {
					emit(n, "C|"+cand)
				}
			}
			return nil
		}),
		Reducer: mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			cur := math.Inf(1)
			adjStr := ""
			best := math.Inf(1)
			for _, v := range vs {
				s, _ := v.(string)
				tag, rest, _ := strings.Cut(s, "|")
				if tag == "S" {
					dStr, a, _ := strings.Cut(rest, "|")
					adjStr = a
					if dStr != "-1" {
						cur, _ = strconv.ParseFloat(dStr, 64)
					}
				} else {
					c, _ := strconv.ParseFloat(rest, 64)
					if c < best {
						best = c
					}
				}
			}
			d, flag := cur, "0"
			if best < cur {
				d, flag = best, "1"
			}
			dStr := "-1"
			if !math.IsInf(d, 1) {
				dStr = strconv.FormatFloat(d, 'g', -1, 64)
			}
			emit(k, dStr+"|"+flag+"|"+adjStr)
			return nil
		}),
	}
	return runIters(state, iters, func(st []mapred.KV) ([]mapred.KV, error) {
		return eng.Run(job, st)
	})
}

// HaLoopSSSP keeps adjacency in the cache; state is "dist|flag".
func HaLoopSSSP(hl *mapred.HaLoopEngine, g *datagen.Graph, source int64, iters int) (*MRResult, error) {
	adj := g.Adjacency()
	adjCache := make([]mapred.KV, 0, g.NumVertices)
	state := make([]mapred.KV, 0, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		adjCache = append(adjCache, mapred.KV{K: int64(v), V: encodeAdj(adj[v])})
		d, f := "-1", "0"
		if int64(v) == source {
			d, f = "0", "1"
		}
		state = append(state, mapred.KV{K: int64(v), V: d + "|" + f})
	}
	hl.BuildCache("sp_adj", adjCache)
	job := &mapred.Job{
		Name: "sssp-haloop",
		Mapper: mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			s, _ := v.(string)
			dStr, flag, _ := strings.Cut(s, "|")
			emit(k, "S|"+dStr)
			if flag == "1" && dStr != "-1" {
				d, _ := strconv.ParseFloat(dStr, 64)
				cand := strconv.FormatFloat(d+1, 'g', -1, 64)
				for _, av := range hl.CacheLookup("sp_adj", k) {
					for _, n := range decodeAdj(av.(string)) {
						emit(n, "C|"+cand)
					}
				}
			}
			return nil
		}),
		Reducer: mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			cur := math.Inf(1)
			best := math.Inf(1)
			for _, v := range vs {
				s, _ := v.(string)
				tag, rest, _ := strings.Cut(s, "|")
				if tag == "S" {
					if rest != "-1" {
						cur, _ = strconv.ParseFloat(rest, 64)
					}
				} else if c, _ := strconv.ParseFloat(rest, 64); c < best {
					best = c
				}
			}
			d, flag := cur, "0"
			if best < cur {
				d, flag = best, "1"
			}
			dStr := "-1"
			if !math.IsInf(d, 1) {
				dStr = strconv.FormatFloat(d, 'g', -1, 64)
			}
			emit(k, dStr+"|"+flag)
			return nil
		}),
	}
	return runIters(state, iters, func(st []mapred.KV) ([]mapred.KV, error) {
		return hl.Run(job, st, "")
	})
}

// HadoopKMeans runs MapReduce K-means: every iteration re-maps every
// point against the centroid set (distributed-cache style), re-assigning
// and re-summing from scratch — no notion of "points that switched".
// Converges when centroids stop moving, matching Lloyd's termination.
func HadoopKMeans(eng *mapred.Engine, points []types.Tuple, k, maxIters int) (*MRResult, error) {
	seed := KMeansSeed(points, k)
	centroids := make([][2]float64, k)
	for i, c := range seed {
		x, _ := types.AsFloat(c[1])
		y, _ := types.AsFloat(c[2])
		centroids[i] = [2]float64{x, y}
	}
	input := make([]mapred.KV, len(points))
	for i, p := range points {
		x, _ := types.AsFloat(p[1])
		y, _ := types.AsFloat(p[2])
		input[i] = mapred.KV{K: p[0], V: strconv.FormatFloat(x, 'g', -1, 64) + "," + strconv.FormatFloat(y, 'g', -1, 64)}
	}
	res := &MRResult{}
	start := time.Now()
	for iter := 1; iter <= maxIters; iter++ {
		iterStart := time.Now()
		cs := centroids // closure snapshot for this job's mappers
		job := &mapred.Job{
			Name: "kmeans",
			Mapper: mapred.MapperFunc(func(kk, v types.Value, emit func(k, v types.Value)) error {
				s, _ := v.(string)
				xs, ys, _ := strings.Cut(s, ",")
				x, _ := strconv.ParseFloat(xs, 64)
				y, _ := strconv.ParseFloat(ys, 64)
				best, bestD := 0, math.Inf(1)
				for c := range cs {
					if d := dist2(x, y, cs[c][0], cs[c][1]); d < bestD {
						best, bestD = c, d
					}
				}
				emit(int64(best), s+",1")
				return nil
			}),
			Combiner: kmSumReducer(),
			Reducer:  kmSumReducer(),
		}
		out, err := eng.Run(job, input)
		if err != nil {
			return nil, err
		}
		moved := false
		for _, kv := range out {
			cid, _ := types.AsInt(kv.K)
			parts := strings.Split(kv.V.(string), ",")
			sx, _ := strconv.ParseFloat(parts[0], 64)
			sy, _ := strconv.ParseFloat(parts[1], 64)
			n, _ := strconv.ParseFloat(parts[2], 64)
			if n > 0 {
				nx, ny := sx/n, sy/n
				if nx != centroids[cid][0] || ny != centroids[cid][1] {
					moved = true
				}
				centroids[cid] = [2]float64{nx, ny}
			}
		}
		res.PerIter = append(res.PerIter, time.Since(iterStart))
		res.Iterations = iter
		if !moved {
			break
		}
	}
	res.Duration = time.Since(start)
	res.State = make([]mapred.KV, k)
	for c := range centroids {
		res.State[c] = mapred.KV{K: int64(c), V: strconv.FormatFloat(centroids[c][0], 'g', -1, 64) + "," +
			strconv.FormatFloat(centroids[c][1], 'g', -1, 64)}
	}
	return res, nil
}

// kmSumReducer sums "x,y,n" triples.
func kmSumReducer() mapred.Reducer {
	return mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		var sx, sy, n float64
		for _, v := range vs {
			parts := strings.Split(v.(string), ",")
			if len(parts) != 3 {
				continue
			}
			x, _ := strconv.ParseFloat(parts[0], 64)
			y, _ := strconv.ParseFloat(parts[1], 64)
			c, _ := strconv.ParseFloat(parts[2], 64)
			sx += x
			sy += y
			n += c
		}
		emit(k, strconv.FormatFloat(sx, 'g', -1, 64)+","+strconv.FormatFloat(sy, 'g', -1, 64)+","+
			strconv.FormatFloat(n, 'g', -1, 64))
		return nil
	})
}

// runIters drives a fixed-iteration MapReduce loop with timing.
func runIters(state []mapred.KV, iters int, step func([]mapred.KV) ([]mapred.KV, error)) (*MRResult, error) {
	res := &MRResult{}
	start := time.Now()
	for i := 1; i <= iters; i++ {
		iterStart := time.Now()
		next, err := step(state)
		if err != nil {
			return nil, err
		}
		state = next
		res.PerIter = append(res.PerIter, time.Since(iterStart))
		res.Iterations = i
	}
	res.State = state
	res.Duration = time.Since(start)
	return res, nil
}

// PageRankFromMR extracts ranks from MapReduce state for validation.
func PageRankFromMR(state []mapred.KV) map[int64]float64 {
	out := map[int64]float64{}
	for _, kv := range state {
		id, _ := types.AsInt(kv.K)
		s, _ := kv.V.(string)
		prStr, _, _ := strings.Cut(s, "|")
		pr, _ := strconv.ParseFloat(prStr, 64)
		out[id] = pr
	}
	return out
}

// DistsFromMR extracts distances from MapReduce SSSP state.
func DistsFromMR(state []mapred.KV) map[int64]float64 {
	out := map[int64]float64{}
	for _, kv := range state {
		id, _ := types.AsInt(kv.K)
		s, _ := kv.V.(string)
		dStr, _, _ := strings.Cut(s, "|")
		if dStr != "-1" {
			d, _ := strconv.ParseFloat(dStr, 64)
			out[id] = d
		}
	}
	return out
}
