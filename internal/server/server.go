// Package server implements rexd: a multi-tenant REX query server. One
// process owns a partitioned engine — SubPools identically staged worker
// pools over the same deterministic data — and one catalog, and admits
// many concurrent client sessions over the same length-prefixed wire
// format the worker transport speaks. Clients connect with
// rex.Open(ctx, rex.WithServer(addr), rex.WithServerTenant(id)) and use
// the normal Session API; the server schedules their work across the
// sub-pools — one runner per pool, so up to SubPools queries execute
// genuinely concurrently — under a priority-aware, tenant-fair
// discipline: interactive queries order high-priority-first with
// round-robin across tenants inside each level, standing-query refresh
// rounds share the runners under weighted fair queueing, per-tenant
// inflight quotas reject over-quota tenants with ErrTenantBusy, and a
// bounded global admission window sheds overload with ErrServerBusy.
// Each distinct query text compiles once into a cross-session plan
// cache, and every subscription runs as a resident standing dataflow
// whose rounds cost the net change, not a recompute.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/types"
)

// Config tunes a Server.
type Config struct {
	// Nodes sizes each in-process worker pool (default 4). Ignored when
	// Peers attach external rexnode daemons instead.
	Nodes int
	// SubPools partitions the engine into this many identically staged
	// worker pools (default 2): queries admitted together run genuinely
	// concurrently, one per pool, at the cost of one staged copy of the
	// data per pool. Forced to 1 when Peers front a distributed pool (the
	// daemons are the parallelism budget there).
	SubPools int
	// Peers are rexnode daemon addresses; when set the server fronts a
	// distributed pool (catalog declarations then require a Dataset, as
	// on any TCP session).
	Peers []string
	// Dataset/Size/Seed stage a deterministic dataset at startup (the
	// rex.WithDataset form); empty means an empty catalog that clients
	// populate with CreateTable.
	Dataset string
	Size    int
	Seed    int64
	// Handlers names a delta-handler bundle to register (rex.WithHandlers).
	Handlers string
	// Replication is the store replication factor (0 = session default).
	Replication int
	// DataDir, when set on an in-process pool, backs the workers' stores
	// with paged spill-to-disk files under it (rex.WithSpillDir): datasets
	// larger than RAM page through a buffer pool, and Close flushes dirty
	// pages into durable checkpoint images. Each sub-pool pages under its
	// own subdirectory. With Peers the daemons page under their own
	// rexnode -data-dir instead, so DataDir must be empty.
	DataDir string
	// BufferPoolPages sizes the paged-store buffer pool in 8 KiB pages
	// (0 = default). With Peers it crosses the wire in every job spec.
	BufferPoolPages int

	// MaxSessions caps concurrently connected clients (default 64);
	// beyond it the handshake is refused with ErrServerBusy.
	MaxSessions int
	// MaxInflight is the admission window: how many requests may hold
	// slots at once (default 16). Admitted requests queue on the
	// scheduler for a runner, so this bounds the *committed* backlog.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for an admission slot
	// (default 64); beyond it requests fail fast with ErrServerBusy.
	MaxQueue int
	// TenantQuota caps any one tenant's inflight requests — admitted plus
	// queued (0 = unlimited). A tenant at quota is rejected immediately
	// with ErrTenantBusy; other tenants' capacity is unaffected.
	TenantQuota int
	// TenantQuotas overrides TenantQuota per tenant id.
	TenantQuotas map[string]int
	// PlanCacheCap bounds the cross-session plan cache (default 256
	// entries, LRU eviction).
	PlanCacheCap int
	// LogWriter, when set, receives one line per accepted session and
	// per error (default: silent).
	LogWriter io.Writer
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.SubPools <= 0 {
		c.SubPools = 2
	}
	if len(c.Peers) > 0 {
		c.SubPools = 1
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.PlanCacheCap <= 0 {
		c.PlanCacheCap = 256
	}
}

// helloTimeout bounds how long an accepted connection may dawdle before
// completing the handshake.
const helloTimeout = 30 * time.Second

// maxRowsPayload is the delta-payload budget per MsgRows frame; larger
// batches split so no frame approaches the transport's MaxFrame cap.
const maxRowsPayload = srvproto.MaxFrame - 64*1024

// Server is a running rexd instance.
type Server struct {
	cfg   Config
	be    *backend // the partitioned engine: sub-pools + replay log
	cache *planCache
	sched *sched
	gate  *gate

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup
	flowWG sync.WaitGroup // resident-flow teardowns; waited after sched drain

	stSessions atomic.Int64
	stActive   atomic.Int64
	stQueries  atomic.Int64
	stRejected atomic.Int64
	stSubs     atomic.Int64
	stRounds   atomic.Int64
	stIngests  atomic.Int64
}

// New boots the sub-pools and builds the server. Close releases
// everything, the pools included.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	be, err := newBackend(ctx, cfg)
	if err != nil {
		cancel()
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		be:         be,
		sched:      newSched(be.size()),
		gate:       newGate(cfg.MaxInflight, cfg.MaxQueue, cfg.TenantQuota, cfg.TenantQuotas),
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      map[*srvConn]struct{}{},
	}
	s.cache = newPlanCache(be, cfg.PlanCacheCap)
	return s, nil
}

// Session exposes sub-pool 0's session (rexd main uses it for staging
// checks; mutations must go through client connections so every pool and
// flow sees them).
func (s *Server) Session() *rex.Session { return s.be.pool(0) }

// Listen starts accepting client sessions on addr, returning the bound
// listener (addr may use port 0). Serve runs on a background goroutine.
func (s *Server) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, srvproto.ErrSessionClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return ln, nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Close stops accepting, tears down every session (reaping their
// standing flows), waits for handlers, drains the scheduler, waits for
// flow teardowns, and closes the sub-pools.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.baseCancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
	s.wg.Wait()
	s.sched.close()
	s.flowWG.Wait()
	return s.be.close()
}

// Stats snapshots the server counters.
func (s *Server) Stats() srvproto.ServerStats {
	hits, misses, compiles := s.cache.counters()
	pool := s.be.poolStats()
	g := s.gate.snapshot()
	kern := exec.ReadKernelStats()
	return srvproto.ServerStats{
		PoolHits:             pool.Hits,
		PoolMisses:           pool.Misses,
		PoolEvictions:        pool.Evictions,
		PoolBytesSpilled:     pool.BytesSpilled,
		KernelCompiled:       kern.Compiled,
		KernelVectorBatches:  kern.VectorBatches,
		KernelBridgedBatches: kern.BridgedBatches,
		KernelFallbackEvals:  kern.FallbackEvals,
		Sessions:             s.stSessions.Load(),
		ActiveSessions:       s.stActive.Load(),
		Queries:              s.stQueries.Load(),
		Rejected:             s.stRejected.Load(),
		QuotaRejections:      g.quotaRejects,
		SubPools:             int64(s.be.size()),
		Inflight:             g.inflight,
		QueueDepth:           g.waiting,
		Tenants:              g.tenants,
		Compiles:             compiles,
		PlanCacheHits:        hits,
		PlanCacheMisses:      misses,
		PlanCacheSize:        s.cache.size(),
		Subscriptions:        s.stSubs.Load(),
		Rounds:               s.stRounds.Load(),
		Ingests:              s.stIngests.Load(),
		CatalogVersion:       s.be.catalogVersion(),
	}
}

// StatsHandler serves the counters as JSON — mount it on /stats.
func (s *Server) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.LogWriter != nil {
		fmt.Fprintf(s.cfg.LogWriter, format+"\n", args...)
	}
}

// srvConn is one client session's connection.
type srvConn struct {
	srv    *Server
	nc     net.Conn
	tenant string // Hello tenant; per-request QueryOpts.Tenant overrides

	wmu sync.Mutex // serializes outgoing frames

	mu   sync.Mutex
	reqs map[int]context.CancelFunc
	subs map[int]*srvSub
}

// handleConn runs the handshake and then the per-session read loop.
func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(helloTimeout))
	br := bufio.NewReader(nc)
	m, err := srvproto.ReadMsg(br)
	if err != nil || m.Kind != cluster.MsgHello {
		return
	}
	var hello srvproto.Hello
	if err := json.Unmarshal(m.Payload, &hello); err != nil {
		return
	}
	c := &srvConn{srv: s, nc: nc, tenant: hello.Tenant,
		reqs: map[int]context.CancelFunc{}, subs: map[int]*srvSub{}}
	refuse := func(code int, err error) {
		_ = c.writeMsg(cluster.Message{Kind: cluster.MsgHello,
			Payload: srvproto.EncodeJSON(srvproto.Welcome{Code: code, Err: err.Error()})})
	}
	if hello.Version != srvproto.Version {
		refuse(srvproto.CodeBadRequest, fmt.Errorf("server: protocol version %d not supported (want %d)", hello.Version, srvproto.Version))
		return
	}
	if !s.admitSession(c) {
		s.stRejected.Add(1)
		refuse(srvproto.CodeBusy, srvproto.ErrServerBusy)
		return
	}
	defer s.releaseSession(c)
	if err := c.writeMsg(cluster.Message{Kind: cluster.MsgHello,
		Payload: srvproto.EncodeJSON(srvproto.Welcome{OK: true, Nodes: s.be.pool(0).Nodes()})}); err != nil {
		return
	}
	_ = nc.SetDeadline(time.Time{})
	s.logf("session from %s (tenant %q)", nc.RemoteAddr(), c.tenant)

	for {
		m, err := srvproto.ReadMsg(br)
		if err != nil {
			return
		}
		if m.Kind != cluster.MsgQuery {
			continue
		}
		var req srvproto.Request
		if err := json.Unmarshal(m.Payload, &req); err != nil {
			c.writeErr(m.Edge, fmt.Errorf("server: bad request: %w", err))
			continue
		}
		if req.Op == srvproto.OpCancel {
			c.cancel(req.Target)
			continue
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		c.track(m.Edge, cancel)
		s.wg.Add(1)
		go func(id, framePrio int, req srvproto.Request) {
			defer s.wg.Done()
			defer cancel()
			defer c.untrack(id)
			s.handleRequest(c, ctx, id, framePrio, req)
		}(m.Edge, m.Priority, req)
	}
}

// admitSession admits a connection under the session cap.
func (s *Server) admitSession(c *srvConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxSessions {
		return false
	}
	s.conns[c] = struct{}{}
	s.stSessions.Add(1)
	s.stActive.Add(1)
	return true
}

// releaseSession tears down a departing connection: in-flight requests
// cancel, its subscriptions reap silently.
func (s *Server) releaseSession(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stActive.Add(-1)
	c.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.reqs))
	for _, cancel := range c.reqs {
		cancels = append(cancels, cancel)
	}
	subs := make([]*srvSub, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, sub)
	}
	c.reqs, c.subs = map[int]context.CancelFunc{}, map[int]*srvSub{}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, sub := range subs {
		sub.reap()
	}
}

// handleRequest dispatches one request (already off the read loop).
// Scheduling metadata resolves here: the session's Hello tenant unless
// the request overrides it, and the request's priority (the frame header
// copy is the fallback when no opts travelled).
func (s *Server) handleRequest(c *srvConn, ctx context.Context, id, framePrio int, req srvproto.Request) {
	tenant := c.tenant
	prio := framePrio
	if req.Opts != nil {
		if req.Opts.Tenant != "" {
			tenant = req.Opts.Tenant
		}
		if req.Opts.Priority != 0 {
			prio = req.Opts.Priority
		}
	}
	switch req.Op {
	case srvproto.OpStream:
		s.doStream(c, ctx, id, req, tenant, prio)
	case srvproto.OpSubscribe:
		s.doSubscribe(c, ctx, id, req, tenant, prio)
	case srvproto.OpPrepare:
		s.doPrepare(c, id, req)
	case srvproto.OpIngest:
		s.doIngest(c, ctx, id, req, tenant)
	case srvproto.OpCreateTable:
		s.doCreateTable(c, id, req)
	case srvproto.OpStats:
		c.writeClosed(id, &srvproto.Trailer{Stats: ptr(s.Stats())})
	default:
		c.writeErr(id, fmt.Errorf("server: unknown op %q", req.Op))
	}
}

func ptr[T any](v T) *T { return &v }

// admit runs task through the admission gate and the tenant-fair
// scheduler, blocking until it completes on a runner (whose sub-pool
// index it receives).
func (s *Server) admit(c *srvConn, ctx context.Context, id int, tenant string, prio int, task func(pool int)) bool {
	sl, err := s.gate.acquire(ctx, tenant)
	if err != nil {
		if errors.Is(err, srvproto.ErrServerBusy) {
			s.stRejected.Add(1)
		}
		c.writeErr(id, err)
		return false
	}
	defer sl.release()
	done := make(chan struct{})
	err = s.sched.submitQuery(tenant, prio, func(pool int) {
		defer close(done)
		task(pool)
	})
	if err != nil {
		c.writeErr(id, err)
		return false
	}
	<-done
	return true
}

// doStream executes an ad-hoc query on the runner's sub-pool and streams
// its delta batches back.
func (s *Server) doStream(c *srvConn, ctx context.Context, id int, req srvproto.Request, tenant string, prio int) {
	s.admit(c, ctx, id, tenant, prio, func(pool int) {
		args, err := srvproto.DecodeArgs(req.Args)
		if err != nil {
			c.writeErr(id, err)
			return
		}
		stmt, _, err := s.cache.get(req.Src, pool)
		if err != nil {
			c.writeErr(id, err)
			return
		}
		s.stQueries.Add(1)
		st, err := stmt.StreamCtx(ctx, execOpts(req.Opts), args...)
		if err != nil {
			c.writeErr(id, err)
			return
		}
		var sent int64
		for {
			b, ok := st.Next()
			if !ok {
				break
			}
			n, werr := c.writeRows(id, b.Stratum, b.Round, b.Deltas)
			sent += n
			if werr != nil {
				st.Close()
				return // connection gone
			}
		}
		if err := st.Err(); err != nil {
			c.writeErr(id, err)
			return
		}
		res := *st.Result()
		res.Tuples = nil // the tuples travelled as delta frames
		if res.BytesSent == 0 {
			res.BytesSent = sent
		}
		c.writeClosed(id, &srvproto.Trailer{Result: &res})
	})
}

// doSubscribe installs a standing query as a resident dataflow: a
// dedicated flow session boots from the replay snapshot, its initial
// fixpoint streams as round 0, and the pump stays live until cancelled
// (or its connection drops), fed staged deltas by covering ingests.
func (s *Server) doSubscribe(c *srvConn, ctx context.Context, id int, req srvproto.Request, tenant string, prio int) {
	s.admit(c, ctx, id, tenant, prio, func(int) {
		opts := execOpts(req.Opts)
		sub := newSrvSub(s, c, id, req.Src, opts)
		snap := s.be.register(sub)
		fail := func(err error) {
			sub.kill()
			c.writeErr(id, err)
		}
		// Bridge the request context into the flow's lifetime during
		// bring-up only: a client cancel aborts the initial fixpoint, but
		// once resident the flow outlives the subscribe request.
		bootDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				sub.cancel()
			case <-bootDone:
			}
		}()
		flow, err := s.be.newFlowSession(sub.ctx, snap)
		if err != nil {
			close(bootDone)
			fail(err)
			return
		}
		sub.mu.Lock()
		sub.flow = flow
		sub.mu.Unlock()
		s.stQueries.Add(1)
		fsub, err := flow.Subscribe(sub.ctx, req.Src, rex.WithOptions(opts))
		close(bootDone)
		if err != nil {
			fail(err)
			return
		}
		sub.mu.Lock()
		sub.fsub = fsub
		sub.mu.Unlock()
		// Forward the initial fixpoint's buffered batches as round 0.
		st := fsub.Stream()
		var sent int64
		var werr error
		for werr == nil {
			b, ok := st.TryNext()
			if !ok {
				break
			}
			var n int64
			n, werr = c.writeRows(id, b.Stratum, b.Round, b.Deltas)
			sent += n
		}
		var rs rex.RoundStats
		if rounds := fsub.Rounds(); len(rounds) > 0 {
			rs = rounds[0]
		}
		if rs.BytesSent == 0 {
			rs.BytesSent = sent
		}
		if werr == nil {
			werr = c.writeBoundary(id, 0, &srvproto.Trailer{Round: &rs})
		}
		if werr != nil {
			sub.kill() // connection gone; silent teardown
			return
		}
		sub.activate(flow, fsub, &rs)
		c.addSub(id, sub)
		s.stSubs.Add(1)
	})
}

// doPrepare compiles into the plan cache and reports the parameter count.
func (s *Server) doPrepare(c *srvConn, id int, req srvproto.Request) {
	stmt, _, err := s.cache.get(req.Src, 0)
	if err != nil {
		c.writeErr(id, err)
		return
	}
	c.writeClosed(id, &srvproto.Trailer{NumParams: stmt.NumParams()})
}

// doIngest applies base-table deltas to every sub-pool, fans the change
// out to every standing flow, and replies once all covering rounds have
// completed — so the requester's subscription stream already holds its
// round when the ingest returns.
func (s *Server) doIngest(c *srvConn, ctx context.Context, id int, req srvproto.Request, tenant string) {
	batches := make(map[string][]rex.Delta, len(req.Tables))
	for table, enc := range req.Tables {
		ds, err := cluster.DecodeDeltas(enc)
		if err != nil {
			c.writeErr(id, fmt.Errorf("server: ingest %s: %w", table, err))
			return
		}
		batches[table] = ds
	}
	sl, err := s.gate.acquire(ctx, tenant)
	if err != nil {
		if errors.Is(err, srvproto.ErrServerBusy) {
			s.stRejected.Add(1)
		}
		c.writeErr(id, err)
		return
	}
	defer sl.release()
	targets, err := s.be.ingest(batches)
	if err != nil {
		c.writeErr(id, err)
		return
	}
	s.stIngests.Add(1)
	var reqRound *rex.RoundStats
	for _, w := range targets {
		rs := w.sub.await(w.target)
		if w.sub.conn == c && rs != nil {
			reqRound = rs
		}
	}
	c.writeClosed(id, &srvproto.Trailer{Round: reqRound})
}

// doCreateTable declares a table on every sub-pool's catalog, bumping
// the shared version (stranding every cached plan compiled before it).
func (s *Server) doCreateTable(c *srvConn, id int, req srvproto.Request) {
	schema := &types.Schema{}
	for _, spec := range req.Fields {
		name, typ, ok := cutField(spec)
		if !ok {
			c.writeErr(id, fmt.Errorf("server: bad field spec %q (want name:Type)", spec))
			return
		}
		k, err := types.ParseKind(typ)
		if err != nil {
			c.writeErr(id, err)
			return
		}
		schema.Fields = append(schema.Fields, types.Field{Name: name, Kind: k})
	}
	if err := s.be.createTable(req.Table, schema, req.Key); err != nil {
		c.writeErr(id, err)
		return
	}
	c.writeClosed(id, nil)
}

func cutField(spec string) (name, typ string, ok bool) {
	for i := 0; i < len(spec); i++ {
		if spec[i] == ':' {
			return spec[:i], spec[i+1:], true
		}
	}
	return "", "", false
}

// execOpts widens the wire option subset back to exec options. Tenant
// and priority stay out — they are scheduling metadata, consumed before
// execution.
func execOpts(o *srvproto.QueryOpts) rex.Options {
	if o == nil {
		return rex.Options{}
	}
	return rex.Options{
		BatchSize:           o.BatchSize,
		MaxStrata:           o.MaxStrata,
		Compaction:          o.Compaction,
		CompactionHighWater: o.CompactionHighWater,
		Checkpoint:          o.Checkpoint,
		NoVectorize:         o.NoVectorize,
	}
}

// --- srvConn plumbing ---

func (c *srvConn) track(id int, cancel context.CancelFunc) {
	c.mu.Lock()
	c.reqs[id] = cancel
	c.mu.Unlock()
}

func (c *srvConn) untrack(id int) {
	c.mu.Lock()
	delete(c.reqs, id)
	c.mu.Unlock()
}

func (c *srvConn) addSub(id int, sub *srvSub) {
	c.mu.Lock()
	c.subs[id] = sub
	c.mu.Unlock()
}

func (c *srvConn) removeSub(id int) {
	c.mu.Lock()
	delete(c.subs, id)
	c.mu.Unlock()
}

// cancel aborts the request (or unsubscribes the standing query) with the
// given id. A subscription ends cleanly — its stream's final frame is a
// normal close, not an error — so a deliberate client Close reports nil.
func (c *srvConn) cancel(target int) {
	c.mu.Lock()
	sub := c.subs[target]
	cancelFn := c.reqs[target]
	c.mu.Unlock()
	if sub != nil {
		sub.unsubscribe()
		return
	}
	if cancelFn != nil {
		cancelFn()
	}
}

func (c *srvConn) writeMsg(m cluster.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return srvproto.WriteMsg(c.nc, m)
}

// writeRows ships a delta batch as one or more MsgRows frames, splitting
// batches whose encoding would approach the frame cap. Returns payload
// bytes written.
func (c *srvConn) writeRows(id, stratum, round int, deltas []types.Delta) (int64, error) {
	if len(deltas) == 0 {
		return 0, nil
	}
	payload := cluster.EncodeDeltas(deltas)
	if len(payload) > maxRowsPayload && len(deltas) > 1 {
		half := len(deltas) / 2
		n1, err := c.writeRows(id, stratum, round, deltas[:half])
		if err != nil {
			return n1, err
		}
		n2, err := c.writeRows(id, stratum, round, deltas[half:])
		return n1 + n2, err
	}
	err := c.writeMsg(cluster.Message{Kind: cluster.MsgRows, Edge: id,
		Stratum: stratum, Count: round, Payload: payload})
	return int64(len(payload)), err
}

// writeBoundary marks a standing-query round boundary, carrying the
// round's stats in the trailer.
func (c *srvConn) writeBoundary(id, round int, tr *srvproto.Trailer) error {
	return c.writeMsg(cluster.Message{Kind: cluster.MsgRows, Edge: id,
		Count: round, Terminate: true, Table: string(srvproto.EncodeJSON(tr))})
}

// writeClosed sends a request's final frame (trailer optional).
func (c *srvConn) writeClosed(id int, tr *srvproto.Trailer) error {
	m := cluster.Message{Kind: cluster.MsgRows, Edge: id, Closed: true}
	if tr != nil {
		m.Table = string(srvproto.EncodeJSON(tr))
	}
	return c.writeMsg(m)
}

func (c *srvConn) writeErr(id int, err error) {
	_ = c.writeMsg(cluster.Message{Kind: cluster.MsgErr, Edge: id,
		Count: srvproto.CodeFor(err), Table: err.Error()})
}
