package server

import (
	"context"
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/types"
)

// srvSub is a server-side standing query, promoted to a RESIDENT
// dataflow: each subscription owns a dedicated in-process flow session
// whose standing query — worker loops, operator state, delta network —
// stays alive between rounds, exactly the engine-level machinery
// in-process subscribers get. A covering ingest stages deltas here and a
// scheduler round task feeds them to the resident pump, which runs one
// INCREMENTAL round proportional to the net change; the round's
// per-stratum output deltas stream to the client tagged with their true
// round and stratum. (Earlier servers re-ran the cached plan and diffed
// retained results — paying a full recompute per round — because the
// single shared engine could not host resident dataflows; the sub-pool
// backend removes that constraint.)
//
// The flow session boots from the same deterministic dataset staging as
// the serving pools plus the backend's replay log, registered atomically
// with the log snapshot so no ingest is missed or double-applied. It is
// always in-process, even when the serving pools front TCP daemons.
//
// Ingestion requests coalesce: every covering ingest bumps seq, staged
// deltas accumulate, and at most one round task is queued at a time — a
// burst of writes costs one incremental round, whose reported Ingests is
// the number of client requests it covered. An ingest reply waits until
// doneSeq covers its seq, so the ingester's subscription stream already
// holds the covering round when its ingest returns.
type srvSub struct {
	srv  *Server
	conn *srvConn
	id   int // the subscribe request id; round frames echo it
	src  string
	opts rex.Options

	// ctx bounds the resident dataflow's lifetime: derived from the
	// server's base context, cancelled at teardown (and, during bring-up
	// only, bridged to the subscribe request's context so a client cancel
	// aborts the initial fixpoint).
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	flow      *rex.Session
	fsub      *rex.Subscription
	ready     bool                     // bring-up finished; rounds may run
	staged    map[string][]types.Delta // deltas awaiting the next round
	seq       int64                    // covering ingests observed
	doneSeq   int64                    // covering ingests absorbed by a completed round
	queued    bool                     // a round task is already scheduled
	dead      bool                     // torn down (unsubscribed, failed, or conn gone)
	lastStats *rex.RoundStats          // stats of the most recent completed round
}

func newSrvSub(srv *Server, conn *srvConn, id int, src string, opts rex.Options) *srvSub {
	ctx, cancel := context.WithCancel(srv.baseCtx)
	sub := &srvSub{srv: srv, conn: conn, id: id, src: src, opts: opts, ctx: ctx, cancel: cancel}
	sub.cond = sync.NewCond(&sub.mu)
	return sub
}

// stage records one covering ingest's deltas and schedules a round task
// if the flow is ready and none is pending. Called under backend.mu (the
// atomicity that keeps staging consistent with the replay log). Returns
// the sequence number await must reach, 0 if the sub is dead.
func (sub *srvSub) stage(batches map[string][]types.Delta) int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.dead {
		return 0
	}
	if sub.staged == nil {
		sub.staged = map[string][]types.Delta{}
	}
	for table, deltas := range batches {
		sub.staged[table] = append(sub.staged[table], deltas...)
	}
	sub.seq++
	target := sub.seq
	sub.scheduleLocked()
	return target
}

// scheduleLocked queues a round task if the flow is live and none is
// pending.
func (sub *srvSub) scheduleLocked() {
	if sub.queued || !sub.ready || sub.dead || sub.seq <= sub.doneSeq {
		return
	}
	sub.queued = true
	if err := sub.srv.sched.submitRound(sub.runRound); err != nil {
		sub.queued = false
	}
}

// activate installs the booted flow (bring-up done, round 0 streamed) and
// schedules a round for anything staged during bring-up.
func (sub *srvSub) activate(flow *rex.Session, fsub *rex.Subscription, rs *rex.RoundStats) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	sub.flow, sub.fsub = flow, fsub
	sub.ready = true
	sub.lastStats = rs
	sub.scheduleLocked()
}

// await blocks until a completed round covers target (or the sub dies),
// returning that round's stats.
func (sub *srvSub) await(target int64) *rex.RoundStats {
	if target == 0 {
		return nil
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for sub.doneSeq < target && !sub.dead {
		sub.cond.Wait()
	}
	return sub.lastStats
}

// runRound claims everything staged and feeds it to the resident pump as
// one incremental round, then forwards the round's buffered per-stratum
// batches and its boundary to the client. Runs as a scheduler round task
// (the pool argument is pacing only — the work happens on the flow
// session's own workers).
func (sub *srvSub) runRound(int) {
	sub.mu.Lock()
	if sub.dead || !sub.ready {
		sub.queued = false
		sub.mu.Unlock()
		return
	}
	staged := sub.staged
	sub.staged = nil
	target := sub.seq
	prevDone := sub.doneSeq
	fsub := sub.fsub
	sub.mu.Unlock()

	if len(staged) == 0 {
		sub.finishRound(target, nil)
		return
	}
	ack, err := fsub.Ingests(staged)
	if err != nil {
		sub.fail(err)
		sub.finishRound(target, nil)
		return
	}
	rs, err := ack.Wait(sub.ctx)
	if err != nil {
		sub.fail(err)
		sub.finishRound(target, nil)
		return
	}
	// The sub is this flow's only ingester and rounds run one at a time,
	// so the stream buffer now holds exactly this round's batches.
	st := fsub.Stream()
	var sent int64
	for {
		b, ok := st.TryNext()
		if !ok {
			break
		}
		n, werr := sub.conn.writeRows(sub.id, b.Stratum, b.Round, b.Deltas)
		sent += n
		if werr != nil {
			break // connection gone; its read loop reaps the sub
		}
	}
	out := *rs
	// Report the round's coverage from the client's perspective: how many
	// ingest REQUESTS it absorbed (the pump saw our one folded call).
	out.Ingests = int(target - prevDone)
	if out.BytesSent == 0 {
		out.BytesSent = sent
	}
	_ = sub.conn.writeBoundary(sub.id, out.Round, &srvproto.Trailer{Round: &out})
	sub.srv.stRounds.Add(1)
	sub.finishRound(target, &out)
}

// finishRound publishes the round's coverage, wakes ingest waiters, and
// reschedules if more work staged while the round ran.
func (sub *srvSub) finishRound(target int64, rs *rex.RoundStats) {
	sub.mu.Lock()
	if rs != nil {
		sub.lastStats = rs
	}
	if target > sub.doneSeq {
		sub.doneSeq = target
	}
	sub.queued = false
	sub.scheduleLocked()
	sub.cond.Broadcast()
	sub.mu.Unlock()
}

// fail tears the sub down with an error frame.
func (sub *srvSub) fail(err error) {
	if !sub.kill() {
		return
	}
	sub.conn.writeErr(sub.id, err)
	sub.conn.removeSub(sub.id)
}

// unsubscribe tears the sub down cleanly (client cancel): the stream ends
// with a clean final frame, so the client reports a nil Err.
func (sub *srvSub) unsubscribe() {
	if !sub.kill() {
		return
	}
	_ = sub.conn.writeClosed(sub.id, nil)
	sub.conn.removeSub(sub.id)
}

// reap tears the sub down silently (its connection is gone).
func (sub *srvSub) reap() {
	sub.kill()
}

// kill marks the sub dead, wakes waiters, removes it from the ingest
// fan-out, and releases the resident dataflow asynchronously (round
// tasks in flight unblock via the cancelled sub context). Returns false
// if already dead.
func (sub *srvSub) kill() bool {
	sub.mu.Lock()
	if sub.dead {
		sub.mu.Unlock()
		return false
	}
	sub.dead = true
	flow, fsub := sub.flow, sub.fsub
	sub.cond.Broadcast()
	sub.mu.Unlock()
	sub.cancel()
	sub.srv.be.unregister(sub)
	if flow != nil || fsub != nil {
		sub.srv.flowWG.Add(1)
		go func() {
			defer sub.srv.flowWG.Done()
			if fsub != nil {
				_ = fsub.Close()
			}
			if flow != nil {
				_ = flow.Close()
			}
		}()
	}
	return true
}
