package server

import (
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/types"
)

// srvSub is a server-side standing query. The server cannot keep a
// resident dataflow per subscriber — the backend engine runs one query at
// a time and a resident StandingQuery would monopolize it — so server
// subscriptions are DIFF-BASED: the server retains the subscription's
// last result multiset, re-runs the (cached) plan when a covering ingest
// lands, and streams only the net change as that round's deltas. Folding
// the client's stream still reproduces exactly what a from-scratch query
// would return, which is the standing-query contract; what changes is the
// server-side mechanism, chosen so many subscribers and ad-hoc clients
// share one pool fairly.
//
// Ingestion requests coalesce: every ingest bumps seq and at most one
// refresh round is queued at a time, so a burst of writes costs one
// re-run. An ingest reply waits until doneSeq covers its seq — when the
// ingester reads its subscription stream afterwards, the covering round
// is already buffered there.
type srvSub struct {
	srv  *Server
	conn *srvConn
	id   int // the subscribe request id; round frames echo it
	stmt *rex.Stmt
	opts rex.Options

	mu        sync.Mutex
	cond      *sync.Cond
	last      map[string]*subEntry // result multiset from the previous round
	round     int                  // next round number (1 after the initial fixpoint)
	seq       int64                // ingests observed
	doneSeq   int64                // ingests covered by a completed round
	queued    bool                 // a refresh round is already scheduled
	dead      bool                 // torn down (unsubscribed, failed, or conn gone)
	lastStats *rex.RoundStats      // stats of the most recent completed round
}

// subEntry is one distinct tuple of the retained result with its
// multiplicity (results are bags, not sets).
type subEntry struct {
	tup   types.Tuple
	count int
}

func newSrvSub(srv *Server, conn *srvConn, id int, stmt *rex.Stmt, opts rex.Options) *srvSub {
	sub := &srvSub{srv: srv, conn: conn, id: id, stmt: stmt, opts: opts, round: 1, last: map[string]*subEntry{}}
	sub.cond = sync.NewCond(&sub.mu)
	return sub
}

// retain replaces the multiset with res's tuples (the initial fixpoint).
func (sub *srvSub) retain(tuples []types.Tuple) {
	m := make(map[string]*subEntry, len(tuples))
	for _, t := range tuples {
		k := string(types.AppendTuple(nil, t))
		if e := m[k]; e != nil {
			e.count++
		} else {
			m[k] = &subEntry{tup: t, count: 1}
		}
	}
	sub.mu.Lock()
	sub.last = m
	sub.mu.Unlock()
}

// notifyIngest records one covering ingest and schedules a refresh round
// if none is pending. It returns the sequence number await must reach.
func (sub *srvSub) notifyIngest() int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.dead {
		return 0
	}
	sub.seq++
	target := sub.seq
	if !sub.queued {
		sub.queued = true
		if err := sub.srv.sched.submit(false, sub.runRound); err != nil {
			sub.queued = false
			return 0
		}
	}
	return target
}

// await blocks until a completed round covers target (or the sub dies),
// returning that round's stats.
func (sub *srvSub) await(target int64) *rex.RoundStats {
	if target == 0 {
		return nil
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for sub.doneSeq < target && !sub.dead {
		sub.cond.Wait()
	}
	return sub.lastStats
}

// runRound executes one refresh: re-run the cached plan, diff against the
// retained multiset, stream the net change. Runs on the scheduler's
// single runner, interleaved fairly with interactive queries.
func (sub *srvSub) runRound() {
	sub.mu.Lock()
	if sub.dead {
		sub.mu.Unlock()
		return
	}
	target := sub.seq
	prevDone := sub.doneSeq
	round := sub.round
	sub.round++
	sub.queued = false
	sub.mu.Unlock()

	res, err := sub.stmt.QueryCtx(sub.srv.baseCtx, sub.opts)
	if err != nil {
		sub.fail(err)
		return
	}
	deltas := sub.diff(res.Tuples)

	sub.mu.Lock()
	dead := sub.dead
	sub.mu.Unlock()
	if !dead {
		rs := &rex.RoundStats{
			Round:     round,
			Strata:    len(res.Strata),
			NewTuples: len(res.Tuples),
			Deltas:    len(deltas),
			Ingests:   int(target - prevDone),
		}
		// A write failure means the connection is gone; its read loop
		// reaps the sub — waiters still get released below.
		sent, werr := sub.conn.writeRows(sub.id, 0, round, deltas)
		rs.BytesSent = sent
		if werr == nil {
			_ = sub.conn.writeBoundary(sub.id, round, &srvproto.Trailer{Round: rs})
		}
		sub.mu.Lock()
		sub.lastStats = rs
		sub.mu.Unlock()
	}

	sub.mu.Lock()
	sub.doneSeq = target
	sub.cond.Broadcast()
	sub.mu.Unlock()
	sub.srv.stRounds.Add(1)
}

// diff computes the net change from the retained multiset to tuples and
// retains the new multiset.
func (sub *srvSub) diff(tuples []types.Tuple) []types.Delta {
	next := make(map[string]*subEntry, len(tuples))
	for _, t := range tuples {
		k := string(types.AppendTuple(nil, t))
		if e := next[k]; e != nil {
			e.count++
		} else {
			next[k] = &subEntry{tup: t, count: 1}
		}
	}
	var deltas []types.Delta
	sub.mu.Lock()
	prev := sub.last
	sub.last = next
	sub.mu.Unlock()
	for k, e := range next {
		old := 0
		if p := prev[k]; p != nil {
			old = p.count
		}
		for i := old; i < e.count; i++ {
			deltas = append(deltas, types.Insert(e.tup))
		}
	}
	for k, p := range prev {
		cur := 0
		if e := next[k]; e != nil {
			cur = e.count
		}
		for i := cur; i < p.count; i++ {
			deltas = append(deltas, types.Delete(p.tup))
		}
	}
	return deltas
}

// fail tears the sub down with an error frame.
func (sub *srvSub) fail(err error) {
	if !sub.kill() {
		return
	}
	sub.conn.writeErr(sub.id, err)
	sub.conn.removeSub(sub.id)
	sub.srv.unregisterSub(sub)
}

// unsubscribe tears the sub down cleanly (client cancel): the stream ends
// with a clean final frame, so the client reports a nil Err.
func (sub *srvSub) unsubscribe() {
	if !sub.kill() {
		return
	}
	_ = sub.conn.writeClosed(sub.id, nil)
	sub.conn.removeSub(sub.id)
	sub.srv.unregisterSub(sub)
}

// reap tears the sub down silently (its connection is gone).
func (sub *srvSub) reap() {
	if !sub.kill() {
		return
	}
	sub.srv.unregisterSub(sub)
}

// kill marks the sub dead and wakes waiters; false if already dead.
func (sub *srvSub) kill() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.dead {
		return false
	}
	sub.dead = true
	sub.cond.Broadcast()
	return true
}
