package server

import (
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/rql"
)

// planCache is the server's cross-session compiled-plan cache. Entries
// are keyed by (canonical RQL text, catalog version): two clients sending
// the same query — or one client re-sending it, or a prepared statement
// executing with fresh arguments — reuse one logical compilation. Keys
// are token-canonical (rql.Fingerprint), so whitespace and comment
// differences still hit. A catalog change (CreateTable, handler
// registration) bumps the version and strands every older entry;
// strandings are evicted lazily on lookup and by LRU pressure at cap.
//
// With sub-pools an entry materializes one prepared statement per pool,
// lazily — a statement's bind step mutates its plan in place, so pools
// cannot share one Stmt while running concurrently. Compiles counts
// LOGICAL entries (what a cacheless server would repeat per client
// request); the per-pool materializations are the fixed fan-out cost of
// the partitioned engine, not cache misses.
//
// Locking is two-level so distinct queries compile in parallel across
// runners: the cache mutex only guards the map (held briefly), while each
// entry's own mutex single-flights compilation of that text — concurrent
// identical queries produce ONE compile, the rest block on the entry and
// hit.
type planCache struct {
	be  *backend
	cap int

	mu       sync.Mutex
	entries  map[string]*planEntry
	clock    int64
	hits     int64
	misses   int64
	compiles int64
}

type planEntry struct {
	key     string
	ver     int64
	lastUse int64

	mu       sync.Mutex
	stmts    []*rex.Stmt // per sub-pool, materialized lazily
	compiled bool        // first successful materialization counted
}

func newPlanCache(be *backend, cap int) *planCache {
	return &planCache{be: be, cap: cap, entries: map[string]*planEntry{}}
}

// get returns the cached statement for src on sub-pool `pool` at the
// catalog's current version, compiling (and caching) on miss. The bool
// reports a logical cache hit.
func (pc *planCache) get(src string, pool int) (*rex.Stmt, bool, error) {
	key := rql.Fingerprint(src)
	ver := pc.be.catalogVersion()
	pc.mu.Lock()
	pc.clock++
	e := pc.entries[key]
	if e != nil && e.ver != ver {
		delete(pc.entries, key) // stranded by a catalog change
		e = nil
	}
	hit := e != nil
	if hit {
		e.lastUse = pc.clock
		pc.hits++
	} else {
		pc.misses++
		e = &planEntry{key: key, ver: ver, lastUse: pc.clock, stmts: make([]*rex.Stmt, pc.be.size())}
		if len(pc.entries) >= pc.cap {
			pc.evictLocked()
		}
		pc.entries[key] = e
	}
	pc.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stmts[pool] == nil {
		stmt, err := pc.be.pool(pool).Prepare(src)
		if err != nil {
			pc.dropEntry(key, e)
			return nil, false, err
		}
		e.stmts[pool] = stmt
		if !e.compiled {
			e.compiled = true
			pc.mu.Lock()
			pc.compiles++
			pc.mu.Unlock()
		}
	}
	return e.stmts[pool], hit, nil
}

// dropEntry removes a failed entry so the error is not cached (the next
// attempt recompiles and reports it afresh).
func (pc *planCache) dropEntry(key string, e *planEntry) {
	pc.mu.Lock()
	if cur := pc.entries[key]; cur == e {
		delete(pc.entries, key)
	}
	pc.mu.Unlock()
}

// evictLocked drops the least-recently-used entry.
func (pc *planCache) evictLocked() {
	var lruKey string
	var lru int64
	for k, e := range pc.entries {
		if lruKey == "" || e.lastUse < lru {
			lruKey, lru = k, e.lastUse
		}
	}
	delete(pc.entries, lruKey)
}

// size reports the current entry count.
func (pc *planCache) size() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return int64(len(pc.entries))
}

// counters snapshots hit/miss/compile totals (compiles counts logical
// compilations of distinct texts, the number a cacheless server would
// repeat per request).
func (pc *planCache) counters() (hits, misses, compiles int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.compiles
}
