package server

import (
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/rql"
)

// planCache is the server's cross-session compiled-plan cache. Entries
// are prepared statements keyed by (canonical RQL text, catalog version):
// two clients sending the same query — or one client re-sending it, or a
// prepared statement executing with fresh arguments — reuse one
// compilation. Keys are token-canonical (rql.Fingerprint), so whitespace
// and comment differences still hit. A catalog change (CreateTable,
// handler registration) bumps the version and strands every older entry;
// strandings are evicted lazily on lookup and by LRU pressure at cap.
//
// The mutex is held across compilation on purpose: concurrent identical
// queries single-flight into ONE compile, the rest block briefly and hit.
type planCache struct {
	sess *rex.Session
	cap  int

	mu       sync.Mutex
	entries  map[string]*planEntry
	clock    int64
	hits     int64
	misses   int64
	compiles int64
}

type planEntry struct {
	ver     int64
	stmt    *rex.Stmt
	lastUse int64
}

func newPlanCache(sess *rex.Session, cap int) *planCache {
	return &planCache{sess: sess, cap: cap, entries: map[string]*planEntry{}}
}

// get returns the cached statement for src at the catalog's current
// version, compiling (and caching) on miss. The bool reports a hit.
func (pc *planCache) get(src string) (*rex.Stmt, bool, error) {
	key := rql.Fingerprint(src)
	ver := pc.sess.CatalogVersion()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.clock++
	if e := pc.entries[key]; e != nil {
		if e.ver == ver {
			e.lastUse = pc.clock
			pc.hits++
			return e.stmt, true, nil
		}
		delete(pc.entries, key) // stranded by a catalog change
	}
	pc.misses++
	stmt, err := pc.sess.Prepare(src)
	if err != nil {
		return nil, false, err
	}
	pc.compiles++
	if len(pc.entries) >= pc.cap {
		pc.evictLocked()
	}
	pc.entries[key] = &planEntry{ver: ver, stmt: stmt, lastUse: pc.clock}
	return stmt, false, nil
}

// evictLocked drops the least-recently-used entry.
func (pc *planCache) evictLocked() {
	var lruKey string
	var lru int64
	for k, e := range pc.entries {
		if lruKey == "" || e.lastUse < lru {
			lruKey, lru = k, e.lastUse
		}
	}
	delete(pc.entries, lruKey)
}

// size reports the current entry count.
func (pc *planCache) size() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return int64(len(pc.entries))
}

// counters snapshots hit/miss/compile totals (compiles counts successful
// compilations only, so it is the number a cacheless server would repeat).
func (pc *planCache) counters() (hits, misses, compiles int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.compiles
}
