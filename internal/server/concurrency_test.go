package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/bench"
)

// TestTenantFleetCompileOnce: N identical queries arriving concurrently
// from M distinct tenants compile ONCE — tenancy partitions admission and
// scheduling, not the plan cache — and every result hash matches direct
// in-process execution.
func TestTenantFleetCompileOnce(t *testing.T) {
	ctx := context.Background()
	_, addr := startServer(t, Config{Nodes: 2, SubPools: 2})
	admin := dial(t, addr)
	stage(t, admin)

	local, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	stage(t, local)

	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	res, err := local.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want := bench.ResultHash(res.Tuples)

	tenants := []string{"acme", "blue", "cyan"}
	const perTenant = 4
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants)*perTenant)
	for _, tn := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tn string, i int) {
				defer wg.Done()
				s, err := rex.Open(ctx, rex.WithServer(addr), rex.WithServerTenant(tn))
				if err != nil {
					errc <- err
					return
				}
				defer s.Close()
				prio := rex.PriorityNormal
				if i%2 == 1 {
					prio = rex.PriorityHigh
				}
				res, err := s.QueryCtx(ctx, q, rex.WithPriority(prio))
				if err != nil {
					errc <- fmt.Errorf("tenant %s: %w", tn, err)
					return
				}
				if h := bench.ResultHash(res.Tuples); h != want {
					errc <- fmt.Errorf("tenant %s: hash %s != %s", tn, h, want)
				}
			}(tn, i)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st, err := admin.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server == nil {
		t.Fatal("server session returned no server stats")
	}
	if st.Server.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (12 identical queries from 3 tenants)", st.Server.Compiles)
	}
	if st.Server.PlanCacheHits < int64(len(tenants)*perTenant-1) {
		t.Fatalf("plan cache hits = %d, want >= %d", st.Server.PlanCacheHits, len(tenants)*perTenant-1)
	}
	for _, tn := range tenants {
		ts, ok := st.Server.Tenants[tn]
		if !ok {
			t.Fatalf("tenant %q missing from stats (have %v)", tn, st.Server.Tenants)
		}
		if ts.Admitted < perTenant {
			t.Fatalf("tenant %q admitted = %d, want >= %d", tn, ts.Admitted, perTenant)
		}
	}
}

// TestTenantQuotaBusyOverWire: a tenant at its inflight quota is rejected
// with an error that satisfies errors.Is(err, rex.ErrTenantBusy) after a
// round trip through the wire codec, other tenants are unaffected, and
// the rejection shows up in the per-tenant stats. The quota slot is held
// directly on the gate so the rejection is deterministic.
func TestTenantQuotaBusyOverWire(t *testing.T) {
	ctx := context.Background()
	srv, addr := startServer(t, Config{Nodes: 2, TenantQuotas: map[string]int{"throttled": 1}})
	admin := dial(t, addr)
	stage(t, admin)

	const q = `SELECT destId FROM graph WHERE srcId > 25`

	held, err := srv.gate.acquire(ctx, "throttled")
	if err != nil {
		t.Fatal(err)
	}

	s := dial(t, addr)
	if _, err := s.QueryCtx(ctx, q, rex.WithTenant("throttled")); !errors.Is(err, rex.ErrTenantBusy) {
		t.Fatalf("over-quota query: err = %v, want rex.ErrTenantBusy", err)
	}
	// The sibling sentinel must NOT match: quota exhaustion is the
	// tenant's problem, not the server's.
	if _, err := s.QueryCtx(ctx, q, rex.WithTenant("throttled")); errors.Is(err, rex.ErrServerBusy) {
		t.Fatalf("over-quota query matched ErrServerBusy: %v", err)
	}
	// Another tenant is unaffected while "throttled" is pinned.
	if _, err := s.QueryCtx(ctx, q, rex.WithTenant("calm")); err != nil {
		t.Fatalf("calm tenant: %v", err)
	}

	held.release()
	if _, err := s.QueryCtx(ctx, q, rex.WithTenant("throttled")); err != nil {
		t.Fatalf("after release: %v", err)
	}

	st, err := admin.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.QuotaRejections < 2 {
		t.Fatalf("quota rejections = %d, want >= 2", st.Server.QuotaRejections)
	}
	ts := st.Server.Tenants["throttled"]
	if ts.QuotaRejections < 2 {
		t.Fatalf("tenant quota rejections = %d, want >= 2", ts.QuotaRejections)
	}
	if ct := st.Server.Tenants["calm"]; ct.QuotaRejections != 0 {
		t.Fatalf("calm tenant collected %d quota rejections", ct.QuotaRejections)
	}
	if !srv.gate.idle() {
		t.Fatal("gate not idle after quota exercise")
	}
}

// TestGateChurnNoLeak is the admission-leak regression: clients that
// cancel mid-request or vanish outright must not strand inflight slots.
// It churns connect/query/cancel/disconnect cycles concurrently and
// asserts the gate drains back to zero.
func TestGateChurnNoLeak(t *testing.T) {
	srv, addr := startServer(t, Config{Nodes: 2, MaxInflight: 4, MaxQueue: 8})
	admin := dial(t, addr)
	stage(t, admin)

	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	const workers, iters = 6, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ctx, cancel := context.WithCancel(context.Background())
				s, err := rex.Open(ctx, rex.WithServer(addr), rex.WithServerTenant(fmt.Sprintf("t%d", w%3)))
				if err != nil {
					cancel()
					continue // churn may trip session caps; leak check is below
				}
				switch it % 3 {
				case 0:
					cancel() // cancelled before the query even starts
					_, _ = s.QueryCtx(ctx, q)
				case 1:
					go cancel() // cancellation races the request
					_, _ = s.QueryCtx(ctx, q)
				default:
					_, _ = s.QueryCtx(ctx, q) // runs to completion
					cancel()
				}
				s.Close()
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for !srv.gate.idle() {
		if time.Now().After(deadline) {
			snap := srv.gate.snapshot()
			t.Fatalf("gate leaked: inflight=%d waiting=%d after churn", snap.inflight, snap.waiting)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := admin.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Inflight != 0 || st.Server.QueueDepth != 0 {
		t.Fatalf("stats report inflight=%d queue=%d after drain", st.Server.Inflight, st.Server.QueueDepth)
	}
	for tn, ts := range st.Server.Tenants {
		if ts.Inflight != 0 {
			t.Fatalf("tenant %q stuck at inflight=%d", tn, ts.Inflight)
		}
	}
}

// TestResidentSubCrossClient: a resident server-side subscription fed by
// OTHER clients' ingests folds to the same relation as direct execution
// over the final state — the diff-based reference the resident pump
// replaced. Two subscribers watch while a third session ingests.
func TestResidentSubCrossClient(t *testing.T) {
	ctx := context.Background()
	_, addr := startServer(t, Config{Nodes: 2, SubPools: 2})
	admin := dial(t, addr)
	stage(t, admin)

	local, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	stage(t, local)

	const subQ = `SELECT k, count(*) FROM feed GROUP BY k`
	const rounds = 4

	subbers := make([]*rex.Subscription, 2)
	for i := range subbers {
		s := dial(t, addr)
		sub, err := s.Subscribe(ctx, subQ, rex.WithTenant(fmt.Sprintf("watcher%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		subbers[i] = sub
	}

	ingester := dial(t, addr)
	for r := 1; r <= rounds; r++ {
		if err := ingester.Insert("feed", feedRows(r, 7)...); err != nil {
			t.Fatalf("ingest round %d: %v", r, err)
		}
		if err := local.Load("feed", feedRows(r, 7)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := local.QueryCtx(ctx, subQ)
	if err != nil {
		t.Fatal(err)
	}
	want := bench.ResultHash(res.Tuples)

	for i, sub := range subbers {
		if err := sub.Close(); err != nil {
			t.Fatal(err)
		}
		<-sub.Done()
		if err := sub.Err(); err != nil {
			t.Fatalf("subscriber %d ended with: %v", i, err)
		}
		if h := bench.ResultHash(foldStream(sub.Stream())); h != want {
			t.Fatalf("subscriber %d folded hash %s != direct %s", i, h, want)
		}
		rs := sub.Rounds()
		if len(rs) < 2 {
			t.Fatalf("subscriber %d saw %d rounds, want initial + refreshes", i, len(rs))
		}
		covered := 0
		for _, r := range rs[1:] {
			covered += r.Ingests
		}
		if covered != rounds {
			t.Fatalf("subscriber %d rounds covered %d ingests, want %d", i, covered, rounds)
		}
	}
}

// TestSchedPriorityAndFairness drives pickLocked directly (no runners):
// high priority drains before normal before low, and within one priority
// level tenants alternate round-robin regardless of arrival burstiness.
func TestSchedPriorityAndFairness(t *testing.T) {
	q := &sched{
		lanes:   map[string]*tenantLane{},
		qCredit: interactiveWeight,
		rCredit: roundsWeight,
	}
	q.cond = sync.NewCond(&q.mu)

	var got []string
	rec := func(tag string) func(int) {
		return func(int) { got = append(got, tag) }
	}
	// Tenant A bursts five normal-priority tasks, then B queues two, plus
	// one high and one low from each side.
	for i := 0; i < 5; i++ {
		mustSubmit(t, q.submitQuery("A", rex.PriorityNormal, rec(fmt.Sprintf("A%d", i))))
	}
	mustSubmit(t, q.submitQuery("B", rex.PriorityNormal, rec("B0")))
	mustSubmit(t, q.submitQuery("B", rex.PriorityNormal, rec("B1")))
	mustSubmit(t, q.submitQuery("A", rex.PriorityLow, rec("Alow")))
	mustSubmit(t, q.submitQuery("B", rex.PriorityHigh, rec("Bhigh")))

	q.mu.Lock()
	for {
		task := q.pickLocked()
		if task == nil {
			break
		}
		task(0)
	}
	q.mu.Unlock()

	want := []string{"Bhigh", "A0", "B0", "A1", "B1", "A2", "A3", "A4", "Alow"}
	if len(got) != len(want) {
		t.Fatalf("drained %d tasks, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func mustSubmit(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
