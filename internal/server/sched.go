package server

import (
	"context"
	"fmt"
	"sync"

	"github.com/rex-data/rex/internal/srvproto"
)

// sched is the server's work scheduler: R runner goroutines, one pinned
// to each engine sub-pool, drain two work classes under weighted fair
// queueing. The interactive class (ad-hoc streams, subscription installs)
// is ordered priority-high-first, and within each priority level the
// runners round-robin across tenants — one chatty tenant queueing fifty
// normal-priority queries cannot starve another tenant's one. The rounds
// class (standing-query refresh rounds) is FIFO and bounded by the live
// subscription count (one queued refresh per flow; coalescing absorbs
// bursts). The credit weights guarantee both classes make progress under
// sustained load from the other: per credit window, interactive work gets
// interactiveWeight picks to the rounds class's roundsWeight.
//
// A runner executes interactive tasks against its own sub-pool — that
// pinning is what makes K admitted queries genuinely concurrent — while
// round tasks drive their subscription's resident flow session and only
// borrow the runner for pacing.
type sched struct {
	runners int

	mu      sync.Mutex
	cond    *sync.Cond
	lanes   map[string]*tenantLane
	order   []string // tenant arrival order; the round-robin ring
	rr      [3]int   // per-priority-level cursor into order
	nQueued int      // total queued interactive tasks
	rounds  []func(pool int)
	qCredit int
	rCredit int
	closed  bool
	done    chan struct{}
}

// Weighted-fair-queueing credits per window: interactive picks per rounds
// pick when both classes have work.
const (
	interactiveWeight = 2
	roundsWeight      = 1
)

// tenantLane holds one tenant's queued interactive tasks, bucketed by
// priority level (index prio+1: 0=low, 1=normal, 2=high).
type tenantLane struct {
	byPrio [3][]func(pool int)
}

func newSched(runners int) *sched {
	if runners < 1 {
		runners = 1
	}
	q := &sched{
		runners: runners,
		lanes:   map[string]*tenantLane{},
		qCredit: interactiveWeight,
		rCredit: roundsWeight,
		done:    make(chan struct{}, runners),
	}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < runners; i++ {
		go q.run(i)
	}
	return q
}

// submitQuery enqueues an interactive task under its tenant's lane at the
// given priority level (-1, 0, +1). Admission is gated by the caller.
func (q *sched) submitQuery(tenant string, prio int, task func(pool int)) error {
	if prio < srvproto.PriorityLow {
		prio = srvproto.PriorityLow
	} else if prio > srvproto.PriorityHigh {
		prio = srvproto.PriorityHigh
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return srvproto.ErrSessionClosed
	}
	lane := q.lanes[tenant]
	if lane == nil {
		lane = &tenantLane{}
		q.lanes[tenant] = lane
		q.order = append(q.order, tenant)
	}
	lane.byPrio[prio+1] = append(lane.byPrio[prio+1], task)
	q.nQueued++
	q.cond.Signal()
	return nil
}

// submitRound enqueues a standing-query refresh round.
func (q *sched) submitRound(task func(pool int)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return srvproto.ErrSessionClosed
	}
	q.rounds = append(q.rounds, task)
	q.cond.Signal()
	return nil
}

// pickLocked dequeues the next task under the WFQ + priority + tenant
// round-robin discipline; nil when nothing is queued.
func (q *sched) pickLocked() func(pool int) {
	hasQ, hasR := q.nQueued > 0, len(q.rounds) > 0
	if !hasQ && !hasR {
		return nil
	}
	useRound := false
	switch {
	case !hasQ:
		useRound = true
	case !hasR:
		useRound = false
	default:
		if q.qCredit <= 0 && q.rCredit <= 0 {
			q.qCredit, q.rCredit = interactiveWeight, roundsWeight
		}
		if q.qCredit > 0 {
			q.qCredit--
		} else {
			q.rCredit--
			useRound = true
		}
	}
	if useRound {
		task := q.rounds[0]
		q.rounds = q.rounds[1:]
		return task
	}
	for p := 2; p >= 0; p-- {
		n := len(q.order)
		for i := 0; i < n; i++ {
			idx := (q.rr[p] + i) % n
			lane := q.lanes[q.order[idx]]
			if bucket := lane.byPrio[p]; len(bucket) > 0 {
				task := bucket[0]
				lane.byPrio[p] = bucket[1:]
				q.rr[p] = (idx + 1) % n
				q.nQueued--
				return task
			}
		}
	}
	return nil // unreachable while nQueued is accurate
}

// run is runner i, pinned to sub-pool i: it drains the queues under the
// fairness discipline and exits — after finishing everything already
// queued — once the scheduler closes.
func (q *sched) run(pool int) {
	defer func() { q.done <- struct{}{} }()
	for {
		q.mu.Lock()
		for !q.closed && q.nQueued == 0 && len(q.rounds) == 0 {
			q.cond.Wait()
		}
		task := q.pickLocked()
		q.mu.Unlock()
		if task == nil {
			return // closed and drained
		}
		task(pool)
	}
}

// queueDepth reports the queued interactive + round task count.
func (q *sched) queueDepth() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(q.nQueued + len(q.rounds))
}

// close stops intake and waits for every runner to drain.
func (q *sched) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	for i := 0; i < q.runners; i++ {
		<-q.done
	}
}

// gate is the tenant-aware admission controller in front of the
// scheduler. Two limits stack:
//
//   - Per-tenant inflight quotas. A tenant at its quota — counting both
//     admitted and queued requests — is rejected immediately with
//     ErrTenantBusy; its backlog never occupies shared queue capacity,
//     so one tenant's burst cannot crowd out the rest.
//   - A global window: MaxInflight requests admitted at once, up to
//     MaxQueue more waiting FIFO for a slot, everything beyond rejected
//     with ErrServerBusy — a full server sheds load instead of building
//     an unbounded backlog.
//
// acquire returns a slot handle whose release is idempotent (sync.Once),
// so cancellation races — a request torn down on the read-loop path while
// its handler unwinds — cannot leak or double-free a slot.
type gate struct {
	maxInflight int
	maxWait     int
	defQuota    int            // per-tenant inflight cap; 0 = unlimited
	quotas      map[string]int // per-tenant overrides of defQuota

	mu           sync.Mutex
	inflight     int
	waiters      []*gateWaiter
	tenants      map[string]*tenantCtr
	quotaRejects int64
}

// tenantCtr tracks one tenant's admission counters. committed counts
// admitted plus queued requests — the number the quota bounds.
type tenantCtr struct {
	committed    int
	inflight     int
	admitted     int64
	quotaRejects int64
}

// gateWaiter is one queued acquire. The releaser hands its slot straight
// to the head waiter (granted=true) rather than freeing it, preserving
// FIFO order; a cancelled waiter that lost that race releases the slot it
// was just granted.
type gateWaiter struct {
	tenant  string
	ready   chan struct{}
	granted bool
}

// slot is the handle a successful acquire returns.
type slot struct {
	g      *gate
	tenant string
	once   sync.Once
}

func newGate(inflight, queue, quota int, quotas map[string]int) *gate {
	return &gate{
		maxInflight: inflight,
		maxWait:     queue,
		defQuota:    quota,
		quotas:      quotas,
		tenants:     map[string]*tenantCtr{},
	}
}

func (g *gate) quotaFor(tenant string) int {
	if q, ok := g.quotas[tenant]; ok {
		return q
	}
	return g.defQuota
}

func (g *gate) ctrLocked(tenant string) *tenantCtr {
	t := g.tenants[tenant]
	if t == nil {
		t = &tenantCtr{}
		g.tenants[tenant] = t
	}
	return t
}

// acquire claims a slot for tenant, waiting in the bounded FIFO queue if
// none is free. Quota exhaustion rejects immediately (no queueing).
func (g *gate) acquire(ctx context.Context, tenant string) (*slot, error) {
	g.mu.Lock()
	t := g.ctrLocked(tenant)
	if q := g.quotaFor(tenant); q > 0 && t.committed >= q {
		t.quotaRejects++
		g.quotaRejects++
		g.mu.Unlock()
		return nil, fmt.Errorf("%w (tenant %q, %d inflight)", srvproto.ErrTenantBusy, tenant, q)
	}
	if g.inflight < g.maxInflight {
		g.inflight++
		t.committed++
		t.inflight++
		t.admitted++
		g.mu.Unlock()
		return &slot{g: g, tenant: tenant}, nil
	}
	if len(g.waiters) >= g.maxWait {
		g.mu.Unlock()
		return nil, srvproto.ErrServerBusy
	}
	w := &gateWaiter{tenant: tenant, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	t.committed++
	g.mu.Unlock()

	select {
	case <-w.ready:
		return &slot{g: g, tenant: tenant}, nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// Lost the race: a releaser already handed us its slot. Pass it
			// on (or free it) so cancellation cannot leak capacity.
			g.releaseLocked(tenant)
			g.mu.Unlock()
			return nil, ctx.Err()
		}
		for i, o := range g.waiters {
			if o == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		t.committed--
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseLocked frees tenant's slot: the head waiter inherits it if one
// is queued, otherwise the inflight window shrinks.
func (g *gate) releaseLocked(tenant string) {
	t := g.ctrLocked(tenant)
	t.committed--
	t.inflight--
	if len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		w.granted = true
		wt := g.ctrLocked(w.tenant)
		wt.inflight++
		wt.admitted++
		close(w.ready)
		return
	}
	g.inflight--
}

// release frees the slot; safe to call more than once.
func (s *slot) release() {
	s.once.Do(func() {
		s.g.mu.Lock()
		s.g.releaseLocked(s.tenant)
		s.g.mu.Unlock()
	})
}

// gateSnap is a point-in-time view of the gate for Stats.
type gateSnap struct {
	inflight     int64
	waiting      int64
	quotaRejects int64
	tenants      map[string]srvproto.TenantStats
}

func (g *gate) snapshot() gateSnap {
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := gateSnap{
		inflight:     int64(g.inflight),
		waiting:      int64(len(g.waiters)),
		quotaRejects: g.quotaRejects,
		tenants:      make(map[string]srvproto.TenantStats, len(g.tenants)),
	}
	for name, t := range g.tenants {
		snap.tenants[name] = srvproto.TenantStats{
			Admitted:        t.admitted,
			Inflight:        int64(t.inflight),
			QuotaRejections: t.quotaRejects,
		}
	}
	return snap
}

// idle reports whether every slot has been returned and no one is queued
// — the invariant the admission-leak regression test churns against.
func (g *gate) idle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0 && len(g.waiters) == 0
}
