package server

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/rex-data/rex/internal/srvproto"
)

// sched serializes all engine work onto one runner goroutine — the
// backend session executes one query at a time, so the runner IS the
// shared worker pool's admission order. Two queues feed it: interactive
// work (ad-hoc streams, subscription initial fixpoints) and standing-query
// refresh rounds. The runner alternates between them, so a burst of
// ingestion rounds cannot starve interactive queries and a stream of
// ad-hoc queries cannot starve subscribers' freshness.
type sched struct {
	mu          sync.Mutex
	cond        *sync.Cond
	interactive []func()
	rounds      []func()
	roundsNext  bool // round-robin pointer: which queue to prefer
	closed      bool
	done        chan struct{}
}

func newSched() *sched {
	q := &sched{done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.run()
	return q
}

// submit enqueues a task. Interactive tasks are admission-gated by the
// caller; round tasks are bounded by the number of live subscriptions
// (one queued refresh per sub, coalescing absorbs the rest).
func (q *sched) submit(interactive bool, task func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return srvproto.ErrSessionClosed
	}
	if interactive {
		q.interactive = append(q.interactive, task)
	} else {
		q.rounds = append(q.rounds, task)
	}
	q.cond.Signal()
	return nil
}

// run is the single runner: it drains both queues fairly and exits — after
// finishing everything already queued — once the scheduler closes.
func (q *sched) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for !q.closed && len(q.interactive) == 0 && len(q.rounds) == 0 {
			q.cond.Wait()
		}
		var task func()
		switch {
		case len(q.interactive) == 0 && len(q.rounds) == 0:
			q.mu.Unlock()
			return // closed and drained
		case len(q.rounds) > 0 && (q.roundsNext || len(q.interactive) == 0):
			task, q.rounds = q.rounds[0], q.rounds[1:]
			q.roundsNext = false
		default:
			task, q.interactive = q.interactive[0], q.interactive[1:]
			q.roundsNext = true
		}
		q.mu.Unlock()
		task()
	}
}

// close stops intake and waits for the runner to drain.
func (q *sched) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}

// gate is the admission-control semaphore in front of the scheduler's
// interactive queue: MaxInflight requests may be admitted at once, up to
// MaxQueue more may wait for a slot, and everything beyond that is
// rejected immediately with ErrServerBusy — a full server sheds load
// instead of building an unbounded backlog.
type gate struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newGate(inflight, queue int) *gate {
	return &gate{slots: make(chan struct{}, inflight), maxWait: int64(queue)}
}

// acquire claims a slot, waiting in the bounded queue if none is free.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.waiting.Add(1) > g.maxWait {
		g.waiting.Add(-1)
		return srvproto.ErrServerBusy
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }
