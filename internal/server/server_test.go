package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/types"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *rex.Session {
	t.Helper()
	s, err := rex.Open(context.Background(), rex.WithServer(addr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func graphRows(n, verts int) []rex.Tuple {
	rows := make([]rex.Tuple, n)
	for i := range rows {
		rows[i] = rex.NewTuple(int64(i%verts), int64((i*7+3)%verts))
	}
	return rows
}

func feedRows(round, keys int) []rex.Tuple {
	rows := make([]rex.Tuple, keys)
	for i := range rows {
		rows[i] = rex.NewTuple(int64((i+round)%keys), int64(round*100+i))
	}
	return rows
}

// stage creates and loads the test tables on any session (server-backed
// or direct).
func stage(t *testing.T, s *rex.Session) {
	t.Helper()
	if err := s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("feed", rex.Schema("k:Integer", "v:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("graph", graphRows(200, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("feed", feedRows(0, 7)); err != nil {
		t.Fatal(err)
	}
}

// TestServerEightClients is the acceptance property: one rexd serves 8
// concurrent sessions — 7 ad-hoc, 1 holding a standing subscription and
// ingesting — over one shared pool, every result hash matching direct
// in-process execution, with the plan cache compiling each distinct text
// once.
func TestServerEightClients(t *testing.T) {
	ctx := context.Background()
	srv, addr := startServer(t, Config{Nodes: 3})

	admin := dial(t, addr)
	stage(t, admin)

	const (
		q1   = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
		q2   = `SELECT destId FROM graph WHERE srcId > 25`
		subQ = `SELECT k, count(*) FROM feed GROUP BY k`
	)
	const iters = 3

	// Direct-session references (the serverless ground truth).
	ref, err := rex.Open(ctx, rex.WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	stage(t, ref)
	refHash := func(q string) string {
		t.Helper()
		res, err := ref.QueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		return bench.ResultHash(res.Tuples)
	}
	want1, want2 := refHash(q1), refHash(q2)
	for r := 1; r <= iters; r++ {
		if err := ref.Load("feed", feedRows(r, 7)); err != nil {
			t.Fatal(err)
		}
	}
	wantSub := refHash(subQ)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := rex.Open(ctx, rex.WithServer(addr))
			if err != nil {
				errc <- err
				return
			}
			defer s.Close()
			for it := 0; it < iters; it++ {
				for q, want := range map[string]string{q1: want1, q2: want2} {
					res, err := s.QueryCtx(ctx, q)
					if err != nil {
						errc <- fmt.Errorf("client %d: %w", i, err)
						return
					}
					if h := bench.ResultHash(res.Tuples); h != want {
						errc <- fmt.Errorf("client %d: hash %s != direct %s for %q", i, h, want, q)
						return
					}
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := rex.Open(ctx, rex.WithServer(addr))
		if err != nil {
			errc <- err
			return
		}
		defer s.Close()
		sub, err := s.Subscribe(ctx, subQ)
		if err != nil {
			errc <- fmt.Errorf("subscribe: %w", err)
			return
		}
		for r := 1; r <= iters; r++ {
			if err := s.Insert("feed", feedRows(r, 7)...); err != nil {
				errc <- fmt.Errorf("ingest round %d: %w", r, err)
				return
			}
		}
		if err := sub.Close(); err != nil {
			errc <- fmt.Errorf("sub close: %w", err)
			return
		}
		if err := sub.Err(); err != nil {
			errc <- fmt.Errorf("sub err after clean close: %w", err)
			return
		}
		if got := foldStream(sub.Stream()); bench.ResultHash(got) != wantSub {
			errc <- fmt.Errorf("folded subscription %s != direct %s", bench.ResultHash(got), wantSub)
			return
		}
		if len(sub.Rounds()) < iters {
			errc <- fmt.Errorf("subscription saw %d rounds, want >= %d", len(sub.Rounds()), iters)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.PlanCacheHits == 0 {
		t.Fatalf("plan cache never hit: %+v", st)
	}
	if st.Compiles >= st.Queries {
		t.Fatalf("compiles (%d) should be below queries (%d)", st.Compiles, st.Queries)
	}
	if st.Sessions < 8 {
		t.Fatalf("sessions = %d, want >= 8", st.Sessions)
	}
}

// foldStream folds a finished subscription stream into the final relation.
func foldStream(st *rex.DeltaStream) []rex.Tuple {
	type entry struct {
		tup   rex.Tuple
		count int
	}
	state := map[string]*entry{}
	bump := func(tup rex.Tuple, by int) {
		k := string(types.AppendTuple(nil, tup))
		e := state[k]
		if e == nil {
			e = &entry{tup: tup}
			state[k] = e
		}
		e.count += by
	}
	for {
		b, ok := st.TryNext()
		if !ok {
			break
		}
		for _, d := range b.Deltas {
			switch d.Op {
			case types.OpDelete:
				bump(d.Tup, -1)
			case types.OpReplace:
				bump(d.Old, -1)
				bump(d.Tup, 1)
			default:
				bump(d.Tup, 1)
			}
		}
	}
	var out []rex.Tuple
	for _, e := range state {
		for i := 0; i < e.count; i++ {
			out = append(out, e.tup)
		}
	}
	return out
}

// TestPlanCacheSingleFlight: concurrent identical queries compile ONCE —
// the cache mutex is held across compilation, so the N-1 laggards block
// briefly and hit.
func TestPlanCacheSingleFlight(t *testing.T) {
	ctx := context.Background()
	srv, addr := startServer(t, Config{Nodes: 2})
	admin := dial(t, addr)
	stage(t, admin)

	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := rex.Open(ctx, rex.WithServer(addr))
			if err != nil {
				errc <- err
				return
			}
			defer s.Close()
			if _, err := s.QueryCtx(ctx, q); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	hits, misses, compiles := srv.cache.counters()
	if compiles != 1 {
		t.Fatalf("compiles = %d (hits %d, misses %d), want exactly 1", compiles, hits, misses)
	}
	if hits != 7 {
		t.Fatalf("hits = %d, want 7", hits)
	}
}

// TestPlanCacheInvalidation: a catalog change (CreateTable) strands every
// cached plan — the same text recompiles at the new version; whitespace
// variants of one query still share an entry (token-canonical keys).
func TestPlanCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	srv, addr := startServer(t, Config{Nodes: 2})
	s := dial(t, addr)
	stage(t, s)

	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	run := func() {
		t.Helper()
		if _, err := s.QueryCtx(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	run()
	// Whitespace/casing-insensitive re-send: same fingerprint, must hit.
	if _, err := s.QueryCtx(ctx, "SELECT srcId,  count(*)  FROM graph GROUP BY srcId"); err != nil {
		t.Fatal(err)
	}
	_, _, compiles := srv.cache.counters()
	if compiles != 1 {
		t.Fatalf("compiles before invalidation = %d, want 1", compiles)
	}

	if err := s.CreateTable("extra", rex.Schema("x:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	run()
	hits, _, compiles := srv.cache.counters()
	if compiles != 2 {
		t.Fatalf("compiles after CreateTable = %d, want 2 (catalog bump must invalidate)", compiles)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestPlanCachePreparedArgs: a prepared $N statement compiles once and
// every execution — whatever the bound arguments — reuses the plan; a
// later Prepare of the same text hits too.
func TestPlanCachePreparedArgs(t *testing.T) {
	ctx := context.Background()
	srv, addr := startServer(t, Config{Nodes: 2})
	s := dial(t, addr)
	stage(t, s)

	stmt, err := s.Prepare(`SELECT count(*) FROM graph WHERE srcId > $1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	counts := map[int64]int64{}
	for _, arg := range []int64{0, 10, 20, 10} {
		res, err := stmt.QueryCtx(ctx, rex.Options{}, arg)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := types.AsInt(res.Tuples[0][0])
		counts[arg] = n
	}
	if counts[0] <= counts[10] || counts[10] <= counts[20] {
		t.Fatalf("counts not monotone in the bound argument: %v", counts)
	}
	if _, err := stmt.QueryCtx(ctx, rex.Options{}); err == nil {
		t.Fatal("missing argument must error")
	}
	if _, err := s.Prepare(`SELECT count(*) FROM graph WHERE srcId > $1`); err != nil {
		t.Fatal(err)
	}
	_, _, compiles := srv.cache.counters()
	if compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (args must not fragment the cache)", compiles)
	}
}

// TestServerBusySessionCap: with MaxSessions=1 the second Open is refused
// at the handshake with a typed, errors.Is-able ErrServerBusy.
func TestServerBusySessionCap(t *testing.T) {
	ctx := context.Background()
	_, addr := startServer(t, Config{Nodes: 2, MaxSessions: 1})
	_ = dial(t, addr) // occupies the only slot
	_, err := rex.Open(ctx, rex.WithServer(addr))
	if !errors.Is(err, rex.ErrServerBusy) {
		t.Fatalf("err = %v, want rex.ErrServerBusy", err)
	}
}

// TestGateBusy exercises the admission gate white-box: one slot, zero
// queue — the second concurrent acquire must shed immediately.
func TestGateBusy(t *testing.T) {
	g := newGate(1, 0, 0, nil)
	sl, err := g.acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.acquire(context.Background(), ""); !errors.Is(err, rex.ErrServerBusy) {
		t.Fatalf("err = %v, want ErrServerBusy", err)
	}
	sl.release()
	sl.release() // idempotent: a double release must not free a second slot
	sl2, err := g.acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if _, err := g.acquire(context.Background(), ""); !errors.Is(err, rex.ErrServerBusy) {
		t.Fatalf("double release leaked a slot: err = %v, want ErrServerBusy", err)
	}
	sl2.release()
	if !g.idle() {
		t.Fatal("gate not idle after all slots released")
	}
}

// TestSentinelsOverWire: typed errors survive the wire — unknown table
// resolves errors.Is(…, rex.ErrUnknownTable), a closed session reports
// rex.ErrSessionClosed.
func TestSentinelsOverWire(t *testing.T) {
	ctx := context.Background()
	_, addr := startServer(t, Config{Nodes: 2})
	s := dial(t, addr)
	_, err := s.QueryCtx(ctx, `SELECT x FROM nope`)
	if !errors.Is(err, rex.ErrUnknownTable) {
		t.Fatalf("err = %v, want rex.ErrUnknownTable", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.QueryCtx(ctx, `SELECT x FROM nope`)
	if !errors.Is(err, rex.ErrSessionClosed) {
		t.Fatalf("after close: err = %v, want rex.ErrSessionClosed", err)
	}
}

// TestServerIngestWithoutSubscription: ingest over a server session with
// no standing query applies synchronously and later queries see it.
func TestServerIngestWithoutSubscription(t *testing.T) {
	ctx := context.Background()
	_, addr := startServer(t, Config{Nodes: 2})
	s := dial(t, addr)
	stage(t, s)
	if err := s.Insert("feed", rex.NewTuple(int64(99), int64(1))); err != nil {
		t.Fatal(err)
	}
	res, err := s.QueryCtx(ctx, `SELECT k FROM feed WHERE k = 99`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("ingested row not visible: %d rows", len(res.Tuples))
	}
}
