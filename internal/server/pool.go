package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	rex "github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// backend owns the server's engine sub-pools. A rex.Session executes one
// query at a time (its internal lock is the engine's admission order), so
// true intra-server concurrency comes from partitioning: K identically
// staged in-process sessions, each a full worker pool over the same
// deterministic data, let K independent queries run genuinely in
// parallel. Catalog declarations and ingests apply to every sub-pool in
// one serialized order, so any pool answers any query with the same
// result — the CI hash gates hold concurrent runs against sequential
// ones. With Peers the pool is a single TCP session (the daemons are the
// parallelism budget) and SubPools is forced to 1.
//
// The backend also keeps a replay log — catalog declarations plus the
// folded net effect of every ingest — so a standing-query flow session
// created later (see srvSub) boots to the exact current state: dataset
// staging re-derives the base data and the log replays the server-side
// mutations in their original order.
type backend struct {
	cfg   Config
	pools []*rex.Session

	// mu serializes staging (creates, ingests) across the pools and makes
	// ingest fan-out atomic with replay-log appends and flow registration,
	// so a flow session never misses or double-applies a batch.
	mu      sync.Mutex
	creates []createOp
	ingests map[string]*replayLog
	logOrd  []string
	subs    map[*srvSub]struct{}
}

// createOp is one recorded CreateTable declaration.
type createOp struct {
	name   string
	schema *types.Schema
	key    int
}

// replayLog is one table's folded server-side ingest history (same
// fold-at-threshold compaction the TCP session's change log uses).
type replayLog struct {
	keyCol    int
	deltas    []types.Delta
	sinceFold int
}

// replayFoldEvery is the raw-append count after which a table's log
// refolds to its net effect.
const replayFoldEvery = 64

func (rl *replayLog) fold() {
	key := rl.keyCol
	c := cluster.NewCompactor(func(t types.Tuple) types.Value {
		if key < len(t) {
			return t[key]
		}
		return nil
	}, nil)
	for _, d := range rl.deltas {
		c.Add(d)
	}
	rl.deltas = c.Drain()
	rl.sinceFold = 0
}

// subTarget pairs a standing flow with the staged sequence number an
// ingest reply must await.
type subTarget struct {
	sub    *srvSub
	target int64
}

// newBackend boots the sub-pools.
func newBackend(ctx context.Context, cfg Config) (*backend, error) {
	b := &backend{cfg: cfg, ingests: map[string]*replayLog{}, subs: map[*srvSub]struct{}{}}
	for i := 0; i < cfg.SubPools; i++ {
		var opts []rex.Option
		if len(cfg.Peers) > 0 {
			opts = append(opts, rex.WithTCPPeers(cfg.Peers...))
		} else {
			opts = append(opts, rex.WithInProc(cfg.Nodes))
		}
		if cfg.Dataset != "" {
			opts = append(opts, rex.WithDataset(cfg.Dataset, cfg.Size, cfg.Seed))
		}
		if cfg.Handlers != "" {
			opts = append(opts, rex.WithHandlers(cfg.Handlers))
		}
		if cfg.Replication > 0 {
			opts = append(opts, rex.WithReplication(cfg.Replication))
		}
		if cfg.DataDir != "" {
			// Every sub-pool pages under its own subdirectory — page files
			// are single-writer.
			opts = append(opts, rex.WithSpillDir(filepath.Join(cfg.DataDir, fmt.Sprintf("pool%d", i))))
		}
		if cfg.BufferPoolPages > 0 {
			opts = append(opts, rex.WithBufferPoolPages(cfg.BufferPoolPages))
		}
		sess, err := rex.Open(ctx, opts...)
		if err != nil {
			for _, p := range b.pools {
				p.Close()
			}
			return nil, fmt.Errorf("server: open sub-pool %d: %w", i, err)
		}
		b.pools = append(b.pools, sess)
	}
	return b, nil
}

// pool returns sub-pool i's session.
func (b *backend) pool(i int) *rex.Session { return b.pools[i] }

// size reports the sub-pool count.
func (b *backend) size() int { return len(b.pools) }

// catalogVersion reports the shared schema version (the pools advance in
// lockstep: identical staging at open, identical declaration order after).
func (b *backend) catalogVersion() int64 { return b.pools[0].CatalogVersion() }

// createTable declares a table on every sub-pool and records the op for
// flow replay.
func (b *backend) createTable(name string, schema *types.Schema, key int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, p := range b.pools {
		if err := p.CreateTable(name, schema, key); err != nil {
			if i > 0 {
				// Later pools can only fail on errors pool 0 also hits
				// (identical catalogs); a divergence here is a bug worth
				// surfacing loudly rather than serving from skewed pools.
				return fmt.Errorf("server: sub-pool %d diverged on create %s: %w", i, name, err)
			}
			return err
		}
	}
	b.creates = append(b.creates, createOp{name: name, schema: schema, key: key})
	return nil
}

// ingest applies the batches to every sub-pool in one serialized order,
// records them for flow replay, and stages them on every live standing
// flow — all atomically, so a concurrently registering flow sees each
// batch exactly once (in its replay snapshot or its staging buffer,
// never both or neither). Returns the per-flow await targets.
func (b *backend) ingest(batches map[string][]rex.Delta) ([]subTarget, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, p := range b.pools {
		if _, err := p.Ingests(batches); err != nil {
			if i > 0 {
				return nil, fmt.Errorf("server: sub-pool %d diverged on ingest: %w", i, err)
			}
			return nil, err
		}
	}
	for table, deltas := range batches {
		rl := b.ingests[table]
		if rl == nil {
			rl = &replayLog{keyCol: b.partitionKeyLocked(table)}
			b.ingests[table] = rl
			b.logOrd = append(b.logOrd, table)
		}
		rl.deltas = append(rl.deltas, deltas...)
		rl.sinceFold += len(deltas)
		if rl.sinceFold >= replayFoldEvery {
			rl.fold()
		}
	}
	targets := make([]subTarget, 0, len(b.subs))
	for sub := range b.subs {
		if t := sub.stage(batches); t > 0 {
			targets = append(targets, subTarget{sub, t})
		}
	}
	return targets, nil
}

// partitionKeyLocked resolves a table's partition column for log folding
// (0 when unknown — folding stays correct, just groups less finely).
func (b *backend) partitionKeyLocked(table string) int {
	for _, op := range b.creates {
		if op.name == table {
			return op.key
		}
	}
	if cat := b.pools[0].Catalog(); cat != nil {
		if tab, err := cat.Table(table); err == nil {
			return tab.PartitionKey
		}
	}
	return 0
}

// replaySnapshot is the state a new flow session replays on top of its
// dataset staging.
type replaySnapshot struct {
	creates []createOp
	ingests []struct {
		table  string
		deltas []types.Delta
	}
}

// register adds a standing flow to the ingest fan-out set and returns
// the replay snapshot its session must boot from. The two happen under
// one critical section — every ingest is either in the snapshot or will
// be staged on the flow, exactly one of the two.
func (b *backend) register(sub *srvSub) replaySnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	var snap replaySnapshot
	snap.creates = append(snap.creates, b.creates...)
	for _, table := range b.logOrd {
		rl := b.ingests[table]
		if rl.sinceFold > 0 {
			rl.fold()
		}
		if len(rl.deltas) == 0 {
			continue
		}
		snap.ingests = append(snap.ingests, struct {
			table  string
			deltas []types.Delta
		}{table, append([]types.Delta(nil), rl.deltas...)})
	}
	b.subs[sub] = struct{}{}
	return snap
}

// unregister removes a flow from the fan-out set.
func (b *backend) unregister(sub *srvSub) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// flows reports the live standing-flow count.
func (b *backend) flows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// newFlowSession boots a dedicated in-process session for one standing
// query — always in-process, even when the pools front TCP daemons: the
// deterministic dataset plus the replay snapshot reproduce the exact
// served state, and a resident dataflow needs a session it can own.
func (b *backend) newFlowSession(ctx context.Context, snap replaySnapshot) (*rex.Session, error) {
	opts := []rex.Option{rex.WithInProc(b.cfg.Nodes)}
	if b.cfg.Dataset != "" {
		opts = append(opts, rex.WithDataset(b.cfg.Dataset, b.cfg.Size, b.cfg.Seed))
	}
	if b.cfg.Handlers != "" {
		opts = append(opts, rex.WithHandlers(b.cfg.Handlers))
	}
	if b.cfg.Replication > 0 {
		opts = append(opts, rex.WithReplication(b.cfg.Replication))
	}
	flow, err := rex.Open(ctx, opts...)
	if err != nil {
		return nil, fmt.Errorf("server: open flow session: %w", err)
	}
	for _, op := range snap.creates {
		if err := flow.CreateTable(op.name, op.schema, op.key); err != nil {
			flow.Close()
			return nil, fmt.Errorf("server: flow replay create %s: %w", op.name, err)
		}
	}
	for _, ing := range snap.ingests {
		if err := flow.LoadDeltas(ing.table, ing.deltas); err != nil {
			flow.Close()
			return nil, fmt.Errorf("server: flow replay ingest %s: %w", ing.table, err)
		}
	}
	return flow, nil
}

// poolStats sums buffer-pool traffic across the sub-pools.
func (b *backend) poolStats() rex.PoolStats {
	var out rex.PoolStats
	for _, p := range b.pools {
		st, err := p.Stats(context.Background())
		if err != nil {
			continue // in-proc Stats never errors; guard anyway
		}
		ps := st.Pool
		out.Hits += ps.Hits
		out.Misses += ps.Misses
		out.Evictions += ps.Evictions
		out.BytesSpilled += ps.BytesSpilled
	}
	return out
}

// close tears every sub-pool down.
func (b *backend) close() error {
	var first error
	for _, p := range b.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
