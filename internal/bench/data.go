package bench

import (
	"io"
	"sync"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

// Dataset generation is deterministic but not free; cache per scale so a
// full `rexbench -exp all` run generates each dataset once.
var (
	dataMu   sync.Mutex
	dbpCache = map[int]*datagen.Graph{}
	twCache  = map[int]*datagen.Graph{}
	geoCache = map[[2]int][]types.Tuple{}
	liCache  = map[int][]types.Tuple{}
)

func datagenDBPedia(sc Scale) *datagen.Graph {
	dataMu.Lock()
	defer dataMu.Unlock()
	g, ok := dbpCache[sc.DBPediaVertices]
	if !ok {
		g = datagen.DBPediaGraph(sc.DBPediaVertices, 1)
		dbpCache[sc.DBPediaVertices] = g
	}
	return g
}

func datagenTwitter(sc Scale) *datagen.Graph {
	dataMu.Lock()
	defer dataMu.Unlock()
	g, ok := twCache[sc.TwitterVertices]
	if !ok {
		g = datagen.TwitterGraph(sc.TwitterVertices, 2)
		twCache[sc.TwitterVertices] = g
	}
	return g
}

func datagenGeo(sc Scale, enlarge int) []types.Tuple {
	dataMu.Lock()
	defer dataMu.Unlock()
	key := [2]int{sc.GeoBasePoints, enlarge}
	pts, ok := geoCache[key]
	if !ok {
		pts = datagen.GeoPoints(sc.GeoBasePoints, 8, enlarge, 3)
		geoCache[key] = pts
	}
	return pts
}

func datagenLineItems(sc Scale) []types.Tuple {
	dataMu.Lock()
	defer dataMu.Unlock()
	rows, ok := liCache[sc.LineItemRows]
	if !ok {
		rows = datagen.LineItems(sc.LineItemRows, 4)
		liCache[sc.LineItemRows] = rows
	}
	return rows
}

// Experiments maps experiment ids to their runners, in figure order.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(w io.Writer, sc Scale) error
}{
	{"fig2", "PageRank convergence behavior", Fig2},
	{"fig3", "immutable/mutable/Δi set table", Fig3},
	{"fig4", "simple aggregation (TPC-H)", Fig4},
	{"fig5", "K-means scalability", Fig5},
	{"fig6", "PageRank DBPedia, five strategies", Fig6},
	{"fig7", "shortest path DBPedia", Fig7},
	{"fig8", "PageRank Twitter", Fig8},
	{"fig9", "shortest path Twitter", Fig9},
	{"fig10", "scalability and DBMS X", Fig10},
	{"fig11", "bandwidth per node", Fig11},
	{"fig12", "recovery from node failure", Fig12},
}
