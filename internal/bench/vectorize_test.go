package bench

// Vector-vs-row equivalence: every workload of the transport suite must
// produce the identical result hash with vectorization on and off, with
// and without the shuffle compactor. This is the engine-level property
// behind the columnar fast paths — they change throughput, never results.

import (
	"fmt"
	"testing"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
)

func TestVectorizeModesHashIdentical(t *testing.T) {
	sc := Scale{Nodes: 4, DBPediaVertices: 800, GeoBasePoints: 150, LineItemRows: 3000, Epsilon: 0.001}
	for _, spec := range SuiteSpecs(sc) {
		hashes := map[string]string{}
		for _, compaction := range []bool{false, true} {
			for _, novec := range []bool{false, true} {
				s := *spec
				s.Compaction = compaction
				s.NoVectorize = novec
				res, err := job.RunInProc(&s, func(o *exec.Options) {})
				if err != nil {
					t.Fatalf("%s compaction=%v novec=%v: %v", spec.Workload, compaction, novec, err)
				}
				hashes[fmt.Sprintf("compaction=%v novec=%v", compaction, novec)] = ResultHash(res.Tuples)
			}
		}
		want := hashes["compaction=true novec=true"]
		for mode, h := range hashes {
			if h != want {
				t.Errorf("%s: %s hashed %s, want %s", spec.Workload, mode, h, want)
			}
		}
	}
}
