// CI summary support: rexbench -json emits a machine-readable record of
// the experiments it ran plus a wire-traffic benchmark, which the CI
// bench-smoke job uploads as an artifact so the performance trajectory
// accumulates across commits.
package bench

import (
	"encoding/json"
	"io"
	"time"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/exec"
)

// CISchemaVersion stamps every rexbench JSON record. Bump it whenever a
// field changes meaning, so trend tooling comparing artifacts across
// commits can tell records apart instead of silently misreading them.
// History: 1 = unversioned PR 1 records; 2 = adds schema_version, go,
// commit, and the standing-query section; 3 = adds the write-heavy churn
// scenario's coalescing fields (ingests, staged/folded deltas,
// coalesce_ratio, sequential_bytes); 4 = adds the inner_loop section
// (rows_per_sec, allocs_per_round, heap_growth_bytes), the suite rows'
// row_path_hash (vectorization off), and the churn row's rows_per_sec;
// 5 = adds the spill section (paged stores with a larger-than-pool
// dataset: buffer-pool hit rate, evictions, bytes spilled, rows/sec);
// 6 = adds the kernel section (filter microloop: compiled column kernel
// vs scratch-tuple bridge, speedup_vs_bridged) and the filter-heavy rql
// suite workload.
const CISchemaVersion = 6

// CIRecord is the top-level JSON document.
type CIRecord struct {
	// SchemaVersion, Transport, GoVersion, and Commit identify the record:
	// artifacts from different commits/toolchains/backends are comparable
	// only when these say so.
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go,omitempty"`
	Commit        string `json:"commit,omitempty"`

	Scale float64 `json:"scale"`
	Nodes int     `json:"nodes"`
	// Transport names the backend the suite ran on (inproc | tcp).
	Transport   string         `json:"transport,omitempty"`
	Experiments []CIExperiment `json:"experiments"`
	Wire        []CIWire       `json:"wire,omitempty"`
	// Suite holds the transport-comparison workloads; records from an
	// inproc run and a tcp run should agree on result_hash exactly.
	Suite []CIWire `json:"suite,omitempty"`
	// Standing holds the standing-query (incremental view maintenance)
	// measurements; result hashes must also agree across transports.
	Standing []CIStanding `json:"standing,omitempty"`
	// InnerLoop holds the shuffle inner-loop measurements (row vs
	// columnar); CI gates on the vector/row rows_per_sec ratio and on
	// steady-state heap growth staying at zero.
	InnerLoop []CIInnerLoop `json:"inner_loop,omitempty"`
	// Spill holds the paged-store workload rows (dataset larger than the
	// buffer pool); CI gates on hash equality with the in-RAM run, on
	// evictions proving the run paged, and on hit-rate/throughput floors.
	Spill []CISpill `json:"spill,omitempty"`
	// Kernel holds the expression-kernel filter microloop rows (compiled
	// column kernel vs scratch-tuple bridge over one resident batch); CI
	// gates on the kernel row's speedup_vs_bridged floor.
	Kernel []CIKernel `json:"kernel,omitempty"`
}

// CIStanding records one standing-query measurement (produced by the
// rexbench standing suite, which drives the public session API).
type CIStanding struct {
	Query     string `json:"query"`
	Transport string `json:"transport"`
	// Rounds is the number of incremental ingestion rounds (the initial
	// fixpoint is not counted) and Strata the strata they executed.
	Rounds int `json:"rounds"`
	Strata int `json:"strata"`
	// InitialBytes is the initial fixpoint's wire volume,
	// IncrementalBytes the ingestion rounds' total, IngestBytes the
	// driver→worker staging payloads, and RecomputeBytes what one
	// from-scratch query over the revised tables shipped. The serving
	// claim is IncrementalBytes < RecomputeBytes.
	InitialBytes     int64 `json:"initial_bytes"`
	IncrementalBytes int64 `json:"incremental_bytes"`
	IngestBytes      int64 `json:"ingest_bytes"`
	RecomputeBytes   int64 `json:"recompute_bytes"`
	// ResultHash canonicalizes the folded subscription stream; it must
	// equal the recompute's hash on every transport.
	ResultHash string  `json:"result_hash"`
	Millis     float64 `json:"ms"`

	// Write-heavy churn scenario fields (zero on the plain standing row).
	// Ingests counts the IngestAsync requests fired; Rounds (above) is how
	// many coalesced rounds covered them — the serving claim is
	// Rounds < Ingests. StagedDeltas/FoldedDeltas report the pre-/post-
	// coalescing delta counts and CoalesceRatio their ratio.
	// SequentialBytes is the wire volume of the same churn ingested one
	// awaited round at a time on a reference session: the gate is
	// IncrementalBytes (coalesced) <= SequentialBytes.
	Ingests         int     `json:"ingests,omitempty"`
	StagedDeltas    int     `json:"staged_deltas,omitempty"`
	FoldedDeltas    int     `json:"folded_deltas,omitempty"`
	CoalesceRatio   float64 `json:"coalesce_ratio,omitempty"`
	SequentialBytes int64   `json:"sequential_bytes,omitempty"`
	// RowsPerSec is staged deltas applied per second of coalesced wall
	// time (churn row only); the bench-trend gate holds it against the
	// committed bench/baseline.json floor.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// CIExperiment records one figure run.
type CIExperiment struct {
	ID     string  `json:"id"`
	Millis float64 `json:"ms"`
}

// CIWire records one wire-traffic measurement: measured frame bytes and
// the shuffle compactor's delta counts for a workload at this scale.
type CIWire struct {
	Workload   string `json:"workload"`
	Transport  string `json:"transport,omitempty"`
	Compaction bool   `json:"compaction"`
	WireBytes  int64  `json:"wire_bytes"`
	DeltasIn   int64  `json:"deltas_in"`
	DeltasOut  int64  `json:"deltas_out"`
	ResultRows int    `json:"result_rows"`
	Strata     int    `json:"strata,omitempty"`
	ResultHash string `json:"result_hash,omitempty"`
	// RowPathHash is the same workload re-run with vectorization off
	// (NoVectorize); it must equal ResultHash — the vector operators and
	// columnar wire path change nothing observable. RowPathMillis is that
	// run's wall time, the end-to-end A/B against Millis.
	RowPathHash   string  `json:"row_path_hash,omitempty"`
	RowPathMillis float64 `json:"row_path_ms,omitempty"`
	Millis        float64 `json:"ms"`
}

// WireBench measures SSSP and PageRank wire traffic on the DBPedia-like
// graph with compaction off and on.
func WireBench(sc Scale) ([]CIWire, error) {
	g := datagenDBPedia(sc)
	var out []CIWire
	for _, compaction := range []bool{false, true} {
		opts := exec.Options{Compaction: compaction}
		res, _, err := runRexSSSP(g, sc.Nodes, algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 300}, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, ciWire("sssp", compaction, res))
		res, _, err = runRexPageRank(g, sc.Nodes, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: true, MaxIterations: 60}, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, ciWire("pagerank", compaction, res))
	}
	return out, nil
}

func ciWire(workload string, compaction bool, res *exec.Result) CIWire {
	return CIWire{
		Workload:   workload,
		Compaction: compaction,
		WireBytes:  res.BytesSent,
		DeltasIn:   res.CompactIn,
		DeltasOut:  res.CompactOut,
		ResultRows: len(res.Tuples),
		Millis:     float64(res.Duration) / float64(time.Millisecond),
	}
}

// WriteJSON renders the record as indented JSON.
func (r *CIRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
