package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/types"
)

// Runner executes one job spec — either in-process (job.RunInProc) or on
// a multi-process TCP cluster (job.Cluster.Run). The suite below is
// runner-agnostic, so the same workloads produce comparable records on
// both transports.
type Runner func(spec *job.Spec, tune func(*exec.Options)) (*exec.Result, error)

// SuiteSpecs are the transport-comparison workloads: the paper's three
// recursive algorithms plus a filter-heavy TPC-H-style aggregation, at
// benchmark scale, with compaction on. Every parameter is pinned so an
// inproc run and a TCP run (or two runs on different machines) execute
// the identical query on identical data. The rql workload's scan→filter→
// pre-agg chain is where the compiled column kernels live, so its
// row_path_ms column is the end-to-end kernels-vs-interpreter A/B.
func SuiteSpecs(sc Scale) []*job.Spec {
	return []*job.Spec{
		{
			Workload: "pagerank", Nodes: sc.Nodes, Seed: 1, Size: sc.DBPediaVertices,
			Epsilon: sc.Epsilon, Delta: true, MaxIterations: 60, Compaction: true,
		},
		{
			Workload: "sssp", Nodes: sc.Nodes, Seed: 1, Size: sc.DBPediaVertices,
			Source: 0, Delta: true, MaxIterations: 300, Compaction: true,
		},
		{
			Workload: "kmeans", Nodes: sc.Nodes, Seed: 3, Size: sc.GeoBasePoints,
			K: 8, MaxIterations: 100, Compaction: true,
		},
		{
			Workload: "rql", Nodes: sc.Nodes, Seed: 5, Size: sc.LineItemRows,
			Dataset: "lineitem", Compaction: true,
			Query: `SELECT returnflag, sum(extendedprice), count(*) FROM lineitem WHERE quantity < 30.0 AND linenumber > 1 GROUP BY returnflag`,
		},
	}
}

// TransportSuite runs the comparison workloads through the given runner,
// prints a report, and returns the CI rows (result hashes included, so
// artifacts from different transports can be diffed for identical
// results).
func TransportSuite(w io.Writer, sc Scale, transport string, run Runner) ([]CIWire, error) {
	rep := &Report{
		Title: fmt.Sprintf("Transport suite (%s)", transport),
		Notes: "same plans + seeds on every transport; result_hash must match across backends and with vectorization off",
		Headers: []string{"workload", "rows", "strata", "wire_bytes", "deltas_in", "deltas_out",
			"result_hash", "row_path_hash", "ms", "row_path_ms"},
	}
	var rows []CIWire
	for _, spec := range SuiteSpecs(sc) {
		start := time.Now()
		res, err := run(spec, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", spec.Workload, transport, err)
		}
		row := ciWire(spec.Workload, spec.Compaction, res)
		row.Transport = transport
		row.Strata = len(res.Strata)
		row.ResultHash = ResultHash(res.Tuples)
		row.Millis = float64(time.Since(start)) / float64(time.Millisecond)

		// Re-run the identical spec with vectorization off: the row
		// operator paths and row wire codec must produce the same result
		// set. NoVectorize travels in the spec so multi-process workers
		// agree with the driver.
		rowSpec := *spec
		rowSpec.NoVectorize = true
		rowStart := time.Now()
		rowRes, err := run(&rowSpec, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (vectorization off) on %s: %w", spec.Workload, transport, err)
		}
		row.RowPathMillis = float64(time.Since(rowStart)) / float64(time.Millisecond)
		row.RowPathHash = ResultHash(rowRes.Tuples)
		if row.RowPathHash != row.ResultHash {
			return nil, fmt.Errorf("bench: %s on %s: vectorized hash %s != row-path hash %s",
				spec.Workload, transport, row.ResultHash, row.RowPathHash)
		}

		rows = append(rows, row)
		rep.Rows = append(rep.Rows, []string{
			spec.Workload, fmt.Sprint(row.ResultRows), fmt.Sprint(row.Strata),
			fmt.Sprint(row.WireBytes), fmt.Sprint(row.DeltasIn), fmt.Sprint(row.DeltasOut),
			row.ResultHash, row.RowPathHash, fmt.Sprintf("%.1f", row.Millis),
			fmt.Sprintf("%.1f", row.RowPathMillis),
		})
	}
	rep.Print(w)
	return rows, nil
}

// ResultHash canonicalizes a result set — order-independent, floats
// rounded past the bits where summation order can wiggle — and hashes it,
// so two runs of one workload can be compared across transports (and CI
// artifacts across commits) without shipping the tuples.
func ResultHash(tuples []types.Tuple) string {
	lines := make([]string, len(tuples))
	for i, t := range tuples {
		var b strings.Builder
		for j, v := range t {
			if j > 0 {
				b.WriteByte('|')
			}
			switch x := v.(type) {
			case float64:
				fmt.Fprintf(&b, "%.6g", x)
			case nil:
				b.WriteString("∅")
			default:
				fmt.Fprintf(&b, "%v", x)
			}
		}
		lines[i] = b.String()
	}
	sort.Strings(lines)
	h := fnv.New64a()
	for _, l := range lines {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
