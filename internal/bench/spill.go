package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/rex-data/rex/internal/job"
)

// CISpill is the spill workload row (schema v5): the SSSP suite workload
// re-run through paged stores whose buffer pool is far smaller than the
// dataset, against the identical all-in-RAM run. The hashes must match
// exactly; the pool counters prove the run genuinely paged; and the
// bench-trend gate holds hit rate and rows/sec against the committed
// baseline floors.
type CISpill struct {
	Workload        string `json:"workload"`
	BufferPoolPages int    `json:"buffer_pool_pages"`
	// DatasetRows is the loaded base-table row count (what had to fit —
	// or not fit — through the pool).
	DatasetRows int `json:"dataset_rows"`
	// ResultHash is the paged run's canonical result hash; RAMHash the
	// in-memory reference's. They must be identical.
	ResultHash string `json:"result_hash"`
	RAMHash    string `json:"ram_hash"`
	// Pool traffic: hit rate over all page lookups, pages evicted, dirty
	// bytes written by eviction. Evictions == 0 means the dataset fit and
	// the row proves nothing — the gate rejects it.
	PoolHitRate  float64 `json:"pool_hit_rate"`
	Evictions    int64   `json:"evictions"`
	BytesSpilled int64   `json:"bytes_spilled"`
	// RowsPerSec is dataset rows over the paged run's wall time — the
	// regression trend for the paging overhead.
	RowsPerSec float64 `json:"rows_per_sec"`
	Millis     float64 `json:"ms"`
	RAMMillis  float64 `json:"ram_ms"`
}

// spillPoolPages is the deliberately tiny budget: 8 pages = 64 KiB per
// node, a small fraction of the suite dataset at every CI scale.
const spillPoolPages = 8

// SpillBench runs the SSSP suite workload twice in-process — all in RAM,
// then through paged stores with a tiny buffer pool — and reports the
// spill row. In-process only: TCP daemons page under their own data
// directories and are covered by the recovery smoke instead.
func SpillBench(w io.Writer, sc Scale) ([]CISpill, error) {
	spec := &job.Spec{
		Workload: "sssp", Nodes: sc.Nodes, Seed: 1, Size: sc.DBPediaVertices,
		Source: 0, Delta: true, MaxIterations: 300, Compaction: true,
	}

	ramStart := time.Now()
	ramRes, err := job.RunInProc(spec, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: spill reference run: %w", err)
	}
	ramMs := float64(time.Since(ramStart)) / float64(time.Millisecond)

	dir, err := os.MkdirTemp("", "rexspill")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sp := *spec
	sp.SpillDir = dir
	sp.BufferPoolPages = spillPoolPages
	start := time.Now()
	eng, plan, opts, err := job.InProcEngine(&sp)
	if err != nil {
		return nil, fmt.Errorf("bench: spill engine: %w", err)
	}
	defer eng.Transport.Close()
	defer eng.CloseStores()
	res, err := eng.Run(plan, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: spill run: %w", err)
	}
	elapsed := time.Since(start)

	rows := datasetRows(&sp)
	ps := eng.PoolStats()
	row := CISpill{
		Workload:        "sssp",
		BufferPoolPages: spillPoolPages,
		DatasetRows:     rows,
		ResultHash:      ResultHash(res.Tuples),
		RAMHash:         ResultHash(ramRes.Tuples),
		PoolHitRate:     ps.HitRate(),
		Evictions:       ps.Evictions,
		BytesSpilled:    ps.BytesSpilled,
		RowsPerSec:      float64(rows) / elapsed.Seconds(),
		Millis:          float64(elapsed) / float64(time.Millisecond),
		RAMMillis:       ramMs,
	}
	if row.ResultHash != row.RAMHash {
		return nil, fmt.Errorf("bench: spill hash %s != in-RAM hash %s", row.ResultHash, row.RAMHash)
	}

	rep := &Report{
		Title: "Spill workload (paged stores, larger-than-pool dataset)",
		Notes: fmt.Sprintf("pool %d pages/node; hashes must match the in-RAM run; evictions must be > 0", spillPoolPages),
		Headers: []string{"workload", "rows", "pool_pages", "hit_rate", "evictions",
			"spilled_bytes", "rows_per_sec", "ms", "ram_ms"},
		Rows: [][]string{{
			row.Workload, fmt.Sprint(rows), fmt.Sprint(spillPoolPages),
			fmt.Sprintf("%.3f", row.PoolHitRate), fmt.Sprint(row.Evictions),
			fmt.Sprint(row.BytesSpilled), fmt.Sprintf("%.0f", row.RowsPerSec),
			fmt.Sprintf("%.1f", row.Millis), fmt.Sprintf("%.1f", row.RAMMillis),
		}},
	}
	rep.Print(w)
	return []CISpill{row}, nil
}

// datasetRows counts the spec's loaded base rows (tables regenerated from
// the same deterministic parameters the run used).
func datasetRows(s *job.Spec) int {
	clone := *s
	_, _, tables, err := clone.Build()
	if err != nil {
		return 0
	}
	n := 0
	for _, tb := range tables {
		n += len(tb.Tuples)
	}
	return n
}
