// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6). Each Fig* function runs the
// corresponding experiment at a configurable scale and renders the same
// rows/series the paper plots. Absolute numbers differ from the authors'
// 28-machine cluster (the substrate here is a simulated cluster); the
// comparisons — who wins, by what factor, where crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
)

// Scale sizes the experiments. Defaults reproduce every figure in
// seconds-to-minutes on a laptop; raise the knobs to stress-test.
type Scale struct {
	// Nodes is the simulated cluster size for REX.
	Nodes int
	// Workers is the Hadoop slot count (paper: 4 tasks × 28 machines).
	Workers int
	// DBPediaVertices sizes the DBPedia-like graph (paper: 3.3M).
	DBPediaVertices int
	// TwitterVertices sizes the Twitter-like graph (paper: 41M).
	TwitterVertices int
	// GeoBasePoints sizes the K-means base dataset (paper: 328K).
	GeoBasePoints int
	// LineItemRows sizes the TPC-H table (paper: 60M).
	LineItemRows int
	// HadoopStartup is the per-job startup charge. The paper identifies
	// Hadoop's "substantial startup and tear-down overhead" (§6.7) as a
	// dominant cost for iteration; scaled to our runtimes.
	HadoopStartup time.Duration
	// Epsilon is the PageRank convergence threshold (paper: 1%).
	Epsilon float64
}

// DefaultScale is the laptop-sized configuration.
func DefaultScale() Scale {
	return Scale{
		Nodes:           4,
		Workers:         4,
		DBPediaVertices: 4000,
		TwitterVertices: 6000,
		GeoBasePoints:   400,
		LineItemRows:    60000,
		HadoopStartup:   30 * time.Millisecond,
		Epsilon:         0.001,
	}
}

// Report is one experiment's tabular output.
type Report struct {
	Title   string
	Notes   string
	Headers []string
	Rows    [][]string
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", r.Title)
	if r.Notes != "" {
		fmt.Fprintf(w, "%s\n", r.Notes)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// graphCatalog builds a catalog with the standard experiment tables.
func graphCatalog() *catalog.Catalog {
	cat := catalog.New()
	_ = cat.AddTable(&catalog.Table{Name: "graph", Schema: types.MustSchema("srcId:Integer", "destId:Integer"), PartitionKey: 0})
	_ = cat.AddTable(&catalog.Table{Name: "spseed", Schema: types.MustSchema("srcId:Integer", "dist:Double"), PartitionKey: 0})
	_ = cat.AddTable(&catalog.Table{Name: "points", Schema: types.MustSchema("id:Integer", "x:Double", "y:Double"), PartitionKey: 0})
	_ = cat.AddTable(&catalog.Table{Name: "kmseed", Schema: types.MustSchema("cid:Integer", "x:Double", "y:Double"), PartitionKey: 0})
	_ = cat.AddTable(&catalog.Table{Name: "lineitem", Schema: types.MustSchema(datagen.LineItemSchema...), PartitionKey: 0})
	_ = cat.AddTable(&catalog.Table{Name: "mrstate", Schema: types.MustSchema("k:Integer", "v:String"), PartitionKey: 0})
	return cat
}

// runRexPageRank executes PageRank on a fresh REX engine, returning the
// result and the engine (for metrics).
func runRexPageRank(g *datagen.Graph, nodes int, cfg algos.PageRankConfig, opts exec.Options) (*exec.Result, *exec.Engine, error) {
	cat := graphCatalog()
	jn, wn, err := algos.RegisterPageRank(cat, cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := exec.NewEngine(nodes, 32, 3, cat)
	if err := eng.Load("graph", 0, g.Edges); err != nil {
		return nil, nil, err
	}
	res, err := eng.Run(algos.PageRankPlan(cfg, jn, wn), opts)
	return res, eng, err
}

// runRexSSSP executes shortest path on a fresh REX engine.
func runRexSSSP(g *datagen.Graph, nodes int, cfg algos.SSSPConfig, opts exec.Options) (*exec.Result, *exec.Engine, error) {
	cat := graphCatalog()
	jn, wn, err := algos.RegisterSSSP(cat, cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := exec.NewEngine(nodes, 32, 3, cat)
	if err := eng.Load("graph", 0, g.Edges); err != nil {
		return nil, nil, err
	}
	if err := eng.Load("spseed", 0, algos.SSSPSeed(cfg)); err != nil {
		return nil, nil, err
	}
	res, err := eng.Run(algos.SSSPPlan(cfg, jn, wn), opts)
	return res, eng, err
}

// cum accumulates per-iteration durations into a cumulative series.
func cum(per []time.Duration) []time.Duration {
	out := make([]time.Duration, len(per))
	var total time.Duration
	for i, d := range per {
		total += d
		out[i] = total
	}
	return out
}

// strataDurations extracts per-iteration durations, skipping stratum 0
// (the base-case load) so series align with the paper's iteration axes.
func strataDurations(res *exec.Result) []time.Duration {
	var out []time.Duration
	for _, s := range res.Strata {
		out = append(out, s.Duration)
	}
	return out
}

// padSeries renders iteration series of differing lengths into rows.
func padSeries(n int, series map[string][]time.Duration, order []string) ([][]string, []string) {
	headers := append([]string{"iter"}, order...)
	var rows [][]string
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, name := range order {
			s := series[name]
			if i < len(s) {
				row = append(row, ms(s[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return rows, headers
}

func mrEngine(sc Scale) (*mapred.Engine, *mapred.Metrics) {
	m := &mapred.Metrics{}
	return mapred.NewEngine(mapred.Config{Workers: sc.Workers, StartupOverhead: sc.HadoopStartup, Metrics: m}), m
}
