// Kernel microloop benchmark: the filter inner loop that the expression
// kernels accelerate — evaluate a predicate over a resident 4096-row
// batch and copy the survivors into an output batch — measured with the
// compiled column kernel (typed vector loop + selection bitmap +
// column-wise survivor copy) and with the scratch-tuple bridge (box every
// row, walk the expression tree, append the materialized delta). Both
// modes consume the identical batch and must select the identical rows
// (checked, not assumed); CI gates on the kernel mode's speedup over the
// bridge staying above the committed floor.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// CIKernel records one kernel-microloop measurement (one mode). The
// trend fields CI gates on are RowsPerSec and, on the kernel row,
// SpeedupVsBridged.
type CIKernel struct {
	Workload string `json:"workload"`
	// Mode is "kernel" (compiled column kernel) or "bridged"
	// (scratch-tuple row interpreter).
	Mode   string `json:"mode"`
	Rows   int    `json:"rows"`   // batch rows per round
	Rounds int    `json:"rounds"` // timed rounds

	RowsPerSec     float64 `json:"rows_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"alloc_bytes_per_round"`
	// SpeedupVsBridged is set on the kernel row: kernel rows/sec over
	// bridged rows/sec. The bench-trend gate holds it against the
	// committed bench/baseline.json floor.
	SpeedupVsBridged float64 `json:"speedup_vs_bridged,omitempty"`
	// Checksum folds every surviving row index; the two modes of one
	// workload must agree exactly — kernels change throughput, never
	// which rows pass.
	Checksum string  `json:"checksum"`
	Millis   float64 `json:"ms"`
}

const (
	kernelLoopRows   = 4096 // batch rows per round
	kernelLoopRounds = 400  // timed rounds
)

// kernelLoopKinds is the (vertex int, dist float) SSSP frontier shape.
var kernelLoopKinds = []types.Kind{types.KindInt, types.KindFloat}

// kernelLoopBatch builds the resident batch both modes filter.
func kernelLoopBatch() (*types.DeltaBatch, error) {
	ds := make([]types.Delta, kernelLoopRows)
	for i := range ds {
		ds[i] = types.Insert(types.NewTuple(int64(i%997), float64(i%31)))
	}
	cb, ok := types.FromDeltas(ds)
	if !ok {
		return nil, fmt.Errorf("bench: kernel loop deltas not batchable")
	}
	return cb, nil
}

// kernelLoopPred is the filter: dist < 25 AND vertex >= 10 (~77%
// selective, so the survivor copy is part of both timings).
func kernelLoopPred() expr.Expr {
	return expr.NewLogic(expr.OpAnd,
		expr.NewCmp(expr.OpLt, expr.NewCol(1, types.KindFloat, "dist"), expr.NewConst(float64(25))),
		expr.NewCmp(expr.OpGe, expr.NewCol(0, types.KindInt, "vertex"), expr.NewConst(int64(10))))
}

// kernelRound is one kernel-mode round: one EvalBools pass over the
// whole batch, then a column-wise copy of the survivors.
func kernelRound(kern *expr.Kernel, cb *types.DeltaBatch, verdicts []bool, out *types.DeltaBatch, sink *int64, sum *uint64) error {
	if !kern.EvalBools(cb, false, kern.AllRows(cb.Len()), verdicts) {
		return fmt.Errorf("bench: kernel declined the microloop batch")
	}
	for i := 0; i < cb.Len(); i++ {
		if !verdicts[i] {
			continue
		}
		*sum = (*sum ^ uint64(i)) * 1099511628211
		out.AppendRowFrom(cb, i)
	}
	*sink += int64(out.Len())
	out.Reset()
	return nil
}

// bridgedRound is one bridge-mode round: materialize each row into a
// scratch tuple, interpret the tree, append the surviving delta — what
// every filter paid before kernels, and what non-compilable predicates
// still pay.
func bridgedRound(pred expr.Expr, cb *types.DeltaBatch, scratch types.Tuple, out *types.DeltaBatch, sink *int64, sum *uint64) error {
	for i := 0; i < cb.Len(); i++ {
		scratch = cb.Row(i, scratch)
		keep, err := expr.EvalBool(pred, scratch)
		if err != nil {
			return err
		}
		if !keep {
			continue
		}
		*sum = (*sum ^ uint64(i)) * 1099511628211
		out.Append(types.Delta{Op: cb.Op(i), Tup: scratch.Clone()})
	}
	*sink += int64(out.Len())
	out.Reset()
	return nil
}

// KernelBench runs the filter microloop in both modes and returns the CI
// rows, bridged first. Selection-checksum equality is enforced here, not
// left to the CI gate.
func KernelBench(w io.Writer) ([]CIKernel, error) {
	cb, err := kernelLoopBatch()
	if err != nil {
		return nil, err
	}
	pred := kernelLoopPred()
	kern, ok := expr.Compile(pred, kernelLoopKinds)
	if !ok {
		return nil, fmt.Errorf("bench: kernel loop predicate must compile")
	}

	out := types.GetBatch()
	defer types.PutBatch(out)
	scratch := make(types.Tuple, 0, len(kernelLoopKinds))
	bridgedRec, err := timeKernelLoop("filter4k", "bridged", func(sink *int64, sum *uint64) error {
		return bridgedRound(pred, cb, scratch, out, sink, sum)
	})
	if err != nil {
		return nil, err
	}

	verdicts := make([]bool, cb.Len())
	kernelRec, err := timeKernelLoop("filter4k", "kernel", func(sink *int64, sum *uint64) error {
		return kernelRound(kern, cb, verdicts, out, sink, sum)
	})
	if err != nil {
		return nil, err
	}
	if kernelRec.Checksum != bridgedRec.Checksum {
		return nil, fmt.Errorf("bench: kernel loop selected differently: bridged %s vs kernel %s",
			bridgedRec.Checksum, kernelRec.Checksum)
	}
	if bridgedRec.RowsPerSec > 0 {
		kernelRec.SpeedupVsBridged = kernelRec.RowsPerSec / bridgedRec.RowsPerSec
	}

	rep := &Report{
		Title: "Expression kernels (filter microloop)",
		Notes: fmt.Sprintf("%d-row batch filtered %d times; predicate eval + survivor copy",
			kernelLoopRows, kernelLoopRounds),
		Headers: []string{"workload", "mode", "rows/sec", "allocs/round", "alloc_bytes/round",
			"speedup", "checksum", "ms"},
	}
	rows := []CIKernel{bridgedRec, kernelRec}
	for _, rec := range rows {
		rep.Rows = append(rep.Rows, []string{
			rec.Workload, rec.Mode,
			fmt.Sprintf("%.0f", rec.RowsPerSec),
			fmt.Sprintf("%.0f", rec.AllocsPerRound),
			fmt.Sprintf("%.0f", rec.BytesPerRound),
			fmt.Sprintf("%.2fx", rec.SpeedupVsBridged),
			rec.Checksum, fmt.Sprintf("%.1f", rec.Millis),
		})
	}
	rep.Print(w)
	return rows, nil
}

// timeKernelLoop measures one mode: rows/sec over the timed rounds plus
// allocation counters from runtime.MemStats (Mallocs/TotalAlloc are
// monotonic, so no GC is forced inside the timed region).
func timeKernelLoop(workload, mode string, round func(sink *int64, sum *uint64) error) (CIKernel, error) {
	rec := CIKernel{Workload: workload, Mode: mode, Rows: kernelLoopRows, Rounds: kernelLoopRounds}
	var sink int64
	var sum uint64
	// Warm pools and caches with two untimed rounds.
	for r := 0; r < 2; r++ {
		if err := round(&sink, &sum); err != nil {
			return rec, err
		}
	}
	sum = 0
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < kernelLoopRounds; r++ {
		if err := round(&sink, &sum); err != nil {
			return rec, err
		}
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	rec.Checksum = fmt.Sprintf("%016x", sum)
	rec.Millis = float64(dur) / float64(time.Millisecond)
	if dur > 0 {
		rec.RowsPerSec = float64(kernelLoopRows*kernelLoopRounds) / dur.Seconds()
	}
	rec.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / kernelLoopRounds
	rec.BytesPerRound = float64(after.TotalAlloc-before.TotalAlloc) / kernelLoopRounds
	_ = sink
	return rec, nil
}
