package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps the full figure suite runnable inside the unit tests.
func tinyScale() Scale {
	return Scale{
		Nodes:           3,
		Workers:         3,
		DBPediaVertices: 300,
		TwitterVertices: 400,
		GeoBasePoints:   120,
		LineItemRows:    2000,
		HadoopStartup:   time.Millisecond,
		Epsilon:         0.001,
	}
}

func TestAllFiguresProduceReports(t *testing.T) {
	sc := tinyScale()
	for _, e := range Experiments {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, sc); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") || len(out) < 50 {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestFig4ResultsAgreeAcrossStrategies(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, tinyScale()); err != nil {
		t.Fatal(err)
	}
	// All four strategies must report the same sum and count columns.
	lines := strings.Split(buf.String(), "\n")
	var sums, counts []string
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) >= 4 && (strings.HasPrefix(l, "REX") || strings.HasPrefix(l, "Hadoop")) {
			sums = append(sums, fields[len(fields)-2])
			counts = append(counts, fields[len(fields)-1])
		}
	}
	if len(sums) != 4 {
		t.Fatalf("expected 4 strategies, parsed %d from:\n%s", len(sums), buf.String())
	}
	for i := 1; i < 4; i++ {
		if counts[i] != counts[0] {
			t.Fatalf("count mismatch across strategies: %v", counts)
		}
		if sums[i] != sums[0] {
			t.Fatalf("sum mismatch across strategies: %v", sums)
		}
	}
}

func TestReportPrint(t *testing.T) {
	var buf bytes.Buffer
	r := &Report{
		Title:   "t",
		Notes:   "n",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxx", "y"}},
	}
	r.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "xxxxx") {
		t.Fatalf("bad report:\n%s", out)
	}
}
