package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/dbmsx"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/wrap"
)

// Fig2 reproduces the PageRank convergence behaviour: per-iteration count
// (and share) of non-converged vertices, plus the distribution of the
// iteration at which vertices converge.
func Fig2(w io.Writer, sc Scale) error {
	g := datagenDBPedia(sc)
	prof := algos.PageRankConvergence(g, sc.Epsilon, 60)
	rep := &Report{
		Title:   "Fig 2: PageRank convergence behavior (DBPedia-like)",
		Headers: []string{"iter", "non-converged", "pct"},
	}
	for i, n := range prof.NonConverged {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", 100*float64(n)/float64(g.NumVertices)),
		})
	}
	rep.Print(w)

	hist := map[int]int{}
	maxIt := 0
	for _, it := range prof.LastChange {
		hist[it]++
		if it > maxIt {
			maxIt = it
		}
	}
	rep2 := &Report{
		Title:   "Fig 2(a): iterations needed per page (histogram)",
		Headers: []string{"converged at iter", "pages"},
	}
	for it := 0; it <= maxIt; it++ {
		rep2.Rows = append(rep2.Rows, []string{fmt.Sprintf("%d", it), fmt.Sprintf("%d", hist[it])})
	}
	rep2.Print(w)
	return nil
}

// Fig3 reproduces the "types of recursive data" table with measured set
// sizes: immutable set, mutable set, and the Δᵢ series actually observed.
func Fig3(w io.Writer, sc Scale) error {
	g := datagenDBPedia(sc)
	rep := &Report{
		Title:   "Fig 3: immutable / mutable / Δi sets (measured)",
		Headers: []string{"algorithm", "immutable set", "mutable set", "Δi per iteration"},
	}

	prRes, _, err := runRexPageRank(g, sc.Nodes, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: true, MaxIterations: 60}, exec.Options{})
	if err != nil {
		return err
	}
	rep.Rows = append(rep.Rows, []string{"PageRank",
		fmt.Sprintf("%d graph edges", len(g.Edges)),
		fmt.Sprintf("%d PageRank values", g.NumVertices),
		deltaSeries(prRes)})

	spRes, _, err := runRexSSSP(g, sc.Nodes, algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 300}, exec.Options{})
	if err != nil {
		return err
	}
	rep.Rows = append(rep.Rows, []string{"Shortest path",
		fmt.Sprintf("%d graph edges", len(g.Edges)),
		fmt.Sprintf("%d distances", len(spRes.Tuples)),
		deltaSeries(spRes)})

	points := datagenGeo(sc, 1)
	kmRes, err := runRexKMeans(points, sc.Nodes, 8, 100)
	if err != nil {
		return err
	}
	rep.Rows = append(rep.Rows, []string{"K-means",
		fmt.Sprintf("%d coordinates", len(points)),
		"assignment of points to centroids",
		deltaSeries(kmRes)})
	rep.Print(w)
	return nil
}

func deltaSeries(res *exec.Result) string {
	parts := make([]string, 0, len(res.Strata))
	for _, s := range res.Strata {
		parts = append(parts, fmt.Sprintf("%d", s.NewTuples))
	}
	if len(parts) > 14 {
		parts = append(parts[:14], "...")
	}
	return "[" + joinComma(parts) + "]"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// Fig4 reproduces the simple-aggregation comparison:
// SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1
// as REX built-in, REX UDF, REX wrap, and Hadoop.
func Fig4(w io.Writer, sc Scale) error {
	rows := datagenLineItems(sc)
	rep := &Report{
		Title:   "Fig 4: standard aggregation (TPC-H)",
		Headers: []string{"strategy", "runtime ms", "sum(tax)", "count"},
	}

	run := func(name string, useUDF bool) error {
		cat := graphCatalog()
		eng := exec.NewEngine(sc.Nodes, 32, 2, cat)
		if err := eng.Load("lineitem", 0, rows); err != nil {
			return err
		}
		p := exec.NewPlanSpec()
		scan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "lineitem"})
		var pred expr.Expr = expr.NewCmp(expr.OpGt, expr.NewCol(1, types.KindInt, "linenumber"), expr.NewConst(int64(1)))
		taxExpr := expr.Expr(expr.NewCol(5, types.KindFloat, "tax"))
		var argKinds [][]types.Kind
		if useUDF {
			// Boxed user-defined predicate and accessor with per-batch
			// reflection-style typechecking — the §6.1 UDF overhead.
			pred = expr.NewCall("lnGt1", func(args []types.Value) (types.Value, error) {
				n, _ := types.AsInt(args[0])
				return n > 1, nil
			}, types.KindBool, false, expr.NewCol(1, types.KindInt, "linenumber"))
			taxExpr = expr.NewCall("taxOf", func(args []types.Value) (types.Value, error) {
				f, _ := types.AsFloat(args[0])
				return f, nil
			}, types.KindFloat, false, expr.NewCol(5, types.KindFloat, "tax"))
			argKinds = [][]types.Kind{{types.KindInt}, {types.KindFloat}}
		}
		filter := p.Add(&exec.OpSpec{Kind: exec.OpFilter, Inputs: []int{scan.ID}, Pred: pred})
		proj := p.Add(&exec.OpSpec{
			Kind: exec.OpProject, Inputs: []int{filter.ID},
			Exprs:       []expr.Expr{expr.NewConst(int64(0)), taxExpr},
			UDFArgKinds: argKinds,
		})
		pre := p.Add(&exec.OpSpec{
			Kind: exec.OpPreAgg, Inputs: []int{proj.ID}, GroupKey: []int{0},
			Aggs: []exec.AggSpec{
				{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "tax")}},
				{Fn: "count"},
			},
		})
		rehash := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{pre.ID}, HashKey: []int{0}})
		gby := p.Add(&exec.OpSpec{
			Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
			Aggs: []exec.AggSpec{
				{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "tax")}},
				{Fn: "count", Args: []expr.Expr{expr.NewCol(2, types.KindInt, "n")}},
			},
		})
		p.RootID = gby.ID
		start := time.Now()
		res, err := eng.Run(p, exec.Options{})
		if err != nil {
			return err
		}
		sum, _ := types.AsFloat(res.Tuples[0][1])
		cnt, _ := types.AsInt(res.Tuples[0][2])
		rep.Rows = append(rep.Rows, []string{name, ms(time.Since(start)),
			fmt.Sprintf("%.2f", sum), fmt.Sprintf("%d", cnt)})
		return nil
	}
	if err := run("REX built-in", false); err != nil {
		return err
	}
	if err := run("REX UDF", true); err != nil {
		return err
	}

	// REX wrap: the Hadoop job's classes executed inside REX (§4.4).
	if err := fig4Wrap(rep, sc, rows); err != nil {
		return err
	}
	// Native Hadoop.
	if err := fig4Hadoop(rep, sc, rows); err != nil {
		return err
	}
	rep.Print(w)
	return nil
}

func fig4Job() *mapred.Job {
	return &mapred.Job{
		Name: "tpchagg",
		Mapper: mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			// value: "linenumber|tax"
			s, _ := v.(string)
			var ln int64
			var tax float64
			fmt.Sscanf(s, "%d|%g", &ln, &tax)
			if ln > 1 {
				emit(int64(0), fmt.Sprintf("%g|1", tax))
			}
			return nil
		}),
		Combiner: fig4Reducer(),
		Reducer:  fig4Reducer(),
	}
}

func fig4Reducer() mapred.Reducer {
	return mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		var sum float64
		var n int64
		for _, v := range vs {
			var t float64
			var c int64
			fmt.Sscanf(v.(string), "%g|%d", &t, &c)
			sum += t
			n += c
		}
		emit(k, fmt.Sprintf("%g|%d", sum, n))
		return nil
	})
}

func lineItemKVs(rows []types.Tuple) []mapred.KV {
	kvs := make([]mapred.KV, len(rows))
	for i, r := range rows {
		ln, _ := types.AsInt(r[1])
		tax, _ := types.AsFloat(r[5])
		kvs[i] = mapred.KV{K: r[0], V: fmt.Sprintf("%d|%g", ln, tax)}
	}
	return kvs
}

func fig4Wrap(rep *Report, sc Scale, rows []types.Tuple) error {
	cat := graphCatalog()
	job := fig4Job()
	if err := wrap.RegisterMapWrap(cat, "f4map", job.Mapper); err != nil {
		return err
	}
	if err := wrap.RegisterReduceWrap(cat, "f4red", job.Reducer); err != nil {
		return err
	}
	eng := exec.NewEngine(sc.Nodes, 32, 2, cat)
	if err := eng.Load("mrstate", 0, wrap.StateTuples(lineItemKVs(rows))); err != nil {
		return err
	}
	p := exec.NewPlanSpec()
	scan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "mrstate"})
	mw := p.Add(&exec.OpSpec{Kind: exec.OpTVF, Inputs: []int{scan.ID}, TVFName: "f4map"})
	rehash := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{mw.ID}, HashKey: []int{0}})
	rw := p.Add(&exec.OpSpec{Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0}, UDAName: "f4red"})
	p.RootID = rw.ID
	start := time.Now()
	res, err := eng.Run(p, exec.Options{})
	if err != nil {
		return err
	}
	var sum float64
	var n int64
	if len(res.Tuples) > 0 {
		fmt.Sscanf(res.Tuples[0][1].(string), "%g|%d", &sum, &n)
	}
	rep.Rows = append(rep.Rows, []string{"REX wrap", ms(time.Since(start)),
		fmt.Sprintf("%.2f", sum), fmt.Sprintf("%d", n)})
	return nil
}

func fig4Hadoop(rep *Report, sc Scale, rows []types.Tuple) error {
	eng, _ := mrEngine(sc)
	start := time.Now()
	out, err := eng.Run(fig4Job(), lineItemKVs(rows))
	if err != nil {
		return err
	}
	var sum float64
	var n int64
	if len(out) > 0 {
		fmt.Sscanf(out[0].V.(string), "%g|%d", &sum, &n)
	}
	rep.Rows = append(rep.Rows, []string{"Hadoop", ms(time.Since(start)),
		fmt.Sprintf("%.2f", sum), fmt.Sprintf("%d", n)})
	return nil
}

// Fig5 reproduces the K-means scalability sweep: REX Δ vs Hadoop LB over
// growing point counts.
func Fig5(w io.Writer, sc Scale) error {
	rep := &Report{
		Title:   "Fig 5: K-means scalability (runtime ms, to convergence)",
		Headers: []string{"points", "Hadoop LB", "REX Δ", "speedup"},
	}
	for _, enlarge := range []int{1, 10, 100} {
		points := datagenGeo(sc, enlarge)
		eng, _ := mrEngine(sc)
		hStart := time.Now()
		if _, err := algos.HadoopKMeans(eng, points, 8, 100); err != nil {
			return err
		}
		hDur := time.Since(hStart)

		rStart := time.Now()
		if _, err := runRexKMeans(points, sc.Nodes, 8, 100); err != nil {
			return err
		}
		rDur := time.Since(rStart)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", len(points)), ms(hDur), ms(rDur),
			fmt.Sprintf("%.1fx", float64(hDur)/float64(rDur)),
		})
	}
	rep.Print(w)
	return nil
}

func runRexKMeans(points []types.Tuple, nodes, k, maxIters int) (*exec.Result, error) {
	cat := graphCatalog()
	cfg := algos.KMeansConfig{K: k, MaxIterations: maxIters}
	jn, wn, err := algos.RegisterKMeans(cat, cfg)
	if err != nil {
		return nil, err
	}
	eng := exec.NewEngine(nodes, 32, 2, cat)
	if err := eng.Load("points", 0, points); err != nil {
		return nil, err
	}
	if err := eng.Load("kmseed", 0, algos.KMeansSeed(points, k)); err != nil {
		return nil, err
	}
	return eng.Run(algos.KMeansPlan(cfg, jn, wn), exec.Options{})
}

// recursiveComparison runs the five-strategy comparison of Figs. 6 and 7.
func recursiveComparison(w io.Writer, sc Scale, title string, g *datagen.Graph, pagerank bool, iters int, strategies []string) error {
	series := map[string][]time.Duration{}

	for _, s := range strategies {
		var per []time.Duration
		switch s {
		case "Hadoop LB":
			eng, _ := mrEngine(sc)
			var res *algos.MRResult
			var err error
			if pagerank {
				res, err = algos.HadoopPageRank(eng, g, iters)
			} else {
				res, err = algos.HadoopSSSP(eng, g, 0, iters)
			}
			if err != nil {
				return err
			}
			per = res.PerIter
		case "HaLoop LB":
			eng, _ := mrEngine(sc)
			hl := mapred.NewHaLoopEngine(eng)
			var res *algos.MRResult
			var err error
			if pagerank {
				res, err = algos.HaLoopPageRank(hl, g, iters)
			} else {
				res, err = algos.HaLoopSSSP(hl, g, 0, iters)
			}
			if err != nil {
				return err
			}
			per = res.PerIter
		case "REX wrap":
			if !pagerank {
				continue
			}
			cat := graphCatalog()
			plan, err := wrap.IterativeJobPlan(cat, algos.PageRankMRJob(), "mrstate", iters+1)
			if err != nil {
				return err
			}
			eng := exec.NewEngine(sc.Nodes, 32, 2, cat)
			if err := eng.Load("mrstate", 0, wrap.StateTuples(algos.PageRankMRState(g))); err != nil {
				return err
			}
			res, err := eng.Run(plan, exec.Options{})
			if err != nil {
				return err
			}
			per = strataDurations(res)
		case "REX noΔ":
			var res *exec.Result
			var err error
			if pagerank {
				res, _, err = runRexPageRank(g, sc.Nodes, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: false, MaxIterations: iters + 1}, exec.Options{})
			} else {
				res, _, err = runRexSSSP(g, sc.Nodes, algos.SSSPConfig{Source: 0, Delta: false, MaxIterations: iters + 1}, exec.Options{})
			}
			if err != nil {
				return err
			}
			per = strataDurations(res)
		case "REX Δ":
			var res *exec.Result
			var err error
			if pagerank {
				res, _, err = runRexPageRank(g, sc.Nodes, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: true, MaxIterations: 300}, exec.Options{})
			} else {
				// REX delta runs to the true fixpoint (§6.3 "Improved
				// Accuracy": 75 iterations vs everyone else's 6).
				res, _, err = runRexSSSP(g, sc.Nodes, algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}, exec.Options{})
			}
			if err != nil {
				return err
			}
			per = strataDurations(res)
		}
		series[s] = per
	}

	maxIter := 0
	for _, s := range series {
		if len(s) > maxIter {
			maxIter = len(s)
		}
	}
	perRows, headers := padSeries(maxIter, series, strategies)
	rep := &Report{Title: title + " — per-iteration runtime (ms)", Headers: headers, Rows: perRows}
	rep.Print(w)

	cumSeries := map[string][]time.Duration{}
	for k, v := range series {
		cumSeries[k] = cum(v)
	}
	cumRows, _ := padSeries(maxIter, cumSeries, strategies)
	rep2 := &Report{Title: title + " — cumulative runtime (ms)", Headers: headers, Rows: cumRows}
	rep2.Print(w)
	return nil
}

// Fig6 compares PageRank on the DBPedia-like graph across all five
// strategies.
func Fig6(w io.Writer, sc Scale) error {
	return recursiveComparison(w, sc, "Fig 6: PageRank (DBPedia)", datagenDBPedia(sc), true, 25,
		[]string{"Hadoop LB", "HaLoop LB", "REX wrap", "REX noΔ", "REX Δ"})
}

// Fig7 compares shortest path on the DBPedia-like graph.
func Fig7(w io.Writer, sc Scale) error {
	return recursiveComparison(w, sc, "Fig 7: shortest path (DBPedia)", datagenDBPedia(sc), false, 6,
		[]string{"Hadoop LB", "HaLoop LB", "REX noΔ", "REX Δ"})
}

// Fig8 compares PageRank on the larger Twitter-like graph (three best
// strategies, like the paper).
// Fig8 compares PageRank on the larger Twitter-like graph (three best
// strategies, like the paper).
func Fig8(w io.Writer, sc Scale) error {
	return recursiveComparison(w, sc, "Fig 8: PageRank (Twitter)", datagenTwitter(sc), true, 25,
		[]string{"Hadoop LB", "HaLoop LB", "REX Δ"})
}

// Fig9 compares shortest path on the Twitter-like graph.
func Fig9(w io.Writer, sc Scale) error {
	return recursiveComparison(w, sc, "Fig 9: shortest path (Twitter)", datagenTwitter(sc), false, 10,
		[]string{"Hadoop LB", "HaLoop LB", "REX Δ"})
}

// Fig10 measures REX scalability over cluster sizes plus the single-node
// DBMS X comparison (§6.4).
func Fig10(w io.Writer, sc Scale) error {
	g := datagenDBPedia(sc)
	iters := 20
	rep := &Report{
		Title:   "Fig 10(a): PageRank scalability vs cluster size",
		Headers: []string{"nodes", "runtime ms", "speedup vs 1 node"},
		Notes:   fmt.Sprintf("simulated cluster on a %d-core host: speedup is capped at the physical core count", runtime.NumCPU()),
	}
	var base time.Duration
	for _, n := range []int{1, 3, 9, 28} {
		res, _, err := runRexPageRank(g, n, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: true, MaxIterations: iters}, exec.Options{})
		if err != nil {
			return err
		}
		if n == 1 {
			base = res.Duration
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), ms(res.Duration),
			fmt.Sprintf("%.2fx", float64(base)/float64(res.Duration)),
		})
	}
	// DBMS X: single machine, recursive SQL, accumulating state.
	dres, err := dbmsx.New().PageRank(g, iters)
	if err != nil {
		return err
	}
	rep.Rows = append(rep.Rows, []string{"DBMS X (1 node)", ms(dres.Duration),
		fmt.Sprintf("accumulated %d rows", dres.PeakRows)})
	rep.Print(w)
	return nil
}

// Fig11 measures average per-node bandwidth for the Twitter experiments.
// REX rows report measured wire bytes (encoded frame volume on the
// simulated link), once with and once without delta-batch compaction; the
// compaction column is the shuffle's delta-count ratio out/in.
func Fig11(w io.Writer, sc Scale) error {
	g := datagenTwitter(sc)
	rep := &Report{
		Title:   "Fig 11: average bandwidth per node (Twitter)",
		Notes:   "iteration counts matched across strategies; REX bytes are measured wire frames, not estimates",
		Headers: []string{"workload", "strategy", "wire bytes", "KB/iter per node", "KB/s per node", "compaction"},
	}
	add := func(workload, strategy string, bytes int64, iters int, dur time.Duration, nodes int, compact string) {
		rate := float64(bytes) / 1024 / dur.Seconds() / float64(nodes)
		perIter := float64(bytes) / 1024 / float64(max(1, iters)) / float64(nodes)
		rep.Rows = append(rep.Rows, []string{workload, strategy,
			fmt.Sprintf("%d", bytes), fmt.Sprintf("%.1f", perIter), fmt.Sprintf("%.1f", rate), compact})
	}

	for _, workload := range []string{"shortest-path", "pagerank"} {
		pagerank := workload == "pagerank"
		// REX Δ with compaction off, then on.
		for _, compaction := range []bool{false, true} {
			opts := exec.Options{Compaction: compaction}
			var res *exec.Result
			var err error
			if pagerank {
				res, _, err = runRexPageRank(g, sc.Nodes, algos.PageRankConfig{Epsilon: sc.Epsilon, Delta: true, MaxIterations: 26}, opts)
			} else {
				res, _, err = runRexSSSP(g, sc.Nodes, algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 11}, opts)
			}
			if err != nil {
				return err
			}
			name, ratio := "REX Δ", "-"
			if compaction {
				name = "REX Δ compact"
				ratio = compactionRatio(res)
			}
			add(workload, name, res.BytesSent, len(res.Strata), res.Duration, sc.Nodes, ratio)
		}

		var err error
		for _, strat := range []string{"HaLoop LB", "Hadoop LB"} {
			meng, metrics := mrEngine(sc)
			start := time.Now()
			if strat == "HaLoop LB" {
				hl := mapred.NewHaLoopEngine(meng)
				if pagerank {
					_, err = algos.HaLoopPageRank(hl, g, 25)
				} else {
					_, err = algos.HaLoopSSSP(hl, g, 0, 10)
				}
			} else {
				if pagerank {
					_, err = algos.HadoopPageRank(meng, g, 25)
				} else {
					_, err = algos.HadoopSSSP(meng, g, 0, 10)
				}
			}
			if err != nil {
				return err
			}
			_, _, bytes := metrics.Snapshot()
			iters := 25
			if !pagerank {
				iters = 10
			}
			add(workload, strat, bytes, iters, time.Since(start), sc.Workers, "-")
		}
	}
	rep.Print(w)
	return nil
}

// compactionRatio renders the shuffle compactor's out/in delta ratio.
func compactionRatio(res *exec.Result) string {
	if res.CompactIn == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f (%d→%d Δs)",
		float64(res.CompactOut)/float64(res.CompactIn), res.CompactIn, res.CompactOut)
}

// Fig12 measures recovery: shortest path with a node failure injected at
// iteration k, comparing restart vs incremental recovery vs no failure.
func Fig12(w io.Writer, sc Scale) error {
	g := datagenDBPedia(sc)
	rep := &Report{
		Title:   "Fig 12: recovery (shortest path, DBPedia), runtime ms",
		Headers: []string{"failure at iter", "restart", "incremental", "no failure"},
	}
	cfg := algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}
	baseline, _, err := runRexSSSP(g, sc.Nodes, cfg, exec.Options{Checkpoint: true})
	if err != nil {
		return err
	}
	totalIters := len(baseline.Strata)
	for k := 1; k < totalIters; k += max(1, totalIters/8) {
		row := []string{fmt.Sprintf("%d", k)}
		for _, strat := range []exec.RecoveryStrategy{exec.RecoveryRestart, exec.RecoveryIncremental} {
			killAt := k
			var once bool
			var engRef *exec.Engine
			opts := exec.Options{
				Recovery:   strat,
				Checkpoint: true,
				OnStratum: func(stratum, n int) {
					if stratum == killAt && !once {
						once = true
						engRef.Transport.Kill(1)
					}
				},
			}
			cat := graphCatalog()
			jn, wn, err := algos.RegisterSSSP(cat, cfg)
			if err != nil {
				return err
			}
			eng := exec.NewEngine(sc.Nodes, 32, 3, cat)
			engRef = eng
			if err := eng.Load("graph", 0, g.Edges); err != nil {
				return err
			}
			if err := eng.Load("spseed", 0, algos.SSSPSeed(cfg)); err != nil {
				return err
			}
			res, err := eng.Run(algos.SSSPPlan(cfg, jn, wn), opts)
			if err != nil {
				return err
			}
			if len(res.Tuples) != len(baseline.Tuples) {
				return fmt.Errorf("bench: recovery produced %d results, want %d", len(res.Tuples), len(baseline.Tuples))
			}
			row = append(row, ms(res.Duration))
		}
		row = append(row, ms(baseline.Duration))
		rep.Rows = append(rep.Rows, row)
	}
	rep.Print(w)
	return nil
}
