// Inner-loop benchmark: the per-round shuffle cycle that dominates the
// recursive workloads (SSSP, PageRank) — decode an incoming delta frame,
// hash-route every delta to its destination partition, re-encode the
// per-destination frames — measured on the row codec path and on the
// columnar delta-batch path. The two modes process identical delta
// streams and must route identically (checked, not assumed); the columnar
// mode's win comes from the near-zero-copy decode, vectorized key
// hashing, and pooled frame buffers.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// CIInnerLoop records one inner-loop measurement (one workload shape in
// one mode). RowsPerSec and AllocsPerRound are the trend fields CI gates
// on; HeapGrowthBytes is the steady-state check — live heap after GC must
// not grow across 50 pooled rounds (columnar mode only; the row path has
// no arena to hold steady).
type CIInnerLoop struct {
	Workload string `json:"workload"`
	// Mode is "row" (materialized tuples, row codec) or "vector"
	// (columnar batches end to end).
	Mode   string `json:"mode"`
	Rows   int    `json:"rows"`   // deltas per round
	Rounds int    `json:"rounds"` // timed rounds

	RowsPerSec     float64 `json:"rows_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"alloc_bytes_per_round"`
	// SpeedupVsRow is set on the vector row: vector rows/sec over row
	// rows/sec for the same workload.
	SpeedupVsRow float64 `json:"speedup_vs_row,omitempty"`
	// HeapGrowthBytes is live-heap growth (post-GC) across 50 additional
	// steady-state rounds; pooled arenas must hold this at ~zero.
	HeapGrowthBytes int64 `json:"heap_growth_bytes,omitempty"`
	// Checksum folds every (destination, key-hash) routing decision; the
	// row and vector rows of one workload must agree exactly.
	Checksum string  `json:"checksum"`
	Millis   float64 `json:"ms"`
}

// innerLoopShape describes one workload-shaped delta stream.
type innerLoopShape struct {
	name string
	gen  func(round, i int) types.Delta
}

// innerLoopShapes are the delta streams of the two recursive rexbench
// workloads: SSSP ships (vertex, dist) δ-updates, PageRank ships
// (vertex, rank, degree) contributions.
func innerLoopShapes() []innerLoopShape {
	return []innerLoopShape{
		{name: "sssp", gen: func(round, i int) types.Delta {
			v := int64((i*2654435761 + round*97) % 100003)
			d := types.Delta{Op: types.OpUpdate, Tup: types.NewTuple(v, float64(round+i%17))}
			if i%5 == 0 {
				d.Op = types.OpInsert
			}
			return d
		}},
		{name: "pagerank", gen: func(round, i int) types.Delta {
			v := int64((i*40503 + round*31) % 100003)
			return types.Delta{Op: types.OpUpdate, Tup: types.NewTuple(v, 0.85/float64(1+i%9), int64(1+i%9))}
		}},
	}
}

const (
	innerLoopRows   = 8192 // deltas per round
	innerLoopRounds = 50   // timed rounds
	innerLoopNodes  = 4    // routing destinations
	innerLoopFlush  = 1024 // per-destination frame granularity (defaultBatchSize)
)

// innerLoopKey is the partition key of both workload shapes.
var innerLoopKey = []int{0}

// rowRound is one row-mode inner loop: decode a row frame, route each
// materialized delta by key hash, re-encode one frame per destination.
// dests persists across rounds, mirroring the rehash operator's reused
// pending buffers.
func rowRound(frame []byte, dests [][]types.Delta, sink *int64, sum *uint64) error {
	rows, err := cluster.DecodeDeltas(frame)
	if err != nil {
		return err
	}
	flush := func(d int) {
		payload := cluster.EncodeDeltas(dests[d])
		*sink += int64(len(payload))
		dests[d] = dests[d][:0]
	}
	for _, d := range rows {
		h := types.HashValue(d.Tup[0])
		n := int(h % innerLoopNodes)
		*sum = (*sum ^ (h + uint64(n))) * 1099511628211
		dests[n] = append(dests[n], d)
		if len(dests[n]) >= innerLoopFlush {
			flush(n)
		}
	}
	for n := range dests {
		if len(dests[n]) > 0 {
			flush(n)
		}
	}
	return nil
}

// vecRound is one columnar-mode inner loop: near-zero-copy decode of a
// columnar frame, vectorized key hashing into pooled per-destination
// batches, lazy re-encode through the pooled payload buffers.
func vecRound(frame []byte, dests []*types.DeltaBatch, scratch types.Tuple, sink *int64, sum *uint64) error {
	_, cb, err := cluster.DecodeDeltasAny(frame)
	if err != nil {
		return err
	}
	if cb == nil {
		return fmt.Errorf("bench: inner loop frame decoded as rows, want columnar")
	}
	flush := func(n int) {
		buf := cluster.GetPayloadBuf()
		payload := cluster.EncodeDeltaBatch(buf, dests[n])
		*sink += int64(len(payload))
		cluster.PutPayloadBuf(payload)
		dests[n].Reset()
	}
	for i := 0; i < cb.Len(); i++ {
		h := cb.HashKeyAt(i, innerLoopKey, scratch)
		n := int(h % innerLoopNodes)
		*sum = (*sum ^ (h + uint64(n))) * 1099511628211
		if !dests[n].CanAppendRowFrom(cb, i) || dests[n].Len() >= innerLoopFlush {
			flush(n)
		}
		dests[n].AppendRowFrom(cb, i)
	}
	for n := range dests {
		if dests[n].Len() > 0 {
			flush(n)
		}
	}
	return nil
}

// InnerLoopBench runs both modes over both workload shapes and returns
// the CI rows, row mode first per workload. The two modes must make
// identical routing decisions (checksum equality is enforced here, not
// left to the CI gate).
func InnerLoopBench(w io.Writer) ([]CIInnerLoop, error) {
	var out []CIInnerLoop
	rep := &Report{
		Title: "Shuffle inner loop (row vs columnar)",
		Notes: fmt.Sprintf("%d deltas/round routed across %d partitions; decode → hash-route → re-encode",
			innerLoopRows, innerLoopNodes),
		Headers: []string{"workload", "mode", "rows/sec", "allocs/round", "alloc_bytes/round",
			"speedup", "heap_growth", "checksum", "ms"},
	}
	for _, shape := range innerLoopShapes() {
		// Pre-encode each round's frame in both wire formats outside the
		// timed region: each mode consumes its own format end to end,
		// exactly as the engine does with vectorization off vs on.
		rowFrames := make([][]byte, innerLoopRounds)
		vecFrames := make([][]byte, innerLoopRounds)
		for r := 0; r < innerLoopRounds; r++ {
			deltas := make([]types.Delta, innerLoopRows)
			for i := range deltas {
				deltas[i] = shape.gen(r, i)
			}
			rowFrames[r] = cluster.EncodeDeltas(deltas)
			cb, ok := types.FromDeltas(deltas)
			if !ok {
				return nil, fmt.Errorf("bench: %s deltas not batchable", shape.name)
			}
			vecFrames[r] = cluster.EncodeDeltaBatch(nil, cb)
		}

		rowDests := make([][]types.Delta, innerLoopNodes)
		rowRec, err := timeInnerLoop(shape.name, "row", func(r int, sink *int64, sum *uint64) error {
			return rowRound(rowFrames[r%innerLoopRounds], rowDests, sink, sum)
		})
		if err != nil {
			return nil, err
		}

		dests := make([]*types.DeltaBatch, innerLoopNodes)
		for n := range dests {
			dests[n] = types.GetBatch()
		}
		scratch := make(types.Tuple, 0, 8)
		vecRec, err := timeInnerLoop(shape.name, "vector", func(r int, sink *int64, sum *uint64) error {
			return vecRound(vecFrames[r%innerLoopRounds], dests, scratch, sink, sum)
		})
		if err != nil {
			return nil, err
		}
		if vecRec.Checksum != rowRec.Checksum {
			return nil, fmt.Errorf("bench: %s inner loop routed differently: row %s vs vector %s",
				shape.name, rowRec.Checksum, vecRec.Checksum)
		}
		if rowRec.RowsPerSec > 0 {
			vecRec.SpeedupVsRow = vecRec.RowsPerSec / rowRec.RowsPerSec
		}

		// Steady-state heap check: after warmup + GC, 50 more pooled
		// rounds must not grow the live heap — the arenas recycle.
		var sink int64
		var sum uint64
		for r := 0; r < 10; r++ {
			if err := vecRound(vecFrames[r%innerLoopRounds], dests, scratch, &sink, &sum); err != nil {
				return nil, err
			}
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for r := 0; r < 50; r++ {
			if err := vecRound(vecFrames[r%innerLoopRounds], dests, scratch, &sink, &sum); err != nil {
				return nil, err
			}
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		vecRec.HeapGrowthBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
		for n := range dests {
			types.PutBatch(dests[n])
		}

		for _, rec := range []CIInnerLoop{rowRec, vecRec} {
			out = append(out, rec)
			rep.Rows = append(rep.Rows, []string{
				rec.Workload, rec.Mode,
				fmt.Sprintf("%.0f", rec.RowsPerSec),
				fmt.Sprintf("%.0f", rec.AllocsPerRound),
				fmt.Sprintf("%.0f", rec.BytesPerRound),
				fmt.Sprintf("%.2fx", rec.SpeedupVsRow),
				fmt.Sprint(rec.HeapGrowthBytes),
				rec.Checksum, fmt.Sprintf("%.1f", rec.Millis),
			})
		}
	}
	rep.Print(w)
	return out, nil
}

// timeInnerLoop measures one mode: rows/sec over the timed rounds plus
// allocation counters from runtime.MemStats (Mallocs/TotalAlloc are
// monotonic, so no GC is forced inside the timed region).
func timeInnerLoop(workload, mode string, round func(r int, sink *int64, sum *uint64) error) (CIInnerLoop, error) {
	rec := CIInnerLoop{Workload: workload, Mode: mode, Rows: innerLoopRows, Rounds: innerLoopRounds}
	var sink int64
	var sum uint64
	// Warm pools and caches with two untimed rounds.
	for r := 0; r < 2; r++ {
		if err := round(r, &sink, &sum); err != nil {
			return rec, err
		}
	}
	sum = 0
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < innerLoopRounds; r++ {
		if err := round(r, &sink, &sum); err != nil {
			return rec, err
		}
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	rec.Checksum = fmt.Sprintf("%016x", sum)
	rec.Millis = float64(dur) / float64(time.Millisecond)
	if dur > 0 {
		rec.RowsPerSec = float64(innerLoopRows*innerLoopRounds) / dur.Seconds()
	}
	rec.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / innerLoopRounds
	rec.BytesPerRound = float64(after.TotalAlloc-before.TotalAlloc) / innerLoopRounds
	_ = sink
	return rec, nil
}
