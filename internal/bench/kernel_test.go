package bench

import (
	"bytes"
	"testing"
)

func TestKernelBenchModesAgree(t *testing.T) {
	var buf bytes.Buffer
	rows, err := KernelBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "bridged" || rows[1].Mode != "kernel" {
		t.Fatalf("want [bridged kernel] rows, got %+v", rows)
	}
	// KernelBench enforces selection-checksum equality internally; assert
	// it anyway so a refactor that drops the check fails here.
	if rows[0].Checksum != rows[1].Checksum {
		t.Fatalf("modes selected different rows: %s vs %s", rows[0].Checksum, rows[1].Checksum)
	}
	if rows[1].SpeedupVsBridged <= 0 {
		t.Fatalf("kernel row missing speedup: %+v", rows[1])
	}
	for _, r := range rows {
		if r.RowsPerSec <= 0 || r.Rows != kernelLoopRows || r.Rounds != kernelLoopRounds {
			t.Fatalf("bad record: %+v", r)
		}
	}
}
