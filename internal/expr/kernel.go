// Expression kernels: a bound expression compiled once into a tree of
// typed vector evaluators that process a whole DeltaBatch column-wise —
// typed loops over int64/float64 vectors with validity-bitmap handling —
// instead of interpreting the tree per row over boxed scratch tuples.
//
// The row interpreter (Expr.Eval) stays the ground truth. A kernel never
// computes a different answer: whenever a batch contains anything the
// typed loops cannot reproduce exactly — a mixed-kind (boxed-any) column,
// a column whose runtime kind drifted from its declared kind, a row the
// interpreter would reject (NULL arithmetic, integer division by zero,
// non-boolean logic operand), an unbound parameter — the kernel declines
// the whole batch and the operator re-runs it through the row path, which
// reproduces the exact result or error. Declining is therefore always
// safe; it is only ever a performance event, counted by the operator's
// fallback counters.
package expr

import (
	"math"

	"github.com/rex-data/rex/internal/types"
)

// Kernel is a compiled vectorized evaluator for one bound expression.
// A kernel is owned by a single operator instance on one worker
// goroutine: its scratch vectors are reused across batches without
// locking, and results are valid only until the next Eval* call.
type Kernel struct {
	root knode
	k    types.Kind

	vecs []*types.Vec // scratch vector pool, reset per Eval* call
	used int
	all  []int32 // dense identity selection cache
}

// Compile compiles e against the input schema (column kinds; nil when
// the plan did not record one — column declarations are trusted then).
// ok=false means the expression has a shape the kernel compiler does not
// handle (UDF calls, non-numeric arithmetic operands, float modulo):
// the operator keeps the row-interpreter bridge for every batch.
func Compile(e Expr, schema []types.Kind) (*Kernel, bool) {
	root, ok := compileNode(e, schema)
	if !ok {
		return nil, false
	}
	return &Kernel{root: root, k: e.Kind()}, true
}

// Kind reports the expression's static result kind.
func (k *Kernel) Kind() types.Kind { return k.k }

// EvalBools evaluates a predicate kernel over the selected rows of b
// (new images, or old images of replace rows when old is true), writing
// each row's verdict into out (indexed by absolute row number, which
// must cover b.Len()). ok=false declines the batch: re-run it through
// the row interpreter. Like EvalBool, predicates are strict — a NULL
// result is not a bool, so any NULL verdict declines.
func (k *Kernel) EvalBools(b *types.DeltaBatch, old bool, rows []int32, out []bool) bool {
	if k.k != types.KindBool {
		return false
	}
	kc := kctx{b: b, old: old, n: b.Len(), kern: k}
	k.used = 0
	v, ok := k.root.eval(&kc, rows)
	if !ok || v.K != types.KindBool || hasNullAt(v, rows) {
		return false
	}
	for _, i := range rows {
		out[i] = v.Bools[i]
	}
	return true
}

// EvalInto evaluates a projection kernel over the selected rows of b
// into dst (indexed by absolute row number). dst is caller-owned, so two
// passes of one kernel (new images, then old images) can coexist.
// ok=false declines the batch.
func (k *Kernel) EvalInto(b *types.DeltaBatch, old bool, rows []int32, dst *types.Vec) bool {
	kc := kctx{b: b, old: old, n: b.Len(), kern: k}
	k.used = 0
	v, ok := k.root.eval(&kc, rows)
	if !ok {
		return false
	}
	dst.Reset(v.K, kc.n)
	for _, i := range rows {
		dst.CopyRow(v, int(i))
	}
	return true
}

// AllRows returns the dense identity selection [0, n) — the "evaluate
// the whole batch" selection vector, cached on the kernel.
func (k *Kernel) AllRows(n int) []int32 {
	if cap(k.all) < n {
		k.all = make([]int32, n)
		for i := range k.all {
			k.all[i] = int32(i)
		}
	}
	if len(k.all) < n {
		for i := len(k.all); i < n; i++ {
			k.all = append(k.all, int32(i))
		}
	}
	return k.all[:n]
}

// kctx is one Eval* call's context: the batch, which image group to
// read, the row count (vectors are sized to cover it), and the owning
// kernel (for scratch).
type kctx struct {
	b    *types.DeltaBatch
	old  bool
	n    int
	kern *Kernel
}

// knode is one compiled node. eval computes the node over the selected
// rows (absolute indexes into kc.b) and returns a vector indexed the
// same way. ok=false declines the whole batch to the row interpreter —
// the decline contract in the package comment.
type knode interface {
	eval(kc *kctx, rows []int32) (*types.Vec, bool)
}

func (k *Kernel) getVec() *types.Vec {
	if k.used == len(k.vecs) {
		k.vecs = append(k.vecs, new(types.Vec))
	}
	v := k.vecs[k.used]
	k.used++
	return v
}

func compileNode(e Expr, schema []types.Kind) (knode, bool) {
	switch v := e.(type) {
	case *Col:
		if v.Idx < 0 {
			return nil, false
		}
		if schema != nil && v.Idx >= len(schema) {
			return nil, false
		}
		return &colNode{idx: v.Idx, k: v.K}, true
	case *Const:
		return &scalarNode{v: v.V}, true
	case *Param:
		return &paramNode{p: v}, true
	case *Arith:
		// Float modulo always errors in the row path; a statically
		// non-numeric operand would lean on AsInt/AsFloat string/bool
		// coercion, which the typed loops do not reproduce.
		if v.Kind() == types.KindFloat && v.Op == OpMod {
			return nil, false
		}
		if !numericKind(v.L.Kind()) || !numericKind(v.R.Kind()) {
			return nil, false
		}
		l, ok := compileNode(v.L, schema)
		if !ok {
			return nil, false
		}
		r, ok := compileNode(v.R, schema)
		if !ok {
			return nil, false
		}
		return &arithNode{op: v.Op, l: l, r: r, k: v.Kind()}, true
	case *Cmp:
		l, ok := compileNode(v.L, schema)
		if !ok {
			return nil, false
		}
		r, ok := compileNode(v.R, schema)
		if !ok {
			return nil, false
		}
		return &cmpNode{op: v.Op, l: l, r: r}, true
	case *Logic:
		l, ok := compileNode(v.L, schema)
		if !ok {
			return nil, false
		}
		r, ok := compileNode(v.R, schema)
		if !ok {
			return nil, false
		}
		return &logicNode{op: v.Op, l: l, r: r}, true
	case *Not:
		c, ok := compileNode(v.E, schema)
		if !ok {
			return nil, false
		}
		return &notNode{e: c}, true
	default:
		// *Call (UDFs run through boxed values by design) and anything
		// this compiler does not know.
		return nil, false
	}
}

func numericKind(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat
}

// colNode reads one column of the batch as a borrowed typed vector.
type colNode struct {
	idx int
	k   types.Kind
}

func (n *colNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	var c *types.Column
	if kc.old {
		if n.idx >= kc.b.NumOldCols() {
			return nil, false
		}
		c = kc.b.OldCol(n.idx)
	} else {
		if n.idx >= kc.b.NumCols() {
			return nil, false
		}
		c = kc.b.Col(n.idx)
	}
	v := kc.kern.getVec()
	if v.BorrowColumn(c) {
		if n.k != types.KindNull && v.K != n.k {
			// Runtime kind drifted from the declared kind; the row
			// interpreter knows the coercion rules.
			return nil, false
		}
		return v, true
	}
	if c.Mixed() {
		return nil, false // boxed-any column: documented fallback
	}
	// Empty-kinded column: every row reads as NULL.
	v.Reset(n.k, kc.n)
	for _, i := range rows {
		v.SetNull(int(i))
	}
	return v, true
}

// scalarNode broadcasts a literal over the selection.
type scalarNode struct {
	v types.Value
}

func (n *scalarNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	return splat(kc, rows, n.v)
}

// paramNode broadcasts a bound parameter value. The value is read once
// per batch — the per-row resolution of the interpreter collapses to one
// splat, since parameters cannot change mid-batch.
type paramNode struct {
	p *Param
}

func (n *paramNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	if n.p.Set == nil || n.p.Idx < 0 || n.p.Idx >= len(n.p.Set.Values) {
		return nil, false // unbound: the row path raises the real error
	}
	return splat(kc, rows, n.p.Set.Values[n.p.Idx])
}

func splat(kc *kctx, rows []int32, val types.Value) (*types.Vec, bool) {
	v := kc.kern.getVec()
	switch x := val.(type) {
	case int64:
		v.Reset(types.KindInt, kc.n)
		for _, i := range rows {
			v.Ints[i] = x
		}
	case float64:
		v.Reset(types.KindFloat, kc.n)
		for _, i := range rows {
			v.Floats[i] = x
		}
	case string:
		v.Reset(types.KindString, kc.n)
		for _, i := range rows {
			v.Strs[i] = x
		}
	case bool:
		v.Reset(types.KindBool, kc.n)
		for _, i := range rows {
			v.Bools[i] = x
		}
	case nil:
		v.Reset(types.KindNull, kc.n)
		for _, i := range rows {
			v.SetNull(int(i))
		}
	default:
		return nil, false
	}
	return v, true
}

// hasNullAt reports whether any selected row is NULL (bitmap scan first,
// so all-valid vectors cost one slice-length check).
func hasNullAt(v *types.Vec, rows []int32) bool {
	if !v.AnyNull() {
		return false
	}
	for _, i := range rows {
		if v.Null(int(i)) {
			return true
		}
	}
	return false
}

// asFloats returns a float64 view of a numeric vector over the selected
// rows, converting int64 through kernel scratch exactly as AsFloat does.
// Validity must be checked against the original vector.
func asFloats(kc *kctx, v *types.Vec, rows []int32) ([]float64, bool) {
	switch v.K {
	case types.KindFloat:
		return v.Floats, true
	case types.KindInt:
		t := kc.kern.getVec()
		t.Reset(types.KindFloat, kc.n)
		src := v.Ints
		for _, i := range rows {
			t.Floats[i] = float64(src[i])
		}
		return t.Floats, true
	}
	return nil, false
}

// asBools returns a bool view of a logic operand over the selected rows.
// AsBool accepts bool and int64 (non-zero = true); anything else — and
// any NULL row — errors in the interpreter, so the caller declines.
func asBools(kc *kctx, v *types.Vec, rows []int32) ([]bool, bool) {
	if hasNullAt(v, rows) {
		return nil, false
	}
	switch v.K {
	case types.KindBool:
		return v.Bools, true
	case types.KindInt:
		t := kc.kern.getVec()
		t.Reset(types.KindBool, kc.n)
		src := v.Ints
		for _, i := range rows {
			t.Bools[i] = src[i] != 0
		}
		return t.Bools, true
	}
	return nil, false
}

// arithNode is +,-,*,/,% with the interpreter's mode rule baked in at
// compile time: float mode when either side is statically Float, else
// int mode. Any condition the interpreter would reject — a NULL operand,
// integer division or modulo by zero, an operand vector of the wrong
// kind — declines the batch.
type arithNode struct {
	op   ArithOp
	l, r knode
	k    types.Kind
}

func (n *arithNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	lv, ok := n.l.eval(kc, rows)
	if !ok {
		return nil, false
	}
	rv, ok := n.r.eval(kc, rows)
	if !ok {
		return nil, false
	}
	if hasNullAt(lv, rows) || hasNullAt(rv, rows) {
		return nil, false // "non-numeric operand" in the row path
	}
	out := kc.kern.getVec()
	if n.k == types.KindFloat {
		lf, ok := asFloats(kc, lv, rows)
		if !ok {
			return nil, false
		}
		rf, ok := asFloats(kc, rv, rows)
		if !ok {
			return nil, false
		}
		out.Reset(types.KindFloat, kc.n)
		o := out.Floats
		switch n.op {
		case OpAdd:
			for _, i := range rows {
				o[i] = lf[i] + rf[i]
			}
		case OpSub:
			for _, i := range rows {
				o[i] = lf[i] - rf[i]
			}
		case OpMul:
			for _, i := range rows {
				o[i] = lf[i] * rf[i]
			}
		case OpDiv:
			for _, i := range rows {
				o[i] = lf[i] / rf[i]
			}
		default:
			return nil, false // OpMod rejected at compile time
		}
		return out, true
	}
	if lv.K != types.KindInt || rv.K != types.KindInt {
		return nil, false
	}
	li, ri := lv.Ints, rv.Ints
	out.Reset(types.KindInt, kc.n)
	o := out.Ints
	switch n.op {
	case OpAdd:
		for _, i := range rows {
			o[i] = li[i] + ri[i]
		}
	case OpSub:
		for _, i := range rows {
			o[i] = li[i] - ri[i]
		}
	case OpMul:
		for _, i := range rows {
			o[i] = li[i] * ri[i]
		}
	case OpDiv:
		for _, i := range rows {
			if ri[i] == 0 {
				return nil, false // "integer division by zero"
			}
			o[i] = li[i] / ri[i]
		}
	case OpMod:
		for _, i := range rows {
			if ri[i] == 0 {
				return nil, false // "modulo by zero"
			}
			o[i] = li[i] % ri[i]
		}
	default:
		return nil, false
	}
	return out, true
}

// cmpNode yields Bool per row with ValueEq/ValueCompare semantics:
// NULL-tolerant (nil equals only nil and sorts before everything),
// mixed numeric kinds compare as floats, NaN sorts before non-NaN.
// Kind combinations outside the typed fast paths run a boxed generic
// loop — still exact, just slower — rather than declining.
type cmpNode struct {
	op   CmpOp
	l, r knode
}

func (n *cmpNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	lv, ok := n.l.eval(kc, rows)
	if !ok {
		return nil, false
	}
	rv, ok := n.r.eval(kc, rows)
	if !ok {
		return nil, false
	}
	out := kc.kern.getVec()
	out.Reset(types.KindBool, kc.n)
	ob := out.Bools
	nulls := lv.AnyNull() || rv.AnyNull()

	// Promote mixed numeric sides to float: ValueCompare(int64, f) is
	// compareFloat(float64(i), f) and ValueEq converts through AsFloat,
	// so the promoted loops are bit-exact.
	flv, frv := lv, rv
	var lf, rf []float64
	if lv.K != rv.K && numericKind(lv.K) && numericKind(rv.K) {
		lf, _ = asFloats(kc, lv, rows)
		rf, _ = asFloats(kc, rv, rows)
	} else if lv.K == types.KindFloat && rv.K == types.KindFloat {
		lf, rf = lv.Floats, rv.Floats
	}

	switch {
	case lf != nil:
		n.evalFloats(rows, ob, flv, frv, lf, rf, nulls)
	case lv.K == types.KindInt && rv.K == types.KindInt:
		n.evalInts(rows, ob, lv, rv, nulls)
	case lv.K == types.KindString && rv.K == types.KindString:
		n.evalStrings(rows, ob, lv, rv, nulls)
	case lv.K == types.KindBool && rv.K == types.KindBool:
		n.evalBools(rows, ob, lv, rv, nulls)
	default:
		// Generic boxed loop: exact by construction (it IS ValueEq /
		// ValueCompare), covering odd kind pairs and all-NULL vectors.
		for _, i := range rows {
			a, b := lv.Value(int(i)), rv.Value(int(i))
			switch n.op {
			case OpEq:
				ob[i] = types.ValueEq(a, b)
			case OpNe:
				ob[i] = !types.ValueEq(a, b)
			default:
				ob[i] = cmpHolds(n.op, types.ValueCompare(a, b))
			}
		}
	}
	return out, true
}

// nullCmp mirrors ValueCompare's nil ordering: nil == nil, nil < any.
func nullCmp(ln, rn bool) int {
	switch {
	case ln && rn:
		return 0
	case ln:
		return -1
	default:
		return 1
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

func floatCmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

func (n *cmpNode) evalInts(rows []int32, ob []bool, lv, rv *types.Vec, nulls bool) {
	li, ri := lv.Ints, rv.Ints
	eqOp := n.op == OpEq || n.op == OpNe
	neq := n.op == OpNe
	for _, i := range rows {
		if nulls {
			if ln, rn := lv.Null(int(i)), rv.Null(int(i)); ln || rn {
				if eqOp {
					ob[i] = (ln && rn) != neq
				} else {
					ob[i] = cmpHolds(n.op, nullCmp(ln, rn))
				}
				continue
			}
		}
		if eqOp {
			ob[i] = (li[i] == ri[i]) != neq
			continue
		}
		var c int
		switch {
		case li[i] < ri[i]:
			c = -1
		case li[i] > ri[i]:
			c = 1
		}
		ob[i] = cmpHolds(n.op, c)
	}
}

func (n *cmpNode) evalFloats(rows []int32, ob []bool, lv, rv *types.Vec, lf, rf []float64, nulls bool) {
	eqOp := n.op == OpEq || n.op == OpNe
	neq := n.op == OpNe
	for _, i := range rows {
		if nulls {
			if ln, rn := lv.Null(int(i)), rv.Null(int(i)); ln || rn {
				if eqOp {
					ob[i] = (ln && rn) != neq
				} else {
					ob[i] = cmpHolds(n.op, nullCmp(ln, rn))
				}
				continue
			}
		}
		if eqOp {
			ob[i] = (lf[i] == rf[i]) != neq
			continue
		}
		ob[i] = cmpHolds(n.op, floatCmp(lf[i], rf[i]))
	}
}

func (n *cmpNode) evalStrings(rows []int32, ob []bool, lv, rv *types.Vec, nulls bool) {
	ls, rs := lv.Strs, rv.Strs
	eqOp := n.op == OpEq || n.op == OpNe
	neq := n.op == OpNe
	for _, i := range rows {
		if nulls {
			if ln, rn := lv.Null(int(i)), rv.Null(int(i)); ln || rn {
				if eqOp {
					ob[i] = (ln && rn) != neq
				} else {
					ob[i] = cmpHolds(n.op, nullCmp(ln, rn))
				}
				continue
			}
		}
		if eqOp {
			ob[i] = (ls[i] == rs[i]) != neq
			continue
		}
		var c int
		switch {
		case ls[i] < rs[i]:
			c = -1
		case ls[i] > rs[i]:
			c = 1
		}
		ob[i] = cmpHolds(n.op, c)
	}
}

func (n *cmpNode) evalBools(rows []int32, ob []bool, lv, rv *types.Vec, nulls bool) {
	lb, rb := lv.Bools, rv.Bools
	eqOp := n.op == OpEq || n.op == OpNe
	neq := n.op == OpNe
	for _, i := range rows {
		if nulls {
			if ln, rn := lv.Null(int(i)), rv.Null(int(i)); ln || rn {
				if eqOp {
					ob[i] = (ln && rn) != neq
				} else {
					ob[i] = cmpHolds(n.op, nullCmp(ln, rn))
				}
				continue
			}
		}
		if eqOp {
			ob[i] = (lb[i] == rb[i]) != neq
			continue
		}
		var c int
		switch {
		case !lb[i] && rb[i]:
			c = -1
		case lb[i] && !rb[i]:
			c = 1
		}
		ob[i] = cmpHolds(n.op, c)
	}
}

// logicNode is AND/OR with the interpreter's per-row short-circuit
// preserved through sub-selections: the right side is evaluated only
// over rows the left side did not decide, so a row-path expression like
// `x <> 0 AND 10/x > 1` never trips the division guard on rows the
// interpreter would have short-circuited past.
type logicNode struct {
	op   LogicOp
	l, r knode
	sub  []int32
}

func (n *logicNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	lv, ok := n.l.eval(kc, rows)
	if !ok {
		return nil, false
	}
	lb, ok := asBools(kc, lv, rows)
	if !ok {
		return nil, false // "non-boolean operand" in the row path
	}
	out := kc.kern.getVec()
	out.Reset(types.KindBool, kc.n)
	ob := out.Bools
	n.sub = n.sub[:0]
	if n.op == OpAnd {
		for _, i := range rows {
			if lb[i] {
				n.sub = append(n.sub, i)
			} else {
				ob[i] = false
			}
		}
	} else {
		for _, i := range rows {
			if lb[i] {
				ob[i] = true
			} else {
				n.sub = append(n.sub, i)
			}
		}
	}
	if len(n.sub) > 0 {
		rv, ok := n.r.eval(kc, n.sub)
		if !ok {
			return nil, false
		}
		rb, ok := asBools(kc, rv, n.sub)
		if !ok {
			return nil, false
		}
		for _, i := range n.sub {
			ob[i] = rb[i]
		}
	}
	return out, true
}

// notNode negates a bool-coercible operand; NULL or a non-boolean kind
// errors in the interpreter, so it declines here.
type notNode struct {
	e knode
}

func (n *notNode) eval(kc *kctx, rows []int32) (*types.Vec, bool) {
	v, ok := n.e.eval(kc, rows)
	if !ok {
		return nil, false
	}
	nb, ok := asBools(kc, v, rows)
	if !ok {
		return nil, false
	}
	out := kc.kern.getVec()
	out.Reset(types.KindBool, kc.n)
	for _, i := range rows {
		out.Bools[i] = !nb[i]
	}
	return out, true
}
