// Package expr implements bound, typed scalar expressions: column
// references, literals, arithmetic, comparisons, boolean connectives, and
// calls to user-defined scalar functions. The RQL front-end binds names to
// column indexes at plan time so evaluation is a pure function of the tuple.
package expr

import (
	"fmt"
	"strings"

	"github.com/rex-data/rex/internal/types"
)

// Expr is a bound scalar expression evaluated against one tuple.
type Expr interface {
	Eval(t types.Tuple) (types.Value, error)
	Kind() types.Kind
	String() string
}

// Col references a column by bound index.
type Col struct {
	Idx  int
	K    types.Kind
	Name string
}

// NewCol builds a bound column reference.
func NewCol(idx int, k types.Kind, name string) *Col { return &Col{Idx: idx, K: k, Name: name} }

// Eval returns the referenced field.
func (c *Col) Eval(t types.Tuple) (types.Value, error) {
	if c.Idx < 0 || c.Idx >= len(t) {
		return nil, fmt.Errorf("expr: column %s index %d out of range for %d-tuple", c.Name, c.Idx, len(t))
	}
	return t[c.Idx], nil
}

// Kind reports the column's type.
func (c *Col) Kind() types.Kind { return c.K }

func (c *Col) String() string { return c.Name }

// Const is a literal value.
type Const struct {
	V types.Value
}

// NewConst builds a literal.
func NewConst(v types.Value) *Const { return &Const{V: v} }

// Eval returns the literal.
func (c *Const) Eval(types.Tuple) (types.Value, error) { return c.V, nil }

// Kind reports the literal's type.
func (c *Const) Kind() types.Kind { return types.KindOf(c.V) }

func (c *Const) String() string {
	if s, ok := c.V.(string); ok {
		return "'" + s + "'"
	}
	return types.AsString(c.V)
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[o]
}

// Arith is a binary arithmetic expression. If either operand is a float the
// result is a float; integer division by zero is an error.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Kind reports Float if either side is Float, else Int.
func (a *Arith) Kind() types.Kind {
	if a.L.Kind() == types.KindFloat || a.R.Kind() == types.KindFloat {
		return types.KindFloat
	}
	return types.KindInt
}

// Eval computes the arithmetic result.
func (a *Arith) Eval(t types.Tuple) (types.Value, error) {
	lv, err := a.L.Eval(t)
	if err != nil {
		return nil, err
	}
	rv, err := a.R.Eval(t)
	if err != nil {
		return nil, err
	}
	if a.Kind() == types.KindFloat {
		lf, ok1 := types.AsFloat(lv)
		rf, ok2 := types.AsFloat(rv)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: %s: non-numeric operand", a)
		}
		switch a.Op {
		case OpAdd:
			return lf + rf, nil
		case OpSub:
			return lf - rf, nil
		case OpMul:
			return lf * rf, nil
		case OpDiv:
			return lf / rf, nil
		case OpMod:
			return nil, fmt.Errorf("expr: %% not defined on Double")
		}
	}
	li, ok1 := types.AsInt(lv)
	ri, ok2 := types.AsInt(rv)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("expr: %s: non-numeric operand", a)
	}
	switch a.Op {
	case OpAdd:
		return li + ri, nil
	case OpSub:
		return li - ri, nil
	case OpMul:
		return li * ri, nil
	case OpDiv:
		if ri == 0 {
			return nil, fmt.Errorf("expr: integer division by zero")
		}
		return li / ri, nil
	case OpMod:
		if ri == 0 {
			return nil, fmt.Errorf("expr: modulo by zero")
		}
		return li % ri, nil
	}
	return nil, fmt.Errorf("expr: unknown arith op %v", a.Op)
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Cmp is a comparison expression yielding Bool.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison node.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Kind is always Bool.
func (c *Cmp) Kind() types.Kind { return types.KindBool }

// Eval computes the comparison.
func (c *Cmp) Eval(t types.Tuple) (types.Value, error) {
	lv, err := c.L.Eval(t)
	if err != nil {
		return nil, err
	}
	rv, err := c.R.Eval(t)
	if err != nil {
		return nil, err
	}
	cmp := types.ValueCompare(lv, rv)
	switch c.Op {
	case OpEq:
		return types.ValueEq(lv, rv), nil
	case OpNe:
		return !types.ValueEq(lv, rv), nil
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("expr: unknown cmp op %v", c.Op)
}

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// LogicOp is a boolean connective.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic is AND/OR with short-circuit evaluation.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// NewLogic builds a boolean connective node.
func NewLogic(op LogicOp, l, r Expr) *Logic { return &Logic{Op: op, L: l, R: r} }

// Kind is always Bool.
func (l *Logic) Kind() types.Kind { return types.KindBool }

// Eval computes the connective with short-circuiting.
func (l *Logic) Eval(t types.Tuple) (types.Value, error) {
	lv, err := l.L.Eval(t)
	if err != nil {
		return nil, err
	}
	lb, ok := types.AsBool(lv)
	if !ok {
		return nil, fmt.Errorf("expr: %s: non-boolean operand", l)
	}
	if l.Op == OpAnd && !lb {
		return false, nil
	}
	if l.Op == OpOr && lb {
		return true, nil
	}
	rv, err := l.R.Eval(t)
	if err != nil {
		return nil, err
	}
	rb, ok := types.AsBool(rv)
	if !ok {
		return nil, fmt.Errorf("expr: %s: non-boolean operand", l)
	}
	return rb, nil
}

func (l *Logic) String() string {
	op := "AND"
	if l.Op == OpOr {
		op = "OR"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// NewNot builds a negation node.
func NewNot(e Expr) *Not { return &Not{E: e} }

// Kind is always Bool.
func (n *Not) Kind() types.Kind { return types.KindBool }

// Eval negates the operand.
func (n *Not) Eval(t types.Tuple) (types.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil {
		return nil, err
	}
	b, ok := types.AsBool(v)
	if !ok {
		return nil, fmt.Errorf("expr: NOT: non-boolean operand")
	}
	return !b, nil
}

func (n *Not) String() string { return "NOT " + n.E.String() }

// ScalarFn is the implementation of a user-defined scalar function. REX
// invokes UDFs through boxed values (the Go analogue of the paper's Java
// reflection calls); input batching amortizes the per-call overhead.
type ScalarFn func(args []types.Value) (types.Value, error)

// Call invokes a user-defined scalar function.
type Call struct {
	FnName string
	Fn     ScalarFn
	Args   []Expr
	Ret    types.Kind

	// Deterministic functions are memoized by the applyFunction operator
	// (§5.1 "Caching").
	Deterministic bool
}

// NewCall builds a bound UDF call.
func NewCall(name string, fn ScalarFn, ret types.Kind, deterministic bool, args ...Expr) *Call {
	return &Call{FnName: name, Fn: fn, Args: args, Ret: ret, Deterministic: deterministic}
}

// Kind reports the declared return type.
func (c *Call) Kind() types.Kind { return c.Ret }

// Eval evaluates arguments and invokes the function.
func (c *Call) Eval(t types.Tuple) (types.Value, error) {
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(t)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	v, err := c.Fn(args)
	if err != nil {
		return nil, fmt.Errorf("expr: UDF %s: %w", c.FnName, err)
	}
	return v, nil
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.FnName + "(" + strings.Join(parts, ", ") + ")"
}

// EvalBool evaluates e as a predicate. Predicates are strictly typed:
// anything but a bool result is an error.
func EvalBool(e Expr, t types.Tuple) (bool, error) {
	v, err := e.Eval(t)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("expr: predicate %s returned non-boolean %v", e, v)
	}
	return b, nil
}

// Columns reports the set of column indexes referenced by e.
func Columns(e Expr) []int {
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *Col:
			seen[v.Idx] = true
		case *Arith:
			walk(v.L)
			walk(v.R)
		case *Cmp:
			walk(v.L)
			walk(v.R)
		case *Logic:
			walk(v.L)
			walk(v.R)
		case *Not:
			walk(v.E)
		case *Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	return out
}
