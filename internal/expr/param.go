package expr

import (
	"fmt"

	"github.com/rex-data/rex/internal/types"
)

// ParamSet holds the runtime values of a prepared statement's $N
// parameters. The plan's Param expressions share one ParamSet, so binding
// new values re-targets every occurrence without recompiling; executions of
// the same prepared plan must therefore be serialized by the caller (the
// session lock already does).
type ParamSet struct {
	Values []types.Value
}

// Bind installs the values for the next execution.
func (s *ParamSet) Bind(vals []types.Value) { s.Values = vals }

// Param is a $N placeholder bound at prepare time and valued at run time.
// Its kind is inferred from context during binding (comparison or
// arithmetic partner, UDF signature) so downstream typechecking works
// before any value exists.
type Param struct {
	Set *ParamSet
	Idx int // 0-based; $1 is Idx 0
	K   types.Kind
}

// NewParam builds a placeholder over the statement's ParamSet.
func NewParam(set *ParamSet, idx int, k types.Kind) *Param {
	return &Param{Set: set, Idx: idx, K: k}
}

// Eval returns the currently bound value.
func (p *Param) Eval(types.Tuple) (types.Value, error) {
	if p.Idx >= len(p.Set.Values) {
		return nil, fmt.Errorf("expr: parameter $%d not bound", p.Idx+1)
	}
	return p.Set.Values[p.Idx], nil
}

// Kind reports the inferred parameter type.
func (p *Param) Kind() types.Kind { return p.K }

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx+1) }
