package expr

// Kernel-vs-interpreter microbenchmarks at the expression layer: the
// same predicate and projection evaluated over one 4096-row batch by the
// compiled kernel (EvalBools/EvalInto) and by the row interpreter over
// scratch tuples. Run with
//
//	go test -run '^$' -bench Kernel -benchmem ./internal/expr

import (
	"testing"

	"github.com/rex-data/rex/internal/types"
)

var benchKinds = []types.Kind{types.KindInt, types.KindFloat}

func benchKernelBatch(b *testing.B) *types.DeltaBatch {
	ds := make([]types.Delta, 4096)
	for i := range ds {
		ds[i] = types.Insert(types.NewTuple(int64(i%997), float64(i%31)))
	}
	cb, ok := types.FromDeltas(ds)
	if !ok {
		b.Fatal("stream not batchable")
	}
	return cb
}

func benchPred() Expr {
	return NewLogic(OpAnd,
		NewCmp(OpLt, NewCol(1, types.KindFloat, "d"), NewConst(float64(25))),
		NewCmp(OpGe, NewCol(0, types.KindInt, "v"), NewConst(int64(10))))
}

func benchProj() Expr {
	return NewArith(OpAdd,
		NewArith(OpMul, NewCol(1, types.KindFloat, "d"), NewConst(float64(0.5))),
		NewConst(float64(1)))
}

func BenchmarkPredicateKernel(b *testing.B) {
	cb := benchKernelBatch(b)
	kern, ok := Compile(benchPred(), benchKinds)
	if !ok {
		b.Fatal("predicate must compile")
	}
	rows := kern.AllRows(cb.Len())
	out := make([]bool, cb.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !kern.EvalBools(cb, false, rows, out) {
			b.Fatal("kernel declined")
		}
	}
}

func BenchmarkPredicateInterpreter(b *testing.B) {
	cb := benchKernelBatch(b)
	pred := benchPred()
	out := make([]bool, cb.Len())
	var scratch types.Tuple
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < cb.Len(); r++ {
			scratch = cb.Row(r, scratch)
			v, err := EvalBool(pred, scratch)
			if err != nil {
				b.Fatal(err)
			}
			out[r] = v
		}
	}
}

func BenchmarkProjectionKernel(b *testing.B) {
	cb := benchKernelBatch(b)
	kern, ok := Compile(benchProj(), benchKinds)
	if !ok {
		b.Fatal("projection must compile")
	}
	rows := kern.AllRows(cb.Len())
	var dst types.Vec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !kern.EvalInto(cb, false, rows, &dst) {
			b.Fatal("kernel declined")
		}
	}
}

func BenchmarkProjectionInterpreter(b *testing.B) {
	cb := benchKernelBatch(b)
	proj := benchProj()
	out := make([]types.Value, cb.Len())
	var scratch types.Tuple
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < cb.Len(); r++ {
			scratch = cb.Row(r, scratch)
			v, err := proj.Eval(scratch)
			if err != nil {
				b.Fatal(err)
			}
			out[r] = v
		}
	}
}
