package expr

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/rex-data/rex/internal/types"
)

func mustEval(t *testing.T, e Expr, tup types.Tuple) types.Value {
	t.Helper()
	v, err := e.Eval(tup)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestColAndConst(t *testing.T) {
	tup := types.NewTuple(int64(5), "x")
	c := NewCol(0, types.KindInt, "a")
	if mustEval(t, c, tup).(int64) != 5 {
		t.Error("col eval")
	}
	if _, err := NewCol(7, types.KindInt, "bad").Eval(tup); err == nil {
		t.Error("out-of-range column must error")
	}
	k := NewConst(2.5)
	if k.Kind() != types.KindFloat || mustEval(t, k, nil).(float64) != 2.5 {
		t.Error("const eval")
	}
	if NewConst("s").String() != "'s'" {
		t.Error("const string rendering")
	}
}

func TestArith(t *testing.T) {
	tup := types.NewTuple(int64(7), 2.0)
	a := NewCol(0, types.KindInt, "a")
	b := NewCol(1, types.KindFloat, "b")
	if mustEval(t, NewArith(OpAdd, a, a), tup).(int64) != 14 {
		t.Error("int add")
	}
	if mustEval(t, NewArith(OpMul, a, b), tup).(float64) != 14.0 {
		t.Error("mixed mul must be float")
	}
	if mustEval(t, NewArith(OpDiv, a, NewConst(int64(2))), tup).(int64) != 3 {
		t.Error("int div truncates")
	}
	if mustEval(t, NewArith(OpMod, a, NewConst(int64(4))), tup).(int64) != 3 {
		t.Error("mod")
	}
	if mustEval(t, NewArith(OpSub, b, b), tup).(float64) != 0 {
		t.Error("float sub")
	}
	if _, err := NewArith(OpDiv, a, NewConst(int64(0))).Eval(tup); err == nil {
		t.Error("div by zero must error")
	}
	if _, err := NewArith(OpMod, b, b).Eval(tup); err == nil {
		t.Error("float mod must error")
	}
	if _, err := NewArith(OpAdd, NewConst("x"), a).Eval(tup); err == nil {
		t.Error("string arith must error")
	}
}

func TestCmpAndLogic(t *testing.T) {
	tup := types.NewTuple(int64(3), int64(5))
	a := NewCol(0, types.KindInt, "a")
	b := NewCol(1, types.KindInt, "b")
	cases := []struct {
		op   CmpOp
		want bool
	}{{OpEq, false}, {OpNe, true}, {OpLt, true}, {OpLe, true}, {OpGt, false}, {OpGe, false}}
	for _, c := range cases {
		if got := mustEval(t, NewCmp(c.op, a, b), tup).(bool); got != c.want {
			t.Errorf("3 %s 5 = %v, want %v", c.op, got, c.want)
		}
	}
	lt := NewCmp(OpLt, a, b)
	gt := NewCmp(OpGt, a, b)
	if !mustEval(t, NewLogic(OpOr, gt, lt), tup).(bool) {
		t.Error("or")
	}
	if mustEval(t, NewLogic(OpAnd, gt, lt), tup).(bool) {
		t.Error("and")
	}
	if !mustEval(t, NewNot(gt), tup).(bool) {
		t.Error("not")
	}
	// Short-circuit: the erroring right side must not be reached.
	boom := NewArith(OpDiv, a, NewConst(int64(0)))
	boomPred := NewCmp(OpEq, boom, a)
	if v := mustEval(t, NewLogic(OpAnd, gt, boomPred), tup); v.(bool) {
		t.Error("and short-circuit")
	}
	if v := mustEval(t, NewLogic(OpOr, lt, boomPred), tup); !v.(bool) {
		t.Error("or short-circuit")
	}
}

func TestCall(t *testing.T) {
	double := func(args []types.Value) (types.Value, error) {
		f, _ := types.AsFloat(args[0])
		return f * 2, nil
	}
	c := NewCall("double", double, types.KindFloat, true, NewCol(0, types.KindFloat, "x"))
	if mustEval(t, c, types.NewTuple(2.5)).(float64) != 5.0 {
		t.Error("call eval")
	}
	if c.String() != "double(x)" {
		t.Errorf("call rendering: %s", c.String())
	}
	if !c.Deterministic || c.Kind() != types.KindFloat {
		t.Error("call metadata")
	}
}

func TestEvalBool(t *testing.T) {
	tup := types.NewTuple(int64(1))
	ok, err := EvalBool(NewCmp(OpGt, NewCol(0, types.KindInt, "x"), NewConst(int64(0))), tup)
	if err != nil || !ok {
		t.Error("EvalBool true case")
	}
	if _, err := EvalBool(NewCol(0, types.KindInt, "x"), tup); err == nil {
		t.Error("non-bool predicate must error")
	}
}

func TestColumns(t *testing.T) {
	e := NewLogic(OpAnd,
		NewCmp(OpGt, NewCol(2, types.KindInt, "c"), NewConst(int64(0))),
		NewCmp(OpEq, NewArith(OpAdd, NewCol(0, types.KindInt, "a"), NewCol(2, types.KindInt, "c")), NewConst(int64(0))))
	cols := Columns(e)
	sort.Ints(cols)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("Columns = %v", cols)
	}
}

// Property: comparison operators are consistent with ValueCompare for ints.
func TestCmpConsistencyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		tup := types.NewTuple(a, b)
		l := NewCol(0, types.KindInt, "a")
		r := NewCol(1, types.KindInt, "b")
		lt, _ := EvalBool(NewCmp(OpLt, l, r), tup)
		ge, _ := EvalBool(NewCmp(OpGe, l, r), tup)
		eq, _ := EvalBool(NewCmp(OpEq, l, r), tup)
		ne, _ := EvalBool(NewCmp(OpNe, l, r), tup)
		return lt != ge && eq != ne && (eq == (a == b)) && (lt == (a < b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer add/mul agree with Go semantics.
func TestArithProperty(t *testing.T) {
	f := func(a, b int32) bool {
		tup := types.NewTuple(int64(a), int64(b))
		l := NewCol(0, types.KindInt, "a")
		r := NewCol(1, types.KindInt, "b")
		add, err1 := NewArith(OpAdd, l, r).Eval(tup)
		mul, err2 := NewArith(OpMul, l, r).Eval(tup)
		return err1 == nil && err2 == nil &&
			add.(int64) == int64(a)+int64(b) && mul.(int64) == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
