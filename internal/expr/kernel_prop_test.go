package expr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rex-data/rex/internal/types"
)

// The kernel property: over randomized expressions and batches, a
// compiled kernel either evaluates a batch to exactly the interpreter's
// per-row results, or declines it — and it must decline whenever the
// interpreter would error on any row. Generated batches cover NULLs,
// boxed-any (mixed-kind) columns, params (bound and unbound), and
// replace rows with old images.

// propSchema: 0 int, 1 float, 2 nullable int, 3 nullable float,
// 4 string, 5 bool, 6 declared-int that may drift to mixed at runtime.
var propSchema = []types.Kind{
	types.KindInt, types.KindFloat, types.KindInt, types.KindFloat,
	types.KindString, types.KindBool, types.KindInt,
}

func genPropValue(r *rand.Rand, col int) types.Value {
	switch col {
	case 0:
		return int64(r.Intn(7) - 3) // small ints: div/mod-by-zero coverage
	case 1:
		return float64(r.Intn(9)-4) / 2
	case 2:
		if r.Intn(4) == 0 {
			return nil
		}
		return int64(r.Intn(5))
	case 3:
		if r.Intn(4) == 0 {
			return nil
		}
		return float64(r.Intn(5))
	case 4:
		return []string{"a", "b", "cc"}[r.Intn(3)]
	case 5:
		return r.Intn(2) == 0
	default:
		if r.Intn(3) == 0 {
			return "drift" // demotes the column to boxed-any
		}
		return int64(r.Intn(4))
	}
}

func genPropTuple(r *rand.Rand) types.Tuple {
	t := make(types.Tuple, len(propSchema))
	for c := range t {
		t[c] = genPropValue(r, c)
	}
	return t
}

func genPropBatch(r *rand.Rand, n int) *types.DeltaBatch {
	ds := make([]types.Delta, n)
	for i := range ds {
		tup := genPropTuple(r)
		switch r.Intn(5) {
		case 0:
			ds[i] = types.Insert(tup)
		case 1:
			ds[i] = types.Update(tup)
		case 2:
			ds[i] = types.Delete(tup)
		default:
			ds[i] = types.Replace(genPropTuple(r), tup)
		}
	}
	b, ok := types.FromDeltas(ds)
	if !ok {
		panic("uniform-arity deltas must batch")
	}
	return b
}

func genPropExpr(r *rand.Rand, depth int, ps *ParamSet) Expr {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return NewConst(int64(r.Intn(5) - 2))
		case 1:
			return NewConst(float64(r.Intn(5)) / 2)
		case 2:
			if r.Intn(8) == 0 {
				return NewConst(nil)
			}
			return NewConst(r.Intn(2) == 0)
		case 3:
			// $3 stays unbound: the kernel must decline to the row
			// path's "parameter not bound" error.
			idx := r.Intn(3)
			k := types.KindInt
			if idx == 1 {
				k = types.KindFloat
			}
			return NewParam(ps, idx, k)
		default:
			c := r.Intn(len(propSchema))
			return NewCol(c, propSchema[c], "c")
		}
	}
	sub := func() Expr { return genPropExpr(r, depth-1-r.Intn(depth), ps) }
	switch r.Intn(4) {
	case 0:
		return NewArith(ArithOp(r.Intn(5)), sub(), sub())
	case 1:
		return NewCmp(CmpOp(r.Intn(6)), sub(), sub())
	case 2:
		return NewLogic(LogicOp(r.Intn(2)), sub(), sub())
	default:
		return NewNot(sub())
	}
}

// samePropValue is strict equality: same dynamic kind, same value, with
// NaN equal to itself (float division can produce it on both paths).
func samePropValue(a, b types.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if x, ok := a.(float64); ok {
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a == b
}

// checkKernelImage compares one image group (new, or old over the
// replace rows) of a batch between the kernel and the interpreter.
func checkKernelImage(t *testing.T, e Expr, kern *Kernel, b *types.DeltaBatch, old bool, rows []int32) (declined bool) {
	t.Helper()
	if len(rows) == 0 {
		return false
	}
	row := func(i int32, scratch types.Tuple) types.Tuple {
		if old {
			return b.OldRow(int(i), scratch)
		}
		return b.Row(int(i), scratch)
	}
	var scratch types.Tuple
	vals := make(map[int32]types.Value, len(rows))
	rowErr := false
	for _, i := range rows {
		scratch = row(i, scratch)
		v, err := e.Eval(scratch)
		if err != nil {
			rowErr = true
			break
		}
		vals[i] = v
	}

	var dst types.Vec
	if !kern.EvalInto(b, old, rows, &dst) {
		return true // declining is always allowed
	}
	if rowErr {
		t.Fatalf("kernel evaluated a batch the interpreter rejects: %s", e)
	}
	for _, i := range rows {
		if got, want := dst.Value(int(i)), vals[i]; !samePropValue(got, want) {
			t.Fatalf("row %d of %s: kernel %#v, interpreter %#v (old=%v)", i, e, got, want, old)
		}
	}

	if e.Kind() == types.KindBool {
		verdicts := make(map[int32]bool, len(rows))
		boolErr := false
		for _, i := range rows {
			scratch = row(i, scratch)
			v, err := EvalBool(e, scratch)
			if err != nil {
				boolErr = true
				break
			}
			verdicts[i] = v
		}
		out := make([]bool, b.Len())
		if !kern.EvalBools(b, old, rows, out) {
			return true
		}
		if boolErr {
			t.Fatalf("EvalBools accepted a batch EvalBool rejects: %s", e)
		}
		for _, i := range rows {
			if out[i] != verdicts[i] {
				t.Fatalf("row %d of %s: kernel verdict %v, EvalBool %v", i, e, out[i], verdicts[i])
			}
		}
	}
	return false
}

func TestKernelMatchesInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ps := &ParamSet{}
	compiled, evaluated := 0, 0
	for iter := 0; iter < 3000; iter++ {
		e := genPropExpr(r, 1+r.Intn(3), ps)
		kern, ok := Compile(e, propSchema)
		if !ok {
			continue
		}
		compiled++
		ps.Bind([]types.Value{int64(r.Intn(5)), float64(r.Intn(5)) / 2})
		b := genPropBatch(r, 1+r.Intn(24))
		rows := kern.AllRows(b.Len())
		declined := checkKernelImage(t, e, kern, b, false, rows)
		var oldRows []int32
		for i := 0; i < b.Len(); i++ {
			if b.Op(i) == types.OpReplace {
				oldRows = append(oldRows, int32(i))
			}
		}
		if b.HasOld() {
			if checkKernelImage(t, e, kern, b, true, oldRows) {
				declined = true
			}
		}
		if !declined {
			evaluated++
		}
	}
	if compiled < 500 {
		t.Fatalf("generator produced only %d compilable expressions", compiled)
	}
	if evaluated < 100 {
		t.Fatalf("only %d batches took the kernel path end to end", evaluated)
	}
}
