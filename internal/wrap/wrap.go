// Package wrap implements §4.4: running compiled Hadoop code inside REX
// through table-valued "wrapper" functions. MapWrap turns a mapred.Mapper
// into a REX table-valued function; ReduceWrap turns a mapred.Reducer into
// a user-defined aggregator. Both convert tuples to and from the textual
// representation Hadoop code consumes — the formatting overhead the wrap
// configuration of §6 measures — and, as §6.3 observes, for recursive
// queries that conversion is paid per delta rather than per job, which is
// why REX-wrap beats HaLoop on iterative workloads.
package wrap

import (
	"fmt"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// textRoundTrip simulates the impedance conversion between REX's typed
// values and the text Hadoop code consumes: render, then re-parse.
func textRoundTrip(v types.Value) types.Value {
	s := types.AsString(v)
	k := types.KindOf(v)
	if k == types.KindNull {
		return v
	}
	parsed, err := types.ValueFromString(s, k)
	if err != nil {
		return s
	}
	return parsed
}

// RegisterMapWrap registers a TVF named name that feeds (k, v) tuples
// through the Hadoop mapper. Input tuples must be (key, value); each
// emitted pair becomes an output delta carrying the input annotation's
// insert semantics.
func RegisterMapWrap(cat *catalog.Catalog, name string, mapper mapred.Mapper) error {
	return cat.RegisterTVF(&catalog.TVFDef{
		Name: name,
		Out:  types.MustSchema("k:String", "v:String"),
		Fn: func(d types.Delta) ([]types.Delta, error) {
			if len(d.Tup) < 2 {
				return nil, fmt.Errorf("wrap: MapWrap %s needs (k, v) tuples, got %v", name, d.Tup)
			}
			k := textRoundTrip(d.Tup[0])
			v := textRoundTrip(d.Tup[1])
			var out []types.Delta
			emit := func(ek, ev types.Value) {
				out = append(out, types.Update(types.NewTuple(textRoundTrip(ek), textRoundTrip(ev))))
			}
			if err := mapper.Map(k, v, emit); err != nil {
				return nil, fmt.Errorf("wrap: mapper %s: %w", name, err)
			}
			return out, nil
		},
	})
}

// reduceState buffers one group's values until the stratum ends — the
// blocking semantics of a Hadoop reducer.
type reduceState struct {
	key types.Value
	vs  []types.Value
}

// reduceWrapAgg adapts a Hadoop reducer to REX's AGGSTATE/AGGRESULT
// handler pair (§3.3). The group-by operator resets UDA state per stratum,
// so each stratum behaves like one reduce invocation per key — matching
// one MapReduce job per recursive step.
type reduceWrapAgg struct {
	name    string
	reducer mapred.Reducer
}

func (a *reduceWrapAgg) Name() string { return a.name }

func (a *reduceWrapAgg) InSchema() *types.Schema {
	return types.MustSchema("k:String", "v:String")
}

func (a *reduceWrapAgg) OutSchema() *types.Schema {
	return types.MustSchema("k:String", "v:String")
}

func (a *reduceWrapAgg) NewState() uda.State { return &reduceState{} }

func (a *reduceWrapAgg) AggState(st uda.State, d types.Delta) (uda.State, []types.Delta, error) {
	s := st.(*reduceState)
	if len(d.Tup) < 2 {
		return st, nil, fmt.Errorf("wrap: ReduceWrap %s needs (k, v) tuples", a.name)
	}
	if s.key == nil {
		s.key = d.Tup[0]
	}
	s.vs = append(s.vs, textRoundTrip(d.Tup[1]))
	return s, nil, nil
}

func (a *reduceWrapAgg) AggResult(st uda.State) ([]types.Delta, error) {
	s := st.(*reduceState)
	if s.key == nil {
		return nil, nil
	}
	var out []types.Delta
	emit := func(k, v types.Value) {
		out = append(out, types.Update(types.NewTuple(textRoundTrip(k), textRoundTrip(v))))
	}
	if err := a.reducer.Reduce(textRoundTrip(s.key), s.vs, emit); err != nil {
		return nil, fmt.Errorf("wrap: reducer %s: %w", a.name, err)
	}
	return out, nil
}

// RegisterReduceWrap registers a UDA named name wrapping the Hadoop
// reducer. Use it as the UDA of a group-by keyed on the pair key.
func RegisterReduceWrap(cat *catalog.Catalog, name string, reducer mapred.Reducer) error {
	return cat.RegisterAgg(&catalog.AggDef{
		Name: name,
		Agg:  &reduceWrapAgg{name: name, reducer: reducer},
	})
}
