package wrap

import (
	"math"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapWrapRoundTrip(t *testing.T) {
	cat := catalog.New()
	mapper := mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
		emit(v, int64(1))
		return nil
	})
	must(t, RegisterMapWrap(cat, "wc_map", mapper))
	tvf, err := cat.TVF("wc_map")
	must(t, err)
	out, err := tvf.Fn(types.Insert(types.NewTuple(int64(1), "hello")))
	must(t, err)
	if len(out) != 1 || out[0].Tup[0] != "hello" {
		t.Fatalf("map output = %v", out)
	}
	// The wrapper must reject malformed tuples.
	if _, err := tvf.Fn(types.Insert(types.NewTuple(int64(1)))); err == nil {
		t.Fatal("single-field tuple must fail")
	}
}

func TestReduceWrapAggregates(t *testing.T) {
	cat := catalog.New()
	reducer := mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		total := int64(0)
		for _, v := range vs {
			n, _ := types.AsInt(v)
			total += n
		}
		emit(k, total)
		return nil
	})
	must(t, RegisterReduceWrap(cat, "wc_red", reducer))
	def, err := cat.Agg("wc_red")
	must(t, err)
	st := def.Agg.NewState()
	for i := 0; i < 3; i++ {
		var inter []types.Delta
		st, inter, err = def.Agg.AggState(st, types.Insert(types.NewTuple("a", int64(2))))
		must(t, err)
		if len(inter) != 0 {
			t.Fatal("reduce must block until stratum end")
		}
	}
	out, err := def.Agg.AggResult(st)
	must(t, err)
	if len(out) != 1 || out[0].Tup[1].(int64) != 6 {
		t.Fatalf("reduce output = %v", out)
	}
	// Empty state yields nothing.
	empty, err := def.Agg.AggResult(def.Agg.NewState())
	must(t, err)
	if len(empty) != 0 {
		t.Fatal("empty group must emit nothing")
	}
}

func TestWrapPageRankMatchesHadoop(t *testing.T) {
	g := datagen.DBPediaGraph(150, 3)
	const iters = 8

	// Native Hadoop run for reference.
	eng := mapred.NewEngine(mapred.Config{Workers: 4})
	href, err := algos.HadoopPageRank(eng, g, iters)
	must(t, err)
	want := algos.PageRankFromMR(href.State)

	// The same compiled job executed inside REX via the wrappers.
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name: "mrstate", Schema: types.MustSchema("k:Integer", "v:String"), PartitionKey: 0,
	}))
	plan, err := IterativeJobPlan(cat, algos.PageRankMRJob(), "mrstate", iters+1)
	must(t, err)
	rex := exec.NewEngine(4, 32, 2, cat)
	must(t, rex.Load("mrstate", 0, StateTuples(algos.PageRankMRState(g))))
	res, err := rex.Run(plan, exec.Options{})
	must(t, err)

	got := map[int64]float64{}
	for _, tup := range res.Tuples {
		id, _ := types.AsInt(tup[0])
		s, _ := tup[1].(string)
		pr := parsePrefix(s)
		got[id] = pr
	}
	if len(got) != g.NumVertices {
		t.Fatalf("wrap produced %d states, want %d", len(got), g.NumVertices)
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-9 {
			t.Fatalf("wrap pr[%d] = %v, hadoop %v", v, got[v], w)
		}
	}
}

func parsePrefix(s string) float64 {
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			v, _ := types.AsFloat(s[:i])
			return v
		}
	}
	v, _ := types.AsFloat(s)
	return v
}
