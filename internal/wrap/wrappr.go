package wrap

import (
	"fmt"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// IterativeJobPlan builds a REX plan that executes a Hadoop job chain
// iteratively (§4.4): the fixpoint re-feeds the full MapReduce state each
// stratum (Hadoop semantics carry no deltas), MapWrap fans it through the
// mapper, a rehash shuffles by key, and ReduceWrap reduces per key. The
// state table must be loaded under stateTable with schema (k, v) keyed on
// column 0.
//
// The returned plan runs exactly iters strata — the fixed-iteration
// driver loop a Hadoop deployment would run externally.
func IterativeJobPlan(cat *catalog.Catalog, job *mapred.Job, stateTable string, iters int) (*exec.PlanSpec, error) {
	mapName := "mapwrap_" + job.Name
	redName := "reducewrap_" + job.Name
	whileName := "wrapwhile_" + job.Name
	if err := RegisterMapWrap(cat, mapName, job.Mapper); err != nil {
		return nil, err
	}
	if err := RegisterReduceWrap(cat, redName, job.Reducer); err != nil {
		return nil, err
	}
	// The while handler stores the latest (k, v) state record per key.
	err := cat.RegisterWhileHandler(&uda.FuncWhileHandler{
		HName: whileName,
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			if len(d.Tup) < 2 {
				return nil, fmt.Errorf("wrap: state tuples must be (k, v)")
			}
			if rel.Len() == 0 {
				rel.Add(d.Tup.Clone())
				return []types.Delta{d}, nil
			}
			if rel.Tuples[0].Equal(d.Tup) {
				return nil, nil
			}
			rel.ReplaceFirst(rel.Tuples[0], d.Tup.Clone())
			return []types.Delta{d}, nil
		},
	})
	if err != nil {
		return nil, err
	}

	p := exec.NewPlanSpec()
	p.MaxStrata = iters
	seed := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: stateTable})
	fix := p.Add(&exec.OpSpec{
		Kind: exec.OpFixpoint, FixpointKey: []int{0},
		WhileHandlerName: whileName, NoDelta: true,
	})
	mw := p.Add(&exec.OpSpec{Kind: exec.OpTVF, Inputs: []int{fix.ID}, TVFName: mapName})
	rehash := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{mw.ID}, HashKey: []int{0}})
	rw := p.Add(&exec.OpSpec{
		Kind: exec.OpGroupBy, Inputs: []int{rehash.ID},
		GroupKey: []int{0}, UDAName: redName,
	})
	fix.Inputs = []int{seed.ID, rw.ID}
	fix.RecursiveOut = mw.ID
	p.RootID = fix.ID
	return p, nil
}

// StateTuples converts MapReduce KV state into REX tuples for loading.
func StateTuples(state []mapred.KV) []types.Tuple {
	out := make([]types.Tuple, len(state))
	for i, kv := range state {
		out[i] = types.NewTuple(kv.K, kv.V)
	}
	return out
}
