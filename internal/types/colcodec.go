// Columnar wire codec for DeltaBatch. The encoded layout IS the in-memory
// layout: a row count, the Op vector as raw bytes, then each column as a
// repr byte, optional validity bitmap, and a length-prefixed payload.
// DecodeDeltaBatch therefore only parses the O(columns) header and aliases
// the ops/bitmap/payload spans out of the input buffer; column values
// materialize lazily, on first access, via Column.mat.
package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// colNullsFlag marks a column header whose validity bitmap follows.
const colNullsFlag byte = 0x80

// AppendDeltaBatch appends the columnar encoding of b to buf. Columns
// still lazy (decoded but never touched) are re-emitted from their raw
// payload spans without materializing.
func AppendDeltaBatch(buf []byte, b *DeltaBatch) []byte {
	buf = binary.AppendUvarint(buf, uint64(b.n))
	buf = binary.AppendUvarint(buf, uint64(len(b.cols)))
	buf = binary.AppendUvarint(buf, uint64(len(b.old)))
	buf = append(buf, b.ops[:b.n]...)
	for i := range b.cols {
		buf = appendColumn(buf, &b.cols[i])
	}
	for i := range b.old {
		buf = appendColumn(buf, &b.old[i])
	}
	return buf
}

func appendColumn(buf []byte, c *Column) []byte {
	// Lazy column: its encoded payload is already in hand.
	if c.raw != nil {
		head := c.rawRepr
		if len(c.nulls) > 0 {
			head |= colNullsFlag
		}
		buf = append(buf, head)
		if len(c.nulls) > 0 {
			buf = append(buf, c.nulls[:(c.n+7)/8]...)
		}
		buf = append(buf, 0, 0, 0, 0)
		putUvarint4(buf[len(buf)-4:], uint64(len(c.raw)))
		return append(buf, c.raw...)
	}
	repr := c.repr()
	head := repr
	hasNulls := false
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			hasNulls = true
			break
		}
	}
	if hasNulls {
		head |= colNullsFlag
	}
	buf = append(buf, head)
	if hasNulls {
		nb := (c.n + 7) / 8
		start := len(buf)
		buf = append(buf, make([]byte, nb)...)
		for i := 0; i < c.n; i++ {
			if c.IsNull(i) {
				buf[start+i>>3] |= 1 << (i & 7)
			}
		}
	}
	// Reserve a 4-byte-uvarint slot for the payload length, then encode in
	// place and backpatch — avoids a second buffer.
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	start := len(buf)
	switch repr {
	case colNulls:
		// no payload
	case colInts:
		for i := 0; i < c.n; i++ {
			buf = binary.AppendVarint(buf, c.ints[i])
		}
	case colFloats:
		for i := 0; i < c.n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.floats[i]))
		}
	case colStrs:
		for i := 0; i < c.n; i++ {
			s := c.strs[i]
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	case colBools:
		nb := (c.n + 7) / 8
		at := len(buf)
		buf = append(buf, make([]byte, nb)...)
		for i := 0; i < c.n; i++ {
			if c.bools[i] {
				buf[at+i>>3] |= 1 << (i & 7)
			}
		}
	case colAnys:
		for i := 0; i < c.n; i++ {
			if c.IsNull(i) {
				buf = append(buf, byte(KindNull))
				continue
			}
			buf = AppendValue(buf, c.anys[i])
		}
	}
	putUvarint4(buf[lenAt:lenAt+4], uint64(len(buf)-start))
	return buf
}

// putUvarint4 writes v as a fixed-width 4-byte uvarint (continuation bits
// padded), so the slot can be reserved before the length is known.
func putUvarint4(dst []byte, v uint64) {
	if v >= 1<<28 {
		panic("types: column payload exceeds 4-byte uvarint")
	}
	dst[0] = byte(v) | 0x80
	dst[1] = byte(v>>7) | 0x80
	dst[2] = byte(v>>14) | 0x80
	dst[3] = byte(v >> 21)
}

// DecodeDeltaBatch decodes a batch encoded by AppendDeltaBatch, aliasing
// the Op vector, validity bitmaps, and column payloads out of buf. The
// returned batch is borrowed: it must not outlive buf's owner past the
// usual message lifetime, must not be pooled, and materializing accessors
// (Delta, Deltas, Row) always copy out of it.
func DecodeDeltaBatch(buf []byte) (*DeltaBatch, int, error) {
	n64, n := binary.Uvarint(buf)
	if n <= 0 || n64 > uint64(len(buf)-n) {
		return nil, 0, fmt.Errorf("types: decode delta batch: bad row count")
	}
	off := n
	ncols, n := binary.Uvarint(buf[off:])
	if n <= 0 || ncols > uint64(len(buf)-off-n) {
		return nil, 0, fmt.Errorf("types: decode delta batch: bad column count")
	}
	off += n
	nold, n := binary.Uvarint(buf[off:])
	if n <= 0 || nold > uint64(len(buf)-off-n) {
		return nil, 0, fmt.Errorf("types: decode delta batch: bad old-column count")
	}
	off += n
	rows := int(n64)
	if rows > len(buf)-off {
		return nil, 0, fmt.Errorf("types: decode delta batch: truncated op vector")
	}
	b := &DeltaBatch{n: rows, borrowed: true}
	b.ops = buf[off : off+rows : off+rows]
	off += rows
	decodeGroup := func(k int) ([]Column, error) {
		if k == 0 {
			return nil, nil
		}
		cols := make([]Column, k)
		for j := 0; j < k; j++ {
			used, err := decodeColumn(&cols[j], buf[off:], rows)
			if err != nil {
				return nil, fmt.Errorf("types: decode delta batch: column %d: %w", j, err)
			}
			off += used
		}
		return cols, nil
	}
	var err error
	if b.cols, err = decodeGroup(int(ncols)); err != nil {
		return nil, 0, err
	}
	if b.old, err = decodeGroup(int(nold)); err != nil {
		return nil, 0, err
	}
	return b, off, nil
}

func decodeColumn(c *Column, buf []byte, rows int) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("truncated header")
	}
	head := buf[0]
	repr := head &^ colNullsFlag
	if repr > colAnys {
		return 0, fmt.Errorf("unknown repr %d", repr)
	}
	off := 1
	if head&colNullsFlag != 0 {
		nb := (rows + 7) / 8
		if nb > len(buf)-off {
			return 0, fmt.Errorf("truncated validity bitmap")
		}
		c.nulls = buf[off : off+nb : off+nb]
		off += nb
	}
	pl, n := binary.Uvarint(buf[off:])
	if n <= 0 || pl > uint64(len(buf)-off-n) {
		return 0, fmt.Errorf("bad payload length")
	}
	off += n
	c.n = rows
	c.rawRepr = repr
	c.raw = buf[off : off+int(pl) : off+int(pl)]
	off += int(pl)
	return off, nil
}

// mat materializes a lazy column: decodes raw into the typed vector and
// drops the alias. Materialized values (including strings, which copy
// out of the payload) own their storage.
func (c *Column) mat() {
	if c.raw == nil {
		return
	}
	raw := c.raw
	c.raw = nil
	switch c.rawRepr {
	case colNulls:
		c.kind = KindNull
	case colInts:
		c.kind = KindInt
		c.ints = growZero(c.ints, c.n)
		off := 0
		for i := 0; i < c.n; i++ {
			v, n := binary.Varint(raw[off:])
			if n <= 0 {
				panic(fmt.Sprintf("types: column payload: bad varint at row %d", i))
			}
			c.ints[i] = v
			off += n
		}
	case colFloats:
		c.kind = KindFloat
		c.floats = growZero(c.floats, c.n)
		if len(raw) < 8*c.n {
			panic("types: column payload: short float vector")
		}
		for i := 0; i < c.n; i++ {
			c.floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	case colStrs:
		c.kind = KindString
		c.strs = growZero(c.strs, c.n)
		off := 0
		for i := 0; i < c.n; i++ {
			l, n := binary.Uvarint(raw[off:])
			if n <= 0 || l > uint64(len(raw)-off-n) {
				panic(fmt.Sprintf("types: column payload: bad string at row %d", i))
			}
			off += n
			c.strs[i] = string(raw[off : off+int(l)])
			off += int(l)
		}
	case colBools:
		c.kind = KindBool
		c.bools = growZero(c.bools, c.n)
		if len(raw) < (c.n+7)/8 {
			panic("types: column payload: short bool vector")
		}
		for i := 0; i < c.n; i++ {
			c.bools[i] = raw[i>>3]&(1<<(i&7)) != 0
		}
	case colAnys:
		c.anys = make([]Value, c.n)
		off := 0
		for i := 0; i < c.n; i++ {
			v, used, err := DecodeValue(raw[off:])
			if err != nil {
				panic(fmt.Sprintf("types: column payload: row %d: %v", i, err))
			}
			c.anys[i] = v
			off += used
		}
	}
}
