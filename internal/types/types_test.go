package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindOfAndParse(t *testing.T) {
	cases := []struct {
		v    Value
		want Kind
	}{
		{nil, KindNull},
		{int64(3), KindInt},
		{3.5, KindFloat},
		{"x", KindString},
		{true, KindBool},
	}
	for _, c := range cases {
		if got := KindOf(c.v); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	for _, name := range []string{"Integer", "Double", "String", "Boolean"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
		}
	}
	if _, err := ParseKind("Blob"); err == nil {
		t.Error("ParseKind(Blob) should fail")
	}
}

func TestValueCoercions(t *testing.T) {
	if v, ok := AsInt(3.9); !ok || v != 3 {
		t.Errorf("AsInt(3.9) = %d, %v", v, ok)
	}
	if v, ok := AsFloat(int64(4)); !ok || v != 4.0 {
		t.Errorf("AsFloat(4) = %f, %v", v, ok)
	}
	if v, ok := AsBool(int64(2)); !ok || !v {
		t.Errorf("AsBool(2) = %v, %v", v, ok)
	}
	if AsString(1.5) != "1.5" || AsString(int64(-7)) != "-7" || AsString(nil) != "" {
		t.Error("AsString rendering wrong")
	}
	v, err := ValueFromString("42", KindInt)
	if err != nil || v.(int64) != 42 {
		t.Errorf("ValueFromString int: %v %v", v, err)
	}
	if _, err := ValueFromString("xyz", KindFloat); err == nil {
		t.Error("ValueFromString should reject bad float")
	}
}

func TestValueEqAndCompare(t *testing.T) {
	if !ValueEq(int64(1), 1.0) {
		t.Error("1 == 1.0 must hold across kinds")
	}
	if ValueEq(int64(1), "1") {
		t.Error("int and string must not be equal")
	}
	if ValueCompare(int64(1), 2.0) != -1 || ValueCompare("b", "a") != 1 {
		t.Error("ValueCompare ordering wrong")
	}
	if ValueCompare(nil, nil) != 0 || ValueCompare(nil, int64(0)) != -1 {
		t.Error("nil ordering wrong")
	}
	if ValueCompare(true, false) != 1 {
		t.Error("bool ordering wrong")
	}
}

func TestHashValueIntegralFloatFoldsToInt(t *testing.T) {
	if HashValue(int64(7)) != HashValue(7.0) {
		t.Error("hash(7) must equal hash(7.0) for consistent rehash routing")
	}
	if HashValue(int64(7)) == HashValue(int64(8)) {
		t.Error("distinct ints should hash differently")
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(int64(1), "a", 2.5)
	cl := tp.Clone()
	cl[0] = int64(9)
	if tp[0].(int64) != 1 {
		t.Error("Clone must not alias")
	}
	if !tp.Equal(NewTuple(int64(1), "a", 2.5)) {
		t.Error("Equal failed")
	}
	if tp.Equal(NewTuple(int64(1), "a")) {
		t.Error("Equal must check length")
	}
	if got := tp.Project([]int{2, 0}); !got.Equal(NewTuple(2.5, int64(1))) {
		t.Errorf("Project = %v", got)
	}
	if tp.Key([]int{0}) != int64(1) {
		t.Error("single-column Key should be the raw value")
	}
	if tp.Key([]int{0, 1}) != "1\x1fa" {
		t.Errorf("composite Key = %q", tp.Key([]int{0, 1}))
	}
	// Integral float keys fold to int so groupings match across kinds.
	if NewTuple(3.0).Key([]int{0}) != int64(3) {
		t.Error("integral float key must normalize to int64")
	}
}

func TestSchemaResolution(t *testing.T) {
	s := MustSchema("srcId:Integer", "pr:Double")
	if s.ColIndex("pr") != 1 || s.ColIndex("srcId") != 0 {
		t.Error("ColIndex basic failed")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column must be -1")
	}
	q := s.Rename("graph")
	if q.ColIndex("graph.srcId") != 0 {
		t.Error("qualified lookup failed")
	}
	if q.ColIndex("srcId") != 0 {
		t.Error("unqualified lookup against qualified schema failed")
	}
	if s.ColIndex("graph.pr") != 1 {
		t.Error("qualified name against unqualified schema should fall back to suffix")
	}
	cat := s.Concat(q)
	if cat.Len() != 4 {
		t.Errorf("Concat len = %d", cat.Len())
	}
	if cat.String() == "" || len(cat.Names()) != 4 {
		t.Error("schema rendering")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on bad spec")
		}
	}()
	MustSchema("noType")
}

func TestDeltaConstructors(t *testing.T) {
	tp := NewTuple(int64(1))
	if d := Insert(tp); d.Op != OpInsert {
		t.Error("Insert op")
	}
	if d := Delete(tp); d.Op != OpDelete {
		t.Error("Delete op")
	}
	r := Replace(tp, NewTuple(int64(2)))
	if r.Op != OpReplace || r.Old[0].(int64) != 1 || r.Tup[0].(int64) != 2 {
		t.Error("Replace wiring")
	}
	if d := Update(tp); d.Op != OpUpdate {
		t.Error("Update op")
	}
	ds := Inserts(tp, NewTuple(int64(2)))
	if len(ds) != 2 || ds[1].Tup[0].(int64) != 2 {
		t.Error("Inserts helper")
	}
	if Replace(tp, tp).String() == "" || Insert(tp).String() == "" {
		t.Error("String rendering")
	}
	if d := Insert(tp).WithTuple(NewTuple(int64(5))); d.Tup[0].(int64) != 5 || d.Op != OpInsert {
		t.Error("WithTuple must preserve annotation")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ds := []Delta{
		Insert(NewTuple(int64(-300), 2.75, "héllo", true, nil)),
		Delete(NewTuple(int64(0))),
		Replace(NewTuple("old"), NewTuple("new")),
		Update(NewTuple(int64(1), -0.01)),
	}
	buf := EncodeBatch(ds)
	if len(buf) != EncodedSize(ds) {
		t.Fatalf("EncodedSize=%d, actual=%d", EncodedSize(ds), len(buf))
	}
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range ds {
		if got[i].Op != ds[i].Op || !got[i].Tup.Equal(ds[i].Tup) {
			t.Errorf("delta %d mismatch: %v vs %v", i, got[i], ds[i])
		}
	}
	if !got[2].Old.Equal(ds[2].Old) {
		t.Error("replace old tuple lost")
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty value decode should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float should fail")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := DecodeBatch([]byte{}); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		buf := AppendValue(nil, f)
		v, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) || v.(float64) != f {
			t.Errorf("round trip %v failed: %v %v", f, v, err)
		}
	}
	buf := AppendValue(nil, math.NaN())
	v, _, err := DecodeValue(buf)
	if err != nil || !math.IsNaN(v.(float64)) {
		t.Error("NaN round trip failed")
	}
}

// Property: any batch of random tuples round-trips through the codec and
// EncodedSize always matches the encoded length.
func TestCodecRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) Delta {
		n := r.Intn(5)
		tup := make(Tuple, n)
		for i := range tup {
			switch r.Intn(5) {
			case 0:
				tup[i] = r.Int63() - (1 << 62)
			case 1:
				tup[i] = r.NormFloat64() * 1e6
			case 2:
				tup[i] = randString(r)
			case 3:
				tup[i] = r.Intn(2) == 0
			default:
				tup[i] = nil
			}
		}
		switch r.Intn(4) {
		case 0:
			return Insert(tup)
		case 1:
			return Delete(tup)
		case 2:
			return Update(tup)
		default:
			return Replace(tup.Clone(), tup)
		}
	}
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ds := make([]Delta, int(count)%32)
		if len(ds) == 0 {
			ds = []Delta{Insert(NewTuple())}
		}
		for i := range ds {
			ds[i] = gen(r)
		}
		buf := EncodeBatch(ds)
		if len(buf) != EncodedSize(ds) {
			return false
		}
		got, err := DecodeBatch(buf)
		if err != nil || len(got) != len(ds) {
			return false
		}
		for i := range ds {
			if got[i].Op != ds[i].Op || !reflect.DeepEqual(got[i].Tup, ds[i].Tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// Property: HashKey is invariant under changes to non-key columns.
func TestHashKeyProperty(t *testing.T) {
	f := func(a, b int64, s string) bool {
		t1 := NewTuple(a, s, b)
		t2 := NewTuple(a, s+"x", b+1)
		return t1.HashKey([]int{0}) == t2.HashKey([]int{0})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
