//go:build !pooldebug

package types

// poisonBatch is a no-op in normal builds; the pooldebug build tag swaps
// in a version that scribbles on released batches so use-after-release
// bugs surface as loudly wrong values instead of silently stale ones.
func poisonBatch(*DeltaBatch) {}
