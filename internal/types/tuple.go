package types

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of scalar values. Tuples are treated as
// immutable once emitted by an operator; operators copy before mutating.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Clone returns a copy of the tuple (shallow — values are scalars).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports value equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !ValueEq(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Hash combines the hashes of all fields.
func (t Tuple) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range t {
		h = h*1099511628211 ^ HashValue(v)
	}
	return h
}

// HashKey hashes the projection of t onto the given column indexes; this is
// the hash rehash uses to route tuples to partitions. It is defined as the
// hash of the normalized Key value so that rehash routing, base-table
// placement (which hashes the single partition-key value), and checkpoint
// replica placement all agree on where a key lives.
func (t Tuple) HashKey(cols []int) uint64 {
	return HashValue(t.Key(cols))
}

// Project returns a new tuple with the given columns of t, in order.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Key renders the projection of t onto cols as a comparable map key.
// Scalars are comparable in Go, so single columns use the raw value and
// multi-column keys use a rendered composite.
func (t Tuple) Key(cols []int) Value {
	if len(cols) == 1 {
		return normKey(t[cols[0]])
	}
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(AsString(t[c]))
	}
	return b.String()
}

// normKey folds integral floats onto int64 so keys compare consistently.
func normKey(v Value) Value {
	if f, ok := v.(float64); ok {
		if float64(int64(f)) == f {
			return int64(f)
		}
	}
	return v
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = AsString(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Field is one column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the shape of a tuple stream.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from alternating name/kind pairs.
func NewSchema(fields ...Field) *Schema { return &Schema{Fields: fields} }

// MustSchema builds a schema from "name:Type" specs, panicking on bad specs.
// It mirrors the paper's inTypes/outTypes declarations ("nbr:Integer").
func MustSchema(specs ...string) *Schema {
	s := &Schema{}
	for _, spec := range specs {
		name, typ, ok := strings.Cut(spec, ":")
		if !ok {
			panic(fmt.Sprintf("types: bad field spec %q (want name:Type)", spec))
		}
		k, err := ParseKind(typ)
		if err != nil {
			panic(err)
		}
		s.Fields = append(s.Fields, Field{Name: name, Kind: k})
	}
	return s
}

// Len reports the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// ColIndex resolves a (possibly qualified) column name to its index, or -1.
// Qualified references ("graph.srcId") match fields named either exactly or
// by their unqualified suffix.
func (s *Schema) ColIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return s.ColIndex(name[i+1:])
	}
	// Also allow matching "x" against a qualified field "t.x".
	for i, f := range s.Fields {
		if j := strings.LastIndexByte(f.Name, '.'); j >= 0 && f.Name[j+1:] == name {
			return i
		}
	}
	return -1
}

// Concat returns the concatenation of two schemas (used by join).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Fields: make([]Field, 0, len(s.Fields)+len(o.Fields))}
	out.Fields = append(out.Fields, s.Fields...)
	out.Fields = append(out.Fields, o.Fields...)
	return out
}

// Rename returns a copy with every field qualified by alias ("alias.name").
func (s *Schema) Rename(alias string) *Schema {
	out := &Schema{Fields: make([]Field, len(s.Fields))}
	for i, f := range s.Fields {
		base := f.Name
		if j := strings.LastIndexByte(base, '.'); j >= 0 {
			base = base[j+1:]
		}
		out.Fields[i] = Field{Name: alias + "." + base, Kind: f.Kind}
	}
	return out
}

// Names returns the column names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// String renders the schema for EXPLAIN output.
func (s *Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Name + ":" + f.Kind.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
