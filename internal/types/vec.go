package types

import "strings"

// Vec is one kernel-computed column vector: a typed data slice selected
// by K plus a validity bitmap, indexed by absolute batch row number. It
// is the currency between compiled expression kernels (internal/expr)
// and columnar batch assembly — kernels fill Vecs with typed loops, and
// DeltaBatch.AppendVecRow copies rows back out without boxing.
//
// A Vec either owns its storage (grown by Reset) or borrows a column's
// vectors in place (BorrowColumn); borrowed slices are read-only and are
// dropped, never reused as output storage, on the next Reset.
type Vec struct {
	K      Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool

	// nulls is the validity bitmap (bit set = NULL), sized to cover n
	// rows on owned Vecs; on borrowed Vecs it aliases the column's lazy
	// bitmap, so bits beyond its length read as valid.
	nulls    []byte
	borrowed bool
}

// Reset re-types the vector to kind k with owned storage covering n rows
// (all valid). Kernels write only the rows they evaluate; unevaluated
// slots hold stale data the consumer never reads.
func (v *Vec) Reset(k Kind, n int) {
	if v.borrowed {
		v.Ints, v.Floats, v.Strs, v.Bools, v.nulls = nil, nil, nil, nil, nil
		v.borrowed = false
	}
	v.K = k
	v.Ints, v.Floats, v.Strs, v.Bools = v.Ints[:0], v.Floats[:0], v.Strs[:0], v.Bools[:0]
	switch k {
	case KindInt:
		v.Ints = growZero(v.Ints, n)
	case KindFloat:
		v.Floats = growZero(v.Floats, n)
	case KindString:
		v.Strs = growZero(v.Strs, n)
	case KindBool:
		v.Bools = growZero(v.Bools, n)
	}
	nb := (n + 7) / 8
	if cap(v.nulls) < nb {
		v.nulls = make([]byte, nb)
	} else {
		v.nulls = v.nulls[:nb]
		for i := range v.nulls {
			v.nulls[i] = 0
		}
	}
}

// BorrowColumn aliases v onto a typed column's storage without copying:
// the data vector and validity bitmap are shared, read-only. It reports
// false when the column has no typed vector to borrow (mixed-kind or
// empty/all-null), leaving v unchanged.
func (v *Vec) BorrowColumn(c *Column) bool {
	c.mat()
	if c.anys != nil || c.kind == KindNull {
		return false
	}
	v.K = c.kind
	v.Ints, v.Floats, v.Strs, v.Bools = nil, nil, nil, nil
	switch c.kind {
	case KindInt:
		v.Ints = c.ints
	case KindFloat:
		v.Floats = c.floats
	case KindString:
		v.Strs = c.strs
	case KindBool:
		v.Bools = c.bools
	}
	v.nulls = c.nulls
	v.borrowed = true
	return true
}

// Null reports whether row i is NULL.
func (v *Vec) Null(i int) bool {
	if i>>3 >= len(v.nulls) {
		return false
	}
	return v.nulls[i>>3]&(1<<(i&7)) != 0
}

// SetNull marks row i NULL, growing the bitmap if needed.
func (v *Vec) SetNull(i int) {
	for i>>3 >= len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[i>>3] |= 1 << (i & 7)
}

// AnyNull reports whether the bitmap has any NULL bit set — the cheap
// pre-check before per-row validity scans.
func (v *Vec) AnyNull() bool {
	for _, b := range v.nulls {
		if b != 0 {
			return true
		}
	}
	return false
}

// Value returns row i as a boxed scalar (nil for NULL rows) — the slow
// generic read used by mixed-kind comparisons and row assembly fallbacks.
func (v *Vec) Value(i int) Value {
	if v.Null(i) {
		return nil
	}
	switch v.K {
	case KindInt:
		return v.Ints[i]
	case KindFloat:
		return v.Floats[i]
	case KindString:
		return v.Strs[i]
	case KindBool:
		return v.Bools[i]
	default:
		return nil
	}
}

// CopyRow copies row i of src into row i of v. The caller must have
// Reset v to src's kind and row capacity first.
func (v *Vec) CopyRow(src *Vec, i int) {
	if src.Null(i) {
		v.SetNull(i)
		return
	}
	switch src.K {
	case KindInt:
		v.Ints[i] = src.Ints[i]
	case KindFloat:
		v.Floats[i] = src.Floats[i]
	case KindString:
		v.Strs[i] = src.Strs[i]
	case KindBool:
		v.Bools[i] = src.Bools[i]
	}
}

// VecRowEq reports whether row i of two parallel Vec groups is equal
// under Tuple.Equal semantics: per-column ValueEq, with typed fast paths
// when the kinds agree.
func VecRowEq(a, b []*Vec, i int) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if !vecValueEq(a[j], b[j], i) {
			return false
		}
	}
	return true
}

func vecValueEq(x, y *Vec, i int) bool {
	xn, yn := x.Null(i), y.Null(i)
	if xn || yn {
		return xn && yn // ValueEq: nil == nil, one-sided nil differs
	}
	if x.K == y.K {
		switch x.K {
		case KindInt:
			return x.Ints[i] == y.Ints[i]
		case KindFloat:
			return x.Floats[i] == y.Floats[i]
		case KindString:
			return x.Strs[i] == y.Strs[i]
		case KindBool:
			return x.Bools[i] == y.Bools[i]
		}
	}
	return ValueEq(x.Value(i), y.Value(i))
}

// Mixed reports whether the column is in the boxed mixed-kind
// representation — the one representation expression kernels cannot read
// as a typed vector (they fall back to the row interpreter).
func (c *Column) Mixed() bool {
	c.mat()
	return c.anys != nil
}

// HasNulls reports whether any row of the column is NULL.
func (c *Column) HasNulls() bool {
	c.mat()
	for _, b := range c.nulls {
		if b != 0 {
			return true
		}
	}
	return false
}

// NumOldCols reports the old-image group's arity (0 when the batch has
// no replace rows).
func (b *DeltaBatch) NumOldCols() int { return len(b.old) }

// OldCol returns column j of the old-image group.
func (b *DeltaBatch) OldCol(j int) *Column { return &b.old[j] }

// appendVecAt appends row i of a kernel result vector, preserving the
// typed representation when the column can hold it.
func (c *Column) appendVecAt(v *Vec, i int) {
	c.mat()
	if v.Null(i) {
		c.setNull(c.n)
		c.appendZero()
		return
	}
	if c.anys == nil && c.adopt(v.K) {
		switch v.K {
		case KindInt:
			c.ints = append(c.ints, v.Ints[i])
			c.n++
			return
		case KindFloat:
			c.floats = append(c.floats, v.Floats[i])
			c.n++
			return
		case KindString:
			c.strs = append(c.strs, v.Strs[i])
			c.n++
			return
		case KindBool:
			c.bools = append(c.bools, v.Bools[i])
			c.n++
			return
		}
	}
	c.AppendValue(v.Value(i))
}

// AppendVecRow appends row i assembled from kernel result vectors: op
// plus one value per cols entry, and — for OpReplace rows — one old
// image value per oldCols entry. Like Append, arity is uniform across a
// batch and a mismatch panics.
func (b *DeltaBatch) AppendVecRow(op Op, cols []*Vec, oldCols []*Vec, i int) {
	if b.n == 0 {
		b.cols = ensureCols(b.cols, len(cols))
	} else if len(cols) != len(b.cols) {
		panic("types: DeltaBatch.AppendVecRow: arity mismatch")
	}
	b.ops = append(b.ops, byte(op))
	for j := range b.cols {
		b.cols[j].appendVecAt(cols[j], i)
	}
	if op == OpReplace && oldCols != nil {
		if b.old == nil {
			b.old = ensureCols(nil, len(oldCols))
			padCols(b.old, b.n)
		} else if len(oldCols) != len(b.old) {
			panic("types: DeltaBatch.AppendVecRow: old arity mismatch")
		}
		for j := range b.old {
			b.old[j].appendVecAt(oldCols[j], i)
		}
	} else if b.old != nil {
		padCols(b.old, b.n+1)
	}
	b.n++
}

// KeyAt renders Tuple.Key(key) for row i of the new-image group without
// materializing the row: single-column keys box one value straight off
// the typed vector (with normKey's integral-float fold), multi-column
// keys render the composite string column-wise. This is the group-by key
// kernel — the map key it produces is identical to the row path's.
func (b *DeltaBatch) KeyAt(i int, key []int) Value {
	return keyAtCols(b.cols, i, key)
}

// OldKeyAt is KeyAt over the old-image group of a replace row.
func (b *DeltaBatch) OldKeyAt(i int, key []int) Value {
	return keyAtCols(b.old, i, key)
}

func keyAtCols(cols []Column, i int, key []int) Value {
	if len(key) == 1 {
		c := &cols[key[0]]
		c.mat()
		if c.anys == nil && c.kind == KindFloat && !c.IsNull(i) {
			if f := c.floats[i]; float64(int64(f)) == f {
				return int64(f)
			}
		}
		return normKey(c.Value(i))
	}
	var sb strings.Builder
	for j, k := range key {
		if j > 0 {
			sb.WriteByte(0x1f)
		}
		sb.WriteString(AsString(cols[k].Value(i)))
	}
	return sb.String()
}
