package types

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randValue draws one scalar of a random kind, including NULL.
func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return r.Int63() - r.Int63()
	case 2:
		if r.Intn(3) == 0 {
			return float64(r.Intn(100)) // integral float: exercises the hash fold
		}
		return r.NormFloat64()
	case 3:
		return fmt.Sprintf("s%d", r.Intn(1000))
	case 4:
		return r.Intn(2) == 0
	default:
		return int64(r.Intn(50)) // small ints: repeated values
	}
}

// randBatch builds a random schema-uniform row batch: mostly columns of a
// single kind (the typed-vector path), some deliberately mixed (the anys
// fallback), with NULLs sprinkled in and replace rows carrying old images.
func randBatch(r *rand.Rand, rows, arity int) []Delta {
	kinds := make([]int, arity)
	for j := range kinds {
		kinds[j] = r.Intn(7) // 0..5 = homogeneous kinds, 6 = mixed
	}
	tuple := func() Tuple {
		t := make(Tuple, arity)
		for j := range t {
			if r.Intn(10) == 0 {
				continue // NULL
			}
			switch kinds[j] {
			case 0:
				t[j] = r.Int63()
			case 1:
				t[j] = r.NormFloat64()
			case 2:
				t[j] = float64(r.Intn(100))
			case 3:
				t[j] = fmt.Sprintf("v%d", r.Intn(100))
			case 4:
				t[j] = r.Intn(2) == 0
			case 5:
				t[j] = int64(r.Intn(10))
			default:
				t[j] = randValue(r)
			}
		}
		return t
	}
	out := make([]Delta, rows)
	for i := range out {
		switch r.Intn(5) {
		case 0:
			out[i] = Delete(tuple())
		case 1:
			out[i] = Replace(tuple(), tuple())
		case 2:
			out[i] = Update(tuple())
		default:
			out[i] = Insert(tuple())
		}
	}
	return out
}

func deltasEqual(a, b []Delta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || !a[i].Tup.Equal(b[i].Tup) || !a[i].Old.Equal(b[i].Old) {
			return false
		}
	}
	return true
}

// TestBatchRowRoundTrip: columnar ↔ row conversion is exact for every
// value kind, NULLs included, with replace old/new groups preserved.
func TestBatchRowRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := randBatch(r, r.Intn(40), 1+r.Intn(5))
		b, ok := FromDeltas(rows)
		if !ok {
			t.Fatalf("trial %d: uniform batch rejected", trial)
		}
		if got := b.Deltas(); !deltasEqual(got, rows) {
			t.Fatalf("trial %d: round trip mismatch:\n got %v\nwant %v", trial, got, rows)
		}
	}
}

// TestBatchWireRoundTrip: encode → decode (lazy) → materialize equals the
// original, and re-encoding a still-lazy decoded batch is byte-identical.
func TestBatchWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		rows := randBatch(r, r.Intn(40), 1+r.Intn(5))
		b, _ := FromDeltas(rows)
		enc := AppendDeltaBatch(nil, b)
		dec, used, err := DecodeDeltaBatch(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if used != len(enc) {
			t.Fatalf("trial %d: decode consumed %d of %d bytes", trial, used, len(enc))
		}
		// Re-encode before touching any column: the lazy raw spans must
		// reproduce the original bytes.
		re := AppendDeltaBatch(nil, dec)
		if !reflect.DeepEqual(re, enc) {
			t.Fatalf("trial %d: lazy re-encode differs", trial)
		}
		if got := dec.Deltas(); !deltasEqual(got, rows) {
			t.Fatalf("trial %d: wire round trip mismatch:\n got %v\nwant %v", trial, got, rows)
		}
	}
}

// TestBatchLazyVsEagerIdentical: reading a decoded batch lazily (column
// by column, via accessors) yields exactly what eager materialization
// does — the satellite's zero-copy vs materializing decode equivalence.
func TestBatchLazyVsEagerIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		rows := randBatch(r, 1+r.Intn(30), 1+r.Intn(4))
		b, _ := FromDeltas(rows)
		enc := AppendDeltaBatch(nil, b)

		lazy, _, err := DecodeDeltaBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		eager, _, err := DecodeDeltaBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		eagerRows := eager.Deltas() // materializes everything up front

		scratch := make(Tuple, 0, lazy.NumCols())
		for i := 0; i < lazy.Len(); i++ {
			if lazy.Op(i) != eagerRows[i].Op {
				t.Fatalf("trial %d row %d: op mismatch", trial, i)
			}
			got := lazy.Row(i, scratch)
			if !Tuple(got).Equal(eagerRows[i].Tup) {
				t.Fatalf("trial %d row %d: lazy %v != eager %v", trial, i, got, eagerRows[i].Tup)
			}
			d := lazy.Delta(i)
			if !d.Old.Equal(eagerRows[i].Old) {
				t.Fatalf("trial %d row %d: old mismatch", trial, i)
			}
		}
	}
}

// TestColumnHashAt locks hashAt to HashValue for every kind, so the
// boxing-free routing hash can never diverge from Tuple.HashKey.
func TestColumnHashAt(t *testing.T) {
	vals := []Value{
		nil, int64(0), int64(-1), int64(math.MaxInt64), int64(math.MinInt64),
		float64(3), float64(3.5), math.Inf(1), math.Inf(-1), -0.0,
		"", "x", "partition-key", true, false,
	}
	var c Column
	for _, v := range vals {
		c.AppendValue(v)
	}
	for i, v := range vals {
		if got, want := c.hashAt(i), HashValue(v); got != want {
			t.Errorf("hashAt(%v) = %#x, want %#x", v, got, want)
		}
	}
	// Mixed column (anys fallback) must agree too.
	var m Column
	m.AppendValue(int64(1))
	m.AppendValue("one")
	for i, v := range []Value{int64(1), "one"} {
		if got, want := m.hashAt(i), HashValue(v); got != want {
			t.Errorf("mixed hashAt(%v) = %#x, want %#x", v, got, want)
		}
	}
}

// TestBatchHashKeyAt: the columnar routing hash equals Tuple.HashKey for
// single- and multi-column keys.
func TestBatchHashKeyAt(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	rows := randBatch(r, 50, 3)
	b, _ := FromDeltas(rows)
	scratch := make(Tuple, 0, 3)
	for _, key := range [][]int{{0}, {1}, {2}, {0, 2}, {2, 1, 0}} {
		for i, d := range rows {
			if got, want := b.HashKeyAt(i, key, scratch), d.Tup.HashKey(key); got != want {
				t.Fatalf("key %v row %d: HashKeyAt %#x != HashKey %#x", key, i, got, want)
			}
		}
	}
}

// TestBatchAppendRowFrom: column-wise row copies preserve values, ops,
// and old groups across batches, including pooled destination reuse.
func TestBatchAppendRowFrom(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		rows := randBatch(r, 1+r.Intn(20), 1+r.Intn(4))
		src, _ := FromDeltas(rows)
		dst := GetBatch()
		for i := 0; i < src.Len(); i++ {
			dst.AppendRowFrom(src, i)
		}
		if got := dst.Deltas(); !deltasEqual(got, rows) {
			t.Fatalf("trial %d: AppendRowFrom mismatch", trial)
		}
		PutBatch(dst)
	}
}

// TestBatchFromDeltasRagged: ragged arities are reported, not mangled.
func TestBatchFromDeltasRagged(t *testing.T) {
	if _, ok := FromDeltas([]Delta{Insert(NewTuple(int64(1))), Insert(NewTuple(int64(1), int64(2)))}); ok {
		t.Fatal("ragged new arity accepted")
	}
	if _, ok := FromDeltas([]Delta{
		Replace(NewTuple(int64(1)), NewTuple(int64(2))),
		Replace(NewTuple(int64(1), int64(9)), NewTuple(int64(3))),
	}); ok {
		t.Fatal("ragged old arity accepted")
	}
}

// TestPutBatchRejectsBorrowed: pooled reuse of a decoded batch is a
// lifetime bug and must panic rather than scribble the frame buffer.
func TestPutBatchRejectsBorrowed(t *testing.T) {
	b, _ := FromDeltas([]Delta{Insert(NewTuple(int64(1)))})
	enc := AppendDeltaBatch(nil, b)
	dec, _, err := DecodeDeltaBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch accepted a borrowed batch")
		}
	}()
	PutBatch(dec)
}

// TestBatchQuickEncode drives random single-kind tuples through the full
// columnar wire cycle under testing/quick.
func TestBatchQuickEncode(t *testing.T) {
	f := func(ints []int64, f64s []float64, strs []string, seed int64) bool {
		var ds []Delta
		for _, v := range ints {
			ds = append(ds, Insert(NewTuple(v)))
		}
		b, ok := FromDeltas(ds)
		if !ok {
			return false
		}
		dec, _, err := DecodeDeltaBatch(AppendDeltaBatch(nil, b))
		if err != nil {
			return false
		}
		return deltasEqual(dec.Deltas(), ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
