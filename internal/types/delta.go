package types

import "fmt"

// Op is the annotation α of a delta (Definition 1 in the paper).
type Op uint8

const (
	// OpInsert is +(): the tuple is inserted into downstream operator state.
	OpInsert Op = iota
	// OpDelete is −(): the tuple is removed from downstream operator state.
	OpDelete
	// OpReplace is →(t'): Tuple replaces the existing tuple Old.
	OpReplace
	// OpUpdate is δ(E): a programmable value-update interpreted by
	// user-defined delta handlers in downstream stateful operators. The
	// "expression code E" of the paper is carried as ordinary attributes of
	// the tuple (exactly how the REX optimizer lowers annotations, §5
	// "Query plans for deltas").
	OpUpdate
)

// String renders the annotation in the paper's notation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "+"
	case OpDelete:
		return "-"
	case OpReplace:
		return "->"
	case OpUpdate:
		return "δ"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Delta is an annotated tuple: the unit of data flowing between REX
// operators. For OpReplace, Old carries the tuple being replaced.
type Delta struct {
	Op  Op
	Tup Tuple
	Old Tuple // set only for OpReplace
}

// Insert builds a +() delta.
func Insert(t Tuple) Delta { return Delta{Op: OpInsert, Tup: t} }

// Delete builds a −() delta.
func Delete(t Tuple) Delta { return Delta{Op: OpDelete, Tup: t} }

// Replace builds a →(old) delta carrying the new tuple.
func Replace(old, new Tuple) Delta { return Delta{Op: OpReplace, Tup: new, Old: old} }

// Update builds a δ(E) delta; the update payload travels as tuple fields.
func Update(t Tuple) Delta { return Delta{Op: OpUpdate, Tup: t} }

// WithTuple returns a copy of d carrying tup, preserving the annotation.
// Stateless operators use this to propagate annotations unchanged (§3.3).
func (d Delta) WithTuple(tup Tuple) Delta {
	out := d
	out.Tup = tup
	return out
}

// String renders the delta in paper notation, e.g. "+(1, 0.85)".
func (d Delta) String() string {
	if d.Op == OpReplace {
		return fmt.Sprintf("->%s=>%s", d.Old, d.Tup)
	}
	return d.Op.String() + d.Tup.String()
}

// Inserts wraps plain tuples as insertion deltas.
func Inserts(ts ...Tuple) []Delta {
	out := make([]Delta, len(ts))
	for i, t := range ts {
		out[i] = Insert(t)
	}
	return out
}

// RouteByKey calls fn(hash, d) for every delta with the hash of its
// partition-key column, splitting a replacement whose old and new keys
// hash apart into a deletion at the old home and an insertion at the new
// one. It is the single routing rule shared by bulk loading, base-table
// ingestion, and standing-query delta staging — one definition, so store
// placement and wire routing can never diverge.
func RouteByKey(deltas []Delta, keyCol int, fn func(h uint64, d Delta) error) error {
	for _, d := range deltas {
		if d.Op == OpReplace {
			oldH := HashValue(d.Old[keyCol])
			newH := HashValue(d.Tup[keyCol])
			if oldH != newH {
				if err := fn(oldH, Delete(d.Old)); err != nil {
					return err
				}
				if err := fn(newH, Insert(d.Tup)); err != nil {
					return err
				}
				continue
			}
		}
		if err := fn(HashValue(d.Tup[keyCol]), d); err != nil {
			return err
		}
	}
	return nil
}
