// Package types defines the data model shared by every REX component:
// dynamically typed values, tuples, schemas, and the delta annotations of
// Definition 1 in the paper (insert, delete, replace, value-update).
//
// REX (VLDB 2012) represents data internally as Java objects; the Go port
// uses a small closed set of scalar kinds behind the Value interface plus a
// compact binary codec so the simulated transport can account for real
// serialized bytes.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types supported by the engine. They map
// one-to-one onto the paper's base datatypes (which in turn map onto Java
// scalar types).
type Kind uint8

const (
	KindNull  Kind = iota
	KindInt        // int64
	KindFloat      // float64
	KindString
	KindBool
)

// String returns the RQL type name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "Integer"
	case KindFloat:
		return "Double"
	case KindString:
		return "String"
	case KindBool:
		return "Boolean"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindOf reports the Kind of a dynamically typed value. Unknown dynamic
// types report KindNull; the type checker rejects them before execution.
func KindOf(v Value) Kind {
	switch v.(type) {
	case nil:
		return KindNull
	case int64:
		return KindInt
	case float64:
		return KindFloat
	case string:
		return KindString
	case bool:
		return KindBool
	default:
		return KindNull
	}
}

// ParseKind resolves an RQL/Java-style type name ("Integer", "Double", ...).
func ParseKind(name string) (Kind, error) {
	switch name {
	case "Integer", "Int", "Long", "INTEGER", "INT":
		return KindInt, nil
	case "Double", "Float", "DOUBLE", "FLOAT":
		return KindFloat, nil
	case "String", "STRING", "Text", "VARCHAR":
		return KindString, nil
	case "Boolean", "Bool", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a dynamically typed scalar. The engine stores one of:
// nil, int64, float64, string, bool.
type Value = any

// Int builds an integer Value.
func Int(v int64) Value { return v }

// Float builds a floating-point Value.
func Float(v float64) Value { return v }

// Str builds a string Value.
func Str(v string) Value { return v }

// Bool builds a boolean Value.
func Bool(v bool) Value { return v }

// AsInt coerces v to int64. Floats are truncated; strings parsed.
func AsInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		n, err := strconv.ParseInt(x, 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat coerces v to float64.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsBool coerces v to bool.
func AsBool(v Value) (bool, bool) {
	switch x := v.(type) {
	case bool:
		return x, true
	case int64:
		return x != 0, true
	default:
		return false, false
	}
}

// AsString renders v as a string (used by the Hadoop wrap text round-trip).
func AsString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(x)
	}
}

// ValueFromString parses s into the given kind; the inverse of AsString.
func ValueFromString(s string, k Kind) (Value, error) {
	switch k {
	case KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("types: parse %q as Integer: %w", s, err)
		}
		return n, nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("types: parse %q as Double: %w", s, err)
		}
		return f, nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("types: parse %q as Boolean: %w", s, err)
		}
		return b, nil
	case KindString:
		return s, nil
	default:
		return nil, fmt.Errorf("types: cannot parse into kind %v", k)
	}
}

// ValueEq reports deep equality of two scalar values with numeric
// cross-kind comparison (1 == 1.0).
func ValueEq(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if af, aok := a.(float64); aok {
		if bf, bok := AsFloat(b); bok {
			return af == bf
		}
		return false
	}
	if bf, bok := b.(float64); bok {
		if af, aok := AsFloat(a); aok {
			return af == bf
		}
		return false
	}
	return a == b
}

// ValueCompare orders two values: -1, 0, +1. Mixed numeric kinds compare
// numerically; otherwise kinds must match (callers typecheck first).
func ValueCompare(a, b Value) int {
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case float64:
			return compareFloat(float64(av), bv)
		}
	case float64:
		if bf, ok := AsFloat(b); ok {
			return compareFloat(av, bf)
		}
	case string:
		if bv, ok := b.(string); ok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case !av && bv:
				return -1
			case av && !bv:
				return 1
			}
			return 0
		}
	case nil:
		if b == nil {
			return 0
		}
		return -1
	}
	if b == nil {
		return 1
	}
	// Incomparable kinds: order by kind id to keep sorts total.
	ka, kb := KindOf(a), KindOf(b)
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

// HashValue hashes a scalar with FNV-1a, folding the kind in so that
// 1 and "1" land apart but 1 and 1.0 (integral floats) coincide — rehash
// must route numerically equal keys identically.
func HashValue(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix8 := func(u uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	switch x := v.(type) {
	case nil:
		mix(0)
	case int64:
		mix(1)
		mix8(uint64(x))
	case float64:
		if float64(int64(x)) == x && !math.IsInf(x, 0) {
			mix(1) // integral float hashes like the int
			mix8(uint64(int64(x)))
		} else {
			mix(2)
			mix8(math.Float64bits(x))
		}
	case string:
		mix(3)
		for i := 0; i < len(x); i++ {
			mix(x[i])
		}
	case bool:
		mix(4)
		if x {
			mix(1)
		} else {
			mix(0)
		}
	default:
		mix(5)
	}
	return h
}
