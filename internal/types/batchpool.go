package types

import "sync"

// The batch pool backs the per-round arenas of the execution hot path:
// operators Get a batch, fill it, hand it downstream (consumers copy
// column-wise or materialize fresh tuples — synchronous push calls mean
// the batch cannot be referenced after the send returns), and Put it
// back, so steady-state rounds allocate O(1) instead of O(deltas).
var batchPool = sync.Pool{New: func() any { return new(DeltaBatch) }}

// GetBatch returns an empty builder-owned batch from the pool.
func GetBatch() *DeltaBatch {
	return batchPool.Get().(*DeltaBatch)
}

// PutBatch returns a builder-owned batch to the pool. Decoded batches
// (which alias their wire buffer) must never be pooled; handing one in
// is a lifetime bug and panics. Under -tags pooldebug the batch is
// poisoned first, so a consumer that illegally retained a reference
// reads scribbled values instead of silently stale data.
func PutBatch(b *DeltaBatch) {
	if b == nil {
		return
	}
	if b.borrowed {
		panic("types: PutBatch: decoded batches alias their frame buffer and must not be pooled")
	}
	poisonBatch(b)
	b.Reset()
	batchPool.Put(b)
}
