package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary codec gives the simulated transport realistic message sizes:
// the bandwidth experiment (Fig. 11) measures exactly these encoded bytes.
// Layout per value: 1 kind byte + varint / fixed64 / length-prefixed bytes.

// AppendValue encodes v onto buf.
func AppendValue(buf []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, byte(KindNull))
	case int64:
		buf = append(buf, byte(KindInt))
		return binary.AppendVarint(buf, x)
	case float64:
		buf = append(buf, byte(KindFloat))
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	case string:
		buf = append(buf, byte(KindString))
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...)
	case bool:
		buf = append(buf, byte(KindBool))
		if x {
			return append(buf, 1)
		}
		return append(buf, 0)
	default:
		// Fall back to the string rendering; keeps the codec total.
		s := AsString(x)
		buf = append(buf, byte(KindString))
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	}
}

// DecodeValue decodes one value from buf, returning it and the bytes read.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("types: decode value: empty buffer")
	}
	k := Kind(buf[0])
	rest := buf[1:]
	switch k {
	case KindNull:
		return nil, 1, nil
	case KindInt:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, 0, fmt.Errorf("types: decode int: bad varint")
		}
		return v, 1 + n, nil
	case KindFloat:
		if len(rest) < 8 {
			return nil, 0, fmt.Errorf("types: decode float: short buffer")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(rest)), 9, nil
	case KindString:
		l, n := binary.Uvarint(rest)
		// uint64 comparison so a forged huge length cannot overflow int
		// and slip past the bounds check.
		if n <= 0 || l > uint64(len(rest)-n) {
			return nil, 0, fmt.Errorf("types: decode string: short buffer")
		}
		return string(rest[n : n+int(l)]), 1 + n + int(l), nil
	case KindBool:
		if len(rest) < 1 {
			return nil, 0, fmt.Errorf("types: decode bool: short buffer")
		}
		return rest[0] != 0, 2, nil
	default:
		return nil, 0, fmt.Errorf("types: decode: unknown kind %d", k)
	}
}

// AppendTuple encodes t (field count + values).
func AppendTuple(buf []byte, t Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeTuple decodes one tuple, returning it and the bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	n64, n := binary.Uvarint(buf)
	// Every field costs at least one byte; bounding the count before the
	// allocation keeps forged buffers from panicking in makeslice.
	if n <= 0 || n64 > uint64(len(buf)-n) {
		return nil, 0, fmt.Errorf("types: decode tuple: bad count")
	}
	off := n
	t := make(Tuple, n64)
	for i := range t {
		v, used, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode tuple field %d: %w", i, err)
		}
		t[i] = v
		off += used
	}
	return t, off, nil
}

// AppendDelta encodes a delta (op byte, tuple, optional old tuple).
func AppendDelta(buf []byte, d Delta) []byte {
	buf = append(buf, byte(d.Op))
	buf = AppendTuple(buf, d.Tup)
	if d.Op == OpReplace {
		buf = AppendTuple(buf, d.Old)
	}
	return buf
}

// DecodeDelta decodes one delta, returning it and the bytes consumed.
func DecodeDelta(buf []byte) (Delta, int, error) {
	if len(buf) == 0 {
		return Delta{}, 0, fmt.Errorf("types: decode delta: empty buffer")
	}
	d := Delta{Op: Op(buf[0])}
	off := 1
	tup, used, err := DecodeTuple(buf[off:])
	if err != nil {
		return Delta{}, 0, err
	}
	d.Tup = tup
	off += used
	if d.Op == OpReplace {
		old, used, err := DecodeTuple(buf[off:])
		if err != nil {
			return Delta{}, 0, err
		}
		d.Old = old
		off += used
	}
	return d, off, nil
}

// EncodeBatch encodes a batch of deltas with a leading count. This is the
// wire format of one transport message.
func EncodeBatch(ds []Delta) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ds)))
	for _, d := range ds {
		buf = AppendDelta(buf, d)
	}
	return buf
}

// DecodeBatch decodes a batch encoded by EncodeBatch.
func DecodeBatch(buf []byte) ([]Delta, error) {
	n64, n := binary.Uvarint(buf)
	if n <= 0 || n64 > uint64(len(buf)-n) {
		return nil, fmt.Errorf("types: decode batch: bad count")
	}
	off := n
	out := make([]Delta, 0, n64)
	for i := uint64(0); i < n64; i++ {
		d, used, err := DecodeDelta(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("types: decode batch item %d: %w", i, err)
		}
		out = append(out, d)
		off += used
	}
	return out, nil
}

// EncodedSize reports the wire size of a batch without materializing it.
func EncodedSize(ds []Delta) int {
	n := uvarintLen(uint64(len(ds)))
	for _, d := range ds {
		n += 1 + tupleSize(d.Tup)
		if d.Op == OpReplace {
			n += tupleSize(d.Old)
		}
	}
	return n
}

func tupleSize(t Tuple) int {
	n := uvarintLen(uint64(len(t)))
	for _, v := range t {
		n += ValueSize(v)
	}
	return n
}

// ValueSize reports the encoded size of one value without materializing
// it. Wire-level codecs use it to decide when dictionary-encoding a
// repeated value pays for itself.
func ValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 1
	case int64:
		return 1 + varintLen(x)
	case float64:
		return 9
	case string:
		return 1 + uvarintLen(uint64(len(x))) + len(x)
	case bool:
		return 2
	default:
		s := AsString(x)
		return 1 + uvarintLen(uint64(len(s))) + len(s)
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}
