//go:build pooldebug

package types

import "math"

// poisonBatch scribbles recognizable garbage over every vector of a
// batch being released to the pool. Any operator that illegally retained
// a reference into the batch (instead of copying column-wise or
// materializing tuples) now reads poison, which the suite's result-hash
// assertions catch. Only owned storage is scribbled: borrowed batches
// are rejected by PutBatch before poisoning.
func poisonBatch(b *DeltaBatch) {
	for i := range b.ops {
		b.ops[i] = 0xEE
	}
	groups := [2][]Column{b.cols, b.old}
	for _, cols := range groups {
		for i := range cols {
			c := &cols[i]
			for j := range c.ints {
				c.ints[j] = -0x5EAD5EAD5EAD5EAD
			}
			for j := range c.floats {
				c.floats[j] = math.NaN()
			}
			for j := range c.strs {
				c.strs[j] = "«pool-poison»"
			}
			for j := range c.bools {
				c.bools[j] = true
			}
			for j := range c.anys {
				c.anys[j] = "«pool-poison»"
			}
			for j := range c.nulls {
				c.nulls[j] = 0xEE
			}
		}
	}
}
