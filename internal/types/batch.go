package types

import "math"

// DeltaBatch is the columnar representation of a batch of deltas: one Op
// vector plus one Column per tuple attribute, with an optional parallel
// "old" column group carrying the replaced images of OpReplace rows. It
// is the unit the execution hot path moves — operators with vector paths
// consume and emit whole batches, and the wire codec ships the columnar
// layout directly so decode can alias column payloads out of the frame
// buffer instead of materializing row tuples.
//
// A batch is either builder-owned (grown with Append*) or decoded
// (produced by DecodeDeltaBatch, aliasing the wire buffer until a column
// is first touched). Only builder-owned batches may be pooled; see
// PutBatch.
type DeltaBatch struct {
	n   int
	ops []byte // one Op per row; aliases the frame buffer on decoded batches

	cols []Column
	old  []Column // old-image group; nil until the first OpReplace row

	// borrowed marks a decoded batch whose ops/columns alias a wire
	// buffer the batch does not own. Such batches must never be pooled:
	// poisoning or reusing them would scribble on a buffer shared with
	// the rest of the frame.
	borrowed bool
}

// Column is one attribute of a DeltaBatch: a typed vector (int64,
// float64, string, or bool), or a mixed-kind []Value fallback, plus a
// validity bitmap. Decoded columns start lazy — raw holds the encoded
// payload, aliased from the wire buffer — and materialize into a vector
// on first access.
type Column struct {
	n    int
	kind Kind // vector kind; KindNull when empty or all-null

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []Value // mixed-kind fallback; non-nil takes precedence

	// nulls is the validity bitmap: bit i set means row i is NULL. It is
	// grown lazily — bits beyond len(nulls)*8 read as valid — so all-valid
	// columns carry no bitmap at all.
	nulls []byte

	// raw is the undecoded wire payload of a lazy column (repr in
	// rawRepr); mat() consumes it.
	raw     []byte
	rawRepr byte
}

// Column payload representations on the wire.
const (
	colNulls  byte = 0 // no payload: every row is NULL
	colInts   byte = 1 // one varint per row
	colFloats byte = 2 // 8 little-endian bytes per row
	colStrs   byte = 3 // uvarint length + bytes per row
	colBools  byte = 4 // bit-packed, one bit per row
	colAnys   byte = 5 // types codec AppendValue per row
)

// Len reports the column's row count.
func (c *Column) Len() int { return c.n }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	if i>>3 >= len(c.nulls) {
		return false
	}
	return c.nulls[i>>3]&(1<<(i&7)) != 0
}

func (c *Column) setNull(i int) {
	for i>>3 >= len(c.nulls) {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[i>>3] |= 1 << (i & 7)
}

// repr reports the wire representation of a materialized column.
func (c *Column) repr() byte {
	if c.anys != nil {
		return colAnys
	}
	switch c.kind {
	case KindInt:
		return colInts
	case KindFloat:
		return colFloats
	case KindString:
		return colStrs
	case KindBool:
		return colBools
	default:
		return colNulls
	}
}

// Value returns row i as a boxed scalar (nil for NULL rows). It
// materializes a lazy column on first call.
func (c *Column) Value(i int) Value {
	c.mat()
	if c.IsNull(i) {
		return nil
	}
	if c.anys != nil {
		return c.anys[i]
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.strs[i]
	case KindBool:
		return c.bools[i]
	default:
		return nil
	}
}

// Int returns row i of an int64 column along with a validity flag; ok is
// false for NULL rows and for columns that are not int64-typed. Vector
// paths use the typed accessors to read without boxing.
func (c *Column) Int(i int) (int64, bool) {
	c.mat()
	if c.kind != KindInt || c.anys != nil || c.IsNull(i) {
		return 0, false
	}
	return c.ints[i], true
}

// Float is the float64 counterpart of Int.
func (c *Column) Float(i int) (float64, bool) {
	c.mat()
	if c.kind != KindFloat || c.anys != nil || c.IsNull(i) {
		return 0, false
	}
	return c.floats[i], true
}

// Kind reports the column's vector kind (KindNull when empty, all-null,
// or mixed-kind).
func (c *Column) Kind() Kind {
	c.mat()
	if c.anys != nil {
		return KindNull
	}
	return c.kind
}

// AppendValue appends one boxed scalar (nil for NULL). A column adopts
// the kind of its first non-null value; appending a different kind later
// demotes it to the mixed []Value representation.
func (c *Column) AppendValue(v Value) {
	c.mat()
	i := c.n
	if v == nil {
		c.setNull(i)
		c.appendZero()
		return
	}
	if c.anys != nil {
		c.anys = append(c.anys, v)
		c.n++
		return
	}
	switch x := v.(type) {
	case int64:
		if c.adopt(KindInt) {
			c.ints = append(c.ints, x)
			c.n++
			return
		}
	case float64:
		if c.adopt(KindFloat) {
			c.floats = append(c.floats, x)
			c.n++
			return
		}
	case string:
		if c.adopt(KindString) {
			c.strs = append(c.strs, x)
			c.n++
			return
		}
	case bool:
		if c.adopt(KindBool) {
			c.bools = append(c.bools, x)
			c.n++
			return
		}
	}
	// Kind mismatch or a non-scalar value: demote to mixed.
	c.demote()
	c.anys = append(c.anys, v)
	c.n++
}

// adopt claims kind k for an untyped column (backfilling zero slots for
// any leading NULL rows) and reports whether the column now has kind k.
func (c *Column) adopt(k Kind) bool {
	if c.kind == k {
		return true
	}
	if c.kind != KindNull {
		return false
	}
	c.kind = k
	switch k {
	case KindInt:
		c.ints = growZero(c.ints, c.n)
	case KindFloat:
		c.floats = growZero(c.floats, c.n)
	case KindString:
		c.strs = growZero(c.strs, c.n)
	case KindBool:
		c.bools = growZero(c.bools, c.n)
	}
	return true
}

func growZero[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	return make([]T, n)
}

// appendZero appends a placeholder slot to whatever vector is active so
// row indexes stay aligned (the slot is marked NULL by the caller).
func (c *Column) appendZero() {
	if c.anys != nil {
		c.anys = append(c.anys, nil)
		c.n++
		return
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, 0)
	case KindFloat:
		c.floats = append(c.floats, 0)
	case KindString:
		c.strs = append(c.strs, "")
	case KindBool:
		c.bools = append(c.bools, false)
	}
	c.n++
}

// demote converts a typed column to the mixed []Value representation.
func (c *Column) demote() {
	if c.anys != nil {
		return
	}
	anys := make([]Value, c.n)
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			continue
		}
		switch c.kind {
		case KindInt:
			anys[i] = c.ints[i]
		case KindFloat:
			anys[i] = c.floats[i]
		case KindString:
			anys[i] = c.strs[i]
		case KindBool:
			anys[i] = c.bools[i]
		}
	}
	c.anys = anys
	c.ints, c.floats, c.strs, c.bools = nil, nil, nil, nil
	c.kind = KindNull
}

// appendFrom appends row i of src, preserving the typed representation
// when both columns agree on it (the vector-path copy: no boxing).
func (c *Column) appendFrom(src *Column, i int) {
	src.mat()
	c.mat()
	if src.IsNull(i) {
		c.setNull(c.n)
		c.appendZero()
		return
	}
	if src.anys == nil && c.anys == nil && c.adopt(src.kind) {
		switch src.kind {
		case KindInt:
			c.ints = append(c.ints, src.ints[i])
			c.n++
			return
		case KindFloat:
			c.floats = append(c.floats, src.floats[i])
			c.n++
			return
		case KindString:
			c.strs = append(c.strs, src.strs[i])
			c.n++
			return
		case KindBool:
			c.bools = append(c.bools, src.bools[i])
			c.n++
			return
		}
	}
	c.AppendValue(src.Value(i))
}

// hashAt returns HashValue(c.Value(i)) computed from the typed vector
// without boxing the value. The per-kind branches mirror HashValue
// byte for byte (including the integral-float fold); TestColumnHashAt
// locks the equivalence down.
func (c *Column) hashAt(i int) uint64 {
	c.mat()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	if c.IsNull(i) || c.anys != nil {
		return HashValue(c.Value(i))
	}
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix8 := func(u uint64) {
		for k := 0; k < 8; k++ {
			mix(byte(u >> (8 * k)))
		}
	}
	switch c.kind {
	case KindInt:
		mix(1)
		mix8(uint64(c.ints[i]))
	case KindFloat:
		x := c.floats[i]
		if float64(int64(x)) == x && !math.IsInf(x, 0) {
			mix(1)
			mix8(uint64(int64(x)))
		} else {
			mix(2)
			mix8(math.Float64bits(x))
		}
	case KindString:
		mix(3)
		s := c.strs[i]
		for k := 0; k < len(s); k++ {
			mix(s[k])
		}
	case KindBool:
		mix(4)
		if c.bools[i] {
			mix(1)
		} else {
			mix(0)
		}
	default:
		mix(0) // unreachable: all-null columns return above
	}
	return h
}

// reset clears the column for reuse, keeping vector capacity.
func (c *Column) reset() {
	c.n = 0
	c.kind = KindNull
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.strs = c.strs[:0]
	c.bools = c.bools[:0]
	c.anys = nil
	c.nulls = c.nulls[:0]
	c.raw = nil
	c.rawRepr = 0
}

// Len reports the batch's row count.
func (b *DeltaBatch) Len() int { return b.n }

// NumCols reports the batch's attribute count.
func (b *DeltaBatch) NumCols() int { return len(b.cols) }

// Op reports the annotation of row i.
func (b *DeltaBatch) Op(i int) Op { return Op(b.ops[i]) }

// Col returns column j (of the new-image group).
func (b *DeltaBatch) Col(j int) *Column { return &b.cols[j] }

// HasOld reports whether the batch carries an old-image column group
// (i.e. contains at least one OpReplace row).
func (b *DeltaBatch) HasOld() bool { return b.old != nil }

// ensureCols sizes a column group to arity k, reusing capacity.
func ensureCols(cols []Column, k int) []Column {
	if len(cols) == k {
		return cols
	}
	if cap(cols) >= k {
		old := len(cols)
		cols = cols[:k]
		for i := old; i < k; i++ {
			cols[i].reset()
		}
		return cols
	}
	out := make([]Column, k)
	copy(out, cols)
	return out
}

// padCols appends NULL rows to every column of the group until each has
// n rows (used to backfill the old group when the first replace arrives
// mid-batch, and to keep it aligned across non-replace rows).
func padCols(cols []Column, n int) {
	for j := range cols {
		c := &cols[j]
		for c.n < n {
			c.setNull(c.n)
			c.appendZero()
		}
	}
}

// Append appends one row delta. All rows of a batch must share the
// new-tuple arity (and replaces the old-tuple arity); operators emit
// schema-uniform batches, so a mismatch is a programming error and
// panics. Use FromDeltas to convert possibly-ragged row batches.
func (b *DeltaBatch) Append(d Delta) {
	if b.n == 0 {
		b.cols = ensureCols(b.cols, len(d.Tup))
	} else if len(d.Tup) != len(b.cols) {
		panic("types: DeltaBatch.Append: tuple arity mismatch")
	}
	b.ops = append(b.ops, byte(d.Op))
	for j := range b.cols {
		b.cols[j].AppendValue(d.Tup[j])
	}
	if d.Op == OpReplace {
		if b.old == nil {
			b.old = ensureCols(nil, len(d.Old))
			padCols(b.old, b.n)
		} else if len(d.Old) != len(b.old) {
			panic("types: DeltaBatch.Append: old-tuple arity mismatch")
		}
		for j := range b.old {
			b.old[j].AppendValue(d.Old[j])
		}
	} else if b.old != nil {
		padCols(b.old, b.n+1)
	}
	b.n++
}

// AppendInsert appends an insertion row without building a Delta.
func (b *DeltaBatch) AppendInsert(t Tuple) { b.Append(Delta{Op: OpInsert, Tup: t}) }

// AppendRowFrom appends row i of src, copying column-wise so typed
// vectors never round-trip through boxed values.
func (b *DeltaBatch) AppendRowFrom(src *DeltaBatch, i int) {
	if b.n == 0 {
		b.cols = ensureCols(b.cols, len(src.cols))
	} else if len(b.cols) != len(src.cols) {
		panic("types: DeltaBatch.AppendRowFrom: arity mismatch")
	}
	op := src.Op(i)
	b.ops = append(b.ops, byte(op))
	for j := range b.cols {
		b.cols[j].appendFrom(&src.cols[j], i)
	}
	if op == OpReplace && src.old != nil {
		if b.old == nil {
			b.old = ensureCols(nil, len(src.old))
			padCols(b.old, b.n)
		}
		for j := range b.old {
			b.old[j].appendFrom(&src.old[j], i)
		}
	} else if b.old != nil {
		padCols(b.old, b.n+1)
	}
	b.n++
}

// Row fills scratch with the new-image values of row i and returns it.
// The scratch tuple is reused by callers across rows; it must not be
// retained (clone before storing).
func (b *DeltaBatch) Row(i int, scratch Tuple) Tuple {
	scratch = scratch[:0]
	for j := range b.cols {
		scratch = append(scratch, b.cols[j].Value(i))
	}
	return scratch
}

// OldRow fills scratch with the old-image values of row i and returns it.
// Like Row, the scratch tuple must not be retained.
func (b *DeltaBatch) OldRow(i int, scratch Tuple) Tuple {
	scratch = scratch[:0]
	for j := range b.old {
		scratch = append(scratch, b.old[j].Value(i))
	}
	return scratch
}

// CanAppend reports whether Append(d) would preserve the batch's
// schema-uniformity invariant (always true on an empty batch). Callers
// that accumulate into a pending batch flush and retry when it is false
// instead of panicking.
func (b *DeltaBatch) CanAppend(d Delta) bool {
	if b.n == 0 {
		return true
	}
	if len(d.Tup) != len(b.cols) {
		return false
	}
	if d.Op == OpReplace && b.old != nil && len(d.Old) != len(b.old) {
		return false
	}
	return true
}

// CanAppendRowFrom is CanAppend for AppendRowFrom(src, i).
func (b *DeltaBatch) CanAppendRowFrom(src *DeltaBatch, i int) bool {
	if b.n == 0 {
		return true
	}
	if len(b.cols) != len(src.cols) {
		return false
	}
	if src.Op(i) == OpReplace && src.old != nil && b.old != nil && len(src.old) != len(b.old) {
		return false
	}
	return true
}

// Delta materializes row i as a row-form delta with freshly allocated
// tuples (safe to retain).
func (b *DeltaBatch) Delta(i int) Delta {
	d := Delta{Op: b.Op(i), Tup: rowTuple(b.cols, i)}
	if d.Op == OpReplace && b.old != nil {
		d.Old = rowTuple(b.old, i)
	}
	return d
}

func rowTuple(cols []Column, i int) Tuple {
	t := make(Tuple, len(cols))
	for j := range cols {
		t[j] = cols[j].Value(i)
	}
	return t
}

// Deltas materializes the whole batch as row-form deltas. Every tuple is
// freshly allocated, so the result is safe to retain even when the batch
// itself is pooled or aliases a frame buffer.
func (b *DeltaBatch) Deltas() []Delta {
	out := make([]Delta, b.n)
	for i := range out {
		out[i] = b.Delta(i)
	}
	return out
}

// HashKeyAt returns Tuple.HashKey(key) for row i without materializing
// the row when the key is a single column (the rehash routing hot path).
// Multi-column keys fall back through scratch.
func (b *DeltaBatch) HashKeyAt(i int, key []int, scratch Tuple) uint64 {
	if len(key) == 1 {
		// Tuple.HashKey is HashValue(normKey(v)); normKey only folds
		// integral floats onto int64, which HashValue does anyway.
		return b.cols[key[0]].hashAt(i)
	}
	return b.Row(i, scratch).HashKey(key)
}

// OldHashKeyAt is HashKeyAt over the old-image group of a replace row.
func (b *DeltaBatch) OldHashKeyAt(i int, key []int, scratch Tuple) uint64 {
	if len(key) == 1 {
		return b.old[key[0]].hashAt(i)
	}
	scratch = scratch[:0]
	for j := range b.old {
		scratch = append(scratch, b.old[j].Value(i))
	}
	return scratch.HashKey(key)
}

// FromDeltas converts a row batch to columnar form. It reports ok=false
// (and returns nil) for ragged batches — rows with differing arities, or
// replaces whose old arities differ — which callers keep on the row path.
func FromDeltas(ds []Delta) (*DeltaBatch, bool) {
	if len(ds) == 0 {
		return &DeltaBatch{}, true
	}
	arity := len(ds[0].Tup)
	oldArity := -1
	for _, d := range ds {
		if len(d.Tup) != arity {
			return nil, false
		}
		if d.Op == OpReplace {
			if oldArity < 0 {
				oldArity = len(d.Old)
			} else if len(d.Old) != oldArity {
				return nil, false
			}
		}
	}
	b := &DeltaBatch{}
	for _, d := range ds {
		b.Append(d)
	}
	return b, true
}

// Reset clears the batch for reuse, keeping column and vector capacity.
// A decoded (borrowed) batch drops its aliased slices instead, so later
// appends can never scribble on the wire buffer it came from.
func (b *DeltaBatch) Reset() {
	b.n = 0
	if b.borrowed {
		b.ops = nil
		b.cols = nil
		b.old = nil
		b.borrowed = false
		return
	}
	b.ops = b.ops[:0]
	for i := range b.cols {
		b.cols[i].reset()
	}
	b.old = nil
}
