package job_test

import (
	"context"
	"io"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/noded"
	"github.com/rex-data/rex/internal/types"
)

// startCluster boots n worker daemons on loopback sockets (real TCP, one
// transport per daemon, all inside the test process) and a driver
// connected to them.
func startCluster(t *testing.T, n int) *job.Cluster {
	t.Helper()
	addrs := make([]string, n)
	served := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		nd, err := noded.Listen("127.0.0.1:0", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = nd.Addr()
		go func() {
			defer func() { served <- struct{}{} }()
			if err := nd.Serve(); err != nil {
				t.Errorf("daemon: %v", err)
			}
		}()
	}
	cl, err := job.Connect(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close() // Quit → daemons' Serve returns
		for i := 0; i < n; i++ {
			select {
			case <-served:
			case <-time.After(10 * time.Second):
				t.Error("daemon did not shut down")
				return
			}
		}
	})
	return cl
}

// equivSpecs are the equivalence workloads, sized for test time. The huge
// batch size makes shuffle flushes punctuation-aligned, so compaction
// counters are deterministic and must match across transports exactly.
func equivSpecs(nodes int, seed int64) []*job.Spec {
	return []*job.Spec{
		{Workload: "sssp", Nodes: nodes, Seed: seed, Size: 300, Source: 0,
			Delta: true, MaxIterations: 300, Compaction: true, BatchSize: 1 << 20},
		{Workload: "pagerank", Nodes: nodes, Seed: seed, Size: 250, Epsilon: 0.001,
			Delta: true, MaxIterations: 60, Compaction: true, BatchSize: 1 << 20},
		{Workload: "kmeans", Nodes: nodes, Seed: seed, Size: 120, K: 4,
			MaxIterations: 100, Compaction: true, BatchSize: 1 << 20},
	}
}

func clone(s *job.Spec) *job.Spec { c := *s; return &c }

func ratio(in, out int64) float64 {
	if out == 0 {
		return 0
	}
	return float64(in) / float64(out)
}

// TestTransportEquivalence is the property check of the transport
// refactor: the same plan + seed must yield identical result tuples,
// strata counts, and compaction ratios whether the nodes are goroutines
// in one process (InProcTransport) or OS-level peers over loopback TCP
// (TCPTransport). Several seeds vary the data; several workloads vary
// the plan shape (broadcast, checkpointable fixpoints, handler joins).
func TestTransportEquivalence(t *testing.T) {
	const nodes = 3
	cl := startCluster(t, nodes)
	for _, seed := range []int64{1, 7} {
		for _, spec := range equivSpecs(nodes, seed) {
			inRes, err := job.RunInProc(clone(spec), nil)
			if err != nil {
				t.Fatalf("inproc %s seed %d: %v", spec.Workload, seed, err)
			}
			tcpRes, err := cl.Run(clone(spec), nil)
			if err != nil {
				t.Fatalf("tcp %s seed %d: %v", spec.Workload, seed, err)
			}
			if got, want := bench.ResultHash(tcpRes.Tuples), bench.ResultHash(inRes.Tuples); got != want {
				t.Errorf("%s seed %d: result hash tcp=%s inproc=%s (rows %d vs %d)",
					spec.Workload, seed, got, want, len(tcpRes.Tuples), len(inRes.Tuples))
			}
			if len(tcpRes.Strata) != len(inRes.Strata) {
				t.Errorf("%s seed %d: strata count tcp=%d inproc=%d",
					spec.Workload, seed, len(tcpRes.Strata), len(inRes.Strata))
			} else {
				for i := range inRes.Strata {
					if tcpRes.Strata[i].NewTuples != inRes.Strata[i].NewTuples {
						t.Errorf("%s seed %d stratum %d: Δ size tcp=%d inproc=%d", spec.Workload,
							seed, i, tcpRes.Strata[i].NewTuples, inRes.Strata[i].NewTuples)
					}
				}
			}
			if spec.Workload == "kmeans" {
				// The k-means join handler is stateful across arrivals
				// (each centroid delta re-checks points against the
				// bucket built so far), so the number of intermediate
				// adjustments — and with it CompactIn — legitimately
				// varies with cross-peer arrival order on ANY transport.
				// The self-cancelling extras still fold away: demand a
				// comparable ratio, not an identical count.
				rIn, rTCP := ratio(inRes.CompactIn, inRes.CompactOut), ratio(tcpRes.CompactIn, tcpRes.CompactOut)
				if tcpRes.CompactOut <= 0 || rTCP < rIn*0.75 || rTCP > rIn*1.25 {
					t.Errorf("%s seed %d: compaction ratio tcp=%.2f inproc=%.2f", spec.Workload, seed, rTCP, rIn)
				}
			} else if tcpRes.CompactIn != inRes.CompactIn || tcpRes.CompactOut != inRes.CompactOut {
				// SSSP and PageRank aggregate punctuation-aligned, so with
				// batch flushes pushed past the stratum size their
				// compactor traffic is deterministic: counts must match
				// across transports exactly.
				t.Errorf("%s seed %d: compaction tcp=%d/%d inproc=%d/%d", spec.Workload, seed,
					tcpRes.CompactIn, tcpRes.CompactOut, inRes.CompactIn, inRes.CompactOut)
			}
			if tcpRes.BytesSent <= 0 {
				t.Errorf("%s seed %d: tcp run must report measured socket bytes", spec.Workload, seed)
			}
		}
	}
}

// TestStreamDrainEquivalence is the streaming property check: the
// concatenation of a streaming run's per-stratum delta batches, folded in
// order, must equal the buffered Query result — per workload, per seed,
// on both transports. It also asserts streams really are incremental
// (recursive workloads yield one batch per revising stratum, not one
// final flush).
func TestStreamDrainEquivalence(t *testing.T) {
	const nodes = 3
	ctx := context.Background()
	cl := startCluster(t, nodes)
	for _, seed := range []int64{1, 7} {
		for _, spec := range equivSpecs(nodes, seed) {
			want, err := job.RunInProc(clone(spec), nil)
			if err != nil {
				t.Fatalf("inproc %s seed %d: %v", spec.Workload, seed, err)
			}
			wantHash := bench.ResultHash(want.Tuples)

			inStream, err := job.StreamInProc(ctx, clone(spec), nil)
			if err != nil {
				t.Fatal(err)
			}
			inBatches := 0
			inFold := newFold()
			for b, ok := inStream.Next(); ok; b, ok = inStream.Next() {
				inBatches++
				inFold.apply(b.Deltas)
			}
			if err := inStream.Err(); err != nil {
				t.Fatalf("inproc stream %s seed %d: %v", spec.Workload, seed, err)
			}
			if got := bench.ResultHash(inFold.tuples()); got != wantHash {
				t.Errorf("%s seed %d: inproc stream fold %s, want %s", spec.Workload, seed, got, wantHash)
			}
			if inBatches < 2 {
				t.Errorf("%s seed %d: stream yielded %d batches; expected per-stratum increments", spec.Workload, seed, inBatches)
			}

			tcpStream, err := cl.StreamCtx(ctx, clone(spec), nil)
			if err != nil {
				t.Fatal(err)
			}
			tcpFold := newFold()
			for b, ok := tcpStream.Next(); ok; b, ok = tcpStream.Next() {
				tcpFold.apply(b.Deltas)
			}
			if err := tcpStream.Err(); err != nil {
				t.Fatalf("tcp stream %s seed %d: %v", spec.Workload, seed, err)
			}
			if got := bench.ResultHash(tcpFold.tuples()); got != wantHash {
				t.Errorf("%s seed %d: tcp stream fold %s, want %s", spec.Workload, seed, got, wantHash)
			}
		}
	}
}

// fold replays a delta stream into a tuple multiset the way the
// engine's result accumulator would.
type fold struct{ live []types.Tuple }

func newFold() *fold { return &fold{} }

func (f *fold) apply(batch []types.Delta) {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			f.live = append(f.live, d.Tup)
		case types.OpDelete:
			f.remove(d.Tup)
		case types.OpReplace:
			f.remove(d.Old)
			f.live = append(f.live, d.Tup)
		}
	}
}

func (f *fold) remove(t types.Tuple) {
	for i, x := range f.live {
		if x != nil && x.Equal(t) {
			f.live[i] = f.live[len(f.live)-1]
			f.live = f.live[:len(f.live)-1]
			return
		}
	}
}

func (f *fold) tuples() []types.Tuple { return f.live }

// TestTCPKillRecovery injects a node failure over real sockets: the
// driver declares a node dead mid-query, the survivors re-run (restart
// strategy) or resume from replicated checkpoints (incremental), and the
// answer must match an undisturbed in-process run. A follow-up run on the
// same cluster proves Revive re-arms the daemon.
func TestTCPKillRecovery(t *testing.T) {
	const nodes = 3
	base := &job.Spec{Workload: "sssp", Nodes: nodes, Seed: 3, Size: 250, Source: 0,
		Delta: true, MaxIterations: 300, Checkpoint: true}
	want, err := job.RunInProc(clone(base), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := bench.ResultHash(want.Tuples)

	cl := startCluster(t, nodes)
	for _, strategy := range []exec.RecoveryStrategy{exec.RecoveryRestart, exec.RecoveryIncremental} {
		res, err := cl.Run(clone(base), func(o *exec.Options) {
			o.Recovery = strategy
			o.OnStratum = func(s, newTuples int) {
				if s == 2 {
					cl.Transport().Kill(1)
				}
			}
		})
		if err != nil {
			t.Fatalf("strategy %d: %v", strategy, err)
		}
		if res.Recoveries != 1 {
			t.Errorf("strategy %d: recoveries = %d, want 1", strategy, res.Recoveries)
		}
		if got := bench.ResultHash(res.Tuples); got != wantHash {
			t.Errorf("strategy %d: result hash %s after recovery, want %s", strategy, got, wantHash)
		}
		// The next Run revives node 1; a clean full-cluster run must
		// still agree.
		res, err = cl.Run(clone(base), nil)
		if err != nil {
			t.Fatalf("post-revive run: %v", err)
		}
		if res.Recoveries != 0 {
			t.Errorf("post-revive run recovered %d times", res.Recoveries)
		}
		if got := bench.ResultHash(res.Tuples); got != wantHash {
			t.Errorf("post-revive run: result hash %s, want %s", got, wantHash)
		}
	}
}

// TestRQLOverTCP compiles the same RQL text in every process and checks
// the multi-process answer against the in-process one.
func TestRQLOverTCP(t *testing.T) {
	const nodes = 2
	spec := &job.Spec{
		Workload: "rql", Dataset: "lineitem", Size: 3000, Seed: 4, Nodes: nodes,
		Query: `SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1`,
	}
	want, err := job.RunInProc(clone(spec), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := startCluster(t, nodes)
	got, err := cl.Run(clone(spec), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bench.ResultHash(got.Tuples) != bench.ResultHash(want.Tuples) {
		t.Errorf("rql over tcp: %v, want %v", got.Tuples, want.Tuples)
	}
}
