package job_test

import (
	"context"
	"os"
	"slices"
	"testing"
	"time"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
)

// nodeChildFlag re-executes this test binary as a rexnode worker daemon:
// TestMain spots it before any test runs, so SpawnLocal can treat the test
// binary itself as the daemon executable (no separate build step in CI).
const nodeChildFlag = "-rexnode-child"

func TestMain(m *testing.M) {
	if slices.Contains(os.Args, nodeChildFlag) {
		if err := rex.ServeNode("127.0.0.1:0", os.Stderr); err != nil {
			os.Exit(1)
		}
		return
	}
	os.Exit(m.Run())
}

// TestProcessKillSurfacesError is the real failure-injection smoke: a
// spawned rexnode OS process is SIGKILLed mid-query (not the MsgKill
// soft-kill — the process is gone), and the driver must surface the broken
// connection as a node failure instead of hanging on votes that will never
// arrive.
func TestProcessKillSurfacesError(t *testing.T) {
	cl, err := job.SpawnLocal(2, os.Args[0], []string{nodeChildFlag})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec := &job.Spec{Workload: "sssp", Nodes: 2, Seed: 3, Size: 300, Source: 0,
		Delta: true, MaxIterations: 300}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	_, err = cl.RunCtx(ctx, spec, func(o *exec.Options) {
		o.OnStratum = func(s, newTuples int) {
			if s == 2 {
				if kerr := cl.KillProcess(1); kerr != nil {
					t.Errorf("kill: %v", kerr)
				}
			}
		}
	})
	if err == nil {
		t.Fatal("query against a killed worker process must error")
	}
	if ctx.Err() != nil {
		t.Fatalf("driver hit the watchdog timeout instead of detecting the death: %v", err)
	}
	t.Logf("driver surfaced the death in %v: %v", time.Since(start).Round(time.Millisecond), err)
}

// TestProcessKillDuringPrepare kills the daemon process before the job
// ships: the ready-wait must fail fast on the broken connection, not sit
// out its two-minute timeout.
func TestProcessKillDuringPrepare(t *testing.T) {
	cl, err := job.SpawnLocal(2, os.Args[0], []string{nodeChildFlag})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Large dataset: the daemons spend real time generating it, so the
	// kill lands while the driver waits for readiness.
	spec := &job.Spec{Workload: "sssp", Nodes: 2, Seed: 3, Size: 60_000, Source: 0, Delta: true}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = cl.KillProcess(0)
	}()
	_, err = cl.RunCtx(ctx, spec, nil)
	if err == nil {
		t.Fatal("prepare against a killed worker process must error")
	}
	if ctx.Err() != nil {
		t.Fatalf("driver hit the watchdog timeout instead of detecting the death: %v", err)
	}
}
