package job_test

import (
	"context"
	"os"
	"slices"
	"strconv"
	"testing"
	"time"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/types"
)

// nodeChildFlag re-executes this test binary as a rexnode worker daemon:
// TestMain spots it before any test runs, so SpawnLocal can treat the test
// binary itself as the daemon executable (no separate build step in CI).
// The child honors the flags the driver passes real rexnode binaries
// (-listen, -data-dir, -buffer-pool-pages) so SpawnLocalData respawn —
// which pins the listen address and reuses the data directory — works
// against the test binary too.
const nodeChildFlag = "-rexnode-child"

func TestMain(m *testing.M) {
	if slices.Contains(os.Args, nodeChildFlag) {
		listen, dataDir, pool := "127.0.0.1:0", "", 0
		for i := 1; i < len(os.Args)-1; i++ {
			switch os.Args[i] {
			case "-listen":
				listen = os.Args[i+1]
			case "-data-dir":
				dataDir = os.Args[i+1]
			case "-buffer-pool-pages":
				pool, _ = strconv.Atoi(os.Args[i+1])
			}
		}
		if err := rex.ServeNodeDurable(listen, os.Stderr, dataDir, pool); err != nil {
			os.Exit(1)
		}
		return
	}
	os.Exit(m.Run())
}

// TestProcessKillSurfacesError is the real failure-injection smoke: a
// spawned rexnode OS process is SIGKILLed mid-query (not the MsgKill
// soft-kill — the process is gone), and the driver must surface the broken
// connection as a node failure instead of hanging on votes that will never
// arrive.
func TestProcessKillSurfacesError(t *testing.T) {
	cl, err := job.SpawnLocal(2, os.Args[0], []string{nodeChildFlag})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec := &job.Spec{Workload: "sssp", Nodes: 2, Seed: 3, Size: 300, Source: 0,
		Delta: true, MaxIterations: 300}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	_, err = cl.RunCtx(ctx, spec, func(o *exec.Options) {
		o.OnStratum = func(s, newTuples int) {
			if s == 2 {
				if kerr := cl.KillProcess(1); kerr != nil {
					t.Errorf("kill: %v", kerr)
				}
			}
		}
	})
	if err == nil {
		t.Fatal("query against a killed worker process must error")
	}
	if ctx.Err() != nil {
		t.Fatalf("driver hit the watchdog timeout instead of detecting the death: %v", err)
	}
	t.Logf("driver surfaced the death in %v: %v", time.Since(start).Round(time.Millisecond), err)
}

// crashSpec is the standing query the crash-recovery property runs: the
// incremental shortest-path query over the deterministic sssp dataset,
// with a deliberately tiny buffer pool so durable daemons page under the
// churn.
func crashSpec() *job.Spec {
	return &job.Spec{
		Workload: "rql", Query: algos.IncSSSPQuery,
		Dataset: "sssp", Handlers: "sssp-inc",
		Seed: 1, Size: 300, MaxStrata: 300,
		BufferPoolPages: 64,
	}
}

// crashRounds are the per-round edge insertions: shortcuts from the
// reachable core into higher-numbered vertices, so every round genuinely
// re-derives distances through resident operator state.
func crashRounds() [][]types.Delta {
	mk := func(pairs ...int64) []types.Delta {
		var ds []types.Delta
		for i := 0; i < len(pairs); i += 2 {
			ds = append(ds, types.Insert(types.NewTuple(pairs[i], pairs[i+1])))
		}
		return ds
	}
	return [][]types.Delta{
		mk(0, 171, 171, 243),
		mk(2, 222, 222, 223),
		mk(1, 257, 0, 280),
	}
}

// runStandingSSSP drives the standing query through every crash round on
// the given cluster, folding the delta stream into a materialized view,
// and returns the view hash plus how many recoveries the pump performed.
// kill, when non-nil, is invoked keyed by the upcoming round index so the
// caller can SIGKILL daemons at chosen points.
func runStandingSSSP(t *testing.T, cl *job.Cluster, kill func(round int)) (string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sq, err := cl.StandingCtx(ctx, crashSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := sq.Stream()
	view := &deltaFold{}
	fold := func(rs *exec.RoundStats) {
		t.Helper()
		for i := 0; i < rs.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early on round %d: %v", rs.Round, st.Err())
			}
			view.apply(b.Deltas)
		}
	}
	fold(&sq.Rounds()[0])
	if len(view.live) == 0 {
		t.Fatal("initial fixpoint yielded no tuples")
	}
	for i, batch := range crashRounds() {
		if kill != nil {
			kill(i + 1)
		}
		rs, err := sq.Ingest(ctx, map[string][]types.Delta{"graph": batch})
		if err != nil {
			t.Fatalf("ingest round %d: %v", i+1, err)
		}
		fold(rs)
	}
	recoveries := sq.Recoveries()
	if err := sq.Close(); err != nil {
		t.Fatalf("standing close: %v", err)
	}
	return bench.ResultHash(view.live), recoveries
}

// deltaFold replays a delta stream into the relation it describes.
type deltaFold struct{ live []types.Tuple }

func (f *deltaFold) apply(batch []types.Delta) {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			f.live = append(f.live, d.Tup)
		case types.OpDelete:
			f.remove(d.Tup)
		case types.OpReplace:
			f.remove(d.Old)
			f.live = append(f.live, d.Tup)
		}
	}
}

func (f *deltaFold) remove(t types.Tuple) {
	for i, x := range f.live {
		if x != nil && x.Equal(t) {
			f.live[i] = f.live[len(f.live)-1]
			f.live = f.live[:len(f.live)-1]
			return
		}
	}
}

// TestProcessCrashRecoveryStanding is the crash-recovery acceptance
// property over real processes and sockets: a standing recursive query on
// durable, disk-paged daemons survives a worker SIGKILL — the driver
// respawns the replacement on the victim's pinned address and data
// directory, the replacement restores the persisted job and its committed
// store image at boot, the pump replays the interrupted round — and the
// folded subscription stream still hashes identically to an uninterrupted
// run on plain in-memory daemons. One assertion, three properties: exactly
// once delivery across a process death, durable restore fidelity, and
// spill-backed vs in-RAM equivalence over TCP.
func TestProcessCrashRecoveryStanding(t *testing.T) {
	// Reference: same rounds, no kills, in-memory daemons.
	ref, err := job.SpawnLocal(3, os.Args[0], []string{nodeChildFlag})
	if err != nil {
		t.Fatal(err)
	}
	want, refRecov := runStandingSSSP(t, ref, nil)
	ref.Close()
	if refRecov != 0 {
		t.Fatalf("uninterrupted run reported %d recoveries", refRecov)
	}

	// Victim run: durable daemons with private data dirs; SIGKILL node 1
	// before round 2's ingest (the death is discovered mid-protocol) and
	// node 2 shortly into round 3's fixpoint.
	cl, err := job.SpawnLocalData(3, os.Args[0], []string{nodeChildFlag}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Respawnable() {
		t.Fatal("SpawnLocalData cluster must be respawnable")
	}
	got, recoveries := runStandingSSSP(t, cl, func(round int) {
		switch round {
		case 2:
			if err := cl.KillProcess(1); err != nil {
				t.Errorf("kill node 1: %v", err)
			}
		case 3:
			go func() {
				time.Sleep(2 * time.Millisecond)
				if err := cl.KillProcess(2); err != nil {
					t.Errorf("kill node 2: %v", err)
				}
			}()
		}
	})
	if recoveries < 1 {
		t.Fatalf("Recoveries() = %d, want >= 1", recoveries)
	}
	if got != want {
		t.Fatalf("crash-recovered fold %s != uninterrupted run %s", got, want)
	}
	t.Logf("recovered %d process deaths; hash %s", recoveries, got)
}

// TestProcessKillDuringPrepare kills the daemon process before the job
// ships: the ready-wait must fail fast on the broken connection, not sit
// out its two-minute timeout.
func TestProcessKillDuringPrepare(t *testing.T) {
	cl, err := job.SpawnLocal(2, os.Args[0], []string{nodeChildFlag})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Large dataset: the daemons spend real time generating it, so the
	// kill lands while the driver waits for readiness.
	spec := &job.Spec{Workload: "sssp", Nodes: 2, Seed: 3, Size: 60_000, Source: 0, Delta: true}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = cl.KillProcess(0)
	}()
	_, err = cl.RunCtx(ctx, spec, nil)
	if err == nil {
		t.Fatal("prepare against a killed worker process must error")
	}
	if ctx.Err() != nil {
		t.Fatalf("driver hit the watchdog timeout instead of detecting the death: %v", err)
	}
}
