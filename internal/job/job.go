// Package job defines the serializable job descriptions that make
// multi-process execution possible without shipping compiled plans: a
// Spec names a workload, its deterministic dataset parameters, and the
// execution options, and every process — the driver and each rexnode
// worker daemon — rebuilds the identical catalog, physical plan, and
// dataset from it. Only the spec crosses the wire (as a MsgJob payload);
// plans, delta handlers (Go closures), and data never do.
package job

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/rql"
	"github.com/rex-data/rex/internal/types"
)

// Table is one generated base table of a job.
type Table struct {
	Name   string
	KeyCol int
	Tuples []types.Tuple
}

// Spec describes one query run. Everything in it is deterministic: two
// processes decoding the same spec build byte-identical plans and
// datasets, so a worker daemon can load exactly the partitions it owns.
type Spec struct {
	// Workload selects the plan builder: pagerank | sssp | kmeans | rql.
	Workload string `json:"workload"`

	// Cluster shape. Peers is filled by the driver before shipping; its
	// length is the node count and the MsgJob frame's To field tells
	// each daemon which entry is its own.
	Nodes       int      `json:"nodes"`
	VNodes      int      `json:"vnodes"`
	Replication int      `json:"replication"`
	Peers       []string `json:"peers,omitempty"`

	// Dataset parameters.
	Seed int64 `json:"seed"`
	Size int   `json:"size"`

	// Workload parameters.
	K             int     `json:"k,omitempty"`      // kmeans: cluster count
	Source        int64   `json:"source,omitempty"` // sssp: start vertex
	Epsilon       float64 `json:"epsilon,omitempty"`
	Delta         bool    `json:"delta"`
	MaxIterations int     `json:"max_iterations,omitempty"`

	// RQL mode: the query text, the dataset to stage for it, and an
	// optional named handler bundle to register before compiling.
	Query    string `json:"query,omitempty"`
	Dataset  string `json:"dataset,omitempty"`
	Handlers string `json:"handlers,omitempty"`

	// Ingest is the session's base-table change log: deltas accepted by
	// Session.Insert/Delete/LoadDeltas since the dataset was staged, in
	// arrival order. Every process folds the log into its generated tables
	// before loading, so a job sees the same revised base data everywhere —
	// this is what lets TCP sessions accept loads at all (their daemons
	// regenerate data per job from the spec).
	Ingest []IngestedTable `json:"ingest,omitempty"`

	// Execution options that must agree on both sides of the wire.
	BatchSize           int  `json:"batch_size,omitempty"`
	Compaction          bool `json:"compaction"`
	Checkpoint          bool `json:"checkpoint"`
	CompactionHighWater int  `json:"compaction_high_water,omitempty"`
	MaxStrata           int  `json:"max_strata,omitempty"`
	// Stream selects streaming-result mode: workers emit each stratum's
	// state changes as it closes instead of flushing the final relation
	// (both sides must agree — it changes fixpoint behavior).
	Stream bool `json:"stream,omitempty"`
	// NoVectorize disables the columnar batch path (both sides must agree
	// — it changes the wire frames workers emit).
	NoVectorize bool `json:"no_vectorize,omitempty"`

	// BufferPoolPages sizes the page-store buffer pool on daemons running
	// with a data directory (0 = the daemon's own default). It crosses the
	// wire so one spec can pin the working-set budget cluster-wide.
	BufferPoolPages int `json:"buffer_pool_pages,omitempty"`
	// SpillDir, when set, backs the in-process engine's stores with paged
	// spill-to-disk files under this directory. Local-only: daemons place
	// their stores under their own -data-dir, never a driver path.
	SpillDir string `json:"-"`
}

// IngestedTable is one base-table delta batch of a session's change log.
// Deltas carries the batch in the cluster wire encoding (base64 inside the
// JSON spec), so the log costs what the wire would.
type IngestedTable struct {
	Table  string `json:"table"`
	Deltas []byte `json:"deltas"`
}

// Normalize fills defaults so both sides derive the same shape.
func (s *Spec) Normalize() {
	if s.Nodes <= 0 {
		s.Nodes = 4
	}
	if s.VNodes <= 0 {
		s.VNodes = 32
	}
	if s.Replication <= 0 {
		s.Replication = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Size <= 0 {
		s.Size = 2000
	}
	if s.Workload == "kmeans" && s.K <= 0 {
		s.K = 8
	}
}

// Options derives the exec options every process must share. Driver-side
// concerns (recovery strategy, termination hooks) are layered on top by
// the caller — they never cross the wire.
func (s *Spec) Options() exec.Options {
	return exec.Options{
		BatchSize:           s.BatchSize,
		Compaction:          s.Compaction,
		Checkpoint:          s.Checkpoint,
		CompactionHighWater: s.CompactionHighWater,
		MaxStrata:           s.MaxStrata,
		Stream:              s.Stream,
		NoVectorize:         s.NoVectorize,
	}
}

// Encode serializes the spec for a MsgJob payload.
func (s *Spec) Encode() ([]byte, error) { return json.Marshal(s) }

// Decode parses a MsgJob payload.
func Decode(payload []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("job: decode spec: %w", err)
	}
	s.Normalize()
	return &s, nil
}

// Build constructs the catalog (with registered delta handlers), the
// physical plan, and the generated base tables for this spec. Table row
// counts are installed as catalog stats before any RQL compilation so
// cost-based decisions are identical in every process.
func (s *Spec) Build() (*catalog.Catalog, *exec.PlanSpec, []Table, error) {
	s.Normalize()
	cat := catalog.New()
	var plan *exec.PlanSpec
	var tables []Table
	var err error
	switch s.Workload {
	case "pagerank":
		g := datagen.DBPediaGraph(s.Size, s.Seed)
		cfg := algos.PageRankConfig{Epsilon: s.Epsilon, Delta: s.Delta, MaxIterations: s.MaxIterations}
		if err = addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return nil, nil, nil, err
		}
		jn, wn, rerr := algos.RegisterPageRank(cat, cfg)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		plan = algos.PageRankPlan(cfg, jn, wn)
		tables = []Table{{Name: "graph", KeyCol: 0, Tuples: g.Edges}}
	case "sssp":
		g := datagen.DBPediaGraph(s.Size, s.Seed)
		cfg := algos.SSSPConfig{Source: s.Source, Delta: s.Delta, MaxIterations: s.MaxIterations}
		if err = addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return nil, nil, nil, err
		}
		if err = addTable(cat, "spseed", 0, "srcId:Integer", "dist:Double"); err != nil {
			return nil, nil, nil, err
		}
		jn, wn, rerr := algos.RegisterSSSP(cat, cfg)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		plan = algos.SSSPPlan(cfg, jn, wn)
		tables = []Table{
			{Name: "graph", KeyCol: 0, Tuples: g.Edges},
			{Name: "spseed", KeyCol: 0, Tuples: algos.SSSPSeed(cfg)},
		}
	case "kmeans":
		points := datagen.GeoPoints(s.Size, s.K, 1, s.Seed)
		cfg := algos.KMeansConfig{K: s.K, MaxIterations: s.MaxIterations}
		if err = addTable(cat, "points", 0, "id:Integer", "x:Double", "y:Double"); err != nil {
			return nil, nil, nil, err
		}
		if err = addTable(cat, "kmseed", 0, "cid:Integer", "x:Double", "y:Double"); err != nil {
			return nil, nil, nil, err
		}
		jn, wn, rerr := algos.RegisterKMeans(cat, cfg)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		plan = algos.KMeansPlan(cfg, jn, wn)
		tables = []Table{
			{Name: "points", KeyCol: 0, Tuples: points},
			{Name: "kmseed", KeyCol: 0, Tuples: algos.KMeansSeed(points, s.K)},
		}
	case "rql":
		tables, err = s.rqlTables(cat)
		if err != nil {
			return nil, nil, nil, err
		}
		if err = s.registerHandlers(cat); err != nil {
			return nil, nil, nil, err
		}
		if tables, err = s.applyIngest(tables); err != nil {
			return nil, nil, nil, err
		}
		// Stats must precede compilation: the optimizer reads them.
		if err = setStats(cat, tables); err != nil {
			return nil, nil, nil, err
		}
		plan, err = rql.Compile(s.Query, cat, s.Nodes)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("job: compile %q: %w", s.Query, err)
		}
		return cat, plan, tables, nil
	default:
		return nil, nil, nil, fmt.Errorf("job: unknown workload %q", s.Workload)
	}
	if tables, err = s.applyIngest(tables); err != nil {
		return nil, nil, nil, err
	}
	if err := setStats(cat, tables); err != nil {
		return nil, nil, nil, err
	}
	return cat, plan, tables, nil
}

// applyIngest folds the spec's base-table change log into the generated
// tables, in log order, so every process loads identically revised data.
func (s *Spec) applyIngest(tables []Table) ([]Table, error) {
	if len(s.Ingest) == 0 {
		return tables, nil
	}
	idx := map[string]int{}
	for i, tb := range tables {
		idx[tb.Name] = i
	}
	remove := func(ts []types.Tuple, t types.Tuple) []types.Tuple {
		for i, x := range ts {
			if x.Equal(t) {
				return append(ts[:i], ts[i+1:]...)
			}
		}
		return ts
	}
	for _, entry := range s.Ingest {
		i, ok := idx[entry.Table]
		if !ok {
			return nil, fmt.Errorf("job: ingest log references table %q not in dataset", entry.Table)
		}
		deltas, err := cluster.DecodeDeltas(entry.Deltas)
		if err != nil {
			return nil, fmt.Errorf("job: ingest log for %s: %w", entry.Table, err)
		}
		tb := &tables[i]
		for _, d := range deltas {
			switch d.Op {
			case types.OpInsert, types.OpUpdate:
				tb.Tuples = append(tb.Tuples, d.Tup)
			case types.OpDelete:
				tb.Tuples = remove(tb.Tuples, d.Tup)
			case types.OpReplace:
				tb.Tuples = append(remove(tb.Tuples, d.Old), d.Tup)
			}
		}
	}
	return tables, nil
}

// rqlTables stages the named dataset for an RQL job.
func (s *Spec) rqlTables(cat *catalog.Catalog) ([]Table, error) {
	return StageDataset(cat, s.Dataset, s.Size, s.Seed)
}

// StageDataset declares and generates one of the named deterministic
// datasets into cat: the tables any process can rebuild identically from
// (name, size, seed). The rex session layer uses it to stage the same data
// in-process that TCP daemons generate remotely.
func StageDataset(cat *catalog.Catalog, dataset string, size int, seed int64) ([]Table, error) {
	switch dataset {
	case "dbpedia", "twitter":
		var g *datagen.Graph
		if dataset == "dbpedia" {
			g = datagen.DBPediaGraph(size, seed)
		} else {
			g = datagen.TwitterGraph(size, seed)
		}
		if err := addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return nil, err
		}
		return []Table{{Name: "graph", KeyCol: 0, Tuples: g.Edges}}, nil
	case "lineitem":
		if err := addTable(cat, "lineitem", 0, datagen.LineItemSchema...); err != nil {
			return nil, err
		}
		return []Table{{Name: "lineitem", KeyCol: 0, Tuples: datagen.LineItems(size, seed)}}, nil
	case "points":
		if err := addTable(cat, "points", 0, "id:Integer", "x:Double", "y:Double"); err != nil {
			return nil, err
		}
		return []Table{{Name: "points", KeyCol: 0, Tuples: datagen.GeoPoints(size, 8, 1, seed)}}, nil
	case "sssp":
		// Graph plus a one-row seed at vertex 0: the shape the recursive
		// shortest-path queries (and the standing-query suite) expect.
		g := datagen.DBPediaGraph(size, seed)
		if err := addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return nil, err
		}
		if err := addTable(cat, "spseed", 0, "srcId:Integer", "dist:Double"); err != nil {
			return nil, err
		}
		return []Table{
			{Name: "graph", KeyCol: 0, Tuples: g.Edges},
			{Name: "spseed", KeyCol: 0, Tuples: []types.Tuple{types.NewTuple(int64(0), 0.0)}},
		}, nil
	default:
		return nil, fmt.Errorf("job: unknown dataset %q", dataset)
	}
}

// StageSchemas declares the named dataset's tables into cat — schemas and
// an estimated row count only, no tuple generation. Prepare-time
// validation needs the catalog shape, not the data; the row estimate only
// steers costing, never correctness, so it need not match the generated
// count exactly.
func StageSchemas(cat *catalog.Catalog, dataset string, size int) error {
	var names []string
	switch dataset {
	case "dbpedia", "twitter":
		names = []string{"graph"}
		if err := addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return err
		}
	case "lineitem":
		names = []string{"lineitem"}
		if err := addTable(cat, "lineitem", 0, datagen.LineItemSchema...); err != nil {
			return err
		}
	case "points":
		names = []string{"points"}
		if err := addTable(cat, "points", 0, "id:Integer", "x:Double", "y:Double"); err != nil {
			return err
		}
	case "sssp":
		names = []string{"graph"}
		if err := addTable(cat, "graph", 0, "srcId:Integer", "destId:Integer"); err != nil {
			return err
		}
		if err := addTable(cat, "spseed", 0, "srcId:Integer", "dist:Double"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("job: unknown dataset %q", dataset)
	}
	for _, name := range names {
		tab, err := cat.Table(name)
		if err != nil {
			return err
		}
		stats := tab.Stats
		stats.RowCount = int64(size)
		if err := cat.SetStats(name, stats); err != nil {
			return err
		}
	}
	return nil
}

// registerHandlers installs a named delta-handler bundle. Handler names
// are deterministic per bundle, so query text referencing them compiles
// identically everywhere.
func (s *Spec) registerHandlers(cat *catalog.Catalog) error {
	switch s.Handlers {
	case "":
		return nil
	case "pagerank":
		cfg := algos.PageRankConfig{Epsilon: s.Epsilon, Delta: s.Delta, MaxIterations: s.MaxIterations}
		_, _, err := algos.RegisterPageRank(cat, cfg)
		return err
	case "sssp-inc":
		return algos.RegisterIncSSSP(cat)
	default:
		return fmt.Errorf("job: unknown handler bundle %q", s.Handlers)
	}
}

// RegisterBundle installs a named handler bundle into a catalog with
// default parameters — how in-process sessions honor WithHandlers, so the
// same RQL text compiles against the same handler names on every
// transport.
func RegisterBundle(cat *catalog.Catalog, name string) error {
	s := Spec{Handlers: name}
	return s.registerHandlers(cat)
}

func addTable(cat *catalog.Catalog, name string, keyCol int, fields ...string) error {
	return cat.AddTable(&catalog.Table{
		Name: name, Schema: types.MustSchema(fields...), PartitionKey: keyCol,
	})
}

func setStats(cat *catalog.Catalog, tables []Table) error {
	for _, tb := range tables {
		tab, err := cat.Table(tb.Name)
		if err != nil {
			return err
		}
		stats := tab.Stats
		stats.RowCount = int64(len(tb.Tuples))
		if err := cat.SetStats(tb.Name, stats); err != nil {
			return err
		}
	}
	return nil
}

// RunInProc executes the spec on a fresh in-process engine — the
// single-process reference every multi-process run can be compared
// against. tune, when non-nil, adjusts the derived options (recovery
// strategy, stratum hooks) before the run.
func RunInProc(s *Spec, tune func(*exec.Options)) (*exec.Result, error) {
	return RunInProcCtx(context.Background(), s, tune)
}

// RunInProcCtx is RunInProc honoring a context.
func RunInProcCtx(ctx context.Context, s *Spec, tune func(*exec.Options)) (*exec.Result, error) {
	eng, plan, opts, err := InProcEngine(s)
	if err != nil {
		return nil, err
	}
	if tune != nil {
		tune(&opts)
	}
	return eng.RunCtx(ctx, plan, opts)
}

// StreamInProc executes the spec on a fresh in-process engine in
// streaming-result mode.
func StreamInProc(ctx context.Context, s *Spec, tune func(*exec.Options)) (*exec.ResultStream, error) {
	clone := *s // Stream + Normalize mutate; keep the caller's spec pristine
	clone.Stream = true
	s = &clone
	eng, plan, opts, err := InProcEngine(s)
	if err != nil {
		return nil, err
	}
	if tune != nil {
		tune(&opts)
	}
	return eng.Stream(ctx, plan, opts)
}

// InProcEngine builds a loaded in-process engine plus the spec's plan and
// options, for callers that need the engine handle (failure injection).
func InProcEngine(s *Spec) (*exec.Engine, *exec.PlanSpec, exec.Options, error) {
	s.Normalize()
	cat, plan, tables, err := s.Build()
	if err != nil {
		return nil, nil, exec.Options{}, err
	}
	eng := exec.NewEngine(s.Nodes, s.VNodes, s.Replication, cat)
	if s.SpillDir != "" {
		if err := eng.UseSpill(s.SpillDir, s.BufferPoolPages); err != nil {
			return nil, nil, exec.Options{}, err
		}
	}
	for _, tb := range tables {
		if err := eng.Load(tb.Name, tb.KeyCol, tb.Tuples); err != nil {
			return nil, nil, exec.Options{}, err
		}
	}
	return eng, plan, s.Options(), nil
}
