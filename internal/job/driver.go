package job

import (
	"bufio"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
)

// readyTimeout bounds the wait for every daemon to build a job: dataset
// generation is the slow part and scales with Spec.Size.
const readyTimeout = 120 * time.Second

// SpawnPrefix is the line a worker daemon prints once its listener is
// bound; the spawner scans child stdout for it to learn the port.
const SpawnPrefix = "REXNODE_LISTEN="

// Cluster is the driver-side handle on a set of rexnode worker daemons:
// it ships job descriptions, runs queries over the TCP transport, and
// (for daemons it spawned itself) manages the child processes.
type Cluster struct {
	tr    *cluster.TCPTransport
	addrs []string
	procs []*osexec.Cmd

	// Respawn support (SpawnLocal clusters with a data root): the binary
	// and the per-node argument lists — pinned listen address included —
	// that bring a crashed daemon back on the same identity.
	bin         string
	respawnArgs [][]string

	// procMu guards procs/respawn state against concurrent pump-driven
	// recovery and driver-side process control.
	procMu sync.Mutex

	// buildMu guards builds, the driver-side compiled-job cache: Build is
	// deterministic from the encoded spec, so identical consecutive jobs
	// (a prepared statement re-executed, a server replaying cached RQL)
	// reuse the driver's catalog and plan instead of recompiling per run.
	// The daemons still rebuild per job — that is inherent to shipping
	// specs, not text — but the driver-side reparse/replan disappears.
	buildMu sync.Mutex
	builds  map[uint64]*builtJob
}

// builtJob is one cached driver-side Build result; payload is kept to
// rule out hash collisions by comparison.
type builtJob struct {
	payload []byte
	cat     *catalog.Catalog
	plan    *exec.PlanSpec
}

// buildCacheCap bounds the driver cache; on overflow it resets (the
// cache is a recompile saver, not a correctness structure).
const buildCacheCap = 64

// Connect attaches to already-running worker daemons. The address order
// fixes NodeIDs: addrs[i] becomes node i.
func Connect(addrs []string) (*Cluster, error) {
	tr, err := cluster.NewTCPDriver(addrs)
	if err != nil {
		return nil, err
	}
	return &Cluster{tr: tr, addrs: append([]string(nil), addrs...)}, nil
}

// SpawnLocal launches n worker daemons as child processes of the given
// binary (extraArgs must put it in daemon mode, e.g. "-node") on loopback
// ports, then connects to them. Use Close to tear the children down.
func SpawnLocal(n int, bin string, extraArgs []string) (*Cluster, error) {
	return SpawnLocalData(n, bin, extraArgs, "")
}

// SpawnLocalData is SpawnLocal giving each daemon a private data
// directory (dataRoot/node<i>, passed as -data-dir): daemon stores page
// to disk, the active job is persisted, and RespawnProcess can bring a
// SIGKILLed daemon back on the same address and state.
func SpawnLocalData(n int, bin string, extraArgs []string, dataRoot string) (*Cluster, error) {
	var procs []*osexec.Cmd
	var addrs []string
	var respawn [][]string
	fail := func(err error) (*Cluster, error) {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		args := append([]string(nil), extraArgs...)
		if dataRoot != "" {
			args = append(args, "-data-dir", filepath.Join(dataRoot, fmt.Sprintf("node%d", i)))
		}
		cmd := osexec.Command(bin, append(args, "-listen", "127.0.0.1:0")...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("job: spawn %s: %w", bin, err))
		}
		procs = append(procs, cmd)
		addr, err := scanSpawnAddr(stdout)
		if err != nil {
			return fail(fmt.Errorf("job: node %d: %w", i, err))
		}
		addrs = append(addrs, addr)
		// The respawn arg list pins the learned address: the replacement
		// process must come back where its peers expect it.
		respawn = append(respawn, append(args, "-listen", addr))
	}
	c, err := Connect(addrs)
	if err != nil {
		return fail(err)
	}
	c.procs = procs
	c.bin = bin
	if dataRoot != "" {
		c.respawnArgs = respawn
	}
	return c, nil
}

// scanSpawnAddr reads a daemon's stdout until its SpawnPrefix
// announcement, then keeps draining the pipe in the background so the
// child never blocks on it.
func scanSpawnAddr(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); strings.HasPrefix(line, SpawnPrefix) {
			go func() {
				for sc.Scan() {
				}
			}()
			return strings.TrimPrefix(line, SpawnPrefix), nil
		}
	}
	return "", fmt.Errorf("never announced %q", SpawnPrefix)
}

// Transport exposes the underlying TCP driver transport (failure
// injection, metrics).
func (c *Cluster) Transport() *cluster.TCPTransport { return c.tr }

// Addrs lists the worker daemon addresses (index = NodeID).
func (c *Cluster) Addrs() []string { return c.addrs }

// Run ships spec to every daemon, waits until each has built its plan and
// loaded its partition, then executes the query from this process as the
// requestor. tune, when non-nil, adjusts the driver-side options
// (recovery strategy, stratum hooks) before the run; the wire-shared
// options always come from the spec so both sides agree.
func (c *Cluster) Run(spec *Spec, tune func(*exec.Options)) (*exec.Result, error) {
	return c.RunCtx(context.Background(), spec, tune)
}

// RunCtx is Run honoring a context: cancellation aborts the query between
// strata (see exec.Engine.RunCtx) and the cluster stays usable for the
// next run.
func (c *Cluster) RunCtx(ctx context.Context, spec *Spec, tune func(*exec.Options)) (*exec.Result, error) {
	eng, plan, opts, err := c.prepare(ctx, spec, tune, false)
	if err != nil {
		return nil, err
	}
	return eng.RunCtx(ctx, plan, opts)
}

// StreamCtx runs spec in streaming-result mode: the returned stream yields
// each stratum's delta batch as punctuation closes it on every daemon.
func (c *Cluster) StreamCtx(ctx context.Context, spec *Spec, tune func(*exec.Options)) (*exec.ResultStream, error) {
	eng, plan, opts, err := c.prepare(ctx, spec, tune, true)
	if err != nil {
		return nil, err
	}
	return eng.Stream(ctx, plan, opts)
}

// StandingCtx runs spec as a standing query: every daemon keeps its worker
// loop, operator state, and data resident after the initial fixpoint, and
// the returned handle ingests base-table deltas as incremental rounds over
// the sockets (see exec.StandingQuery). On a respawnable cluster
// (SpawnLocalData), crash recovery is installed automatically: a daemon
// whose process dies mid-query is respawned on its persisted state and the
// interrupted round replays (override by setting Options.Recover in tune).
func (c *Cluster) StandingCtx(ctx context.Context, spec *Spec, tune func(*exec.Options)) (*exec.StandingQuery, error) {
	eng, plan, opts, err := c.prepare(ctx, spec, tune, true)
	if err != nil {
		return nil, err
	}
	if opts.Recover == nil && c.Respawnable() {
		opts.Recover = func(victim cluster.NodeID) error {
			return c.RespawnProcess(int(victim))
		}
	}
	return eng.Standing(ctx, plan, opts)
}

// prepare ships the job, waits for every daemon to build it, and returns
// the driver-side engine, plan, and options for the run.
func (c *Cluster) prepare(ctx context.Context, spec *Spec, tune func(*exec.Options), stream bool) (*exec.Engine, *exec.PlanSpec, exec.Options, error) {
	var none exec.Options
	s := *spec
	s.Peers = c.addrs
	s.Nodes = len(c.addrs)
	s.Stream = s.Stream || stream
	s.Normalize()
	payload, err := s.Encode()
	if err != nil {
		return nil, nil, none, err
	}
	// The driver builds the same catalog and plan the daemons do (the
	// generated data is discarded here; daemons load their own), memoized
	// by the encoded spec so repeat executions skip the rebuild.
	cat, plan, err := c.buildCached(payload, &s)
	if err != nil {
		return nil, nil, none, err
	}
	gen, err := c.tr.StartJob(payload)
	if err != nil {
		return nil, nil, none, err
	}
	if err := c.awaitReady(ctx, len(c.addrs), gen); err != nil {
		return nil, nil, none, err
	}
	eng := exec.NewEngineOn(c.tr, s.VNodes, s.Replication, cat)
	opts := s.Options()
	if tune != nil {
		tune(&opts)
	}
	return eng, plan, opts, nil
}

// buildCached returns the driver-side catalog and plan for an encoded
// spec, compiling on first sight. Keying on the full encoded payload is
// what makes reuse safe: any field that could change the build — query
// text, dataset parameters, the replayed ingest log — changes the key.
func (c *Cluster) buildCached(payload []byte, s *Spec) (*catalog.Catalog, *exec.PlanSpec, error) {
	h := fnv.New64a()
	h.Write(payload)
	key := h.Sum64()
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	if b, ok := c.builds[key]; ok && string(b.payload) == string(payload) {
		return b.cat, b.plan, nil
	}
	cat, plan, _, err := s.Build()
	if err != nil {
		return nil, nil, err
	}
	if len(c.builds) >= buildCacheCap {
		c.builds = nil
	}
	if c.builds == nil {
		c.builds = map[uint64]*builtJob{}
	}
	c.builds[key] = &builtJob{payload: append([]byte(nil), payload...), cat: cat, plan: plan}
	return cat, plan, nil
}

// awaitReady drains the requestor mailbox until every daemon acknowledged
// the job generation (or one reported a build error, or ctx expired).
func (c *Cluster) awaitReady(ctx context.Context, n, gen int) error {
	done := make(chan error, 1)
	go func() {
		ready := map[cluster.NodeID]bool{}
		for len(ready) < n {
			msg, ok := c.tr.Requestor().Get()
			if !ok {
				done <- fmt.Errorf("job: transport closed while waiting for workers")
				return
			}
			if msg.Kind != cluster.MsgCancel && msg.Job != gen {
				continue // debris from an earlier, abandoned job
			}
			switch msg.Kind {
			case cluster.MsgJobReady:
				ready[msg.From] = true
			case cluster.MsgError:
				done <- fmt.Errorf("job: node %d: %s", msg.From, msg.Table)
				return
			case cluster.MsgFailure:
				// The transport saw the daemon's connection drop: the
				// process died while building the job.
				done <- fmt.Errorf("job: node %d died while preparing the job", msg.From)
				return
			case cluster.MsgCancel:
				done <- fmt.Errorf("job: wait for workers abandoned")
				return
			}
		}
		done <- nil
	}()
	abandon := func(reason error) error {
		// Unblock the collector so it cannot keep consuming requestor
		// frames that a retry on this cluster would need.
		c.tr.Requestor().Put(cluster.Message{Kind: cluster.MsgCancel})
		<-done
		return reason
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return abandon(ctx.Err())
	case <-time.After(readyTimeout):
		return abandon(fmt.Errorf("job: workers not ready after %v", readyTimeout))
	}
}

// KillProcess SIGKILLs the i-th spawned daemon's OS process — real failure
// injection, unlike Transport().Kill which only tells a healthy daemon to
// play dead. The driver discovers the death through the broken connection
// and surfaces it as a node failure. Only valid on SpawnLocal clusters.
func (c *Cluster) KillProcess(i int) error {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	if i < 0 || i >= len(c.procs) {
		return fmt.Errorf("job: no spawned process %d (cluster spawned %d)", i, len(c.procs))
	}
	return c.procs[i].Process.Kill()
}

// RespawnProcess restarts the i-th spawned daemon after its process died:
// the replacement runs the same binary with the same pinned listen
// address and data directory, restores its persisted job and committed
// store state at boot, and announces the address once it is serving
// again. The driver then marks the node alive — without MsgRevive, which
// is the simulated-death re-arm and would deadlock a daemon whose worker
// loop is already running. Only valid on SpawnLocalData clusters.
func (c *Cluster) RespawnProcess(i int) error {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	if c.respawnArgs == nil {
		return fmt.Errorf("job: respawn needs a cluster spawned with SpawnLocalData")
	}
	if i < 0 || i >= len(c.procs) {
		return fmt.Errorf("job: no spawned process %d (cluster spawned %d)", i, len(c.procs))
	}
	// Reap the corpse so the listen port frees up before the replacement
	// binds it.
	_ = c.procs[i].Process.Kill()
	_ = c.procs[i].Wait()
	cmd := osexec.Command(c.bin, c.respawnArgs[i]...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("job: respawn %s: %w", c.bin, err)
	}
	addr, err := scanSpawnAddr(stdout)
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("job: respawned node %d: %w", i, err)
	}
	if addr != c.addrs[i] {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("job: respawned node %d bound %s, want %s", i, addr, c.addrs[i])
	}
	c.procs[i] = cmd
	c.tr.MarkAlive(cluster.NodeID(i))
	return nil
}

// Respawnable reports whether RespawnProcess can revive this cluster's
// daemons (spawned with SpawnLocalData).
func (c *Cluster) Respawnable() bool {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	return c.respawnArgs != nil
}

// Close shuts down the daemons (sending MsgQuit) and, for spawned
// children, reaps the processes.
func (c *Cluster) Close() {
	c.tr.Quit()
	for _, p := range c.procs {
		donech := make(chan struct{})
		go func(p *osexec.Cmd) {
			_ = p.Wait()
			close(donech)
		}(p)
		select {
		case <-donech:
		case <-time.After(5 * time.Second):
			_ = p.Process.Kill()
			<-donech
		}
	}
}

// ParsePeers splits a comma-separated peer list.
func ParsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
