package job_test

// Vectorization equivalence over real sockets: with compaction off the
// shuffle actually ships columnar frames, so these runs exercise the
// near-zero-copy wire path end to end across OS-process boundaries. The
// result hash must be identical with vectorization on and off, and both
// must match the in-process run of the same spec.

import (
	"testing"

	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/job"
)

func TestVectorizeTCPEquivalence(t *testing.T) {
	const nodes = 3
	cl := startCluster(t, nodes)
	specs := []*job.Spec{
		{Workload: "sssp", Nodes: nodes, Seed: 1, Size: 300, Source: 0,
			Delta: true, MaxIterations: 300},
		{Workload: "pagerank", Nodes: nodes, Seed: 1, Size: 250, Epsilon: 0.001,
			Delta: true, MaxIterations: 60},
	}
	for _, spec := range specs {
		inRes, err := job.RunInProc(clone(spec), nil)
		if err != nil {
			t.Fatalf("inproc %s: %v", spec.Workload, err)
		}
		want := bench.ResultHash(inRes.Tuples)

		vecRes, err := cl.Run(clone(spec), nil)
		if err != nil {
			t.Fatalf("tcp %s (vectorized): %v", spec.Workload, err)
		}
		if got := bench.ResultHash(vecRes.Tuples); got != want {
			t.Errorf("%s: tcp vectorized hash %s != inproc %s", spec.Workload, got, want)
		}

		rowSpec := clone(spec)
		rowSpec.NoVectorize = true
		rowRes, err := cl.Run(rowSpec, nil)
		if err != nil {
			t.Fatalf("tcp %s (row path): %v", spec.Workload, err)
		}
		if got := bench.ResultHash(rowRes.Tuples); got != want {
			t.Errorf("%s: tcp row-path hash %s != inproc %s", spec.Workload, got, want)
		}
	}
}
