// Package catalog holds the metadata REX consults at plan time: table
// definitions (schema, partitioning key, statistics), the registries of
// user-defined scalar functions, aggregators, and delta handlers (the Go
// analogue of the paper's directly-loaded Java classes, §3), plus the
// per-node calibration profile and programmer cost hints the optimizer
// uses for cost estimation (§5).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// ErrUnknownTable is the sentinel wrapped by every table lookup that
// misses, so callers across the stack (sessions, the rexd server, the
// RQL binder) can classify the failure with errors.Is instead of
// matching message text.
var ErrUnknownTable = errors.New("catalog: unknown table")

// Table describes a base relation.
type Table struct {
	Name   string
	Schema *types.Schema
	// PartitionKey is the column index data is hash-partitioned by.
	PartitionKey int
	// Stats available to the optimizer.
	Stats TableStats
}

// TableStats are the offline-computed statistics of §5.
type TableStats struct {
	RowCount int64
	// DistinctKeys estimates the number of distinct partition-key values.
	DistinctKeys int64
	// AvgTupleBytes is the mean encoded tuple size.
	AvgTupleBytes float64
}

// CostHint is a programmer-supplied cost hint for a UDF (§5.1): a "big-O"
// shape combined with calibration to predict per-tuple cost.
type CostHint struct {
	// Shape maps the main input parameter value to a relative cost factor;
	// nil means value-independent cost.
	Shape func(arg types.Value) float64
}

// FuncDef is a registered scalar UDF with its optimizer metadata.
type FuncDef struct {
	Name     string
	ArgKinds []types.Kind
	RetKind  types.Kind
	Fn       expr.ScalarFn
	// Deterministic functions are cached by applyFunction (§5.1).
	Deterministic bool
	// CostPerTuple is the calibrated per-invocation CPU cost (abstract
	// units; filled by Calibrate or set manually).
	CostPerTuple float64
	// Selectivity in (0,1] for predicates; 1 for non-filtering functions.
	Selectivity float64
	// Hint optionally refines CostPerTuple by input value.
	Hint *CostHint
}

// Rank is the predicate-migration rank of [13]: cost per tuple divided by
// (1 - selectivity). Cheap, highly selective predicates rank first.
func (f *FuncDef) Rank() float64 {
	drop := 1 - f.Selectivity
	if drop <= 0 {
		// Non-filtering functions order purely by cost (infinite rank
		// would starve them; use a large but finite rank).
		return f.CostPerTuple * 1e6
	}
	return f.CostPerTuple / drop
}

// AggDef is a registered UDA (table-valued aggregator) plus its optimizer
// metadata from §5.2.
type AggDef struct {
	Name string
	Agg  uda.Aggregator
	// Composable UDAs may be pre-aggregated below arbitrary joins.
	Composable bool
	// MultFn compensates double-sided pre-aggregation on multiplicative
	// joins; nil when not supplied by the user.
	MultFn func(d types.Delta, oppositeCard int) (types.Delta, error)
	// PreAgg is the combiner, when supplied.
	PreAgg uda.Aggregator
}

// Catalog is the central metadata store. It is safe for concurrent use; the
// requestor snapshots it when distributing a query.
type Catalog struct {
	mu            sync.RWMutex
	tables        map[string]*Table
	funcs         map[string]*FuncDef
	aggs          map[string]*AggDef
	joinHandlers  map[string]uda.JoinHandler
	whileHandlers map[string]uda.WhileHandler
	tvfs          map[string]*TVFDef
	calibration   Calibration
	// version counts schema-shaping registrations (tables, routines,
	// handlers). Statistics updates do not bump it: they steer costing,
	// never plan validity, so a plan cache keyed on the version survives
	// ingest-driven stats churn.
	version int64
}

// New creates an empty catalog with default calibration.
func New() *Catalog {
	return &Catalog{
		tables:        map[string]*Table{},
		funcs:         map[string]*FuncDef{},
		aggs:          map[string]*AggDef{},
		joinHandlers:  map[string]uda.JoinHandler{},
		whileHandlers: map[string]uda.WhileHandler{},
		calibration:   DefaultCalibration(),
		version:       1,
	}
}

// Version reports the catalog's schema version: 1 for a fresh catalog,
// bumped by every table, function, aggregator, handler, or TVF
// registration. Compiled-plan caches key on (query text, version) so a
// schema change invalidates every plan compiled against the old shape.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// AddTable registers a base relation. It is an error to re-register a name.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %q already registered", t.Name)
	}
	if t.PartitionKey < 0 || t.PartitionKey >= t.Schema.Len() {
		return fmt.Errorf("catalog: table %q partition key %d out of range", t.Name, t.PartitionKey)
	}
	c.tables[t.Name] = t
	c.version++
	return nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Tables lists registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetStats replaces the statistics of a table.
func (c *Catalog) SetStats(table string, stats TableStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownTable, table)
	}
	t.Stats = stats
	return nil
}

// RegisterFunc registers a scalar UDF. Defaults: selectivity 1,
// cost 1 unit/tuple.
func (c *Catalog) RegisterFunc(f *FuncDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.funcs[f.Name]; dup {
		return fmt.Errorf("catalog: function %q already registered", f.Name)
	}
	if f.Selectivity == 0 {
		f.Selectivity = 1
	}
	if f.CostPerTuple == 0 {
		f.CostPerTuple = 1
	}
	c.funcs[f.Name] = f
	c.version++
	return nil
}

// Func resolves a scalar UDF.
func (c *Catalog) Func(name string) (*FuncDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown function %q", name)
	}
	return f, nil
}

// RegisterAgg registers a UDA.
func (c *Catalog) RegisterAgg(a *AggDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.aggs[a.Name]; dup {
		return fmt.Errorf("catalog: aggregator %q already registered", a.Name)
	}
	c.aggs[a.Name] = a
	c.version++
	return nil
}

// Agg resolves a UDA.
func (c *Catalog) Agg(name string) (*AggDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.aggs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown aggregator %q", name)
	}
	return a, nil
}

// RegisterJoinHandler registers a join-state delta handler.
func (c *Catalog) RegisterJoinHandler(h uda.JoinHandler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.joinHandlers[h.Name()]; dup {
		return fmt.Errorf("catalog: join handler %q already registered", h.Name())
	}
	c.joinHandlers[h.Name()] = h
	c.version++
	return nil
}

// JoinHandler resolves a join-state delta handler.
func (c *Catalog) JoinHandler(name string) (uda.JoinHandler, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.joinHandlers[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown join handler %q", name)
	}
	return h, nil
}

// RegisterWhileHandler registers a while-state delta handler.
func (c *Catalog) RegisterWhileHandler(h uda.WhileHandler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.whileHandlers[h.Name()]; dup {
		return fmt.Errorf("catalog: while handler %q already registered", h.Name())
	}
	c.whileHandlers[h.Name()] = h
	c.version++
	return nil
}

// WhileHandler resolves a while-state delta handler.
func (c *Catalog) WhileHandler(name string) (uda.WhileHandler, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.whileHandlers[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown while handler %q", name)
	}
	return h, nil
}

// Calibration returns the current calibration profile.
func (c *Catalog) Calibration() Calibration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.calibration
}

// SetCalibration installs a calibration profile.
func (c *Catalog) SetCalibration(cal Calibration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calibration = cal
}

// TVFDef is a registered table-valued function: one input delta in, any
// number of deltas out. REX's dependent join passes inputs to table-valued
// functions and combines the results (§4.2); the Hadoop MapWrap wrappers
// are TVFs.
type TVFDef struct {
	Name string
	Out  *types.Schema
	Fn   func(d types.Delta) ([]types.Delta, error)
	// CostPerTuple for the optimizer.
	CostPerTuple float64
	// Productivity is the expected output tuples per input tuple.
	Productivity float64
}

// RegisterTVF registers a table-valued function.
func (c *Catalog) RegisterTVF(f *TVFDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tvfs == nil {
		c.tvfs = map[string]*TVFDef{}
	}
	if _, dup := c.tvfs[f.Name]; dup {
		return fmt.Errorf("catalog: TVF %q already registered", f.Name)
	}
	if f.Productivity == 0 {
		f.Productivity = 1
	}
	if f.CostPerTuple == 0 {
		f.CostPerTuple = 1
	}
	c.tvfs[f.Name] = f
	c.version++
	return nil
}

// TVF resolves a table-valued function.
func (c *Catalog) TVF(name string) (*TVFDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.tvfs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown TVF %q", name)
	}
	return f, nil
}
