package catalog

import "time"

// Calibration is the per-cluster resource profile of §5 ("we assume that
// each node has run an initial calibration that provides the optimizer with
// information about its relative CPU and disk speeds, and all pairwise
// network bandwidths"). Costs are abstract "work units"; the optimizer only
// compares plans, so units cancel out.
type Calibration struct {
	// CPUTuplesPerUnit: tuples one node can process per cost unit.
	CPUTuplesPerUnit float64
	// DiskBytesPerUnit: bytes one node can scan from disk per cost unit.
	DiskBytesPerUnit float64
	// NetBytesPerUnit: bytes one link can ship per cost unit (the minimum
	// pairwise bandwidth — the worst-case completion estimate of §5).
	NetBytesPerUnit float64
	// NodeCPURelative holds per-node relative CPU speeds (1.0 = baseline);
	// empty means homogeneous.
	NodeCPURelative []float64
	// UDFBaseCost is the reflection-call overhead per boxed UDF invocation.
	UDFBaseCost float64
}

// DefaultCalibration is a homogeneous-cluster profile.
func DefaultCalibration() Calibration {
	return Calibration{
		CPUTuplesPerUnit: 100_000,
		DiskBytesPerUnit: 4 << 20,
		NetBytesPerUnit:  1 << 20,
		UDFBaseCost:      2e-5,
	}
}

// SlowestCPU returns the relative speed of the slowest node — the
// worst-case completion estimate the optimizer uses for CPU-bound work.
func (c Calibration) SlowestCPU() float64 {
	slowest := 1.0
	for _, s := range c.NodeCPURelative {
		if s > 0 && s < slowest {
			slowest = s
		}
	}
	return slowest
}

// CalibrationQuery measures the supplied functions against a micro
// workload, mirroring REX's "set of calibration queries plus runtime
// monitoring" (§5.1). It returns the measured per-invocation cost (in cost
// units normalized to CPUTuplesPerUnit).
func (c Calibration) CalibrationQuery(fn func(), iters int) float64 {
	if iters <= 0 {
		iters = 1000
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start).Seconds() / float64(iters)
	// Normalize: one cost unit ≈ the time to process CPUTuplesPerUnit
	// trivial tuples, taken as 1ms of wall clock on the baseline node.
	const unitSeconds = 1e-3
	return elapsed / unitSeconds
}
