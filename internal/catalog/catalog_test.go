package catalog

import (
	"testing"

	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

func testTable(name string) *Table {
	return &Table{
		Name:         name,
		Schema:       types.MustSchema("srcId:Integer", "destId:Integer"),
		PartitionKey: 0,
		Stats:        TableStats{RowCount: 100, DistinctKeys: 10, AvgTupleBytes: 16},
	}
}

func TestTableRegistry(t *testing.T) {
	c := New()
	if err := c.AddTable(testTable("graph")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(testTable("graph")); err == nil {
		t.Fatal("duplicate table must fail")
	}
	bad := testTable("bad")
	bad.PartitionKey = 9
	if err := c.AddTable(bad); err == nil {
		t.Fatal("out-of-range partition key must fail")
	}
	tab, err := c.Table("graph")
	if err != nil || tab.Stats.RowCount != 100 {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if err := c.SetStats("graph", TableStats{RowCount: 7}); err != nil {
		t.Fatal(err)
	}
	if tab, _ := c.Table("graph"); tab.Stats.RowCount != 7 {
		t.Fatal("SetStats not applied")
	}
	if err := c.SetStats("nope", TableStats{}); err == nil {
		t.Fatal("SetStats on unknown table must fail")
	}
	if got := c.Tables(); len(got) != 2 || got[0] != "bad" && got[0] != "graph" {
		// "bad" failed to register, so only graph remains
		if len(got) != 1 || got[0] != "graph" {
			t.Fatalf("Tables() = %v", got)
		}
	}
}

func TestFuncRegistryAndRank(t *testing.T) {
	c := New()
	f := &FuncDef{Name: "f", RetKind: types.KindInt}
	if err := c.RegisterFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterFunc(f); err == nil {
		t.Fatal("duplicate func must fail")
	}
	got, err := c.Func("f")
	if err != nil || got.Selectivity != 1 || got.CostPerTuple != 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if _, err := c.Func("g"); err == nil {
		t.Fatal("unknown func must fail")
	}
	// Rank ordering (§5.1): cheaper or more selective ranks lower.
	cheapSelective := &FuncDef{Name: "a", CostPerTuple: 1, Selectivity: 0.1}
	expensive := &FuncDef{Name: "b", CostPerTuple: 100, Selectivity: 0.1}
	nonFiltering := &FuncDef{Name: "c", CostPerTuple: 1, Selectivity: 1}
	if cheapSelective.Rank() >= expensive.Rank() {
		t.Fatal("cheap selective must rank before expensive")
	}
	if nonFiltering.Rank() <= expensive.Rank() {
		t.Fatal("non-filtering must rank after filtering predicates")
	}
}

func TestHandlerRegistries(t *testing.T) {
	c := New()
	jh := &uda.FuncJoinHandler{HName: "j", Out: types.MustSchema("x:Integer")}
	if err := c.RegisterJoinHandler(jh); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterJoinHandler(jh); err == nil {
		t.Fatal("duplicate join handler must fail")
	}
	if _, err := c.JoinHandler("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.JoinHandler("zzz"); err == nil {
		t.Fatal("unknown join handler must fail")
	}
	wh := &uda.FuncWhileHandler{HName: "w"}
	if err := c.RegisterWhileHandler(wh); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterWhileHandler(wh); err == nil {
		t.Fatal("duplicate while handler must fail")
	}
	if _, err := c.WhileHandler("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WhileHandler("zzz"); err == nil {
		t.Fatal("unknown while handler must fail")
	}
}

type fakeAgg struct{ uda.Aggregator }

func (fakeAgg) Name() string { return "fake" }

func TestAggRegistry(t *testing.T) {
	c := New()
	if err := c.RegisterAgg(&AggDef{Name: "fake", Agg: fakeAgg{}}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAgg(&AggDef{Name: "fake"}); err == nil {
		t.Fatal("duplicate agg must fail")
	}
	if _, err := c.Agg("fake"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Agg("zzz"); err == nil {
		t.Fatal("unknown agg must fail")
	}
}

func TestCalibration(t *testing.T) {
	cal := DefaultCalibration()
	if cal.SlowestCPU() != 1.0 {
		t.Fatal("homogeneous slowest must be 1")
	}
	cal.NodeCPURelative = []float64{1.0, 0.5, 2.0}
	if cal.SlowestCPU() != 0.5 {
		t.Fatal("slowest CPU wrong")
	}
	cost := cal.CalibrationQuery(func() {}, 100)
	if cost < 0 {
		t.Fatal("calibration cost must be non-negative")
	}
	c := New()
	c.SetCalibration(cal)
	if c.Calibration().SlowestCPU() != 0.5 {
		t.Fatal("SetCalibration not applied")
	}
}
