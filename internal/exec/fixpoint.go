package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// fixpointOp is the while/fixpoint operator of §3.2/§4.2: it maintains the
// recursive query's mutable relation keyed by the FIXPOINT BY columns,
// feeds each stratum's Δ set back into the recursive sub-plan, removes
// duplicate derivations (set semantics), and — with a while-state delta
// handler installed — lets user code refine the state in place rather than
// accumulate it (§3.3).
//
// Port 0 receives the base case, port 1 the recursive case. At the end of
// each stratum the operator reports its new-tuple count to the worker,
// which relays the vote to the query requestor; the requestor's decision
// (advance or terminate) arrives via Advance/Finish.
type fixpointOp struct {
	spec *OpSpec
	ctx  *Context

	recursiveOuts outputs
	finalOuts     outputs

	handler uda.WhileHandler
	// buckets holds handler-managed state per key (handler mode).
	buckets map[types.Value]*uda.TupleSet
	// state holds the mutable relation in default set-semantics mode.
	state map[types.Value]types.Tuple

	pending  []types.Delta
	newCount int

	dirty map[types.Value]bool

	// stream enables per-stratum state-change emission: StreamDelta
	// produces each stratum's changelog against emitted (the per-key
	// tuples the stream has asserted so far), and Finish suppresses the
	// final full-state flush — the concatenated stratum batches already
	// fold to it.
	stream  bool
	emitted map[types.Value][]types.Tuple

	// onStratumEnd is the worker callback: checkpoint then vote.
	onStratumEnd func(stratum, newCount int)
}

func newFixpointOp(spec *OpSpec, ctx *Context, handler uda.WhileHandler) *fixpointOp {
	return &fixpointOp{
		spec:    spec,
		ctx:     ctx,
		handler: handler,
		buckets: map[types.Value]*uda.TupleSet{},
		state:   map[types.Value]types.Tuple{},
		dirty:   map[types.Value]bool{},
	}
}

func (f *fixpointOp) Push(port int, batch []types.Delta) error {
	for _, d := range batch {
		key := d.Tup.Key(f.spec.FixpointKey)
		if f.handler != nil {
			b, ok := f.buckets[key]
			if !ok {
				b = &uda.TupleSet{}
				f.buckets[key] = b
			}
			v0 := b.Version()
			res, err := f.handler.Update(b, d)
			if err != nil {
				return fmt.Errorf("exec: while handler %s: %w", f.handler.Name(), err)
			}
			if b.Version() != v0 {
				f.dirty[key] = true
			}
			f.pending = append(f.pending, res...)
			f.newCount += len(res)
			continue
		}
		if err := f.defaultUpdate(key, d); err != nil {
			return err
		}
	}
	return nil
}

// defaultUpdate implements the handler-less semantics: the fixpoint
// "removes duplicate tuples according to a query-specified key, by
// maintaining a set of processed tuples" (§4.2). A tuple whose key exists
// with an identical value is a duplicate derivation and is dropped; a
// different value replaces the stored one and propagates.
func (f *fixpointOp) defaultUpdate(key types.Value, d types.Delta) error {
	existing, ok := f.state[key]
	switch d.Op {
	case types.OpInsert, types.OpUpdate:
		if ok && existing.Equal(d.Tup) {
			return nil // duplicate derivation
		}
		f.state[key] = d.Tup
		f.dirty[key] = true
		if ok {
			f.pending = append(f.pending, types.Replace(existing, d.Tup))
		} else {
			f.pending = append(f.pending, types.Insert(d.Tup))
		}
		f.newCount++
	case types.OpDelete:
		if ok {
			delete(f.state, key)
			f.dirty[key] = true
			f.pending = append(f.pending, types.Delete(existing))
			f.newCount++
		}
	case types.OpReplace:
		if ok && existing.Equal(d.Tup) {
			return nil
		}
		f.state[key] = d.Tup
		f.dirty[key] = true
		if ok {
			f.pending = append(f.pending, types.Replace(existing, d.Tup))
		} else {
			f.pending = append(f.pending, types.Insert(d.Tup))
		}
		f.newCount++
	}
	return nil
}

// Punct ends the stratum: base-case punctuation closes stratum 0, and the
// recursive case closes every later stratum.
func (f *fixpointOp) Punct(port, stratum int, closed bool) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("exec: fixpoint punct port %d out of range", port)
	}
	if f.onStratumEnd != nil {
		f.onStratumEnd(stratum, f.newCount)
	}
	return nil
}

// Advance starts stratum next: the buffered Δ set flows into the recursive
// sub-plan followed by its punctuation. In NoDelta mode the entire mutable
// relation is re-fed instead — re-processing all mutable data each
// iteration, like the non-incremental systems of §6.
func (f *fixpointOp) Advance(next int) error {
	batch := f.pending
	if f.spec.NoDelta {
		batch = batch[:0]
		if f.handler != nil {
			for _, b := range f.buckets {
				for _, t := range b.Tuples {
					batch = append(batch, types.Update(t))
				}
			}
		} else {
			for _, t := range f.state {
				batch = append(batch, types.Update(t))
			}
		}
	}
	f.pending = nil
	f.newCount = 0
	f.ctx.Stratum = next
	if err := f.recursiveOuts.send(batch); err != nil {
		return err
	}
	return f.recursiveOuts.punct(next, false)
}

// Finish emits the final mutable relation and closes the output. In
// streaming mode the relation already reached the requestor as per-stratum
// changelogs, so only the closing punctuation is sent.
func (f *fixpointOp) Finish() error {
	if f.stream {
		return f.finalOuts.punct(f.ctx.Stratum, true)
	}
	var out []types.Delta
	if f.handler != nil {
		for _, b := range f.buckets {
			for _, t := range b.Tuples {
				out = append(out, types.Insert(t))
			}
		}
	} else {
		for _, t := range f.state {
			out = append(out, types.Insert(t))
		}
	}
	const flushChunk = 4096
	for len(out) > 0 {
		n := min(flushChunk, len(out))
		if err := f.finalOuts.send(out[:n]); err != nil {
			return err
		}
		out = out[n:]
	}
	return f.finalOuts.punct(f.ctx.Stratum, true)
}

// PendingCount reports the buffered Δ set size (the restored vote count
// after incremental recovery).
func (f *fixpointOp) PendingCount() int { return len(f.pending) }

// StreamDelta computes the stratum's state-change batch: for every key
// dirtied this stratum, the deltas that revise what the stream has emitted
// so far into the key's current state. It reads (never clears) the dirty
// set — checkpointing still needs it; the worker clears it afterwards via
// ClearDirty. Tuples are cloned into the emitted ledger because handler
// buckets may revise them in place in later strata.
func (f *fixpointOp) StreamDelta() []types.Delta {
	if f.emitted == nil {
		f.emitted = map[types.Value][]types.Tuple{}
	}
	var out []types.Delta
	for key := range f.dirty {
		var cur []types.Tuple
		if f.handler != nil {
			if b := f.buckets[key]; b != nil {
				cur = b.Tuples
			}
		} else if t, ok := f.state[key]; ok {
			cur = []types.Tuple{t}
		}
		prev := f.emitted[key]
		if tuplesEqual(prev, cur) {
			continue // dirtied but settled back to what was emitted
		}
		switch {
		case len(prev) == 1 && len(cur) == 1:
			out = append(out, types.Replace(prev[0], cur[0].Clone()))
		default:
			for _, t := range prev {
				out = append(out, types.Delete(t))
			}
			for _, t := range cur {
				out = append(out, types.Insert(t.Clone()))
			}
		}
		if len(cur) == 0 {
			delete(f.emitted, key)
		} else {
			next := make([]types.Tuple, len(cur))
			for i, t := range cur {
				next[i] = t.Clone()
			}
			f.emitted[key] = next
		}
	}
	return out
}

// ClearDirty resets the per-stratum dirty-key set (streaming path; the
// checkpoint path clears it through DirtyState).
func (f *fixpointOp) ClearDirty() {
	if len(f.dirty) > 0 {
		f.dirty = map[types.Value]bool{}
	}
}

func tuplesEqual(a, b []types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func (f *fixpointOp) Reset() {
	f.buckets = map[types.Value]*uda.TupleSet{}
	f.state = map[types.Value]types.Tuple{}
	f.pending = nil
	f.newCount = 0
	f.dirty = map[types.Value]bool{}
	f.emitted = nil
}

// DirtyState checkpoints (a) the state entries revised this stratum and
// (b) the pending Δ set, which must survive a failure to resume the next
// stratum. Layouts:
//
//	state:   [keyHash, "S", key, fields...]   (tombstone: no fields)
//	pending: [keyHash, "P", op, fields...]
func (f *fixpointOp) DirtyState() []types.Tuple {
	var out []types.Tuple
	for key := range f.dirty {
		h := int64(types.HashValue(key))
		if f.handler != nil {
			b := f.buckets[key]
			if b == nil || b.Len() == 0 {
				out = append(out, types.NewTuple(h, "S", key))
				continue
			}
			for _, t := range b.Tuples {
				out = append(out, append(types.NewTuple(h, "S", key), t...))
			}
			continue
		}
		t, ok := f.state[key]
		if !ok {
			out = append(out, types.NewTuple(h, "S", key))
			continue
		}
		out = append(out, append(types.NewTuple(h, "S", key), t...))
	}
	f.dirty = map[types.Value]bool{}
	for _, d := range f.pending {
		h := int64(d.Tup.HashKey(f.spec.FixpointKey))
		out = append(out, append(types.NewTuple(h, "P", int64(d.Op)), d.Tup...))
	}
	return out
}

// Restore rebuilds state from checkpointed strata in order; pending deltas
// are taken from the final stratum only (earlier strata's Δ sets were
// already consumed by their next stratum).
func (f *fixpointOp) Restore(strata [][]types.Tuple) error {
	for si, entries := range strata {
		last := si == len(strata)-1
		seen := map[types.Value]bool{}
		for _, e := range entries {
			if len(e) < 3 {
				return fmt.Errorf("exec: fixpoint restore: bad entry %v", e)
			}
			tag, _ := e[1].(string)
			switch tag {
			case "S":
				key := e[2]
				if f.handler != nil {
					if !seen[key] {
						seen[key] = true
						f.buckets[key] = &uda.TupleSet{}
					}
					if len(e) > 3 {
						f.buckets[key].Add(e[3:].Clone())
					}
				} else {
					if len(e) > 3 {
						f.state[key] = e[3:].Clone()
					} else {
						delete(f.state, key)
					}
				}
			case "P":
				if !last {
					continue
				}
				op, _ := types.AsInt(e[2])
				f.pending = append(f.pending, types.Delta{Op: types.Op(op), Tup: e[3:].Clone()})
			default:
				return fmt.Errorf("exec: fixpoint restore: unknown tag %v", e[1])
			}
		}
	}
	f.newCount = len(f.pending)
	return nil
}
