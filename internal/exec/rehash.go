package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// rehashOp re-partitions a delta stream across worker nodes by key hash
// (§3.2: "a physical level operator called rehash that is responsible for
// shipping state from one node to another by key"). The send side (port 0)
// buffers batched messages per destination; the receive side (port 1) is
// fed by the worker loop from the transport and aligns punctuation from
// all alive senders before forwarding downstream (§4.2).
//
// With Options.Compaction on, the per-destination buffers are
// cluster.Compactors that coalesce same-key deltas before encoding, and
// flushes observe a credit-based flow-control rule: every shipped batch
// spends one credit from the sender's window to that destination, and a
// flush with an exhausted window is deferred — deltas keep coalescing
// locally instead of flooding a backlogged peer. Receivers size the
// windows from their own inbox depth and piggyback the grants on the
// punctuation frames they already send every stratum, so the same signal
// works in-process and across sockets (where a peer's queue depth is
// unobservable). Punctuation always flushes, and a hard cap bounds
// deferral.
//
// OpBroadcast is the same operator with every batch delivered to every
// node (used when one side of a computation — e.g. K-means centroids —
// must be visible cluster-wide).
type rehashOp struct {
	spec *OpSpec
	ctx  *Context
	outs outputs

	broadcast  bool
	buffers    map[cluster.NodeID][]types.Delta
	compactors map[cluster.NodeID]*cluster.Compactor
	mergeFn    cluster.MergeFunc
	allCols    []int // cached 0..n-1 index for keyless (broadcast) edges
	// vecBuffers are the per-destination pending batches of the columnar
	// path (Vectorize on, compaction off): rows accumulate column-wise in
	// pooled batches and ship as columnar wire frames, so the shuffle hot
	// loop never materializes row deltas. The row and columnar pending
	// stores are mutually exclusive per mode — in vec mode even row-form
	// pushes append into vecBuffers, preserving same-key delta order.
	vecBuffers map[cluster.NodeID]*types.DeltaBatch
	scratch    types.Tuple // reused by multi-column HashKeyAt calls
	// flushedIn tracks each compactor's cumulative added-count at its
	// last flush, so CompactIn/CompactOut metrics are accounted together
	// at flush time (deltas a Reset discards count toward neither).
	flushedIn map[cluster.NodeID]int

	// receive-side punctuation alignment
	punctCount  map[int]int
	closedCount map[int]int
	nSenders    int
	closedFwd   bool
}

// compactionOverflow bounds backpressure deferral: once a compactor holds
// this many batches' worth of deltas it flushes regardless of the
// destination's mailbox depth.
const compactionOverflow = 8

func newRehashOp(spec *OpSpec, ctx *Context, broadcast bool) *rehashOp {
	r := &rehashOp{
		spec:        spec,
		ctx:         ctx,
		broadcast:   broadcast,
		buffers:     map[cluster.NodeID][]types.Delta{},
		punctCount:  map[int]int{},
		closedCount: map[int]int{},
		nSenders:    len(ctx.Snap.AliveNodes()),
	}
	if ctx.Compaction {
		r.compactors = map[cluster.NodeID]*cluster.Compactor{}
		r.flushedIn = map[cluster.NodeID]int{}
		r.mergeFn = compactMergeFn(spec)
	} else if ctx.Vectorize {
		r.vecBuffers = map[cluster.NodeID]*types.DeltaBatch{}
	}
	return r
}

// vec reports whether this rehash runs the columnar send path. Compaction
// wins when both are requested: the compactor coalesces same-key deltas
// row-wise, and a coalesced dictionary frame beats a columnar one on the
// workloads compaction exists for.
func (r *rehashOp) vec() bool { return r.vecBuffers != nil }

func (r *rehashOp) Push(port int, batch []types.Delta) error {
	switch port {
	case 0:
		return r.route(batch)
	case 1:
		// Batch received from a peer (or loopback): hand downstream.
		return r.outs.send(batch)
	default:
		return fmt.Errorf("exec: rehash port %d out of range", port)
	}
}

// PushBatch is the columnar rehash path. Send side: rows are routed by
// key hash computed straight off the typed vectors (no boxing) and copied
// column-wise into per-destination pending batches. Receive side: the
// batch passes downstream as-is. With compaction on, the send side
// materializes rows once and takes the compactor path.
func (r *rehashOp) PushBatch(port int, b *types.DeltaBatch) error {
	switch port {
	case 0:
		if !r.vec() {
			return r.route(b.Deltas())
		}
		return r.routeBatch(b)
	case 1:
		return r.outs.sendBatch(b)
	default:
		return fmt.Errorf("exec: rehash port %d out of range", port)
	}
}

func (r *rehashOp) routeBatch(b *types.DeltaBatch) error {
	if cap(r.scratch) < b.NumCols() {
		r.scratch = make(types.Tuple, 0, b.NumCols())
	}
	for i := 0; i < b.Len(); i++ {
		if r.broadcast {
			for _, n := range r.ctx.Snap.AliveNodes() {
				if err := r.enqueueVecRow(n, b, i); err != nil {
					return err
				}
			}
			continue
		}
		h := b.HashKeyAt(i, r.spec.HashKey, r.scratch)
		dest, err := r.ctx.Snap.Primary(h)
		if err != nil {
			return err
		}
		if b.Op(i) == types.OpReplace && b.HasOld() {
			oh := b.OldHashKeyAt(i, r.spec.HashKey, r.scratch)
			oldDest, err := r.ctx.Snap.Primary(oh)
			if err != nil {
				return err
			}
			if oldDest != dest {
				// Cross-partition replace: split into a deletion at the
				// old home and an insertion at the new one. The scratch
				// rows are copied value-wise by enqueueVecDelta, never
				// retained.
				r.scratch = b.OldRow(i, r.scratch)
				if err := r.enqueueVecDelta(oldDest, types.Delete(r.scratch)); err != nil {
					return err
				}
				r.scratch = b.Row(i, r.scratch)
				if err := r.enqueueVecDelta(dest, types.Insert(r.scratch)); err != nil {
					return err
				}
				continue
			}
		}
		if err := r.enqueueVecRow(dest, b, i); err != nil {
			return err
		}
	}
	return nil
}

// enqueueVecRow appends row i of src to dest's pending columnar batch,
// flushing first when the batch is full or the row's arity diverges.
func (r *rehashOp) enqueueVecRow(dest cluster.NodeID, src *types.DeltaBatch, i int) error {
	vb := r.vecBuffer(dest)
	if !vb.CanAppendRowFrom(src, i) {
		if err := r.flushVec(dest); err != nil {
			return err
		}
	}
	vb.AppendRowFrom(src, i)
	if vb.Len() >= r.ctx.BatchSize {
		return r.flushVec(dest)
	}
	return nil
}

// enqueueVecDelta is enqueueVecRow for a row-form delta (the vec-mode
// landing point of Push and of the replace split).
func (r *rehashOp) enqueueVecDelta(dest cluster.NodeID, d types.Delta) error {
	vb := r.vecBuffer(dest)
	if !vb.CanAppend(d) {
		if err := r.flushVec(dest); err != nil {
			return err
		}
	}
	vb.Append(d)
	if vb.Len() >= r.ctx.BatchSize {
		return r.flushVec(dest)
	}
	return nil
}

func (r *rehashOp) vecBuffer(dest cluster.NodeID) *types.DeltaBatch {
	vb := r.vecBuffers[dest]
	if vb == nil {
		vb = types.GetBatch()
		r.vecBuffers[dest] = vb
	}
	return vb
}

// flushVec ships dest's pending columnar batch: loopback hands it straight
// downstream; remote destinations encode the columnar wire format into a
// pooled payload buffer (returned to the pool once Send has copied it into
// the frame) and keep the batch for reuse.
func (r *rehashOp) flushVec(dest cluster.NodeID) error {
	vb := r.vecBuffers[dest]
	if vb == nil || vb.Len() == 0 {
		return nil
	}
	if dest == r.ctx.Node {
		err := r.outs.sendBatch(vb)
		vb.Reset()
		return err
	}
	buf := cluster.GetPayloadBuf()
	payload := cluster.EncodeDeltaBatch(buf, vb)
	r.ctx.Transport.Send(cluster.Message{
		From: r.ctx.Node, To: dest, Edge: edgeID(r.spec.ID, 1),
		Stratum: r.ctx.Stratum, Kind: cluster.MsgData,
		Payload: payload, Count: vb.Len(), Epoch: r.ctx.Epoch,
	})
	cluster.PutPayloadBuf(payload)
	vb.Reset()
	return nil
}

func (r *rehashOp) route(batch []types.Delta) error {
	for _, d := range batch {
		if r.broadcast {
			for _, n := range r.ctx.Snap.AliveNodes() {
				if err := r.enqueue(n, d); err != nil {
					return err
				}
			}
			continue
		}
		dest, err := r.destFor(d.Tup)
		if err != nil {
			return err
		}
		if d.Op == types.OpReplace {
			oldDest, err := r.destFor(d.Old)
			if err != nil {
				return err
			}
			if oldDest != dest {
				// The replacement moves the tuple across partitions:
				// split into a deletion at the old home and an insertion
				// at the new one.
				if err := r.enqueue(oldDest, types.Delete(d.Old)); err != nil {
					return err
				}
				if err := r.enqueue(dest, types.Insert(d.Tup)); err != nil {
					return err
				}
				continue
			}
		}
		if err := r.enqueue(dest, d); err != nil {
			return err
		}
	}
	return nil
}

func (r *rehashOp) destFor(t types.Tuple) (cluster.NodeID, error) {
	h := t.HashKey(r.spec.HashKey)
	return r.ctx.Snap.Primary(h)
}

// routingKey is the compactor's same-key test: the rehash key columns, or
// the whole tuple for broadcast edges (which have no hash key).
func (r *rehashOp) routingKey(t types.Tuple) types.Value {
	if len(r.spec.HashKey) > 0 {
		return t.Key(r.spec.HashKey)
	}
	for len(r.allCols) < len(t) {
		r.allCols = append(r.allCols, len(r.allCols))
	}
	return t.Key(r.allCols[:len(t)])
}

func (r *rehashOp) enqueue(dest cluster.NodeID, d types.Delta) error {
	if r.vec() {
		// Row-form deltas reaching a vectorized rehash (a non-vector
		// upstream, or the replace split) land in the same per-dest
		// columnar batches so same-key delta order is preserved.
		return r.enqueueVecDelta(dest, d)
	}
	if r.compactors != nil {
		c := r.compactors[dest]
		if c == nil {
			c = cluster.NewCompactor(r.routingKey, r.mergeFn)
			r.compactors[dest] = c
		}
		c.Add(d)
		// Probe the flush condition only when the buffer crosses a batch
		// boundary: under backpressure deferral the buffer sits above
		// BatchSize for a while, and per-delta credit probes would
		// serialize every sender on the credit-book mutex.
		if b := c.Buffered(); b >= r.ctx.BatchSize && b%r.ctx.BatchSize == 0 && r.shouldFlush(dest, b) {
			return r.flush(dest)
		}
		return nil
	}
	r.buffers[dest] = append(r.buffers[dest], d)
	if len(r.buffers[dest]) >= r.ctx.BatchSize {
		return r.flush(dest)
	}
	return nil
}

// shouldFlush is the flow-control rule: a full buffer flushes while the
// sender still holds send credits for the destination; with the window
// exhausted it holds back (coalescing more) until the next grant or the
// hard cap.
func (r *rehashOp) shouldFlush(dest cluster.NodeID, buffered int) bool {
	if dest == r.ctx.Node {
		return true // loopback: no flow control
	}
	if buffered >= r.ctx.BatchSize*compactionOverflow {
		return true
	}
	return r.ctx.Transport.Credits(r.ctx.Node, dest) > 0
}

func (r *rehashOp) flush(dest cluster.NodeID) error {
	var batch []types.Delta
	if r.compactors != nil {
		c := r.compactors[dest]
		if c == nil {
			return nil
		}
		batch = c.Drain()
		added, _, _ := c.Stats()
		m := r.ctx.Transport.Metrics()
		m.CompactIn[r.ctx.Node].Add(int64(added - r.flushedIn[dest]))
		m.CompactOut[r.ctx.Node].Add(int64(len(batch)))
		r.flushedIn[dest] = added
	} else {
		batch = r.buffers[dest]
		r.buffers[dest] = nil
	}
	if len(batch) == 0 {
		return nil
	}
	if dest == r.ctx.Node {
		// Loopback: deliver synchronously, skipping the wire.
		return r.Push(1, batch)
	}
	if r.compactors != nil {
		// Every shipped batch spends one credit from this sender's window
		// to the destination (an overflow-forced flush may overdraw to
		// zero). Only compacting senders gate on credits, so the plain
		// path skips the book entirely.
		r.ctx.Transport.SpendCredits(r.ctx.Node, dest, 1)
	}
	r.ctx.Transport.SendData(r.ctx.Node, dest, edgeID(r.spec.ID, 1),
		r.ctx.Stratum, r.ctx.Epoch, batch)
	return nil
}

func (r *rehashOp) flushAll() error {
	for dest := range r.buffers {
		if err := r.flush(dest); err != nil {
			return err
		}
	}
	for dest := range r.compactors {
		if err := r.flush(dest); err != nil {
			return err
		}
	}
	for dest := range r.vecBuffers {
		if err := r.flushVec(dest); err != nil {
			return err
		}
	}
	return nil
}

func (r *rehashOp) Punct(port, stratum int, closed bool) error {
	switch port {
	case 0:
		// Local upstream finished the stratum: flush everything, then tell
		// every peer (and ourselves) so receivers can align. When
		// compaction is on — the only mode whose senders consult credits —
		// each outgoing punctuation piggybacks a grant sized from this
		// node's OWN inbox depth: a drained inbox re-arms the peer's full
		// window, a backlogged one shrinks it toward zero, and the peer's
		// sender defers flushes (coalescing more) until the window
		// refreshes.
		if err := r.flushAll(); err != nil {
			return err
		}
		grant := 0
		if r.ctx.Compaction {
			// Adaptive window: size the grant from this node's measured
			// drain rate (how many batches it expects to absorb over the
			// next horizon), falling back to the static high-water constant
			// until the meter has a sample, then subtract the backlog
			// already sitting in the inbox.
			window := r.ctx.CompactionHighWater
			if r.ctx.Drain != nil {
				window = r.ctx.Drain.Window(r.ctx.BatchSize, r.ctx.CompactionHighWater)
			}
			grant = window - r.ctx.Transport.InboxLen(r.ctx.Node)
			if grant < 0 {
				grant = 0
			}
		}
		for _, n := range r.ctx.Snap.AliveNodes() {
			if n == r.ctx.Node {
				if err := r.Punct(1, stratum, closed); err != nil {
					return err
				}
				continue
			}
			r.ctx.Transport.Send(cluster.Message{
				From: r.ctx.Node, To: n,
				Edge: edgeID(r.spec.ID, 1), Kind: cluster.MsgPunct,
				Stratum: stratum, Closed: closed, Epoch: r.ctx.Epoch,
				CreditGrant: r.ctx.Compaction, Credits: grant,
			})
		}
		return nil
	case 1:
		r.punctCount[stratum]++
		if closed {
			r.closedCount[stratum]++
		}
		if r.punctCount[stratum] < r.nSenders {
			return nil
		}
		allClosed := r.closedCount[stratum] == r.nSenders
		delete(r.punctCount, stratum)
		delete(r.closedCount, stratum)
		return r.outs.punct(stratum, allClosed)
	default:
		return fmt.Errorf("exec: rehash punct port %d out of range", port)
	}
}

func (r *rehashOp) Reset() {
	r.buffers = map[cluster.NodeID][]types.Delta{}
	if r.ctx.Compaction {
		r.compactors = map[cluster.NodeID]*cluster.Compactor{}
		r.flushedIn = map[cluster.NodeID]int{}
	}
	if r.vecBuffers != nil {
		for _, vb := range r.vecBuffers {
			types.PutBatch(vb)
		}
		r.vecBuffers = map[cluster.NodeID]*types.DeltaBatch{}
	}
	r.punctCount = map[int]int{}
	r.closedCount = map[int]int{}
	r.nSenders = len(r.ctx.Snap.AliveNodes())
	r.closedFwd = false
}

// compactMergeFn builds the compactor's δ-merge function from the spec's
// CompactMerge declarations, or nil when none are declared.
func compactMergeFn(spec *OpSpec) cluster.MergeFunc {
	if len(spec.CompactMerge) == 0 {
		return nil
	}
	isKey := map[int]bool{}
	for _, c := range spec.HashKey {
		isKey[c] = true
	}
	return func(a, b types.Delta) (types.Delta, bool) {
		if len(a.Tup) != len(b.Tup) {
			return a, false
		}
		out := a.Tup.Clone()
		for i := range out {
			if isKey[i] {
				continue // same routing key by construction
			}
			fn, declared := spec.CompactMerge[i]
			if !declared {
				if !types.ValueEq(a.Tup[i], b.Tup[i]) {
					return a, false
				}
				continue
			}
			m, ok := mergeColumn(fn, a.Tup[i], b.Tup[i])
			if !ok {
				return a, false
			}
			out[i] = m
		}
		return types.Update(out), true
	}
}

// mergeColumn folds two column values with the declared aggregate.
func mergeColumn(fn string, a, b types.Value) (types.Value, bool) {
	switch fn {
	case "sum":
		if ai, ok := a.(int64); ok {
			if bi, ok := b.(int64); ok {
				return ai + bi, true
			}
		}
		af, aok := types.AsFloat(a)
		bf, bok := types.AsFloat(b)
		if !aok || !bok {
			return nil, false
		}
		return af + bf, true
	case "min":
		if types.ValueCompare(a, b) <= 0 {
			return a, true
		}
		return b, true
	case "max":
		if types.ValueCompare(a, b) >= 0 {
			return a, true
		}
		return b, true
	default:
		return nil, false
	}
}
