package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// rehashOp re-partitions a delta stream across worker nodes by key hash
// (§3.2: "a physical level operator called rehash that is responsible for
// shipping state from one node to another by key"). The send side (port 0)
// buffers batched messages per destination; the receive side (port 1) is
// fed by the worker loop from the transport and aligns punctuation from
// all alive senders before forwarding downstream (§4.2).
//
// OpBroadcast is the same operator with every batch delivered to every
// node (used when one side of a computation — e.g. K-means centroids —
// must be visible cluster-wide).
type rehashOp struct {
	spec *OpSpec
	ctx  *Context
	outs outputs

	broadcast bool
	buffers   map[cluster.NodeID][]types.Delta

	// receive-side punctuation alignment
	punctCount  map[int]int
	closedCount map[int]int
	nSenders    int
	closedFwd   bool
}

func newRehashOp(spec *OpSpec, ctx *Context, broadcast bool) *rehashOp {
	return &rehashOp{
		spec:        spec,
		ctx:         ctx,
		broadcast:   broadcast,
		buffers:     map[cluster.NodeID][]types.Delta{},
		punctCount:  map[int]int{},
		closedCount: map[int]int{},
		nSenders:    len(ctx.Snap.AliveNodes()),
	}
}

func (r *rehashOp) Push(port int, batch []types.Delta) error {
	switch port {
	case 0:
		return r.route(batch)
	case 1:
		// Batch received from a peer (or loopback): hand downstream.
		return r.outs.send(batch)
	default:
		return fmt.Errorf("exec: rehash port %d out of range", port)
	}
}

func (r *rehashOp) route(batch []types.Delta) error {
	for _, d := range batch {
		if r.broadcast {
			for _, n := range r.ctx.Snap.AliveNodes() {
				if err := r.enqueue(n, d); err != nil {
					return err
				}
			}
			continue
		}
		dest, err := r.destFor(d.Tup)
		if err != nil {
			return err
		}
		if d.Op == types.OpReplace {
			oldDest, err := r.destFor(d.Old)
			if err != nil {
				return err
			}
			if oldDest != dest {
				// The replacement moves the tuple across partitions:
				// split into a deletion at the old home and an insertion
				// at the new one.
				if err := r.enqueue(oldDest, types.Delete(d.Old)); err != nil {
					return err
				}
				if err := r.enqueue(dest, types.Insert(d.Tup)); err != nil {
					return err
				}
				continue
			}
		}
		if err := r.enqueue(dest, d); err != nil {
			return err
		}
	}
	return nil
}

func (r *rehashOp) destFor(t types.Tuple) (cluster.NodeID, error) {
	h := t.HashKey(r.spec.HashKey)
	return r.ctx.Snap.Primary(h)
}

func (r *rehashOp) enqueue(dest cluster.NodeID, d types.Delta) error {
	r.buffers[dest] = append(r.buffers[dest], d)
	if len(r.buffers[dest]) >= r.ctx.BatchSize {
		return r.flush(dest)
	}
	return nil
}

func (r *rehashOp) flush(dest cluster.NodeID) error {
	batch := r.buffers[dest]
	if len(batch) == 0 {
		return nil
	}
	r.buffers[dest] = nil
	if dest == r.ctx.Node {
		// Loopback: deliver synchronously, skipping the wire.
		return r.Push(1, batch)
	}
	payload := types.EncodeBatch(batch)
	r.ctx.Transport.Send(cluster.Message{
		From: r.ctx.Node, To: dest,
		Edge: edgeID(r.spec.ID, 1), Kind: cluster.MsgData,
		Payload: payload, Count: len(batch), Epoch: r.ctx.Epoch,
		Stratum: r.ctx.Stratum,
	})
	return nil
}

func (r *rehashOp) Punct(port, stratum int, closed bool) error {
	switch port {
	case 0:
		// Local upstream finished the stratum: flush everything, then tell
		// every peer (and ourselves) so receivers can align.
		for dest := range r.buffers {
			if err := r.flush(dest); err != nil {
				return err
			}
		}
		for _, n := range r.ctx.Snap.AliveNodes() {
			if n == r.ctx.Node {
				if err := r.Punct(1, stratum, closed); err != nil {
					return err
				}
				continue
			}
			r.ctx.Transport.Send(cluster.Message{
				From: r.ctx.Node, To: n,
				Edge: edgeID(r.spec.ID, 1), Kind: cluster.MsgPunct,
				Stratum: stratum, Closed: closed, Epoch: r.ctx.Epoch,
			})
		}
		return nil
	case 1:
		r.punctCount[stratum]++
		if closed {
			r.closedCount[stratum]++
		}
		if r.punctCount[stratum] < r.nSenders {
			return nil
		}
		allClosed := r.closedCount[stratum] == r.nSenders
		delete(r.punctCount, stratum)
		delete(r.closedCount, stratum)
		return r.outs.punct(stratum, allClosed)
	default:
		return fmt.Errorf("exec: rehash punct port %d out of range", port)
	}
}

func (r *rehashOp) Reset() {
	r.buffers = map[cluster.NodeID][]types.Delta{}
	r.punctCount = map[int]int{}
	r.closedCount = map[int]int{}
	r.nSenders = len(r.ctx.Snap.AliveNodes())
	r.closedFwd = false
}
