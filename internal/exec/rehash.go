package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// rehashOp re-partitions a delta stream across worker nodes by key hash
// (§3.2: "a physical level operator called rehash that is responsible for
// shipping state from one node to another by key"). The send side (port 0)
// buffers batched messages per destination; the receive side (port 1) is
// fed by the worker loop from the transport and aligns punctuation from
// all alive senders before forwarding downstream (§4.2).
//
// With Options.Compaction on, the per-destination buffers are
// cluster.Compactors that coalesce same-key deltas before encoding, and
// flushes observe a credit-based flow-control rule: every shipped batch
// spends one credit from the sender's window to that destination, and a
// flush with an exhausted window is deferred — deltas keep coalescing
// locally instead of flooding a backlogged peer. Receivers size the
// windows from their own inbox depth and piggyback the grants on the
// punctuation frames they already send every stratum, so the same signal
// works in-process and across sockets (where a peer's queue depth is
// unobservable). Punctuation always flushes, and a hard cap bounds
// deferral.
//
// OpBroadcast is the same operator with every batch delivered to every
// node (used when one side of a computation — e.g. K-means centroids —
// must be visible cluster-wide).
type rehashOp struct {
	spec *OpSpec
	ctx  *Context
	outs outputs

	broadcast  bool
	buffers    map[cluster.NodeID][]types.Delta
	compactors map[cluster.NodeID]*cluster.Compactor
	mergeFn    cluster.MergeFunc
	allCols    []int // cached 0..n-1 index for keyless (broadcast) edges
	// flushedIn tracks each compactor's cumulative added-count at its
	// last flush, so CompactIn/CompactOut metrics are accounted together
	// at flush time (deltas a Reset discards count toward neither).
	flushedIn map[cluster.NodeID]int

	// receive-side punctuation alignment
	punctCount  map[int]int
	closedCount map[int]int
	nSenders    int
	closedFwd   bool
}

// compactionOverflow bounds backpressure deferral: once a compactor holds
// this many batches' worth of deltas it flushes regardless of the
// destination's mailbox depth.
const compactionOverflow = 8

func newRehashOp(spec *OpSpec, ctx *Context, broadcast bool) *rehashOp {
	r := &rehashOp{
		spec:        spec,
		ctx:         ctx,
		broadcast:   broadcast,
		buffers:     map[cluster.NodeID][]types.Delta{},
		punctCount:  map[int]int{},
		closedCount: map[int]int{},
		nSenders:    len(ctx.Snap.AliveNodes()),
	}
	if ctx.Compaction {
		r.compactors = map[cluster.NodeID]*cluster.Compactor{}
		r.flushedIn = map[cluster.NodeID]int{}
		r.mergeFn = compactMergeFn(spec)
	}
	return r
}

func (r *rehashOp) Push(port int, batch []types.Delta) error {
	switch port {
	case 0:
		return r.route(batch)
	case 1:
		// Batch received from a peer (or loopback): hand downstream.
		return r.outs.send(batch)
	default:
		return fmt.Errorf("exec: rehash port %d out of range", port)
	}
}

func (r *rehashOp) route(batch []types.Delta) error {
	for _, d := range batch {
		if r.broadcast {
			for _, n := range r.ctx.Snap.AliveNodes() {
				if err := r.enqueue(n, d); err != nil {
					return err
				}
			}
			continue
		}
		dest, err := r.destFor(d.Tup)
		if err != nil {
			return err
		}
		if d.Op == types.OpReplace {
			oldDest, err := r.destFor(d.Old)
			if err != nil {
				return err
			}
			if oldDest != dest {
				// The replacement moves the tuple across partitions:
				// split into a deletion at the old home and an insertion
				// at the new one.
				if err := r.enqueue(oldDest, types.Delete(d.Old)); err != nil {
					return err
				}
				if err := r.enqueue(dest, types.Insert(d.Tup)); err != nil {
					return err
				}
				continue
			}
		}
		if err := r.enqueue(dest, d); err != nil {
			return err
		}
	}
	return nil
}

func (r *rehashOp) destFor(t types.Tuple) (cluster.NodeID, error) {
	h := t.HashKey(r.spec.HashKey)
	return r.ctx.Snap.Primary(h)
}

// routingKey is the compactor's same-key test: the rehash key columns, or
// the whole tuple for broadcast edges (which have no hash key).
func (r *rehashOp) routingKey(t types.Tuple) types.Value {
	if len(r.spec.HashKey) > 0 {
		return t.Key(r.spec.HashKey)
	}
	for len(r.allCols) < len(t) {
		r.allCols = append(r.allCols, len(r.allCols))
	}
	return t.Key(r.allCols[:len(t)])
}

func (r *rehashOp) enqueue(dest cluster.NodeID, d types.Delta) error {
	if r.compactors != nil {
		c := r.compactors[dest]
		if c == nil {
			c = cluster.NewCompactor(r.routingKey, r.mergeFn)
			r.compactors[dest] = c
		}
		c.Add(d)
		// Probe the flush condition only when the buffer crosses a batch
		// boundary: under backpressure deferral the buffer sits above
		// BatchSize for a while, and per-delta credit probes would
		// serialize every sender on the credit-book mutex.
		if b := c.Buffered(); b >= r.ctx.BatchSize && b%r.ctx.BatchSize == 0 && r.shouldFlush(dest, b) {
			return r.flush(dest)
		}
		return nil
	}
	r.buffers[dest] = append(r.buffers[dest], d)
	if len(r.buffers[dest]) >= r.ctx.BatchSize {
		return r.flush(dest)
	}
	return nil
}

// shouldFlush is the flow-control rule: a full buffer flushes while the
// sender still holds send credits for the destination; with the window
// exhausted it holds back (coalescing more) until the next grant or the
// hard cap.
func (r *rehashOp) shouldFlush(dest cluster.NodeID, buffered int) bool {
	if dest == r.ctx.Node {
		return true // loopback: no flow control
	}
	if buffered >= r.ctx.BatchSize*compactionOverflow {
		return true
	}
	return r.ctx.Transport.Credits(r.ctx.Node, dest) > 0
}

func (r *rehashOp) flush(dest cluster.NodeID) error {
	var batch []types.Delta
	if r.compactors != nil {
		c := r.compactors[dest]
		if c == nil {
			return nil
		}
		batch = c.Drain()
		added, _, _ := c.Stats()
		m := r.ctx.Transport.Metrics()
		m.CompactIn[r.ctx.Node].Add(int64(added - r.flushedIn[dest]))
		m.CompactOut[r.ctx.Node].Add(int64(len(batch)))
		r.flushedIn[dest] = added
	} else {
		batch = r.buffers[dest]
		r.buffers[dest] = nil
	}
	if len(batch) == 0 {
		return nil
	}
	if dest == r.ctx.Node {
		// Loopback: deliver synchronously, skipping the wire.
		return r.Push(1, batch)
	}
	if r.compactors != nil {
		// Every shipped batch spends one credit from this sender's window
		// to the destination (an overflow-forced flush may overdraw to
		// zero). Only compacting senders gate on credits, so the plain
		// path skips the book entirely.
		r.ctx.Transport.SpendCredits(r.ctx.Node, dest, 1)
	}
	r.ctx.Transport.SendData(r.ctx.Node, dest, edgeID(r.spec.ID, 1),
		r.ctx.Stratum, r.ctx.Epoch, batch)
	return nil
}

func (r *rehashOp) flushAll() error {
	for dest := range r.buffers {
		if err := r.flush(dest); err != nil {
			return err
		}
	}
	for dest := range r.compactors {
		if err := r.flush(dest); err != nil {
			return err
		}
	}
	return nil
}

func (r *rehashOp) Punct(port, stratum int, closed bool) error {
	switch port {
	case 0:
		// Local upstream finished the stratum: flush everything, then tell
		// every peer (and ourselves) so receivers can align. When
		// compaction is on — the only mode whose senders consult credits —
		// each outgoing punctuation piggybacks a grant sized from this
		// node's OWN inbox depth: a drained inbox re-arms the peer's full
		// window, a backlogged one shrinks it toward zero, and the peer's
		// sender defers flushes (coalescing more) until the window
		// refreshes.
		if err := r.flushAll(); err != nil {
			return err
		}
		grant := 0
		if r.ctx.Compaction {
			grant = r.ctx.CompactionHighWater - r.ctx.Transport.InboxLen(r.ctx.Node)
			if grant < 0 {
				grant = 0
			}
		}
		for _, n := range r.ctx.Snap.AliveNodes() {
			if n == r.ctx.Node {
				if err := r.Punct(1, stratum, closed); err != nil {
					return err
				}
				continue
			}
			r.ctx.Transport.Send(cluster.Message{
				From: r.ctx.Node, To: n,
				Edge: edgeID(r.spec.ID, 1), Kind: cluster.MsgPunct,
				Stratum: stratum, Closed: closed, Epoch: r.ctx.Epoch,
				CreditGrant: r.ctx.Compaction, Credits: grant,
			})
		}
		return nil
	case 1:
		r.punctCount[stratum]++
		if closed {
			r.closedCount[stratum]++
		}
		if r.punctCount[stratum] < r.nSenders {
			return nil
		}
		allClosed := r.closedCount[stratum] == r.nSenders
		delete(r.punctCount, stratum)
		delete(r.closedCount, stratum)
		return r.outs.punct(stratum, allClosed)
	default:
		return fmt.Errorf("exec: rehash punct port %d out of range", port)
	}
}

func (r *rehashOp) Reset() {
	r.buffers = map[cluster.NodeID][]types.Delta{}
	if r.ctx.Compaction {
		r.compactors = map[cluster.NodeID]*cluster.Compactor{}
		r.flushedIn = map[cluster.NodeID]int{}
	}
	r.punctCount = map[int]int{}
	r.closedCount = map[int]int{}
	r.nSenders = len(r.ctx.Snap.AliveNodes())
	r.closedFwd = false
}

// compactMergeFn builds the compactor's δ-merge function from the spec's
// CompactMerge declarations, or nil when none are declared.
func compactMergeFn(spec *OpSpec) cluster.MergeFunc {
	if len(spec.CompactMerge) == 0 {
		return nil
	}
	isKey := map[int]bool{}
	for _, c := range spec.HashKey {
		isKey[c] = true
	}
	return func(a, b types.Delta) (types.Delta, bool) {
		if len(a.Tup) != len(b.Tup) {
			return a, false
		}
		out := a.Tup.Clone()
		for i := range out {
			if isKey[i] {
				continue // same routing key by construction
			}
			fn, declared := spec.CompactMerge[i]
			if !declared {
				if !types.ValueEq(a.Tup[i], b.Tup[i]) {
					return a, false
				}
				continue
			}
			m, ok := mergeColumn(fn, a.Tup[i], b.Tup[i])
			if !ok {
				return a, false
			}
			out[i] = m
		}
		return types.Update(out), true
	}
}

// mergeColumn folds two column values with the declared aggregate.
func mergeColumn(fn string, a, b types.Value) (types.Value, bool) {
	switch fn {
	case "sum":
		if ai, ok := a.(int64); ok {
			if bi, ok := b.(int64); ok {
				return ai + bi, true
			}
		}
		af, aok := types.AsFloat(a)
		bf, bok := types.AsFloat(b)
		if !aok || !bok {
			return nil, false
		}
		return af + bf, true
	case "min":
		if types.ValueCompare(a, b) <= 0 {
			return a, true
		}
		return b, true
	case "max":
		if types.ValueCompare(a, b) >= 0 {
			return a, true
		}
		return b, true
	default:
		return nil, false
	}
}
