package exec

import (
	"context"
	"sync"
)

// StreamFeeder is the producer half of a remotely-fed ResultStream: the
// consumer half behaves exactly like an engine-produced stream (Next,
// Seq, Drain, Close), while the batches arrive from outside the engine —
// the client side of a server-routed query, where frames decoded off a
// socket are pushed in and the run's terminal result follows them.
type StreamFeeder struct {
	s    *ResultStream
	once sync.Once
}

// NewRemoteStream builds a ResultStream not backed by a local run. The
// feeder pushes delta batches — never blocking; the buffer is the same
// unbounded spool standing queries use — and Finish ends the stream with
// the run's result or error. Closing the returned stream cancels its
// context; onClose, when non-nil, observes that cancellation exactly
// once if it happens before Finish (the client uses it to send the
// server a cancel frame). The stream's Done channel closes only when
// Finish is called, so the feeding side must guarantee a Finish on every
// path, including connection teardown.
func NewRemoteStream(onClose func()) (*ResultStream, *StreamFeeder) {
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &ResultStream{
		src:    newSpool(),
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	if onClose != nil {
		go func() {
			<-ctx.Done()
			select {
			case <-s.done:
				// Finished first: nothing left to cancel remotely.
			default:
				onClose()
			}
		}()
	}
	return s, &StreamFeeder{s: s}
}

// Push appends a batch to the stream. It never blocks; batches pushed
// after Finish are dropped (the spool is closed).
func (f *StreamFeeder) Push(b StreamBatch) { f.s.src.push(b) }

// Finish ends the stream: res carries the completed run's statistics
// (required on success — Drain dereferences it), err its terminal error.
// Buffered batches remain readable; Next reports false once they are
// drained. Finish is idempotent; only the first call takes effect.
func (f *StreamFeeder) Finish(res *Result, err error) {
	f.once.Do(func() {
		f.s.res, f.s.err = res, err
		// done before the spool closes, mirroring Engine.Stream: a reader
		// unblocked by the close may immediately call Err/Result.
		close(f.s.done)
		f.s.src.close()
		f.s.cancel(nil)
	})
}
