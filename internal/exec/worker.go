package exec

import (
	"fmt"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// Worker is one node's query-execution event loop. All operator calls run
// on the Loop goroutine, so operator state is single-threaded by
// construction. The engine spawns one per local node; a worker daemon
// (cmd/rexnode) builds one per job over its TCP transport.
type Worker struct {
	node        cluster.NodeID
	transport   cluster.Transport
	store       storage.Backend
	durable     storage.Durable // non-nil when store survives process death
	ckpt        *storage.CheckpointStore
	cat         *catalog.Catalog
	ring        *cluster.Ring
	spec        *PlanSpec
	queryID     string
	batchSize   int
	checkpoints bool
	compaction  bool
	highWater   int
	stream      bool
	vectorize   bool

	// drain meters this worker's delta-application rate between
	// punctuation marks; credit grants (shuffle punctuation and MsgIngest
	// acks) are sized from it.
	drain *cluster.DrainMeter

	// per-epoch state, rebuilt on MsgStart
	ctx      *Context
	ops      map[int]Operator
	scans    []*scanOp
	baseScan map[int]bool
	fixpoint *fixpointOp
	ckptOps  map[int]checkpointer
	epoch    int

	// early buffers peer frames (data, punctuation, checkpoint replicas)
	// that arrive ahead of this worker's MsgStart for their epoch. The
	// requestor's MsgStart and a peer's first stratum frames travel on
	// different links (different sockets over TCP, different goroutines
	// in-process), so nothing orders them: a fast peer can finish its
	// stratum before a slow one has even dequeued MsgStart. Dropping the
	// early arrivals loses punctuation, the stratum barrier never
	// completes, and the whole query hangs — so they are held here and
	// replayed by handleStart once the epoch's operators exist. aborted
	// marks the current epoch abandoned by MsgAbort, whose debris must
	// drain (not buffer) until the next MsgStart.
	early   []cluster.Message
	aborted bool

	// standing-query round state: lastStratum is the highest stratum this
	// worker has started (strata grow monotonically across ingestion
	// rounds so punctuation alignment stays ordered), and ingest buffers
	// base-table deltas received via MsgIngest until the next MsgRound
	// injects them into the resident dataflow.
	lastStratum int
	ingest      map[string][]types.Delta

	// pending buffers the same staged deltas for local storage: stores
	// mutate only at the MsgCommit barrier, after the round's fixpoint
	// closed on every node, so a crash mid-round leaves every surviving
	// store exactly at its last committed round. appliedRound is the
	// watermark of the last round committed here; recovery re-stages an
	// interrupted round to everyone, and nodes that already committed it
	// skip the replayed frames by this watermark.
	pending      []pendingIngest
	appliedRound int
}

// pendingIngest is one staged MsgIngest frame awaiting the round's commit
// barrier, in arrival order.
type pendingIngest struct {
	table  string
	keyCol int
	deltas []types.Delta
}

// WorkerConfig assembles a Worker. Plan, transport, and storage must
// already agree on the cluster shape (node count, ring parameters).
type WorkerConfig struct {
	Node        cluster.NodeID
	Transport   cluster.Transport
	Store       storage.Backend
	Checkpoints *storage.CheckpointStore
	Catalog     *catalog.Catalog
	Ring        *cluster.Ring
	Plan        *PlanSpec
	QueryID     string
	Options     Options
}

// NewWorker builds a worker over the given runtime, normalizing option
// defaults the same way Engine.Run does.
func NewWorker(cfg WorkerConfig) *Worker {
	opts := cfg.Options
	if opts.BatchSize <= 0 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.CompactionHighWater <= 0 {
		opts.CompactionHighWater = defaultHighWater
	}
	var durable storage.Durable
	if d, ok := cfg.Store.(storage.Durable); ok {
		durable = d
	}
	applied := 0
	if durable != nil {
		// A worker built over a recovered store resumes at its durable
		// watermark, so re-staged frames for rounds already committed here
		// are skipped rather than applied twice.
		if cr := durable.CommittedRound(); cr > 0 {
			applied = int(cr)
		}
	}
	return &Worker{
		node: cfg.Node, transport: cfg.Transport, store: cfg.Store,
		durable: durable, appliedRound: applied,
		ckpt: cfg.Checkpoints, cat: cfg.Catalog, ring: cfg.Ring,
		spec: cfg.Plan, queryID: cfg.QueryID, batchSize: opts.BatchSize,
		checkpoints: opts.Checkpoint,
		compaction:  opts.Compaction, highWater: opts.CompactionHighWater,
		stream: opts.Stream,
		// Operator vectorization now composes with the shuffle
		// compactor: rehash converts to rows at the compactor boundary
		// (see rehashOp.PushBatch), so the scan→filter→project chain keeps
		// its compiled column kernels while the wire still gets the
		// compaction byte savings.
		vectorize: !opts.NoVectorize,
		drain:     &cluster.DrainMeter{},
	}
}

// Loop processes the worker's inbox until shutdown or mailbox close. It
// returns true on an orderly shutdown and false when the node was killed
// (its mailbox closed under it) — a daemon uses the distinction to decide
// whether to respawn the loop on revival.
func (w *Worker) Loop() bool {
	inbox := w.transport.Inbox(w.node)
	if inbox == nil {
		return false
	}
	for {
		msg, ok := inbox.Get()
		if !ok {
			return false // killed: mailbox closed
		}
		if err := w.handle(msg); err != nil {
			w.transport.SendToRequestor(cluster.Message{
				From: w.node, Kind: cluster.MsgError,
				Table: err.Error(), Epoch: w.epoch,
			})
		}
		if msg.Kind == cluster.MsgShutdown {
			return true
		}
	}
}

// DropQuery discards this worker's checkpoints for its query; daemons
// call it at job teardown (the engine does the equivalent for local
// workers).
func (w *Worker) DropQuery() {
	if w.ckpt != nil {
		w.ckpt.Drop(w.queryID)
	}
}

func (w *Worker) handle(msg cluster.Message) error {
	switch msg.Kind {
	case cluster.MsgShutdown:
		return nil
	case cluster.MsgAbort:
		// The requestor abandoned the query (cancellation/deadline): drop
		// the per-query operator state so the epoch's remaining in-flight
		// frames drain without processing. Base-table stores and the
		// checkpoint store are untouched; the next MsgStart rebuilds.
		w.ops = nil
		w.scans = nil
		w.baseScan = nil
		w.fixpoint = nil
		w.ckptOps = nil
		// Uncommitted staged deltas die with the round: an abort during
		// recovery must leave the store at its last committed round, and
		// re-staging after MsgStart rebuilds both buffers.
		w.pending = nil
		w.ingest = nil
		// The abandoned query's remaining frames must drain unprocessed,
		// including any held for an epoch that will now never start.
		w.early = nil
		w.aborted = true
		return nil
	case cluster.MsgStart:
		return w.handleStart(msg)
	case cluster.MsgCheckpoint:
		// Checkpoint debris from a cancelled run must not be stored under
		// the next query's ID; early replicas are held like data frames.
		if w.triage(msg) {
			return nil
		}
		return w.handleCheckpoint(msg)
	case cluster.MsgData:
		if w.triage(msg) {
			return nil // early: held for replay; stale: dropped
		}
		op, port := splitEdge(msg.Edge)
		inst, ok := w.ops[op]
		if !ok {
			return fmt.Errorf("exec: node %d: data for unknown op %d", w.node, op)
		}
		// Columnar frames stay columnar all the way into a vectorized
		// operator: decode parses the header and aliases column payloads
		// out of the frame buffer, and values materialize only where an
		// operator actually touches them.
		rows, cb, err := cluster.DecodeDeltasAny(msg.Payload)
		if err != nil {
			return err
		}
		if cb != nil {
			w.drain.Observe(cb.Len())
			if bo, ok := inst.(BatchOperator); ok && w.vectorize {
				return bo.PushBatch(port, cb)
			}
			return inst.Push(port, cb.Deltas())
		}
		w.drain.Observe(len(rows))
		return inst.Push(port, rows)
	case cluster.MsgPunct:
		if w.triage(msg) {
			return nil
		}
		op, port := splitEdge(msg.Edge)
		inst, ok := w.ops[op]
		if !ok {
			return fmt.Errorf("exec: node %d: punct for unknown op %d", w.node, op)
		}
		// Punctuation is the drain meter's clock tick: fold the deltas
		// applied since the last marker into the EWMA rate.
		w.drain.Mark(time.Now())
		return inst.Punct(port, msg.Stratum, msg.Closed)
	case cluster.MsgDecision:
		if msg.Epoch != w.epoch || w.fixpoint == nil {
			return nil
		}
		if msg.Terminate {
			return w.fixpoint.Finish()
		}
		w.lastStratum = msg.Stratum
		return w.fixpoint.Advance(msg.Stratum)
	case cluster.MsgIngest:
		if msg.Epoch != w.epoch || w.ops == nil {
			return nil // no resident dataflow (stale epoch or aborted query)
		}
		return w.handleIngest(msg)
	case cluster.MsgRound:
		if msg.Epoch != w.epoch || w.ops == nil {
			return nil
		}
		return w.startRound()
	case cluster.MsgCommit:
		if msg.Epoch != w.epoch || w.ops == nil {
			return nil
		}
		return w.handleCommit(msg)
	default:
		return nil
	}
}

// triage classifies a peer frame (data, punctuation, or a checkpoint
// replica) against the worker's epoch state and reports whether the
// caller should skip it. A frame that outran its epoch's MsgStart — a
// future epoch, or the current epoch before the operators exist — is
// appended to w.early for replay by handleStart; a frame from a stale
// epoch or an aborted query is dropped. Only peer frames need this:
// requestor-origin control frames share a link with MsgStart and
// therefore arrive in order behind it.
func (w *Worker) triage(msg cluster.Message) bool {
	if msg.Epoch > w.epoch || (msg.Epoch == w.epoch && w.ops == nil && !w.aborted) {
		w.early = append(w.early, msg)
		return true
	}
	return msg.Epoch != w.epoch || w.ops == nil
}

// startMode values carried in MsgStart.Count.
const (
	startFresh       = 0
	startIncremental = 1
	// startRecover rebuilds a standing query's dataflow after a crash:
	// like startFresh (full base scans, fresh operator state) but the
	// durable round watermark is read back instead of reset, so an
	// interrupted round's re-staged frames are skipped where already
	// committed and applied where not.
	startRecover = 2
)

func (w *Worker) handleStart(msg cluster.Message) error {
	w.epoch = msg.Epoch
	w.lastStratum = msg.Stratum
	w.ingest = nil
	w.pending = nil
	w.aborted = false
	switch msg.Count {
	case startFresh:
		w.appliedRound = 0
		if w.durable != nil {
			// Seal the loaded base state as round 0. This also resets a
			// stale watermark left by a prior query on a reused store —
			// without it, this query's recovery would skip re-staged rounds
			// the old query committed.
			if err := w.durable.Commit(0); err != nil {
				return err
			}
		}
	case startRecover:
		if w.durable != nil {
			w.appliedRound = 0
			if cr := w.durable.CommittedRound(); cr > 0 {
				w.appliedRound = int(cr)
			}
		}
	}
	alive, err := decodeNodeList(msg.Payload)
	if err != nil {
		return err
	}
	snap := cluster.NewSnapshot(w.ring, alive)
	if err := w.build(snap); err != nil {
		return err
	}
	resume := msg.Stratum
	incremental := msg.Count == startIncremental
	if incremental {
		w.ckpt.DropAbove(w.queryID, resume)
		for opID, ck := range w.ckptOps {
			strata := w.ckpt.Restore(w.queryID, opID, resume, w.node, snap)
			if err := ck.Restore(strata); err != nil {
				return err
			}
		}
	}
	for _, s := range w.scans {
		if incremental && w.baseScan[s.id] {
			continue // base case already folded into restored state
		}
		if err := s.Start(); err != nil {
			return err
		}
	}
	if incremental && w.fixpoint != nil {
		// Report the restored Δ set as this (already completed) stratum's
		// vote so the requestor can advance past it.
		w.stratumEnd(resume, w.fixpoint.PendingCount(), false)
	}
	// Replay peer frames that outran this MsgStart, in arrival order (so
	// per-sender FIFO — data before its punctuation — is preserved).
	// Frames held for any other epoch are dead by construction: the
	// requestor abandoned that epoch before starting this one.
	if len(w.early) > 0 {
		replay := w.early
		w.early = nil
		for _, m := range replay {
			if m.Epoch != w.epoch {
				continue
			}
			if err := w.handle(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Worker) handleCheckpoint(msg cluster.Message) error {
	batch, err := cluster.DecodeDeltas(msg.Payload)
	if err != nil {
		return err
	}
	hashes := make([]uint64, len(batch))
	tuples := make([]types.Tuple, len(batch))
	for i, d := range batch {
		// The first field is the replica-placement key hash; a frame
		// without it would checkpoint under hash 0 and silently corrupt
		// recovery for whatever keys it carried. Reject it instead.
		if len(d.Tup) == 0 {
			return fmt.Errorf("exec: node %d: empty checkpoint tuple (op %d, stratum %d)",
				w.node, msg.Edge, msg.Stratum)
		}
		h, ok := types.AsInt(d.Tup[0])
		if !ok {
			return fmt.Errorf("exec: node %d: checkpoint tuple with non-integer key hash %v (op %d, stratum %d)",
				w.node, d.Tup[0], msg.Edge, msg.Stratum)
		}
		hashes[i] = uint64(h)
		tuples[i] = d.Tup
	}
	w.ckpt.Put(w.queryID, msg.Edge, msg.Stratum, hashes, tuples)
	return nil
}

// handleIngest stages a base-table delta batch: buffered for the next
// round's dataflow injection (ingest) and for local storage (pending).
// The store itself is NOT touched here — mutation happens at the round's
// MsgCommit barrier, after the fixpoint closed cluster-wide, so a crash
// mid-round never leaves a partially applied round in any store. The
// frame's deltas were routed to every ring owner of each delta's key;
// injection (startRound) picks out primarily-owned keys.
//
// Frames carry their round in Stratum: a recovery re-stages the
// interrupted round to every node, and a node whose durable watermark
// already covers that round drops the replay (acking its credit so the
// pump's window still re-arms).
func (w *Worker) handleIngest(msg cluster.Message) error {
	ackCredit := func() {
		// The pump spends one staging credit per MsgIngest frame it ships
		// to this node and blocks when the window runs dry, so the ack both
		// confirms staging and re-arms the window — sized from this
		// worker's measured drain rate. To=-1 addresses the grant at the
		// requestor pair in the credit book.
		w.transport.SendToRequestor(cluster.Message{
			From: w.node, To: -1, Kind: cluster.MsgCreditAck, Epoch: w.epoch,
			CreditGrant: true, Credits: w.drain.Window(w.batchSize, w.highWater),
		})
	}
	if msg.Stratum > 0 && msg.Stratum <= w.appliedRound {
		ackCredit()
		return nil // replayed frame for a round this node already committed
	}
	batch, err := cluster.DecodeDeltas(msg.Payload)
	if err != nil {
		return err
	}
	tab, err := w.cat.Table(msg.Table)
	if err != nil {
		return fmt.Errorf("exec: node %d: ingest: %w", w.node, err)
	}
	if w.ingest == nil {
		w.ingest = map[string][]types.Delta{}
	}
	w.ingest[msg.Table] = append(w.ingest[msg.Table], batch...)
	w.pending = append(w.pending, pendingIngest{
		table: msg.Table, keyCol: tab.PartitionKey, deltas: batch,
	})
	w.drain.Observe(len(batch))
	ackCredit()
	return nil
}

// handleCommit is the worker side of the round-commit barrier: apply the
// round's staged deltas to local storage (the only place stores mutate
// during a standing query), fsync the round mark on a durable backend,
// advance the watermark, and ack.
func (w *Worker) handleCommit(msg cluster.Message) error {
	for _, pb := range w.pending {
		if w.store == nil {
			break
		}
		w.store.CreateTable(pb.table, pb.keyCol)
		for _, d := range pb.deltas {
			if err := w.store.ApplyDelta(pb.table, d); err != nil {
				return err
			}
		}
	}
	w.pending = nil
	if w.durable != nil {
		if err := w.durable.Commit(int64(msg.Stratum)); err != nil {
			return err
		}
	}
	w.appliedRound = msg.Stratum
	w.transport.SendToRequestor(cluster.Message{
		From: w.node, Kind: cluster.MsgCommit,
		Stratum: msg.Stratum, Epoch: w.epoch,
	})
	return nil
}

// startRound begins one incremental round on the resident dataflow: it
// reopens per-round punctuation state, injects the buffered base deltas
// through every scan's edge (data first on every table, then punctuation,
// preserving the data-before-punctuation discipline across tables), and
// lets the ordinary fixpoint protocol re-run from current operator state.
// The round's base stratum continues the monotonic stratum numbering so
// punctuation watermarks never move backwards.
func (w *Worker) startRound() error {
	s := w.lastStratum + 1
	w.lastStratum = s
	w.ctx.Stratum = s
	for _, inst := range w.ops {
		if r, ok := inst.(roundReopener); ok {
			r.ReopenRound()
		}
	}
	ingest := w.ingest
	w.ingest = nil
	owned := map[string][]types.Delta{}
	for table, batch := range ingest {
		o, err := w.primaryOwned(table, batch)
		if err != nil {
			return err
		}
		owned[table] = o
	}
	for _, sc := range w.scans {
		if batch := owned[sc.table]; len(batch) > 0 {
			if err := sc.Inject(batch); err != nil {
				return err
			}
		}
	}
	for _, sc := range w.scans {
		if err := sc.punctRound(s); err != nil {
			return err
		}
	}
	return nil
}

// primaryOwned filters an ingest batch down to the deltas this node
// primarily owns under the query snapshot — replicas store the data but
// must not inject it, or the dataflow would see every change R times.
func (w *Worker) primaryOwned(table string, batch []types.Delta) ([]types.Delta, error) {
	tab, err := w.cat.Table(table)
	if err != nil {
		return nil, err
	}
	key := tab.PartitionKey
	var out []types.Delta
	for _, d := range batch {
		primary, err := w.ctx.Snap.Primary(types.HashValue(d.Tup[key]))
		if err != nil {
			return nil, err
		}
		if primary == w.node {
			out = append(out, d)
		}
	}
	return out, nil
}

// stratumEnd is the fixpoint's end-of-stratum callback: ship the stratum's
// state-change batch when streaming, replicate this stratum's dirty state
// (§4.3), then vote. The stream batch MUST precede the vote on the ordered
// requestor channel — the requestor treats vote completion as "all of
// stratum s's deltas have arrived".
func (w *Worker) stratumEnd(stratum, count int, checkpoint bool) {
	if w.stream && w.fixpoint != nil {
		if batch := w.fixpoint.StreamDelta(); len(batch) > 0 {
			w.transport.SendToRequestor(cluster.Message{
				From: w.node, Kind: cluster.MsgData, Edge: resultEdge,
				Stratum: stratum, Payload: cluster.EncodeDeltas(batch),
				Count: len(batch), Epoch: w.epoch,
			})
		}
	}
	if checkpoint && w.checkpoints {
		for opID, ck := range w.ckptOps {
			entries := ck.DirtyState()
			if len(entries) == 0 {
				continue
			}
			w.replicate(opID, stratum, entries)
		}
	}
	if w.stream && w.fixpoint != nil {
		// StreamDelta needs the dirty-key set to mean "changed this
		// stratum"; with checkpointing off nothing else clears it, so the
		// streaming path does (a no-op when DirtyState just drained it).
		w.fixpoint.ClearDirty()
	}
	w.transport.SendToRequestor(cluster.Message{
		From: w.node, Kind: cluster.MsgVote,
		Stratum: stratum, Count: count, Epoch: w.epoch,
	})
}

// replicate stores checkpoint entries locally and ships them to the other
// ring owners of each entry's key.
func (w *Worker) replicate(opID, stratum int, entries []types.Tuple) {
	byDest := map[cluster.NodeID][]types.Delta{}
	var selfHashes []uint64
	var selfTuples []types.Tuple
	for _, e := range entries {
		h64, _ := types.AsInt(e[0])
		h := uint64(h64)
		for _, owner := range w.ring.Owners(h) {
			if owner == w.node {
				selfHashes = append(selfHashes, h)
				selfTuples = append(selfTuples, e)
				continue
			}
			byDest[owner] = append(byDest[owner], types.Insert(e))
		}
	}
	if len(selfTuples) > 0 {
		w.ckpt.Put(w.queryID, opID, stratum, selfHashes, selfTuples)
	}
	for dest, batch := range byDest {
		w.transport.Send(cluster.Message{
			From: w.node, To: dest, Kind: cluster.MsgCheckpoint,
			Edge: opID, Stratum: stratum,
			Payload: cluster.EncodeDeltas(batch), Count: len(batch),
			Epoch: w.epoch,
		})
	}
}

// build instantiates the plan for the given snapshot.
func (w *Worker) build(snap *cluster.Snapshot) error {
	ctx := &Context{
		Node: w.node, Snap: snap, Transport: w.transport,
		Store: w.store, Catalog: w.cat, QueryID: w.queryID,
		Epoch: w.epoch, BatchSize: w.batchSize,
		Compaction: w.compaction, CompactionHighWater: w.highWater,
		Vectorize: w.vectorize, Drain: w.drain,
	}
	w.ctx = ctx
	w.ops = map[int]Operator{}
	w.scans = nil
	w.baseScan = map[int]bool{}
	w.fixpoint = nil
	w.ckptOps = map[int]checkpointer{}

	// Phase 1: instantiate.
	for _, spec := range w.spec.Ops {
		inst, err := w.instantiate(spec, ctx)
		if err != nil {
			return err
		}
		w.ops[spec.ID] = inst
		switch o := inst.(type) {
		case *scanOp:
			o.id = spec.ID
			w.scans = append(w.scans, o)
		case *fixpointOp:
			w.fixpoint = o
			o.stream = w.stream
			o.onStratumEnd = func(stratum, count int) {
				w.stratumEnd(stratum, count, true)
			}
		}
		if ck, ok := inst.(checkpointer); ok && w.spec.Recursive() {
			w.ckptOps[spec.ID] = ck
		}
	}

	// Phase 2: wire local edges.
	outOp := &outputOp{ctx: ctx}
	cons := w.spec.consumers()
	for id, inst := range w.ops {
		var outs outputs
		for _, ref := range cons[id] {
			outs = append(outs, output{op: w.ops[ref.op], port: ref.port})
		}
		if id == w.spec.RootID && !w.spec.Recursive() {
			outs = append(outs, output{op: outOp, port: 0})
		}
		w.setOuts(inst, outs)
	}
	if w.spec.Recursive() {
		fx := w.ops[w.spec.FixpointID].(*fixpointOp)
		fx.finalOuts = outputs{{op: outOp, port: 0}}
	}

	// Mark base-case scans: those whose dataflow reaches the fixpoint's
	// base port (0) without passing through the fixpoint itself.
	if w.spec.Recursive() {
		for _, s := range w.scans {
			if w.reachesFixpointBase(s.id, cons) {
				w.baseScan[s.id] = true
			}
		}
	}
	return nil
}

func (w *Worker) reachesFixpointBase(from int, cons map[int][]portRef) bool {
	seen := map[int]bool{}
	var walk func(id int) bool
	walk = func(id int) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, ref := range cons[id] {
			if ref.op == w.spec.FixpointID {
				if ref.port == 0 {
					return true
				}
				continue // recursive port: do not cross the fixpoint
			}
			if walk(ref.op) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func (w *Worker) setOuts(inst Operator, outs outputs) {
	switch o := inst.(type) {
	case *scanOp:
		o.outs = outs
	case *filterOp:
		o.outs = outs
	case *projectOp:
		o.outs = outs
	case *tvfOp:
		o.outs = outs
	case *hashJoinOp:
		o.outs = outs
	case *groupByOp:
		o.outs = outs
	case *preAggOp:
		o.outs = outs
	case *rehashOp:
		o.outs = outs
	case *fixpointOp:
		o.recursiveOuts = outs
	}
}

// inputKinds resolves the column kinds feeding an expression operator's
// first input (filter and project are single-input), used to compile
// typed column kernels. It returns nil — kernels stay off, operators
// bridge through scratch tuples — when the plan carries no upstream
// schema, as hand-built test plans may.
func (w *Worker) inputKinds(spec *OpSpec) []types.Kind {
	if len(spec.Inputs) == 0 {
		return nil
	}
	in := w.spec.Op(spec.Inputs[0])
	if in == nil || in.Out == nil {
		return nil
	}
	ks := make([]types.Kind, len(in.Out.Fields))
	for i, f := range in.Out.Fields {
		ks[i] = f.Kind
	}
	return ks
}

func (w *Worker) instantiate(spec *OpSpec, ctx *Context) (Operator, error) {
	switch spec.Kind {
	case OpScan:
		return &scanOp{ctx: ctx, table: spec.Table, batch: ctx.BatchSize}, nil
	case OpFilter:
		return newFilterOp(spec.Pred, w.inputKinds(spec)), nil
	case OpProject:
		return newProjectOp(spec.Exprs, spec.UDFArgKinds, w.inputKinds(spec)), nil
	case OpTVF:
		fn, err := ctx.Catalog.TVF(spec.TVFName)
		if err != nil {
			return nil, err
		}
		return &tvfOp{fn: fn}, nil
	case OpHashJoin:
		var handler uda.JoinHandler
		if spec.JoinHandlerName != "" {
			h, err := ctx.Catalog.JoinHandler(spec.JoinHandlerName)
			if err != nil {
				return nil, err
			}
			handler = h
		}
		return newHashJoinOp(spec, handler), nil
	case OpGroupBy:
		var agg uda.Aggregator
		if spec.UDAName != "" {
			def, err := ctx.Catalog.Agg(spec.UDAName)
			if err != nil {
				return nil, err
			}
			agg = def.Agg
		}
		return newGroupByOp(spec, max(1, len(spec.Inputs)), agg, w.inputKinds(spec))
	case OpPreAgg:
		return newPreAggOp(spec, max(1, len(spec.Inputs)), w.inputKinds(spec))
	case OpRehash:
		return newRehashOp(spec, ctx, false), nil
	case OpBroadcast:
		return newRehashOp(spec, ctx, true), nil
	case OpFixpoint:
		var handler uda.WhileHandler
		if spec.WhileHandlerName != "" {
			h, err := ctx.Catalog.WhileHandler(spec.WhileHandlerName)
			if err != nil {
				return nil, err
			}
			handler = h
		}
		return newFixpointOp(spec, ctx, handler), nil
	default:
		return nil, fmt.Errorf("exec: cannot instantiate op kind %v", spec.Kind)
	}
}

// encodeNodeList serializes a node list for MsgStart payloads.
func encodeNodeList(nodes []cluster.NodeID) []byte {
	t := make(types.Tuple, len(nodes))
	for i, n := range nodes {
		t[i] = int64(n)
	}
	return types.EncodeBatch([]types.Delta{types.Insert(t)})
}

func decodeNodeList(payload []byte) ([]cluster.NodeID, error) {
	batch, err := types.DecodeBatch(payload)
	if err != nil || len(batch) != 1 {
		return nil, fmt.Errorf("exec: bad node list payload")
	}
	out := make([]cluster.NodeID, len(batch[0].Tup))
	for i, v := range batch[0].Tup {
		n, _ := types.AsInt(v)
		out[i] = cluster.NodeID(n)
	}
	return out, nil
}
