package exec

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// collector is a terminal operator capturing everything pushed into it.
type collector struct {
	deltas []types.Delta
	puncts []struct {
		stratum int
		closed  bool
	}
}

func (c *collector) Push(port int, batch []types.Delta) error {
	c.deltas = append(c.deltas, batch...)
	return nil
}

func (c *collector) Punct(port, stratum int, closed bool) error {
	c.puncts = append(c.puncts, struct {
		stratum int
		closed  bool
	}{stratum, closed})
	return nil
}

func TestFilterDeltaSemantics(t *testing.T) {
	c := &collector{}
	f := &filterOp{
		pred: expr.NewCmp(expr.OpGt, expr.NewCol(0, types.KindInt, "x"), expr.NewConst(int64(5))),
		outs: outputs{{op: c, port: 0}},
	}
	in := []types.Delta{
		types.Insert(types.NewTuple(int64(10))),                           // passes
		types.Insert(types.NewTuple(int64(1))),                            // dropped
		types.Replace(types.NewTuple(int64(7)), types.NewTuple(int64(9))), // both pass: replace
		types.Replace(types.NewTuple(int64(8)), types.NewTuple(int64(2))), // leaves: delete(8)
		types.Replace(types.NewTuple(int64(3)), types.NewTuple(int64(6))), // enters: insert(6)
		types.Replace(types.NewTuple(int64(1)), types.NewTuple(int64(2))), // invisible
	}
	if err := f.Push(0, in); err != nil {
		t.Fatal(err)
	}
	if len(c.deltas) != 4 {
		t.Fatalf("got %d deltas: %v", len(c.deltas), c.deltas)
	}
	if c.deltas[1].Op != types.OpReplace {
		t.Error("both-pass must stay replace")
	}
	if c.deltas[2].Op != types.OpDelete || c.deltas[2].Tup[0].(int64) != 8 {
		t.Error("leaving replacement must degrade to delete(old)")
	}
	if c.deltas[3].Op != types.OpInsert || c.deltas[3].Tup[0].(int64) != 6 {
		t.Error("entering replacement must degrade to insert(new)")
	}
	if err := f.Punct(0, 0, true); err != nil || len(c.puncts) != 1 || !c.puncts[0].closed {
		t.Error("punct must forward")
	}
}

func TestProjectReplaceCollapse(t *testing.T) {
	c := &collector{}
	// Project onto column 0 only: a replacement that changes only column 1
	// becomes invisible.
	p := newProjectOp([]expr.Expr{expr.NewCol(0, types.KindInt, "k")}, nil, nil)
	p.outs = outputs{{op: c, port: 0}}
	in := []types.Delta{
		types.Replace(types.NewTuple(int64(1), int64(10)), types.NewTuple(int64(1), int64(11))),
		types.Replace(types.NewTuple(int64(1), int64(10)), types.NewTuple(int64(2), int64(10))),
		types.Update(types.NewTuple(int64(3), int64(4))),
	}
	if err := p.Push(0, in); err != nil {
		t.Fatal(err)
	}
	if len(c.deltas) != 2 {
		t.Fatalf("got %v", c.deltas)
	}
	if c.deltas[0].Op != types.OpReplace || c.deltas[0].Tup[0].(int64) != 2 {
		t.Error("visible replacement must survive projection")
	}
	if c.deltas[1].Op != types.OpUpdate {
		t.Error("δ annotation must propagate through stateless project")
	}
}

func TestProjectMemoization(t *testing.T) {
	calls := 0
	fn := func(args []types.Value) (types.Value, error) {
		calls++
		v, _ := types.AsInt(args[0])
		return v * 2, nil
	}
	c := &collector{}
	p := newProjectOp([]expr.Expr{
		expr.NewCall("dbl", fn, types.KindInt, true, expr.NewCol(0, types.KindInt, "x")),
	}, nil, nil)
	p.outs = outputs{{op: c, port: 0}}
	batch := []types.Delta{
		types.Insert(types.NewTuple(int64(4))),
		types.Insert(types.NewTuple(int64(4))),
		types.Insert(types.NewTuple(int64(4))),
	}
	if err := p.Push(0, batch); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("deterministic UDF called %d times, want 1 (memoized)", calls)
	}
	if c.deltas[2].Tup[0].(int64) != 8 {
		t.Fatal("memoized result wrong")
	}
}

func TestJoinDefaultDeltaRules(t *testing.T) {
	c := &collector{}
	spec := &OpSpec{ID: 0, Kind: OpHashJoin, LeftKey: []int{0}, RightKey: []int{0}, ImmutablePort: -1}
	j := newHashJoinOp(spec, nil)
	j.outs = outputs{{op: c, port: 0}}

	// Left insert with empty right: no output.
	must(t, j.Push(0, []types.Delta{types.Insert(types.NewTuple(int64(1), "a"))}))
	if len(c.deltas) != 0 {
		t.Fatal("no matches expected")
	}
	// Right insert matching: one joined insert.
	must(t, j.Push(1, []types.Delta{types.Insert(types.NewTuple(int64(1), "x"))}))
	if len(c.deltas) != 1 || !c.deltas[0].Tup.Equal(types.NewTuple(int64(1), "a", int64(1), "x")) {
		t.Fatalf("joined tuple wrong: %v", c.deltas)
	}
	// Right delete: emits delete of the joined tuple.
	must(t, j.Push(1, []types.Delta{types.Delete(types.NewTuple(int64(1), "x"))}))
	if c.deltas[1].Op != types.OpDelete {
		t.Fatal("delete propagation")
	}
	// Replacement on left with same key: replacement of joined tuples.
	must(t, j.Push(1, []types.Delta{types.Insert(types.NewTuple(int64(1), "y"))}))
	c.deltas = nil
	must(t, j.Push(0, []types.Delta{types.Replace(types.NewTuple(int64(1), "a"), types.NewTuple(int64(1), "b"))}))
	if len(c.deltas) != 1 || c.deltas[0].Op != types.OpReplace ||
		!c.deltas[0].Tup.Equal(types.NewTuple(int64(1), "b", int64(1), "y")) {
		t.Fatalf("replace propagation wrong: %v", c.deltas)
	}
	// Replacement that changes the key splits into delete + insert.
	c.deltas = nil
	must(t, j.Push(0, []types.Delta{types.Replace(types.NewTuple(int64(1), "b"), types.NewTuple(int64(2), "b"))}))
	if len(c.deltas) != 1 || c.deltas[0].Op != types.OpDelete {
		t.Fatalf("key-changing replace: %v", c.deltas)
	}
	// Punct alignment: one side only is not enough.
	must(t, j.Punct(0, 0, true))
	if len(c.puncts) != 0 {
		t.Fatal("join must align punctuation")
	}
	must(t, j.Punct(1, 0, false))
	if len(c.puncts) != 1 || c.puncts[0].closed {
		t.Fatal("aligned punct must forward, not closed while one port open")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupByDeltaFlush(t *testing.T) {
	c := &collector{}
	spec := &OpSpec{
		ID: 0, Kind: OpGroupBy, GroupKey: []int{0},
		Aggs: []AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}, OutName: "s"}},
	}
	g, err := newGroupByOp(spec, 1, nil, nil)
	must(t, err)
	g.outs = outputs{{op: c, port: 0}}

	must(t, g.Push(0, []types.Delta{
		types.Insert(types.NewTuple(int64(1), 2.0)),
		types.Insert(types.NewTuple(int64(1), 3.0)),
		types.Insert(types.NewTuple(int64(2), 1.0)),
	}))
	must(t, g.Punct(0, 0, false))
	if len(c.deltas) != 2 {
		t.Fatalf("first flush: %v", c.deltas)
	}
	for _, d := range c.deltas {
		if d.Op != types.OpInsert {
			t.Fatal("first emission must be insert")
		}
	}
	// Second stratum: a δ adjustment to group 1 only → one replace.
	c.deltas = nil
	must(t, g.Push(0, []types.Delta{types.Update(types.NewTuple(int64(1), -1.0))}))
	must(t, g.Punct(0, 1, false))
	if len(c.deltas) != 1 || c.deltas[0].Op != types.OpReplace {
		t.Fatalf("second flush: %v", c.deltas)
	}
	if c.deltas[0].Old[1].(float64) != 5.0 || c.deltas[0].Tup[1].(float64) != 4.0 {
		t.Fatalf("replace values: %v", c.deltas[0])
	}
	// Idle stratum: nothing emitted.
	c.deltas = nil
	must(t, g.Punct(0, 2, false))
	if len(c.deltas) != 0 {
		t.Fatal("clean stratum must emit nothing")
	}
}

func TestGroupByCheckpointRoundTrip(t *testing.T) {
	spec := &OpSpec{
		ID: 0, Kind: OpGroupBy, GroupKey: []int{0},
		Aggs: []AggSpec{
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}},
			{Fn: "min", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}},
		},
	}
	g1, err := newGroupByOp(spec, 1, nil, nil)
	must(t, err)
	c1 := &collector{}
	g1.outs = outputs{{op: c1, port: 0}}
	must(t, g1.Push(0, []types.Delta{
		types.Insert(types.NewTuple(int64(1), 5.0)),
		types.Insert(types.NewTuple(int64(1), 3.0)),
	}))
	must(t, g1.Punct(0, 0, false))
	entries := g1.DirtyState()
	if len(entries) != 1 {
		t.Fatalf("dirty entries: %d", len(entries))
	}

	g2, err := newGroupByOp(spec, 1, nil, nil)
	must(t, err)
	c2 := &collector{}
	g2.outs = outputs{{op: c2, port: 0}}
	must(t, g2.Restore([][]types.Tuple{entries}))
	// After restore, a new delta must produce a replace against the
	// restored last-emitted value.
	must(t, g2.Push(0, []types.Delta{types.Insert(types.NewTuple(int64(1), 1.0))}))
	must(t, g2.Punct(0, 1, false))
	if len(c2.deltas) != 1 || c2.deltas[0].Op != types.OpReplace {
		t.Fatalf("restored flush: %v", c2.deltas)
	}
	if c2.deltas[0].Old[1].(float64) != 8.0 || c2.deltas[0].Tup[1].(float64) != 9.0 {
		t.Fatalf("restored sums wrong: %v", c2.deltas[0])
	}
	if c2.deltas[0].Tup[2].(float64) != 1.0 {
		t.Fatalf("restored min wrong: %v", c2.deltas[0])
	}
}

func TestFixpointDefaultDedup(t *testing.T) {
	spec := &OpSpec{ID: 0, Kind: OpFixpoint, FixpointKey: []int{0}, RecursiveOut: 1}
	ctx := &Context{}
	f := newFixpointOp(spec, ctx, nil)
	votes := []int{}
	f.onStratumEnd = func(stratum, count int) { votes = append(votes, count) }

	must(t, f.Push(0, []types.Delta{
		types.Insert(types.NewTuple(int64(1), "a")),
		types.Insert(types.NewTuple(int64(1), "a")), // duplicate: dropped
		types.Insert(types.NewTuple(int64(2), "b")),
	}))
	must(t, f.Punct(0, 0, true))
	if len(votes) != 1 || votes[0] != 2 {
		t.Fatalf("votes = %v", votes)
	}
	rec := &collector{}
	f.recursiveOuts = outputs{{op: rec, port: 0}}
	must(t, f.Advance(1))
	if len(rec.deltas) != 2 {
		t.Fatalf("advance emitted %v", rec.deltas)
	}
	// Same-key different value propagates as replace.
	must(t, f.Push(1, []types.Delta{types.Insert(types.NewTuple(int64(1), "c"))}))
	must(t, f.Punct(1, 1, false))
	if votes[1] != 1 {
		t.Fatalf("votes = %v", votes)
	}
	fin := &collector{}
	f.finalOuts = outputs{{op: fin, port: 0}}
	must(t, f.Finish())
	if len(fin.deltas) != 2 {
		t.Fatalf("final state: %v", fin.deltas)
	}
}

// --- integration: full engine runs ------------------------------------

func newTestCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name:         "edges",
		Schema:       types.MustSchema("src:Integer", "dst:Integer"),
		PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name:         "seed",
		Schema:       types.MustSchema("srcId:Integer", "dist:Double"),
		PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name:         "items",
		Schema:       types.MustSchema("k:Integer", "v:Double"),
		PartitionKey: 0,
	}))
	// SSSP join handler: graph tuples accumulate on the left; distance
	// deltas fan out dist+1 to out-neighbors without being stored.
	must(t, cat.RegisterJoinHandler(&uda.FuncJoinHandler{
		HName: "sssp_join",
		Out:   types.MustSchema("nbr:Integer", "distOut:Double"),
		Fn: func(left, right *uda.TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			if fromLeft {
				left.Add(d.Tup)
				return nil, nil
			}
			dist, _ := types.AsFloat(d.Tup[1])
			out := make([]types.Delta, 0, left.Len())
			for _, e := range left.Tuples {
				out = append(out, types.Update(types.NewTuple(e[1], dist+1)))
			}
			return out, nil
		},
	}))
	// SSSP while handler: keep the minimum distance per node; emit the
	// improvement as the next Δ set.
	must(t, cat.RegisterWhileHandler(&uda.FuncWhileHandler{
		HName: "sssp_while",
		Fn: func(rel *uda.TupleSet, d types.Delta) ([]types.Delta, error) {
			nd, _ := types.AsFloat(d.Tup[1])
			if rel.Len() > 0 {
				cur, _ := types.AsFloat(rel.Tuples[0][1])
				if nd >= cur {
					return nil, nil
				}
				rel.ReplaceFirst(rel.Tuples[0], types.NewTuple(d.Tup[0], nd))
			} else {
				rel.Add(types.NewTuple(d.Tup[0], nd))
			}
			return []types.Delta{types.Update(types.NewTuple(d.Tup[0], nd))}, nil
		},
	}))
	return cat
}

// ssspPlan builds the recursive shortest-path plan of Listing 2 by hand.
func ssspPlan() *PlanSpec {
	p := NewPlanSpec()
	edges := p.Add(&OpSpec{Kind: OpScan, Table: "edges"})
	seedScan := p.Add(&OpSpec{Kind: OpScan, Table: "seed"})
	fix := p.Add(&OpSpec{
		Kind: OpFixpoint, FixpointKey: []int{0},
		WhileHandlerName: "sssp_while",
	})
	join := p.Add(&OpSpec{
		Kind: OpHashJoin, Inputs: []int{edges.ID, fix.ID},
		LeftKey: []int{0}, RightKey: []int{0},
		JoinHandlerName: "sssp_join", ImmutablePort: 0,
	})
	rehash := p.Add(&OpSpec{Kind: OpRehash, Inputs: []int{join.ID}, HashKey: []int{0}})
	gby := p.Add(&OpSpec{
		Kind: OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []AggSpec{{Fn: "min", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "d")}, OutName: "dist"}},
	})
	fix.Inputs = []int{seedScan.ID, gby.ID}
	fix.RecursiveOut = join.ID
	p.RootID = fix.ID
	return p
}

// randomGraph returns edges of a random sparse digraph with a path-rich
// structure, plus a BFS reference distance map from node 0.
func randomGraph(n, m int, seed int64) ([]types.Tuple, map[int64]float64) {
	r := rand.New(rand.NewSource(seed))
	adj := map[int64][]int64{}
	var edges []types.Tuple
	addEdge := func(a, b int64) {
		adj[a] = append(adj[a], b)
		edges = append(edges, types.NewTuple(a, b))
	}
	// Ring backbone guarantees reachability, plus random chords.
	for i := 0; i < n; i++ {
		addEdge(int64(i), int64((i+1)%n))
	}
	for i := 0; i < m; i++ {
		addEdge(int64(r.Intn(n)), int64(r.Intn(n)))
	}
	// BFS from 0.
	dist := map[int64]float64{0: 0}
	queue := []int64{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return edges, dist
}

func runSSSP(t *testing.T, nodes int, opts Options, failAt int) (*Result, map[int64]float64) {
	t.Helper()
	cat := newTestCatalog(t)
	eng := NewEngine(nodes, 32, 3, cat)
	edges, want := randomGraph(200, 300, 42)
	must(t, eng.Load("edges", 0, edges))
	must(t, eng.Load("seed", 0, []types.Tuple{types.NewTuple(int64(0), 0.0)}))
	if failAt >= 0 {
		opts.OnStratum = func(stratum, newTuples int) {
			if stratum == failAt {
				eng.Transport.Kill(1)
			}
		}
	}
	res, err := eng.Run(ssspPlan(), opts)
	must(t, err)
	return res, want
}

func checkSSSP(t *testing.T, res *Result, want map[int64]float64) {
	t.Helper()
	got := map[int64]float64{}
	for _, tup := range res.Tuples {
		id, _ := types.AsInt(tup[0])
		d, _ := types.AsFloat(tup[1])
		got[id] = d
	}
	if len(got) != len(want) {
		t.Fatalf("reached %d nodes, want %d", len(got), len(want))
	}
	for id, d := range want {
		if math.Abs(got[id]-d) > 1e-9 {
			t.Fatalf("dist[%d] = %v, want %v", id, got[id], d)
		}
	}
}

func TestSSSPRecursiveMultiNode(t *testing.T) {
	res, want := runSSSP(t, 4, Options{BatchSize: 64}, -1)
	checkSSSP(t, res, want)
	if len(res.Strata) < 3 {
		t.Fatalf("expected several strata, got %d", len(res.Strata))
	}
	// Δ set must eventually shrink to zero.
	if res.Strata[len(res.Strata)-1].NewTuples != 0 {
		t.Fatal("final stratum must be empty (implicit termination)")
	}
}

func TestSSSPSingleNode(t *testing.T) {
	res, want := runSSSP(t, 1, Options{}, -1)
	checkSSSP(t, res, want)
}

func TestSSSPRecoveryRestart(t *testing.T) {
	res, want := runSSSP(t, 4, Options{Recovery: RecoveryRestart}, 2)
	checkSSSP(t, res, want)
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
}

func TestSSSPRecoveryIncremental(t *testing.T) {
	res, want := runSSSP(t, 4, Options{Recovery: RecoveryIncremental, Checkpoint: true}, 2)
	checkSSSP(t, res, want)
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
}

func TestSSSPRecoveryDisabledFails(t *testing.T) {
	cat := newTestCatalog(t)
	eng := NewEngine(3, 32, 2, cat)
	edges, _ := randomGraph(100, 100, 7)
	must(t, eng.Load("edges", 0, edges))
	must(t, eng.Load("seed", 0, []types.Tuple{types.NewTuple(int64(0), 0.0)}))
	opts := Options{Recovery: RecoveryNone, OnStratum: func(s, n int) {
		if s == 1 {
			eng.Transport.Kill(2)
		}
	}}
	if _, err := eng.Run(ssspPlan(), opts); err == nil {
		t.Fatal("failure with RecoveryNone must error")
	}
}

func TestNonRecursiveAggregation(t *testing.T) {
	cat := newTestCatalog(t)
	eng := NewEngine(3, 32, 2, cat)
	r := rand.New(rand.NewSource(3))
	var tuples []types.Tuple
	wantSum := 0.0
	wantCount := int64(0)
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 10
		tuples = append(tuples, types.NewTuple(int64(i), v))
		if v > 5 {
			wantSum += v
			wantCount++
		}
	}
	must(t, eng.Load("items", 0, tuples))

	p := NewPlanSpec()
	scan := p.Add(&OpSpec{Kind: OpScan, Table: "items"})
	filter := p.Add(&OpSpec{
		Kind: OpFilter, Inputs: []int{scan.ID},
		Pred: expr.NewCmp(expr.OpGt, expr.NewCol(1, types.KindFloat, "v"), expr.NewConst(5.0)),
	})
	// Constant grouping key: global aggregate. Project a key column first.
	proj := p.Add(&OpSpec{
		Kind: OpProject, Inputs: []int{filter.ID},
		Exprs: []expr.Expr{expr.NewConst(int64(0)), expr.NewCol(1, types.KindFloat, "v")},
	})
	rehash := p.Add(&OpSpec{Kind: OpRehash, Inputs: []int{proj.ID}, HashKey: []int{0}})
	gby := p.Add(&OpSpec{
		Kind: OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []AggSpec{
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}},
			{Fn: "count"},
		},
	})
	p.RootID = gby.ID

	res, err := eng.Run(p, Options{})
	must(t, err)
	if len(res.Tuples) != 1 {
		t.Fatalf("result rows = %d: %v", len(res.Tuples), res.Tuples)
	}
	gotSum, _ := types.AsFloat(res.Tuples[0][1])
	gotCount, _ := types.AsInt(res.Tuples[0][2])
	if math.Abs(gotSum-wantSum) > 1e-6 || gotCount != wantCount {
		t.Fatalf("sum=%v count=%v, want %v %v", gotSum, gotCount, wantSum, wantCount)
	}
	if res.BytesSent <= 0 {
		t.Fatal("rehash must ship bytes")
	}
}

func TestPreAggReducesTraffic(t *testing.T) {
	run := func(preAgg bool) (float64, int64) {
		cat := newTestCatalog(t)
		eng := NewEngine(4, 32, 2, cat)
		var tuples []types.Tuple
		for i := 0; i < 2000; i++ {
			tuples = append(tuples, types.NewTuple(int64(i), 1.0))
		}
		must(t, eng.Load("items", 0, tuples))
		p := NewPlanSpec()
		scan := p.Add(&OpSpec{Kind: OpScan, Table: "items"})
		proj := p.Add(&OpSpec{
			Kind: OpProject, Inputs: []int{scan.ID},
			Exprs: []expr.Expr{
				expr.NewArith(expr.OpMod, expr.NewCol(0, types.KindInt, "k"), expr.NewConst(int64(5))),
				expr.NewCol(1, types.KindFloat, "v"),
			},
		})
		upstream := proj.ID
		if preAgg {
			pre := p.Add(&OpSpec{
				Kind: OpPreAgg, Inputs: []int{proj.ID}, GroupKey: []int{0},
				Aggs: []AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}}},
			})
			upstream = pre.ID
		}
		rehash := p.Add(&OpSpec{Kind: OpRehash, Inputs: []int{upstream}, HashKey: []int{0}})
		gby := p.Add(&OpSpec{
			Kind: OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
			Aggs: []AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}}},
		})
		p.RootID = gby.ID
		res, err := eng.Run(p, Options{})
		must(t, err)
		total := 0.0
		for _, tup := range res.Tuples {
			v, _ := types.AsFloat(tup[1])
			total += v
		}
		return total, res.BytesSent
	}
	sumPlain, bytesPlain := run(false)
	sumPre, bytesPre := run(true)
	if sumPlain != 2000 || sumPre != 2000 {
		t.Fatalf("sums: %v %v", sumPlain, sumPre)
	}
	if bytesPre >= bytesPlain {
		t.Fatalf("pre-aggregation must cut traffic: %d vs %d", bytesPre, bytesPlain)
	}
}

func TestPlanValidation(t *testing.T) {
	p := NewPlanSpec()
	p.RootID = 5
	if err := p.Validate(); err == nil {
		t.Fatal("bad root must fail")
	}
	p = NewPlanSpec()
	p.Add(&OpSpec{Kind: OpScan}) // missing table
	p.RootID = 0
	if err := p.Validate(); err == nil {
		t.Fatal("scan without table must fail")
	}
	p = NewPlanSpec()
	scan := p.Add(&OpSpec{Kind: OpScan, Table: "t"})
	fix := p.Add(&OpSpec{Kind: OpFixpoint, FixpointKey: []int{0}, Inputs: []int{scan.ID}, RecursiveOut: -1})
	p.RootID = fix.ID
	if err := p.Validate(); err == nil {
		t.Fatal("fixpoint without recursive out must fail")
	}
}
