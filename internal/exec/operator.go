package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

// Operator is a push-based physical operator instance on one worker node.
// Operators run on the node's single event-loop goroutine, so they are
// free of locks.
type Operator interface {
	// Push processes a batch of deltas arriving on the given input port.
	Push(port int, batch []types.Delta) error
	// Punct signals the end of the current stratum on the given port.
	// closed marks the port's final punctuation: no data will ever arrive
	// on it again (base-case inputs close after stratum 0).
	Punct(port, stratum int, closed bool) error
}

// BatchOperator is implemented by operators with a columnar fast path:
// PushBatch consumes a whole types.DeltaBatch without materializing its
// rows as []types.Delta first. The worker and upstream operators probe for
// it with a type assertion and fall back to Push for everything else, so
// implementing it is purely an optimization — semantics must be identical
// to Push(port, b.Deltas()).
//
// Ownership: a pushed batch is borrowed for the duration of the call. An
// implementation must not retain the batch or any slice derived from it
// (decoded batches alias transport frame buffers); anything kept past the
// call must be materialized via Delta/Row/Value, which always yield fresh
// tuples.
type BatchOperator interface {
	Operator
	PushBatch(port int, b *types.DeltaBatch) error
}

// starter is implemented by source operators that produce data when the
// query (or a recovery re-run) starts.
type starter interface {
	Start() error
}

// resetter clears operator state for a recovery re-run.
type resetter interface {
	Reset()
}

// roundReopener is implemented by operators whose punctuation trackers
// treat "closed" as final. A standing query reopens them at the start of
// every ingestion round: base edges close again each round, while all
// accumulated operator state (join buckets, aggregate groups, the fixpoint
// relation) stays resident — that is what makes the re-run incremental.
type roundReopener interface {
	ReopenRound()
}

// checkpointer is implemented by stateful operators participating in
// incremental recovery (§4.3): after every stratum the worker collects the
// state entries dirtied during that stratum and replicates them; on
// recovery, the takeover node restores them in stratum order.
type checkpointer interface {
	// DirtyState drains the entries changed in the current stratum. Each
	// entry is a tuple whose first field is the int64 partition-key hash
	// used for replica placement; the rest is operator-specific.
	DirtyState() []types.Tuple
	// Restore applies checkpointed entries; strata[i] holds the entries
	// of stratum i, applied in ascending order.
	Restore(strata [][]types.Tuple) error
}

// Context carries the per-node runtime a worker exposes to its operators.
type Context struct {
	Node      cluster.NodeID
	Snap      *cluster.Snapshot
	Transport cluster.Transport
	Store     storage.Backend
	Catalog   *catalog.Catalog
	QueryID   string
	Epoch     int
	// BatchSize is the rehash message batching granularity (§4.1:
	// "query processing passes batched messages").
	BatchSize int
	// Compaction enables delta-batch compaction in rehash send buffers.
	Compaction bool
	// CompactionHighWater is the destination-mailbox depth above which
	// compacting senders defer flushes (soft backpressure). It is also the
	// cold-start fallback for adaptive credit windows before the drain
	// meter has a measurement.
	CompactionHighWater int
	// Stratum is the stratum currently executing on this node.
	Stratum int
	// Vectorize routes eligible edges through the columnar batch path
	// (PushBatch) instead of row-at-a-time Push. Operators that cannot
	// vectorize (UDF/handler modes) fall back transparently.
	Vectorize bool
	// Drain is this node's delta drain-rate meter; credit grants are sized
	// from it (Drain.Window) instead of the static high-water constant.
	Drain *cluster.DrainMeter
}

// output is a wired edge to a consumer within the same node.
type output struct {
	op   Operator
	port int
}

// outputs is the fan-out of one operator to its local consumers.
type outputs []output

// send pushes a batch to every consumer.
func (o outputs) send(batch []types.Delta) error {
	if len(batch) == 0 {
		return nil
	}
	for _, out := range o {
		if err := out.op.Push(out.port, batch); err != nil {
			return err
		}
	}
	return nil
}

// sendBatch pushes a columnar batch to every consumer, using the
// vectorized path for consumers that implement it and materializing the
// batch's rows at most once for those that do not. The batch is borrowed:
// consumers must not retain it past their call.
func (o outputs) sendBatch(b *types.DeltaBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	var rows []types.Delta
	for _, out := range o {
		if bo, ok := out.op.(BatchOperator); ok {
			if err := bo.PushBatch(out.port, b); err != nil {
				return err
			}
			continue
		}
		if rows == nil {
			rows = b.Deltas()
		}
		if err := out.op.Push(out.port, rows); err != nil {
			return err
		}
	}
	return nil
}

// punct forwards punctuation to every consumer.
func (o outputs) punct(stratum int, closed bool) error {
	for _, out := range o {
		if err := out.op.Punct(out.port, stratum, closed); err != nil {
			return err
		}
	}
	return nil
}

// portTracker aligns punctuation across an operator's input ports: an
// n-ary operator forwards punctuation only once every open port has seen
// the current stratum's marker (§4.2: "n-ary operators such as a join or
// rehash wait until all inputs have received appropriate punctuation").
type portTracker struct {
	punctAt []int // last punctuated stratum per port, -1 initially
	closed  []bool
}

func newPortTracker(n int) *portTracker {
	t := &portTracker{punctAt: make([]int, n), closed: make([]bool, n)}
	for i := range t.punctAt {
		t.punctAt[i] = -1
	}
	return t
}

// mark records punctuation and reports whether the stratum is complete on
// all ports.
func (t *portTracker) mark(port, stratum int, closed bool) (bool, error) {
	if port < 0 || port >= len(t.punctAt) {
		return false, fmt.Errorf("exec: punct on invalid port %d", port)
	}
	if t.closed[port] {
		return false, fmt.Errorf("exec: punct on closed port %d", port)
	}
	t.punctAt[port] = stratum
	if closed {
		t.closed[port] = true
	}
	return t.aligned(stratum), nil
}

// aligned reports whether all ports are punctuated at stratum or closed.
func (t *portTracker) aligned(stratum int) bool {
	for i := range t.punctAt {
		if t.closed[i] {
			continue
		}
		if t.punctAt[i] < stratum {
			return false
		}
	}
	return true
}

// allClosed reports whether every port is closed.
func (t *portTracker) allClosed() bool {
	for _, c := range t.closed {
		if !c {
			return false
		}
	}
	return true
}

func (t *portTracker) reset() {
	for i := range t.punctAt {
		t.punctAt[i] = -1
		t.closed[i] = false
	}
}

// reopen clears the closed flags while keeping the per-port stratum
// watermarks: a standing query's ingestion round re-punctuates base edges
// (closing them again for the round) at strata past every previous one, so
// watermarks must survive the reopen for alignment to stay monotonic.
func (t *portTracker) reopen() {
	for i := range t.closed {
		t.closed[i] = false
	}
}
