package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// hashJoinOp is REX's pipelined hash join extended with delta propagation
// (§3.3): insertions/deletions/replacements follow the Gupta-Mumick rules;
// δ() value-updates are interpreted by a user-supplied join-state handler
// when one is installed (the paper's UPDATE(LEFTBUCKET, RIGHTBUCKET, D)).
//
// Each input tuple is accumulated into its side's bucket and immediately
// probed against the opposite bucket — the pipelined form of §3.2.
type hashJoinOp struct {
	spec *OpSpec
	outs outputs

	tracker *portTracker
	handler uda.JoinHandler

	left, right map[types.Value]*uda.TupleSet
	// versions tracks handler-bucket versions to detect mutation.
	// dirty records bucket keys mutated in the current stratum, per side.
	dirty [2]map[types.Value]bool
}

func newHashJoinOp(spec *OpSpec, handler uda.JoinHandler) *hashJoinOp {
	return &hashJoinOp{
		spec:    spec,
		tracker: newPortTracker(2),
		handler: handler,
		left:    map[types.Value]*uda.TupleSet{},
		right:   map[types.Value]*uda.TupleSet{},
		dirty:   [2]map[types.Value]bool{{}, {}},
	}
}

func (j *hashJoinOp) bucket(side map[types.Value]*uda.TupleSet, key types.Value) *uda.TupleSet {
	b, ok := side[key]
	if !ok {
		b = &uda.TupleSet{}
		side[key] = b
	}
	return b
}

func (j *hashJoinOp) keyOf(port int, t types.Tuple) types.Value {
	if port == 0 {
		return t.Key(j.spec.LeftKey)
	}
	return t.Key(j.spec.RightKey)
}

func (j *hashJoinOp) Push(port int, batch []types.Delta) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("exec: join port %d out of range", port)
	}
	var out []types.Delta
	for _, d := range batch {
		res, err := j.processDelta(port, d)
		if err != nil {
			return err
		}
		out = append(out, res...)
	}
	return j.outs.send(out)
}

// PushBatch is the columnar join path: rows are processed straight off the
// batch without building an intermediate delta slice. Bucket inserts
// retain their tuples, so each row is materialized fresh via Delta (never
// a reused scratch). Handler mode falls back to the row path — handlers
// see exactly the batches they always did.
func (j *hashJoinOp) PushBatch(port int, b *types.DeltaBatch) error {
	if port != 0 && port != 1 {
		return fmt.Errorf("exec: join port %d out of range", port)
	}
	if j.handler != nil {
		return j.Push(port, b.Deltas())
	}
	var out []types.Delta
	for i := 0; i < b.Len(); i++ {
		res, err := j.processDelta(port, b.Delta(i))
		if err != nil {
			return err
		}
		out = append(out, res...)
	}
	return j.outs.send(out)
}

func (j *hashJoinOp) processDelta(port int, d types.Delta) ([]types.Delta, error) {
	key := j.keyOf(port, d.Tup)
	if d.Op == types.OpReplace {
		// A replacement whose key changed must be split into a deletion at
		// the old key and an insertion at the new key.
		oldKey := j.keyOf(port, d.Old)
		if !types.ValueEq(key, oldKey) {
			del, err := j.processDelta(port, types.Delete(d.Old))
			if err != nil {
				return nil, err
			}
			ins, err := j.processDelta(port, types.Insert(d.Tup))
			if err != nil {
				return nil, err
			}
			return append(del, ins...), nil
		}
	}
	lb := j.bucket(j.left, key)
	rb := j.bucket(j.right, key)

	if j.handler != nil {
		lv, rv := lb.Version(), rb.Version()
		res, err := j.handler.Update(lb, rb, d, port == 0)
		if err != nil {
			return nil, fmt.Errorf("exec: join handler %s: %w", j.handler.Name(), err)
		}
		if lb.Version() != lv {
			j.dirty[0][key] = true
		}
		if rb.Version() != rv {
			j.dirty[1][key] = true
		}
		return res, nil
	}

	mine, opp := lb, rb
	if port == 1 {
		mine, opp = rb, lb
	}
	var out []types.Delta
	probe := func(op types.Op, t types.Tuple) {
		for _, o := range opp.Tuples {
			joined := joinTuples(port, t, o)
			out = append(out, types.Delta{Op: op, Tup: joined})
		}
	}
	switch d.Op {
	case types.OpInsert:
		mine.Add(d.Tup)
		j.dirty[port][key] = true
		probe(types.OpInsert, d.Tup)
	case types.OpDelete:
		if mine.Remove(d.Tup) {
			j.dirty[port][key] = true
		}
		probe(types.OpDelete, d.Tup)
	case types.OpReplace:
		// Same-key replacement: revise the bucket, emit replacements for
		// every matching opposite tuple.
		if mine.ReplaceFirst(d.Old, d.Tup) {
			j.dirty[port][key] = true
		} else {
			mine.Add(d.Tup)
			j.dirty[port][key] = true
		}
		for _, o := range opp.Tuples {
			out = append(out, types.Replace(joinTuples(port, d.Old, o), joinTuples(port, d.Tup, o)))
		}
	case types.OpUpdate:
		// Without a handler, δ() has no special semantics: the annotation
		// rides along as a hidden attribute (§3.3). The tuple behaves like
		// an insertion for state purposes and output deltas keep δ.
		mine.Add(d.Tup)
		j.dirty[port][key] = true
		probe(types.OpUpdate, d.Tup)
	}
	return out, nil
}

// joinTuples concatenates left fields then right fields regardless of which
// side the delta arrived on.
func joinTuples(port int, mine, opposite types.Tuple) types.Tuple {
	if port == 0 {
		out := make(types.Tuple, 0, len(mine)+len(opposite))
		return append(append(out, mine...), opposite...)
	}
	out := make(types.Tuple, 0, len(mine)+len(opposite))
	return append(append(out, opposite...), mine...)
}

func (j *hashJoinOp) Punct(port, stratum int, closed bool) error {
	done, err := j.tracker.mark(port, stratum, closed)
	if err != nil {
		return err
	}
	if !done {
		return nil
	}
	return j.outs.punct(stratum, j.tracker.allClosed())
}

// ReopenRound re-arms punctuation for a standing query's next ingestion
// round; buckets stay resident so base deltas probe accumulated state.
func (j *hashJoinOp) ReopenRound() { j.tracker.reopen() }

func (j *hashJoinOp) Reset() {
	j.left = map[types.Value]*uda.TupleSet{}
	j.right = map[types.Value]*uda.TupleSet{}
	j.dirty = [2]map[types.Value]bool{{}, {}}
	j.tracker.reset()
}

// DirtyState checkpoints the buckets mutated this stratum. Buckets on a
// purely immutable input (rebuilt from base scans during recovery) are
// skipped. Entry layout: [keyHash, side, key, fields...], one entry per
// bucket tuple; an empty dirty bucket still emits a tombstone entry
// [keyHash, side, key] so recovery clears it.
func (j *hashJoinOp) DirtyState() []types.Tuple {
	var out []types.Tuple
	for side := 0; side < 2; side++ {
		if j.spec.ImmutablePort == side {
			j.dirty[side] = map[types.Value]bool{}
			continue
		}
		buckets := j.left
		if side == 1 {
			buckets = j.right
		}
		for key := range j.dirty[side] {
			h := int64(types.HashValue(key))
			b := buckets[key]
			if b == nil || b.Len() == 0 {
				out = append(out, types.NewTuple(h, int64(side), key))
				continue
			}
			for _, t := range b.Tuples {
				entry := types.NewTuple(h, int64(side), key)
				out = append(out, append(entry, t...))
			}
		}
		j.dirty[side] = map[types.Value]bool{}
	}
	return out
}

// Restore rebuilds the mutable buckets from checkpoints, applying strata in
// order; within a stratum, the first entry for a (side, key) resets the
// bucket.
func (j *hashJoinOp) Restore(strata [][]types.Tuple) error {
	for _, entries := range strata {
		type sk struct {
			side int64
			key  types.Value
		}
		seen := map[sk]bool{}
		for _, e := range entries {
			if len(e) < 3 {
				return fmt.Errorf("exec: join restore: bad entry %v", e)
			}
			side, _ := types.AsInt(e[1])
			key := e[2]
			buckets := j.left
			if side == 1 {
				buckets = j.right
			}
			id := sk{side, key}
			if !seen[id] {
				seen[id] = true
				buckets[key] = &uda.TupleSet{}
			}
			if len(e) > 3 {
				buckets[key].Add(e[3:].Clone())
			}
		}
	}
	return nil
}
