// Package exec is the heart of REX: the delta-propagating, pipelined,
// distributed query executor of §3.3 and §4.2. It implements the physical
// operators (scan, filter, project/applyFunction, pipelined hash join,
// group-by, rehash, while/fixpoint), the punctuation protocol that closes
// strata, the query-requestor coordination of recursive termination, and
// the incremental recovery of §4.3.
//
// Worker nodes are single-threaded event loops: within a node operators are
// push-based synchronous calls, so operator state needs no locks; across
// nodes, data travels through the cluster.Transport interface as encoded
// batches — over in-process mailboxes or real TCP sockets, transparently
// to every operator.
package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// OpKind enumerates physical operator kinds.
type OpKind uint8

// Physical operator kinds.
const (
	OpScan OpKind = iota
	OpFilter
	OpProject
	OpTVF
	OpHashJoin
	OpGroupBy
	OpPreAgg
	OpRehash
	OpBroadcast
	OpFixpoint
	OpOutput
)

// String names the operator kind for EXPLAIN output.
func (k OpKind) String() string {
	return [...]string{"Scan", "Filter", "Project", "ApplyTVF", "HashJoin",
		"GroupBy", "PreAgg", "Rehash", "Broadcast", "Fixpoint", "Output"}[k]
}

// AggSpec configures one aggregate column of a group-by.
type AggSpec struct {
	// Fn is the built-in aggregate name (sum, count, min, max, avg, argmin).
	Fn string
	// Args are expressions over the input schema producing the aggregate's
	// arguments (empty for count(*)).
	Args []expr.Expr
	// OutName names the output column.
	OutName string
	// OutKind is the result type.
	OutKind types.Kind
}

// OpSpec describes one operator instance of a physical plan. A single spec
// is instantiated on every worker node (data-partitioned parallelism).
type OpSpec struct {
	ID     int
	Kind   OpKind
	Inputs []int // producing op IDs, in port order

	// Out is the output schema of this operator.
	Out *types.Schema

	// Scan
	Table string

	// Filter
	Pred expr.Expr

	// Project / applyFunction: one expression per output column.
	Exprs []expr.Expr
	// UDFArgKinds enables per-call argument typechecking (the simulated
	// reflection overhead); nil disables it.
	UDFArgKinds [][]types.Kind

	// TVF: a registered table-valued function name.
	TVFName string

	// HashJoin
	LeftKey, RightKey []int // join key column indexes per side
	JoinHandlerName   string
	// ImmutablePort marks the join input fed only by base data (closed
	// after stratum 0); -1 when both sides are mutable.
	ImmutablePort int

	// GroupBy / PreAgg
	GroupKey []int
	Aggs     []AggSpec
	// UDAName selects a table-valued aggregator instead of scalar Aggs.
	UDAName string
	// ResetPerStratum clears group state after each flush, giving
	// per-iteration (rather than cumulative) aggregation — the semantics
	// non-incremental strategies need.
	ResetPerStratum bool

	// Rehash / Broadcast
	HashKey []int
	// CompactMerge declares, per non-key column index, how the shuffle
	// compactor may merge two same-key δ() deltas ("sum", "min", "max").
	// Columns absent from the map must be value-equal for a merge to
	// apply. Declaring a function is only sound when the downstream
	// consumer folds that column with the same function (e.g. a rehash
	// feeding a group-by's sum) — the plan builder asserts that, not the
	// executor. Ignored unless Options.Compaction is on.
	CompactMerge map[int]string

	// Fixpoint
	FixpointKey      []int
	WhileHandlerName string
	// RecursiveOut is the op receiving the next stratum's Δ set.
	RecursiveOut int
	// FinalOut is the op receiving the final state at termination.
	FinalOut int
	// NoDelta makes the fixpoint feed its entire mutable relation (not
	// just the Δ set) into every stratum — the paper's "REX no-delta"
	// baseline strategy (§6 Configurations).
	NoDelta bool
}

// PlanSpec is a complete physical plan: a DAG of OpSpecs (plus one cycle
// through the fixpoint operator for recursive queries).
type PlanSpec struct {
	Ops []*OpSpec
	// RootID is the op whose output is the query result (routed to Output).
	RootID int
	// FixpointID is the fixpoint op for recursive plans, else -1.
	FixpointID int
	// MaxStrata caps recursion (safety net for non-converging queries).
	MaxStrata int
}

// NewPlanSpec creates an empty plan.
func NewPlanSpec() *PlanSpec {
	return &PlanSpec{FixpointID: -1, RootID: -1, MaxStrata: 1000}
}

// Add appends an op, assigning its ID.
func (p *PlanSpec) Add(op *OpSpec) *OpSpec {
	op.ID = len(p.Ops)
	p.Ops = append(p.Ops, op)
	if op.Kind == OpFixpoint {
		p.FixpointID = op.ID
	}
	return op
}

// Op returns the spec with the given id.
func (p *PlanSpec) Op(id int) *OpSpec { return p.Ops[id] }

// Recursive reports whether the plan contains a fixpoint.
func (p *PlanSpec) Recursive() bool { return p.FixpointID >= 0 }

// Validate checks structural invariants before execution.
func (p *PlanSpec) Validate() error {
	if p.RootID < 0 || p.RootID >= len(p.Ops) {
		return fmt.Errorf("exec: plan root %d out of range", p.RootID)
	}
	fixpoints := 0
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			if in < 0 || in >= len(p.Ops) {
				return fmt.Errorf("exec: op %d input %d out of range", op.ID, in)
			}
		}
		switch op.Kind {
		case OpScan:
			if op.Table == "" {
				return fmt.Errorf("exec: scan op %d missing table", op.ID)
			}
			if len(op.Inputs) != 0 {
				return fmt.Errorf("exec: scan op %d must have no inputs", op.ID)
			}
		case OpFilter:
			if op.Pred == nil {
				return fmt.Errorf("exec: filter op %d missing predicate", op.ID)
			}
		case OpProject:
			if len(op.Exprs) == 0 {
				return fmt.Errorf("exec: project op %d has no expressions", op.ID)
			}
		case OpHashJoin:
			if len(op.Inputs) != 2 {
				return fmt.Errorf("exec: join op %d needs two inputs", op.ID)
			}
			if op.JoinHandlerName == "" && (len(op.LeftKey) == 0 || len(op.LeftKey) != len(op.RightKey)) {
				return fmt.Errorf("exec: join op %d has mismatched keys", op.ID)
			}
		case OpGroupBy, OpPreAgg:
			if len(op.Aggs) == 0 && op.UDAName == "" {
				return fmt.Errorf("exec: group-by op %d has no aggregates", op.ID)
			}
		case OpRehash, OpBroadcast:
			if op.Kind == OpRehash && len(op.HashKey) == 0 {
				return fmt.Errorf("exec: rehash op %d missing hash key", op.ID)
			}
		case OpFixpoint:
			fixpoints++
			if len(op.FixpointKey) == 0 {
				return fmt.Errorf("exec: fixpoint op %d missing key", op.ID)
			}
		}
	}
	if fixpoints > 1 {
		return fmt.Errorf("exec: at most one fixpoint per query (stratified recursion)")
	}
	if fixpoints == 1 {
		if p.Op(p.FixpointID).RecursiveOut < 0 {
			return fmt.Errorf("exec: fixpoint missing recursive output")
		}
		if p.RootID != p.FixpointID {
			return fmt.Errorf("exec: recursive plans must root at the fixpoint (its final state is the result)")
		}
	}
	return nil
}

// consumers derives, for every op, the list of (consumerID, port) pairs
// fed by its output. The fixpoint's recursive/final outs are explicit
// fields, not Inputs entries, to keep the DAG acyclic for this derivation.
func (p *PlanSpec) consumers() map[int][]portRef {
	out := map[int][]portRef{}
	for _, op := range p.Ops {
		for port, in := range op.Inputs {
			if p.FixpointID >= 0 && in == p.FixpointID {
				// The fixpoint's recursive feed is wired through
				// RecursiveOut below, not through Inputs, so the edge is
				// not added twice.
				continue
			}
			out[in] = append(out[in], portRef{op: op.ID, port: port})
		}
	}
	for _, op := range p.Ops {
		if op.Kind == OpFixpoint {
			if op.RecursiveOut >= 0 {
				out[op.ID] = append(out[op.ID], portRef{op: op.RecursiveOut, port: fixpointRecursivePort(p, op)})
			}
		}
	}
	return out
}

// fixpointRecursivePort finds which port of the recursive-out op the
// fixpoint feeds: the port whose Inputs entry names the fixpoint, else 0.
func fixpointRecursivePort(p *PlanSpec, fx *OpSpec) int {
	dst := p.Op(fx.RecursiveOut)
	for port, in := range dst.Inputs {
		if in == fx.ID {
			return port
		}
	}
	return 0
}

type portRef struct {
	op   int
	port int
}

// edgeID packs (destination op, port) into the transport Edge field.
func edgeID(op, port int) int { return op<<2 | port }

// splitEdge unpacks a transport Edge field.
func splitEdge(e int) (op, port int) { return e >> 2, e & 3 }
