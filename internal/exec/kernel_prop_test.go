package exec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// Operator-level kernel property: a kernel-equipped filterOp/projectOp
// must emit exactly the deltas of its scratch-tuple bridge — op for op,
// tuple for tuple, old image for old image — including the error when a
// batch contains rows the expression rejects. Both operators only read
// the input batch, so one batch feeds both sides.

// kpSchema: 0 int, 1 float, 2 nullable int, 3 declared-int that may
// drift to boxed-any.
var kpSchema = []types.Kind{types.KindInt, types.KindFloat, types.KindInt, types.KindInt}

func kpValue(r *rand.Rand, col int) types.Value {
	switch col {
	case 0:
		return int64(r.Intn(6) - 2)
	case 1:
		return float64(r.Intn(8)) / 2
	case 2:
		if r.Intn(5) == 0 {
			return nil
		}
		return int64(r.Intn(4))
	default:
		if r.Intn(4) == 0 {
			return "drift"
		}
		return int64(r.Intn(4))
	}
}

func kpTuple(r *rand.Rand) types.Tuple {
	t := make(types.Tuple, len(kpSchema))
	for c := range t {
		t[c] = kpValue(r, c)
	}
	return t
}

func kpBatch(r *rand.Rand, n int) *types.DeltaBatch {
	ds := make([]types.Delta, n)
	for i := range ds {
		tup := kpTuple(r)
		switch r.Intn(5) {
		case 0:
			ds[i] = types.Insert(tup)
		case 1:
			ds[i] = types.Update(tup)
		case 2:
			ds[i] = types.Delete(tup)
		default:
			ds[i] = types.Replace(kpTuple(r), tup)
		}
	}
	b, ok := types.FromDeltas(ds)
	if !ok {
		panic("uniform-arity deltas must batch")
	}
	return b
}

func kpExpr(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 {
		if r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				return expr.NewConst(int64(r.Intn(4)))
			}
			return expr.NewConst(float64(r.Intn(4)))
		}
		c := r.Intn(len(kpSchema))
		return expr.NewCol(c, kpSchema[c], "c")
	}
	sub := func() expr.Expr { return kpExpr(r, depth-1) }
	switch r.Intn(3) {
	case 0:
		return expr.NewArith(expr.ArithOp(r.Intn(5)), sub(), sub())
	default:
		return expr.NewCmp(expr.CmpOp(r.Intn(6)), sub(), sub())
	}
}

func kpPred(r *rand.Rand, depth int) expr.Expr {
	p := kpExpr(r, 1+r.Intn(2))
	if p.Kind() != types.KindBool {
		p = expr.NewCmp(expr.OpGt, p, expr.NewConst(int64(1)))
	}
	if depth > 0 && r.Intn(3) == 0 {
		p = expr.NewLogic(expr.LogicOp(r.Intn(2)), p, kpPred(r, depth-1))
	}
	if r.Intn(5) == 0 {
		p = expr.NewNot(p)
	}
	return p
}

// kpTupEq is Tuple.Equal with NaN equal to itself: float aggregates can
// legitimately produce NaN on both paths, which must not read as a
// divergence.
func kpTupEq(a, b types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if x, ok := a[i].(float64); ok {
			if y, ok := b[i].(float64); ok && math.IsNaN(x) && math.IsNaN(y) {
				continue
			}
		}
		if !types.ValueEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func kpSameDeltas(t *testing.T, label string, got, want []types.Delta) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: kernel emitted %d deltas, bridge %d\nkernel: %v\nbridge: %v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Op != w.Op || !kpTupEq(g.Tup, w.Tup) ||
			(g.Old == nil) != (w.Old == nil) ||
			(g.Old != nil && !kpTupEq(g.Old, w.Old)) {
			t.Fatalf("%s: delta %d differs\nkernel: %v\nbridge: %v", label, i, g, w)
		}
	}
}

func kpSameErr(t *testing.T, label string, kerr, berr error) {
	t.Helper()
	if (kerr == nil) != (berr == nil) {
		t.Fatalf("%s: kernel err %v, bridge err %v", label, kerr, berr)
	}
	if kerr != nil && kerr.Error() != berr.Error() {
		t.Fatalf("%s: kernel err %q, bridge err %q", label, kerr, berr)
	}
}

func TestFilterKernelMatchesBridge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	kernelled := 0
	for iter := 0; iter < 800; iter++ {
		pred := kpPred(r, 2)
		kf := newFilterOp(pred, kpSchema)
		bf := &filterOp{pred: pred} // no kernel: pure bridge
		if kf.kern != nil {
			kernelled++
		}
		ck, cb := &collector{}, &collector{}
		kf.outs = outputs{{op: ck, port: 0}}
		bf.outs = outputs{{op: cb, port: 0}}
		b := kpBatch(r, 1+r.Intn(20))
		kerr := kf.PushBatch(0, b)
		berr := bf.PushBatch(0, b)
		kpSameErr(t, pred.String(), kerr, berr)
		if kerr == nil {
			kpSameDeltas(t, pred.String(), ck.deltas, cb.deltas)
		}
	}
	if kernelled < 200 {
		t.Fatalf("only %d of 800 predicates compiled to kernels", kernelled)
	}
}

func TestProjectKernelMatchesBridge(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	kernelled := 0
	for iter := 0; iter < 800; iter++ {
		exprs := make([]expr.Expr, 1+r.Intn(3))
		for i := range exprs {
			exprs[i] = kpExpr(r, r.Intn(3))
		}
		kp := newProjectOp(exprs, nil, kpSchema)
		bp := newProjectOp(exprs, nil, nil)
		bp.kerns = nil // force the row-interpreter bridge
		if kp.kerns != nil {
			kernelled++
		}
		ck, cb := &collector{}, &collector{}
		kp.outs = outputs{{op: ck, port: 0}}
		bp.outs = outputs{{op: cb, port: 0}}
		b := kpBatch(r, 1+r.Intn(20))
		kerr := kp.PushBatch(0, b)
		berr := bp.PushBatch(0, b)
		label := ""
		for _, e := range exprs {
			label += e.String() + "; "
		}
		kpSameErr(t, label, kerr, berr)
		if kerr == nil {
			kpSameDeltas(t, label, ck.deltas, cb.deltas)
		}
	}
	if kernelled < 200 {
		t.Fatalf("only %d of 800 projections compiled to kernels", kernelled)
	}
}

// kpFlush drives a stratum-0 punctuation and returns the flushed deltas
// in a canonical order (group flush iterates a map).
func kpFlush(t *testing.T, op Operator, c *collector) []types.Delta {
	t.Helper()
	if err := op.Punct(0, 0, true); err != nil {
		t.Fatal(err)
	}
	out := append([]types.Delta(nil), c.deltas...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func TestGroupByKernelMatchesBridge(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	kernelled := 0
	for iter := 0; iter < 300; iter++ {
		spec := &OpSpec{
			GroupKey: []int{r.Intn(2)},
			Aggs: []AggSpec{
				{Fn: []string{"sum", "count", "min", "max", "avg"}[r.Intn(5)],
					Args: []expr.Expr{kpExpr(r, r.Intn(2))}, OutName: "a"},
			},
		}
		if spec.Aggs[0].Fn == "count" && r.Intn(2) == 0 {
			spec.Aggs[0].Args = nil // count(*)
		}
		kg, err := newGroupByOp(spec, 1, nil, kpSchema)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := newGroupByOp(spec, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if kg.argKerns != nil {
			kernelled++
		}
		ck, cb := &collector{}, &collector{}
		kg.outs = outputs{{op: ck, port: 0}}
		bg.outs = outputs{{op: cb, port: 0}}
		b := kpBatch(r, 1+r.Intn(20))
		kerr := kg.PushBatch(0, b)
		berr := bg.PushBatch(0, b)
		kpSameErr(t, spec.Aggs[0].Fn, kerr, berr)
		if kerr != nil {
			continue
		}
		kpSameDeltas(t, spec.Aggs[0].Fn, kpFlush(t, kg, ck), kpFlush(t, bg, cb))
	}
	if kernelled < 100 {
		t.Fatalf("only %d of 300 group-bys compiled arg kernels", kernelled)
	}
}

func TestPreAggKernelMatchesBridge(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	kernelled := 0
	for iter := 0; iter < 300; iter++ {
		spec := &OpSpec{
			GroupKey: []int{r.Intn(2)},
			Aggs: []AggSpec{
				{Fn: []string{"sum", "count", "min", "max"}[r.Intn(4)],
					Args: []expr.Expr{kpExpr(r, r.Intn(2))}, OutName: "a"},
			},
		}
		kp, err := newPreAggOp(spec, 1, kpSchema)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := newPreAggOp(spec, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if kp.argKerns != nil {
			kernelled++
		}
		ck, cb := &collector{}, &collector{}
		kp.outs = outputs{{op: ck, port: 0}}
		bp.outs = outputs{{op: cb, port: 0}}
		b := kpBatch(r, 1+r.Intn(20))
		kerr := kp.PushBatch(0, b)
		berr := bp.PushBatch(0, b)
		kpSameErr(t, spec.Aggs[0].Fn, kerr, berr)
		if kerr != nil {
			continue
		}
		kpSameDeltas(t, spec.Aggs[0].Fn, kpFlush(t, kp, ck), kpFlush(t, bp, cb))
	}
	if kernelled < 100 {
		t.Fatalf("only %d of 300 pre-aggs compiled arg kernels", kernelled)
	}
}
