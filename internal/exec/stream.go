package exec

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"github.com/rex-data/rex/internal/types"
)

// StreamBatch is one element of a streaming result: the state changes one
// stratum made to the recursive relation (or, for non-recursive plans, one
// batch of result deltas under stratum 0). Folding every batch of a stream
// in order reproduces the final relation a buffered run would return.
type StreamBatch struct {
	Stratum int
	Deltas  []types.Delta
	// Round is the ingestion round that produced this batch on a standing
	// query: 0 for the initial fixpoint (and for every batch of a plain
	// streaming query), r for the r-th incremental ingestion. Stratum is
	// round-relative on standing queries.
	Round int
}

// ResultStream is an iterator over the per-stratum delta batches of a
// running query. The query executes concurrently with consumption; batches
// are yielded as punctuation closes each stratum, so a standing consumer
// observes the fixpoint converge instead of waiting for the full result
// set to buffer in the requestor.
//
// A stream must be fully consumed (Next until false) or Closed; otherwise
// the producing query blocks forever on the batch channel.
type ResultStream struct {
	batches chan StreamBatch
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelCauseFunc

	// src, when non-nil, replaces the channel with an unbounded spool — the
	// standing-query delivery path, where a consumer may interleave Ingest
	// calls and reads on one goroutine and must never deadlock on a full
	// buffer. Exactly one of batches/src is set.
	src *spool

	res *Result
	err error
}

// errStreamClosed is the cancellation cause Close installs, so it can tell
// its own cancellation apart from one arriving through the caller's ctx.
var errStreamClosed = errors.New("exec: stream closed")

// Stream executes the plan in streaming mode and returns the result
// stream. The run honors ctx like RunCtx; Close cancels it. Streaming
// runs reject failure-recovery options — a mid-stream recovery would
// re-emit deltas the consumer already saw.
func (e *Engine) Stream(ctx context.Context, spec *PlanSpec, opts Options) (*ResultStream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Recovery != RecoveryNone {
		return nil, fmt.Errorf("exec: streaming runs do not support failure recovery")
	}
	opts.Stream = true
	ctx, cancel := context.WithCancelCause(ctx)
	s := &ResultStream{
		batches: make(chan StreamBatch, 16),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	go func() {
		defer cancel(nil)
		res, err := e.run(ctx, spec, opts, func(stratum int, batch []types.Delta) {
			select {
			case s.batches <- StreamBatch{Stratum: stratum, Deltas: batch}:
			case <-ctx.Done():
				// Consumer gone (Close) or deadline hit: drop the batch;
				// the run is unwinding with ctx.Err().
			}
		})
		s.res, s.err = res, err
		// done must close before batches: a consumer unblocked by the
		// batches close may immediately call Err/Result, which are only
		// valid once done is observable.
		close(s.done)
		close(s.batches)
	}()
	return s, nil
}

// Next returns the next delta batch, blocking until one closes or the
// stream ends. ok is false when the stream is exhausted (or failed — check
// Err).
func (s *ResultStream) Next() (batch StreamBatch, ok bool) {
	if s.src != nil {
		return s.src.pop()
	}
	batch, ok = <-s.batches
	return batch, ok
}

// TryNext returns the next buffered batch without blocking; ok is false
// when nothing is currently buffered (the stream may still be live). On a
// standing query's stream this drains exactly the batches already emitted —
// after an Ingest call returns, the whole round is buffered.
func (s *ResultStream) TryNext() (batch StreamBatch, ok bool) {
	if s.src != nil {
		return s.src.tryPop()
	}
	select {
	case batch, ok = <-s.batches:
		return batch, ok
	default:
		return StreamBatch{}, false
	}
}

// Seq adapts the stream to a Go range-over-func iterator yielding
// (stratum, deltas) pairs:
//
//	for stratum, deltas := range stream.Seq() { ... }
//
// Breaking out of the loop abandons the stream; call Close to release it.
func (s *ResultStream) Seq() iter.Seq2[int, []types.Delta] {
	return func(yield func(int, []types.Delta) bool) {
		for {
			b, ok := s.Next()
			if !ok {
				return
			}
			if !yield(b.Stratum, b.Deltas) {
				return
			}
		}
	}
}

// Err reports the query's terminal error. Valid after Next returned
// ok=false (or after Close); nil on clean completion.
func (s *ResultStream) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Result returns the completed run's statistics (strata, duration, wire
// bytes; Tuples is nil — the tuples travelled through the stream). Valid
// after the stream is exhausted; nil before that or on error.
func (s *ResultStream) Result() *Result {
	select {
	case <-s.done:
		if s.err != nil {
			return nil
		}
		return s.res
	default:
		return nil
	}
}

// Done is closed when the producing run has fully torn down (workers
// joined, metrics synced). Session-level callers use it to serialize the
// next query behind a stream still unwinding.
func (s *ResultStream) Done() <-chan struct{} { return s.done }

// Close abandons the stream: it cancels the underlying run, drains any
// buffered batches, and waits for teardown. Returns the terminal error; a
// cancellation caused by Close itself reports nil, while one that arrived
// through the caller's ctx reports context.Canceled.
func (s *ResultStream) Close() error {
	s.cancel(errStreamClosed)
	if s.src != nil {
		for {
			if _, ok := s.src.pop(); !ok {
				break
			}
		}
	} else {
		for range s.batches {
		}
	}
	<-s.done
	if errors.Is(s.err, context.Canceled) && errors.Is(context.Cause(s.ctx), errStreamClosed) {
		return nil
	}
	return s.err
}

// Detach cancels the producing run like Close but does NOT consume the
// buffer: already-emitted batches stay readable (Next/TryNext) after it
// returns. It waits for the run's teardown and reports the terminal
// error, nil when the cancellation was Detach's own. Standing-query
// subscriptions close through it — "ingest, close, then fold the stream"
// must see every round that completed before the close.
func (s *ResultStream) Detach() error {
	s.cancel(errStreamClosed)
	<-s.done
	if errors.Is(s.err, context.Canceled) && errors.Is(context.Cause(s.ctx), errStreamClosed) {
		return nil
	}
	return s.err
}

// Drain consumes the remainder of the stream, folding every batch into a
// result set, and returns the completed Result with Tuples materialized —
// the streaming equivalent of a buffered RunCtx.
func (s *ResultStream) Drain() (*Result, error) {
	acc := newResultSet()
	for {
		b, ok := s.Next()
		if !ok {
			break
		}
		acc.apply(b.Deltas)
	}
	<-s.done
	if s.err != nil {
		return nil, s.err
	}
	res := *s.res
	res.Tuples = acc.materialize()
	return &res, nil
}
