package exec

import (
	"fmt"
	"strings"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// scanOp streams this node's primary partition of a base table, then emits
// a closed punctuation: base data never changes during a query, so scans
// participate only in stratum 0.
type scanOp struct {
	ctx   *Context
	id    int
	table string
	outs  outputs
	batch int
}

func (s *scanOp) Start() error {
	if s.ctx.Vectorize {
		return s.startVec()
	}
	buf := make([]types.Delta, 0, s.batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := s.outs.send(buf)
		buf = buf[:0]
		return err
	}
	err := s.ctx.Store.ScanOwned(s.table, s.ctx.Snap, func(t types.Tuple) error {
		buf = append(buf, types.Insert(t))
		if len(buf) >= s.batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	return s.outs.punct(0, true)
}

// startVec is Start on the columnar path: the partition scan fills one
// pooled batch per BatchSize rows and hands it downstream as a unit, so a
// vectorized pipeline runs the whole base stratum without materializing
// per-row deltas.
func (s *scanOp) startVec() error {
	b := types.GetBatch()
	defer types.PutBatch(b)
	flush := func() error {
		err := s.outs.sendBatch(b)
		b.Reset()
		return err
	}
	err := s.ctx.Store.ScanOwned(s.table, s.ctx.Snap, func(t types.Tuple) error {
		b.AppendInsert(t)
		if b.Len() >= s.batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	return s.outs.punct(0, true)
}

// Inject feeds a base-table delta batch through this scan's edge during a
// standing query's ingestion round: the deltas enter the dataflow exactly
// where a fresh scan of the revised table would have emitted them, so every
// downstream operator revises resident state instead of recomputing. The
// round's punctuation is sent separately (punctRound) once every scan on
// the node has injected, preserving the data-before-punctuation discipline
// across tables.
func (s *scanOp) Inject(batch []types.Delta) error {
	if s.ctx.Vectorize {
		b := types.GetBatch()
		defer types.PutBatch(b)
		for _, d := range batch {
			if !b.CanAppend(d) || b.Len() >= s.batch {
				if err := s.outs.sendBatch(b); err != nil {
					return err
				}
				b.Reset()
			}
			b.Append(d)
		}
		return s.outs.sendBatch(b)
	}
	for len(batch) > 0 {
		n := min(s.batch, len(batch))
		if err := s.outs.send(batch[:n]); err != nil {
			return err
		}
		batch = batch[n:]
	}
	return nil
}

// punctRound closes this scan's contribution to an ingestion round's base
// stratum. Closed is per-round: standing consumers reopen their trackers at
// every round start.
func (s *scanOp) punctRound(stratum int) error {
	return s.outs.punct(stratum, true)
}

func (s *scanOp) Push(int, []types.Delta) error { return fmt.Errorf("exec: scan has no inputs") }
func (s *scanOp) Punct(int, int, bool) error    { return fmt.Errorf("exec: scan has no inputs") }

// filterOp applies a predicate with proper delta semantics: a replacement
// whose old and new tuples fall on different sides of the predicate
// degrades into a bare insertion or deletion. When the predicate compiles
// to a column kernel, whole batches are evaluated with typed loops and
// survivors copied via the selection vector; batches the kernel declines
// (and predicates that never compiled) bridge through scratch tuples.
type filterOp struct {
	pred expr.Expr
	kern *expr.Kernel
	outs outputs

	// kernel scratch: per-row verdicts over new and old images, and the
	// replace-row selection, reused across batches.
	selNew  []bool
	selOld  []bool
	oldRows []int32
}

// newFilterOp builds the operator and compiles the predicate kernel when
// the expression shape allows it (schema may be nil when the plan did
// not record the input schema).
func newFilterOp(pred expr.Expr, schema []types.Kind) *filterOp {
	f := &filterOp{pred: pred}
	if k, ok := expr.Compile(pred, schema); ok {
		f.kern = k
		kernelCompiled.Add(1)
	}
	return f
}

func (f *filterOp) Push(port int, batch []types.Delta) error {
	out := make([]types.Delta, 0, len(batch))
	for _, d := range batch {
		switch d.Op {
		case types.OpReplace:
			oldOK, err := expr.EvalBool(f.pred, d.Old)
			if err != nil {
				return err
			}
			newOK, err := expr.EvalBool(f.pred, d.Tup)
			if err != nil {
				return err
			}
			switch {
			case oldOK && newOK:
				out = append(out, d)
			case oldOK:
				out = append(out, types.Delete(d.Old))
			case newOK:
				out = append(out, types.Insert(d.Tup))
			}
		default:
			ok, err := expr.EvalBool(f.pred, d.Tup)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, d)
			}
		}
	}
	return f.outs.send(out)
}

// PushBatch is the columnar filter path. With a compiled kernel the
// predicate runs column-wise over the whole batch (one pass for new
// images, one over the old images of replace rows); without one — or
// when the kernel declines the batch — rows bridge through the scratch-
// tuple row path below, which is the semantic ground truth.
func (f *filterOp) PushBatch(port int, b *types.DeltaBatch) error {
	if b.Len() > 0 {
		if f.kern != nil {
			if done, err := f.pushKernel(b); done {
				return err
			}
			kernelFallbackEvals.Add(1)
		} else {
			kernelBridgedBatches.Add(1)
		}
	}
	return f.pushBridged(b)
}

// pushKernel evaluates the predicate kernel over the batch and emits
// survivors via selection-vector copy — no per-row scratch tuples except
// for degraded replaces. done=false declines to the bridged path without
// having emitted anything.
func (f *filterOp) pushKernel(b *types.DeltaBatch) (bool, error) {
	n := b.Len()
	rows := f.kern.AllRows(n)
	f.selNew = growBools(f.selNew, n)
	if !f.kern.EvalBools(b, false, rows, f.selNew) {
		return false, nil
	}
	hasOld := b.HasOld()
	if hasOld {
		f.oldRows = f.oldRows[:0]
		for i := 0; i < n; i++ {
			if b.Op(i) == types.OpReplace {
				f.oldRows = append(f.oldRows, int32(i))
			}
		}
		if len(f.oldRows) > 0 {
			f.selOld = growBools(f.selOld, n)
			if !f.kern.EvalBools(b, true, f.oldRows, f.selOld) {
				return false, nil
			}
		}
	}
	kernelVectorBatches.Add(1)
	out := types.GetBatch()
	defer types.PutBatch(out)
	var scratch types.Tuple
	for i := 0; i < n; i++ {
		if b.Op(i) == types.OpReplace && hasOld {
			oldOK, newOK := f.selOld[i], f.selNew[i]
			switch {
			case oldOK && newOK:
				if !out.CanAppendRowFrom(b, i) {
					if err := f.flushVec(out); err != nil {
						return true, err
					}
				}
				out.AppendRowFrom(b, i)
			case oldOK:
				scratch = b.OldRow(i, scratch)
				d := types.Delete(scratch)
				if !out.CanAppend(d) {
					if err := f.flushVec(out); err != nil {
						return true, err
					}
				}
				out.Append(d)
			case newOK:
				scratch = b.Row(i, scratch)
				d := types.Insert(scratch)
				if !out.CanAppend(d) {
					if err := f.flushVec(out); err != nil {
						return true, err
					}
				}
				out.Append(d)
			}
			continue
		}
		if f.selNew[i] {
			if !out.CanAppendRowFrom(b, i) {
				if err := f.flushVec(out); err != nil {
					return true, err
				}
			}
			out.AppendRowFrom(b, i)
		}
	}
	return true, f.outs.sendBatch(out)
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// pushBridged is the scratch-tuple bridge: rows are evaluated against a
// reused scratch tuple (no per-row allocation) and survivors are copied
// column-wise into a pooled output batch, so typed vectors never round-
// trip through boxed deltas. Replace degradation matches Push exactly.
// This is a documented expr.EvalBool fallback site.
func (f *filterOp) pushBridged(b *types.DeltaBatch) error {
	out := types.GetBatch()
	defer types.PutBatch(out)
	var scratch, oldScratch types.Tuple
	for i := 0; i < b.Len(); i++ {
		if b.Op(i) == types.OpReplace && b.HasOld() {
			oldScratch = b.OldRow(i, oldScratch)
			scratch = b.Row(i, scratch)
			oldOK, err := expr.EvalBool(f.pred, oldScratch)
			if err != nil {
				return err
			}
			newOK, err := expr.EvalBool(f.pred, scratch)
			if err != nil {
				return err
			}
			switch {
			case oldOK && newOK:
				if !out.CanAppendRowFrom(b, i) {
					if err := f.flushVec(out); err != nil {
						return err
					}
				}
				out.AppendRowFrom(b, i)
			case oldOK:
				d := types.Delete(oldScratch)
				if !out.CanAppend(d) {
					if err := f.flushVec(out); err != nil {
						return err
					}
				}
				out.Append(d)
			case newOK:
				d := types.Insert(scratch)
				if !out.CanAppend(d) {
					if err := f.flushVec(out); err != nil {
						return err
					}
				}
				out.Append(d)
			}
			continue
		}
		scratch = b.Row(i, scratch)
		ok, err := expr.EvalBool(f.pred, scratch)
		if err != nil {
			return err
		}
		if ok {
			if !out.CanAppendRowFrom(b, i) {
				if err := f.flushVec(out); err != nil {
					return err
				}
			}
			out.AppendRowFrom(b, i)
		}
	}
	return f.outs.sendBatch(out)
}

func (f *filterOp) flushVec(out *types.DeltaBatch) error {
	if err := f.outs.sendBatch(out); err != nil {
		return err
	}
	out.Reset()
	return nil
}

func (f *filterOp) Punct(port, stratum int, closed bool) error {
	return f.outs.punct(stratum, closed)
}

// projectOp is applyFunction/projection: one expression per output column,
// annotations propagated unchanged (§3.3, stateless operators). Replacement
// deltas map both tuples; no-op replacements are dropped. Deterministic
// UDF calls are memoized (§5.1 "Caching"), and when UDFArgKinds is set the
// operator typechecks boxed arguments per batch — the Go stand-in for the
// paper's Java reflection overhead, amortized by input batching (§4.2).
type projectOp struct {
	exprs    []expr.Expr
	outs     outputs
	memo     map[string]types.Tuple
	memoable bool
	argKinds [][]types.Kind

	// kerns holds one compiled kernel per output expression; nil unless
	// every expression compiled and no per-batch UDF machinery (memo,
	// typecheck) needs the row path.
	kerns   []*expr.Kernel
	newVecs []*types.Vec
	oldVecs []*types.Vec
	oldRows []int32
}

func newProjectOp(exprs []expr.Expr, argKinds [][]types.Kind, schema []types.Kind) *projectOp {
	p := &projectOp{exprs: exprs, argKinds: argKinds}
	p.memoable = true
	for _, e := range exprs {
		if c, ok := e.(*expr.Call); ok && !c.Deterministic {
			p.memoable = false
		}
	}
	hasCall := false
	for _, e := range exprs {
		if _, ok := e.(*expr.Call); ok {
			hasCall = true
		}
	}
	if hasCall && p.memoable {
		p.memo = map[string]types.Tuple{}
	}
	// Kernels apply only to pure column expressions: a UDF anywhere (it
	// would not compile, and memoization/typechecking live on the row
	// path) keeps the whole operator bridged.
	if p.memo == nil && p.argKinds == nil && !hasCall {
		kerns := make([]*expr.Kernel, len(exprs))
		all := true
		for i, e := range exprs {
			k, ok := expr.Compile(e, schema)
			if !ok {
				all = false
				break
			}
			kerns[i] = k
		}
		if all && len(kerns) > 0 {
			p.kerns = kerns
			kernelCompiled.Add(int64(len(kerns)))
		}
	}
	return p
}

func (p *projectOp) apply(t types.Tuple) (types.Tuple, error) {
	if p.memo != nil {
		key := t.String()
		if out, ok := p.memo[key]; ok {
			return out, nil
		}
		out, err := p.eval(t)
		if err != nil {
			return nil, err
		}
		if len(p.memo) < 1<<16 { // bounded cache
			p.memo[key] = out
		}
		return out, nil
	}
	return p.eval(t)
}

func (p *projectOp) eval(t types.Tuple) (types.Tuple, error) {
	out := make(types.Tuple, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// typecheck simulates the reflection-driven argument validation REX
// performs when invoking user code; batching lets the engine do it once
// per batch rather than per tuple.
func (p *projectOp) typecheck(t types.Tuple) error {
	for i, kinds := range p.argKinds {
		if kinds == nil {
			continue
		}
		cols := expr.Columns(p.exprs[i])
		for j, c := range cols {
			if j >= len(kinds) {
				break
			}
			if c < len(t) && t[c] != nil && types.KindOf(t[c]) != kinds[j] {
				return fmt.Errorf("exec: UDF argument %d: got %v want %v", j, types.KindOf(t[c]), kinds[j])
			}
		}
	}
	return nil
}

func (p *projectOp) Push(port int, batch []types.Delta) error {
	if p.argKinds != nil && len(batch) > 0 {
		if err := p.typecheck(batch[0].Tup); err != nil {
			return err
		}
	}
	out := make([]types.Delta, 0, len(batch))
	for _, d := range batch {
		nt, err := p.apply(d.Tup)
		if err != nil {
			return err
		}
		nd := d.WithTuple(nt)
		if d.Op == types.OpReplace {
			ot, err := p.apply(d.Old)
			if err != nil {
				return err
			}
			if nt.Equal(ot) {
				continue // replacement invisible after projection
			}
			nd.Old = ot
		}
		out = append(out, nd)
	}
	return p.outs.send(out)
}

// PushBatch is the columnar projection path: output batches are built
// column-at-a-time from kernel result vectors (new images in one pass,
// old images of replace rows in a second), with no-op replacements
// dropped by a typed row-equality check. Batches the kernels decline —
// and operators whose expressions never compiled — materialize rows and
// run the Push path, the semantic ground truth.
func (p *projectOp) PushBatch(port int, b *types.DeltaBatch) error {
	if b.Len() > 0 {
		if p.kerns != nil {
			if done, err := p.pushKernel(b); done {
				return err
			}
			kernelFallbackEvals.Add(1)
		} else {
			kernelBridgedBatches.Add(1)
		}
	}
	return p.Push(port, b.Deltas())
}

func (p *projectOp) pushKernel(b *types.DeltaBatch) (bool, error) {
	n := b.Len()
	p.oldRows = p.oldRows[:0]
	for i := 0; i < n; i++ {
		if b.Op(i) == types.OpReplace {
			p.oldRows = append(p.oldRows, int32(i))
		}
	}
	if len(p.oldRows) > 0 && !b.HasOld() {
		return false, nil // degenerate replace without old images: row path arbitrates
	}
	if p.newVecs == nil {
		p.newVecs = make([]*types.Vec, len(p.kerns))
		p.oldVecs = make([]*types.Vec, len(p.kerns))
		for j := range p.kerns {
			p.newVecs[j] = new(types.Vec)
			p.oldVecs[j] = new(types.Vec)
		}
	}
	rows := p.kerns[0].AllRows(n)
	for j, k := range p.kerns {
		if !k.EvalInto(b, false, rows, p.newVecs[j]) {
			return false, nil
		}
	}
	if len(p.oldRows) > 0 {
		for j, k := range p.kerns {
			if !k.EvalInto(b, true, p.oldRows, p.oldVecs[j]) {
				return false, nil
			}
		}
	}
	kernelVectorBatches.Add(1)
	out := types.GetBatch()
	defer types.PutBatch(out)
	for i := 0; i < n; i++ {
		op := b.Op(i)
		if op == types.OpReplace {
			if types.VecRowEq(p.newVecs, p.oldVecs, i) {
				continue // replacement invisible after projection
			}
			out.AppendVecRow(op, p.newVecs, p.oldVecs, i)
			continue
		}
		out.AppendVecRow(op, p.newVecs, nil, i)
	}
	return true, p.outs.sendBatch(out)
}

func (p *projectOp) Punct(port, stratum int, closed bool) error {
	return p.outs.punct(stratum, closed)
}

// tvfOp is the dependent-join operator: each input delta is passed to a
// table-valued function whose results are emitted (§4.2). TVFs may create
// or manipulate annotations arbitrarily, like applyFunction.
type tvfOp struct {
	fn   *catalog.TVFDef
	outs outputs
}

func (o *tvfOp) Push(port int, batch []types.Delta) error {
	var out []types.Delta
	for _, d := range batch {
		res, err := o.fn.Fn(d)
		if err != nil {
			return fmt.Errorf("exec: TVF %s: %w", o.fn.Name, err)
		}
		out = append(out, res...)
	}
	return o.outs.send(out)
}

func (o *tvfOp) Punct(port, stratum int, closed bool) error {
	return o.outs.punct(stratum, closed)
}

// outputOp forwards result deltas to the query requestor and reports
// completion when its input closes. Result frames use the reserved edge.
type outputOp struct {
	ctx *Context
}

// resultEdge is the reserved transport edge for result traffic.
const resultEdge = -1

func (o *outputOp) Push(port int, batch []types.Delta) error {
	payload := cluster.EncodeDeltas(batch)
	o.ctx.Transport.SendToRequestor(cluster.Message{
		From: o.ctx.Node, Kind: cluster.MsgData, Edge: resultEdge,
		Payload: payload, Count: len(batch), Epoch: o.ctx.Epoch,
	})
	return nil
}

// PushBatch ships a result batch in the columnar wire format without
// materializing rows. The payload buffer is freshly allocated, not pooled:
// requestor-bound messages are delivered by reference in-process, so the
// payload outlives this call.
func (o *outputOp) PushBatch(port int, b *types.DeltaBatch) error {
	payload := cluster.EncodeDeltaBatch(nil, b)
	o.ctx.Transport.SendToRequestor(cluster.Message{
		From: o.ctx.Node, Kind: cluster.MsgData, Edge: resultEdge,
		Payload: payload, Count: b.Len(), Epoch: o.ctx.Epoch,
	})
	return nil
}

func (o *outputOp) Punct(port, stratum int, closed bool) error {
	if closed {
		o.ctx.Transport.SendToRequestor(cluster.Message{
			From: o.ctx.Node, Kind: cluster.MsgPunct, Edge: resultEdge,
			Stratum: stratum, Epoch: o.ctx.Epoch,
		})
	}
	return nil
}

// describeExprs renders expressions for EXPLAIN.
func describeExprs(es []expr.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
