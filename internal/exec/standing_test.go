package exec

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// foldBatches replays stream batches the way a subscriber materializing the
// view would.
func foldBatches(t *testing.T, st *ResultStream, n int) *resultSet {
	t.Helper()
	acc := newResultSet()
	for i := 0; i < n; i++ {
		b, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended after %d of %d batches: %v", i, n, st.Err())
		}
		acc.apply(b.Deltas)
	}
	return acc
}

func sortTuples(ts []types.Tuple) []types.Tuple {
	out := append([]types.Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func tuplesMatch(t *testing.T, got, want []types.Tuple, label string) {
	t.Helper()
	g, w := sortTuples(got), sortTuples(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, want %d\ngot:  %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// aggPlan is a non-recursive scan→rehash→group-by plan over items(id, v).
func aggPlan() *PlanSpec {
	p := NewPlanSpec()
	scan := p.Add(&OpSpec{Kind: OpScan, Table: "items"})
	rehash := p.Add(&OpSpec{Kind: OpRehash, Inputs: []int{scan.ID}, HashKey: []int{0}})
	gby := p.Add(&OpSpec{
		Kind: OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: []int{0},
		Aggs: []AggSpec{
			{Fn: "count", OutName: "n"},
			{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "v")}, OutName: "s"},
		},
	})
	p.RootID = gby.ID
	return p
}

func aggCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name: "items", Schema: types.MustSchema("g:Integer", "v:Double"), PartitionKey: 0,
	}))
	return cat
}

// TestStandingNonRecursive runs a standing aggregation through insert and
// delete rounds and checks the folded stream equals a from-scratch run on
// the final data — and that the standing engine's own stores were kept
// current, so the recompute can run on the same engine.
func TestStandingNonRecursive(t *testing.T) {
	cat := aggCatalog(t)
	eng := NewEngine(3, 32, 2, cat)
	r := rand.New(rand.NewSource(11))
	var base []types.Tuple
	for i := 0; i < 400; i++ {
		base = append(base, types.NewTuple(int64(r.Intn(20)), float64(r.Intn(50))))
	}
	must(t, eng.Load("items", 0, base))

	sq, err := eng.Standing(context.Background(), aggPlan(), Options{})
	must(t, err)
	st := sq.Stream()
	rounds := sq.Rounds()
	if len(rounds) != 1 || rounds[0].Round != 0 {
		t.Fatalf("after Standing: rounds = %+v", rounds)
	}
	acc := foldBatches(t, st, rounds[0].Batches)

	// Round 1: inserts (some into existing groups, some new). Round 2:
	// deletes of a base tuple and an ingested one — group-by count/sum are
	// invertible, so the revised groups stream as replacements.
	ins := []types.Delta{
		types.Insert(types.NewTuple(int64(3), 7.0)),
		types.Insert(types.NewTuple(int64(99), 1.0)),
		types.Insert(types.NewTuple(int64(99), 2.0)),
	}
	del := []types.Delta{
		types.Delete(base[0]),
		types.Delete(types.NewTuple(int64(99), 1.0)),
	}
	for i, ds := range [][]types.Delta{ins, del} {
		rs, err := sq.Ingest(context.Background(), map[string][]types.Delta{"items": ds})
		must(t, err)
		if rs.Round != i+1 || rs.IngestedDeltas != len(ds) {
			t.Fatalf("round %d stats: %+v", i+1, rs)
		}
		for j := 0; j < rs.Batches; j++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early: %v", st.Err())
			}
			acc.apply(b.Deltas)
		}
	}
	must(t, sq.Close())

	// Recompute from scratch: the standing engine's stores absorbed the
	// ingested deltas, so the same engine answers the final state.
	want, err := eng.Run(aggPlan(), Options{})
	must(t, err)
	tuplesMatch(t, acc.materialize(), want.Tuples, "standing fold vs recompute")
}

// reachPlan builds a recursive reachability (transitive-closure) plan over
// edges(src,dst) and seed(v) using the DEFAULT join and fixpoint semantics
// (no handlers): base-table deltas re-derive through the Gupta–Mumick
// rules — an inserted edge probes the resident reached-set bucket and emits
// the newly reachable frontier incrementally. Set semantics make the
// fixpoint confluent, so incremental rounds and a from-scratch recompute
// land on the identical relation.
func reachPlan() *PlanSpec {
	p := NewPlanSpec()
	edges := p.Add(&OpSpec{Kind: OpScan, Table: "edges"})
	seed := p.Add(&OpSpec{Kind: OpScan, Table: "seed"})
	fix := p.Add(&OpSpec{Kind: OpFixpoint, FixpointKey: []int{0}})
	join := p.Add(&OpSpec{
		Kind: OpHashJoin, Inputs: []int{edges.ID, fix.ID},
		LeftKey: []int{0}, RightKey: []int{0}, ImmutablePort: 0,
	})
	// join output: (src, dst, v) → project (dst)
	proj := p.Add(&OpSpec{
		Kind: OpProject, Inputs: []int{join.ID},
		Exprs: []expr.Expr{expr.NewCol(1, types.KindInt, "dst")},
	})
	rehash := p.Add(&OpSpec{Kind: OpRehash, Inputs: []int{proj.ID}, HashKey: []int{0}})
	fix.Inputs = []int{seed.ID, rehash.ID}
	fix.RecursiveOut = join.ID
	p.RootID = fix.ID
	return p
}

func reachCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name: "edges", Schema: types.MustSchema("src:Integer", "dst:Integer"), PartitionKey: 0,
	}))
	must(t, cat.AddTable(&catalog.Table{
		Name: "seed", Schema: types.MustSchema("v:Integer"), PartitionKey: 0,
	}))
	return cat
}

// TestStandingRecursiveIncremental is the core standing-query property:
// after rounds of edge insertions, the folded subscription stream equals a
// from-scratch fixpoint over the final edge set — and each incremental
// round ships far fewer bytes than the recompute.
func TestStandingRecursiveIncremental(t *testing.T) {
	const nodes = 4
	r := rand.New(rand.NewSource(5))
	// Three disconnected chain islands of 50 vertices; only the first is
	// reachable from the seed until ingested edges bridge them.
	const island = 50
	const V = 3 * island
	var base []types.Tuple
	for is := 0; is < 3; is++ {
		for i := 0; i < island-1; i++ {
			v := int64(is*island + i)
			base = append(base, types.NewTuple(v, v+1))
		}
	}
	seed := []types.Tuple{types.NewTuple(int64(0))}

	cat := reachCatalog(t)
	eng := NewEngine(nodes, 32, 2, cat)
	must(t, eng.Load("edges", 0, base))
	must(t, eng.Load("seed", 0, seed))

	sq, err := eng.Standing(context.Background(), reachPlan(), Options{MaxStrata: 400})
	must(t, err)
	st := sq.Stream()
	acc := foldBatches(t, st, sq.Rounds()[0].Batches)
	if got := len(acc.materialize()); got != island {
		t.Fatalf("initial fixpoint reached %d vertices, want %d", got, island)
	}

	// Round 1 bridges island 2, round 2 bridges island 3, round 3 adds
	// random chords — every round re-derives through resident join and
	// fixpoint state.
	extra := [][]types.Delta{
		{types.Insert(types.NewTuple(int64(10), int64(island)))},
		{types.Insert(types.NewTuple(int64(island+10), int64(2*island)))},
		nil,
	}
	for i := 0; i < 5; i++ {
		extra[2] = append(extra[2], types.Insert(types.NewTuple(int64(r.Intn(V)), int64(r.Intn(V)))))
	}
	var roundStats []*RoundStats
	for _, ds := range extra {
		rs, err := sq.Ingest(context.Background(), map[string][]types.Delta{"edges": ds})
		must(t, err)
		roundStats = append(roundStats, rs)
		for i := 0; i < rs.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early: %v", st.Err())
			}
			if b.Round != rs.Round {
				t.Fatalf("batch round %d, want %d", b.Round, rs.Round)
			}
			acc.apply(b.Deltas)
		}
	}
	must(t, sq.Close())
	if _, ok := st.Next(); ok {
		t.Fatal("stream must end after Close")
	}
	if st.Err() != nil {
		t.Fatalf("clean close must not error the stream: %v", st.Err())
	}

	// Recompute from scratch on a fresh engine with all edges present.
	cat2 := reachCatalog(t)
	eng2 := NewEngine(nodes, 32, 2, cat2)
	all := append([]types.Tuple(nil), base...)
	for _, ds := range extra {
		for _, d := range ds {
			all = append(all, d.Tup)
		}
	}
	must(t, eng2.Load("edges", 0, all))
	must(t, eng2.Load("seed", 0, seed))
	want, err := eng2.Run(reachPlan(), Options{MaxStrata: 400})
	must(t, err)
	tuplesMatch(t, acc.materialize(), want.Tuples, "incremental vs recompute")

	// Round cost must be proportional to the change: the bridging rounds
	// re-derived whole islands, but the chord round (which changed almost
	// nothing) must ship a small fraction of a from-scratch recompute.
	for _, rs := range roundStats[:2] {
		if rs.BytesSent <= 0 {
			t.Fatalf("bridging round %d shipped no bytes", rs.Round)
		}
	}
	small := roundStats[2]
	if small.BytesSent*4 >= want.BytesSent {
		t.Fatalf("small-change round shipped %d bytes, recompute %d — expected far fewer",
			small.BytesSent, want.BytesSent)
	}

	// The standing engine's stores absorbed the edges: a fresh query on the
	// SAME engine must agree with the recompute.
	again, err := eng.Run(reachPlan(), Options{MaxStrata: 400})
	must(t, err)
	tuplesMatch(t, again.Tuples, want.Tuples, "post-standing store state")
}

// TestStandingIngestWhileRoundRunning reproduces the lost-wakeup hazard:
// Ingest A's ctx expires mid-round (A withdraws), and Ingest B enqueues
// while A's round is still executing — B's sentinel is consumed by the
// running round's collector, so the pump must re-check the pending slot
// after every round instead of waiting for a wakeup that already passed.
func TestStandingIngestWhileRoundRunning(t *testing.T) {
	// Two chain islands: bridging the second forces a ~100-stratum round,
	// a wide window for B to enqueue mid-round.
	const island = 100
	var base []types.Tuple
	for is := 0; is < 2; is++ {
		for i := 0; i < island-1; i++ {
			v := int64(is*island + i)
			base = append(base, types.NewTuple(v, v+1))
		}
	}
	cat := reachCatalog(t)
	eng := NewEngine(2, 32, 2, cat)
	must(t, eng.Load("edges", 0, base))
	must(t, eng.Load("seed", 0, []types.Tuple{types.NewTuple(int64(0))}))

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var armed atomic.Bool
	midRound := make(chan struct{})
	var once sync.Once
	opts := Options{MaxStrata: 400, OnStratum: func(rel, total int) {
		if armed.Load() && rel == 1 {
			once.Do(func() {
				cancelA() // A abandons its round mid-flight
				close(midRound)
			})
		}
	}}
	sq, err := eng.Standing(context.Background(), reachPlan(), opts)
	must(t, err)
	defer sq.Close()
	armed.Store(true)

	aDone := make(chan error, 1)
	go func() {
		_, err := sq.Ingest(ctxA, map[string][]types.Delta{
			"edges": {types.Insert(types.NewTuple(int64(50), int64(island)))},
		})
		aDone <- err
	}()
	<-midRound
	// Round A is still running; B must not hang once it completes.
	bctx, bcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer bcancel()
	rs, err := sq.Ingest(bctx, map[string][]types.Delta{
		"edges": {types.Insert(types.NewTuple(int64(0), int64(0)))},
	})
	if err != nil {
		t.Fatalf("ingest B: %v (lost wakeup?)", err)
	}
	if rs == nil || rs.Round != 2 {
		t.Fatalf("ingest B stats: %+v", rs)
	}
	if err := <-aDone; err == nil {
		t.Fatal("ingest A should have returned its ctx error")
	}
}

// TestStandingAnnihilationIngestBytes is the IngestBytes regression test:
// staged bytes are accounted once per MsgIngest frame AFTER coalescing. An
// insert+delete pair of the same tuple folds to nothing, so the covering
// round must report the staged deltas, zero coalesced deltas, and zero
// ingest bytes — not the sum of what each staged batch would have encoded.
func TestStandingAnnihilationIngestBytes(t *testing.T) {
	cat := aggCatalog(t)
	eng := NewEngine(2, 32, 2, cat)
	must(t, eng.Load("items", 0, []types.Tuple{types.NewTuple(int64(1), 2.0)}))
	sq, err := eng.Standing(context.Background(), aggPlan(), Options{})
	must(t, err)
	defer sq.Close()
	st := sq.Stream()
	foldBatches(t, st, sq.Rounds()[0].Batches)

	tup := types.NewTuple(int64(7), 4.0)
	rs, err := sq.Ingest(context.Background(), map[string][]types.Delta{
		"items": {types.Insert(tup), types.Delete(tup)},
	})
	must(t, err)
	if rs.Ingests != 1 || rs.IngestedDeltas != 2 {
		t.Fatalf("round stats: %+v", rs)
	}
	if rs.CoalescedDeltas != 0 {
		t.Fatalf("annihilating pair injected %d deltas", rs.CoalescedDeltas)
	}
	if rs.IngestBytes != 0 {
		t.Fatalf("annihilated round staged %d bytes, want 0", rs.IngestBytes)
	}
	if rs.CoalescingRatio() != 2 {
		t.Fatalf("coalescing ratio = %v, want 2", rs.CoalescingRatio())
	}
	if rs.Deltas != 0 {
		t.Fatalf("net-zero round emitted %d output deltas", rs.Deltas)
	}

	// The dataflow is undisturbed: a real change still rounds through, and
	// its ingest bytes are the folded frames', counted once.
	rs, err = sq.Ingest(context.Background(), map[string][]types.Delta{
		"items": {types.Insert(types.NewTuple(int64(1), 5.0))},
	})
	must(t, err)
	if rs.CoalescedDeltas != 1 || rs.IngestBytes <= 0 {
		t.Fatalf("live round stats: %+v", rs)
	}
}

// TestStandingCoalescedBurst drives the coalescing pipeline
// deterministically: a bridging edge opens a long (~island-length) round,
// and a burst of IngestAsync requests enqueued mid-round must all fold
// into ONE follow-up round — with the burst's insert+delete pair
// annihilated before injection — and the folded stream must still equal a
// from-scratch recompute over the net edge set.
func TestStandingCoalescedBurst(t *testing.T) {
	const island = 80
	var base []types.Tuple
	for is := 0; is < 2; is++ {
		for i := 0; i < island-1; i++ {
			v := int64(is*island + i)
			base = append(base, types.NewTuple(v, v+1))
		}
	}
	cat := reachCatalog(t)
	eng := NewEngine(3, 32, 2, cat)
	must(t, eng.Load("edges", 0, base))
	must(t, eng.Load("seed", 0, []types.Tuple{types.NewTuple(int64(0))}))

	// The burst: 18 chord inserts plus one insert+delete pair that must
	// annihilate in the fold (a deletion must never reach the monotone
	// fixpoint).
	var burst [][]types.Delta
	for i := 0; i < 18; i++ {
		burst = append(burst, []types.Delta{
			types.Insert(types.NewTuple(int64(3*i), int64(5*i+1))),
		})
	}
	phantom := types.NewTuple(int64(2), int64(2*island-1))
	burst = append(burst,
		[]types.Delta{types.Insert(phantom)},
		[]types.Delta{types.Delete(phantom)},
	)

	var sq *StandingQuery
	var armed atomic.Bool
	var once sync.Once
	acks := make([]*IngestAck, 0, len(burst))
	opts := Options{MaxStrata: 400, OnStratum: func(rel, total int) {
		// rel==1 of the bridging round: the round still has ~island strata
		// to run, so everything enqueued here coalesces into round 2.
		if armed.Load() && rel == 1 {
			once.Do(func() {
				for _, ds := range burst {
					ack, err := sq.IngestAsync(map[string][]types.Delta{"edges": ds})
					if err != nil {
						t.Errorf("burst enqueue: %v", err)
						return
					}
					acks = append(acks, ack)
				}
			})
		}
	}}
	var err error
	sq, err = eng.Standing(context.Background(), reachPlan(), opts)
	must(t, err)
	st := sq.Stream()
	acc := foldBatches(t, st, sq.Rounds()[0].Batches)
	armed.Store(true)

	bridge, err := sq.Ingest(context.Background(), map[string][]types.Delta{
		"edges": {types.Insert(types.NewTuple(int64(10), int64(island)))},
	})
	must(t, err)
	if bridge.Round != 1 || bridge.Ingests != 1 {
		t.Fatalf("bridge round stats: %+v", bridge)
	}
	if len(acks) != len(burst) {
		t.Fatalf("enqueued %d of %d burst requests", len(acks), len(burst))
	}
	// Every burst ack resolves with the SAME covering round.
	var covering *RoundStats
	for i, ack := range acks {
		rs, err := ack.Wait(context.Background())
		must(t, err)
		if covering == nil {
			covering = rs
		} else if rs != covering {
			t.Fatalf("ack %d resolved with round %d, want shared round %d", i, rs.Round, covering.Round)
		}
	}
	if covering.Round != 2 || covering.Ingests != len(burst) {
		t.Fatalf("covering round: %+v", covering)
	}
	if covering.IngestedDeltas != len(burst) || covering.CoalescedDeltas != len(burst)-2 {
		t.Fatalf("coalescing: staged %d folded %d, want %d/%d",
			covering.IngestedDeltas, covering.CoalescedDeltas, len(burst), len(burst)-2)
	}
	rounds := sq.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("%d rounds for %d ingests — burst did not coalesce", len(rounds), 1+len(burst))
	}
	for _, rs := range rounds[1:] {
		for i := 0; i < rs.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early: %v", st.Err())
			}
			acc.apply(b.Deltas)
		}
	}
	must(t, sq.Close())

	// Recompute over the net edge set (phantom annihilated).
	cat2 := reachCatalog(t)
	eng2 := NewEngine(3, 32, 2, cat2)
	all := append([]types.Tuple(nil), base...)
	all = append(all, types.NewTuple(int64(10), int64(island)))
	for i := 0; i < 18; i++ {
		all = append(all, types.NewTuple(int64(3*i), int64(5*i+1)))
	}
	must(t, eng2.Load("edges", 0, all))
	must(t, eng2.Load("seed", 0, []types.Tuple{types.NewTuple(int64(0))}))
	want, err := eng2.Run(reachPlan(), Options{MaxStrata: 400})
	must(t, err)
	tuplesMatch(t, acc.materialize(), want.Tuples, "coalesced burst vs recompute")
}

// TestStandingConcurrentIngestAsync hammers the pipeline from concurrent
// callers (the -race coverage of the coalescing queue): every staged delta
// must be covered by exactly one round, and the folded stream must equal a
// from-scratch run on the revised stores.
func TestStandingConcurrentIngestAsync(t *testing.T) {
	cat := aggCatalog(t)
	eng := NewEngine(3, 32, 2, cat)
	must(t, eng.Load("items", 0, []types.Tuple{types.NewTuple(int64(0), 1.0)}))
	sq, err := eng.Standing(context.Background(), aggPlan(), Options{})
	must(t, err)
	st := sq.Stream()
	acc := foldBatches(t, st, sq.Rounds()[0].Batches)

	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	ackCh := make(chan *IngestAck, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ack, err := sq.IngestAsync(map[string][]types.Delta{
					"items": {types.Insert(types.NewTuple(int64(w*perWorker+i), float64(i)))},
				})
				if err != nil {
					t.Errorf("worker %d ingest %d: %v", w, i, err)
					return
				}
				ackCh <- ack
			}
		}()
	}
	wg.Wait()
	close(ackCh)
	n := 0
	for ack := range ackCh {
		if _, err := ack.Wait(context.Background()); err != nil {
			t.Fatalf("ack: %v", err)
		}
		n++
	}
	if n != workers*perWorker {
		t.Fatalf("resolved %d acks, want %d", n, workers*perWorker)
	}
	rounds := sq.Rounds()
	staged, covered := 0, 0
	for _, rs := range rounds[1:] {
		staged += rs.IngestedDeltas
		covered += rs.Ingests
		for i := 0; i < rs.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early: %v", st.Err())
			}
			acc.apply(b.Deltas)
		}
	}
	if staged != workers*perWorker || covered != workers*perWorker {
		t.Fatalf("rounds covered %d ingests / %d deltas, want %d", covered, staged, workers*perWorker)
	}
	must(t, sq.Close())

	want, err := eng.Run(aggPlan(), Options{})
	must(t, err)
	tuplesMatch(t, acc.materialize(), want.Tuples, "concurrent async fold vs recompute")
}

// TestStandingIngestValidation checks bad input fails the call without
// killing the subscription.
func TestStandingIngestValidation(t *testing.T) {
	cat := aggCatalog(t)
	eng := NewEngine(2, 32, 2, cat)
	must(t, eng.Load("items", 0, []types.Tuple{types.NewTuple(int64(1), 2.0)}))
	sq, err := eng.Standing(context.Background(), aggPlan(), Options{})
	must(t, err)
	defer sq.Close()
	if _, err := sq.Ingest(context.Background(), map[string][]types.Delta{"nope": {types.Insert(types.NewTuple(int64(1), 1.0))}}); err == nil {
		t.Fatal("unknown table must fail the ingest")
	}
	if _, err := sq.Ingest(context.Background(), map[string][]types.Delta{"items": {types.Insert(types.NewTuple(int64(1)))}}); err == nil {
		t.Fatal("arity mismatch must fail the ingest")
	}
	// The subscription survives and serves a good round.
	rs, err := sq.Ingest(context.Background(), map[string][]types.Delta{"items": {types.Insert(types.NewTuple(int64(1), 3.0))}})
	must(t, err)
	if rs.IngestedDeltas != 1 {
		t.Fatalf("stats: %+v", rs)
	}
}

// TestStandingCrashRecoveryInproc is the crash-recovery property on the
// in-process transport: a standing recursive query over spill-backed
// durable stores survives a node kill both between rounds (idle recovery)
// and during a round (abort + replay), and the folded subscription stream
// still equals a from-scratch recompute over the final edge set — every
// round delivered exactly once, none lost, none duplicated.
func TestStandingCrashRecoveryInproc(t *testing.T) {
	const nodes = 4
	const island = 50
	const V = 3 * island
	var base []types.Tuple
	for is := 0; is < 3; is++ {
		for i := 0; i < island-1; i++ {
			v := int64(is*island + i)
			base = append(base, types.NewTuple(v, v+1))
		}
	}
	seed := []types.Tuple{types.NewTuple(int64(0))}

	cat := reachCatalog(t)
	eng := NewEngine(nodes, 32, 2, cat)
	must(t, eng.UseSpill(t.TempDir(), 64))
	defer eng.CloseStores()
	must(t, eng.Load("edges", 0, base))
	must(t, eng.Load("seed", 0, seed))

	tr := eng.Transport.(*cluster.InProcTransport)
	hook := func(victim cluster.NodeID) error {
		tr.Revive(victim)
		return nil
	}
	sq, err := eng.Standing(context.Background(), reachPlan(), Options{MaxStrata: 400, Recover: hook})
	must(t, err)
	st := sq.Stream()
	acc := foldBatches(t, st, sq.Rounds()[0].Batches)
	if got := len(acc.materialize()); got != island {
		t.Fatalf("initial fixpoint reached %d vertices, want %d", got, island)
	}

	apply := func(rs *RoundStats) {
		t.Helper()
		for i := 0; i < rs.Batches; i++ {
			b, ok := st.Next()
			if !ok {
				t.Fatalf("stream ended early: %v", st.Err())
			}
			if b.Round != rs.Round {
				t.Fatalf("batch round %d, want %d", b.Round, rs.Round)
			}
			acc.apply(b.Deltas)
		}
	}

	// Idle kill: the victim dies with no round in flight; the pump rebuilds
	// the dataflow from committed store state before serving the next round.
	tr.Kill(2)
	rs, err := sq.Ingest(context.Background(), map[string][]types.Delta{
		"edges": {types.Insert(types.NewTuple(int64(10), int64(island)))},
	})
	must(t, err)
	apply(rs)

	// Mid-round kill: bridging island 3 runs a ~50-stratum round; a second
	// victim dies while it executes, forcing an abort + replay. (If the
	// timer fires after the round closed, the kill degrades to another idle
	// recovery — the correctness assertion is the same either way.)
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(3 * time.Millisecond)
		tr.Kill(1)
	}()
	rs, err = sq.Ingest(context.Background(), map[string][]types.Delta{
		"edges": {types.Insert(types.NewTuple(int64(island+10), int64(2*island)))},
	})
	must(t, err)
	apply(rs)
	<-killed

	// A final quiet round flushes any still-pending failure frame through
	// recovery before teardown, and proves the rebuilt dataflow still serves.
	r := rand.New(rand.NewSource(23))
	var chords []types.Delta
	for i := 0; i < 5; i++ {
		chords = append(chords, types.Insert(types.NewTuple(int64(r.Intn(V)), int64(r.Intn(V)))))
	}
	rs, err = sq.Ingest(context.Background(), map[string][]types.Delta{"edges": chords})
	must(t, err)
	apply(rs)

	must(t, sq.Close())
	if sq.Recoveries() < 2 {
		t.Fatalf("Recoveries() = %d, want >= 2", sq.Recoveries())
	}

	// Recompute from scratch with all edges on a fresh in-memory engine.
	all := append([]types.Tuple(nil), base...)
	all = append(all, types.NewTuple(int64(10), int64(island)))
	all = append(all, types.NewTuple(int64(island+10), int64(2*island)))
	for _, d := range chords {
		all = append(all, d.Tup)
	}
	cat2 := reachCatalog(t)
	eng2 := NewEngine(nodes, 32, 2, cat2)
	must(t, eng2.Load("edges", 0, all))
	must(t, eng2.Load("seed", 0, seed))
	want, err := eng2.Run(reachPlan(), Options{MaxStrata: 400})
	must(t, err)
	tuplesMatch(t, acc.materialize(), want.Tuples, "crash-recovered fold vs recompute")
}

// TestStandingRecoverNeedsDurable: enabling Options.Recover over plain
// in-memory stores must fail fast at Standing time.
func TestStandingRecoverNeedsDurable(t *testing.T) {
	cat := aggCatalog(t)
	eng := NewEngine(2, 32, 2, cat)
	must(t, eng.Load("items", 0, []types.Tuple{types.NewTuple(int64(1), 2.0)}))
	_, err := eng.Standing(context.Background(), aggPlan(), Options{
		Recover: func(cluster.NodeID) error { return nil },
	})
	if err == nil {
		t.Fatal("Standing must reject Recover over in-memory stores")
	}
}
