package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

// This file implements standing queries: a query whose compiled plan,
// worker state stores, and delta network stay resident after the initial
// fixpoint closes. Base-table changes are ingested as delta batches
// (MsgIngest frames routed to the ring owners of each delta's key) and each
// ingestion round re-runs the fixpoint incrementally from current operator
// state: join buckets, aggregate groups, and the fixpoint relation are all
// kept, so a round's work — and its wire traffic — is proportional to the
// change, not to the data. This is the fixpoint-derivative view-maintenance
// setting of Alvarez-Picallo et al. and Koch et al., built from the paper's
// own delta machinery (§3.3/§4.2): the same programmable deltas that drive
// strata within one fixpoint drive maintenance across fixpoints.
//
// Protocol: rounds reuse the stratum/punctuation machinery with strata
// numbered monotonically across rounds. A round starts with MsgIngest
// frames (buffered worker-side) followed by a MsgRound broadcast; every
// worker reopens its per-round punctuation trackers, injects the buffered
// deltas through the base scans' edges, and punctuates the round's base
// stratum. From there the ordinary vote/advance/terminate loop runs — with
// one twist: an ingestion round never terminates at its base stratum,
// because deltas entering through join paths are only flushed by the next
// advance's punctuation.
//
// Ingestion is asynchronous and coalescing (the Naiad/DBSP batched-round
// discipline): requests enqueue without blocking, the pump claims the
// whole queue per sweep and folds the staged deltas per table through the
// shuffle compactor before routing, so a burst of N small writes runs as
// one round whose work is proportional to the NET change. Each request's
// ack resolves when its covering round completes.

// RoundStats reports one round of a standing query: the initial fixpoint
// is round 0, and every round after it covers one or more coalesced
// ingestion requests.
type RoundStats struct {
	// Round is the round index (0 = initial fixpoint).
	Round int
	// Strata is the number of strata the round executed.
	Strata int
	// NewTuples sums the fixpoint votes of the round (0 for non-recursive
	// plans, which have no votes).
	NewTuples int
	// Batches and Deltas count the output delta batches pushed to the
	// subscription stream by this round.
	Batches int
	Deltas  int
	// Ingests counts the Ingest/IngestAsync requests this round covered:
	// the pump drains every queued request and folds them into a single
	// round, so a write burst of N requests can resolve in far fewer than
	// N rounds.
	Ingests int
	// IngestedDeltas counts the base-table deltas those requests staged
	// (pre-fold); CoalescedDeltas counts what survived the same-key fold
	// through the shuffle compactor and was actually injected. Their
	// ratio is the coalescing win — insert+delete pairs annihilate,
	// replace chains collapse — and CoalescedDeltas can reach zero while
	// IngestedDeltas stays positive.
	IngestedDeltas  int
	CoalescedDeltas int
	// IngestBytes is the encoded payload volume of the round's MsgIngest
	// staging frames (driver→worker traffic, accounted separately from
	// the shuffle bytes below). Each staged frame is counted exactly
	// once, after coalescing: N queued ingests folded into one round
	// contribute the folded frames' bytes, not N copies of what each
	// request staged.
	IngestBytes int64
	// BytesSent is the measured inter-worker wire volume of the round —
	// the number to compare against a from-scratch recompute.
	BytesSent int64
	Duration  time.Duration
}

// CoalescingRatio reports staged deltas per injected delta for the round
// (1 when nothing folded; 0 for the initial fixpoint, which ingests
// nothing).
func (r *RoundStats) CoalescingRatio() float64 {
	if r.IngestedDeltas == 0 {
		return 0
	}
	if r.CoalescedDeltas == 0 {
		return float64(r.IngestedDeltas)
	}
	return float64(r.IngestedDeltas) / float64(r.CoalescedDeltas)
}

// errStandingClosed is the cancellation cause Close installs so a
// deliberate teardown is distinguishable from the caller's ctx expiring.
var errStandingClosed = errors.New("exec: standing query closed")

// IngestAck is the handle an asynchronous ingest returns: it resolves when
// the round covering the request — possibly coalesced with other queued
// requests — completes its fixpoint, with that round's stats. Every
// request folded into one round shares the round's stats.
type IngestAck struct {
	done  chan struct{}
	stats *RoundStats
	err   error
}

func newIngestAck() *IngestAck { return &IngestAck{done: make(chan struct{})} }

// ResolvedAck builds an already-resolved ack — the degenerate handle for
// ingestion paths that apply synchronously (no resident dataflow to round
// through).
func ResolvedAck(stats *RoundStats, err error) *IngestAck {
	a := newIngestAck()
	a.resolve(stats, err)
	return a
}

// Done is closed once the covering round completed (or the standing query
// terminated).
func (a *IngestAck) Done() <-chan struct{} { return a.done }

// Wait blocks until the ack resolves or ctx expires, returning the
// covering round's stats. A ctx expiry does not withdraw the request —
// the deltas remain queued (or their round keeps running) and the ack
// still resolves.
func (a *IngestAck) Wait(ctx context.Context) (*RoundStats, error) {
	select {
	case <-a.done:
		return a.stats, a.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Round reports the resolved stats without blocking; nil until Done.
func (a *IngestAck) Round() (*RoundStats, error) {
	select {
	case <-a.done:
		return a.stats, a.err
	default:
		return nil, nil
	}
}

func (a *IngestAck) resolve(stats *RoundStats, err error) {
	a.stats, a.err = stats, err
	close(a.done)
}

// ingestReq is one queued ingestion request awaiting a covering round.
type ingestReq struct {
	tables map[string][]types.Delta
	ack    *IngestAck
}

// StandingQuery is a resident dataflow on an engine: the initial fixpoint
// has completed, worker loops and operator state remain live, and
// Ingest/IngestAsync run incremental rounds whose output deltas are pushed
// to Stream. Ingestion is a coalescing pipeline: requests enqueue without
// blocking, and the pump drains everything queued — folding same-key
// deltas through the shuffle compactor — into a single round per sweep,
// resolving every covered ack when that round's fixpoint closes. One
// StandingQuery owns its engine's workers until Close — the session layer
// serializes it against other queries.
type StandingQuery struct {
	eng  *Engine
	spec *PlanSpec
	opts Options

	ctx    context.Context
	cancel context.CancelCauseFunc

	stream *ResultStream
	spool  *spool

	maxStrata int

	// mu guards the ingest queue, accumulated round stats, the applied
	// hook, and terminal state.
	mu        sync.Mutex
	queue     []*ingestReq
	rounds    []RoundStats
	onApplied func(tables map[string][]types.Delta)
	closed    bool
	err       error

	// epoch is the current execution attempt, bumped by each crash
	// recovery; pump-goroutine state (only the pump reads or writes it).
	epoch int
	// recoveries counts crash recoveries survived.
	recoveries int

	done chan struct{}
}

// Recoveries reports how many node crashes this standing query has
// recovered from.
func (sq *StandingQuery) Recoveries() int {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return sq.recoveries
}

// nodeFailureErr signals a node failure to the pump's recovery loop
// (only produced when Options.Recover is installed).
type nodeFailureErr struct{ node cluster.NodeID }

func (e nodeFailureErr) Error() string {
	return fmt.Sprintf("exec: node %d failed", e.node)
}

// failureErr converts a MsgFailure into either a recoverable sentinel or
// the terminal error, depending on whether recovery is enabled.
func (sq *StandingQuery) failureErr(n cluster.NodeID) error {
	if sq.opts.Recover != nil {
		return nodeFailureErr{node: n}
	}
	return fmt.Errorf("exec: node %d failed (standing-query recovery not enabled; set Options.Recover)", n)
}

// roundRun is one ingestion round's full context, kept so a crash
// recovery can replay it: the covered requests, the folded and routed
// frames (re-staged verbatim on retry), the round's buffered output, and
// whether its fixpoint had closed when the failure hit. completed decides
// the retry's output handling — a completed round's output was already
// captured (the re-run, over a partially committed base, would emit
// deltas relative to the wrong view), while an incomplete round's output
// comes from the re-run itself.
type roundRun struct {
	round     int
	reqs      []*ingestReq
	folded    map[string][]types.Delta
	frames    []cluster.Message
	staged    int
	nDeltas   int
	nBytes    int64
	stats     *RoundStats
	buf       []StreamBatch
	completed bool
}

// Standing compiles nothing and tears nothing down: it starts spec on the
// engine in streaming mode, waits for the initial fixpoint to complete
// (its per-stratum batches are already buffered on the stream when Standing
// returns), and keeps the whole dataflow resident for incremental rounds.
// Standing queries reject failure recovery and checkpointing — a resident
// dataflow has no epochs to replay.
func (e *Engine) Standing(ctx context.Context, spec *PlanSpec, opts Options) (*StandingQuery, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Recovery != RecoveryNone {
		return nil, fmt.Errorf("exec: standing queries do not support epoch-restart recovery (use Options.Recover)")
	}
	if opts.Checkpoint {
		return nil, fmt.Errorf("exec: standing queries do not support checkpointing")
	}
	if opts.Recover != nil {
		// Crash recovery replays the interrupted round against each node's
		// last committed store state; an in-memory store has no committed
		// state to rebuild a victim from.
		for _, n := range e.Transport.LocalNodes() {
			if _, ok := e.Stores[n].(storage.Durable); !ok {
				return nil, fmt.Errorf("exec: standing-query recovery needs durable stores (node %d is in-memory; see Engine.UseSpill)", n)
			}
		}
	}
	opts.Stream = true
	if opts.BatchSize <= 0 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.CompactionHighWater <= 0 {
		opts.CompactionHighWater = defaultHighWater
	}
	maxStrata := spec.MaxStrata
	if opts.MaxStrata > 0 {
		maxStrata = opts.MaxStrata
	}
	alive := e.Transport.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("exec: no alive nodes")
	}
	if len(alive) != e.Transport.N() {
		return nil, fmt.Errorf("exec: standing queries need every node alive (%d of %d)", len(alive), e.Transport.N())
	}
	queryID := fmt.Sprintf("q%d", e.queryCounter.Add(1))

	sctx, cancel := context.WithCancelCause(ctx)
	sq := &StandingQuery{
		eng: e, spec: spec, opts: opts,
		ctx: sctx, cancel: cancel,
		spool:     newSpool(),
		maxStrata: maxStrata,
		done:      make(chan struct{}),
	}
	sq.stream = &ResultStream{src: sq.spool, done: sq.done, ctx: sctx, cancel: cancel}

	// Spawn one worker loop per node hosted in this process; remote nodes
	// run theirs inside their daemons. The loops stay alive across rounds
	// until teardown broadcasts MsgShutdown. Drain each persistent
	// in-process inbox first (see Engine.run): debris of an abandoned
	// prior query must not be replayed into this plan as early frames.
	var wg sync.WaitGroup
	for _, n := range alive {
		if e.Stores[n] == nil {
			continue
		}
		if ib := e.Transport.Inbox(n); ib != nil {
			ib.Drain()
		}
		w := NewWorker(WorkerConfig{
			Node: n, Transport: e.Transport, Store: e.Stores[n],
			Checkpoints: e.Ckpts[n], Catalog: e.Catalog, Ring: e.Ring,
			Plan: spec, QueryID: queryID, Options: opts,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Loop()
		}()
	}

	// Cancellation watcher, same contract as Engine.run: a ctx expiry (or
	// Close) unblocks the pump by injecting the local MsgCancel sentinel.
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-sctx.Done():
			e.Transport.Requestor().Put(cluster.Message{Kind: cluster.MsgCancel})
		case <-stopWatch:
		}
	}()

	initErr := make(chan error, 1)
	go sq.pump(queryID, alive, &wg, stopWatch, watchDone, initErr)

	if err := <-initErr; err != nil {
		<-sq.done
		return nil, err
	}
	return sq, nil
}

// Stream returns the subscription's delta stream. Batches arrive tagged
// with their round and round-relative stratum; the stream ends (Next
// returns false) when the standing query closes. The stream's buffer is
// unbounded, so a caller that interleaves Ingest and consumption on one
// goroutine cannot deadlock.
func (sq *StandingQuery) Stream() *ResultStream { return sq.stream }

// Rounds returns the stats of every completed round, initial fixpoint
// included.
func (sq *StandingQuery) Rounds() []RoundStats {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return append([]RoundStats(nil), sq.rounds...)
}

// Done is closed when the standing query has fully torn down.
func (sq *StandingQuery) Done() <-chan struct{} { return sq.done }

// Err reports the terminal error once Done is closed; nil after a clean
// Close.
func (sq *StandingQuery) Err() error {
	select {
	case <-sq.done:
		return sq.err
	default:
		return nil
	}
}

// IngestAsync enqueues base-table deltas for the next incremental round
// and returns immediately with an ack that resolves when the covering
// round's fixpoint closes (every output batch is buffered on the stream by
// then). Requests queued while a round is running coalesce: the pump
// drains the whole queue, folds same-key deltas through the shuffle
// compactor, and runs a single round covering them all — each ack resolves
// with that round's shared stats. Validation errors — unknown table, arity
// mismatch, empty batch — fail the call synchronously without disturbing
// the resident dataflow; execution errors terminate the standing query and
// resolve every outstanding ack with the terminal error. Safe for
// concurrent callers.
func (sq *StandingQuery) IngestAsync(tables map[string][]types.Delta) (*IngestAck, error) {
	req, err := sq.enqueue(tables)
	if err != nil {
		return nil, err
	}
	return req.ack, nil
}

// Ingest is the synchronous form of IngestAsync: it blocks until the
// covering round's fixpoint closes and returns that round's stats. If ctx
// expires the call returns early: a request the pump already claimed keeps
// running (its batches still stream), while an unclaimed request is
// withdrawn — the deltas were not applied.
func (sq *StandingQuery) Ingest(ctx context.Context, tables map[string][]types.Delta) (*RoundStats, error) {
	req, err := sq.enqueue(tables)
	if err != nil {
		return nil, err
	}
	select {
	case <-req.ack.done:
		return req.ack.stats, req.ack.err
	case <-ctx.Done():
		if sq.withdraw(req) {
			return nil, ctx.Err()
		}
		// Claimed: the round runs to completion regardless (its batches
		// still stream); the caller only abandons the wait.
		return nil, ctx.Err()
	}
}

// enqueue validates the request driver-side and hands it to the pump. The
// staged batches are copied: an async request outlives its call, and a
// caller reusing a scratch delta buffer must not race the pump's later
// fold of the same backing array.
func (sq *StandingQuery) enqueue(tables map[string][]types.Delta) (*ingestReq, error) {
	if err := sq.validate(tables); err != nil {
		return nil, err
	}
	staged := make(map[string][]types.Delta, len(tables))
	for table, deltas := range tables {
		staged[table] = append([]types.Delta(nil), deltas...)
	}
	req := &ingestReq{tables: staged, ack: newIngestAck()}
	sq.mu.Lock()
	if sq.closed {
		err := sq.err
		sq.mu.Unlock()
		if err == nil {
			err = errStandingClosed
		}
		return nil, err
	}
	sq.queue = append(sq.queue, req)
	sq.mu.Unlock()
	sq.eng.Transport.Requestor().Put(cluster.Message{Kind: cluster.MsgRoundReq})
	return req, nil
}

// withdraw removes a still-queued request, reporting false when the pump
// already claimed it. A withdrawn request's ack resolves with
// errStandingClosed-independent context semantics handled by the caller.
func (sq *StandingQuery) withdraw(req *ingestReq) bool {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	for i, r := range sq.queue {
		if r == req {
			sq.queue = append(sq.queue[:i], sq.queue[i+1:]...)
			return true
		}
	}
	return false
}

// validate checks tables and tuple arities driver-side so bad input cannot
// poison the resident dataflow, and rejects requests staging nothing.
func (sq *StandingQuery) validate(tables map[string][]types.Delta) error {
	total := 0
	for table, deltas := range tables {
		tab, err := sq.eng.Catalog.Table(table)
		if err != nil {
			return fmt.Errorf("exec: ingest: %w", err)
		}
		arity := tab.Schema.Len()
		for _, d := range deltas {
			if len(d.Tup) != arity || (d.Op == types.OpReplace && len(d.Old) != arity) {
				return fmt.Errorf("exec: ingest into %s: tuple %v does not match the %d-column schema", table, d.Tup, arity)
			}
		}
		total += len(deltas)
	}
	if total == 0 {
		return fmt.Errorf("exec: ingest: empty delta batch")
	}
	return nil
}

// SetOnRoundApplied installs a hook the pump invokes — on its own
// goroutine, in round order, before the round's acks resolve — with the
// folded per-table deltas each completed round applied. The session layer
// uses it to keep its base-table bookkeeping (TCP change log, catalog
// stats) consistent with what the workers actually absorbed.
func (sq *StandingQuery) SetOnRoundApplied(fn func(tables map[string][]types.Delta)) {
	sq.mu.Lock()
	sq.onApplied = fn
	sq.mu.Unlock()
}

func (sq *StandingQuery) appliedHook() func(tables map[string][]types.Delta) {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return sq.onApplied
}

// Close tears the standing query down: workers drop their per-query state
// (MsgAbort), loops exit (MsgShutdown), and the stream ends after its
// buffered batches are consumed. Returns the terminal error; a teardown
// initiated by Close itself reports nil.
func (sq *StandingQuery) Close() error {
	sq.cancel(errStandingClosed)
	<-sq.done
	return sq.err
}

// takeQueued claims every queued ingest request — the pump's coalescing
// sweep.
func (sq *StandingQuery) takeQueued() []*ingestReq {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	q := sq.queue
	sq.queue = nil
	return q
}

// fold coalesces the claimed requests' staged deltas per table through the
// shuffle compactor (same-key merge: insert+delete annihilation, replace-
// chain folding), preserving per-key arrival order across requests. It
// returns the folded per-table batches plus the staged (pre-fold) delta
// count.
func (sq *StandingQuery) fold(reqs []*ingestReq) (map[string][]types.Delta, int) {
	staged := 0
	comps := map[string]*cluster.Compactor{}
	var order []string
	for _, req := range reqs {
		names := make([]string, 0, len(req.tables))
		for t := range req.tables {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, table := range names {
			deltas := req.tables[table]
			staged += len(deltas)
			c := comps[table]
			if c == nil {
				tab, err := sq.eng.Catalog.Table(table)
				if err != nil {
					// Validated at enqueue; an unknown table here means the
					// catalog changed under a live subscription — fold
					// nothing rather than guess a key.
					continue
				}
				key := tab.PartitionKey
				c = cluster.NewCompactor(func(t types.Tuple) types.Value {
					return t[key]
				}, nil)
				comps[table] = c
				order = append(order, table)
			}
			for _, d := range deltas {
				c.Add(d)
			}
		}
	}
	out := make(map[string][]types.Delta, len(comps))
	for _, table := range order {
		if batch := comps[table].Drain(); len(batch) > 0 {
			out[table] = batch
		}
	}
	return out, staged
}

func (sq *StandingQuery) recordRound(st RoundStats) {
	sq.mu.Lock()
	sq.rounds = append(sq.rounds, st)
	sq.mu.Unlock()
}

// maxRecoveryAttempts caps consecutive crash-recovery attempts before the
// pump gives up and fails the standing query.
const maxRecoveryAttempts = 5

// pump is the standing query's requestor loop: it runs the initial round,
// then serves ingestion rounds until cancellation or an execution error,
// then tears the dataflow down. With Options.Recover installed, every
// round ends in a commit barrier (workers apply staged deltas to their
// stores and fsync the round mark) and a node crash at any point — mid
// staging, mid fixpoint, mid commit — is survived by rebuilding the
// dataflow from committed store state and replaying the interrupted
// round.
func (sq *StandingQuery) pump(queryID string, alive []cluster.NodeID, wg *sync.WaitGroup, stopWatch chan struct{}, watchDone <-chan struct{}, initErr chan<- error) {
	e := sq.eng
	start := time.Now()
	last := 0 // highest stratum started, shared with workers via decisions

	// With recovery on, a round's output is buffered pump-side until its
	// commit barrier lands: a crash mid-round must be able to discard or
	// replace it without the subscriber seeing a partial round.
	buffered := sq.opts.Recover != nil

	broadcastStart := func(mode int) {
		payload := encodeNodeList(alive)
		for _, n := range alive {
			e.Transport.Send(cluster.Message{
				From: -1, To: n, Kind: cluster.MsgStart,
				Epoch: sq.epoch, Stratum: 0, Count: mode, Payload: payload,
			})
		}
	}

	// recoverFrom brings the cluster back after victim died and re-runs
	// the interrupted round (rr; nil when the crash hit between rounds).
	// On return the cluster is whole, every store is at rr's committed
	// round, and rr.buf/rr.stats hold the round's output.
	recoverFrom := func(victim cluster.NodeID, rr *roundRun) error {
		for attempt := 1; ; attempt++ {
			if attempt > maxRecoveryAttempts {
				return fmt.Errorf("exec: giving up after %d crash-recovery attempts", maxRecoveryAttempts)
			}
			if err := sq.ctx.Err(); err != nil {
				return err
			}
			// Drop per-query state everywhere. Mailboxes are FIFO, so any
			// staged frames still in flight are consumed before the abort
			// clears the workers' pending buffers — nothing stale survives
			// into the rebuilt epoch.
			e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgAbort})
			if err := sq.opts.Recover(victim); err != nil {
				return fmt.Errorf("exec: recovering node %d: %w", victim, err)
			}
			// An in-process victim needs a fresh worker loop over its
			// recovered store; a daemon victim's respawned process runs its
			// own.
			if int(victim) < len(e.Stores) && e.Stores[victim] != nil {
				w := NewWorker(WorkerConfig{
					Node: victim, Transport: e.Transport, Store: e.Stores[victim],
					Checkpoints: e.Ckpts[victim], Catalog: e.Catalog, Ring: e.Ring,
					Plan: sq.spec, QueryID: queryID, Options: sq.opts,
				})
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.Loop()
				}()
			}
			sq.epoch++
			sq.mu.Lock()
			sq.recoveries++
			sq.mu.Unlock()
			alive = e.Transport.AliveNodes()
			if len(alive) != e.Transport.N() {
				return fmt.Errorf("exec: recovery left %d of %d nodes alive", len(alive), e.Transport.N())
			}
			// Fresh epoch, fresh strata: MsgStart rebuilds every worker's
			// port trackers, so the monotonic-stratum clock restarts at 0.
			last = 0
			broadcastStart(startRecover)

			// Recovery fixpoint: every node rebuilds its operator state
			// from its committed store. Some nodes may have committed the
			// interrupted round and some not — that partial base is a
			// legitimate state; the replay below injects only the missing
			// partitions and converges it. The fixpoint's output re-derives
			// rounds already delivered and is discarded — unless the
			// interrupted round IS round 0 (initial fixpoint), in which
			// case this run's output is the round's output.
			initialRerun := rr != nil && rr.round == 0 && !rr.completed
			emit := func(StreamBatch) {}
			if initialRerun {
				rr.buf = nil
				emit = func(b StreamBatch) { rr.buf = append(rr.buf, b) }
			}
			stats, err := sq.collectRound(0, 0, alive, &last, e.Transport.Metrics().TotalBytesSent(), emit)
			if nf, ok := errAsNodeFailure(err); ok {
				victim = nf.node
				continue
			}
			if err != nil {
				return err
			}
			if initialRerun {
				rr.stats = stats
				rr.completed = true
			}

			// Replay an interrupted ingestion round: re-stage its routed
			// frames verbatim (nodes whose durable watermark covers the
			// round skip them; the rest buffer them again) and re-run. A
			// round whose fixpoint had closed keeps its original output —
			// the re-run executes over a partially committed base, so its
			// emitted deltas would be relative to the wrong view.
			if rr != nil && rr.round > 0 {
				if !rr.completed {
					rr.buf = nil
				}
				bytesBefore := e.Transport.Metrics().TotalBytesSent()
				if err := sq.sendStaged(rr.frames, rr.round); err != nil {
					if nf, ok := errAsNodeFailure(err); ok {
						victim = nf.node
						continue
					}
					return err
				}
				for _, n := range alive {
					e.Transport.Send(cluster.Message{From: -1, To: n, Kind: cluster.MsgRound, Epoch: sq.epoch})
				}
				base := last + 1
				last = base
				remit := func(StreamBatch) {}
				if !rr.completed {
					remit = func(b StreamBatch) { rr.buf = append(rr.buf, b) }
				}
				stats, err := sq.collectRound(rr.round, base, alive, &last, bytesBefore, remit)
				if nf, ok := errAsNodeFailure(err); ok {
					victim = nf.node
					continue
				}
				if err != nil {
					return err
				}
				if !rr.completed {
					rr.stats = stats
					rr.completed = true
				}
			}

			// Commit barrier for the replayed round. A between-rounds crash
			// (rr nil) changed no store state and needs no commit.
			if rr != nil {
				if err := sq.waitCommits(rr.round, alive); err != nil {
					if nf, ok := errAsNodeFailure(err); ok {
						victim = nf.node
						continue
					}
					return err
				}
			}
			return nil
		}
	}

	// runRetrying executes one round attempt and loops through crash
	// recovery until the round is durable or the error is terminal.
	runRetrying := func(rr *roundRun, attempt func() error) error {
		err := attempt()
		for {
			nf, ok := errAsNodeFailure(err)
			if !ok {
				return err
			}
			err = recoverFrom(nf.node, rr)
		}
	}

	broadcastStart(startFresh)

	runErr := func() error {
		rr0 := &roundRun{round: 0}
		err := runRetrying(rr0, func() error {
			rr0.buf = nil
			emit := func(b StreamBatch) { sq.spool.push(b) }
			if buffered {
				emit = func(b StreamBatch) { rr0.buf = append(rr0.buf, b) }
			}
			stats, err := sq.collectRound(0, 0, alive, &last, e.Transport.Metrics().TotalBytesSent(), emit)
			if err != nil {
				return err
			}
			rr0.stats = stats
			rr0.completed = true
			// Round 0's commit seals every store's loaded base (and, on
			// durable backends, resets watermarks left by prior queries).
			return sq.waitCommits(0, alive)
		})
		if err != nil {
			initErr <- err
			return err
		}
		for _, b := range rr0.buf {
			sq.spool.push(b)
		}
		sq.recordRound(*rr0.stats)
		initErr <- nil

		round := 0
		// serve runs ONE coalesced round covering every claimed request:
		// their staged deltas fold per table through the shuffle compactor,
		// the folded batches route as MsgIngest frames, a single MsgRound
		// barrier starts the fixpoint, the commit barrier makes the round
		// durable, and every covered ack resolves with the round's shared
		// stats.
		serve := func(reqs []*ingestReq) error {
			folded, staged := sq.fold(reqs)
			frames, nDeltas, nBytes, err := sq.routeAll(folded)
			if err != nil {
				// Routing can only fail on a catalog/ring inconsistency —
				// the dataflow is no longer trustworthy.
				for _, r := range reqs {
					r.ack.resolve(nil, err)
				}
				return err
			}
			round++
			rr := &roundRun{
				round: round, reqs: reqs, folded: folded, frames: frames,
				staged: staged, nDeltas: nDeltas, nBytes: nBytes,
			}
			err = runRetrying(rr, func() error {
				// Snapshot the wire counter before any round traffic:
				// workers start shipping the moment MsgRound lands, possibly
				// before collectRound would read it. (MsgIngest staging
				// frames are driver control-plane and never counted.)
				bytesBefore := e.Transport.Metrics().TotalBytesSent()
				if err := sq.sendStaged(rr.frames, rr.round); err != nil {
					return err
				}
				for _, n := range alive {
					e.Transport.Send(cluster.Message{From: -1, To: n, Kind: cluster.MsgRound, Epoch: sq.epoch})
				}
				// Mirror the workers' startRound exactly: the round's base
				// stratum is counted as started on both sides (decisions
				// advance both further), so non-recursive rounds — which
				// have no decisions — stay in sync too.
				base := last + 1
				last = base
				rr.buf = nil
				emit := func(b StreamBatch) { sq.spool.push(b) }
				if buffered {
					emit = func(b StreamBatch) { rr.buf = append(rr.buf, b) }
				}
				stats, err := sq.collectRound(rr.round, base, alive, &last, bytesBefore, emit)
				if err != nil {
					return err
				}
				rr.stats = stats
				rr.completed = true
				return sq.waitCommits(rr.round, alive)
			})
			if err != nil {
				for _, r := range reqs {
					r.ack.resolve(nil, err)
				}
				return err
			}
			// The round is durable on every node: release its buffered
			// output, then stats, hook, acks.
			for _, b := range rr.buf {
				sq.spool.push(b)
			}
			stats := rr.stats
			stats.Ingests = len(reqs)
			stats.IngestedDeltas = staged
			stats.CoalescedDeltas = nDeltas
			stats.IngestBytes = nBytes
			sq.recordRound(*stats)
			// The applied hook fires before the acks so a synchronous
			// caller observes the session-level bookkeeping (change log,
			// stats) already revised when its Ingest returns.
			if hook := sq.appliedHook(); hook != nil && len(folded) > 0 {
				hook(folded)
			}
			for _, r := range reqs {
				r.ack.resolve(stats, nil)
			}
			return nil
		}
		req := e.Transport.Requestor()
		for {
			if err := sq.ctx.Err(); err != nil {
				return err
			}
			// Claim everything queued, including requests that arrived while
			// a round was running: their sentinels were consumed (and
			// dropped) by that round's collectRound, so waiting for another
			// would lose the wakeup — and the sweep is what coalesces a
			// write burst into one round.
			if reqs := sq.takeQueued(); len(reqs) > 0 {
				if err := serve(reqs); err != nil {
					return err
				}
				continue
			}
			msg, ok := req.Get()
			if !ok {
				return fmt.Errorf("exec: requestor mailbox closed")
			}
			switch msg.Kind {
			case cluster.MsgCancel:
				if err := sq.ctx.Err(); err != nil {
					return err
				}
			case cluster.MsgRoundReq:
				// The request itself is claimed at the top of the loop.
			case cluster.MsgError:
				return fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
			case cluster.MsgFailure:
				if sq.opts.Recover != nil && e.Transport.Alive(msg.From) {
					continue // duplicate failure frame for an already-recovered node
				}
				ferr := sq.failureErr(msg.From)
				if nf, ok := errAsNodeFailure(ferr); ok {
					// Idle crash: no round in flight, nothing to replay —
					// rebuild the dataflow and keep serving.
					if rerr := recoverFrom(nf.node, nil); rerr != nil {
						return rerr
					}
					continue
				}
				return ferr
			}
		}
	}()

	close(stopWatch)
	<-watchDone
	e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgAbort})
	e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgShutdown})
	wg.Wait()
	e.Transport.Requestor().Drain()
	for _, c := range e.Ckpts {
		if c != nil {
			c.Drop(queryID)
		}
	}

	err := runErr
	if errors.Is(err, context.Canceled) {
		if cause := context.Cause(sq.ctx); errors.Is(cause, errStandingClosed) || errors.Is(cause, errStreamClosed) {
			err = nil // deliberate Close, not a caller cancellation
		}
	}

	sq.mu.Lock()
	sq.closed = true
	sq.err = err
	pend := sq.queue
	sq.queue = nil
	var total Result
	for _, r := range sq.rounds {
		total.BytesSent += r.BytesSent
		for s := 0; s < r.Strata; s++ {
			// Round boundaries are recoverable from Rounds(); the Result
			// keeps only the aggregate view.
			total.Strata = append(total.Strata, StratumStats{Stratum: len(total.Strata)})
		}
	}
	total.Duration = time.Since(start)
	sq.mu.Unlock()
	// Resolve every unclaimed request before done closes, so a waiter
	// racing the teardown always observes its ack resolved.
	perr := err
	if perr == nil {
		perr = errStandingClosed
	}
	for _, r := range pend {
		r.ack.resolve(nil, perr)
	}
	if err == nil {
		sq.stream.res = &total
	}
	sq.stream.err = err
	close(sq.done)
	sq.spool.close()
	sq.cancel(nil)
}

// collectRound drives one round's vote/advance/terminate loop and feeds
// its output batches to emit, returning when every node's final
// punctuation has arrived. base is the round's base stratum; last tracks
// the highest stratum started so the next round's base continues the
// monotonic numbering exactly as the workers compute it. Frames from
// other epochs (pre-recovery stragglers) are filtered out.
func (sq *StandingQuery) collectRound(round, base int, alive []cluster.NodeID, last *int, bytesBefore int64, out func(StreamBatch)) (*RoundStats, error) {
	e := sq.eng
	req := e.Transport.Requestor()
	stats := &RoundStats{Round: round}
	start := time.Now()
	votes := map[int]map[cluster.NodeID]int{}
	done := map[cluster.NodeID]bool{}
	sbuf := map[int][]types.Delta{}
	emit := func(stratum int, batch []types.Delta) {
		stats.Batches++
		stats.Deltas += len(batch)
		out(StreamBatch{Round: round, Stratum: stratum - base, Deltas: batch})
	}
	for {
		if err := sq.ctx.Err(); err != nil {
			return nil, err
		}
		msg, ok := req.Get()
		if !ok {
			return nil, fmt.Errorf("exec: requestor mailbox closed")
		}
		switch msg.Kind {
		case cluster.MsgCancel:
			if err := sq.ctx.Err(); err != nil {
				return nil, err
			}
		case cluster.MsgError:
			return nil, fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
		case cluster.MsgFailure:
			if sq.opts.Recover != nil && e.Transport.Alive(msg.From) {
				continue // duplicate failure frame for an already-recovered node
			}
			return nil, sq.failureErr(msg.From)
		case cluster.MsgVote:
			if msg.Epoch != sq.epoch {
				continue
			}
			s := msg.Stratum
			if votes[s] == nil {
				votes[s] = map[cluster.NodeID]int{}
			}
			votes[s][msg.From] = msg.Count
			if len(votes[s]) < len(alive) {
				continue
			}
			total := 0
			for _, c := range votes[s] {
				total += c
			}
			stats.Strata++
			stats.NewTuples += total
			rel := s - base
			if sq.opts.OnStratum != nil {
				sq.opts.OnStratum(rel, total)
			}
			if batch := sbuf[s]; len(batch) > 0 {
				emit(s, batch)
			}
			delete(sbuf, s)
			// An ingestion round must advance past its base stratum — on a
			// zero vote, a MaxStrata of 1, or a TermFn verdict alike:
			// deltas that entered through join paths are still buffered in
			// shuffle senders and only flush behind the next advance's
			// punctuation, so terminating at the base discards them. If
			// they amount to nothing, the next stratum votes zero and
			// terminates the round.
			atIngestBase := round > 0 && s == base
			terminate := total == 0 && !atIngestBase
			if !atIngestBase {
				if rel+1 >= sq.maxStrata {
					terminate = true
				}
				if sq.opts.TermFn != nil && sq.opts.TermFn(rel, total) {
					terminate = true
				}
			}
			for _, n := range alive {
				e.Transport.Send(cluster.Message{
					From: -1, To: n, Kind: cluster.MsgDecision,
					Epoch: sq.epoch, Stratum: s + 1, Terminate: terminate,
				})
			}
			if !terminate {
				*last = s + 1
			}
		case cluster.MsgData:
			if msg.Epoch != sq.epoch || msg.Edge != resultEdge {
				continue
			}
			batch, err := cluster.DecodeDeltas(msg.Payload)
			if err != nil {
				return nil, err
			}
			if sq.spec.Recursive() {
				sbuf[msg.Stratum] = append(sbuf[msg.Stratum], batch...)
			} else {
				emit(base, batch)
			}
		case cluster.MsgPunct:
			if msg.Epoch != sq.epoch || msg.Edge != resultEdge {
				continue
			}
			done[msg.From] = true
			if len(done) < len(alive) {
				continue
			}
			strata := make([]int, 0, len(sbuf))
			for s := range sbuf {
				strata = append(strata, s)
			}
			sort.Ints(strata)
			for _, s := range strata {
				if batch := sbuf[s]; len(batch) > 0 {
					emit(s, batch)
				}
			}
			// Per-round byte accounting: multi-process transports count
			// wire bytes where they are sent, so pull the remote counters
			// over before reading the delta. The pump is the requestor
			// mailbox's only reader, so the sync's collector cannot race it.
			if ms, ok := e.Transport.(cluster.MetricsSyncer); ok {
				if err := ms.SyncMetrics(); err != nil {
					return nil, err
				}
			}
			stats.BytesSent = e.Transport.Metrics().TotalBytesSent() - bytesBefore
			stats.Duration = time.Since(start)
			return stats, nil
		}
	}
}

// routeAll turns a round's folded per-table delta sets into MsgIngest
// frames addressed to the ring owners of each delta's key (input was
// validated at enqueue; route re-checks arity as defense in depth).
// Replacements whose key moved are split into delete+insert so every
// frame's deltas key-hash to its destination. The returned byte count is
// the staged payload volume, each frame counted exactly once.
func (sq *StandingQuery) routeAll(tables map[string][]types.Delta) (frames []cluster.Message, nDeltas int, nBytes int64, err error) {
	names := make([]string, 0, len(tables))
	for t := range tables {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, table := range names {
		deltas := tables[table]
		byNode, err := sq.route(table, deltas)
		if err != nil {
			return nil, 0, 0, err
		}
		nDeltas += len(deltas)
		nodes := make([]int, 0, len(byNode))
		for n := range byNode {
			nodes = append(nodes, int(n))
		}
		sort.Ints(nodes)
		// Staging frames are chunked to the transport batch granularity so
		// the credit window gating them counts comparable units (a window
		// slot is one batch on the shuffle path too).
		bs := sq.opts.BatchSize
		if bs <= 0 {
			bs = defaultBatchSize
		}
		for _, n := range nodes {
			batch := byNode[cluster.NodeID(n)]
			for len(batch) > 0 {
				chunk := batch[:min(bs, len(batch))]
				batch = batch[len(chunk):]
				payload := cluster.EncodeDeltas(chunk)
				nBytes += int64(len(payload))
				// Epoch and round (Stratum) are stamped by sendStaged on
				// every send, so a recovery replay restamps automatically.
				frames = append(frames, cluster.Message{
					From: -1, To: cluster.NodeID(n), Kind: cluster.MsgIngest,
					Table: table, Payload: payload, Count: len(chunk),
				})
			}
		}
	}
	return frames, nDeltas, nBytes, nil
}

// sendStaged ships a round's MsgIngest frames under credit flow control:
// each frame spends one staging credit from the requestor's window to its
// destination, and an exhausted window blocks on the requestor mailbox
// until the worker's MsgCreditAck grant (installed by the transport at
// delivery) re-arms it. Workers ack every applied frame with a window
// sized from their measured drain rate, so a slow worker throttles the
// pump before its inbox floods — the control-plane counterpart of the
// shuffle path's punctuation grants.
//
// Frames are stamped with the current epoch and the round number on every
// call: a recovery replay re-sends the same frames under a new epoch, and
// the round stamp is the watermark workers compare against their durable
// committed round to skip frames they already applied.
func (sq *StandingQuery) sendStaged(frames []cluster.Message, round int) error {
	e := sq.eng
	req := e.Transport.Requestor()
	for i := range frames {
		frames[i].Epoch = sq.epoch
		frames[i].Stratum = round
	}
	for _, f := range frames {
		for e.Transport.Credits(-1, f.To) <= 0 {
			if err := sq.ctx.Err(); err != nil {
				return err
			}
			msg, ok := req.Get()
			if !ok {
				return fmt.Errorf("exec: requestor mailbox closed")
			}
			switch msg.Kind {
			case cluster.MsgCancel:
				if err := sq.ctx.Err(); err != nil {
					return err
				}
			case cluster.MsgError:
				return fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
			case cluster.MsgFailure:
				if sq.opts.Recover != nil && e.Transport.Alive(msg.From) {
					continue // duplicate failure frame for an already-recovered node
				}
				return sq.failureErr(msg.From)
			case cluster.MsgRoundReq:
				// Harmless to consume: round requests are claimed from the
				// queue at the top of the pump loop, and the staged batches
				// behind this sentinel are already queued for the sweep
				// after the current round.
			case cluster.MsgCreditAck:
				// The transport installed the grant on delivery; the loop
				// re-probes the window.
			}
		}
		e.Transport.SpendCredits(-1, f.To, 1)
		e.Transport.Send(f)
	}
	return nil
}

// waitCommits drives the round-commit barrier: broadcast MsgCommit for
// the round, then wait for every alive node's ack. A worker applies its
// buffered staged deltas to its store and (on a durable backend) fsyncs
// the round mark before acking, so once this returns the round is applied
// — and, with spill stores, durable — cluster-wide. Output release,
// stats, and ingest acks all wait behind it.
func (sq *StandingQuery) waitCommits(round int, alive []cluster.NodeID) error {
	e := sq.eng
	e.Transport.Broadcast(cluster.Message{
		From: -1, Kind: cluster.MsgCommit, Stratum: round, Epoch: sq.epoch,
	})
	req := e.Transport.Requestor()
	acked := map[cluster.NodeID]bool{}
	for len(acked) < len(alive) {
		if err := sq.ctx.Err(); err != nil {
			return err
		}
		msg, ok := req.Get()
		if !ok {
			return fmt.Errorf("exec: requestor mailbox closed")
		}
		switch msg.Kind {
		case cluster.MsgCancel:
			if err := sq.ctx.Err(); err != nil {
				return err
			}
		case cluster.MsgError:
			return fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
		case cluster.MsgFailure:
			if sq.opts.Recover != nil && e.Transport.Alive(msg.From) {
				continue // duplicate failure frame for an already-recovered node
			}
			return sq.failureErr(msg.From)
		case cluster.MsgCommit:
			if msg.Epoch == sq.epoch && msg.Stratum == round {
				acked[msg.From] = true
			}
		}
	}
	return nil
}

// errAsNodeFailure unwraps err as a recoverable node failure.
func errAsNodeFailure(err error) (nodeFailureErr, bool) {
	var nf nodeFailureErr
	if errors.As(err, &nf) {
		return nf, true
	}
	return nodeFailureErr{}, false
}

// route partitions one table's deltas by ring owner (primary plus
// replicas — workers store every copy and inject only primarily-owned
// keys).
func (sq *StandingQuery) route(table string, deltas []types.Delta) (map[cluster.NodeID][]types.Delta, error) {
	tab, err := sq.eng.Catalog.Table(table)
	if err != nil {
		return nil, fmt.Errorf("exec: ingest: %w", err)
	}
	arity := tab.Schema.Len()
	for _, d := range deltas {
		if len(d.Tup) != arity || (d.Op == types.OpReplace && len(d.Old) != arity) {
			return nil, fmt.Errorf("exec: ingest into %s: tuple %v does not match the %d-column schema", table, d.Tup, arity)
		}
	}
	out := map[cluster.NodeID][]types.Delta{}
	err = types.RouteByKey(deltas, tab.PartitionKey, func(h uint64, d types.Delta) error {
		for _, owner := range sq.eng.Ring.Owners(h) {
			out[owner] = append(out[owner], d)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// spool is the unbounded batch buffer between the pump and the stream
// consumer. Unboundedness is deliberate: Ingest returns only after a
// round's batches are all spooled, so a single goroutine can alternate
// Ingest and stream reads without deadlocking on a bounded channel.
type spool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []StreamBatch
	head   int
	closed bool
}

func newSpool() *spool {
	s := &spool{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *spool) push(b StreamBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.buf = append(s.buf, b)
	s.cond.Signal()
}

// pop blocks until a batch is available or the spool is closed and
// drained.
func (s *spool) pop() (StreamBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.head == len(s.buf) && !s.closed {
		s.cond.Wait()
	}
	return s.take()
}

// tryPop is pop without blocking.
func (s *spool) tryPop() (StreamBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.take()
}

func (s *spool) take() (StreamBatch, bool) {
	if s.head == len(s.buf) {
		return StreamBatch{}, false
	}
	b := s.buf[s.head]
	s.buf[s.head] = StreamBatch{}
	s.head++
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	}
	return b, true
}

func (s *spool) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}
