package exec

import "sync/atomic"

// Kernel counters: process-wide tallies of how much batch traffic the
// compiled expression kernels actually carried. They answer the question
// the fallback design raises — "is the fast path on?" — through
// Session.Stats, the rexd /stats endpoint, and srvproto.ServerStats.
var (
	// kernelCompiled counts successful expr.Compile calls at operator
	// instantiation (one per compiled kernel, not per batch).
	kernelCompiled atomic.Int64
	// kernelVectorBatches counts batches fully evaluated by a kernel.
	kernelVectorBatches atomic.Int64
	// kernelBridgedBatches counts batches pushed through an operator
	// with no compiled kernel (UDF expressions, uncompilable shapes),
	// bridged row-by-row through scratch tuples.
	kernelBridgedBatches atomic.Int64
	// kernelFallbackEvals counts batches a compiled kernel declined at
	// eval time (boxed-any columns, kind drift, rows the interpreter
	// would reject) and the operator re-ran through the row path.
	kernelFallbackEvals atomic.Int64
)

// KernelStats is a snapshot of the expression-kernel counters.
type KernelStats struct {
	// Compiled is the number of kernels compiled at operator
	// instantiation since process start.
	Compiled int64 `json:"kernel_compiled"`
	// VectorBatches / BridgedBatches / FallbackEvals split the batch
	// traffic of kernel-capable operators: evaluated column-wise by a
	// compiled kernel, bridged because no kernel compiled, or declined
	// by a kernel at eval time and re-run on the row path.
	VectorBatches  int64 `json:"kernel_vector_batches"`
	BridgedBatches int64 `json:"kernel_bridged_batches"`
	FallbackEvals  int64 `json:"kernel_fallback_evals"`
}

// ReadKernelStats snapshots the process-wide kernel counters.
func ReadKernelStats() KernelStats {
	return KernelStats{
		Compiled:       kernelCompiled.Load(),
		VectorBatches:  kernelVectorBatches.Load(),
		BridgedBatches: kernelBridgedBatches.Load(),
		FallbackEvals:  kernelFallbackEvals.Load(),
	}
}
