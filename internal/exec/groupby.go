package exec

import (
	"fmt"

	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// groupByOp is the delta-aware pipelined group-by of §3.3: per-key
// aggregate state is revised by each incoming delta; when the stratum's
// punctuation arrives, dirty groups emit insertion deltas (first result)
// or replacement deltas (revised result) downstream. Aggregate state is
// cumulative across strata — that is exactly what lets recursive queries
// refine aggregates instead of recomputing them.
//
// Two modes: scalar mode evaluates built-in aggregates (sum, count, min,
// max, avg, argmin) with automatic delta rules; UDA mode delegates to a
// user-defined aggregator's AGGSTATE/AGGRESULT handlers and resets per
// stratum (the MapReduce-reduce semantics the wrappers need).
type groupByOp struct {
	spec *OpSpec
	outs outputs

	tracker *portTracker

	// scalar mode
	aggs     []uda.ScalarAgg
	argExprs [][]expr.Expr
	groups   map[types.Value]*groupState
	// dirty marks groups revised since the last flush; ckptDirty marks
	// groups revised since the last checkpoint collection.
	dirty     map[types.Value]bool
	ckptDirty map[types.Value]bool

	// UDA mode
	udaAgg    uda.Aggregator
	udaStates map[types.Value]uda.State
	udaKeys   map[types.Value]types.Tuple

	// kernel path (scalar mode): per-agg, per-arg compiled kernels. nil
	// unless the plan carried an input schema and every argument
	// compiled; key extraction then runs columnar through KeyAt and the
	// scratch-tuple bridge is skipped entirely.
	argKerns [][]*expr.Kernel
	argVecs  [][]*types.Vec
	oldVecs  [][]*types.Vec
	rows     []int32
	oldRows  []int32
}

type groupState struct {
	keyTuple types.Tuple
	states   []uda.State
	last     types.Tuple // last emitted result; nil before first emission
}

func newGroupByOp(spec *OpSpec, nin int, agg uda.Aggregator, schema []types.Kind) (*groupByOp, error) {
	g := &groupByOp{
		spec:      spec,
		tracker:   newPortTracker(nin),
		groups:    map[types.Value]*groupState{},
		dirty:     map[types.Value]bool{},
		ckptDirty: map[types.Value]bool{},
	}
	if agg != nil {
		g.udaAgg = agg
		g.udaStates = map[types.Value]uda.State{}
		g.udaKeys = map[types.Value]types.Tuple{}
		return g, nil
	}
	for _, as := range spec.Aggs {
		a, err := uda.NewScalarAgg(as.Fn)
		if err != nil {
			return nil, err
		}
		g.aggs = append(g.aggs, a)
		g.argExprs = append(g.argExprs, as.Args)
	}
	g.argKerns = compileArgKernels(g.argExprs, schema)
	return g, nil
}

// compileArgKernels compiles every aggregate argument against the input
// schema, all-or-nothing: one uncompilable argument keeps the whole
// operator on the scratch-tuple bridge (mixing kernel and interpreted
// arguments per row would forfeit the win).
func compileArgKernels(argExprs [][]expr.Expr, schema []types.Kind) [][]*expr.Kernel {
	if schema == nil {
		return nil
	}
	kerns := make([][]*expr.Kernel, len(argExprs))
	total := 0
	for i, args := range argExprs {
		kerns[i] = make([]*expr.Kernel, len(args))
		for j, e := range args {
			k, ok := expr.Compile(e, schema)
			if !ok {
				return nil
			}
			kerns[i][j] = k
			total++
		}
	}
	kernelCompiled.Add(int64(total))
	return kerns
}

// vecGrid allocates caller-owned result vectors shaped like the kernel
// grid.
func vecGrid(kerns [][]*expr.Kernel) [][]*types.Vec {
	out := make([][]*types.Vec, len(kerns))
	for i, ks := range kerns {
		out[i] = make([]*types.Vec, len(ks))
		for j := range ks {
			out[i][j] = new(types.Vec)
		}
	}
	return out
}

// evalArgKernels evaluates a kernel grid over the batch — new images for
// every row, old images for the given replace rows — declining as a unit.
func evalArgKernels(kerns [][]*expr.Kernel, vecs, oldVecs [][]*types.Vec, b *types.DeltaBatch, rows, oldRows []int32) bool {
	for i, ks := range kerns {
		for j, k := range ks {
			if !k.EvalInto(b, false, rows, vecs[i][j]) {
				return false
			}
			if len(oldRows) > 0 && !k.EvalInto(b, true, oldRows, oldVecs[i][j]) {
				return false
			}
		}
	}
	return true
}

// identityRows returns the dense selection [0, n), reusing rows.
func identityRows(rows []int32, n int) []int32 {
	rows = rows[:0]
	for i := 0; i < n; i++ {
		rows = append(rows, int32(i))
	}
	return rows
}

// vecArgs boxes one row's evaluated arguments. The slice is freshly
// allocated per row because aggregate Update may retain it.
func vecArgs(vecs []*types.Vec, i int) []types.Value {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]types.Value, len(vecs))
	for j, v := range vecs {
		out[j] = v.Value(i)
	}
	return out
}

// batchKeyTuple projects the group-key columns of row i (new or old
// image) into a fresh tuple — the retained keyTuple of a new group,
// matching Tuple.Project on the materialized row.
func batchKeyTuple(b *types.DeltaBatch, i int, key []int, old bool) types.Tuple {
	out := make(types.Tuple, len(key))
	for j, c := range key {
		if old {
			out[j] = b.OldCol(c).Value(i)
		} else {
			out[j] = b.Col(c).Value(i)
		}
	}
	return out
}

func (g *groupByOp) Push(port int, batch []types.Delta) error {
	if g.udaAgg != nil {
		return g.pushUDA(batch)
	}
	for _, d := range batch {
		if err := g.apply(d.Op, d.Tup, d.Old); err != nil {
			return err
		}
	}
	return nil
}

// PushBatch is the columnar group-by path. With compiled argument
// kernels, keys come columnar off KeyAt and arguments off typed result
// vectors — no scratch-tuple materialization at all; otherwise rows fold
// through reused scratch tuples. UDA mode falls back to the row path.
func (g *groupByOp) PushBatch(port int, b *types.DeltaBatch) error {
	if g.udaAgg != nil {
		return g.Push(port, b.Deltas())
	}
	if b.Len() > 0 {
		if g.argKerns != nil {
			if done, err := g.pushKernel(b); done {
				return err
			}
			kernelFallbackEvals.Add(1)
		} else {
			kernelBridgedBatches.Add(1)
		}
	}
	return g.pushBridged(b)
}

// pushKernel folds the batch through compiled argument kernels and
// columnar key extraction. It declines (false) before touching group
// state, so pushBridged can re-run the whole batch from scratch.
func (g *groupByOp) pushKernel(b *types.DeltaBatch) (bool, error) {
	n := b.Len()
	g.oldRows = g.oldRows[:0]
	for i := 0; i < n; i++ {
		if b.Op(i) == types.OpReplace {
			g.oldRows = append(g.oldRows, int32(i))
		}
	}
	if len(g.oldRows) > 0 && !b.HasOld() {
		// Row-path replace handling without an old image differs per
		// aggregate; let the bridge reproduce it.
		return false, nil
	}
	g.rows = identityRows(g.rows, n)
	if g.argVecs == nil {
		g.argVecs = vecGrid(g.argKerns)
		g.oldVecs = vecGrid(g.argKerns)
	}
	if !evalArgKernels(g.argKerns, g.argVecs, g.oldVecs, b, g.rows, g.oldRows) {
		return false, nil
	}
	kernelVectorBatches.Add(1)
	for i := 0; i < n; i++ {
		op := b.Op(i)
		key := b.KeyAt(i, g.spec.GroupKey)
		gs, ok := g.groups[key]
		if !ok {
			gs = &groupState{keyTuple: batchKeyTuple(b, i, g.spec.GroupKey, false)}
			gs.states = make([]uda.State, len(g.aggs))
			for j, a := range g.aggs {
				gs.states[j] = a.NewState()
			}
			g.groups[key] = gs
		}
		for j, a := range g.aggs {
			var oldArgs []types.Value
			if op == types.OpReplace {
				oldArgs = vecArgs(g.oldVecs[j], i)
			}
			if err := a.Update(gs.states[j], op, vecArgs(g.argVecs[j], i), oldArgs); err != nil {
				return true, fmt.Errorf("exec: group-by %s: %w", a.Name(), err)
			}
		}
		g.dirty[key] = true
		g.ckptDirty[key] = true
	}
	return true, nil
}

// pushBridged folds batch rows through reused scratch tuples —
// everything retained from a row (the map key, the projected key tuple,
// evaluated arguments) is freshly built by apply, so no per-row delta
// materialization is needed. This is a documented expr row-path
// fallback site.
func (g *groupByOp) pushBridged(b *types.DeltaBatch) error {
	var scratch, oldScratch types.Tuple
	for i := 0; i < b.Len(); i++ {
		op := b.Op(i)
		scratch = b.Row(i, scratch)
		var old types.Tuple
		if op == types.OpReplace && b.HasOld() {
			oldScratch = b.OldRow(i, oldScratch)
			old = oldScratch
		}
		if err := g.apply(op, scratch, old); err != nil {
			return err
		}
	}
	return nil
}

// apply folds one delta into scalar aggregate state. It retains nothing
// from tup or old (Key and Project copy; evaluated args are fresh), so
// callers may pass reused scratch tuples.
func (g *groupByOp) apply(op types.Op, tup, old types.Tuple) error {
	key := tup.Key(g.spec.GroupKey)
	gs, ok := g.groups[key]
	if !ok {
		gs = &groupState{keyTuple: tup.Project(g.spec.GroupKey)}
		gs.states = make([]uda.State, len(g.aggs))
		for i, a := range g.aggs {
			gs.states[i] = a.NewState()
		}
		g.groups[key] = gs
	}
	for i, a := range g.aggs {
		args, err := evalArgs(g.argExprs[i], tup)
		if err != nil {
			return err
		}
		var oldArgs []types.Value
		if op == types.OpReplace {
			if oldArgs, err = evalArgs(g.argExprs[i], old); err != nil {
				return err
			}
		}
		if err := a.Update(gs.states[i], op, args, oldArgs); err != nil {
			return fmt.Errorf("exec: group-by %s: %w", a.Name(), err)
		}
	}
	g.dirty[key] = true
	g.ckptDirty[key] = true
	return nil
}

func (g *groupByOp) pushUDA(batch []types.Delta) error {
	var out []types.Delta
	for _, d := range batch {
		key := d.Tup.Key(g.spec.GroupKey)
		st, ok := g.udaStates[key]
		if !ok {
			st = g.udaAgg.NewState()
			g.udaKeys[key] = d.Tup.Project(g.spec.GroupKey)
		}
		nst, intermediate, err := g.udaAgg.AggState(st, d)
		if err != nil {
			return fmt.Errorf("exec: UDA %s: %w", g.udaAgg.Name(), err)
		}
		g.udaStates[key] = nst
		out = append(out, intermediate...)
	}
	return g.outs.send(out)
}

func evalArgs(exprs []expr.Expr, t types.Tuple) ([]types.Value, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]types.Value, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Punct flushes dirty groups once all inputs have punctuated the stratum.
func (g *groupByOp) Punct(port, stratum int, closed bool) error {
	done, err := g.tracker.mark(port, stratum, closed)
	if err != nil {
		return err
	}
	if !done {
		return nil
	}
	if g.udaAgg != nil {
		if err := g.flushUDA(); err != nil {
			return err
		}
	} else if err := g.flushScalar(); err != nil {
		return err
	}
	return g.outs.punct(stratum, g.tracker.allClosed())
}

func (g *groupByOp) flushScalar() error {
	var out []types.Delta
	for key := range g.dirty {
		gs := g.groups[key]
		cur := make(types.Tuple, 0, len(gs.keyTuple)+len(g.aggs))
		cur = append(cur, gs.keyTuple...)
		for i, a := range g.aggs {
			cur = append(cur, a.Result(gs.states[i]))
		}
		if gs.last == nil {
			out = append(out, types.Insert(cur))
		} else if !gs.last.Equal(cur) {
			out = append(out, types.Replace(gs.last, cur))
		}
		gs.last = cur
	}
	g.dirty = map[types.Value]bool{}
	if g.spec.ResetPerStratum {
		g.groups = map[types.Value]*groupState{}
	}
	return g.outs.send(out)
}

func (g *groupByOp) flushUDA() error {
	var out []types.Delta
	for key, st := range g.udaStates {
		res, err := g.udaAgg.AggResult(st)
		if err != nil {
			return fmt.Errorf("exec: UDA %s result: %w", g.udaAgg.Name(), err)
		}
		out = append(out, res...)
		delete(g.udaStates, key)
		delete(g.udaKeys, key)
	}
	return g.outs.send(out)
}

// ReopenRound re-arms punctuation for a standing query's next ingestion
// round; group state stays resident so revisions emit replacements against
// the last flushed results.
func (g *groupByOp) ReopenRound() { g.tracker.reopen() }

func (g *groupByOp) Reset() {
	g.groups = map[types.Value]*groupState{}
	g.dirty = map[types.Value]bool{}
	g.ckptDirty = map[types.Value]bool{}
	if g.udaAgg != nil {
		g.udaStates = map[types.Value]uda.State{}
		g.udaKeys = map[types.Value]types.Tuple{}
	}
	g.tracker.reset()
}

// DirtyState checkpoints groups revised during the stratum. Entry layout:
// [keyHash, nKey, key..., hasLast, last...(outLen), per-agg: stateLen, fields...].
func (g *groupByOp) DirtyState() []types.Tuple {
	if g.udaAgg != nil {
		return nil // UDA groups reset per stratum; nothing to restore
	}
	outLen := len(g.spec.GroupKey) + len(g.aggs)
	var out []types.Tuple
	for key := range g.ckptDirty {
		gs := g.groups[key]
		e := types.NewTuple(int64(types.HashValue(key)), int64(len(gs.keyTuple)))
		e = append(e, gs.keyTuple...)
		if gs.last == nil {
			e = append(e, false)
			for i := 0; i < outLen; i++ {
				e = append(e, nil)
			}
		} else {
			e = append(e, true)
			e = append(e, gs.last...)
		}
		for i, a := range g.aggs {
			st := a.Save(gs.states[i])
			e = append(e, int64(len(st)))
			e = append(e, st...)
		}
		out = append(out, e)
	}
	g.ckptDirty = map[types.Value]bool{}
	return out
}

// Restore rebuilds group state from checkpointed entries in stratum order
// (later strata override earlier ones for the same key).
func (g *groupByOp) Restore(strata [][]types.Tuple) error {
	outLen := len(g.spec.GroupKey) + len(g.aggs)
	for _, entries := range strata {
		for _, e := range entries {
			if len(e) < 2 {
				return fmt.Errorf("exec: group-by restore: bad entry %v", e)
			}
			nKey, _ := types.AsInt(e[1])
			pos := 2
			keyTuple := e[pos : pos+int(nKey)].Clone()
			pos += int(nKey)
			hasLast, _ := types.AsBool(e[pos])
			pos++
			var last types.Tuple
			if hasLast {
				last = e[pos : pos+outLen].Clone()
			}
			pos += outLen
			gs := &groupState{keyTuple: keyTuple, last: last, states: make([]uda.State, len(g.aggs))}
			for i, a := range g.aggs {
				if pos >= len(e) {
					return fmt.Errorf("exec: group-by restore: truncated entry")
				}
				n, _ := types.AsInt(e[pos])
				pos++
				st, err := a.Load(e[pos : pos+int(n)])
				if err != nil {
					return err
				}
				gs.states[i] = st
				pos += int(n)
			}
			key := keyIndex(keyTuple)
			g.groups[key] = gs
		}
	}
	return nil
}

// keyIndex rebuilds the map key for a stored key tuple.
func keyIndex(keyTuple types.Tuple) types.Value {
	idx := make([]int, len(keyTuple))
	for i := range idx {
		idx[i] = i
	}
	return keyTuple.Key(idx)
}

// preAggOp is the combiner-style partial aggregation of §5.2: it
// accumulates per-key partial state within one stratum and, at punctuation,
// emits δ() partial-value deltas downstream (which the final aggregate
// folds in arithmetically), then resets. Insert streams are always
// eligible; deletions and replacements fold too when every aggregate is
// invertible (sum/count — the partial nets out and the final aggregate
// adds a possibly-negative adjustment), which is what lets standing
// queries push deletion churn through a combiner plan.
type preAggOp struct {
	spec *OpSpec
	outs outputs

	tracker    *portTracker
	aggs       []uda.ScalarAgg
	argExprs   [][]expr.Expr
	groups     map[types.Value]*groupState
	invertible bool

	// kernel path: see groupByOp.argKerns.
	argKerns [][]*expr.Kernel
	argVecs  [][]*types.Vec
	oldVecs  [][]*types.Vec
	rows     []int32
	oldRows  []int32
}

func newPreAggOp(spec *OpSpec, nin int, schema []types.Kind) (*preAggOp, error) {
	p := &preAggOp{spec: spec, tracker: newPortTracker(nin), groups: map[types.Value]*groupState{}, invertible: true}
	for _, as := range spec.Aggs {
		if as.Fn == "avg" || as.Fn == "argmin" {
			return nil, fmt.Errorf("exec: pre-aggregation of %s must be decomposed by the optimizer", as.Fn)
		}
		if as.Fn != "sum" && as.Fn != "count" {
			p.invertible = false
		}
		a, err := uda.NewScalarAgg(as.Fn)
		if err != nil {
			return nil, err
		}
		p.aggs = append(p.aggs, a)
		p.argExprs = append(p.argExprs, as.Args)
	}
	p.argKerns = compileArgKernels(p.argExprs, schema)
	return p, nil
}

func (p *preAggOp) Push(port int, batch []types.Delta) error {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			if err := p.fold(d.Op, d.Tup); err != nil {
				return err
			}
		case types.OpDelete:
			if !p.invertible {
				return fmt.Errorf("exec: pre-aggregation over non-insert delta %v (aggregate is not invertible)", d.Op)
			}
			if err := p.fold(d.Op, d.Tup); err != nil {
				return err
			}
		case types.OpReplace:
			if !p.invertible {
				return fmt.Errorf("exec: pre-aggregation over non-insert delta %v (aggregate is not invertible)", d.Op)
			}
			// Old and new may land in different groups: net them apart.
			if err := p.fold(types.OpDelete, d.Old); err != nil {
				return err
			}
			if err := p.fold(types.OpInsert, d.Tup); err != nil {
				return err
			}
		default:
			return fmt.Errorf("exec: pre-aggregation over delta %v", d.Op)
		}
	}
	return nil
}

// PushBatch is the columnar combiner path. With compiled argument
// kernels, keys and arguments stay columnar; otherwise rows stream
// through reused scratch tuples (fold retains nothing from its tuple).
func (p *preAggOp) PushBatch(port int, b *types.DeltaBatch) error {
	if b.Len() > 0 {
		if p.argKerns != nil {
			if done, err := p.pushKernel(b); done {
				return err
			}
			kernelFallbackEvals.Add(1)
		} else {
			kernelBridgedBatches.Add(1)
		}
	}
	return p.pushBridged(b)
}

// pushKernel folds the batch through compiled argument kernels. It
// declines (false) before touching group state — including for the
// non-invertible-delta error cases, where pushBridged reproduces the
// row path's fold-then-error ordering exactly.
func (p *preAggOp) pushKernel(b *types.DeltaBatch) (bool, error) {
	n := b.Len()
	p.oldRows = p.oldRows[:0]
	for i := 0; i < n; i++ {
		switch b.Op(i) {
		case types.OpInsert, types.OpUpdate:
		case types.OpDelete:
			if !p.invertible {
				return false, nil
			}
		case types.OpReplace:
			if !p.invertible {
				return false, nil
			}
			p.oldRows = append(p.oldRows, int32(i))
		default:
			return false, nil
		}
	}
	if len(p.oldRows) > 0 && !b.HasOld() {
		return false, nil
	}
	p.rows = identityRows(p.rows, n)
	if p.argVecs == nil {
		p.argVecs = vecGrid(p.argKerns)
		p.oldVecs = vecGrid(p.argKerns)
	}
	if !evalArgKernels(p.argKerns, p.argVecs, p.oldVecs, b, p.rows, p.oldRows) {
		return false, nil
	}
	kernelVectorBatches.Add(1)
	for i := 0; i < n; i++ {
		op := b.Op(i)
		if op == types.OpReplace {
			// Old and new may land in different groups: net them apart.
			if err := p.foldKeyed(types.OpDelete, b, i, true); err != nil {
				return true, err
			}
			if err := p.foldKeyed(types.OpInsert, b, i, false); err != nil {
				return true, err
			}
			continue
		}
		if err := p.foldKeyed(op, b, i, false); err != nil {
			return true, err
		}
	}
	return true, nil
}

// foldKeyed is fold over one image (old or new) of batch row i, with the
// key extracted columnar and arguments read off the kernel result grid.
func (p *preAggOp) foldKeyed(op types.Op, b *types.DeltaBatch, i int, old bool) error {
	var key types.Value
	if old {
		key = b.OldKeyAt(i, p.spec.GroupKey)
	} else {
		key = b.KeyAt(i, p.spec.GroupKey)
	}
	gs, ok := p.groups[key]
	if !ok {
		gs = &groupState{keyTuple: batchKeyTuple(b, i, p.spec.GroupKey, old)}
		gs.states = make([]uda.State, len(p.aggs))
		for j, a := range p.aggs {
			gs.states[j] = a.NewState()
		}
		p.groups[key] = gs
	}
	vecs := p.argVecs
	if old {
		vecs = p.oldVecs
	}
	for j, a := range p.aggs {
		if err := a.Update(gs.states[j], op, vecArgs(vecs[j], i), nil); err != nil {
			return err
		}
	}
	return nil
}

// pushBridged streams batch rows through reused scratch tuples. This is
// a documented expr row-path fallback site.
func (p *preAggOp) pushBridged(b *types.DeltaBatch) error {
	var scratch, oldScratch types.Tuple
	for i := 0; i < b.Len(); i++ {
		op := b.Op(i)
		scratch = b.Row(i, scratch)
		switch op {
		case types.OpInsert, types.OpUpdate:
			if err := p.fold(op, scratch); err != nil {
				return err
			}
		case types.OpDelete:
			if !p.invertible {
				return fmt.Errorf("exec: pre-aggregation over non-insert delta %v (aggregate is not invertible)", op)
			}
			if err := p.fold(op, scratch); err != nil {
				return err
			}
		case types.OpReplace:
			if !p.invertible {
				return fmt.Errorf("exec: pre-aggregation over non-insert delta %v (aggregate is not invertible)", op)
			}
			oldScratch = b.OldRow(i, oldScratch)
			if err := p.fold(types.OpDelete, oldScratch); err != nil {
				return err
			}
			if err := p.fold(types.OpInsert, scratch); err != nil {
				return err
			}
		default:
			return fmt.Errorf("exec: pre-aggregation over delta %v", op)
		}
	}
	return nil
}

func (p *preAggOp) fold(op types.Op, t types.Tuple) error {
	key := t.Key(p.spec.GroupKey)
	gs, ok := p.groups[key]
	if !ok {
		gs = &groupState{keyTuple: t.Project(p.spec.GroupKey)}
		gs.states = make([]uda.State, len(p.aggs))
		for i, a := range p.aggs {
			gs.states[i] = a.NewState()
		}
		p.groups[key] = gs
	}
	for i, a := range p.aggs {
		args, err := evalArgs(p.argExprs[i], t)
		if err != nil {
			return err
		}
		if err := a.Update(gs.states[i], op, args, nil); err != nil {
			return err
		}
	}
	return nil
}

func (p *preAggOp) Punct(port, stratum int, closed bool) error {
	done, err := p.tracker.mark(port, stratum, closed)
	if err != nil {
		return err
	}
	if !done {
		return nil
	}
	var out []types.Delta
	for key, gs := range p.groups {
		t := make(types.Tuple, 0, len(gs.keyTuple)+len(p.aggs))
		t = append(t, gs.keyTuple...)
		for i, a := range p.aggs {
			t = append(t, a.Result(gs.states[i]))
		}
		out = append(out, types.Update(t))
		delete(p.groups, key)
	}
	if err := p.outs.send(out); err != nil {
		return err
	}
	return p.outs.punct(stratum, p.tracker.allClosed())
}

// ReopenRound re-arms punctuation for a standing query's next ingestion
// round (partial-aggregation state already resets per stratum).
func (p *preAggOp) ReopenRound() { p.tracker.reopen() }

func (p *preAggOp) Reset() {
	p.groups = map[types.Value]*groupState{}
	p.tracker.reset()
}
