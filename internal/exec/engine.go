package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

// RecoveryStrategy selects how the requestor reacts to a node failure.
type RecoveryStrategy uint8

const (
	// RecoveryNone aborts the query on failure.
	RecoveryNone RecoveryStrategy = iota
	// RecoveryRestart re-runs the query from scratch on the survivors —
	// the "Restart" baseline of §6.6.
	RecoveryRestart
	// RecoveryIncremental resumes from the last completed stratum using
	// the replicated Δᵢ checkpoints — the paper's hybrid scheme (§4.3).
	RecoveryIncremental
)

// Options tune one query execution.
type Options struct {
	// BatchSize is the transport batching granularity (default 1024).
	BatchSize int
	// MaxStrata caps recursion depth (default: plan's setting).
	MaxStrata int
	// Recovery selects the failure-handling strategy.
	Recovery RecoveryStrategy
	// Checkpoint enables per-stratum Δᵢ replication (required for
	// RecoveryIncremental; adds measurable but small overhead otherwise).
	Checkpoint bool
	// Compaction enables delta-batch compaction in the shuffle path:
	// per-(edge, destination) buffers coalesce same-key deltas
	// (insert+delete annihilation, replace-chain folding, and
	// aggregate-delta merging where the plan declares merge functions)
	// before encoding, shrinking wire volume at the cost of cross-key
	// reordering inside a batch (sound for keyed consumers).
	Compaction bool
	// CompactionHighWater is the destination-mailbox depth above which a
	// compacting sender defers its flush — holding deltas back for
	// further coalescing instead of flooding a backlogged peer
	// (default 64; soft backpressure, punctuation always flushes).
	CompactionHighWater int
	// TermFn, when set, is an explicit termination condition evaluated by
	// the requestor after each stratum over the global new-tuple count
	// (§3.4). Returning true terminates the query.
	TermFn func(stratum, newTuples int) bool
	// OnStratum, when set, observes each completed stratum (used by the
	// experiment harness, e.g. to inject failures at iteration k).
	OnStratum func(stratum, newTuples int)
}

// StratumStats records one stratum of a recursive execution.
type StratumStats struct {
	Stratum int
	// NewTuples is the global Δᵢ set size (sum of fixpoint votes).
	NewTuples int
	Duration  time.Duration
}

// Result is a completed query execution.
type Result struct {
	Tuples   []types.Tuple
	Strata   []StratumStats
	Duration time.Duration
	// BytesSent is the measured wire volume of the run: encoded frame
	// bytes shipped between workers (loopback excluded).
	BytesSent int64
	// CompactIn/CompactOut count deltas entering and leaving the shuffle
	// compactors (both zero when Options.Compaction is off); their ratio
	// is the compaction win.
	CompactIn, CompactOut int64
	// Recoveries counts failures survived during the run.
	Recoveries int
}

// Engine executes physical plans on the simulated cluster. One Engine can
// run many queries sequentially; it owns no per-query state.
type Engine struct {
	Transport *cluster.Transport
	Ring      *cluster.Ring
	Stores    []*storage.Store
	Ckpts     []*storage.CheckpointStore
	Catalog   *catalog.Catalog

	queryCounter atomic.Int64
}

// NewEngine assembles an engine over n simulated worker nodes.
func NewEngine(n, vnodes, replication int, cat *catalog.Catalog) *Engine {
	e := &Engine{
		Transport: cluster.NewTransport(n),
		Ring:      cluster.NewRing(n, vnodes, replication),
		Catalog:   cat,
	}
	for i := 0; i < n; i++ {
		e.Stores = append(e.Stores, storage.NewStore(cluster.NodeID(i)))
		e.Ckpts = append(e.Ckpts, storage.NewCheckpointStore())
	}
	return e
}

// Load distributes a dataset to the workers' replicated local storage.
func (e *Engine) Load(table string, keyCol int, tuples []types.Tuple) error {
	l := &storage.Loader{Ring: e.Ring, Stores: e.Stores}
	return l.Load(table, keyCol, tuples)
}

// Run executes the plan to completion, handling failures per opts.
func (e *Engine) Run(spec *PlanSpec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if opts.CompactionHighWater <= 0 {
		opts.CompactionHighWater = 64
	}
	maxStrata := spec.MaxStrata
	if opts.MaxStrata > 0 {
		maxStrata = opts.MaxStrata
	}
	queryID := fmt.Sprintf("q%d", e.queryCounter.Add(1))

	alive := e.Transport.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("exec: no alive nodes")
	}
	bytesBefore := e.Transport.Metrics().TotalBytesSent()
	compactInBefore, compactOutBefore := e.Transport.Metrics().TotalCompaction()
	start := time.Now()

	// Spawn one worker loop per currently alive node.
	var wg sync.WaitGroup
	for _, n := range alive {
		w := &worker{
			node: n, transport: e.Transport, store: e.Stores[n],
			ckpt: e.Ckpts[n], cat: e.Catalog, ring: e.Ring,
			spec: spec, queryID: queryID, batchSize: opts.BatchSize,
			checkpoints: opts.Checkpoint,
			compaction:  opts.Compaction, highWater: opts.CompactionHighWater,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop()
		}()
	}

	res, err := e.coordinate(spec, opts, queryID, maxStrata)

	// Teardown: stop workers and drop the query's checkpoints.
	e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgShutdown})
	wg.Wait()
	for _, c := range e.Ckpts {
		c.Drop(queryID)
	}
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	res.BytesSent = e.Transport.Metrics().TotalBytesSent() - bytesBefore
	compactIn, compactOut := e.Transport.Metrics().TotalCompaction()
	res.CompactIn = compactIn - compactInBefore
	res.CompactOut = compactOut - compactOutBefore
	return res, nil
}

// coordinate is the query-requestor loop of §4.2: it aggregates fixpoint
// votes, decides stratum advancement or termination, collects results, and
// orchestrates recovery (§4.3).
func (e *Engine) coordinate(spec *PlanSpec, opts Options, queryID string, maxStrata int) (*Result, error) {
	res := &Result{}
	epoch := 0
	resume := 0
	incremental := false
	completed := -1 // last globally completed stratum

	alive := e.Transport.AliveNodes()
	broadcastStart := func() {
		mode := startFresh
		if incremental {
			mode = startIncremental
		}
		payload := encodeNodeList(alive)
		for _, n := range alive {
			e.Transport.Send(cluster.Message{
				From: -1, To: n, Kind: cluster.MsgStart,
				Epoch: epoch, Stratum: resume, Count: mode, Payload: payload,
			})
		}
	}
	broadcastStart()

	votes := map[int]map[cluster.NodeID]int{}
	done := map[cluster.NodeID]bool{}
	stratumStart := time.Now()
	req := e.Transport.Requestor()

	for {
		msg, ok := req.Get()
		if !ok {
			return nil, fmt.Errorf("exec: requestor mailbox closed")
		}
		switch msg.Kind {
		case cluster.MsgError:
			if msg.Epoch != epoch {
				continue // stale epoch: the failed attempt's debris
			}
			return nil, fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
		case cluster.MsgFailure:
			if opts.Recovery == RecoveryNone {
				return nil, fmt.Errorf("exec: node %d failed and recovery is disabled", msg.From)
			}
			res.Recoveries++
			epoch++
			alive = e.Transport.AliveNodes()
			if len(alive) == 0 {
				return nil, fmt.Errorf("exec: all nodes failed")
			}
			votes = map[int]map[cluster.NodeID]int{}
			done = map[cluster.NodeID]bool{}
			res.Tuples = nil
			if opts.Recovery == RecoveryIncremental && spec.Recursive() && opts.Checkpoint && completed >= 0 {
				incremental = true
				resume = completed
			} else {
				incremental = false
				resume = 0
				completed = -1
				res.Strata = nil
			}
			stratumStart = time.Now()
			broadcastStart()
		case cluster.MsgVote:
			if msg.Epoch != epoch {
				continue
			}
			s := msg.Stratum
			if votes[s] == nil {
				votes[s] = map[cluster.NodeID]int{}
			}
			votes[s][msg.From] = msg.Count
			if len(votes[s]) < len(alive) {
				continue
			}
			total := 0
			for _, c := range votes[s] {
				total += c
			}
			completed = s
			if !(incremental && s == resume) {
				// A re-voted restored stratum keeps its original stats.
				res.Strata = append(res.Strata, StratumStats{
					Stratum: s, NewTuples: total, Duration: time.Since(stratumStart),
				})
			}
			stratumStart = time.Now()
			if opts.OnStratum != nil {
				opts.OnStratum(s, total)
			}
			terminate := total == 0 || s+1 >= maxStrata
			if opts.TermFn != nil && opts.TermFn(s, total) {
				terminate = true
			}
			e.broadcastDecision(alive, epoch, s+1, terminate)
		case cluster.MsgData:
			if msg.Epoch != epoch || msg.Edge != resultEdge {
				continue
			}
			batch, err := cluster.DecodeDeltas(msg.Payload)
			if err != nil {
				return nil, err
			}
			res.Tuples = applyResultDeltas(res.Tuples, batch)
		case cluster.MsgPunct:
			if msg.Epoch != epoch || msg.Edge != resultEdge {
				continue
			}
			done[msg.From] = true
			if len(done) == len(alive) {
				return res, nil
			}
		}
	}
}

func (e *Engine) broadcastDecision(alive []cluster.NodeID, epoch, next int, terminate bool) {
	for _, n := range alive {
		e.Transport.Send(cluster.Message{
			From: -1, To: n, Kind: cluster.MsgDecision,
			Epoch: epoch, Stratum: next, Terminate: terminate,
		})
	}
}

// applyResultDeltas folds a result batch into the accumulated result set.
// Final flushes are insert-only; replacement and deletion are handled for
// completeness of non-recursive pipelines.
func applyResultDeltas(acc []types.Tuple, batch []types.Delta) []types.Tuple {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			acc = append(acc, d.Tup)
		case types.OpDelete:
			for i, t := range acc {
				if t.Equal(d.Tup) {
					acc = append(acc[:i], acc[i+1:]...)
					break
				}
			}
		case types.OpReplace:
			replaced := false
			for i, t := range acc {
				if t.Equal(d.Old) {
					acc[i] = d.Tup
					replaced = true
					break
				}
			}
			if !replaced {
				acc = append(acc, d.Tup)
			}
		}
	}
	return acc
}
