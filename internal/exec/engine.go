package exec

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/pagestore"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

// RecoveryStrategy selects how the requestor reacts to a node failure.
type RecoveryStrategy uint8

const (
	// RecoveryNone aborts the query on failure.
	RecoveryNone RecoveryStrategy = iota
	// RecoveryRestart re-runs the query from scratch on the survivors —
	// the "Restart" baseline of §6.6.
	RecoveryRestart
	// RecoveryIncremental resumes from the last completed stratum using
	// the replicated Δᵢ checkpoints — the paper's hybrid scheme (§4.3).
	RecoveryIncremental
)

// Option defaults shared by Engine.Run and NewWorker (a remote worker
// must normalize the same way the engine does, or the two sides of a
// query would batch differently).
const (
	defaultBatchSize = 1024
	defaultHighWater = 64
)

// Options tune one query execution.
type Options struct {
	// BatchSize is the transport batching granularity (default 1024).
	BatchSize int
	// MaxStrata caps recursion depth (default: plan's setting).
	MaxStrata int
	// Recovery selects the failure-handling strategy.
	Recovery RecoveryStrategy
	// Checkpoint enables per-stratum Δᵢ replication (required for
	// RecoveryIncremental; adds measurable but small overhead otherwise).
	Checkpoint bool
	// Compaction enables delta-batch compaction in the shuffle path:
	// per-(edge, destination) buffers coalesce same-key deltas
	// (insert+delete annihilation, replace-chain folding, and
	// aggregate-delta merging where the plan declares merge functions)
	// before encoding, shrinking wire volume at the cost of cross-key
	// reordering inside a batch (sound for keyed consumers).
	Compaction bool
	// CompactionHighWater is the destination-mailbox depth above which a
	// compacting sender defers its flush — holding deltas back for
	// further coalescing instead of flooding a backlogged peer
	// (default 64; soft backpressure, punctuation always flushes).
	CompactionHighWater int
	// Stream switches the run to streaming-result mode: instead of the
	// fixpoint flushing its entire final relation at termination, every
	// stratum's state changes are shipped to the requestor as a delta
	// batch when that stratum closes, and the final flush is suppressed
	// (the concatenated per-stratum batches fold to the same relation).
	// Both sides of a multi-process run must agree on this field — it
	// changes worker behavior — so it travels in the job spec.
	// Streaming runs do not support failure recovery.
	Stream bool
	// NoVectorize disables the columnar batch path: operators exchange
	// row-form delta slices end to end and the shuffle ships dictionary
	// frames only. The zero value runs vectorized — eligible operators
	// move whole columnar batches and the wire carries the columnar
	// format. Both sides of a multi-process run must agree on this field
	// — it changes the frames workers emit — so it travels in the job
	// spec.
	NoVectorize bool
	// TermFn, when set, is an explicit termination condition evaluated by
	// the requestor after each stratum over the global new-tuple count
	// (§3.4). Returning true terminates the query.
	TermFn func(stratum, newTuples int) bool
	// OnStratum, when set, observes each completed stratum (used by the
	// experiment harness, e.g. to inject failures at iteration k).
	OnStratum func(stratum, newTuples int)
	// Recover, when set, enables standing-query crash recovery: on a node
	// failure the pump aborts in-flight work, calls Recover(node) to bring
	// the node back (respawn its daemon, or revive its in-process mailbox),
	// rebuilds the dataflow from the survivors' and the recovered node's
	// committed stores, and replays the interrupted round. Requires every
	// local store to be storage.Durable (see Engine.UseSpill).
	Recover func(node cluster.NodeID) error
	// SpillDir and BufferPoolPages configure paged spill-to-disk storage
	// when a job spec materializes its engine (session/daemon layers call
	// Engine.UseSpill directly). SpillDir is a local path and never
	// travels on the wire; BufferPoolPages does, so every process in a
	// TCP job agrees on pool sizing.
	SpillDir        string
	BufferPoolPages int
	// Tenant and Priority are scheduling metadata, not execution knobs:
	// the engine ignores them, but a server session forwards them so the
	// rexd admission scheduler can enforce per-tenant inflight quotas and
	// order its runnable queue. Priority is -1 low / 0 normal / +1 high.
	Tenant   string
	Priority int
}

// StratumStats records one stratum of a recursive execution.
type StratumStats struct {
	Stratum int
	// NewTuples is the global Δᵢ set size (sum of fixpoint votes).
	NewTuples int
	Duration  time.Duration
}

// Result is a completed query execution.
type Result struct {
	Tuples   []types.Tuple
	Strata   []StratumStats
	Duration time.Duration
	// BytesSent is the measured wire volume of the run: encoded frame
	// bytes shipped between workers (loopback excluded). Over TCP this
	// is measured socket bytes, length prefixes included.
	BytesSent int64
	// CompactIn/CompactOut count deltas entering and leaving the shuffle
	// compactors (both zero when Options.Compaction is off); their ratio
	// is the compaction win.
	CompactIn, CompactOut int64
	// Recoveries counts failures survived during the run.
	Recoveries int
}

// Engine executes physical plans on a REX cluster. It talks to the
// workers only through the cluster.Transport interface, so the same
// engine drives the in-process fabric (every node a goroutine in this
// process) and real multi-process deployments (a TCP driver transport
// with zero local nodes, the workers living in rexnode daemons). One
// Engine can run many queries sequentially; it owns no per-query state.
type Engine struct {
	Transport cluster.Transport
	Ring      *cluster.Ring
	// Stores/Ckpts are indexed by node; entries are nil for nodes whose
	// event loops run in other processes. Stores are in-memory
	// storage.Store by default; UseSpill swaps in paged spill-to-disk
	// stores (storage.Durable) behind the same interface.
	Stores  []storage.Backend
	Ckpts   []*storage.CheckpointStore
	Catalog *catalog.Catalog

	queryCounter atomic.Int64
}

// NewEngine assembles an engine over n in-process worker nodes.
func NewEngine(n, vnodes, replication int, cat *catalog.Catalog) *Engine {
	return NewEngineOn(cluster.NewInProcTransport(n), vnodes, replication, cat)
}

// NewEngineOn assembles an engine over an existing transport. Storage is
// allocated only for the transport's local nodes; remote nodes own their
// storage in their own processes.
func NewEngineOn(tr cluster.Transport, vnodes, replication int, cat *catalog.Catalog) *Engine {
	n := tr.N()
	e := &Engine{
		Transport: tr,
		Ring:      cluster.NewRing(n, vnodes, replication),
		Stores:    make([]storage.Backend, n),
		Ckpts:     make([]*storage.CheckpointStore, n),
		Catalog:   cat,
	}
	for _, i := range tr.LocalNodes() {
		e.Stores[i] = storage.NewStore(i)
		e.Ckpts[i] = storage.NewCheckpointStore()
	}
	return e
}

// UseSpill replaces every local node's in-memory store with a paged
// spill-to-disk store under dir (one subdirectory per node), each with a
// poolPages-frame buffer pool. Call before loading data. Directories with
// existing durable state recover it — that is how a respawned daemon
// rejoins with its committed rounds intact.
func (e *Engine) UseSpill(dir string, poolPages int) error {
	for _, i := range e.Transport.LocalNodes() {
		nodeDir := filepath.Join(dir, fmt.Sprintf("node%d", i))
		s, err := pagestore.Open(nodeDir, i, poolPages)
		if err != nil {
			return fmt.Errorf("exec: spill store for node %d: %w", i, err)
		}
		e.Stores[i] = s
		// Checkpoints ride along: the §4.3 Δ-set checkpoints persist to an
		// append-only log next to the page files, so a restarted node can
		// resume incremental recovery from its last checkpointed stratum.
		if err := e.Ckpts[i].UseDir(filepath.Join(nodeDir, "ckpt")); err != nil {
			return fmt.Errorf("exec: checkpoint log for node %d: %w", i, err)
		}
	}
	return nil
}

// CloseStores flushes and closes every local durable store (graceful
// shutdown: dirty state is sealed into a checkpoint image). In-memory
// stores are untouched.
func (e *Engine) CloseStores() error {
	var first error
	for _, s := range e.Stores {
		if d, ok := s.(storage.Durable); ok {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, c := range e.Ckpts {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// PoolStats aggregates buffer-pool traffic across the local nodes' paged
// stores (all-zero when spill is not in use).
func (e *Engine) PoolStats() storage.PoolStats {
	var total storage.PoolStats
	for _, s := range e.Stores {
		if ps, ok := s.(storage.PoolStatter); ok {
			total.Add(ps.PoolStats())
		}
	}
	return total
}

// Load distributes a dataset to the local workers' replicated storage.
// Partitions owned by remote nodes are skipped — their daemons load the
// same deterministic dataset themselves from the job description.
func (e *Engine) Load(table string, keyCol int, tuples []types.Tuple) error {
	l := &storage.Loader{Ring: e.Ring, Stores: e.Stores}
	return l.Load(table, keyCol, tuples)
}

// Run executes the plan to completion, handling failures per opts.
func (e *Engine) Run(spec *PlanSpec, opts Options) (*Result, error) {
	return e.RunCtx(context.Background(), spec, opts)
}

// RunCtx is Run honoring a context: cancellation or deadline expiry aborts
// the query between strata. The requestor stops issuing stratum decisions,
// broadcasts an abort punctuation so workers drop per-query state and
// drain their mailboxes, and tears the run down with stores and
// checkpoints consistent — the next query on the same engine works. The
// returned error is ctx.Err().
func (e *Engine) RunCtx(ctx context.Context, spec *PlanSpec, opts Options) (*Result, error) {
	return e.run(ctx, spec, opts, nil)
}

// run is the shared body of RunCtx and Stream; sink, when non-nil, receives
// each completed stratum's result-delta batch (streaming mode).
func (e *Engine) run(ctx context.Context, spec *PlanSpec, opts Options, sink func(stratum int, batch []types.Delta)) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Stream && opts.Recovery != RecoveryNone {
		return nil, fmt.Errorf("exec: streaming runs do not support failure recovery")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.CompactionHighWater <= 0 {
		opts.CompactionHighWater = defaultHighWater
	}
	maxStrata := spec.MaxStrata
	if opts.MaxStrata > 0 {
		maxStrata = opts.MaxStrata
	}
	queryID := fmt.Sprintf("q%d", e.queryCounter.Add(1))

	alive := e.Transport.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("exec: no alive nodes")
	}
	bytesBefore := e.Transport.Metrics().TotalBytesSent()
	compactInBefore, compactOutBefore := e.Transport.Metrics().TotalCompaction()
	start := time.Now()

	// Spawn one worker loop per alive node hosted in this process;
	// remote nodes run their loops in their own daemons. In-process
	// inboxes persist across queries on one transport, so drain the
	// debris of any abandoned prior run first: its frames carry the same
	// epoch numbering as this query's and would otherwise be held by the
	// fresh worker as "early" frames and replayed into the wrong plan.
	// No frame of THIS query can exist yet — MsgStart has not been
	// broadcast — and TCP daemons get a fresh inbox from Configure, so
	// the drain only ever removes dead frames.
	var wg sync.WaitGroup
	for _, n := range alive {
		if e.Stores[n] == nil {
			continue
		}
		if ib := e.Transport.Inbox(n); ib != nil {
			ib.Drain()
		}
		w := NewWorker(WorkerConfig{
			Node: n, Transport: e.Transport, Store: e.Stores[n],
			Checkpoints: e.Ckpts[n], Catalog: e.Catalog, Ring: e.Ring,
			Plan: spec, QueryID: queryID, Options: opts,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Loop()
		}()
	}

	// Cancellation watcher: a context expiry unblocks the coordinate loop
	// by injecting the local MsgCancel sentinel into the requestor
	// mailbox. The sentinel never crosses the wire; coordinate verifies
	// ctx.Err() before acting on it, so a stale sentinel (context
	// cancelled just as the query finished) is ignored by the next run.
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			e.Transport.Requestor().Put(cluster.Message{Kind: cluster.MsgCancel})
		case <-stopWatch:
		}
	}()

	res, err := e.coordinate(ctx, spec, opts, queryID, maxStrata, sink)
	// Join the watcher before the teardown drain below: its sentinel (if
	// any) must be in the mailbox by then, or it would leak into the next
	// run's requestor traffic.
	close(stopWatch)
	<-watchDone

	// Teardown: on an abort, punctuate it so workers discard per-query
	// operator state and drain cheaply; then stop workers and drop the
	// query's checkpoints.
	if err != nil && ctx.Err() != nil {
		e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgAbort})
	}
	e.Transport.Broadcast(cluster.Message{From: -1, Kind: cluster.MsgShutdown})
	wg.Wait()
	// Every local producer has exited; clear requestor debris (stale
	// votes and result frames of an aborted run) so the next query on
	// this engine starts from an empty queue. Multi-process stragglers
	// are handled by the transport's job-generation stamping instead.
	e.Transport.Requestor().Drain()
	for _, c := range e.Ckpts {
		if c != nil {
			c.Drop(queryID)
		}
	}
	if err != nil {
		return nil, err
	}
	// Multi-process transports count wire bytes where they are sent;
	// pull the remote counters over before reading totals.
	if ms, ok := e.Transport.(cluster.MetricsSyncer); ok {
		if serr := ms.SyncMetrics(); serr != nil {
			return nil, serr
		}
	}
	res.Duration = time.Since(start)
	res.BytesSent = e.Transport.Metrics().TotalBytesSent() - bytesBefore
	compactIn, compactOut := e.Transport.Metrics().TotalCompaction()
	res.CompactIn = compactIn - compactInBefore
	res.CompactOut = compactOut - compactOutBefore
	return res, nil
}

// coordinate is the query-requestor loop of §4.2: it aggregates fixpoint
// votes, decides stratum advancement or termination, collects results, and
// orchestrates recovery (§4.3). In streaming mode (sink non-nil) result
// deltas are not accumulated; each stratum's batch is handed to the sink
// when the stratum's votes complete, and non-recursive result batches are
// forwarded as they arrive.
func (e *Engine) coordinate(ctx context.Context, spec *PlanSpec, opts Options, queryID string, maxStrata int, sink func(stratum int, batch []types.Delta)) (*Result, error) {
	res := &Result{}
	acc := newResultSet()
	// sbuf holds streaming batches per not-yet-closed stratum.
	sbuf := map[int][]types.Delta{}
	epoch := 0
	resume := 0
	incremental := false
	completed := -1 // last globally completed stratum

	alive := e.Transport.AliveNodes()
	broadcastStart := func() {
		mode := startFresh
		if incremental {
			mode = startIncremental
		}
		payload := encodeNodeList(alive)
		for _, n := range alive {
			e.Transport.Send(cluster.Message{
				From: -1, To: n, Kind: cluster.MsgStart,
				Epoch: epoch, Stratum: resume, Count: mode, Payload: payload,
			})
		}
	}
	broadcastStart()

	votes := map[int]map[cluster.NodeID]int{}
	done := map[cluster.NodeID]bool{}
	stratumStart := time.Now()
	req := e.Transport.Requestor()

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		msg, ok := req.Get()
		if !ok {
			return nil, fmt.Errorf("exec: requestor mailbox closed")
		}
		switch msg.Kind {
		case cluster.MsgCancel:
			// Injected by the cancellation watcher (or a stale sentinel
			// from a prior timed wait — ignore unless our context really
			// expired).
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case cluster.MsgError:
			if msg.Epoch != epoch {
				continue // stale epoch: the failed attempt's debris
			}
			return nil, fmt.Errorf("exec: node %d: %s", msg.From, msg.Table)
		case cluster.MsgFailure:
			if opts.Recovery == RecoveryNone {
				return nil, fmt.Errorf("exec: node %d failed and recovery is disabled", msg.From)
			}
			res.Recoveries++
			epoch++
			alive = e.Transport.AliveNodes()
			if len(alive) == 0 {
				return nil, fmt.Errorf("exec: all nodes failed")
			}
			votes = map[int]map[cluster.NodeID]int{}
			done = map[cluster.NodeID]bool{}
			acc = newResultSet()
			if opts.Recovery == RecoveryIncremental && spec.Recursive() && opts.Checkpoint && completed >= 0 {
				incremental = true
				resume = completed
			} else {
				incremental = false
				resume = 0
				completed = -1
				res.Strata = nil
			}
			stratumStart = time.Now()
			broadcastStart()
		case cluster.MsgVote:
			if msg.Epoch != epoch {
				continue
			}
			s := msg.Stratum
			if votes[s] == nil {
				votes[s] = map[cluster.NodeID]int{}
			}
			votes[s][msg.From] = msg.Count
			if len(votes[s]) < len(alive) {
				continue
			}
			total := 0
			for _, c := range votes[s] {
				total += c
			}
			completed = s
			if !(incremental && s == resume) {
				// A re-voted restored stratum keeps its original stats.
				res.Strata = append(res.Strata, StratumStats{
					Stratum: s, NewTuples: total, Duration: time.Since(stratumStart),
				})
			}
			stratumStart = time.Now()
			if opts.OnStratum != nil {
				opts.OnStratum(s, total)
			}
			if sink != nil {
				// Every node ships its stream batch before its vote on the
				// same ordered channel, so vote completion means stratum
				// s's deltas are all buffered: the stratum is closed, emit.
				if batch := sbuf[s]; len(batch) > 0 {
					sink(s, batch)
				}
				delete(sbuf, s)
			}
			terminate := total == 0 || s+1 >= maxStrata
			if opts.TermFn != nil && opts.TermFn(s, total) {
				terminate = true
			}
			e.broadcastDecision(alive, epoch, s+1, terminate)
		case cluster.MsgData:
			if msg.Epoch != epoch || msg.Edge != resultEdge {
				continue
			}
			batch, err := cluster.DecodeDeltas(msg.Payload)
			if err != nil {
				return nil, err
			}
			switch {
			case sink == nil:
				acc.apply(batch)
			case spec.Recursive():
				sbuf[msg.Stratum] = append(sbuf[msg.Stratum], batch...)
			default:
				// Non-recursive plans have no strata to align on: forward
				// result batches as they arrive, all under stratum 0.
				sink(0, batch)
			}
		case cluster.MsgPunct:
			if msg.Epoch != epoch || msg.Edge != resultEdge {
				continue
			}
			done[msg.From] = true
			if len(done) == len(alive) {
				if sink != nil {
					// Flush any strata still buffered (a terminal stratum
					// whose decision carried Terminate votes no follow-up),
					// in stratum order.
					flushStreamBuf(sbuf, sink)
					return res, nil
				}
				res.Tuples = acc.materialize()
				return res, nil
			}
		}
	}
}

// flushStreamBuf emits leftover buffered stream batches in stratum order.
func flushStreamBuf(sbuf map[int][]types.Delta, sink func(int, []types.Delta)) {
	strata := make([]int, 0, len(sbuf))
	for s := range sbuf {
		strata = append(strata, s)
	}
	sort.Ints(strata)
	for _, s := range strata {
		if batch := sbuf[s]; len(batch) > 0 {
			sink(s, batch)
		}
	}
}

func (e *Engine) broadcastDecision(alive []cluster.NodeID, epoch, next int, terminate bool) {
	for _, n := range alive {
		e.Transport.Send(cluster.Message{
			From: -1, To: n, Kind: cluster.MsgDecision,
			Epoch: epoch, Stratum: next, Terminate: terminate,
		})
	}
}

// resultSet accumulates result deltas. Final flushes are insert-only, so
// the insert path is a bare append; deletions and replacements (possible
// in non-recursive pipelines) are resolved through a lazily built
// hash-of-tuple index, keeping large result folds O(n) instead of the
// O(n²) rescan a per-delta linear search would cost.
type resultSet struct {
	tuples []types.Tuple // append-ordered; nil entries are tombstones
	index  map[uint64][]int
	dead   int
	cols   []int // cached 0..n-1 column index for whole-tuple hashing
}

func newResultSet() *resultSet {
	return &resultSet{}
}

func (rs *resultSet) hash(t types.Tuple) uint64 {
	for len(rs.cols) < len(t) {
		rs.cols = append(rs.cols, len(rs.cols))
	}
	return t.HashKey(rs.cols[:len(t)])
}

// ensureIndex builds the tuple-hash index on first delete/replace.
func (rs *resultSet) ensureIndex() {
	if rs.index != nil {
		return
	}
	rs.index = make(map[uint64][]int, len(rs.tuples))
	for i, t := range rs.tuples {
		if t != nil {
			h := rs.hash(t)
			rs.index[h] = append(rs.index[h], i)
		}
	}
}

func (rs *resultSet) insert(t types.Tuple) {
	rs.tuples = append(rs.tuples, t)
	if rs.index != nil {
		h := rs.hash(t)
		rs.index[h] = append(rs.index[h], len(rs.tuples)-1)
	}
}

// find locates a live entry equal to t, returning its position in the
// hash bucket and the tuple index.
func (rs *resultSet) find(t types.Tuple) (bucketPos, idx int, ok bool) {
	h := rs.hash(t)
	for bi, ti := range rs.index[h] {
		if rs.tuples[ti] != nil && rs.tuples[ti].Equal(t) {
			return bi, ti, true
		}
	}
	return 0, 0, false
}

func (rs *resultSet) apply(batch []types.Delta) {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			rs.insert(d.Tup)
		case types.OpDelete:
			rs.ensureIndex()
			if bi, ti, ok := rs.find(d.Tup); ok {
				h := rs.hash(d.Tup)
				rs.tuples[ti] = nil
				rs.dead++
				bucket := rs.index[h]
				rs.index[h] = append(bucket[:bi], bucket[bi+1:]...)
			}
		case types.OpReplace:
			rs.ensureIndex()
			if bi, ti, ok := rs.find(d.Old); ok {
				oldH := rs.hash(d.Old)
				bucket := rs.index[oldH]
				rs.index[oldH] = append(bucket[:bi], bucket[bi+1:]...)
				rs.tuples[ti] = d.Tup
				newH := rs.hash(d.Tup)
				rs.index[newH] = append(rs.index[newH], ti)
			} else {
				rs.insert(d.Tup)
			}
		}
	}
}

// materialize returns the live tuples in insertion order.
func (rs *resultSet) materialize() []types.Tuple {
	if rs.dead == 0 {
		return rs.tuples
	}
	out := make([]types.Tuple, 0, len(rs.tuples)-rs.dead)
	for _, t := range rs.tuples {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
