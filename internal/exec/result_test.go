package exec

import (
	"fmt"
	"testing"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

func TestResultSetFoldsDeltas(t *testing.T) {
	rs := newResultSet()
	rs.apply([]types.Delta{
		types.Insert(types.NewTuple(int64(1), "a")),
		types.Insert(types.NewTuple(int64(2), "b")),
		types.Insert(types.NewTuple(int64(3), "c")),
	})
	// Delete a middle tuple; order of survivors is preserved.
	rs.apply([]types.Delta{types.Delete(types.NewTuple(int64(2), "b"))})
	// Replace an existing tuple in place.
	rs.apply([]types.Delta{types.Replace(types.NewTuple(int64(3), "c"), types.NewTuple(int64(3), "C"))})
	// Replace of a missing tuple degrades to insert.
	rs.apply([]types.Delta{types.Replace(types.NewTuple(int64(9), "x"), types.NewTuple(int64(4), "d"))})
	// Delete of a missing tuple is a no-op.
	rs.apply([]types.Delta{types.Delete(types.NewTuple(int64(77), "zz"))})
	got := rs.materialize()
	want := []types.Tuple{
		types.NewTuple(int64(1), "a"),
		types.NewTuple(int64(3), "C"),
		types.NewTuple(int64(4), "d"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResultSetDuplicatesDeleteOne(t *testing.T) {
	rs := newResultSet()
	tup := types.NewTuple(int64(5), 1.5)
	rs.apply([]types.Delta{types.Insert(tup), types.Insert(tup.Clone()), types.Insert(tup.Clone())})
	rs.apply([]types.Delta{types.Delete(tup)})
	if got := len(rs.materialize()); got != 2 {
		t.Fatalf("after deleting one of three duplicates: %d rows", got)
	}
	rs.apply([]types.Delta{types.Delete(tup), types.Delete(tup)})
	if got := len(rs.materialize()); got != 0 {
		t.Fatalf("after deleting all duplicates: %d rows", got)
	}
}

// TestResultSetLargeFoldLinear is a smoke check that the indexed path
// handles a delete-heavy stream at a size where the old O(n²) rescan
// would dominate the test suite.
func TestResultSetLargeFoldLinear(t *testing.T) {
	const n = 50000
	rs := newResultSet()
	batch := make([]types.Delta, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, types.Insert(types.NewTuple(int64(i), fmt.Sprintf("v%d", i))))
	}
	rs.apply(batch)
	dels := make([]types.Delta, 0, n/2)
	for i := 0; i < n; i += 2 {
		dels = append(dels, types.Delete(types.NewTuple(int64(i), fmt.Sprintf("v%d", i))))
	}
	rs.apply(dels)
	if got := len(rs.materialize()); got != n/2 {
		t.Fatalf("got %d rows, want %d", got, n/2)
	}
}

func TestHandleCheckpointRejectsMalformedTuples(t *testing.T) {
	tr := cluster.NewInProcTransport(1)
	w := NewWorker(WorkerConfig{
		Node: 0, Transport: tr, Store: storage.NewStore(0),
		Checkpoints: storage.NewCheckpointStore(), Catalog: catalog.New(),
		Ring: cluster.NewRing(1, 8, 1), QueryID: "q1",
	})
	// A checkpoint tuple whose first field is not an integer hash must be
	// rejected, not silently stored under hash 0.
	bad := cluster.EncodeDeltas([]types.Delta{types.Insert(types.NewTuple("not-a-hash", "S"))})
	err := w.handleCheckpoint(cluster.Message{
		Kind: cluster.MsgCheckpoint, Edge: 3, Stratum: 1, Payload: bad,
	})
	if err == nil {
		t.Fatal("non-integer key hash accepted")
	}
	// Valid frames still land.
	good := cluster.EncodeDeltas([]types.Delta{types.Insert(types.NewTuple(int64(42), "S", int64(7)))})
	if err := w.handleCheckpoint(cluster.Message{
		Kind: cluster.MsgCheckpoint, Edge: 3, Stratum: 1, Payload: good,
	}); err != nil {
		t.Fatal(err)
	}
}
