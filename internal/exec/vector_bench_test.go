package exec

// Microbenchmarks for the operator inner loop: the identical delta stream
// pushed through filter→preAgg as materialized rows (Push) and as a
// columnar batch (PushBatch). Run with
//
//	go test -run '^$' -bench 'Vector|Row' -benchmem ./internal/exec
//
// and compare B/op and allocs/op between the pairs; CI's bench-micro step
// uploads the output in benchstat-compatible form.

import (
	"testing"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// benchStream builds an SSSP-shaped delta stream: (vertex, dist) updates
// with a sprinkle of inserts.
func benchStream(n int) []types.Delta {
	ds := make([]types.Delta, n)
	for i := range ds {
		op := types.OpUpdate
		if i%5 == 0 {
			op = types.OpInsert
		}
		ds[i] = types.Delta{Op: op, Tup: types.NewTuple(int64(i%997), float64(i%31))}
	}
	return ds
}

// benchPipeline wires filter(dist < 25) → preAgg(min-free: sum by vertex).
func benchPipeline(b *testing.B) (*filterOp, *preAggOp) {
	agg, err := newPreAggOp(&OpSpec{
		GroupKey: []int{0},
		Aggs:     []AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "d")}, OutName: "s", OutKind: types.KindFloat}},
	}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	f := &filterOp{
		pred: expr.NewCmp(expr.OpLt, expr.NewCol(1, types.KindFloat, "d"), expr.NewConst(float64(25))),
		outs: outputs{{op: agg, port: 0}},
	}
	return f, agg
}

// The data-path pair measures what a worker does with an arriving MsgData
// frame: decode the payload (materializing row tuples in row mode,
// aliasing the frame in vector mode) and push it through the pipeline.
func BenchmarkDataPathFilterPreAggRow(b *testing.B) {
	f, _ := benchPipeline(b)
	payload := cluster.EncodeDeltas(benchStream(8192))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := cluster.DecodeDeltas(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Push(0, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataPathFilterPreAggVector(b *testing.B) {
	f, _ := benchPipeline(b)
	cb, ok := types.FromDeltas(benchStream(8192))
	if !ok {
		b.Fatal("stream not batchable")
	}
	payload := cluster.EncodeDeltaBatch(nil, cb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, dec, err := cluster.DecodeDeltasAny(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.PushBatch(0, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// The row sink mirrors a non-batch-capable consumer so the row benchmark
// measures the materializing path end to end.
type countSink struct{ rows int }

func (c *countSink) Push(port int, batch []types.Delta) error { c.rows += len(batch); return nil }
func (c *countSink) Punct(port, stratum int, closed bool) error {
	return nil
}

// BenchmarkBatchMaterialize measures outputs.sendBatch's fallback: a
// columnar batch delivered to a row-only consumer (the cost vectorized
// producers pay when a UDF operator sits downstream).
func BenchmarkBatchMaterialize(b *testing.B) {
	cb, ok := types.FromDeltas(benchStream(8192))
	if !ok {
		b.Fatal("stream not batchable")
	}
	sink := &countSink{}
	outs := outputs{{op: sink, port: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := outs.sendBatch(cb); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchema matches benchStream's (vertex int, dist float) shape.
var benchSchema = []types.Kind{types.KindInt, types.KindFloat}

// batchCountSink consumes batches without materializing rows, so the
// kernel-vs-bridge pairs measure expression evaluation, not downstream
// delivery.
type batchCountSink struct{ rows int }

func (c *batchCountSink) Push(port int, batch []types.Delta) error {
	c.rows += len(batch)
	return nil
}
func (c *batchCountSink) PushBatch(port int, b *types.DeltaBatch) error {
	c.rows += b.Len()
	return nil
}
func (c *batchCountSink) Punct(port, stratum int, closed bool) error { return nil }

// benchBatch4k is the 4096-row batch the kernel-vs-bridge pairs share.
func benchBatch4k(b *testing.B) *types.DeltaBatch {
	cb, ok := types.FromDeltas(benchStream(4096))
	if !ok {
		b.Fatal("stream not batchable")
	}
	return cb
}

// The filter pair isolates predicate evaluation over one resident
// 4096-row batch: compiled kernel (typed float loop + selection vector)
// vs the scratch-tuple bridge (box every row, interpret the tree).
func benchFilter4k(b *testing.B, f *filterOp) {
	sink := &batchCountSink{}
	f.outs = outputs{{op: sink, port: 0}}
	cb := benchBatch4k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.PushBatch(0, cb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter4kKernel(b *testing.B) {
	f := newFilterOp(expr.NewCmp(expr.OpLt, expr.NewCol(1, types.KindFloat, "d"), expr.NewConst(float64(25))), benchSchema)
	if f.kern == nil {
		b.Fatal("predicate must compile")
	}
	benchFilter4k(b, f)
}

func BenchmarkFilter4kBridged(b *testing.B) {
	f := &filterOp{pred: expr.NewCmp(expr.OpLt, expr.NewCol(1, types.KindFloat, "d"), expr.NewConst(float64(25)))}
	benchFilter4k(b, f)
}

// The project pair measures column-at-a-time output assembly vs per-row
// interpretation: (vertex, dist*0.5+1) over the same 4096-row batch.
func benchProjectExprs() []expr.Expr {
	return []expr.Expr{
		expr.NewCol(0, types.KindInt, "v"),
		expr.NewArith(expr.OpAdd,
			expr.NewArith(expr.OpMul, expr.NewCol(1, types.KindFloat, "d"), expr.NewConst(float64(0.5))),
			expr.NewConst(float64(1))),
	}
}

func benchProject4k(b *testing.B, p *projectOp) {
	sink := &batchCountSink{}
	p.outs = outputs{{op: sink, port: 0}}
	cb := benchBatch4k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PushBatch(0, cb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProject4kKernel(b *testing.B) {
	p := newProjectOp(benchProjectExprs(), nil, benchSchema)
	if p.kerns == nil {
		b.Fatal("projection must compile")
	}
	benchProject4k(b, p)
}

func BenchmarkProject4kBridged(b *testing.B) {
	p := newProjectOp(benchProjectExprs(), nil, nil)
	p.kerns = nil // force the row-interpreter bridge
	benchProject4k(b, p)
}
