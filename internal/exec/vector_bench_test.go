package exec

// Microbenchmarks for the operator inner loop: the identical delta stream
// pushed through filter→preAgg as materialized rows (Push) and as a
// columnar batch (PushBatch). Run with
//
//	go test -run '^$' -bench 'Vector|Row' -benchmem ./internal/exec
//
// and compare B/op and allocs/op between the pairs; CI's bench-micro step
// uploads the output in benchstat-compatible form.

import (
	"testing"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// benchStream builds an SSSP-shaped delta stream: (vertex, dist) updates
// with a sprinkle of inserts.
func benchStream(n int) []types.Delta {
	ds := make([]types.Delta, n)
	for i := range ds {
		op := types.OpUpdate
		if i%5 == 0 {
			op = types.OpInsert
		}
		ds[i] = types.Delta{Op: op, Tup: types.NewTuple(int64(i%997), float64(i%31))}
	}
	return ds
}

// benchPipeline wires filter(dist < 25) → preAgg(min-free: sum by vertex).
func benchPipeline(b *testing.B) (*filterOp, *preAggOp) {
	agg, err := newPreAggOp(&OpSpec{
		GroupKey: []int{0},
		Aggs:     []AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "d")}, OutName: "s", OutKind: types.KindFloat}},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	f := &filterOp{
		pred: expr.NewCmp(expr.OpLt, expr.NewCol(1, types.KindFloat, "d"), expr.NewConst(float64(25))),
		outs: outputs{{op: agg, port: 0}},
	}
	return f, agg
}

// The data-path pair measures what a worker does with an arriving MsgData
// frame: decode the payload (materializing row tuples in row mode,
// aliasing the frame in vector mode) and push it through the pipeline.
func BenchmarkDataPathFilterPreAggRow(b *testing.B) {
	f, _ := benchPipeline(b)
	payload := cluster.EncodeDeltas(benchStream(8192))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := cluster.DecodeDeltas(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Push(0, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataPathFilterPreAggVector(b *testing.B) {
	f, _ := benchPipeline(b)
	cb, ok := types.FromDeltas(benchStream(8192))
	if !ok {
		b.Fatal("stream not batchable")
	}
	payload := cluster.EncodeDeltaBatch(nil, cb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, dec, err := cluster.DecodeDeltasAny(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.PushBatch(0, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// The row sink mirrors a non-batch-capable consumer so the row benchmark
// measures the materializing path end to end.
type countSink struct{ rows int }

func (c *countSink) Push(port int, batch []types.Delta) error { c.rows += len(batch); return nil }
func (c *countSink) Punct(port, stratum int, closed bool) error {
	return nil
}

// BenchmarkBatchMaterialize measures outputs.sendBatch's fallback: a
// columnar batch delivered to a row-only consumer (the cost vectorized
// producers pay when a UDF operator sits downstream).
func BenchmarkBatchMaterialize(b *testing.B) {
	cb, ok := types.FromDeltas(benchStream(8192))
	if !ok {
		b.Fatal("stream not batchable")
	}
	sink := &countSink{}
	outs := outputs{{op: sink, port: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := outs.sendBatch(cb); err != nil {
			b.Fatal(err)
		}
	}
}
