package pagestore

import (
	"encoding/binary"
	"fmt"
	"os"

	"github.com/rex-data/rex/internal/types"
)

// A checkpoint image is the durable full-state snapshot a node restarts
// from: every table's local tuples (primary and replica copies alike),
// payload-encoded with the columnar delta-batch codec when the table's
// shape allows it and the row codec otherwise. The image is written to a
// temp file, fsynced, and atomically renamed over the previous one, so a
// crash mid-checkpoint leaves the old image intact.
//
// Layout: magic, varint committedRound, uvarint table count, then per
// table: name, uvarint keyCol, format byte (0 = row batch, 1 = columnar
// batch), uvarint payload length, payload.
var imageMagic = []byte("REXIMG01")

const (
	imageFormatRow = 0
	imageFormatCol = 1
)

type imageTable struct {
	name   string
	keyCol int
	tuples []types.Tuple
}

func writeImage(path string, committedRound int64, tables []imageTable) error {
	buf := append([]byte(nil), imageMagic...)
	buf = binary.AppendVarint(buf, committedRound)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = encodeString(buf, t.name)
		buf = binary.AppendUvarint(buf, uint64(t.keyCol))
		ds := make([]types.Delta, len(t.tuples))
		for i, tup := range t.tuples {
			ds[i] = types.Insert(tup)
		}
		var payload []byte
		format := byte(imageFormatRow)
		if cb, ok := types.FromDeltas(ds); ok {
			format = imageFormatCol
			payload = types.AppendDeltaBatch(nil, cb)
		} else {
			payload = types.EncodeBatch(ds)
		}
		buf = append(buf, format)
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readImage(path string) (committedRound int64, tables []imageTable, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return -1, nil, err
	}
	if len(buf) < len(imageMagic)+1 || string(buf[:len(imageMagic)]) != string(imageMagic) {
		return -1, nil, fmt.Errorf("pagestore: %s: not a checkpoint image", path)
	}
	buf = buf[len(imageMagic):]
	round, n := binary.Varint(buf)
	if n <= 0 {
		return -1, nil, fmt.Errorf("pagestore: %s: bad round", path)
	}
	buf = buf[n:]
	nt, n := binary.Uvarint(buf)
	if n <= 0 {
		return -1, nil, fmt.Errorf("pagestore: %s: bad table count", path)
	}
	buf = buf[n:]
	for i := uint64(0); i < nt; i++ {
		name, used, ok := decodeString(buf)
		if !ok {
			return -1, nil, fmt.Errorf("pagestore: %s: bad table name", path)
		}
		buf = buf[used:]
		keyCol, n := binary.Uvarint(buf)
		if n <= 0 {
			return -1, nil, fmt.Errorf("pagestore: %s: bad key column", path)
		}
		buf = buf[n:]
		if len(buf) == 0 {
			return -1, nil, fmt.Errorf("pagestore: %s: truncated", path)
		}
		format := buf[0]
		buf = buf[1:]
		plen, n := binary.Uvarint(buf)
		if n <= 0 || plen > uint64(len(buf)-n) {
			return -1, nil, fmt.Errorf("pagestore: %s: bad payload length", path)
		}
		payload := buf[n : n+int(plen)]
		buf = buf[n+int(plen):]
		var ds []types.Delta
		switch format {
		case imageFormatCol:
			cb, _, err := types.DecodeDeltaBatch(payload)
			if err != nil {
				return -1, nil, fmt.Errorf("pagestore: %s: table %s: %w", path, name, err)
			}
			ds = cb.Deltas()
		case imageFormatRow:
			var err error
			ds, err = types.DecodeBatch(payload)
			if err != nil {
				return -1, nil, fmt.Errorf("pagestore: %s: table %s: %w", path, name, err)
			}
		default:
			return -1, nil, fmt.Errorf("pagestore: %s: table %s: unknown format %d", path, name, format)
		}
		tuples := make([]types.Tuple, len(ds))
		for j, d := range ds {
			tuples[j] = d.Tup
		}
		tables = append(tables, imageTable{name: name, keyCol: int(keyCol), tuples: tuples})
	}
	return round, tables, nil
}
