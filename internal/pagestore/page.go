// Package pagestore implements a paged, spill-to-disk storage backend:
// fixed-size slotted pages behind a buffer pool with clock eviction, one
// page file per table under a node data directory, a write-ahead log with
// round-commit marks, and durable checkpoint images. It exposes the same
// Insert/Delete/ApplyDelta/ScanOwned surface as storage.Store (the
// storage.Backend interface), so the executor runs against it
// transparently; the Durable capability set on top is what lets a
// SIGKILLed node rejoin a standing query from its last committed round.
package pagestore

import (
	"encoding/binary"

	"github.com/rex-data/rex/internal/types"
)

// PageSize is the fixed page size. 8 KiB keeps a page a few tuples to a
// few hundred tuples wide for the datasets we generate, and divides every
// sane filesystem block size.
const PageSize = 8 * 1024

// Slotted-page layout:
//
//	[0:2]  uint16 slot count
//	[2:4]  uint16 dataStart — offset of the lowest record byte; record
//	       space grows DOWN from PageSize while the slot directory grows
//	       UP from the header, and the page is full when they meet.
//	[4:..] slot directory, 4 bytes per slot: offset uint16, length uint16
//
// A record is an 8-byte little-endian partition-key hash followed by the
// row codec's tuple encoding (types.AppendTuple). Deletion compacts the
// page in place, so every slot is live and free space is exact.
const (
	pageHeaderSize = 4
	slotSize       = 4
)

// maxRecordSize is the largest record one page can hold (one slot).
const maxRecordSize = PageSize - pageHeaderSize - slotSize

func initPage(buf []byte) {
	binary.LittleEndian.PutUint16(buf[0:2], 0)
	binary.LittleEndian.PutUint16(buf[2:4], PageSize)
}

func pageSlots(buf []byte) int { return int(binary.LittleEndian.Uint16(buf[0:2])) }

func pageDataStart(buf []byte) int { return int(binary.LittleEndian.Uint16(buf[2:4])) }

// pageFree reports the contiguous free bytes between the slot directory
// and the record region (a new record also costs one slot entry).
func pageFree(buf []byte) int {
	return pageDataStart(buf) - pageHeaderSize - pageSlots(buf)*slotSize
}

func pageSlot(buf []byte, i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(buf[base : base+2])),
		int(binary.LittleEndian.Uint16(buf[base+2 : base+4]))
}

func putPageSlot(buf []byte, i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(buf[base+2:base+4], uint16(length))
}

func pageRecord(buf []byte, i int) []byte {
	off, length := pageSlot(buf, i)
	return buf[off : off+length]
}

// pageInsert appends a record, reporting false when the page is full.
func pageInsert(buf, rec []byte) bool {
	if len(rec)+slotSize > pageFree(buf) {
		return false
	}
	n := pageSlots(buf)
	off := pageDataStart(buf) - len(rec)
	copy(buf[off:], rec)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(off))
	putPageSlot(buf, n, off, len(rec))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(n+1))
	return true
}

// pageDelete removes slot i, compacting the record region in place:
// records below the removed one slide up by its length, and affected slot
// offsets are rebased. O(page) per delete keeps pages dense so free-space
// accounting stays a subtraction.
func pageDelete(buf []byte, i int) {
	n := pageSlots(buf)
	off, length := pageSlot(buf, i)
	start := pageDataStart(buf)
	// Slide the record bytes below (at lower offsets than) the deleted
	// record up over it.
	copy(buf[start+length:off+length], buf[start:off])
	binary.LittleEndian.PutUint16(buf[2:4], uint16(start+length))
	// Rebase slots pointing into the moved region and drop slot i.
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		o, l := pageSlot(buf, j)
		if o < off {
			o += length
		}
		dst := j
		if j > i {
			dst = j - 1
		}
		putPageSlot(buf, dst, o, l)
	}
	binary.LittleEndian.PutUint16(buf[0:2], uint16(n-1))
}

// encodeRecord builds a record: key hash then the row-encoded tuple.
func encodeRecord(buf []byte, hash uint64, t types.Tuple) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, hash)
	return types.AppendTuple(buf, t)
}

// recordHash reads a record's partition-key hash without decoding the
// tuple — the scan fast path compares hashes before materializing.
func recordHash(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec[:8]) }

// recordTuple decodes a record's tuple (a fresh allocation: the page
// buffer may be evicted or rewritten after the pin drops).
func recordTuple(rec []byte) (types.Tuple, error) {
	t, _, err := types.DecodeTuple(rec[8:])
	return t, err
}
