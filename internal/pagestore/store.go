package pagestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
)

// walSizeLimit is the WAL size past which a Commit also writes a fresh
// checkpoint image (bounding both replay time and log growth).
const walSizeLimit = 4 << 20

// Store is one node's paged local storage: the spill-to-disk counterpart
// of storage.Store, implementing storage.Backend (the executor surface),
// storage.Durable (round commits, checkpoint images, crash recovery), and
// storage.PoolStatter. All methods are safe for concurrent use; operator
// scans and mutations serialize on one mutex, matching the in-memory
// store's semantics.
type Store struct {
	mu   sync.Mutex
	node cluster.NodeID
	dir  string

	pool   *pool
	stats  storage.PoolStats
	tables map[string]*table
	wal    *wal

	committedRound int64
	restored       bool
	closed         bool
}

// table tracks one table's page set. free mirrors each page's exact free
// byte count (deletion compacts pages in place, so free space is a
// subtraction, never a fragmentation estimate).
type table struct {
	name   string
	keyCol int
	file   *pageFile
	pages  []uint32
	free   []int
	count  int // live records
	next   uint32
}

// Open opens (or creates) a node's paged store under dir with a
// poolPages-frame buffer pool. If the directory holds a checkpoint image
// or write-ahead log from a previous run, the store recovers: it loads
// the image, replays the WAL's committed prefix, discards the uncommitted
// tail, and seals the recovered state into a fresh image. Restored()
// reports which path was taken.
func Open(dir string, node cluster.NodeID, poolPages int) (*Store, error) {
	s := &Store{node: node, dir: dir, committedRound: -1}
	s.pool = newPool(poolPages, &s.stats)
	if err := os.MkdirAll(s.pagesDir(), 0o755); err != nil {
		return nil, err
	}
	_, imgErr := os.Stat(s.imagePath())
	_, walErr := os.Stat(s.walPath())
	s.restored = imgErr == nil || walErr == nil
	if err := s.loadFromDisk(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) imagePath() string { return filepath.Join(s.dir, "image.db") }
func (s *Store) walPath() string   { return filepath.Join(s.dir, "wal.log") }
func (s *Store) pagesDir() string  { return filepath.Join(s.dir, "pages") }

// loadFromDisk rebuilds in-memory state from the checkpoint image plus the
// WAL's committed prefix, then re-seals it. Page files are scratch (only
// evictions write them), so the pages directory is wiped first.
func (s *Store) loadFromDisk() error {
	s.tables = map[string]*table{}
	s.pool.reset()
	if err := wipeDir(s.pagesDir()); err != nil {
		return err
	}
	imageRound := int64(-1)
	if round, tabs, err := readImage(s.imagePath()); err == nil {
		imageRound = round
		for _, t := range tabs {
			s.createTableLocked(t.name, t.keyCol)
			for _, tup := range t.tuples {
				if err := s.insertLocked(t.name, tup); err != nil {
					return err
				}
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	recs, walRound, err := replayWAL(s.walPath())
	if err != nil {
		return err
	}
	for _, rec := range recs {
		switch rec.kind {
		case walCreate:
			s.createTableLocked(rec.table, rec.keyCol)
		case walApply:
			if err := s.applyLocked(rec.table, rec.delta); err != nil {
				return err
			}
		}
	}
	s.committedRound = imageRound
	if walRound > s.committedRound {
		s.committedRound = walRound
	}
	s.wal, err = openWAL(s.walPath())
	if err != nil {
		return err
	}
	if s.restored {
		// Collapse image + replayed tail into one fresh image so the next
		// crash replays nothing twice, and the torn tail is gone for good.
		return s.checkpointLocked()
	}
	return nil
}

func wipeDir(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.MkdirAll(dir, 0o755)
}

// Node reports the owning node.
func (s *Store) Node() cluster.NodeID { return s.node }

// Dir reports the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Restored reports whether Open found durable state to recover.
func (s *Store) Restored() bool { return s.restored }

// CommittedRound reports the last durably committed round (-1 before the
// first Commit).
func (s *Store) CommittedRound() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committedRound
}

// PoolStats reports cumulative buffer-pool traffic.
func (s *Store) PoolStats() storage.PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CreateTable declares a local table partitioned by keyCol (idempotent;
// only the first declaration reaches the WAL).
func (s *Store) CreateTable(name string, keyCol int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return
	}
	s.createTableLocked(name, keyCol)
	s.wal.logCreate(name, keyCol)
}

func (s *Store) createTableLocked(name string, keyCol int) {
	if _, ok := s.tables[name]; ok {
		return
	}
	s.tables[name] = &table{
		name: name, keyCol: keyCol,
		file: newPageFile(s.pagesDir(), name),
	}
}

// Insert stores a tuple copy locally. The tuple is encoded into a page
// immediately, so the caller's backing arrays are never retained.
func (s *Store) Insert(tableName string, t types.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tab, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("pagestore: node %d: unknown table %q", s.node, tableName)
	}
	s.wal.logApply(tableName, types.Insert(t))
	return s.insertTab(tab, t)
}

func (s *Store) insertLocked(tableName string, t types.Tuple) error {
	tab, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("pagestore: node %d: unknown table %q", s.node, tableName)
	}
	return s.insertTab(tab, t)
}

func (s *Store) insertTab(tab *table, t types.Tuple) error {
	if tab.keyCol >= len(t) {
		return fmt.Errorf("pagestore: node %d: table %q: tuple %v shorter than key column %d",
			s.node, tab.name, t, tab.keyCol)
	}
	rec := encodeRecord(nil, types.HashValue(t[tab.keyCol]), t)
	if len(rec) > maxRecordSize {
		return fmt.Errorf("pagestore: node %d: table %q: record of %d bytes exceeds page capacity",
			s.node, tab.name, len(rec))
	}
	need := len(rec) + slotSize
	// Fast path: the most recently allocated page (pure appends fill pages
	// in order); otherwise first-fit over the known free counts.
	idx := -1
	if n := len(tab.pages); n > 0 && tab.free[n-1] >= need {
		idx = n - 1
	} else {
		for i, fr := range tab.free {
			if fr >= need {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		no := tab.next
		tab.next++
		f, err := s.pool.get(tab, no, false)
		if err != nil {
			return err
		}
		pageInsert(f.buf, rec)
		s.pool.unpin(f, true)
		tab.pages = append(tab.pages, no)
		tab.free = append(tab.free, pageFree(f.buf))
		tab.count++
		return nil
	}
	f, err := s.pool.get(tab, tab.pages[idx], true)
	if err != nil {
		return err
	}
	pageInsert(f.buf, rec)
	tab.free[idx] = pageFree(f.buf)
	s.pool.unpin(f, true)
	tab.count++
	return nil
}

// Delete removes one stored copy equal to t (the first match), reporting
// whether a copy was found.
func (s *Store) Delete(tableName string, t types.Tuple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	found, err := s.deleteLocked(tableName, t)
	if err != nil || !found {
		return false
	}
	s.wal.logApply(tableName, types.Delete(t))
	return true
}

func (s *Store) deleteLocked(tableName string, t types.Tuple) (bool, error) {
	tab, ok := s.tables[tableName]
	if !ok {
		return false, nil
	}
	if tab.keyCol >= len(t) {
		return false, nil
	}
	hash := types.HashValue(t[tab.keyCol])
	for i, no := range tab.pages {
		f, err := s.pool.get(tab, no, true)
		if err != nil {
			return false, err
		}
		match := -1
		for slot := 0; slot < pageSlots(f.buf); slot++ {
			rec := pageRecord(f.buf, slot)
			if recordHash(rec) != hash {
				continue
			}
			tup, err := recordTuple(rec)
			if err != nil {
				s.pool.unpin(f, false)
				return false, err
			}
			if tup.Equal(t) {
				match = slot
				break
			}
		}
		if match < 0 {
			s.pool.unpin(f, false)
			continue
		}
		pageDelete(f.buf, match)
		tab.free[i] = pageFree(f.buf)
		s.pool.unpin(f, true)
		tab.count--
		return true, nil
	}
	return false, nil
}

// ApplyDelta applies one base-table change, mirroring storage.Store's
// semantics: insertions store a copy, deletions remove one, replacements
// do both, unknown tables error. Tuples are encoded into pages at apply
// time, so borrowed batch buffers are never retained.
func (s *Store) ApplyDelta(tableName string, d types.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[tableName]; !ok {
		return fmt.Errorf("pagestore: node %d: unknown table %q", s.node, tableName)
	}
	s.wal.logApply(tableName, d)
	return s.applyLocked(tableName, d)
}

func (s *Store) applyLocked(tableName string, d types.Delta) error {
	switch d.Op {
	case types.OpInsert, types.OpUpdate:
		return s.insertLocked(tableName, d.Tup)
	case types.OpDelete:
		_, err := s.deleteLocked(tableName, d.Tup)
		return err
	case types.OpReplace:
		if _, err := s.deleteLocked(tableName, d.Old); err != nil {
			return err
		}
		return s.insertLocked(tableName, d.Tup)
	}
	return nil
}

// ScanOwned streams the tuples this node primarily owns under snap.
// Ownership is checked against the record's stored key hash before the
// tuple is decoded, so replica copies cost a hash compare, not a
// materialization.
func (s *Store) ScanOwned(tableName string, snap *cluster.Snapshot, emit func(types.Tuple) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tab, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("pagestore: node %d: unknown table %q", s.node, tableName)
	}
	for _, no := range tab.pages {
		f, err := s.pool.get(tab, no, true)
		if err != nil {
			return err
		}
		for slot := 0; slot < pageSlots(f.buf); slot++ {
			rec := pageRecord(f.buf, slot)
			primary, err := snap.Primary(recordHash(rec))
			if err != nil {
				s.pool.unpin(f, false)
				return err
			}
			if primary != s.node {
				continue
			}
			tup, err := recordTuple(rec)
			if err == nil {
				err = emit(tup)
			}
			if err != nil {
				s.pool.unpin(f, false)
				return err
			}
		}
		s.pool.unpin(f, false)
	}
	return nil
}

// CountOwned reports how many tuples this node primarily owns under snap.
func (s *Store) CountOwned(tableName string, snap *cluster.Snapshot) (int, error) {
	n := 0
	err := s.ScanOwned(tableName, snap, func(types.Tuple) error { n++; return nil })
	return n, err
}

// CountLocal reports all local copies (primary + replica) of a table.
func (s *Store) CountLocal(tableName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tab, ok := s.tables[tableName]; ok {
		return tab.count
	}
	return 0
}

// Tables lists local table names, sorted.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Commit durably marks every mutation applied so far as belonging to
// round: the WAL mark is appended, the log flushed and fsynced. Round 0
// (a standing query sealing its loaded base state) and any commit that
// finds the WAL past its size limit also write a checkpoint image.
func (s *Store) Commit(round int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if round == 0 && s.committedRound == 0 && s.wal.size == 0 {
		return nil // nothing mutated since the round-0 image: already sealed
	}
	if err := s.wal.commit(round); err != nil {
		return err
	}
	s.committedRound = round
	if round == 0 || s.wal.size > walSizeLimit {
		return s.checkpointLocked()
	}
	return nil
}

// Checkpoint writes a full checkpoint image of current state and truncates
// the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	tabs := make([]imageTable, 0, len(names))
	for _, name := range names {
		tab := s.tables[name]
		tuples := make([]types.Tuple, 0, tab.count)
		for _, no := range tab.pages {
			f, err := s.pool.get(tab, no, true)
			if err != nil {
				return err
			}
			for slot := 0; slot < pageSlots(f.buf); slot++ {
				tup, err := recordTuple(pageRecord(f.buf, slot))
				if err != nil {
					s.pool.unpin(f, false)
					return err
				}
				tuples = append(tuples, tup)
			}
			s.pool.unpin(f, false)
		}
		tabs = append(tabs, imageTable{name: name, keyCol: tab.keyCol, tuples: tuples})
	}
	if err := writeImage(s.imagePath(), s.committedRound, tabs); err != nil {
		return err
	}
	return s.wal.reset()
}

// Rollback discards all in-memory state — including mutations applied
// since the last Commit — and reloads the last committed state from disk.
// It is how an injected in-process failure simulates the state loss a real
// crash would cause.
func (s *Store) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFilesLocked()
	s.restored = true
	return s.loadFromDisk()
}

// Close seals current state into a checkpoint image (the graceful-shutdown
// dirty-page flush) and releases every file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.checkpointLocked()
	s.closeFilesLocked()
	return err
}

func (s *Store) closeFilesLocked() {
	for _, tab := range s.tables {
		tab.file.close()
	}
	if s.wal != nil {
		s.wal.close()
		s.wal = nil
	}
}

// Interface conformance.
var (
	_ storage.Backend     = (*Store)(nil)
	_ storage.Durable     = (*Store)(nil)
	_ storage.PoolStatter = (*Store)(nil)
)
