package pagestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"

	"github.com/rex-data/rex/internal/types"
)

// The write-ahead log records every logical mutation (table creation,
// delta application) since the last checkpoint image, punctuated by
// round-commit marks. Appends are buffered; Commit flushes and fsyncs, so
// a committed round's mutations are durable while a torn or uncommitted
// tail costs nothing — replay applies records only up to the last valid
// commit mark and discards the rest.
//
// Record framing: uint32 payload length, uint32 CRC-32 (IEEE) of the
// payload, payload. Payload: 1 kind byte + body.
const (
	walCreate = byte('C') // table name, uvarint keyCol
	walApply  = byte('A') // table name, types.AppendDelta
	walCommit = byte('M') // varint round
)

type wal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	size int64
	// err is sticky: buffered appends surface their failure at the next
	// Commit (the only point with durability semantics).
	err error
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), size: st.Size()}, nil
}

func (w *wal) append(payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return
	}
	w.size += int64(8 + len(payload))
}

func (w *wal) logCreate(table string, keyCol int) {
	buf := append([]byte{walCreate}, encodeString(nil, table)...)
	w.append(binary.AppendUvarint(buf, uint64(keyCol)))
}

func (w *wal) logApply(table string, d types.Delta) {
	buf := append([]byte{walApply}, encodeString(nil, table)...)
	w.append(types.AppendDelta(buf, d))
}

// commit appends a round mark, flushes, and fsyncs.
func (w *wal) commit(round int64) error {
	w.append(binary.AppendVarint([]byte{walCommit}, round))
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// reset truncates the log after a checkpoint image made it redundant.
func (w *wal) reset() error {
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.size = 0
	w.err = nil
	return nil
}

func (w *wal) close() error {
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// walRec is one replayed record.
type walRec struct {
	kind   byte
	table  string
	keyCol int
	delta  types.Delta
	round  int64
}

// replayWAL reads the log's committed prefix: every record up to and
// including the last valid commit mark. A short, torn, or checksum-failing
// tail ends the scan cleanly — that is the uncommitted work a crash is
// allowed to lose.
func replayWAL(path string) (recs []walRec, lastRound int64, err error) {
	lastRound = -1
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, -1, nil
	}
	if err != nil {
		return nil, -1, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var all []walRec
	committed := 0 // len(all) at the last commit mark
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or torn header: end of usable log
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > 1<<24 {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			break
		}
		rec, ok := decodeWALRec(payload)
		if !ok {
			break
		}
		all = append(all, rec)
		if rec.kind == walCommit {
			committed = len(all)
			lastRound = rec.round
		}
	}
	return all[:committed], lastRound, nil
}

func decodeWALRec(payload []byte) (walRec, bool) {
	if len(payload) == 0 {
		return walRec{}, false
	}
	rec := walRec{kind: payload[0]}
	body := payload[1:]
	switch rec.kind {
	case walCreate:
		name, used, ok := decodeString(body)
		if !ok {
			return walRec{}, false
		}
		k, n := binary.Uvarint(body[used:])
		if n <= 0 {
			return walRec{}, false
		}
		rec.table, rec.keyCol = name, int(k)
	case walApply:
		name, used, ok := decodeString(body)
		if !ok {
			return walRec{}, false
		}
		d, _, err := types.DecodeDelta(body[used:])
		if err != nil {
			return walRec{}, false
		}
		rec.table, rec.delta = name, d
	case walCommit:
		v, n := binary.Varint(body)
		if n <= 0 {
			return walRec{}, false
		}
		rec.round = v
	default:
		return walRec{}, false
	}
	return rec, true
}

func encodeString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, int, bool) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > uint64(len(buf)-n) {
		return "", 0, false
	}
	return string(buf[n : n+int(l)]), n + int(l), true
}
