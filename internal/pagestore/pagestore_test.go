package pagestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

func tup(vs ...interface{}) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = types.Int(int64(x))
		case string:
			t[i] = types.Str(x)
		case float64:
			t[i] = types.Float(x)
		default:
			panic("unsupported")
		}
	}
	return t
}

func soloSnap(t *testing.T) *cluster.Snapshot {
	t.Helper()
	ring := cluster.NewRing(1, 8, 1)
	return cluster.NewSnapshot(ring, []cluster.NodeID{0})
}

func TestPageInsertDeleteCompaction(t *testing.T) {
	buf := make([]byte, PageSize)
	initPage(buf)
	recs := [][]byte{}
	for i := 0; i < 20; i++ {
		rec := encodeRecord(nil, uint64(i), tup(i, fmt.Sprintf("val-%d", i)))
		if !pageInsert(buf, rec) {
			t.Fatalf("page full after %d records", i)
		}
		recs = append(recs, rec)
	}
	freeBefore := pageFree(buf)
	// Delete from the middle, then the ends.
	for _, victim := range []int{7, 0, -1} {
		if victim < 0 {
			victim = len(recs) - 1
		}
		rec := recs[victim]
		recs = append(recs[:victim], recs[victim+1:]...)
		idx := -1
		for i := 0; i < pageSlots(buf); i++ {
			if string(pageRecord(buf, i)) == string(rec) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatalf("record not found before delete")
		}
		pageDelete(buf, idx)
		if pageFree(buf) <= freeBefore {
			t.Fatalf("free space did not grow after delete")
		}
		freeBefore = pageFree(buf)
		if pageSlots(buf) != len(recs) {
			t.Fatalf("slot count %d, want %d", pageSlots(buf), len(recs))
		}
		got := map[string]bool{}
		for i := 0; i < pageSlots(buf); i++ {
			got[string(pageRecord(buf, i))] = true
		}
		for _, want := range recs {
			if !got[string(want)] {
				t.Fatalf("surviving record lost after delete")
			}
		}
	}
}

func TestStoreInsertScanDelete(t *testing.T) {
	s, err := Open(t.TempDir(), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CreateTable("edge", 0)
	snap := soloSnap(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Insert("edge", tup(i, fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CountLocal("edge"); got != n {
		t.Fatalf("CountLocal = %d, want %d", got, n)
	}
	seen := map[int64]bool{}
	if err := s.ScanOwned("edge", snap, func(tp types.Tuple) error {
		seen[tp[0].(int64)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scanned %d distinct keys, want %d", len(seen), n)
	}
	if !s.Delete("edge", tup(123, "payload-123")) {
		t.Fatal("Delete missed an existing tuple")
	}
	if s.Delete("edge", tup(123, "payload-123")) {
		t.Fatal("Delete found an already-deleted tuple")
	}
	if got := s.CountLocal("edge"); got != n-1 {
		t.Fatalf("CountLocal = %d after delete, want %d", got, n-1)
	}
}

// A pool far smaller than the dataset must still serve every record, via
// eviction and reload.
func TestEvictionUnderTinyPool(t *testing.T) {
	s, err := Open(t.TempDir(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CreateTable("big", 0)
	snap := soloSnap(t)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Insert("big", tup(i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.CountOwned("big", snap)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("CountOwned = %d, want %d", got, n)
	}
	st := s.PoolStats()
	if st.Evictions == 0 || st.BytesSpilled == 0 {
		t.Fatalf("expected evictions and spilled bytes under a 2-page pool, got %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("expected some pool hits, got %+v", st)
	}
}

func hashTable(t *testing.T, s *Store, table string, snap *cluster.Snapshot) string {
	t.Helper()
	var rows []string
	if err := s.ScanOwned(table, snap, func(tp types.Tuple) error {
		rows = append(rows, tp.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

func TestCommitRecoverDiscardUncommitted(t *testing.T) {
	dir := t.TempDir()
	snap := soloSnap(t)
	s, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Restored() {
		t.Fatal("fresh store reports Restored")
	}
	s.CreateTable("t", 0)
	for i := 0; i < 100; i++ {
		if err := s.Insert("t", tup(i, i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyDelta("t", types.Delta{Op: types.OpReplace, Old: tup(5, 25), Tup: tup(5, 999)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	want := hashTable(t, s, "t", snap)
	// Uncommitted churn a crash must lose.
	for i := 1000; i < 1100; i++ {
		if err := s.Insert("t", tup(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate SIGKILL: no Close, just reopen the directory.
	s2, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Restored() {
		t.Fatal("reopened store does not report Restored")
	}
	if got := s2.CommittedRound(); got != 2 {
		t.Fatalf("CommittedRound = %d, want 2", got)
	}
	if got := hashTable(t, s2, "t", snap); got != want {
		t.Fatalf("recovered state differs from committed state")
	}
	if got := s2.CountLocal("t"); got != 100 {
		t.Fatalf("CountLocal = %d after recovery, want 100 (uncommitted inserts must vanish)", got)
	}
}

func TestRollbackRestoresLastCommit(t *testing.T) {
	s, err := Open(t.TempDir(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap := soloSnap(t)
	s.CreateTable("t", 0)
	for i := 0; i < 50; i++ {
		if err := s.Insert("t", tup(i, "committed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(7); err != nil {
		t.Fatal(err)
	}
	want := hashTable(t, s, "t", snap)
	for i := 0; i < 50; i++ {
		if err := s.Insert("t", tup(1000+i, "doomed")); err != nil {
			t.Fatal(err)
		}
	}
	statsBefore := s.PoolStats()
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := hashTable(t, s, "t", snap); got != want {
		t.Fatal("Rollback did not restore the committed state")
	}
	if got := s.CommittedRound(); got != 7 {
		t.Fatalf("CommittedRound = %d after Rollback, want 7", got)
	}
	after := s.PoolStats()
	if after.Hits+after.Misses < statsBefore.Hits+statsBefore.Misses {
		t.Fatal("pool stats must be cumulative across Rollback")
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("t", 0)
	if err := s.Insert("t", tup(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", tup(2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	s.closeFilesLocked()
	// Tear the log: append garbage that fails CRC framing.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatalf("open over torn WAL: %v", err)
	}
	defer s2.Close()
	if got := s2.CommittedRound(); got != 2 {
		t.Fatalf("CommittedRound = %d, want 2", got)
	}
	if got := s2.CountLocal("t"); got != 2 {
		t.Fatalf("CountLocal = %d, want 2", got)
	}
}

func TestCheckpointImageRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "image.db")
	in := []imageTable{
		{name: "a", keyCol: 0, tuples: []types.Tuple{tup(1, "x"), tup(2, "y")}},
		{name: "b", keyCol: 1, tuples: []types.Tuple{tup(3.5, 4), tup(1.25, 9)}},
		{name: "empty", keyCol: 0},
	}
	if err := writeImage(path, 42, in); err != nil {
		t.Fatal(err)
	}
	round, out, err := readImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if round != 42 {
		t.Fatalf("round = %d, want 42", round)
	}
	if len(out) != len(in) {
		t.Fatalf("tables = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].name != in[i].name || out[i].keyCol != in[i].keyCol {
			t.Fatalf("table %d header mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if len(out[i].tuples) != len(in[i].tuples) {
			t.Fatalf("table %s: %d tuples, want %d", in[i].name, len(out[i].tuples), len(in[i].tuples))
		}
		for j := range in[i].tuples {
			if !out[i].tuples[j].Equal(in[i].tuples[j]) {
				t.Fatalf("table %s tuple %d: %v vs %v", in[i].name, j, out[i].tuples[j], in[i].tuples[j])
			}
		}
	}
}

// Churn with interleaved commits and reopen after every commit: the
// recovered state must always equal the state at the last commit.
func TestRepeatedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	snap := soloSnap(t)
	s, err := Open(dir, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("t", 0)
	round := int64(0)
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 40; i++ {
			k := epoch*40 + i
			if err := s.Insert("t", tup(k, k)); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 && k > 10 {
				s.Delete("t", tup(k-10, k-10))
			}
		}
		round++
		if err := s.Commit(round); err != nil {
			t.Fatal(err)
		}
		want := hashTable(t, s, "t", snap)
		// Uncommitted garbage, then crash.
		_ = s.Insert("t", tup(99999, epoch))
		s2, err := Open(dir, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashTable(t, s2, "t", snap); got != want {
			t.Fatalf("epoch %d: recovered state differs", epoch)
		}
		if got := s2.CommittedRound(); got != round {
			t.Fatalf("epoch %d: CommittedRound = %d, want %d", epoch, got, round)
		}
		s = s2
	}
	s.Close()
}

// Commit at round 0 and WAL growth past the size limit must both roll the
// WAL into a checkpoint image.
func TestCommitCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CreateTable("t", 0)
	if err := s.Insert("t", tup(1, "seed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(0); err != nil {
		t.Fatal(err)
	}
	if s.wal.size != 0 {
		t.Fatalf("WAL not reset after round-0 commit (size %d)", s.wal.size)
	}
	if _, err := os.Stat(filepath.Join(dir, "image.db")); err != nil {
		t.Fatalf("no checkpoint image after round-0 commit: %v", err)
	}
}
