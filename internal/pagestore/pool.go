package pagestore

import (
	"fmt"

	"github.com/rex-data/rex/internal/storage"
)

// DefaultPoolPages is the buffer-pool capacity when the caller does not
// set one (1024 pages = 8 MiB per node).
const DefaultPoolPages = 1024

// frame is one resident page.
type frame struct {
	table *table
	no    uint32
	buf   []byte
	pins  int
	ref   bool // clock reference bit
	dirty bool
}

type frameKey struct {
	table string
	no    uint32
}

// pool is the buffer pool: a fixed budget of page frames shared by every
// table of one store, with pin/unpin, dirty tracking, and clock (second
// chance) eviction. Callers hold the store mutex; the pool itself is not
// concurrency-safe.
type pool struct {
	cap    int
	frames map[frameKey]*frame
	clock  []*frame
	hand   int
	stats  *storage.PoolStats
}

func newPool(capPages int, stats *storage.PoolStats) *pool {
	if capPages <= 0 {
		capPages = DefaultPoolPages
	}
	return &pool{cap: capPages, frames: make(map[frameKey]*frame), stats: stats}
}

// get pins the page, loading it from the table's page file on a miss
// (load=true) or initializing it fresh (load=false, for newly allocated
// pages). The caller must unpin.
func (p *pool) get(t *table, no uint32, load bool) (*frame, error) {
	key := frameKey{t.name, no}
	if f, ok := p.frames[key]; ok {
		p.stats.Hits++
		f.pins++
		f.ref = true
		return f, nil
	}
	p.stats.Misses++
	if err := p.evictTo(p.cap - 1); err != nil {
		return nil, err
	}
	f := &frame{table: t, no: no, buf: make([]byte, PageSize), pins: 1, ref: true}
	if load {
		// A page absent from the pool was necessarily written by a prior
		// eviction (pages are born in the pool and only leave through
		// evictTo), so the read cannot hit a hole.
		if err := t.file.read(no, f.buf); err != nil {
			return nil, err
		}
	} else {
		initPage(f.buf)
		f.dirty = true
	}
	p.frames[key] = f
	p.clock = append(p.clock, f)
	return f, nil
}

func (p *pool) unpin(f *frame, dirty bool) {
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// evictTo evicts clock victims until at most n frames remain. Pinned
// frames are skipped; if every frame is pinned the pool grows past its
// budget rather than deadlocking (pins are scoped to single operations,
// so the overshoot is transient).
func (p *pool) evictTo(n int) error {
	passesLeft := 2 * len(p.clock) // ref-bit clearing needs at most two sweeps
	for len(p.clock) > n && passesLeft > 0 {
		passesLeft--
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		f := p.clock[p.hand]
		if f.pins > 0 {
			p.hand++
			continue
		}
		if f.ref {
			f.ref = false
			p.hand++
			continue
		}
		if err := p.writeBack(f); err != nil {
			return err
		}
		delete(p.frames, frameKey{f.table.name, f.no})
		p.clock[p.hand] = p.clock[len(p.clock)-1]
		p.clock = p.clock[:len(p.clock)-1]
		p.stats.Evictions++
	}
	return nil
}

func (p *pool) writeBack(f *frame) error {
	if !f.dirty {
		return nil
	}
	if err := f.table.file.write(f.no, f.buf); err != nil {
		return fmt.Errorf("pagestore: evict %s page %d: %w", f.table.name, f.no, err)
	}
	p.stats.BytesSpilled += PageSize
	f.dirty = false
	return nil
}

// dropTable discards a table's frames without write-back (used when the
// whole store reloads).
func (p *pool) reset() {
	p.frames = make(map[frameKey]*frame)
	p.clock = nil
	p.hand = 0
}
