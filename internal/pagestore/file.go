package pagestore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// pageFile is one table's spill target: page N lives at byte offset
// N*PageSize. Page files are scratch, not a durability structure — a page
// is only ever read back if an eviction wrote it first, and recovery
// discards the whole pages directory (durability is the checkpoint image
// plus the WAL's committed prefix).
type pageFile struct {
	path string
	f    *os.File
}

func newPageFile(dir, table string) *pageFile {
	return &pageFile{path: filepath.Join(dir, sanitizeName(table)+".pg")}
}

func (pf *pageFile) ensure() error {
	if pf.f != nil {
		return nil
	}
	f, err := os.OpenFile(pf.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	pf.f = f
	return nil
}

func (pf *pageFile) read(no uint32, buf []byte) error {
	if err := pf.ensure(); err != nil {
		return err
	}
	if _, err := pf.f.ReadAt(buf, int64(no)*PageSize); err != nil {
		return fmt.Errorf("pagestore: read page %d of %s: %w", no, pf.path, err)
	}
	return nil
}

func (pf *pageFile) write(no uint32, buf []byte) error {
	if err := pf.ensure(); err != nil {
		return err
	}
	if _, err := pf.f.WriteAt(buf, int64(no)*PageSize); err != nil {
		return fmt.Errorf("pagestore: write page %d of %s: %w", no, pf.path, err)
	}
	return nil
}

func (pf *pageFile) close() error {
	if pf.f == nil {
		return nil
	}
	err := pf.f.Close()
	pf.f = nil
	return err
}

// sanitizeName maps a table name onto a safe file stem: identifier
// characters pass through, anything else is percent-escaped.
func sanitizeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	return b.String()
}
