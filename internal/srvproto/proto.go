// Package srvproto defines the client↔rexd server protocol: the JSON
// request/reply records that ride inside MsgHello/MsgQuery/MsgRows/MsgErr
// transport frames, the length-prefixed frame I/O both ends share, the
// sentinel error codes that survive the wire, and the ServerStats record
// the /stats endpoint and the "stats" op report.
//
// The package sits below both the public rex client (which dials a
// server) and internal/server (which serves it), so neither imports the
// other. Frames reuse the cluster wire codec — the same varint-packed
// Message encoding and 4-byte big-endian length prefix worker daemons
// speak — so a server connection is one more dialect of the existing
// wire format, not a second one.
package srvproto

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/types"
)

// Version is the protocol revision a Hello negotiates. Servers reject
// clients whose version they do not speak.
const Version = 1

// Frame size limits, mirroring the worker-transport hardening: a forged
// length prefix must not make either side buffer unbounded memory.
const (
	frameHeader = 4
	// MaxFrame bounds a frame either side will buffer (64 MiB).
	MaxFrame = 1 << 26
)

// Request ops.
const (
	// OpStream executes Src and streams result delta batches back. It is
	// the single execution op: buffered Query is a client-side Drain.
	OpStream = "stream"
	// OpSubscribe installs Src as a standing query: the initial result
	// arrives as round 0, and every covering ingestion round after it
	// streams net-change deltas until the request is cancelled.
	OpSubscribe = "subscribe"
	// OpPrepare compiles Src (with $N placeholders) into the server's
	// plan cache and reports its parameter count.
	OpPrepare = "prepare"
	// OpIngest applies base-table delta batches. The reply arrives after
	// every covering standing-query round has completed, so a
	// subscriber's stream holds the whole round when its ingest returns.
	OpIngest = "ingest"
	// OpCreateTable declares a table on the server's catalog.
	OpCreateTable = "create_table"
	// OpStats reports the server's counters.
	OpStats = "stats"
	// OpCancel aborts the in-flight request identified by Target. It has
	// no reply of its own; the target request ends with its own frame.
	OpCancel = "cancel"
)

// Hello is the first frame a client sends (inside MsgHello). Tenant is
// the session-level default tenant id for admission quotas and fair
// scheduling; per-request QueryOpts.Tenant overrides it.
type Hello struct {
	Version int    `json:"version"`
	Tenant  string `json:"tenant,omitempty"`
}

// Welcome is the server's MsgHello reply.
type Welcome struct {
	OK    bool   `json:"ok"`
	Nodes int    `json:"nodes,omitempty"`
	Code  int    `json:"code,omitempty"`
	Err   string `json:"err,omitempty"`
}

// Priority levels carried by QueryOpts.Priority and the frame header.
// The rex package re-exports them as rex.PriorityLow/Normal/High.
const (
	PriorityLow    = -1
	PriorityNormal = 0
	PriorityHigh   = 1
)

// QueryOpts is the wire subset of exec.Options — the fields that travel;
// driver-side hooks (recovery, termination callbacks) stay client-side
// and are rejected before a request is sent.
type QueryOpts struct {
	BatchSize           int  `json:"batch,omitempty"`
	MaxStrata           int  `json:"max_strata,omitempty"`
	Compaction          bool `json:"compaction,omitempty"`
	CompactionHighWater int  `json:"compaction_hw,omitempty"`
	Checkpoint          bool `json:"checkpoint,omitempty"`
	NoVectorize         bool `json:"no_vectorize,omitempty"`
	// Tenant overrides the session's Hello tenant for this request;
	// Priority (-1 low / 0 normal / +1 high) orders the scheduler's
	// runnable queue. Priority also rides the frame header (see
	// cluster.Message.Priority) so the server can classify a request
	// before parsing its body.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// Request is the JSON body of a MsgQuery frame; which fields are
// meaningful depends on Op.
type Request struct {
	Op  string `json:"op"`
	Src string `json:"src,omitempty"`
	// Args carries bound $N parameter values as one encoded tuple
	// (EncodeArgs/DecodeArgs).
	Args []byte     `json:"args,omitempty"`
	Opts *QueryOpts `json:"opts,omitempty"`
	// Tables carries OpIngest batches: table name → encoded delta batch.
	Tables map[string][]byte `json:"tables,omitempty"`
	// Table/Fields/Key describe an OpCreateTable declaration; Fields uses
	// the "name:Type" spec form.
	Table  string   `json:"table,omitempty"`
	Fields []string `json:"fields,omitempty"`
	Key    int      `json:"key,omitempty"`
	// Target is the request id an OpCancel addresses.
	Target int `json:"target,omitempty"`
}

// Trailer is the JSON record riding in the Table field of a request's
// final MsgRows frame (and of standing-query round-boundary frames).
type Trailer struct {
	// Result carries the completed run's statistics (Tuples always nil —
	// the tuples travelled as delta frames).
	Result *exec.Result `json:"result,omitempty"`
	// NumParams answers OpPrepare.
	NumParams int `json:"params,omitempty"`
	// Round carries a standing-query round's statistics on round-boundary
	// frames, and the requester's covering round on OpIngest replies.
	Round *exec.RoundStats `json:"round,omitempty"`
	// Stats answers OpStats.
	Stats *ServerStats `json:"stats,omitempty"`
}

// ServerStats is the rexd server's counter snapshot, served on /stats
// and by the "stats" op.
type ServerStats struct {
	// Sessions counts accepted client connections; ActiveSessions the
	// currently-open ones.
	Sessions       int64 `json:"sessions"`
	ActiveSessions int64 `json:"active_sessions"`
	// Queries counts admitted interactive executions (streams and
	// subscription initial rounds); Rejected the admission-control
	// rejections (ErrServerBusy); QuotaRejections the per-tenant quota
	// rejections (ErrTenantBusy), counted separately so a deliberately
	// throttled tenant does not read as server overload.
	Queries         int64 `json:"queries"`
	Rejected        int64 `json:"rejected"`
	QuotaRejections int64 `json:"quota_rejections"`
	// SubPools is the number of independent engine sub-pools queries
	// run on (true intra-server concurrency = min(SubPools, runnable));
	// Inflight and QueueDepth snapshot the admission gate: requests
	// holding slots and requests parked in the bounded wait queue.
	SubPools   int64 `json:"sub_pools"`
	Inflight   int64 `json:"inflight"`
	QueueDepth int64 `json:"queue_depth"`
	// Tenants snapshots the per-tenant scheduler counters, keyed by
	// tenant id ("" = untagged sessions).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Compiles counts real plan compilations; PlanCacheHits/Misses the
	// cache outcomes. Hits > 0 with Compiles < Queries is the cache win.
	Compiles        int64 `json:"compiles"`
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheSize   int64 `json:"plan_cache_size"`
	// Subscriptions counts standing queries installed; Rounds the
	// incremental refresh rounds run; Ingests the applied ingest requests.
	Subscriptions int64 `json:"subscriptions"`
	Rounds        int64 `json:"rounds"`
	Ingests       int64 `json:"ingests"`
	// CatalogVersion is the backing catalog's current schema version.
	CatalogVersion int64 `json:"catalog_version"`
	// Buffer-pool traffic of the backing pool's paged stores (a server
	// started with -data-dir): page-cache hits and misses, pages evicted
	// to make room, and dirty page bytes written to spill files. All-zero
	// on an in-memory pool.
	PoolHits         int64 `json:"pool_hits"`
	PoolMisses       int64 `json:"pool_misses"`
	PoolEvictions    int64 `json:"pool_evictions"`
	PoolBytesSpilled int64 `json:"pool_bytes_spilled"`
	// Expression-kernel traffic of the pool's workers: kernels compiled
	// at operator instantiation, batches evaluated column-wise by a
	// compiled kernel, batches bridged row-by-row because no kernel
	// compiled, and batches a kernel declined at eval time.
	KernelCompiled       int64 `json:"kernel_compiled"`
	KernelVectorBatches  int64 `json:"kernel_vector_batches"`
	KernelBridgedBatches int64 `json:"kernel_bridged_batches"`
	KernelFallbackEvals  int64 `json:"kernel_fallback_evals"`
}

// TenantStats is one tenant's slice of the scheduler counters.
type TenantStats struct {
	// Admitted counts requests that won an admission slot; Inflight the
	// ones currently holding one (admitted or parked in the wait queue);
	// QuotaRejections the ErrTenantBusy rejections.
	Admitted        int64 `json:"admitted"`
	Inflight        int64 `json:"inflight"`
	QuotaRejections int64 `json:"quota_rejections"`
}

// Sentinel error codes carried in MsgErr.Count (and Welcome.Code), so
// typed errors survive the wire and errors.Is works on both sides.
const (
	CodeInternal = iota
	CodeBusy
	CodeUnknownTable
	CodeSessionClosed
	CodeCanceled
	CodeBadRequest
	CodeTenantBusy
)

// Sentinels shared by the client session and the server. The rex package
// re-exports them as rex.ErrServerBusy / rex.ErrSessionClosed /
// rex.ErrTenantBusy.
var (
	// ErrServerBusy rejects work when the admission queue is full (or the
	// server is at its session cap).
	ErrServerBusy = errors.New("rex: server busy")
	// ErrSessionClosed rejects operations on a closed session.
	ErrSessionClosed = errors.New("rex: session is closed")
	// ErrTenantBusy rejects work past the requesting tenant's inflight
	// quota; other tenants' capacity is unaffected.
	ErrTenantBusy = errors.New("rex: tenant quota exhausted")
)

// CodeFor classifies an error as a wire code. ErrTenantBusy is checked
// before ErrServerBusy so a quota rejection never degrades into the
// generic busy code.
func CodeFor(err error) int {
	switch {
	case errors.Is(err, ErrTenantBusy):
		return CodeTenantBusy
	case errors.Is(err, ErrServerBusy):
		return CodeBusy
	case errors.Is(err, catalog.ErrUnknownTable):
		return CodeUnknownTable
	case errors.Is(err, ErrSessionClosed):
		return CodeSessionClosed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// codedErr reconstructs a server-side error client-side: the original
// message, wrapping the sentinel its code names so errors.Is holds.
type codedErr struct {
	msg  string
	base error
}

func (e *codedErr) Error() string { return e.msg }
func (e *codedErr) Unwrap() error { return e.base }

// Rehydrate turns a wire (code, message) pair back into a typed error.
func Rehydrate(code int, msg string) error {
	var base error
	switch code {
	case CodeBusy:
		base = ErrServerBusy
	case CodeTenantBusy:
		base = ErrTenantBusy
	case CodeUnknownTable:
		base = catalog.ErrUnknownTable
	case CodeSessionClosed:
		base = ErrSessionClosed
	case CodeCanceled:
		base = context.Canceled
	default:
		return errors.New(msg)
	}
	if msg == "" || msg == base.Error() {
		return base
	}
	return &codedErr{msg: msg, base: base}
}

// WriteMsg writes one length-prefixed frame. Callers serialize writes to
// a shared connection themselves.
func WriteMsg(w io.Writer, m cluster.Message) error {
	frame := cluster.EncodeFrame(m)
	if len(frame) > MaxFrame {
		return fmt.Errorf("srvproto: frame of %d bytes exceeds the %d limit", len(frame), MaxFrame)
	}
	buf := make([]byte, frameHeader+len(frame))
	binary.BigEndian.PutUint32(buf[:frameHeader], uint32(len(frame)))
	copy(buf[frameHeader:], frame)
	_, err := w.Write(buf)
	return err
}

// ReadMsg reads one length-prefixed frame, rejecting forged lengths
// before buffering.
func ReadMsg(r io.Reader) (cluster.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return cluster.Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return cluster.Message{}, fmt.Errorf("srvproto: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return cluster.Message{}, err
	}
	return cluster.DecodeFrame(buf)
}

// EncodeArgs packs bound parameter values as one encoded tuple; nil for
// no arguments.
func EncodeArgs(args []types.Value) []byte {
	if len(args) == 0 {
		return nil
	}
	return cluster.EncodeDeltas([]types.Delta{types.Insert(types.Tuple(args))})
}

// DecodeArgs unpacks EncodeArgs.
func DecodeArgs(b []byte) ([]types.Value, error) {
	if len(b) == 0 {
		return nil, nil
	}
	ds, err := cluster.DecodeDeltas(b)
	if err != nil {
		return nil, fmt.Errorf("srvproto: decode args: %w", err)
	}
	if len(ds) != 1 {
		return nil, fmt.Errorf("srvproto: decode args: %d deltas, want 1", len(ds))
	}
	return []types.Value(ds[0].Tup), nil
}

// EncodeJSON marshals a protocol record, panicking on marshal failure —
// every record here is marshalable by construction.
func EncodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("srvproto: marshal %T: %v", v, err))
	}
	return b
}
