package rql

import (
	"strings"
	"testing"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/types"
)

func paramCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	err := cat.AddTable(&catalog.Table{
		Name:   "t",
		Schema: types.MustSchema("k:Integer", "v:Double", "name:String"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCompileStmtInfersKinds(t *testing.T) {
	cat := paramCatalog(t)
	cases := []struct {
		src  string
		want []types.Kind
	}{
		{`SELECT k FROM t WHERE k > $1`, []types.Kind{types.KindInt}},
		{`SELECT k FROM t WHERE v > $1`, []types.Kind{types.KindFloat}},
		{`SELECT k FROM t WHERE name = $1`, []types.Kind{types.KindString}},
		{`SELECT v * $1 FROM t WHERE k > $2`, []types.Kind{types.KindFloat, types.KindInt}},
		{`SELECT k FROM t WHERE $1 < v AND k > $2`, []types.Kind{types.KindFloat, types.KindInt}},
		// Parameter-only comparisons default to float.
		{`SELECT k FROM t WHERE $1 = $2`, []types.Kind{types.KindFloat, types.KindFloat}},
		// The same placeholder reused keeps one slot.
		{`SELECT k FROM t WHERE v > $1 AND v < $1 + 10.0`, []types.Kind{types.KindFloat}},
	}
	for _, c := range cases {
		_, prep, err := CompileStmt(c.src, cat, 2)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if len(prep.Kinds) != len(c.want) {
			t.Errorf("%s: %d params, want %d", c.src, len(prep.Kinds), len(c.want))
			continue
		}
		for i, k := range c.want {
			if prep.Kinds[i] != k {
				t.Errorf("%s: $%d kind %v, want %v", c.src, i+1, prep.Kinds[i], k)
			}
		}
	}
}

func TestCompileStmtErrors(t *testing.T) {
	cat := paramCatalog(t)
	for _, src := range []string{
		`SELECT k FROM t WHERE k > $2`, // $1 skipped
		`SELECT $1 FROM t`,             // kind not inferable
		`SELECT k FROM t WHERE k > $0`, // params are 1-based
		`SELECT k FROM t WHERE k > $`,  // no digits
	} {
		if _, _, err := CompileStmt(src, cat, 2); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
	// Compile (the non-prepared path) must reject parameters outright.
	if _, err := Compile(`SELECT k FROM t WHERE k > $1`, cat, 2); err == nil ||
		!strings.Contains(err.Error(), "parameter") {
		t.Errorf("Compile with $1: err = %v, want parameter error", err)
	}
}

func TestPreparedBind(t *testing.T) {
	cat := paramCatalog(t)
	_, prep, err := CompileStmt(`SELECT k FROM t WHERE v > $1 AND k > $2`, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Integer coerces into an inferred-float slot.
	if err := prep.Bind([]types.Value{int64(3), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if v := prep.Set.Values[0]; v != float64(3) {
		t.Errorf("coerced value = %#v, want 3.0", v)
	}
	if err := prep.Bind([]types.Value{1.5}); err == nil {
		t.Error("wrong arity must error")
	}
	if err := prep.Bind([]types.Value{"x", int64(1)}); err == nil {
		t.Error("string into float slot must error")
	}
	if err := prep.Bind([]types.Value{1.5, 2.5}); err == nil {
		t.Error("float into integer slot must error")
	}
}

func TestBindText(t *testing.T) {
	got, err := BindText(
		`SELECT k FROM t WHERE v > $1 AND name = $2 AND k > $1`,
		[]types.Value{2.5, "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT k FROM t WHERE v > 2.5 AND name = 'alpha' AND k > 2.5`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Whole floats keep their kind through the lexer.
	got, err = BindText(`SELECT k FROM t WHERE v > $1`, []types.Value{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "2.0") {
		t.Errorf("whole float rendered as %q", got)
	}
	if _, err := BindText(`SELECT k FROM t WHERE k > $1`, []types.Value{}); err == nil {
		t.Error("missing value must error")
	}
	// Embedded quotes render as the lexer's '' escape and round-trip.
	got, err = BindText(`SELECT k FROM t WHERE name = $1`, []types.Value{"it's"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT k FROM t WHERE name = 'it''s'`; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	toks, err := lex(`'it''s' '''' ''`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tk := range toks {
		if tk.kind == tokString {
			strs = append(strs, tk.text)
		}
	}
	if len(strs) != 3 || strs[0] != "it's" || strs[1] != "'" || strs[2] != "" {
		t.Errorf("escaped strings lexed as %q", strs)
	}
	// A $N inside a string literal is text, not a parameter.
	if _, err := BindText(`SELECT k FROM t WHERE name = '$1'`, []types.Value{}); err != nil {
		t.Errorf("placeholder inside string treated as parameter: %v", err)
	}
}
