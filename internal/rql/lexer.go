// Package rql implements REX's query language (§3.1): SQL extended with
// recursion (`WITH R AS (base) UNION [ALL] UNTIL FIXPOINT BY key
// [USING handler] (recursive)`), embedded user-defined code, and the
// `Agg(args).{out1, out2}` projection syntax for table-valued delta
// handlers. The front end lexes, parses, binds against the catalog with
// strong typing (§3.3), and hands a logical plan to the optimizer.
package rql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
	tokParam   // $N placeholder; text is the digits
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "WITH": true, "UNION": true, "ALL": true, "UNTIL": true,
	"FIXPOINT": true, "USING": true, "AND": true, "OR": true, "NOT": true,
	"TRUE": true, "FALSE": true, "NULL": true,
}

// lex tokenizes an RQL query.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					// "1." followed by identifier is qualified access, not a float.
					if i+1 >= len(src) || !unicode.IsDigit(rune(src[i+1])) {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '$':
			start := i
			i++
			ds := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			if i == ds {
				return nil, fmt.Errorf("rql: expected digits after $ at %d", start)
			}
			toks = append(toks, token{tokParam, src[ds:i], start})
		case c == '\'':
			i++
			start := i
			var esc []byte // set only when the string contains '' escapes
			seg := start
			for {
				for i < len(src) && src[i] != '\'' {
					i++
				}
				if i >= len(src) {
					return nil, fmt.Errorf("rql: unterminated string at %d", start)
				}
				if i+1 < len(src) && src[i+1] == '\'' {
					// '' is an escaped quote inside the string.
					esc = append(esc, src[seg:i]...)
					esc = append(esc, '\'')
					i += 2
					seg = i
					continue
				}
				break
			}
			text := src[start:i]
			if esc != nil {
				text = string(append(esc, src[seg:i]...))
			}
			toks = append(toks, token{tokString, text, start})
			i++
		default:
			// multi-char operators
			for _, op := range []string{"<>", "<=", ">=", ".{"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokSymbol, op, i})
					i += len(op)
					goto next
				}
			}
			if strings.ContainsRune("(),.*+-/%<>={}", rune(c)) {
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			} else {
				return nil, fmt.Errorf("rql: unexpected character %q at %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
