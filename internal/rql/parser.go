package rql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an RQL query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, got %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("rql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	if p.accept(tokKeyword, "WITH") {
		return p.parseWith()
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &Query{Select: sel}, nil
}

// parseWith parses the recursive form of §3.1 / Listing 1.
func (p *parser) parseWith() (*Query, error) {
	w := &WithClause{}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	w.Name = name.text
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			w.Cols = append(w.Cols, col.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	p.pos-- // parseSelect expects SELECT
	if w.Base, err = p.parseSelect(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "UNION"); err != nil {
		return nil, err
	}
	w.UnionAll = p.accept(tokKeyword, "ALL")
	if _, err := p.expect(tokKeyword, "UNTIL"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FIXPOINT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "BY"); err != nil {
		return nil, err
	}
	key, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	w.FixpointKey = key.text
	if p.accept(tokKeyword, "USING") {
		h, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		w.WhileHandler = h.text
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if w.Recursive, err = p.parseSelect(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &Query{With: w}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, *item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, *fi)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseQualifiedIdent()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return &SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	// Handler destructuring: Fn(args).{a, b}
	if p.accept(tokSymbol, ".{") {
		call, ok := e.(*CallExpr)
		if !ok {
			return nil, p.errf(".{…} requires a handler invocation")
		}
		_ = call
		for {
			out, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			item.HandlerOuts = append(item.HandlerOuts, out.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, "}"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		item.Alias = alias.text
	}
	return item, nil
}

func (p *parser) parseFromItem() (*FromItem, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		fi := &FromItem{Sub: sub}
		if p.accept(tokKeyword, "AS") {
			alias, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			fi.Alias = alias.text
		}
		return fi, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	fi := &FromItem{Table: name.text}
	if p.at(tokIdent, "") {
		fi.Alias = p.next().text
	} else if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		fi.Alias = alias.text
	}
	return fi, nil
}

// precedence table: higher binds tighter.
func prec(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 0
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		t := p.cur()
		if t.kind == tokSymbol && prec(t.text) > 0 {
			op = t.text
		} else if t.kind == tokKeyword && (t.text == "AND" || t.text == "OR") {
			op = t.text
		} else {
			break
		}
		if prec(op) < minPrec {
			break
		}
		p.next()
		right, err := p.parseExpr(prec(op) + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept(tokKeyword, "NOT"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	case p.accept(tokSymbol, "-"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "-", L: &NumberLit{Text: "0", IsInt: true}, R: e}, nil
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokNumber, ""):
		t := p.next()
		return &NumberLit{Text: t.text, IsInt: !strings.Contains(t.text, ".")}, nil
	case p.at(tokParam, ""):
		t := p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, p.errf("bad parameter $%s", t.text)
		}
		return &ParamRef{N: n}, nil
	case p.at(tokString, ""):
		return &StringLit{Val: p.next().text}, nil
	case p.accept(tokKeyword, "TRUE"):
		return &BoolLit{Val: true}, nil
	case p.accept(tokKeyword, "FALSE"):
		return &BoolLit{Val: false}, nil
	case p.at(tokIdent, ""):
		name, err := p.parseQualifiedIdent()
		if err != nil {
			return nil, err
		}
		if p.accept(tokSymbol, "(") {
			call := &CallExpr{Fn: name}
			if p.accept(tokSymbol, "*") {
				call.Star = true
			} else if !p.at(tokSymbol, ")") {
				for {
					arg, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q", p.cur().text)
	}
}

// parseQualifiedIdent parses ident(.ident)*.
func (p *parser) parseQualifiedIdent() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.text
	for p.at(tokSymbol, ".") && p.toks[p.pos+1].kind == tokIdent {
		p.next()
		part := p.next()
		name += "." + part.text
	}
	return name, nil
}
