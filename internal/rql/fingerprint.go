package rql

import (
	"strconv"
	"strings"
)

// Fingerprint returns a cache key for an RQL statement: the lexed token
// stream rejoined with single spaces. Two sources that differ only in
// whitespace, comments, or keyword case fingerprint identically, so a
// plan cache keyed on it coalesces the trivially-reformatted variants of
// one query without ever conflating distinct statements — string
// literals are re-quoted and parameters keep their indices, so the token
// stream round-trips unambiguously. Sources that do not lex fingerprint
// to themselves: they still key (and miss) consistently, and the
// compile that follows reports the real error.
func Fingerprint(src string) string {
	toks, err := lex(src)
	if err != nil {
		return src
	}
	var b strings.Builder
	b.Grow(len(src))
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			b.WriteString(strconv.Quote(t.text))
		case tokParam:
			b.WriteByte('$')
			b.WriteString(t.text)
		default:
			b.WriteString(t.text)
		}
	}
	return b.String()
}
