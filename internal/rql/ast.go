package rql

// AST node definitions for the RQL subset.

// Query is either a plain select or a recursive WITH query.
type Query struct {
	With   *WithClause // nil for non-recursive queries
	Select *SelectStmt
}

// WithClause is `WITH name [(cols)] AS (base) UNION [ALL] UNTIL FIXPOINT
// BY key [USING handler] (recursive)`.
type WithClause struct {
	Name     string
	Cols     []string
	Base     *SelectStmt
	UnionAll bool
	// FixpointKey is the BY column (resolved against the recursive
	// relation's schema).
	FixpointKey string
	// WhileHandler optionally names a registered while-state delta
	// handler (REX extension syntax: USING <handler>).
	WhileHandler string
	Recursive    *SelectStmt
}

// SelectStmt is a single-block select.
type SelectStmt struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr
	GroupBy []string
}

// SelectItem is one projection: an expression, an aggregate call, or a
// handler invocation with the .{out1, out2} destructuring syntax.
type SelectItem struct {
	Expr Expr
	// Alias is the AS name (optional).
	Alias string
	// Star marks count(*)-style arguments elsewhere; at the top level a
	// bare * selects all columns.
	Star bool
	// HandlerOuts holds the .{a, b} output names for handler invocations.
	HandlerOuts []string
}

// FromItem is a base table or parenthesized subquery with optional alias.
type FromItem struct {
	Table string
	Sub   *SelectStmt
	Alias string
}

// Expr is the AST expression interface.
type Expr interface{ exprNode() }

// Ident references a (possibly qualified) column.
type Ident struct{ Name string }

// NumberLit is an integer or float literal.
type NumberLit struct {
	Text  string
	IsInt bool
}

// StringLit is a string literal.
type StringLit struct{ Val string }

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Val bool }

// BinExpr is a binary operation (+,-,*,/,%,=,<>,<,<=,>,>=,AND,OR).
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr is NOT e.
type NotExpr struct{ E Expr }

// ParamRef is a $N prepared-statement placeholder (N is 1-based).
type ParamRef struct{ N int }

// CallExpr is fn(args); Star marks count(*).
type CallExpr struct {
	Fn   string
	Args []Expr
	Star bool
}

func (*Ident) exprNode()     {}
func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*BoolLit) exprNode()   {}
func (*BinExpr) exprNode()   {}
func (*NotExpr) exprNode()   {}
func (*CallExpr) exprNode()  {}
func (*ParamRef) exprNode()  {}
