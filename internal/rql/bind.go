package rql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/plan"
	"github.com/rex-data/rex/internal/types"
)

// aggNames are the built-in aggregate functions.
var aggNames = map[string]bool{
	"sum": true, "count": true, "min": true, "max": true,
	"avg": true, "average": true, "argmin": true,
}

// Compile parses, binds, typechecks, and optimizes an RQL query into an
// executable physical plan. Queries with $N parameters must go through
// CompileStmt (the prepared-statement path) instead.
func Compile(src string, cat *catalog.Catalog, nodes int) (*exec.PlanSpec, error) {
	p, prep, err := CompileStmt(src, cat, nodes)
	if err != nil {
		return nil, err
	}
	if prep.NumParams() > 0 {
		return nil, fmt.Errorf("rql: query has %d parameter(s); prepare it and bind values", prep.NumParams())
	}
	return p, nil
}

// Prepared carries the parameter machinery of a compiled statement: the
// shared ParamSet the plan's Param expressions read from, and the kind
// inferred for each $N placeholder.
type Prepared struct {
	Set   *expr.ParamSet
	Kinds []types.Kind // 0-based; Kinds[0] is $1
	prs   []*expr.Param
}

// NumParams reports how many distinct $N placeholders the statement uses.
func (p *Prepared) NumParams() int { return len(p.prs) }

// Check typechecks args against the inferred parameter kinds and returns
// the coerced values (integers promoted to floats where a float was
// inferred) without installing them — the read-only half of Bind, used by
// the text-binding path of multi-process sessions so type errors surface
// driver-side before a job ships.
func (p *Prepared) Check(args []types.Value) ([]types.Value, error) {
	if len(args) != len(p.prs) {
		return nil, fmt.Errorf("rql: statement wants %d parameter(s), got %d", len(p.prs), len(args))
	}
	vals := make([]types.Value, len(args))
	for i, a := range args {
		want := p.Kinds[i]
		got := types.KindOf(a)
		if got == want {
			vals[i] = a
			continue
		}
		if want == types.KindFloat && got == types.KindInt {
			f, _ := types.AsFloat(a)
			vals[i] = f
			continue
		}
		return nil, fmt.Errorf("rql: parameter $%d: got %v, want %v", i+1, got, want)
	}
	return vals, nil
}

// Bind typechecks args against the inferred parameter kinds (coercing
// integers to floats where a float was inferred) and installs them for the
// next execution of the plan.
func (p *Prepared) Bind(args []types.Value) error {
	vals, err := p.Check(args)
	if err != nil {
		return err
	}
	p.Set.Bind(vals)
	return nil
}

// CompileStmt is Compile for prepared statements: $N placeholders compile
// into the plan as bound parameter expressions whose kinds are inferred
// from context, so the plan is built once and executed many times with
// fresh values bound through the returned Prepared.
func CompileStmt(src string, cat *catalog.Catalog, nodes int) (*exec.PlanSpec, *Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	prep := &Prepared{Set: &expr.ParamSet{}}
	b := &binder{cat: cat, model: plan.NewModel(cat.Calibration(), nodes), prep: prep}
	p, err := b.bindQuery(q)
	if err != nil {
		return nil, nil, err
	}
	for i, pr := range prep.prs {
		if pr == nil {
			return nil, nil, fmt.Errorf("rql: parameter $%d is never used (parameters must be numbered contiguously from $1)", i+1)
		}
		if pr.K == types.KindNull {
			return nil, nil, fmt.Errorf("rql: cannot infer the type of parameter $%d; use it in a comparison, arithmetic, or function call", i+1)
		}
		prep.Kinds = append(prep.Kinds, pr.K)
	}
	return p, prep, nil
}

type binder struct {
	cat   *catalog.Catalog
	model *plan.Model
	prep  *Prepared
	// inRecursive disables pre-aggregation: recursive streams carry
	// non-insert deltas, which combiners cannot fold (§5.2 applies to
	// insert-only inputs).
	inRecursive bool
}

// paramExpr returns (creating on first use) the shared placeholder
// expression for $n.
func (b *binder) paramExpr(n int) *expr.Param {
	for len(b.prep.prs) < n {
		b.prep.prs = append(b.prep.prs, nil)
	}
	if b.prep.prs[n-1] == nil {
		b.prep.prs[n-1] = expr.NewParam(b.prep.Set, n-1, types.KindNull)
	}
	return b.prep.prs[n-1]
}

// adoptParamKind assigns k to e when e is a parameter whose kind is still
// unknown, reporting whether e now has kind k.
func adoptParamKind(e expr.Expr, k types.Kind) {
	if pr, ok := e.(*expr.Param); ok && pr.K == types.KindNull && k != types.KindNull {
		pr.K = k
	}
}

func (b *binder) bindQuery(q *Query) (*exec.PlanSpec, error) {
	p := exec.NewPlanSpec()
	if q.With != nil {
		if err := b.bindRecursive(p, q.With); err != nil {
			return nil, err
		}
		return p, nil
	}
	root, _, err := b.bindSelect(p, q.Select)
	if err != nil {
		return nil, err
	}
	p.RootID = root
	return p, nil
}

// bindSelect compiles one non-recursive select block, returning the root
// op id and its output schema.
func (b *binder) bindSelect(p *exec.PlanSpec, s *SelectStmt) (int, *types.Schema, error) {
	if len(s.From) != 1 {
		return 0, nil, fmt.Errorf("rql: non-recursive selects support a single FROM item (got %d); use the recursive form for joins with delta handlers", len(s.From))
	}
	srcID, schema, err := b.bindFrom(p, &s.From[0])
	if err != nil {
		return 0, nil, err
	}

	// WHERE: conjuncts become filters, ordered by predicate-migration
	// rank (§5.1) using catalog cost metadata for UDF calls.
	cur := srcID
	if s.Where != nil {
		conjuncts := splitConjuncts(s.Where)
		infos := make([]plan.PredInfo, len(conjuncts))
		bound := make([]expr.Expr, len(conjuncts))
		for i, c := range conjuncts {
			e, err := b.bindExpr(c, schema)
			if err != nil {
				return 0, nil, err
			}
			if e.Kind() != types.KindBool {
				return 0, nil, fmt.Errorf("rql: WHERE conjunct %s is not boolean", e)
			}
			bound[i] = e
			infos[i] = b.predInfo(c)
		}
		for _, idx := range plan.OrderPredicates(infos) {
			f := p.Add(&exec.OpSpec{Kind: exec.OpFilter, Inputs: []int{cur}, Pred: bound[idx]})
			cur = f.ID
		}
	}

	if len(s.GroupBy) > 0 || hasAggregate(s) {
		return b.bindAggregate(p, s, cur, schema)
	}

	// Plain projection.
	exprs, outSchema, err := b.bindProjection(s.Items, schema)
	if err != nil {
		return 0, nil, err
	}
	proj := p.Add(&exec.OpSpec{Kind: exec.OpProject, Inputs: []int{cur}, Exprs: exprs, Out: outSchema})
	return proj.ID, outSchema, nil
}

func (b *binder) bindFrom(p *exec.PlanSpec, f *FromItem) (int, *types.Schema, error) {
	if f.Sub != nil {
		id, schema, err := b.bindSelect(p, f.Sub)
		if err != nil {
			return 0, nil, err
		}
		if f.Alias != "" {
			schema = schema.Rename(f.Alias)
		}
		return id, schema, nil
	}
	tab, err := b.cat.Table(f.Table)
	if err != nil {
		return 0, nil, err
	}
	scan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: f.Table, Out: tab.Schema})
	schema := tab.Schema
	if f.Alias != "" {
		schema = schema.Rename(f.Alias)
	}
	return scan.ID, schema, nil
}

// bindAggregate compiles GROUP BY blocks: project grouping keys and agg
// arguments, optionally pre-aggregate (§5.2), rehash by key, aggregate,
// then project the final select expressions.
func (b *binder) bindAggregate(p *exec.PlanSpec, s *SelectStmt, cur int, schema *types.Schema) (int, *types.Schema, error) {
	// Collect aggregate calls from the select items, rewriting them to
	// placeholder column references over the group-by output.
	var aggSpecs []exec.AggSpec
	finalItems := make([]SelectItem, len(s.Items))
	copy(finalItems, s.Items)

	type aggRef struct{ idx int }
	aggCols := map[string]aggRef{}
	var collect func(e Expr) (Expr, error)
	collect = func(e Expr) (Expr, error) {
		switch v := e.(type) {
		case *CallExpr:
			if aggNames[strings.ToLower(v.Fn)] {
				key := exprString(v)
				if _, ok := aggCols[key]; !ok {
					var args []expr.Expr
					outKind := types.KindFloat
					if !v.Star {
						for _, a := range v.Args {
							be, err := b.bindExpr(a, schema)
							if err != nil {
								return nil, err
							}
							args = append(args, be)
						}
						if len(args) > 0 {
							outKind = args[0].Kind()
						}
					}
					fn := strings.ToLower(v.Fn)
					if fn == "count" {
						outKind = types.KindInt
						args = nil
					}
					aggCols[key] = aggRef{idx: len(aggSpecs)}
					aggSpecs = append(aggSpecs, exec.AggSpec{
						Fn: fn, Args: args,
						OutName: fmt.Sprintf("agg%d", len(aggSpecs)), OutKind: outKind,
					})
				}
				return &Ident{Name: fmt.Sprintf("#agg%d", aggCols[key].idx)}, nil
			}
			out := &CallExpr{Fn: v.Fn, Star: v.Star}
			for _, a := range v.Args {
				na, err := collect(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, na)
			}
			return out, nil
		case *BinExpr:
			l, err := collect(v.L)
			if err != nil {
				return nil, err
			}
			r, err := collect(v.R)
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: v.Op, L: l, R: r}, nil
		case *NotExpr:
			inner, err := collect(v.E)
			if err != nil {
				return nil, err
			}
			return &NotExpr{E: inner}, nil
		default:
			return e, nil
		}
	}
	for i := range finalItems {
		if finalItems[i].Expr == nil {
			continue
		}
		ne, err := collect(finalItems[i].Expr)
		if err != nil {
			return 0, nil, err
		}
		finalItems[i].Expr = ne
	}
	if len(aggSpecs) == 0 {
		return 0, nil, fmt.Errorf("rql: GROUP BY without aggregates is unsupported")
	}

	// Grouping keys: resolve in input schema. Grouping by a constant 0
	// (global aggregate) when no GROUP BY is given.
	groupExprs := []expr.Expr{}
	groupFields := []types.Field{}
	if len(s.GroupBy) == 0 {
		groupExprs = append(groupExprs, expr.NewConst(int64(0)))
		groupFields = append(groupFields, types.Field{Name: "#g", Kind: types.KindInt})
	}
	for _, g := range s.GroupBy {
		idx := schema.ColIndex(g)
		if idx < 0 {
			return 0, nil, fmt.Errorf("rql: unknown GROUP BY column %q", g)
		}
		groupExprs = append(groupExprs, expr.NewCol(idx, schema.Fields[idx].Kind, g))
		groupFields = append(groupFields, types.Field{Name: g, Kind: schema.Fields[idx].Kind})
	}

	// Pre-groupby projection: [groupKeys..., aggArgs...].
	preExprs := append([]expr.Expr{}, groupExprs...)
	preFields := append([]types.Field{}, groupFields...)
	reboundAggs := make([]exec.AggSpec, len(aggSpecs))
	for i, as := range aggSpecs {
		reboundAggs[i] = exec.AggSpec{Fn: as.Fn, OutName: as.OutName, OutKind: as.OutKind}
		for j, arg := range as.Args {
			col := len(preExprs)
			preExprs = append(preExprs, arg)
			preFields = append(preFields, types.Field{Name: fmt.Sprintf("#a%d_%d", i, j), Kind: arg.Kind()})
			reboundAggs[i].Args = append(reboundAggs[i].Args,
				expr.NewCol(col, arg.Kind(), preFields[col].Name))
		}
	}
	proj := p.Add(&exec.OpSpec{
		Kind: exec.OpProject, Inputs: []int{cur},
		Exprs: preExprs, Out: &types.Schema{Fields: preFields},
	})
	cur = proj.ID
	keyIdx := make([]int, len(groupExprs))
	for i := range keyIdx {
		keyIdx[i] = i
	}

	// Pre-aggregation pushdown (§5.2): composable built-ins only, when
	// the model predicts the data collapses. avg decomposes into
	// sum/count at the physical level, so it is excluded here.
	preAggOK := true
	for _, as := range reboundAggs {
		if as.Fn == "avg" || as.Fn == "average" || as.Fn == "argmin" {
			preAggOK = false
		}
	}
	tabRows := 1e6
	if preAggOK && !b.inRecursive && b.model.PreAggDecision(tabRows, 1000, true) {
		pre := p.Add(&exec.OpSpec{
			Kind: exec.OpPreAgg, Inputs: []int{cur}, GroupKey: keyIdx, Aggs: reboundAggs,
		})
		cur = pre.ID
		// Downstream count must fold partial counts, which arrive as a
		// value column after the keys.
		rb := make([]exec.AggSpec, len(reboundAggs))
		copy(rb, reboundAggs)
		for i := range rb {
			col := len(keyIdx) + i
			kind := rb[i].OutKind
			rb[i].Args = []expr.Expr{expr.NewCol(col, kind, rb[i].OutName)}
		}
		reboundAggs = rb
	}

	rehash := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{cur}, HashKey: keyIdx})
	gby := p.Add(&exec.OpSpec{
		Kind: exec.OpGroupBy, Inputs: []int{rehash.ID}, GroupKey: keyIdx, Aggs: reboundAggs,
	})

	// Final projection over [groupKeys..., aggResults...].
	gbyFields := append([]types.Field{}, groupFields...)
	for _, as := range reboundAggs {
		gbyFields = append(gbyFields, types.Field{Name: as.OutName, Kind: as.OutKind})
	}
	gbySchema := &types.Schema{Fields: gbyFields}
	// Make #aggN names resolvable.
	for i := range reboundAggs {
		gbySchema.Fields[len(groupFields)+i].Name = fmt.Sprintf("#agg%d", i)
	}
	exprs, outSchema, err := b.bindProjection(finalItems, gbySchema)
	if err != nil {
		return 0, nil, err
	}
	final := p.Add(&exec.OpSpec{Kind: exec.OpProject, Inputs: []int{gby.ID}, Exprs: exprs, Out: outSchema})
	return final.ID, outSchema, nil
}

func (b *binder) bindProjection(items []SelectItem, schema *types.Schema) ([]expr.Expr, *types.Schema, error) {
	var exprs []expr.Expr
	out := &types.Schema{}
	for i, item := range items {
		if item.Star {
			for c, f := range schema.Fields {
				exprs = append(exprs, expr.NewCol(c, f.Kind, f.Name))
				out.Fields = append(out.Fields, f)
			}
			continue
		}
		e, err := b.bindExpr(item.Expr, schema)
		if err != nil {
			return nil, nil, err
		}
		name := item.Alias
		if name == "" {
			if id, ok := item.Expr.(*Ident); ok {
				name = id.Name
			} else {
				name = fmt.Sprintf("col%d", i)
			}
		}
		exprs = append(exprs, e)
		out.Fields = append(out.Fields, types.Field{Name: name, Kind: e.Kind()})
	}
	return exprs, out, nil
}

// bindExpr binds and typechecks an AST expression against a schema.
func (b *binder) bindExpr(e Expr, schema *types.Schema) (expr.Expr, error) {
	switch v := e.(type) {
	case *Ident:
		idx := schema.ColIndex(v.Name)
		if idx < 0 {
			return nil, fmt.Errorf("rql: unknown column %q in %s", v.Name, schema)
		}
		return expr.NewCol(idx, schema.Fields[idx].Kind, v.Name), nil
	case *NumberLit:
		if v.IsInt {
			n, err := strconv.ParseInt(v.Text, 10, 64)
			if err != nil {
				return nil, err
			}
			return expr.NewConst(n), nil
		}
		f, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return nil, err
		}
		return expr.NewConst(f), nil
	case *StringLit:
		return expr.NewConst(v.Val), nil
	case *BoolLit:
		return expr.NewConst(v.Val), nil
	case *ParamRef:
		return b.paramExpr(v.N), nil
	case *NotExpr:
		inner, err := b.bindExpr(v.E, schema)
		if err != nil {
			return nil, err
		}
		if inner.Kind() != types.KindBool {
			return nil, fmt.Errorf("rql: NOT requires a boolean, got %v", inner.Kind())
		}
		return expr.NewNot(inner), nil
	case *BinExpr:
		l, err := b.bindExpr(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(v.R, schema)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "+", "-", "*", "/", "%":
			// A parameter's kind is inferred from its partner operand;
			// two parameters (or a parameter alone, via unary minus
			// rewriting) default to float.
			adoptParamKind(l, r.Kind())
			adoptParamKind(r, l.Kind())
			adoptParamKind(l, types.KindFloat)
			adoptParamKind(r, types.KindFloat)
			for _, side := range []expr.Expr{l, r} {
				if k := side.Kind(); k != types.KindInt && k != types.KindFloat {
					return nil, fmt.Errorf("rql: arithmetic over non-numeric %v", k)
				}
			}
			ops := map[string]expr.ArithOp{"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv, "%": expr.OpMod}
			return expr.NewArith(ops[v.Op], l, r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			adoptParamKind(l, r.Kind())
			adoptParamKind(r, l.Kind())
			adoptParamKind(l, types.KindFloat)
			adoptParamKind(r, types.KindFloat)
			lk, rk := l.Kind(), r.Kind()
			numeric := func(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }
			if lk != rk && !(numeric(lk) && numeric(rk)) {
				return nil, fmt.Errorf("rql: cannot compare %v with %v", lk, rk)
			}
			ops := map[string]expr.CmpOp{"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe}
			return expr.NewCmp(ops[v.Op], l, r), nil
		case "AND", "OR":
			adoptParamKind(l, types.KindBool)
			adoptParamKind(r, types.KindBool)
			if l.Kind() != types.KindBool || r.Kind() != types.KindBool {
				return nil, fmt.Errorf("rql: %s requires booleans", v.Op)
			}
			op := expr.OpAnd
			if v.Op == "OR" {
				op = expr.OpOr
			}
			return expr.NewLogic(op, l, r), nil
		}
		return nil, fmt.Errorf("rql: unknown operator %q", v.Op)
	case *CallExpr:
		def, err := b.cat.Func(v.Fn)
		if err != nil {
			return nil, fmt.Errorf("rql: %w (aggregates are only valid in GROUP BY selects)", err)
		}
		if len(def.ArgKinds) > 0 && len(def.ArgKinds) != len(v.Args) {
			return nil, fmt.Errorf("rql: %s expects %d args, got %d", v.Fn, len(def.ArgKinds), len(v.Args))
		}
		var args []expr.Expr
		for i, a := range v.Args {
			ba, err := b.bindExpr(a, schema)
			if err != nil {
				return nil, err
			}
			if len(def.ArgKinds) > i {
				adoptParamKind(ba, def.ArgKinds[i])
			}
			if len(def.ArgKinds) > i && ba.Kind() != def.ArgKinds[i] && def.ArgKinds[i] != types.KindNull {
				return nil, fmt.Errorf("rql: %s arg %d: got %v, want %v", v.Fn, i, ba.Kind(), def.ArgKinds[i])
			}
			args = append(args, ba)
		}
		return expr.NewCall(def.Name, def.Fn, def.RetKind, def.Deterministic, args...), nil
	}
	return nil, fmt.Errorf("rql: cannot bind %T", e)
}

func (b *binder) predInfo(e Expr) plan.PredInfo {
	info := plan.PredInfo{CostPerTuple: 0.1, Selectivity: 0.33}
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *CallExpr:
			if def, err := b.cat.Func(v.Fn); err == nil {
				info.Name = def.Name
				info.CostPerTuple = def.CostPerTuple
				info.Selectivity = def.Selectivity
			}
		case *BinExpr:
			walk(v.L)
			walk(v.R)
		case *NotExpr:
			walk(v.E)
		}
	}
	walk(e)
	return info
}

func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

func hasAggregate(s *SelectStmt) bool {
	var found bool
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *CallExpr:
			if aggNames[strings.ToLower(v.Fn)] {
				found = true
			}
			for _, a := range v.Args {
				walk(a)
			}
		case *BinExpr:
			walk(v.L)
			walk(v.R)
		case *NotExpr:
			walk(v.E)
		}
	}
	for _, it := range s.Items {
		if it.Expr != nil {
			walk(it.Expr)
		}
	}
	return found
}

func exprString(e Expr) string {
	switch v := e.(type) {
	case *Ident:
		return v.Name
	case *NumberLit:
		return v.Text
	case *StringLit:
		return "'" + v.Val + "'"
	case *BoolLit:
		return fmt.Sprint(v.Val)
	case *BinExpr:
		return "(" + exprString(v.L) + v.Op + exprString(v.R) + ")"
	case *NotExpr:
		return "NOT " + exprString(v.E)
	case *ParamRef:
		return fmt.Sprintf("$%d", v.N)
	case *CallExpr:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = exprString(a)
		}
		if v.Star {
			parts = []string{"*"}
		}
		return v.Fn + "(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}
