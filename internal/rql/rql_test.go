package rql

import (
	"math"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/types"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, 1.5 -- comment\n FROM t WHERE x >= 'hi'")
	must(t, err)
	kinds := []tokKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatal("keyword")
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokSymbol && tk.text == ">=" {
			found = true
		}
	}
	if !found {
		t.Fatal(">= must lex as one token")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad char must fail")
	}
	_ = kinds
}

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1")
	must(t, err)
	if q.With != nil || len(q.Select.Items) != 2 {
		t.Fatalf("parse: %+v", q)
	}
	call := q.Select.Items[1].Expr.(*CallExpr)
	if !call.Star || call.Fn != "count" {
		t.Fatal("count(*) parse")
	}
	if q.Select.Where == nil {
		t.Fatal("where lost")
	}
}

func TestParseRecursive(t *testing.T) {
	src := `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING pr_while (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`
	q, err := Parse(src)
	must(t, err)
	w := q.With
	if w == nil || w.Name != "PR" || w.FixpointKey != "srcId" || w.WhileHandler != "pr_while" {
		t.Fatalf("with clause: %+v", w)
	}
	if len(w.Cols) != 2 || w.UnionAll {
		t.Fatalf("cols/union: %+v", w)
	}
	inner := w.Recursive.From[0].Sub
	if inner == nil || len(inner.Items[0].HandlerOuts) != 2 {
		t.Fatalf("handler outs: %+v", inner)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"WITH R AS (SELECT a FROM t) SELECT b FROM R",
		"SELECT a FROM t GROUP",
		"SELECT 1.{x} FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func tpchCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name:         "lineitem",
		Schema:       types.MustSchema(datagen.LineItemSchema...),
		PartitionKey: 0,
		Stats:        catalog.TableStats{RowCount: 10000, DistinctKeys: 3000, AvgTupleBytes: 48},
	}))
	return cat
}

func TestCompileAndRunTPCHAggregation(t *testing.T) {
	cat := tpchCatalog(t)
	eng := exec.NewEngine(3, 32, 2, cat)
	rows := datagen.LineItems(5000, 7)
	must(t, eng.Load("lineitem", 0, rows))

	spec, err := Compile("SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1", cat, 3)
	must(t, err)
	res, err := eng.Run(spec, exec.Options{})
	must(t, err)
	if len(res.Tuples) != 1 {
		t.Fatalf("rows = %v", res.Tuples)
	}
	wantSum, wantCount := 0.0, int64(0)
	for _, r := range rows {
		ln, _ := types.AsInt(r[1])
		if ln > 1 {
			tax, _ := types.AsFloat(r[5])
			wantSum += tax
			wantCount++
		}
	}
	gotSum, _ := types.AsFloat(res.Tuples[0][0])
	gotCount, _ := types.AsInt(res.Tuples[0][1])
	if math.Abs(gotSum-wantSum) > 1e-6 || gotCount != wantCount {
		t.Fatalf("sum=%v count=%v, want %v %v", gotSum, gotCount, wantSum, wantCount)
	}
}

func TestCompileGroupByQuery(t *testing.T) {
	cat := tpchCatalog(t)
	eng := exec.NewEngine(2, 32, 2, cat)
	rows := datagen.LineItems(2000, 9)
	must(t, eng.Load("lineitem", 0, rows))
	spec, err := Compile("SELECT returnflag, avg(quantity), count(*) FROM lineitem GROUP BY returnflag", cat, 2)
	must(t, err)
	res, err := eng.Run(spec, exec.Options{})
	must(t, err)
	if len(res.Tuples) != 3 { // flags A, N, R
		t.Fatalf("groups = %d: %v", len(res.Tuples), res.Tuples)
	}
	want := map[string][2]float64{}
	for _, r := range rows {
		f := r[6].(string)
		q, _ := types.AsFloat(r[2])
		e := want[f]
		want[f] = [2]float64{e[0] + q, e[1] + 1}
	}
	for _, tup := range res.Tuples {
		f := tup[0].(string)
		avg, _ := types.AsFloat(tup[1])
		n, _ := types.AsInt(tup[2])
		if int64(want[f][1]) != n || math.Abs(avg-want[f][0]/want[f][1]) > 1e-9 {
			t.Fatalf("group %s: avg=%v n=%v, want %v", f, avg, n, want[f])
		}
	}
}

// TestCompilePageRankRQL runs the full Listing 1 query through the RQL
// front end and validates the ranks against the reference.
func TestCompilePageRankRQL(t *testing.T) {
	g := datagen.DBPediaGraph(250, 15)
	want, _ := algos.PageRankRef(g, 1e-6, 150)

	cat := catalog.New()
	must(t, cat.AddTable(&catalog.Table{
		Name: "graph", Schema: types.MustSchema("srcId:Integer", "destId:Integer"), PartitionKey: 0,
	}))
	cfg := algos.PageRankConfig{Epsilon: 1e-4, Delta: true}
	jn, wn, err := algos.RegisterPageRank(cat, cfg)
	must(t, err)

	src := `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + wn + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + jn + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`
	spec, err := Compile(src, cat, 3)
	must(t, err)

	eng := exec.NewEngine(3, 32, 2, cat)
	must(t, eng.Load("graph", 0, g.Edges))
	res, err := eng.Run(spec, exec.Options{MaxStrata: 200})
	must(t, err)
	if len(res.Tuples) != g.NumVertices {
		t.Fatalf("got %d vertices, want %d", len(res.Tuples), g.NumVertices)
	}
	for _, tup := range res.Tuples {
		id, _ := types.AsInt(tup[0])
		pr, _ := types.AsFloat(tup[1])
		if math.Abs(pr-want[id]) > 0.05*math.Max(want[id], 1) {
			t.Fatalf("pr[%d] = %v, want %v", id, pr, want[id])
		}
	}
}

func TestCompileTypeErrors(t *testing.T) {
	cat := tpchCatalog(t)
	bad := []string{
		"SELECT nosuch FROM lineitem",
		"SELECT tax FROM nosuchtable",
		"SELECT sum(tax) FROM lineitem WHERE returnflag > 1", // string vs int comparison
		"SELECT tax + returnflag FROM lineitem",              // arithmetic over string
		"SELECT sum(tax) FROM lineitem WHERE tax + 1",        // non-boolean predicate
		"SELECT sum(tax) FROM lineitem GROUP BY nosuch",      // unknown group col
		"SELECT nosuchfunc(tax) FROM lineitem",               // unknown function
		"SELECT returnflag FROM lineitem WHERE NOT quantity", // NOT non-bool
	}
	for _, src := range bad {
		if _, err := Compile(src, cat, 2); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestCompileUDFRankOrdering(t *testing.T) {
	cat := tpchCatalog(t)
	must(t, cat.RegisterFunc(&catalog.FuncDef{
		Name:     "expensive",
		ArgKinds: []types.Kind{types.KindFloat},
		RetKind:  types.KindBool,
		Fn: func(args []types.Value) (types.Value, error) {
			f, _ := types.AsFloat(args[0])
			return f > 0.01, nil
		},
		CostPerTuple: 100,
		Selectivity:  0.9,
	}))
	spec, err := Compile(
		"SELECT sum(tax) FROM lineitem WHERE expensive(tax) AND linenumber > 1", cat, 2)
	must(t, err)
	// The cheap built-in predicate must be ordered before the expensive
	// UDF (§5.1 rank ordering).
	var filterPreds []string
	for _, op := range spec.Ops {
		if op.Kind == exec.OpFilter {
			filterPreds = append(filterPreds, op.Pred.String())
		}
	}
	if len(filterPreds) != 2 {
		t.Fatalf("filters = %v", filterPreds)
	}
	if filterPreds[0] == "expensive(tax)" {
		t.Fatalf("expensive UDF must be applied last: %v", filterPreds)
	}
}
