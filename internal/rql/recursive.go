package rql

import (
	"fmt"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/types"
)

// bindRecursive compiles the `WITH R AS (base) UNION [ALL] UNTIL FIXPOINT
// BY key [USING handler] (recursive)` form into the fixpoint plan of
// Figure 1. The recursive case follows the shape of Listings 1–3: a
// nested sub-query applying a join-state delta handler to the immutable
// relation and R, then an outer aggregation redistributing the emitted
// deltas.
func (b *binder) bindRecursive(p *exec.PlanSpec, w *WithClause) error {
	// 1. Base case.
	baseRoot, baseSchema, err := b.bindSelect(p, w.Base)
	if err != nil {
		return fmt.Errorf("rql: base case: %w", err)
	}
	relSchema := baseSchema
	if len(w.Cols) > 0 {
		if len(w.Cols) != baseSchema.Len() {
			return fmt.Errorf("rql: WITH %s declares %d columns, base case yields %d",
				w.Name, len(w.Cols), baseSchema.Len())
		}
		relSchema = &types.Schema{}
		for i, c := range w.Cols {
			relSchema.Fields = append(relSchema.Fields, types.Field{Name: c, Kind: baseSchema.Fields[i].Kind})
		}
	}
	keyIdx := relSchema.ColIndex(w.FixpointKey)
	if keyIdx < 0 {
		return fmt.Errorf("rql: FIXPOINT BY %s is not a column of %s%s", w.FixpointKey, w.Name, relSchema)
	}

	// 2. Fixpoint operator.
	fix := p.Add(&exec.OpSpec{
		Kind: exec.OpFixpoint, FixpointKey: []int{keyIdx},
		WhileHandlerName: w.WhileHandler, Out: relSchema,
	})

	// 3. Recursive case: outer select over a handler sub-query.
	rec := w.Recursive
	if len(rec.From) != 1 || rec.From[0].Sub == nil {
		return fmt.Errorf("rql: the recursive case must select from a handler sub-query (Listing 1 shape)")
	}
	inner := rec.From[0].Sub
	joinID, innerSchema, err := b.bindHandlerJoin(p, inner, w, fix.ID, relSchema)
	if err != nil {
		return err
	}

	// 4. Outer aggregation and projection feed the fixpoint.
	b.inRecursive = true
	outerRoot, _, err := b.bindAggregate(p, rec, joinID, innerSchema)
	b.inRecursive = false
	if err != nil {
		return fmt.Errorf("rql: recursive case: %w", err)
	}

	fix.Inputs = []int{baseRoot, outerRoot}
	fix.RecursiveOut = joinID
	p.RootID = fix.ID
	return nil
}

// bindHandlerJoin compiles the inner sub-query
//
//	SELECT Handler(args).{outs} FROM immutable, R WHERE a.k = R.k GROUP BY k
//
// into a handler-equipped hash join between the immutable scan and the
// fixpoint's recursive feed.
func (b *binder) bindHandlerJoin(p *exec.PlanSpec, inner *SelectStmt, w *WithClause, fixID int, relSchema *types.Schema) (int, *types.Schema, error) {
	if len(inner.Items) != 1 || len(inner.Items[0].HandlerOuts) == 0 {
		return 0, nil, fmt.Errorf("rql: handler sub-query must select exactly one Handler(args).{outs} item")
	}
	call, ok := inner.Items[0].Expr.(*CallExpr)
	if !ok {
		return 0, nil, fmt.Errorf("rql: handler sub-query item must be a handler invocation")
	}
	handler, err := b.cat.JoinHandler(call.Fn)
	if err != nil {
		return 0, nil, err
	}
	if len(inner.From) != 2 {
		return 0, nil, fmt.Errorf("rql: handler sub-query must join two relations")
	}
	// Identify which FROM item is the recursive relation R.
	var immutable *FromItem
	recursivePos := -1
	for i := range inner.From {
		if inner.From[i].Table == w.Name {
			recursivePos = i
		} else {
			immutable = &inner.From[i]
		}
	}
	if recursivePos < 0 || immutable == nil {
		return 0, nil, fmt.Errorf("rql: handler sub-query must join the recursive relation %s with a base relation", w.Name)
	}
	scanID, immSchema, err := b.bindFrom(p, immutable)
	if err != nil {
		return 0, nil, err
	}

	// Join keys from the WHERE equi-condition.
	cond, ok := inner.Where.(*BinExpr)
	if !ok || cond.Op != "=" {
		return 0, nil, fmt.Errorf("rql: handler sub-query needs an equi-join WHERE condition")
	}
	lhs, lok := cond.L.(*Ident)
	rhs, rok := cond.R.(*Ident)
	if !lok || !rok {
		return 0, nil, fmt.Errorf("rql: join condition must compare columns")
	}
	resolve := func(name string) (immCol, relCol int) {
		return immSchema.ColIndex(name), relSchema.ColIndex(name)
	}
	li, lr := resolve(lhs.Name)
	ri, rr := resolve(rhs.Name)
	var leftKey, rightKey int
	switch {
	case li >= 0 && rr >= 0:
		leftKey, rightKey = li, rr
	case ri >= 0 && lr >= 0:
		leftKey, rightKey = ri, lr
	default:
		return 0, nil, fmt.Errorf("rql: join condition %s = %s does not span both relations", lhs.Name, rhs.Name)
	}

	outSchema := handler.OutSchema()
	if len(inner.Items[0].HandlerOuts) != outSchema.Len() {
		return 0, nil, fmt.Errorf("rql: handler %s yields %d outputs, query destructures %d",
			call.Fn, outSchema.Len(), len(inner.Items[0].HandlerOuts))
	}
	named := &types.Schema{}
	for i, n := range inner.Items[0].HandlerOuts {
		named.Fields = append(named.Fields, types.Field{Name: n, Kind: outSchema.Fields[i].Kind})
	}

	join := p.Add(&exec.OpSpec{
		Kind: exec.OpHashJoin, Inputs: []int{scanID, fixID},
		LeftKey: []int{leftKey}, RightKey: []int{rightKey},
		JoinHandlerName: call.Fn, ImmutablePort: 0, Out: named,
	})
	return join.ID, named, nil
}
