package rql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/rex-data/rex/internal/types"
)

// BindText substitutes literal renderings of args for the $N placeholders
// in src, returning parameter-free RQL. It is the prepared-statement path
// for multi-process sessions, where plans cannot ship across the wire and
// every process recompiles the query text from the job spec: the driver
// binds values into the text once per execution and the daemons parse the
// same literals. Placeholders must be numbered contiguously from $1.
func BindText(src string, args []types.Value) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	var params []token
	seen := map[int]bool{}
	maxN := 0
	for _, t := range toks {
		if t.kind != tokParam {
			continue
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return "", fmt.Errorf("rql: bad parameter $%s", t.text)
		}
		params = append(params, t)
		seen[n] = true
		if n > maxN {
			maxN = n
		}
	}
	if maxN != len(args) || len(seen) != maxN {
		return "", fmt.Errorf("rql: statement wants %d contiguous parameter(s), got %d value(s)", maxN, len(args))
	}
	lits := make([]string, maxN)
	for i, a := range args {
		lit, err := renderLiteral(a)
		if err != nil {
			return "", fmt.Errorf("rql: parameter $%d: %w", i+1, err)
		}
		lits[i] = lit
	}
	// Rewrite back to front so earlier token positions stay valid.
	sort.Slice(params, func(i, j int) bool { return params[i].pos > params[j].pos })
	out := src
	for _, t := range params {
		n, _ := strconv.Atoi(t.text)
		end := t.pos + 1 + len(t.text) // "$" + digits
		out = out[:t.pos] + lits[n-1] + out[end:]
	}
	return out, nil
}

// renderLiteral formats a value as RQL literal text that lexes back to the
// same value.
func renderLiteral(v types.Value) (string, error) {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10), nil
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "", fmt.Errorf("value %v has no RQL literal form", x)
		}
		s := strconv.FormatFloat(x, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0" // keep the float kind through the lexer
		}
		return s, nil
	case bool:
		if x {
			return "TRUE", nil
		}
		return "FALSE", nil
	case string:
		// '' is the lexer's escape for a quote inside a string literal.
		return "'" + strings.ReplaceAll(x, "'", "''") + "'", nil
	default:
		return "", fmt.Errorf("unsupported parameter type %T", v)
	}
}
