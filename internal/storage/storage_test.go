package storage

import (
	"testing"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

func loadedStores(t *testing.T, n, replication, rows int) (*cluster.Ring, []*Store) {
	t.Helper()
	ring := cluster.NewRing(n, 64, replication)
	stores := make([]*Store, n)
	for i := range stores {
		stores[i] = NewStore(cluster.NodeID(i))
	}
	tuples := make([]types.Tuple, rows)
	for i := range tuples {
		tuples[i] = types.NewTuple(int64(i), int64(i*i))
	}
	l := &Loader{Ring: ring, Stores: stores}
	if err := l.Load("edges", 0, tuples); err != nil {
		t.Fatal(err)
	}
	return ring, stores
}

func TestLoadAndScanOwnedPartitionsDisjointAndComplete(t *testing.T) {
	ring, stores := loadedStores(t, 4, 2, 500)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	seen := map[int64]int{}
	total := 0
	for _, s := range stores {
		err := s.ScanOwned("edges", snap, func(tp types.Tuple) error {
			seen[tp[0].(int64)]++
			total++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 500 {
		t.Fatalf("scanned %d tuples, want 500", total)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d scanned %d times (partitions overlap)", k, c)
		}
	}
	// Each tuple has 2 local copies total across the cluster.
	copies := 0
	for _, s := range stores {
		copies += s.CountLocal("edges")
	}
	if copies != 1000 {
		t.Fatalf("replica copies = %d, want 1000", copies)
	}
}

func TestScanOwnedAfterFailureCoversFailedRange(t *testing.T) {
	ring, stores := loadedStores(t, 4, 2, 400)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	// Kill node 2: the survivors' primary ranges must still cover all keys.
	snap2 := snap.Without(2)
	seen := map[int64]bool{}
	for _, s := range stores {
		if s.Node() == 2 {
			continue
		}
		err := s.ScanOwned("edges", snap2, func(tp types.Tuple) error {
			k := tp[0].(int64)
			if seen[k] {
				t.Fatalf("key %d owned twice after failover", k)
			}
			seen[k] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 400 {
		t.Fatalf("after failover only %d/400 keys covered", len(seen))
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore(0)
	if err := s.Insert("nope", types.NewTuple(int64(1))); err == nil {
		t.Fatal("insert into unknown table must fail")
	}
	ring := cluster.NewRing(1, 8, 1)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	if err := s.ScanOwned("nope", snap, nil); err == nil {
		t.Fatal("scan of unknown table must fail")
	}
	s.CreateTable("t", 0)
	s.CreateTable("t", 0) // idempotent
	if got := s.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
	if s.CountLocal("missing") != 0 {
		t.Fatal("missing table count")
	}
	if n, err := s.CountOwned("t", snap); err != nil || n != 0 {
		t.Fatal("empty count")
	}
}

func TestCheckpointRestoreByOwnership(t *testing.T) {
	ring := cluster.NewRing(3, 64, 2)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	cs := NewCheckpointStore()

	// Checkpoint tuples for strata 0..2 with key hashes.
	var hashes []uint64
	var tuples []types.Tuple
	for k := int64(0); k < 30; k++ {
		hashes = append(hashes, types.HashValue(k))
		tuples = append(tuples, types.NewTuple(k, float64(k)))
	}
	for stratum := 0; stratum <= 2; stratum++ {
		cs.Put("q1", 5, stratum, hashes, tuples)
	}
	if cs.LastStratum("q1", 5) != 2 {
		t.Fatalf("last stratum = %d", cs.LastStratum("q1", 5))
	}
	if cs.LastStratum("q1", 99) != -1 {
		t.Fatal("unknown op must be -1")
	}

	// Node 0 dies; node 1 restores the entries it now owns.
	snap2 := snap.Without(0)
	restored := cs.Restore("q1", 5, 2, 1, snap2)
	if len(restored) != 3 {
		t.Fatalf("restored strata = %d", len(restored))
	}
	count := 0
	for _, stratum := range restored {
		for _, tp := range stratum {
			p, err := snap2.Primary(types.HashValue(tp[0]))
			if err != nil || p != 1 {
				t.Fatalf("restored tuple %v not owned by node 1", tp)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("node 1 should own some failed keys")
	}
	if cs.Size("q1") == 0 {
		t.Fatal("size should be positive")
	}
	cs.Drop("q1")
	if cs.Size("q1") != 0 {
		t.Fatal("drop should clear")
	}
}
