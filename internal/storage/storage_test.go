package storage

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

func loadedStores(t *testing.T, n, replication, rows int) (*cluster.Ring, []*Store) {
	t.Helper()
	ring := cluster.NewRing(n, 64, replication)
	stores := make([]*Store, n)
	for i := range stores {
		stores[i] = NewStore(cluster.NodeID(i))
	}
	tuples := make([]types.Tuple, rows)
	for i := range tuples {
		tuples[i] = types.NewTuple(int64(i), int64(i*i))
	}
	l := &Loader{Ring: ring, Stores: asBackends(stores)}
	if err := l.Load("edges", 0, tuples); err != nil {
		t.Fatal(err)
	}
	return ring, stores
}

func asBackends(stores []*Store) []Backend {
	out := make([]Backend, len(stores))
	for i, s := range stores {
		out[i] = s
	}
	return out
}

// The Loader's bulk paths are retention boundaries: once stores can spill
// to disk and outlive a round, a tuple the caller later mutates must not
// change stored state. Load and Apply therefore clone before retaining.
func TestLoaderDoesNotAliasCallerTuples(t *testing.T) {
	ring := cluster.NewRing(2, 32, 2)
	stores := []*Store{NewStore(0), NewStore(1)}
	l := &Loader{Ring: ring, Stores: asBackends(stores)}

	tuples := []types.Tuple{types.NewTuple(int64(1), "alpha"), types.NewTuple(int64(2), "beta")}
	if err := l.Load("t", 0, tuples); err != nil {
		t.Fatal(err)
	}
	deltas := []types.Delta{types.Insert(types.NewTuple(int64(3), "gamma"))}
	if err := l.Apply("t", 0, deltas); err != nil {
		t.Fatal(err)
	}
	// Caller reuses its buffers.
	for _, tp := range tuples {
		tp[0], tp[1] = int64(-9), "clobbered"
	}
	deltas[0].Tup[1] = "clobbered"

	snap := cluster.NewSnapshot(ring, ring.Nodes())
	want := map[int64]string{1: "alpha", 2: "beta", 3: "gamma"}
	seen := 0
	for _, s := range stores {
		err := s.ScanOwned("t", snap, func(tp types.Tuple) error {
			seen++
			k := tp[0].(int64)
			if want[k] != tp[1].(string) {
				t.Fatalf("stored tuple %v aliased a caller buffer", tp)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if seen != len(want) {
		t.Fatalf("scanned %d tuples, want %d", seen, len(want))
	}
}

func TestLoadAndScanOwnedPartitionsDisjointAndComplete(t *testing.T) {
	ring, stores := loadedStores(t, 4, 2, 500)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	seen := map[int64]int{}
	total := 0
	for _, s := range stores {
		err := s.ScanOwned("edges", snap, func(tp types.Tuple) error {
			seen[tp[0].(int64)]++
			total++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 500 {
		t.Fatalf("scanned %d tuples, want 500", total)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d scanned %d times (partitions overlap)", k, c)
		}
	}
	// Each tuple has 2 local copies total across the cluster.
	copies := 0
	for _, s := range stores {
		copies += s.CountLocal("edges")
	}
	if copies != 1000 {
		t.Fatalf("replica copies = %d, want 1000", copies)
	}
}

func TestScanOwnedAfterFailureCoversFailedRange(t *testing.T) {
	ring, stores := loadedStores(t, 4, 2, 400)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	// Kill node 2: the survivors' primary ranges must still cover all keys.
	snap2 := snap.Without(2)
	seen := map[int64]bool{}
	for _, s := range stores {
		if s.Node() == 2 {
			continue
		}
		err := s.ScanOwned("edges", snap2, func(tp types.Tuple) error {
			k := tp[0].(int64)
			if seen[k] {
				t.Fatalf("key %d owned twice after failover", k)
			}
			seen[k] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 400 {
		t.Fatalf("after failover only %d/400 keys covered", len(seen))
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore(0)
	if err := s.Insert("nope", types.NewTuple(int64(1))); err == nil {
		t.Fatal("insert into unknown table must fail")
	}
	ring := cluster.NewRing(1, 8, 1)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	if err := s.ScanOwned("nope", snap, nil); err == nil {
		t.Fatal("scan of unknown table must fail")
	}
	s.CreateTable("t", 0)
	s.CreateTable("t", 0) // idempotent
	if got := s.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
	if s.CountLocal("missing") != 0 {
		t.Fatal("missing table count")
	}
	if n, err := s.CountOwned("t", snap); err != nil || n != 0 {
		t.Fatal("empty count")
	}
}

func TestCheckpointRestoreByOwnership(t *testing.T) {
	ring := cluster.NewRing(3, 64, 2)
	snap := cluster.NewSnapshot(ring, ring.Nodes())
	cs := NewCheckpointStore()

	// Checkpoint tuples for strata 0..2 with key hashes.
	var hashes []uint64
	var tuples []types.Tuple
	for k := int64(0); k < 30; k++ {
		hashes = append(hashes, types.HashValue(k))
		tuples = append(tuples, types.NewTuple(k, float64(k)))
	}
	for stratum := 0; stratum <= 2; stratum++ {
		cs.Put("q1", 5, stratum, hashes, tuples)
	}
	if cs.LastStratum("q1", 5) != 2 {
		t.Fatalf("last stratum = %d", cs.LastStratum("q1", 5))
	}
	if cs.LastStratum("q1", 99) != -1 {
		t.Fatal("unknown op must be -1")
	}

	// Node 0 dies; node 1 restores the entries it now owns.
	snap2 := snap.Without(0)
	restored := cs.Restore("q1", 5, 2, 1, snap2)
	if len(restored) != 3 {
		t.Fatalf("restored strata = %d", len(restored))
	}
	count := 0
	for _, stratum := range restored {
		for _, tp := range stratum {
			p, err := snap2.Primary(types.HashValue(tp[0]))
			if err != nil || p != 1 {
				t.Fatalf("restored tuple %v not owned by node 1", tp)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("node 1 should own some failed keys")
	}
	if cs.Size("q1") == 0 {
		t.Fatal("size should be positive")
	}
	cs.Drop("q1")
	if cs.Size("q1") != 0 {
		t.Fatal("drop should clear")
	}
}

// TestCheckpointFileBacked: a file-backed checkpoint store replays its
// log on reopen — Put entries, tombstones, and compaction all survive —
// and a torn tail (crash mid-append) is discarded, not fatal.
func TestCheckpointFileBacked(t *testing.T) {
	dir := t.TempDir()
	ring := cluster.NewRing(2, 64, 2)
	snap := cluster.NewSnapshot(ring, ring.Nodes())

	var hashes []uint64
	var tuples []types.Tuple
	for k := int64(0); k < 20; k++ {
		hashes = append(hashes, types.HashValue(k))
		tuples = append(tuples, types.NewTuple(k, float64(k)))
	}

	cs := NewCheckpointStore()
	if err := cs.UseDir(dir); err != nil {
		t.Fatal(err)
	}
	for stratum := 0; stratum <= 3; stratum++ {
		cs.Put("q1", 5, stratum, hashes, tuples)
	}
	cs.Put("q2", 1, 0, hashes[:3], tuples[:3])
	cs.DropAbove("q1", 2) // tombstone must persist too
	wantSize := cs.Size("q1")
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the replayed store answers like the live one did.
	re := NewCheckpointStore()
	if err := re.UseDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := re.LastStratum("q1", 5); got != 2 {
		t.Fatalf("replayed last stratum = %d, want 2", got)
	}
	if got := re.Size("q1"); got != wantSize {
		t.Fatalf("replayed size = %d, want %d", got, wantSize)
	}
	if got := re.Size("q2"); got != 3 {
		t.Fatalf("replayed q2 size = %d, want 3", got)
	}
	// Restored tuples round-trip the codec intact.
	restored := re.Restore("q1", 5, 2, 0, snap)
	found := 0
	for _, stratum := range restored {
		for _, tp := range stratum {
			if len(tp) != 2 {
				t.Fatalf("replayed tuple %v lost fields", tp)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("node 0 restored nothing")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Drop churn crosses the compaction threshold; state must survive the
	// rewrite and the next reopen.
	cw := NewCheckpointStore()
	if err := cw.UseDir(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ckptCompactAfter+5; i++ {
		cw.Drop("ephemeral")
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	post := NewCheckpointStore()
	if err := post.UseDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := post.Size("q1"); got != wantSize {
		t.Fatalf("post-compaction size = %d, want %d", got, wantSize)
	}
	if err := post.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: append garbage past the last valid frame; replay must
	// stop there instead of erroring or importing junk.
	path := filepath.Join(dir, ckptLogName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn := NewCheckpointStore()
	if err := torn.UseDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := torn.Size("q1"); got != wantSize {
		t.Fatalf("torn-tail size = %d, want %d", got, wantSize)
	}
	torn.Close()
}
