package storage

import (
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// Backend is the storage surface the executor runs against: the in-memory
// Store implements it, and so does the paged, spill-to-disk store in
// internal/pagestore. Workers, the standing-query pump, and the Loader
// only ever see this interface, so a node's storage can live entirely in
// RAM or behind a buffer pool transparently.
type Backend interface {
	// Node reports the owning node.
	Node() cluster.NodeID
	// CreateTable declares a local table partitioned by keyCol (idempotent).
	CreateTable(name string, keyCol int)
	// Insert stores a tuple copy locally (callers decide replica placement).
	Insert(table string, t types.Tuple) error
	// Delete removes one stored copy equal to t, reporting whether a copy
	// was found.
	Delete(table string, t types.Tuple) bool
	// ApplyDelta applies one base-table change to this node's local copies.
	ApplyDelta(table string, d types.Delta) error
	// ScanOwned streams the tuples this node primarily owns under snap.
	ScanOwned(table string, snap *cluster.Snapshot, emit func(types.Tuple) error) error
	// CountOwned reports how many tuples this node primarily owns under snap.
	CountOwned(table string, snap *cluster.Snapshot) (int, error)
	// CountLocal reports all local copies (primary + replica) of a table.
	CountLocal(table string) int
	// Tables lists local table names, sorted.
	Tables() []string
}

// Durable is the optional capability set of a backend whose state survives
// process death. The standing-query commit protocol discovers it by type
// assertion: a worker over a Durable backend fsyncs a round-commit mark
// when the pump's MsgCommit barrier lands, and a respawned node reopens
// from its checkpoint image plus the write-ahead log's committed prefix.
type Durable interface {
	Backend
	// Commit durably marks every mutation applied so far as belonging to
	// round (write-ahead log mark + fsync). Recovery discards mutations
	// after the last mark.
	Commit(round int64) error
	// CommittedRound reports the round of the last durable commit mark
	// (-1 before the first).
	CommittedRound() int64
	// Checkpoint writes a full checkpoint image of current state and
	// truncates the write-ahead log; the image doubles as a fast-restart
	// base.
	Checkpoint() error
	// Rollback discards all in-memory state and reloads the last committed
	// state from disk (image + committed WAL prefix).
	Rollback() error
	// Restored reports whether the backend was opened over existing
	// durable state.
	Restored() bool
	// Close flushes dirty state durably and releases file handles.
	Close() error
}

// PoolStats reports buffer-pool traffic for a paged backend. Counters are
// cumulative for the backend's lifetime (they survive Rollback).
type PoolStats struct {
	// Hits and Misses count page lookups served from, respectively not
	// from, the pool.
	Hits, Misses int64
	// Evictions counts pages pushed out of the pool to make room.
	Evictions int64
	// BytesSpilled is the volume of dirty page bytes written to disk by
	// evictions (checkpoint writes are not spills).
	BytesSpilled int64
}

// Add accumulates other into s (for aggregating per-node pools).
func (s *PoolStats) Add(other PoolStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.BytesSpilled += other.BytesSpilled
}

// HitRate reports hits per lookup (1 when the pool saw no traffic).
func (s *PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// PoolStatter is implemented by backends with a buffer pool.
type PoolStatter interface {
	PoolStats() PoolStats
}
