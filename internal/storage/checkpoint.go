package storage

import (
	"os"
	"sync"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// CheckpointStore holds the per-stratum mutable-state checkpoints of §4.3:
// "for a given stratum, every machine buffers and replicates the mutable
// Δᵢ set processed by the local fixpoint operator to replica machines."
//
// Entries are keyed by (query, fixpoint operator, stratum). Each node's
// checkpoint store accumulates both its own strata and the replicated
// copies streamed from ring peers; during recovery the takeover node
// restores the entries whose keys it now primarily owns.
type CheckpointStore struct {
	mu      sync.RWMutex
	entries map[ckptKey][]ckptEntry

	// File-backed mode (see UseDir in ckptfile.go): the log directory,
	// the open append handle, and the tombstones-since-compaction count.
	dir   string
	f     *os.File
	drops int
}

type ckptKey struct {
	queryID string
	opID    int
	stratum int
}

type ckptEntry struct {
	keyHash uint64
	tup     types.Tuple
}

// NewCheckpointStore creates an empty checkpoint store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{entries: map[ckptKey][]ckptEntry{}}
}

// Put appends checkpointed state tuples for (queryID, opID, stratum).
// keyHash is the hash of each tuple's fixpoint key, so recovery can filter
// by ownership.
func (c *CheckpointStore) Put(queryID string, opID, stratum int, keyHashes []uint64, tuples []types.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := ckptKey{queryID, opID, stratum}
	for i, t := range tuples {
		c.entries[k] = append(c.entries[k], ckptEntry{keyHash: keyHashes[i], tup: t})
	}
	c.persistPutLocked(k, keyHashes, tuples)
}

// LastStratum reports the most recent stratum with a checkpoint for
// (queryID, opID), or -1 when none exists.
func (c *CheckpointStore) LastStratum(queryID string, opID int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	last := -1
	for k := range c.entries {
		if k.queryID == queryID && k.opID == opID && k.stratum > last {
			last = k.stratum
		}
	}
	return last
}

// Restore returns the checkpointed tuples of (queryID, opID) at or before
// stratum whose key this node primarily owns under snap, taking the newest
// copy per stratum range. It returns the cumulative state: all strata up to
// and including the given one, later strata overriding earlier entries with
// the same tuple identity being the handler's concern (fixpoint state is
// keyed, so the caller applies entries in stratum order).
func (c *CheckpointStore) Restore(queryID string, opID, throughStratum int, self cluster.NodeID, snap *cluster.Snapshot) [][]types.Tuple {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]types.Tuple, throughStratum+1)
	for k, entries := range c.entries {
		if k.queryID != queryID || k.opID != opID || k.stratum > throughStratum {
			continue
		}
		for _, e := range entries {
			primary, err := snap.Primary(e.keyHash)
			if err != nil || primary != self {
				continue
			}
			out[k.stratum] = append(out[k.stratum], e.tup)
		}
	}
	return out
}

// DropAbove discards checkpoints of strata later than the given one. A
// recovery re-run calls this so re-executed strata do not leave duplicate
// entries behind.
func (c *CheckpointStore) DropAbove(queryID string, stratum int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.queryID == queryID && k.stratum > stratum {
			delete(c.entries, k)
		}
	}
	c.persistDropLocked(ckptRecDropAbove, queryID, stratum)
}

// Drop discards all checkpoints of a query (called at query completion).
func (c *CheckpointStore) Drop(queryID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.queryID == queryID {
			delete(c.entries, k)
		}
	}
	c.persistDropLocked(ckptRecDrop, queryID, 0)
}

// Size reports the number of checkpointed tuples held for a query.
func (c *CheckpointStore) Size(queryID string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for k, e := range c.entries {
		if k.queryID == queryID {
			n += len(e)
		}
	}
	return n
}
