// Package storage implements REX's partitioned, replicated local storage
// (§4.1) and the per-stratum Δᵢ checkpoint store used by incremental
// recovery (§4.3).
//
// Every node keeps the tuples of each table for which it is one of the
// ring owners of the tuple's partition key (primary or replica). At scan
// time a node emits only the tuples it primarily owns *under the query's
// partition snapshot*; after a failure, a new snapshot promotes replicas to
// primaries, so failed key ranges are covered without any data movement.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// Store is one node's local storage.
type Store struct {
	node cluster.NodeID

	mu     sync.RWMutex
	tables map[string]*partition
}

// partition holds this node's copies of one table, keyed by partition-key
// hash so ownership checks at scan time are cheap.
type partition struct {
	keyCol int
	tuples []storedTuple
}

type storedTuple struct {
	hash uint64
	tup  types.Tuple
}

// NewStore creates an empty store for a node.
func NewStore(node cluster.NodeID) *Store {
	return &Store{node: node, tables: map[string]*partition{}}
}

// Node reports the owning node.
func (s *Store) Node() cluster.NodeID { return s.node }

// CreateTable declares a local table partitioned by keyCol.
func (s *Store) CreateTable(name string, keyCol int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		s.tables[name] = &partition{keyCol: keyCol}
	}
}

// Insert stores a tuple copy locally (callers decide replica placement).
func (s *Store) Insert(table string, t types.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("storage: node %d: unknown table %q", s.node, table)
	}
	p.tuples = append(p.tuples, storedTuple{hash: types.HashValue(t[p.keyCol]), tup: t})
	return nil
}

// Delete removes one stored copy equal to t (the first match), reporting
// whether a copy was found. Ingestion deletes call it on every ring owner
// of the tuple's key, mirroring how Insert placed the replicas.
func (s *Store) Delete(table string, t types.Tuple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.tables[table]
	if !ok {
		return false
	}
	for i, st := range p.tuples {
		if st.tup.Equal(t) {
			p.tuples[i] = p.tuples[len(p.tuples)-1]
			p.tuples = p.tuples[:len(p.tuples)-1]
			return true
		}
	}
	return false
}

// ApplyDelta applies one base-table change to this node's local copies:
// insertions (and δ-updates) store a copy, deletions remove one, and
// replacements do both. Unknown tables error — ingestion never creates
// tables implicitly.
//
// ApplyDelta is a retention boundary: delta tuples arrive from transport
// frames and batch materializers whose buffers the caller may reuse, so
// the inserted tuple is cloned before it is stored. Loader.Load clones at
// its own boundary (once per tuple, shared by the replicas), so every
// path into a store owns what it keeps.
func (s *Store) ApplyDelta(table string, d types.Delta) error {
	switch d.Op {
	case types.OpInsert, types.OpUpdate:
		return s.Insert(table, d.Tup.Clone())
	case types.OpDelete:
		s.mu.RLock()
		_, ok := s.tables[table]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("storage: node %d: unknown table %q", s.node, table)
		}
		s.Delete(table, d.Tup)
		return nil
	case types.OpReplace:
		s.Delete(table, d.Old)
		return s.Insert(table, d.Tup.Clone())
	}
	return nil
}

// ScanOwned streams the tuples of table for which this node is the primary
// owner under snap. This is the base-case scan and also how takeover nodes
// rebuild immutable state from replicas during recovery.
func (s *Store) ScanOwned(table string, snap *cluster.Snapshot, emit func(types.Tuple) error) error {
	s.mu.RLock()
	p, ok := s.tables[table]
	if !ok {
		s.mu.RUnlock()
		return fmt.Errorf("storage: node %d: unknown table %q", s.node, table)
	}
	tuples := p.tuples
	s.mu.RUnlock()
	for _, st := range tuples {
		primary, err := snap.Primary(st.hash)
		if err != nil {
			return err
		}
		if primary != s.node {
			continue
		}
		if err := emit(st.tup); err != nil {
			return err
		}
	}
	return nil
}

// CountOwned reports how many tuples this node primarily owns under snap.
func (s *Store) CountOwned(table string, snap *cluster.Snapshot) (int, error) {
	n := 0
	err := s.ScanOwned(table, snap, func(types.Tuple) error { n++; return nil })
	return n, err
}

// CountLocal reports all local copies (primary + replica) of a table.
func (s *Store) CountLocal(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.tables[table]; ok {
		return len(p.tuples)
	}
	return 0
}

// Tables lists local table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Loader distributes a dataset across a set of stores following a ring:
// each tuple is stored at every ring owner of its partition key (primary
// plus replication−1 replicas), the scheme of §4.1. Nil entries in Stores
// mark nodes hosted by other processes: their share of the data is
// skipped here and loaded by their own daemons from the same
// deterministic dataset.
type Loader struct {
	Ring   *cluster.Ring
	Stores []Backend
}

// Load creates the table on every local store and distributes the tuples.
//
// Load is a retention boundary: callers may reuse or mutate the tuple
// slice (and its backing arrays) after Load returns, so each stored tuple
// is cloned once, with the ring owners sharing the clone — stores never
// mutate stored tuples in place, so replicas aliasing one clone is safe.
func (l *Loader) Load(table string, keyCol int, tuples []types.Tuple) error {
	for _, st := range l.Stores {
		if st != nil {
			st.CreateTable(table, keyCol)
		}
	}
	for _, t := range tuples {
		h := types.HashValue(t[keyCol])
		var clone types.Tuple
		for _, owner := range l.Ring.Owners(h) {
			if int(owner) >= len(l.Stores) {
				return fmt.Errorf("storage: owner %d beyond store set", owner)
			}
			if l.Stores[owner] == nil {
				continue // remote node: loaded in its own process
			}
			if clone == nil {
				clone = t.Clone()
			}
			if err := l.Stores[owner].Insert(table, clone); err != nil {
				return err
			}
		}
	}
	return nil
}

// Apply distributes a base-table delta batch to the ring owners of each
// delta's key — the incremental counterpart of Load. Replacements whose old
// and new keys hash to different owners are split into a deletion at the
// old home and an insertion at the new one.
func (l *Loader) Apply(table string, keyCol int, deltas []types.Delta) error {
	for _, st := range l.Stores {
		if st != nil {
			st.CreateTable(table, keyCol)
		}
	}
	return types.RouteByKey(deltas, keyCol, func(h uint64, d types.Delta) error {
		for _, owner := range l.Ring.Owners(h) {
			if int(owner) >= len(l.Stores) {
				return fmt.Errorf("storage: owner %d beyond store set", owner)
			}
			if l.Stores[owner] == nil {
				continue // remote node: applied in its own process
			}
			if err := l.Stores[owner].ApplyDelta(table, d); err != nil {
				return err
			}
		}
		return nil
	})
}
