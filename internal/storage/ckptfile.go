package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/rex-data/rex/internal/types"
)

// File-backed checkpoint persistence. UseDir turns an in-memory
// CheckpointStore into a durable one: every Put appends a record to an
// append-only log under the directory, Drop/DropAbove append tombstones,
// and opening a store over an existing directory replays the log — so a
// restarted node still holds the per-stratum Δ-set checkpoints of §4.3
// and incremental recovery can resume from the last checkpointed stratum
// instead of stratum zero.
//
// Record framing matches the page-store WAL: uint32 payload length,
// uint32 CRC-32 (IEEE), payload. A torn tail (crash mid-append) fails the
// CRC or length check and is discarded on replay; checkpoints are a
// recovery accelerator, so a lost tail only costs re-derivation. When
// tombstones accumulate, the log compacts by rewriting the live entries
// to a temp file and renaming over the old log.
const ckptLogName = "ckpt.log"

const (
	ckptRecPut       = byte('P') // queryID, opID, stratum, n × (keyHash, tuple)
	ckptRecDropAbove = byte('>') // queryID, stratum
	ckptRecDrop      = byte('D') // queryID
)

// ckptCompactAfter bounds tombstone debris: after this many drop records
// the log is rewritten from live memory.
const ckptCompactAfter = 64

// UseDir attaches file persistence to the store, replaying any existing
// log under dir into memory first. Call before the store sees traffic.
func (c *CheckpointStore) UseDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		return fmt.Errorf("storage: checkpoint store already has a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, ckptLogName)
	if data, err := os.ReadFile(path); err == nil {
		c.replayLocked(data)
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c.dir, c.f = dir, f
	return nil
}

// Close flushes and closes the log file (no-op without UseDir).
func (c *CheckpointStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// replayLocked folds log records into the in-memory map, stopping at the
// first torn or corrupt frame.
func (c *CheckpointStore) replayLocked(data []byte) {
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if len(data) < 8+int(n) {
			return // torn tail
		}
		payload := data[8 : 8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return
		}
		data = data[8+int(n):]
		c.applyRecordLocked(payload)
	}
}

func (c *CheckpointStore) applyRecordLocked(p []byte) {
	if len(p) == 0 {
		return
	}
	kind, p := p[0], p[1:]
	qid, m := ckptReadString(p)
	if m < 0 {
		return
	}
	p = p[m:]
	switch kind {
	case ckptRecPut:
		opID, m1 := binary.Varint(p)
		if m1 <= 0 {
			return
		}
		p = p[m1:]
		stratum, m2 := binary.Varint(p)
		if m2 <= 0 {
			return
		}
		p = p[m2:]
		count, m3 := binary.Uvarint(p)
		if m3 <= 0 {
			return
		}
		p = p[m3:]
		k := ckptKey{qid, int(opID), int(stratum)}
		for i := uint64(0); i < count; i++ {
			if len(p) < 8 {
				return
			}
			kh := binary.LittleEndian.Uint64(p)
			p = p[8:]
			tup, n, err := types.DecodeTuple(p)
			if err != nil {
				return
			}
			p = p[n:]
			c.entries[k] = append(c.entries[k], ckptEntry{keyHash: kh, tup: tup})
		}
	case ckptRecDropAbove:
		stratum, m1 := binary.Varint(p)
		if m1 <= 0 {
			return
		}
		for k := range c.entries {
			if k.queryID == qid && k.stratum > int(stratum) {
				delete(c.entries, k)
			}
		}
	case ckptRecDrop:
		for k := range c.entries {
			if k.queryID == qid {
				delete(c.entries, k)
			}
		}
	}
}

// appendLocked frames and writes one record. A write error disables
// further persistence instead of failing the Put: a checkpoint that did
// not reach disk only weakens recovery acceleration — the delta replay
// tail still reconstructs the state.
func (c *CheckpointStore) appendLocked(payload []byte) {
	if c.f == nil {
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := c.f.Write(hdr[:]); err != nil {
		c.f.Close()
		c.f = nil
		return
	}
	if _, err := c.f.Write(payload); err != nil {
		c.f.Close()
		c.f = nil
	}
}

// persistPutLocked appends a Put record.
func (c *CheckpointStore) persistPutLocked(k ckptKey, keyHashes []uint64, tuples []types.Tuple) {
	if c.f == nil {
		return
	}
	p := []byte{ckptRecPut}
	p = ckptAppendString(p, k.queryID)
	p = binary.AppendVarint(p, int64(k.opID))
	p = binary.AppendVarint(p, int64(k.stratum))
	p = binary.AppendUvarint(p, uint64(len(tuples)))
	for i, t := range tuples {
		p = binary.LittleEndian.AppendUint64(p, keyHashes[i])
		p = types.AppendTuple(p, t)
	}
	c.appendLocked(p)
}

// persistDropLocked appends a tombstone and compacts when debris piles up.
func (c *CheckpointStore) persistDropLocked(kind byte, queryID string, stratum int) {
	if c.f == nil {
		return
	}
	p := []byte{kind}
	p = ckptAppendString(p, queryID)
	if kind == ckptRecDropAbove {
		p = binary.AppendVarint(p, int64(stratum))
	}
	c.appendLocked(p)
	if c.drops++; c.drops >= ckptCompactAfter {
		c.compactLocked()
	}
}

// compactLocked rewrites the log from live memory (tmp + rename, so a
// crash mid-compaction leaves the old log intact) and reopens it.
func (c *CheckpointStore) compactLocked() {
	if c.f == nil {
		return
	}
	c.drops = 0
	path := filepath.Join(c.dir, ckptLogName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	var buf []byte
	for k, entries := range c.entries {
		p := []byte{ckptRecPut}
		p = ckptAppendString(p, k.queryID)
		p = binary.AppendVarint(p, int64(k.opID))
		p = binary.AppendVarint(p, int64(k.stratum))
		p = binary.AppendUvarint(p, uint64(len(entries)))
		for _, e := range entries {
			p = binary.LittleEndian.AppendUint64(p, e.keyHash)
			p = types.AppendTuple(p, e.tup)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	c.f.Close()
	if nf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644); err == nil {
		c.f = nf
	} else {
		c.f = nil
	}
}

func ckptAppendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func ckptReadString(p []byte) (string, int) {
	n, m := binary.Uvarint(p)
	if m <= 0 || len(p) < m+int(n) {
		return "", -1
	}
	return string(p[m : m+int(n)]), m + int(n)
}
