package uda

import (
	"fmt"
	"sort"

	"github.com/rex-data/rex/internal/types"
)

// ScalarAgg is the interface for built-in scalar aggregates used by the
// group-by operator. Update applies the argument values of one input delta
// to the state following the aggregate's delta rules (§3.3); Result renders
// the current value.
//
// The distinction from Aggregator: ScalarAggs produce one scalar per group
// and have engine-provided delta rules, whereas Aggregators (UDAs) are
// table-valued and manage delta semantics themselves.
type ScalarAgg interface {
	Name() string
	// NArgs reports the number of argument expressions (0 for count(*)).
	NArgs() int
	Kind(arg types.Kind) types.Kind
	NewState() State
	Update(st State, op types.Op, args, oldArgs []types.Value) error
	Result(st State) types.Value
	// Composable aggregates can be computed in parts and merged; the
	// optimizer uses this for pre-aggregation pushdown (§5.2).
	Composable() bool
	// Merge folds a partial state into st (only for composable aggregates).
	Merge(st, partial State) error
	// Save serializes state to a tuple for Δᵢ checkpointing (§4.3);
	// Load is its inverse.
	Save(st State) types.Tuple
	Load(t types.Tuple) (State, error)
}

// NewScalarAgg resolves a built-in aggregate by its SQL name.
func NewScalarAgg(name string) (ScalarAgg, error) {
	switch name {
	case "sum":
		return sumAgg{}, nil
	case "count":
		return countAgg{}, nil
	case "min":
		return minAgg{}, nil
	case "max":
		return maxAgg{}, nil
	case "avg", "average":
		return avgAgg{}, nil
	case "argmin":
		return argMinAgg{}, nil
	default:
		return nil, fmt.Errorf("uda: unknown aggregate %q", name)
	}
}

// --- sum -------------------------------------------------------------

type sumState struct {
	sum   float64
	isInt bool
	n     int64
}

type sumAgg struct{}

func (sumAgg) Name() string                 { return "sum" }
func (sumAgg) NArgs() int                   { return 1 }
func (sumAgg) Kind(a types.Kind) types.Kind { return a }
func (sumAgg) NewState() State              { return &sumState{isInt: true} }
func (sumAgg) Composable() bool             { return true }

func (sumAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	s := st.(*sumState)
	v, ok := types.AsFloat(args[0])
	if !ok {
		return fmt.Errorf("uda: sum over non-numeric %v", args[0])
	}
	if _, isInt := args[0].(int64); !isInt {
		s.isInt = false
	}
	switch op {
	case types.OpInsert, types.OpUpdate:
		// A δ() value-update to sum is an arithmetic adjustment (the
		// paper's PageRank diff): add the delta amount.
		s.sum += v
		s.n++
	case types.OpDelete:
		s.sum -= v
		s.n--
	case types.OpReplace:
		old, ok := types.AsFloat(oldArgs[0])
		if !ok {
			return fmt.Errorf("uda: sum replace with non-numeric old %v", oldArgs[0])
		}
		s.sum += v - old
	default:
		return ErrUnsupportedDelta
	}
	return nil
}

func (sumAgg) Result(st State) types.Value {
	s := st.(*sumState)
	if s.isInt {
		return int64(s.sum)
	}
	return s.sum
}

func (sumAgg) Merge(st, partial State) error {
	s, p := st.(*sumState), partial.(*sumState)
	s.sum += p.sum
	s.n += p.n
	s.isInt = s.isInt && p.isInt
	return nil
}

// --- count -----------------------------------------------------------

type countState struct{ n int64 }

type countAgg struct{}

func (countAgg) Name() string               { return "count" }
func (countAgg) NArgs() int                 { return 0 }
func (countAgg) Kind(types.Kind) types.Kind { return types.KindInt }
func (countAgg) NewState() State            { return &countState{} }
func (countAgg) Composable() bool           { return true }

func (countAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	s := st.(*countState)
	switch op {
	case types.OpInsert:
		s.n++
	case types.OpDelete:
		s.n--
	case types.OpReplace:
		// replacement does not change cardinality
	case types.OpUpdate:
		// count of a pre-aggregated partial: argument carries the partial count
		if len(args) > 0 {
			if n, ok := types.AsInt(args[0]); ok {
				s.n += n
				return nil
			}
		}
		s.n++
	default:
		return ErrUnsupportedDelta
	}
	return nil
}

func (countAgg) Result(st State) types.Value { return st.(*countState).n }

func (countAgg) Merge(st, partial State) error {
	st.(*countState).n += partial.(*countState).n
	return nil
}

// --- min / max -------------------------------------------------------

// extremeState keeps the full multiset of values so that deleting the
// current extremum can expose the next one — precisely the subtlety §3.3
// describes for min under deletion deltas.
type extremeState struct {
	counts map[types.Value]int64
	sorted []types.Value // lazily maintained sort
	dirty  bool
}

func newExtremeState() *extremeState {
	return &extremeState{counts: map[types.Value]int64{}}
}

func (s *extremeState) update(op types.Op, v, old types.Value) error {
	key := normScalar(v)
	switch op {
	case types.OpInsert, types.OpUpdate:
		s.counts[key]++
	case types.OpDelete:
		s.counts[key]--
		if s.counts[key] <= 0 {
			delete(s.counts, key)
		}
	case types.OpReplace:
		okey := normScalar(old)
		s.counts[okey]--
		if s.counts[okey] <= 0 {
			delete(s.counts, okey)
		}
		s.counts[key]++
	default:
		return ErrUnsupportedDelta
	}
	s.dirty = true
	return nil
}

func (s *extremeState) extremum(max bool) types.Value {
	if s.dirty {
		s.sorted = s.sorted[:0]
		for v := range s.counts {
			s.sorted = append(s.sorted, v)
		}
		sort.Slice(s.sorted, func(i, j int) bool {
			return types.ValueCompare(s.sorted[i], s.sorted[j]) < 0
		})
		s.dirty = false
	}
	if len(s.sorted) == 0 {
		return nil
	}
	if max {
		return s.sorted[len(s.sorted)-1]
	}
	return s.sorted[0]
}

func normScalar(v types.Value) types.Value {
	if f, ok := v.(float64); ok && float64(int64(f)) == f {
		return v // keep floats as floats; map key equality is fine per kind
	}
	return v
}

type minAgg struct{}

func (minAgg) Name() string                 { return "min" }
func (minAgg) NArgs() int                   { return 1 }
func (minAgg) Kind(a types.Kind) types.Kind { return a }
func (minAgg) NewState() State              { return newExtremeState() }
func (minAgg) Composable() bool             { return true }

func (minAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	var old types.Value
	if len(oldArgs) > 0 {
		old = oldArgs[0]
	}
	return st.(*extremeState).update(op, args[0], old)
}

func (minAgg) Result(st State) types.Value { return st.(*extremeState).extremum(false) }

func (minAgg) Merge(st, partial State) error {
	s, p := st.(*extremeState), partial.(*extremeState)
	for v, c := range p.counts {
		s.counts[v] += c
	}
	s.dirty = true
	return nil
}

type maxAgg struct{}

func (maxAgg) Name() string                 { return "max" }
func (maxAgg) NArgs() int                   { return 1 }
func (maxAgg) Kind(a types.Kind) types.Kind { return a }
func (maxAgg) NewState() State              { return newExtremeState() }
func (maxAgg) Composable() bool             { return true }

func (maxAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	var old types.Value
	if len(oldArgs) > 0 {
		old = oldArgs[0]
	}
	return st.(*extremeState).update(op, args[0], old)
}

func (maxAgg) Result(st State) types.Value { return st.(*extremeState).extremum(true) }

func (maxAgg) Merge(st, partial State) error {
	s, p := st.(*extremeState), partial.(*extremeState)
	for v, c := range p.counts {
		s.counts[v] += c
	}
	s.dirty = true
	return nil
}

// --- average ---------------------------------------------------------

// avgState is the paper's two-part decomposition: a (sum, count)
// pre-aggregate with the division applied only at result time.
type avgState struct {
	sum float64
	n   int64
}

type avgAgg struct{}

func (avgAgg) Name() string               { return "avg" }
func (avgAgg) NArgs() int                 { return 1 }
func (avgAgg) Kind(types.Kind) types.Kind { return types.KindFloat }
func (avgAgg) NewState() State            { return &avgState{} }
func (avgAgg) Composable() bool           { return true }

func (avgAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	s := st.(*avgState)
	v, ok := types.AsFloat(args[0])
	if !ok {
		return fmt.Errorf("uda: avg over non-numeric %v", args[0])
	}
	switch op {
	case types.OpInsert, types.OpUpdate:
		s.sum += v
		s.n++
	case types.OpDelete:
		s.sum -= v
		s.n--
	case types.OpReplace:
		old, _ := types.AsFloat(oldArgs[0])
		s.sum += v - old
	default:
		return ErrUnsupportedDelta
	}
	return nil
}

func (avgAgg) Result(st State) types.Value {
	s := st.(*avgState)
	if s.n == 0 {
		return nil
	}
	return s.sum / float64(s.n)
}

func (avgAgg) Merge(st, partial State) error {
	s, p := st.(*avgState), partial.(*avgState)
	s.sum += p.sum
	s.n += p.n
	return nil
}

// --- argmin ----------------------------------------------------------

// argMinAgg is the paper's general-purpose ArgMin(id, value) aggregate
// returning the id with the minimum value (used by the shortest-path query).
type argMinState struct {
	byID map[types.Value]float64
}

type argMinAgg struct{}

func (argMinAgg) Name() string                 { return "argmin" }
func (argMinAgg) NArgs() int                   { return 2 }
func (argMinAgg) Kind(a types.Kind) types.Kind { return a }
func (argMinAgg) NewState() State              { return &argMinState{byID: map[types.Value]float64{}} }
func (argMinAgg) Composable() bool             { return true }

func (argMinAgg) Update(st State, op types.Op, args, oldArgs []types.Value) error {
	s := st.(*argMinState)
	id := args[0]
	v, ok := types.AsFloat(args[1])
	if !ok {
		return fmt.Errorf("uda: argmin over non-numeric %v", args[1])
	}
	switch op {
	case types.OpInsert, types.OpUpdate:
		if cur, exists := s.byID[id]; !exists || v < cur {
			s.byID[id] = v
		}
	case types.OpDelete:
		delete(s.byID, id)
	case types.OpReplace:
		s.byID[id] = v
	default:
		return ErrUnsupportedDelta
	}
	return nil
}

func (argMinAgg) Result(st State) types.Value {
	s := st.(*argMinState)
	var bestID types.Value
	best := 0.0
	first := true
	for id, v := range s.byID {
		if first || v < best || (v == best && types.ValueCompare(id, bestID) < 0) {
			bestID, best, first = id, v, false
		}
	}
	return bestID
}

func (argMinAgg) Merge(st, partial State) error {
	s, p := st.(*argMinState), partial.(*argMinState)
	for id, v := range p.byID {
		if cur, exists := s.byID[id]; !exists || v < cur {
			s.byID[id] = v
		}
	}
	return nil
}

// --- state serialization (for incremental checkpoints, §4.3) -----------

// Save serializes a sum state.
func (sumAgg) Save(st State) types.Tuple {
	s := st.(*sumState)
	return types.NewTuple(s.sum, s.isInt, s.n)
}

// Load restores a sum state.
func (sumAgg) Load(t types.Tuple) (State, error) {
	if len(t) != 3 {
		return nil, fmt.Errorf("uda: bad sum state %v", t)
	}
	sum, _ := types.AsFloat(t[0])
	isInt, _ := types.AsBool(t[1])
	n, _ := types.AsInt(t[2])
	return &sumState{sum: sum, isInt: isInt, n: n}, nil
}

// Save serializes a count state.
func (countAgg) Save(st State) types.Tuple {
	return types.NewTuple(st.(*countState).n)
}

// Load restores a count state.
func (countAgg) Load(t types.Tuple) (State, error) {
	if len(t) != 1 {
		return nil, fmt.Errorf("uda: bad count state %v", t)
	}
	n, _ := types.AsInt(t[0])
	return &countState{n: n}, nil
}

func (s *extremeState) save() types.Tuple {
	out := make(types.Tuple, 0, 2*len(s.counts))
	for v, c := range s.counts {
		out = append(out, v, c)
	}
	return out
}

func loadExtreme(t types.Tuple) (State, error) {
	if len(t)%2 != 0 {
		return nil, fmt.Errorf("uda: bad extreme state %v", t)
	}
	s := newExtremeState()
	for i := 0; i < len(t); i += 2 {
		c, _ := types.AsInt(t[i+1])
		s.counts[t[i]] = c
	}
	s.dirty = true
	return s, nil
}

// Save serializes a min state.
func (minAgg) Save(st State) types.Tuple { return st.(*extremeState).save() }

// Load restores a min state.
func (minAgg) Load(t types.Tuple) (State, error) { return loadExtreme(t) }

// Save serializes a max state.
func (maxAgg) Save(st State) types.Tuple { return st.(*extremeState).save() }

// Load restores a max state.
func (maxAgg) Load(t types.Tuple) (State, error) { return loadExtreme(t) }

// Save serializes an avg state.
func (avgAgg) Save(st State) types.Tuple {
	s := st.(*avgState)
	return types.NewTuple(s.sum, s.n)
}

// Load restores an avg state.
func (avgAgg) Load(t types.Tuple) (State, error) {
	if len(t) != 2 {
		return nil, fmt.Errorf("uda: bad avg state %v", t)
	}
	sum, _ := types.AsFloat(t[0])
	n, _ := types.AsInt(t[1])
	return &avgState{sum: sum, n: n}, nil
}

// Save serializes an argmin state.
func (argMinAgg) Save(st State) types.Tuple {
	s := st.(*argMinState)
	out := make(types.Tuple, 0, 2*len(s.byID))
	for id, v := range s.byID {
		out = append(out, id, v)
	}
	return out
}

// Load restores an argmin state.
func (argMinAgg) Load(t types.Tuple) (State, error) {
	if len(t)%2 != 0 {
		return nil, fmt.Errorf("uda: bad argmin state %v", t)
	}
	s := &argMinState{byID: map[types.Value]float64{}}
	for i := 0; i < len(t); i += 2 {
		v, _ := types.AsFloat(t[i+1])
		s.byID[t[i]] = v
	}
	return s, nil
}
