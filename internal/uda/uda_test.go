package uda

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rex-data/rex/internal/types"
)

func upd(t *testing.T, a ScalarAgg, st State, op types.Op, args []types.Value, old []types.Value) {
	t.Helper()
	if err := a.Update(st, op, args, old); err != nil {
		t.Fatalf("%s update: %v", a.Name(), err)
	}
}

func TestSumDeltaRules(t *testing.T) {
	a, _ := NewScalarAgg("sum")
	st := a.NewState()
	upd(t, a, st, types.OpInsert, []types.Value{int64(10)}, nil)
	upd(t, a, st, types.OpInsert, []types.Value{int64(5)}, nil)
	if a.Result(st).(int64) != 15 {
		t.Fatalf("sum after inserts = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, []types.Value{int64(5)}, nil)
	if a.Result(st).(int64) != 10 {
		t.Fatalf("sum after delete = %v", a.Result(st))
	}
	upd(t, a, st, types.OpReplace, []types.Value{int64(7)}, []types.Value{int64(10)})
	if a.Result(st).(int64) != 7 {
		t.Fatalf("sum after replace = %v", a.Result(st))
	}
	// δ() adjusts arithmetically — the PageRank diff semantics.
	upd(t, a, st, types.OpUpdate, []types.Value{int64(-2)}, nil)
	if a.Result(st).(int64) != 5 {
		t.Fatalf("sum after δ = %v", a.Result(st))
	}
	// float promotion
	upd(t, a, st, types.OpInsert, []types.Value{0.5}, nil)
	if a.Result(st).(float64) != 5.5 {
		t.Fatalf("sum after float = %v", a.Result(st))
	}
	if err := a.Update(st, types.OpInsert, []types.Value{"x"}, nil); err == nil {
		t.Fatal("sum must reject non-numeric")
	}
}

func TestCountDeltaRules(t *testing.T) {
	a, _ := NewScalarAgg("count")
	st := a.NewState()
	upd(t, a, st, types.OpInsert, nil, nil)
	upd(t, a, st, types.OpInsert, nil, nil)
	upd(t, a, st, types.OpReplace, nil, nil) // replace keeps cardinality
	if a.Result(st).(int64) != 2 {
		t.Fatalf("count = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, nil, nil)
	if a.Result(st).(int64) != 1 {
		t.Fatalf("count after delete = %v", a.Result(st))
	}
	// δ with partial count merges it.
	upd(t, a, st, types.OpUpdate, []types.Value{int64(10)}, nil)
	if a.Result(st).(int64) != 11 {
		t.Fatalf("count after partial = %v", a.Result(st))
	}
}

func TestMinDeleteExposesNextSmallest(t *testing.T) {
	// The exact scenario of §3.3: deleting the minimum must surface the
	// next-smallest buffered value.
	a, _ := NewScalarAgg("min")
	st := a.NewState()
	for _, v := range []int64{5, 3, 9} {
		upd(t, a, st, types.OpInsert, []types.Value{v}, nil)
	}
	if a.Result(st).(int64) != 3 {
		t.Fatalf("min = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, []types.Value{int64(3)}, nil)
	if a.Result(st).(int64) != 5 {
		t.Fatalf("min after deleting minimum = %v", a.Result(st))
	}
	upd(t, a, st, types.OpReplace, []types.Value{int64(1)}, []types.Value{int64(9)})
	if a.Result(st).(int64) != 1 {
		t.Fatalf("min after replace = %v", a.Result(st))
	}
}

func TestMaxAndDuplicates(t *testing.T) {
	a, _ := NewScalarAgg("max")
	st := a.NewState()
	upd(t, a, st, types.OpInsert, []types.Value{int64(4)}, nil)
	upd(t, a, st, types.OpInsert, []types.Value{int64(4)}, nil)
	upd(t, a, st, types.OpDelete, []types.Value{int64(4)}, nil)
	if a.Result(st).(int64) != 4 {
		t.Fatalf("max with remaining duplicate = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, []types.Value{int64(4)}, nil)
	if a.Result(st) != nil {
		t.Fatalf("max of empty = %v", a.Result(st))
	}
}

func TestAvg(t *testing.T) {
	a, _ := NewScalarAgg("avg")
	st := a.NewState()
	upd(t, a, st, types.OpInsert, []types.Value{int64(2)}, nil)
	upd(t, a, st, types.OpInsert, []types.Value{int64(4)}, nil)
	if a.Result(st).(float64) != 3.0 {
		t.Fatalf("avg = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, []types.Value{int64(4)}, nil)
	if a.Result(st).(float64) != 2.0 {
		t.Fatalf("avg after delete = %v", a.Result(st))
	}
	empty := a.NewState()
	if a.Result(empty) != nil {
		t.Fatal("avg of empty must be nil")
	}
}

func TestArgMin(t *testing.T) {
	a, _ := NewScalarAgg("argmin")
	st := a.NewState()
	upd(t, a, st, types.OpInsert, []types.Value{int64(7), 2.5}, nil)
	upd(t, a, st, types.OpInsert, []types.Value{int64(9), 1.5}, nil)
	upd(t, a, st, types.OpInsert, []types.Value{int64(7), 9.0}, nil) // worse value for 7 ignored
	if a.Result(st).(int64) != 9 {
		t.Fatalf("argmin = %v", a.Result(st))
	}
	upd(t, a, st, types.OpDelete, []types.Value{int64(9), 1.5}, nil)
	if a.Result(st).(int64) != 7 {
		t.Fatalf("argmin after delete = %v", a.Result(st))
	}
}

func TestMergeComposability(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "avg", "argmin"} {
		a, err := NewScalarAgg(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Composable() {
			t.Errorf("%s should be composable", name)
		}
	}
	a, _ := NewScalarAgg("sum")
	s1, s2 := a.NewState(), a.NewState()
	upd(t, a, s1, types.OpInsert, []types.Value{int64(3)}, nil)
	upd(t, a, s2, types.OpInsert, []types.Value{int64(4)}, nil)
	if err := a.Merge(s1, s2); err != nil {
		t.Fatal(err)
	}
	if a.Result(s1).(int64) != 7 {
		t.Fatalf("merged sum = %v", a.Result(s1))
	}
	m, _ := NewScalarAgg("min")
	m1, m2 := m.NewState(), m.NewState()
	upd(t, m, m1, types.OpInsert, []types.Value{int64(5)}, nil)
	upd(t, m, m2, types.OpInsert, []types.Value{int64(2)}, nil)
	if err := m.Merge(m1, m2); err != nil {
		t.Fatal(err)
	}
	if m.Result(m1).(int64) != 2 {
		t.Fatalf("merged min = %v", m.Result(m1))
	}
}

func TestUnknownAggregate(t *testing.T) {
	if _, err := NewScalarAgg("median"); err == nil {
		t.Fatal("median is not built in")
	}
}

func TestTupleSet(t *testing.T) {
	s := &TupleSet{}
	t1 := types.NewTuple(int64(1), 0.5)
	t2 := types.NewTuple(int64(2), 0.7)
	s.Add(t1)
	s.Add(t2)
	if s.Len() != 2 {
		t.Fatal("len")
	}
	if v, ok := s.Get(0, int64(2), 1); !ok || v.(float64) != 0.7 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	s.Put(0, int64(2), 1, 0.9, nil)
	if v, _ := s.Get(0, int64(2), 1); v.(float64) != 0.9 {
		t.Fatal("Put update failed")
	}
	// Put must not alias the stored tuple it replaces.
	if t2[1].(float64) != 0.7 {
		t.Fatal("Put mutated caller's tuple")
	}
	s.Put(0, int64(3), 1, 1.1, func() types.Tuple { return types.NewTuple(int64(3), 0.0) })
	if v, ok := s.Get(0, int64(3), 1); !ok || v.(float64) != 1.1 {
		t.Fatal("Put insert failed")
	}
	if !s.Remove(t1) || s.Remove(t1) {
		t.Fatal("Remove semantics")
	}
	if !s.ReplaceFirst(types.NewTuple(int64(3), 1.1), types.NewTuple(int64(3), 2.2)) {
		t.Fatal("ReplaceFirst")
	}
	cl := s.Clone()
	cl.Tuples[0][0] = int64(99)
	if s.Tuples[0][0].(int64) == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestFuncHandlers(t *testing.T) {
	jh := &FuncJoinHandler{
		HName: "h",
		Out:   types.MustSchema("x:Integer"),
		Fn: func(l, r *TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
			return []types.Delta{d}, nil
		},
	}
	if jh.Name() != "h" || jh.OutSchema().Len() != 1 {
		t.Fatal("join handler metadata")
	}
	out, err := jh.Update(nil, nil, types.Insert(types.NewTuple(int64(1))), true)
	if err != nil || len(out) != 1 {
		t.Fatal("join handler update")
	}
	wh := &FuncWhileHandler{HName: "w", Fn: func(rel *TupleSet, d types.Delta) ([]types.Delta, error) {
		rel.Add(d.Tup)
		return nil, nil
	}}
	rel := &TupleSet{}
	if _, err := wh.Update(rel, types.Insert(types.NewTuple(int64(1)))); err != nil || rel.Len() != 1 {
		t.Fatal("while handler update")
	}
	if wh.Name() != "w" {
		t.Fatal("while handler name")
	}
}

// Property: for any sequence of inserts followed by deleting a random
// subset, min/max equal the direct computation over the multiset.
func TestExtremeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		vals := make([]int64, int(n)%40+1)
		for i := range vals {
			vals[i] = int64(r.Intn(20))
		}
		mn, _ := NewScalarAgg("min")
		mx, _ := NewScalarAgg("max")
		smn, smx := mn.NewState(), mx.NewState()
		remaining := map[int]bool{}
		for i, v := range vals {
			_ = mn.Update(smn, types.OpInsert, []types.Value{v}, nil)
			_ = mx.Update(smx, types.OpInsert, []types.Value{v}, nil)
			remaining[i] = true
		}
		for i, v := range vals {
			if r.Intn(2) == 0 && len(remaining) > 1 {
				_ = mn.Update(smn, types.OpDelete, []types.Value{v}, nil)
				_ = mx.Update(smx, types.OpDelete, []types.Value{v}, nil)
				delete(remaining, i)
			}
		}
		wantMin, wantMax := int64(1<<62), int64(-1<<62)
		for i := range remaining {
			if vals[i] < wantMin {
				wantMin = vals[i]
			}
			if vals[i] > wantMax {
				wantMax = vals[i]
			}
		}
		return mn.Result(smn).(int64) == wantMin && mx.Result(smx).(int64) == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum over random insert/delete/replace sequences matches the
// directly computed total.
func TestSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := NewScalarAgg("sum")
		st := a.NewState()
		var live []int64
		total := int64(0)
		for i := 0; i < 60; i++ {
			switch {
			case len(live) == 0 || r.Intn(3) > 0:
				v := int64(r.Intn(100))
				_ = a.Update(st, types.OpInsert, []types.Value{v}, nil)
				live = append(live, v)
				total += v
			case r.Intn(2) == 0:
				idx := r.Intn(len(live))
				v := live[idx]
				_ = a.Update(st, types.OpDelete, []types.Value{v}, nil)
				live = append(live[:idx], live[idx+1:]...)
				total -= v
			default:
				idx := r.Intn(len(live))
				old := live[idx]
				nv := int64(r.Intn(100))
				_ = a.Update(st, types.OpReplace, []types.Value{nv}, []types.Value{old})
				live[idx] = nv
				total += nv - old
			}
		}
		return a.Result(st).(int64) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
