// Package uda implements REX's user-defined aggregators and delta handlers
// (§3.3 of the paper): the four handler forms AGGSTATE, AGGRESULT, join-state
// UPDATE, and while-state UPDATE, plus the built-in aggregates
// (sum, count, min, max, average, argmin) with automatic insertion /
// deletion / replacement delta rules, and the pre-aggregation /
// composability / multiply-function machinery used by the optimizer (§5.2).
package uda

import (
	"fmt"

	"github.com/rex-data/rex/internal/types"
)

// State is opaque per-group aggregate state. Each aggregate owns its own
// representation (the paper: "each aggregate function needs to determine how
// to update its own intermediate state").
type State any

// Aggregator is the Go form of the paper's UDA: a pair of handlers
// AGGSTATE / AGGRESULT over per-group state.
//
// AggState is called by the group-by operator with the state for the delta's
// grouping key (NewState() if absent) and the delta itself; it revises the
// state and may return intermediate deltas (streamed partial aggregation).
// AggResult is called when the stratum finishes and returns the final deltas
// for the group.
type Aggregator interface {
	Name() string
	// InSchema declares the argument fields the aggregator consumes
	// (the paper's inTypes).
	InSchema() *types.Schema
	// OutSchema declares the fields of emitted deltas (outTypes).
	OutSchema() *types.Schema
	NewState() State
	AggState(st State, d types.Delta) (State, []types.Delta, error)
	AggResult(st State) ([]types.Delta, error)
}

// PreAggregator is implemented by UDAs that supply a combiner-style
// pre-aggregate (MapReduce's combiner); the optimizer pushes it below
// rehash and, when composable, below joins (§5.2).
type PreAggregator interface {
	PreAgg() Aggregator
}

// Composable marks UDAs computable in parts that can be unioned and
// finalized (sum, average — but not median). Composable UDAs may be
// pre-aggregated under arbitrary joins; non-composable only under
// key–foreign-key joins.
type Composable interface {
	Composable() bool
}

// Multiplier compensates pre-aggregation on both sides of a multiplicative
// (non key–foreign-key) join: the delta is scaled by the cardinality of the
// opposite join group (§5.2 "Composability and multiplicative joins").
type Multiplier interface {
	Multiply(d types.Delta, oppositeCard int) (types.Delta, error)
}

// TupleSet is a mutable bucket of tuples sharing one key — the LEFTBUCKET /
// RIGHTBUCKET arguments of the paper's join-state handler and the
// WHILERELATION of the while-state handler. Handlers freely read and revise
// it; the owning operator persists it between strata.
type TupleSet struct {
	Tuples []types.Tuple
	// version increments on every mutation; the owning operator compares
	// versions around handler calls to track dirty state for incremental
	// checkpointing (§4.3).
	version int
}

// Version reports the mutation counter.
func (s *TupleSet) Version() int { return s.version }

// Len reports the number of tuples in the set.
func (s *TupleSet) Len() int { return len(s.Tuples) }

// Add appends a tuple.
func (s *TupleSet) Add(t types.Tuple) {
	s.Tuples = append(s.Tuples, t)
	s.version++
}

// Remove deletes the first tuple equal to t, reporting whether one existed.
func (s *TupleSet) Remove(t types.Tuple) bool {
	for i, x := range s.Tuples {
		if x.Equal(t) {
			s.Tuples = append(s.Tuples[:i], s.Tuples[i+1:]...)
			s.version++
			return true
		}
	}
	return false
}

// Set overwrites the tuple at index i (bumping the mutation counter, so
// dirty-state tracking sees in-place revisions).
func (s *TupleSet) Set(i int, t types.Tuple) {
	s.Tuples[i] = t
	s.version++
}

// ReplaceFirst swaps old for new, reporting whether old existed.
func (s *TupleSet) ReplaceFirst(old, new types.Tuple) bool {
	for i, x := range s.Tuples {
		if x.Equal(old) {
			s.Tuples[i] = new
			s.version++
			return true
		}
	}
	return false
}

// Get returns the value at column col of the first tuple whose column
// keyCol equals key, mirroring the bucket.get(id) idiom of the paper's
// PRAgg listing. ok is false when no tuple matches.
func (s *TupleSet) Get(keyCol int, key types.Value, col int) (types.Value, bool) {
	for _, t := range s.Tuples {
		if types.ValueEq(t[keyCol], key) {
			return t[col], true
		}
	}
	return nil, false
}

// Put updates column col of the first tuple whose keyCol matches key, or
// appends a fresh tuple build(key) when absent (bucket.put of the paper).
func (s *TupleSet) Put(keyCol int, key types.Value, col int, v types.Value, build func() types.Tuple) {
	for i, t := range s.Tuples {
		if types.ValueEq(t[keyCol], key) {
			nt := t.Clone()
			nt[col] = v
			s.Tuples[i] = nt
			s.version++
			return
		}
	}
	nt := build()
	nt[col] = v
	s.Tuples = append(s.Tuples, nt)
	s.version++
}

// Clone deep-copies the set (used when checkpointing state).
func (s *TupleSet) Clone() *TupleSet {
	out := &TupleSet{Tuples: make([]types.Tuple, len(s.Tuples))}
	for i, t := range s.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// JoinHandler is the paper's join-state delta handler:
// DELTA[] UPDATE(TUPLESET LEFTBUCKET, TUPLESET RIGHTBUCKET, DELTA D).
// It is invoked by the join operator with the buckets for the delta's join
// key; fromLeft reports which input produced d. The handler may revise the
// buckets and returns the deltas to propagate.
type JoinHandler interface {
	Name() string
	// OutSchema declares the fields of emitted deltas.
	OutSchema() *types.Schema
	Update(left, right *TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error)
}

// WhileHandler is the paper's while-state delta handler:
// DELTA[] UPDATE(TUPLESET WHILERELATION, DELTA D).
// It is invoked by the while/fixpoint operator with the state bucket for the
// delta's fixpoint key and returns the (possibly empty) set of new deltas to
// feed to the next stratum.
type WhileHandler interface {
	Name() string
	Update(rel *TupleSet, d types.Delta) ([]types.Delta, error)
}

// FuncJoinHandler adapts a function to JoinHandler.
type FuncJoinHandler struct {
	HName string
	Out   *types.Schema
	Fn    func(left, right *TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error)
}

// Name returns the handler name.
func (h *FuncJoinHandler) Name() string { return h.HName }

// OutSchema returns the emitted delta schema.
func (h *FuncJoinHandler) OutSchema() *types.Schema { return h.Out }

// Update invokes the wrapped function.
func (h *FuncJoinHandler) Update(l, r *TupleSet, d types.Delta, fromLeft bool) ([]types.Delta, error) {
	return h.Fn(l, r, d, fromLeft)
}

// FuncWhileHandler adapts a function to WhileHandler.
type FuncWhileHandler struct {
	HName string
	Fn    func(rel *TupleSet, d types.Delta) ([]types.Delta, error)
}

// Name returns the handler name.
func (h *FuncWhileHandler) Name() string { return h.HName }

// Update invokes the wrapped function.
func (h *FuncWhileHandler) Update(rel *TupleSet, d types.Delta) ([]types.Delta, error) {
	return h.Fn(rel, d)
}

// ErrUnsupportedDelta is returned by built-in aggregates for annotations
// they have no rule for; without a user delta handler REX treats the
// annotation as a hidden attribute (§3.3), which the group-by operator
// implements by falling back to insert semantics.
var ErrUnsupportedDelta = fmt.Errorf("uda: unsupported delta annotation")
