// Package plan implements REX's cost-based optimization (§5): resource-
// vector costing with CPU/disk/network overlap, rank-based ordering of
// expensive predicates and UDFs [Hellerstein & Stonebraker], UDA
// pre-aggregation pushdown with composability rules (§5.2), top-down join
// enumeration with branch-and-bound pruning, and the iterative cost
// estimation of recursive queries with monotone cardinality caps (§5.3).
package plan

import (
	"math"
	"sort"

	"github.com/rex-data/rex/internal/catalog"
)

// Resources is the utilization vector of §5 ("REX models pipelined
// operations using a vector of resource utilization levels"): abstract
// work units consumed per resource class.
type Resources struct {
	CPU  float64
	Disk float64
	Net  float64
}

// Add accumulates sequential work.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.CPU + o.CPU, r.Disk + o.Disk, r.Net + o.Net}
}

// Scale multiplies all components.
func (r Resources) Scale(f float64) Resources {
	return Resources{r.CPU * f, r.Disk * f, r.Net * f}
}

// Runtime is the completion time of the vector executed alone: resources
// of different classes overlap (pipelining + threading), so the runtime is
// the maximum component, not the sum — §5 "in the extreme case where the
// two subplans use completely disjoint resources, the resulting runtime
// equals the maximum of the runtime of the subplans".
func (r Resources) Runtime() float64 {
	return math.Max(r.CPU, math.Max(r.Disk, r.Net))
}

// ParallelRuntime is the §5 overlap rule for two concurrently executing
// subplans: the smallest time allowing both to run with every resource's
// combined utilization under 100% — per-component sums, bounded below by
// each subplan's own runtime.
func ParallelRuntime(a, b Resources) float64 {
	sum := a.Add(b)
	return sum.Runtime()
}

// Estimate is a costed plan property set.
type Estimate struct {
	Rows float64
	Res  Resources
}

// Runtime of the estimate.
func (e Estimate) Runtime() float64 { return e.Res.Runtime() }

// Model derives operator cost estimates from the cluster calibration.
type Model struct {
	Cal   catalog.Calibration
	Nodes int
}

// NewModel builds a cost model for an n-node cluster.
func NewModel(cal catalog.Calibration, nodes int) *Model {
	if nodes <= 0 {
		nodes = 1
	}
	return &Model{Cal: cal, Nodes: nodes}
}

// perNode scales cluster-wide work down by the parallelism, using the
// slowest node for CPU-bound work (worst-case completion, §5).
func (m *Model) perNode(work float64) float64 {
	return work / float64(m.Nodes)
}

// ScanCost estimates a partitioned table scan.
func (m *Model) ScanCost(rows, avgBytes float64) Estimate {
	return Estimate{
		Rows: rows,
		Res: Resources{
			Disk: m.perNode(rows*avgBytes) / m.Cal.DiskBytesPerUnit,
			CPU:  m.perNode(rows) / m.Cal.CPUTuplesPerUnit / m.Cal.SlowestCPU(),
		},
	}
}

// FilterCost estimates a (possibly user-defined) predicate application.
func (m *Model) FilterCost(in Estimate, costPerTuple, selectivity float64) Estimate {
	cpu := m.perNode(in.Rows*costPerTuple) / m.Cal.CPUTuplesPerUnit / m.Cal.SlowestCPU()
	return Estimate{
		Rows: in.Rows * selectivity,
		Res:  in.Res.Add(Resources{CPU: cpu}),
	}
}

// RehashCost estimates a network re-partitioning of the stream.
func (m *Model) RehashCost(in Estimate, avgBytes float64) Estimate {
	// (Nodes-1)/Nodes of tuples leave their node.
	frac := float64(m.Nodes-1) / float64(m.Nodes)
	net := m.perNode(in.Rows*avgBytes*frac) / m.Cal.NetBytesPerUnit
	return Estimate{Rows: in.Rows, Res: in.Res.Add(Resources{Net: net})}
}

// JoinCost estimates a pipelined hash join of two inputs with the given
// match productivity (output rows per input-pair bucket probe).
func (m *Model) JoinCost(l, r Estimate, outRows float64) Estimate {
	cpu := m.perNode(l.Rows+r.Rows+outRows) / m.Cal.CPUTuplesPerUnit / m.Cal.SlowestCPU()
	// Both inputs execute concurrently: overlap their resource vectors.
	combined := Resources{
		CPU:  l.Res.CPU + r.Res.CPU + cpu,
		Disk: l.Res.Disk + r.Res.Disk,
		Net:  l.Res.Net + r.Res.Net,
	}
	return Estimate{Rows: outRows, Res: combined}
}

// GroupByCost estimates hash aggregation into the given group count.
func (m *Model) GroupByCost(in Estimate, groups float64) Estimate {
	cpu := m.perNode(in.Rows) / m.Cal.CPUTuplesPerUnit / m.Cal.SlowestCPU()
	return Estimate{Rows: groups, Res: in.Res.Add(Resources{CPU: cpu})}
}

// PredInfo describes one predicate/UDF for rank ordering (§5.1).
type PredInfo struct {
	Name         string
	CostPerTuple float64
	Selectivity  float64
}

// rank is cost / (1 − selectivity); see catalog.FuncDef.Rank.
func (p PredInfo) rank() float64 {
	drop := 1 - p.Selectivity
	if drop <= 0 {
		return p.CostPerTuple * 1e6
	}
	return p.CostPerTuple / drop
}

// OrderPredicates returns the evaluation order minimizing expected cost:
// ascending rank, the predicate-migration result the optimizer builds on
// (§5.1). The returned slice holds indexes into preds.
func OrderPredicates(preds []PredInfo) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return preds[idx[a]].rank() < preds[idx[b]].rank()
	})
	return idx
}

// PreAggDecision reports whether pushing a combiner-style pre-aggregation
// below the rehash pays off (§5.2): it does when the expected group count
// per node is smaller than the input rows per node (data actually
// collapses), and the aggregate is composable.
func (m *Model) PreAggDecision(inRows, distinctKeys float64, composable bool) bool {
	if !composable || inRows <= 0 {
		return false
	}
	perNodeRows := inRows / float64(m.Nodes)
	// Each node sees at most distinctKeys groups; pre-aggregation removes
	// (perNodeRows - distinctKeys) tuples from the wire per node.
	return distinctKeys < perNodeRows*0.8
}

// RecursiveEstimate implements §5.3: simulate strata, capping each
// stratum's input at the previous stratum's (convergence assumption) and
// capping runaway growth caused by bad hints. Returns total estimated
// resources and the number of strata simulated.
func (m *Model) RecursiveEstimate(base Estimate, perStratum func(in Estimate) Estimate, maxStrata int) (Estimate, int) {
	total := base.Res
	in := base
	strata := 0
	for s := 0; s < maxStrata; s++ {
		out := perStratum(in)
		// Monotone caps: cardinality and cost may not exceed the
		// previous stratum's (§5.3 divergence guard).
		if out.Rows > in.Rows {
			out.Rows = in.Rows
		}
		if rt := out.Res.Runtime(); rt > in.Res.Runtime() && s > 0 {
			out.Res = in.Res
		}
		total = total.Add(out.Res)
		strata++
		if out.Rows < 0.5 {
			break
		}
		in = out
	}
	return Estimate{Rows: in.Rows, Res: total}, strata
}
