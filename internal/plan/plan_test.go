package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/rex-data/rex/internal/catalog"
)

func model(nodes int) *Model {
	return NewModel(catalog.DefaultCalibration(), nodes)
}

func TestResourceOverlap(t *testing.T) {
	a := Resources{CPU: 10, Disk: 2}
	b := Resources{Net: 8, CPU: 1}
	// Sequential: components add.
	if got := a.Add(b); got.CPU != 11 || got.Net != 8 || got.Disk != 2 {
		t.Fatalf("Add = %+v", got)
	}
	// Runtime is the bottleneck resource, not the sum.
	if a.Runtime() != 10 {
		t.Fatalf("runtime = %v", a.Runtime())
	}
	// Disjoint resources overlap almost fully.
	cpuOnly := Resources{CPU: 10}
	netOnly := Resources{Net: 10}
	if got := ParallelRuntime(cpuOnly, netOnly); got != 10 {
		t.Fatalf("disjoint parallel runtime = %v, want 10", got)
	}
	// Contended resources add.
	if got := ParallelRuntime(cpuOnly, cpuOnly); got != 20 {
		t.Fatalf("contended parallel runtime = %v, want 20", got)
	}
}

func TestScanAndFilterEstimates(t *testing.T) {
	m := model(4)
	scan := m.ScanCost(1e6, 32)
	if scan.Rows != 1e6 || scan.Res.Disk <= 0 {
		t.Fatalf("scan = %+v", scan)
	}
	f := m.FilterCost(scan, 1, 0.1)
	if f.Rows != 1e5 {
		t.Fatalf("filter rows = %v", f.Rows)
	}
	if f.Res.CPU <= scan.Res.CPU {
		t.Fatal("filter must add CPU")
	}
	r := m.RehashCost(f, 16)
	if r.Res.Net <= 0 {
		t.Fatal("rehash must add network")
	}
	// More nodes → less per-node work → shorter runtime.
	m2 := model(16)
	if m2.ScanCost(1e6, 32).Runtime() >= scan.Runtime() {
		t.Fatal("scaling out must reduce scan runtime")
	}
}

func TestOrderPredicatesByRank(t *testing.T) {
	preds := []PredInfo{
		{Name: "expensiveUDF", CostPerTuple: 100, Selectivity: 0.5},
		{Name: "cheapSelective", CostPerTuple: 1, Selectivity: 0.01},
		{Name: "nonFiltering", CostPerTuple: 5, Selectivity: 1.0},
		{Name: "midCost", CostPerTuple: 10, Selectivity: 0.2},
	}
	order := OrderPredicates(preds)
	names := make([]string, len(order))
	for i, idx := range order {
		names[i] = preds[idx].Name
	}
	want := []string{"cheapSelective", "midCost", "expensiveUDF", "nonFiltering"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}

// Property: OrderPredicates yields non-decreasing rank.
func TestOrderPredicatesProperty(t *testing.T) {
	f := func(costs []float64) bool {
		preds := make([]PredInfo, 0, len(costs))
		for i, c := range costs {
			if c < 0 {
				c = -c
			}
			preds = append(preds, PredInfo{
				CostPerTuple: c + 0.001,
				Selectivity:  float64(i%10) / 10,
			})
		}
		order := OrderPredicates(preds)
		for i := 1; i < len(order); i++ {
			if preds[order[i-1]].rank() > preds[order[i]].rank() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPreAggDecision(t *testing.T) {
	m := model(4)
	// Many rows, few groups: push.
	if !m.PreAggDecision(1e6, 100, true) {
		t.Fatal("collapsing aggregation must push pre-agg")
	}
	// Nearly distinct keys: don't bother.
	if m.PreAggDecision(1e6, 9e5, true) {
		t.Fatal("non-collapsing aggregation must not pre-agg")
	}
	// Non-composable never pushes below arbitrary operators.
	if m.PreAggDecision(1e6, 100, false) {
		t.Fatal("non-composable must not pre-agg")
	}
}

func TestRecursiveEstimateConverges(t *testing.T) {
	m := model(4)
	base := Estimate{Rows: 1000, Res: Resources{CPU: 1}}
	// Each stratum touches 60% of the previous one.
	est, strata := m.RecursiveEstimate(base, func(in Estimate) Estimate {
		return Estimate{Rows: in.Rows * 0.6, Res: Resources{CPU: in.Res.CPU * 0.6}}
	}, 100)
	if strata < 5 || strata > 30 {
		t.Fatalf("strata = %d", strata)
	}
	// Geometric series: total ≈ base / (1-0.6) = 2.5 CPU units.
	if est.Res.CPU < 2 || est.Res.CPU > 3 {
		t.Fatalf("total CPU = %v", est.Res.CPU)
	}
}

func TestRecursiveEstimateCapsDivergence(t *testing.T) {
	m := model(2)
	base := Estimate{Rows: 100, Res: Resources{CPU: 1}}
	// A hostile hint doubles cardinality every stratum; the §5.3 cap must
	// keep the estimate bounded by maxStrata × base.
	est, strata := m.RecursiveEstimate(base, func(in Estimate) Estimate {
		return Estimate{Rows: in.Rows * 2, Res: Resources{CPU: in.Res.CPU * 2}}
	}, 10)
	if strata != 10 {
		t.Fatalf("strata = %d", strata)
	}
	if est.Rows > base.Rows {
		t.Fatalf("cardinality must be capped: %v", est.Rows)
	}
	if est.Res.CPU > 21 {
		t.Fatalf("cost must be capped near linear growth: %v", est.Res.CPU)
	}
}

func TestJoinEnumerationPicksSelectiveOrder(t *testing.T) {
	m := model(4)
	e := &Enumerator{
		Model: m,
		Rels: []JoinRel{
			{Name: "big", Rows: 1e6, AvgBytes: 32},
			{Name: "mid", Rows: 1e4, AvgBytes: 32},
			{Name: "small", Rows: 10, AvgBytes: 32},
		},
		Edges: []JoinGraphEdge{
			{A: 0, B: 1, Selectivity: 1e-6},
			{A: 1, B: 2, Selectivity: 1e-4},
		},
	}
	est, tree := e.BestOrder()
	if est.Runtime() <= 0 {
		t.Fatal("estimate must be positive")
	}
	// The chosen tree must join along graph edges (no cross product of
	// big × small).
	if !strings.Contains(tree, "⋈") {
		t.Fatalf("tree = %q", tree)
	}
	if strings.Contains(tree, "(big ⋈ small)") || strings.Contains(tree, "(small ⋈ big)") {
		t.Fatalf("picked cross product: %s", tree)
	}
}

func TestJoinEnumerationSingle(t *testing.T) {
	e := &Enumerator{Model: model(2), Rels: []JoinRel{{Name: "t", Rows: 100, AvgBytes: 8}}}
	est, tree := e.BestOrder()
	if tree != "t" || est.Rows != 100 {
		t.Fatalf("single rel: %v %q", est, tree)
	}
	empty := &Enumerator{Model: model(2)}
	if _, tree := empty.BestOrder(); tree != "" {
		t.Fatal("empty enumeration")
	}
}
