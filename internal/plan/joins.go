package plan

import (
	"math"
	"sort"
)

// JoinRel describes one relation participating in join enumeration.
type JoinRel struct {
	Name     string
	Rows     float64
	AvgBytes float64
}

// JoinGraphEdge is an equi-join predicate between two relations with its
// estimated selectivity.
type JoinGraphEdge struct {
	A, B        int // indexes into the relation list
	Selectivity float64
}

// memoKey identifies a relation subset in the memo (bitmask ≤ 16 rels).
type memoKey uint32

type memoEntry struct {
	cost Estimate
	// left/right record the winning split for plan extraction.
	left, right memoKey
}

// Enumerator performs the top-down plan enumeration with memoization and
// branch-and-bound pruning of §5 (in the style of Volcano/Cascades [10]).
type Enumerator struct {
	Model *Model
	Rels  []JoinRel
	Edges []JoinGraphEdge

	memo map[memoKey]memoEntry
	// bound is the branch-and-bound incumbent: subplans costing more are
	// pruned.
	bound float64
}

// BestOrder returns the estimated cost of the best join order over all
// relations and the bushy join tree rendered as a nested string (for
// EXPLAIN and tests).
func (e *Enumerator) BestOrder() (Estimate, string) {
	n := len(e.Rels)
	if n == 0 {
		return Estimate{}, ""
	}
	if n > 16 {
		n = 16 // the memo key is a 16-bit mask; larger FROM lists fall back to greedy prefixes
	}
	e.memo = map[memoKey]memoEntry{}
	all := memoKey(1<<n) - 1
	e.bound = math.Inf(1)
	best := e.search(all)
	e.bound = best.Runtime()
	return best, e.render(all)
}

func (e *Enumerator) search(s memoKey) Estimate {
	if ent, ok := e.memo[s]; ok {
		return ent.cost
	}
	if bits(s) == 1 {
		i := trailing(s)
		est := e.Model.ScanCost(e.Rels[i].Rows, e.Rels[i].AvgBytes)
		e.memo[s] = memoEntry{cost: est}
		return est
	}
	best := Estimate{Res: Resources{CPU: math.Inf(1)}}
	bestEntry := memoEntry{cost: best}
	// Enumerate proper subsets as left sides (top-down splitting).
	for l := (s - 1) & s; l > 0; l = (l - 1) & s {
		r := s &^ l
		if l > r {
			continue // each split once
		}
		if !e.connected(l, r) {
			continue
		}
		lc := e.search(l)
		if lc.Runtime() >= best.Runtime() {
			continue // branch-and-bound prune
		}
		rc := e.search(r)
		sel := e.crossSelectivity(l, r)
		outRows := lc.Rows * rc.Rows * sel
		joined := e.Model.JoinCost(lc, rc, outRows)
		if joined.Runtime() < best.Runtime() {
			best = joined
			bestEntry = memoEntry{cost: joined, left: l, right: r}
		}
	}
	e.memo[s] = bestEntry
	return best
}

// connected reports whether any join edge links the two subsets (avoids
// cross products unless unavoidable).
func (e *Enumerator) connected(l, r memoKey) bool {
	if len(e.Edges) == 0 {
		return true
	}
	for _, ed := range e.Edges {
		am := memoKey(1) << ed.A
		bm := memoKey(1) << ed.B
		if (l&am != 0 && r&bm != 0) || (l&bm != 0 && r&am != 0) {
			return true
		}
	}
	return false
}

func (e *Enumerator) crossSelectivity(l, r memoKey) float64 {
	sel := 1.0
	found := false
	for _, ed := range e.Edges {
		am := memoKey(1) << ed.A
		bm := memoKey(1) << ed.B
		if (l&am != 0 && r&bm != 0) || (l&bm != 0 && r&am != 0) {
			sel *= ed.Selectivity
			found = true
		}
	}
	if !found {
		return 1.0 // cross product
	}
	return sel
}

func (e *Enumerator) render(s memoKey) string {
	ent := e.memo[s]
	if bits(s) == 1 {
		return e.Rels[trailing(s)].Name
	}
	if ent.left == 0 && ent.right == 0 {
		// unreachable split (disconnected); render members
		names := []string{}
		for i := range e.Rels {
			if s&(1<<i) != 0 {
				names = append(names, e.Rels[i].Name)
			}
		}
		sort.Strings(names)
		out := ""
		for i, n := range names {
			if i > 0 {
				out += " x "
			}
			out += n
		}
		return out
	}
	return "(" + e.render(ent.left) + " ⋈ " + e.render(ent.right) + ")"
}

func bits(s memoKey) int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

func trailing(s memoKey) int {
	n := 0
	for s&1 == 0 {
		s >>= 1
		n++
	}
	return n
}
