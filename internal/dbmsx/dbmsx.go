// Package dbmsx is the stand-in for the commercial "DBMS X" of §6.4: a
// single-node engine evaluating recursive SQL with accumulate-only
// semantics. Recursive SQL derives each iteration's working table from the
// previous one and appends it to the accumulated result — it cannot revise
// tuples in place (§1: "recursive SQL accumulates state and does not allow
// it to be incrementally updated and replaced"). That accumulation, plus
// per-iteration re-aggregation over the full working table, is exactly the
// inefficiency the REX comparison measures.
package dbmsx

import (
	"fmt"
	"time"

	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

// Row is one tuple of the recursive CTE's accumulated table.
type Row struct {
	Iter int
	Key  int64
	Val  float64
}

// Result reports a recursive query execution.
type Result struct {
	// Accumulated is every row of every iteration — the recursive CTE's
	// union, retained to the end as a DBMS must.
	Accumulated []Row
	Final       map[int64]float64
	Iterations  int
	PerIter     []time.Duration
	Duration    time.Duration
	// PeakRows is the accumulated table's final size, demonstrating the
	// state growth REX's refinement avoids.
	PeakRows int
}

// Engine is the single-node recursive-SQL evaluator.
type Engine struct{}

// New creates the engine.
func New() *Engine { return &Engine{} }

// PageRank evaluates the recursive-SQL formulation of PageRank for a
// fixed number of iterations: the working table W_i holds (node, pr) for
// iteration i, derived by joining W_{i-1} with the edge table and
// re-aggregating over every vertex; every W_i is appended to the
// accumulated result.
//
// The evaluation deliberately pays real query-engine costs — boxed tuple
// values, per-iteration hash-table builds for the join (recursive SQL
// carries no operator state between steps), hash aggregation, and
// materialization of every iteration's rows — so the comparison against
// REX measures execution strategy, not implementation shortcuts.
func (e *Engine) PageRank(g *datagen.Graph, iters int) (*Result, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("dbmsx: iterations must be positive")
	}
	start := time.Now()
	res := &Result{Final: map[int64]float64{}}

	// Base tables as boxed tuples, like any row store.
	edges := g.Edges
	working := make([]types.Tuple, 0, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		working = append(working, types.NewTuple(int64(v), 1.0))
	}
	accumulate := func(it int, rows []types.Tuple) {
		for _, t := range rows {
			k, _ := types.AsInt(t[0])
			v, _ := types.AsFloat(t[1])
			res.Accumulated = append(res.Accumulated, Row{Iter: it, Key: k, Val: v})
		}
	}
	accumulate(0, working)

	for it := 1; it <= iters; it++ {
		iterStart := time.Now()
		// Hash join W ⋈ edges on node: build side rebuilt from scratch
		// every recursive step.
		build := make(map[types.Value]float64, len(working))
		outdeg := make(map[types.Value]float64, len(working))
		for _, t := range working {
			pr, _ := types.AsFloat(t[1])
			build[t[0]] = pr
		}
		for _, e := range edges {
			outdeg[e[0]]++
		}
		// Probe edges, emit contributions, hash-aggregate by target.
		sums := make(map[types.Value]float64, len(working))
		for _, e := range edges {
			pr, ok := build[e[0]]
			if !ok {
				continue
			}
			sums[e[1]] += pr / outdeg[e[0]]
		}
		next := make([]types.Tuple, 0, len(working))
		for _, t := range working {
			next = append(next, types.NewTuple(t[0], 0.15+0.85*sums[t[0]]))
		}
		// Accumulate: recursive SQL keeps every iteration's rows.
		accumulate(it, next)
		working = next
		res.PerIter = append(res.PerIter, time.Since(iterStart))
		res.Iterations = it
	}
	for _, t := range working {
		k, _ := types.AsInt(t[0])
		res.Final[k], _ = types.AsFloat(t[1])
	}
	res.PeakRows = len(res.Accumulated)
	res.Duration = time.Since(start)
	return res, nil
}

// ShortestPath evaluates recursive-SQL shortest path: each iteration
// derives new (node, dist) facts from the previous iteration's facts and
// appends them; the final answer needs a group-by min over the entire
// accumulated table.
func (e *Engine) ShortestPath(g *datagen.Graph, source int64, maxIters int) (*Result, error) {
	start := time.Now()
	adj := g.Adjacency()
	res := &Result{Final: map[int64]float64{}}
	working := []Row{{Iter: 0, Key: source, Val: 0}}
	res.Accumulated = append(res.Accumulated, working...)
	best := map[int64]float64{source: 0}

	for it := 1; it <= maxIters && len(working) > 0; it++ {
		iterStart := time.Now()
		var next []Row
		seen := map[int64]bool{}
		for _, r := range working {
			for _, u := range adj[r.Key] {
				d := r.Val + 1
				// Set-semantics duplicate elimination against the
				// accumulated table (the fixpoint check recursive SQL
				// performs); already-known-better facts still get
				// derived and discarded, and surviving facts accumulate.
				if cur, ok := best[int64(u)]; ok && cur <= d {
					continue
				}
				if seen[int64(u)] {
					continue
				}
				seen[int64(u)] = true
				best[int64(u)] = d
				next = append(next, Row{Iter: it, Key: int64(u), Val: d})
			}
		}
		res.Accumulated = append(res.Accumulated, next...)
		working = next
		res.PerIter = append(res.PerIter, time.Since(iterStart))
		res.Iterations = it
	}
	for k, v := range best {
		res.Final[k] = v
	}
	res.PeakRows = len(res.Accumulated)
	res.Duration = time.Since(start)
	return res, nil
}
