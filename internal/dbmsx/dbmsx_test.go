package dbmsx

import (
	"math"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
)

func TestPageRankMatchesReference(t *testing.T) {
	g := datagen.DBPediaGraph(200, 5)
	want, iters := algos.PageRankRef(g, 1e-9, 25)
	res, err := New().PageRank(g, iters)
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		if math.Abs(res.Final[int64(v)]-w) > 1e-6 {
			t.Fatalf("pr[%d] = %v, want %v", v, res.Final[int64(v)], w)
		}
	}
	// Accumulation: the table must hold every iteration's rows.
	if res.PeakRows != (iters+1)*g.NumVertices {
		t.Fatalf("accumulated rows = %d, want %d", res.PeakRows, (iters+1)*g.NumVertices)
	}
	if len(res.PerIter) != iters {
		t.Fatalf("per-iteration timings = %d", len(res.PerIter))
	}
}

func TestPageRankRejectsBadIters(t *testing.T) {
	if _, err := New().PageRank(datagen.DBPediaGraph(10, 1), 0); err == nil {
		t.Fatal("zero iterations must fail")
	}
}

func TestShortestPathMatchesBFS(t *testing.T) {
	g := datagen.DBPediaGraph(300, 9)
	want := algos.BFSRef(g, 0)
	res, err := New().ShortestPath(g, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for v, d := range want {
		if d < 0 {
			continue
		}
		reachable++
		if res.Final[int64(v)] != float64(d) {
			t.Fatalf("dist[%d] = %v, want %d", v, res.Final[int64(v)], d)
		}
	}
	if len(res.Final) != reachable {
		t.Fatalf("reached %d, want %d", len(res.Final), reachable)
	}
	if res.PeakRows < reachable {
		t.Fatal("accumulated table must retain all derivations")
	}
}
