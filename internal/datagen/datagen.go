// Package datagen generates the synthetic stand-ins for the paper's four
// datasets (§6 "Data"): a DBPedia-like article-link graph, a Twitter-like
// follower graph, DBPedia geographic coordinates (with the paper's ×1000
// enlargement trick), and a TPC-H lineitem table. All generators are
// deterministic given a seed.
//
// Substitution rationale (see DESIGN.md §3): the delta-iteration behaviour
// REX exploits is governed by degree distribution, diameter, and cluster
// structure — which these generators reproduce — not by the raw scale of
// the authors' testbed datasets.
package datagen

import (
	"math"
	"math/rand"

	"github.com/rex-data/rex/internal/types"
)

// Graph is an edge list with vertex count metadata.
type Graph struct {
	NumVertices int
	// Edges are (src, dst) tuples of int64 vertex ids.
	Edges []types.Tuple
}

// OutDegrees computes the out-degree of every vertex.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, g.NumVertices)
	for _, e := range g.Edges {
		src, _ := types.AsInt(e[0])
		deg[src]++
	}
	return deg
}

// Adjacency builds an out-adjacency list.
func (g *Graph) Adjacency() [][]int32 {
	adj := make([][]int32, g.NumVertices)
	for _, e := range g.Edges {
		src, _ := types.AsInt(e[0])
		dst, _ := types.AsInt(e[1])
		adj[src] = append(adj[src], int32(dst))
	}
	return adj
}

// DBPediaGraph approximates the DBPedia article-link graph: a directed
// graph with Zipf-distributed out-degrees (articles link a handful of
// others; a few hubs link hundreds), average degree ≈ 14.5 like the
// paper's 48M edges / 3.3M vertices, and a weakly connected backbone so
// shortest-path experiments have a large reachable set and a sizeable
// diameter.
func DBPediaGraph(vertices int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := &Graph{NumVertices: vertices}
	zipf := rand.NewZipf(r, 1.3, 2.0, 120)
	for v := 0; v < vertices; v++ {
		// Backbone edge keeps the graph connected with diameter ~O(n/k).
		g.addEdge(v, (v+1+r.Intn(4))%vertices)
		deg := int(zipf.Uint64()) + 1
		for i := 0; i < deg; i++ {
			// Preferential-ish attachment: half the links go to low ids
			// (old, popular articles), half uniformly.
			var dst int
			if r.Intn(2) == 0 {
				dst = int(math.Sqrt(r.Float64()*float64(vertices)*float64(vertices))) % vertices
			} else {
				dst = r.Intn(vertices)
			}
			if dst != v {
				g.addEdge(v, dst)
			}
		}
	}
	return g
}

// TwitterGraph approximates the Twitter follower graph: much heavier tail
// (celebrity hubs collect a large share of all edges) and higher average
// degree (the paper's dataset has 1.4B edges over 41M users ≈ 34/vertex).
func TwitterGraph(vertices int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := &Graph{NumVertices: vertices}
	// Hub set: ~0.1% of vertices receive ~40% of edges.
	hubs := max(1, vertices/1000)
	zipf := rand.NewZipf(r, 1.2, 1.5, 400)
	for v := 0; v < vertices; v++ {
		g.addEdge(v, (v+1)%vertices) // connectivity backbone
		deg := int(zipf.Uint64()) + 2
		for i := 0; i < deg; i++ {
			var dst int
			if r.Intn(5) < 2 {
				dst = r.Intn(hubs)
			} else {
				dst = r.Intn(vertices)
			}
			if dst != v {
				g.addEdge(v, dst)
			}
		}
	}
	return g
}

func (g *Graph) addEdge(src, dst int) {
	g.Edges = append(g.Edges, types.NewTuple(int64(src), int64(dst)))
}

// GeoPoints generates two-dimensional coordinates clustered around a set
// of Gaussian centers — the structure of the DBPedia geographic dataset.
// enlarge replicates each base point (enlarge−1) extra times with jitter,
// the paper's trick for scaling 328K points up to 382M tuples.
// Tuples are (pointId, lng, lat) keyed by pointId.
func GeoPoints(basePoints, centers, enlarge int, seed int64) []types.Tuple {
	if enlarge < 1 {
		enlarge = 1
	}
	r := rand.New(rand.NewSource(seed))
	cx := make([]float64, centers)
	cy := make([]float64, centers)
	for i := range cx {
		cx[i] = r.Float64()*360 - 180
		cy[i] = r.Float64()*170 - 85
	}
	out := make([]types.Tuple, 0, basePoints*enlarge)
	id := int64(0)
	for i := 0; i < basePoints; i++ {
		c := r.Intn(centers)
		x := cx[c] + r.NormFloat64()*5
		y := cy[c] + r.NormFloat64()*5
		for e := 0; e < enlarge; e++ {
			jx, jy := 0.0, 0.0
			if e > 0 {
				jx = r.NormFloat64() * 0.1
				jy = r.NormFloat64() * 0.1
			}
			out = append(out, types.NewTuple(id, x+jx, y+jy))
			id++
		}
	}
	return out
}

// LineItemSchema is the subset of TPC-H lineitem the Fig. 4 query touches.
var LineItemSchema = []string{
	"orderkey:Integer", "linenumber:Integer", "quantity:Double",
	"extendedprice:Double", "discount:Double", "tax:Double",
	"returnflag:String", "shipmode:String",
}

// LineItems generates TPC-H-like lineitem rows: every order has 1..7 line
// numbers, tax in [0, 0.08], prices log-normal-ish — the value
// distributions the Fig. 4 aggregation exercises.
func LineItems(rows int, seed int64) []types.Tuple {
	r := rand.New(rand.NewSource(seed))
	flags := []string{"A", "N", "R"}
	modes := []string{"AIR", "SHIP", "TRUCK", "RAIL", "MAIL"}
	out := make([]types.Tuple, 0, rows)
	order := int64(1)
	for len(out) < rows {
		lines := r.Intn(7) + 1
		for ln := 1; ln <= lines && len(out) < rows; ln++ {
			qty := float64(r.Intn(50) + 1)
			price := qty * (900 + r.Float64()*100)
			out = append(out, types.NewTuple(
				order, int64(ln), qty, price,
				math.Round(r.Float64()*10)/100,
				math.Round(r.Float64()*8)/100,
				flags[r.Intn(len(flags))],
				modes[r.Intn(len(modes))],
			))
		}
		order++
	}
	return out
}
