package datagen

import (
	"testing"

	"github.com/rex-data/rex/internal/types"
)

func TestDBPediaGraphShape(t *testing.T) {
	g := DBPediaGraph(1000, 1)
	if g.NumVertices != 1000 {
		t.Fatal("vertex count")
	}
	avg := float64(len(g.Edges)) / float64(g.NumVertices)
	if avg < 2 || avg > 40 {
		t.Fatalf("average degree %v out of plausible range", avg)
	}
	// Power-law-ish: max degree far above average.
	deg := g.OutDegrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 {
			t.Fatal("backbone guarantees out-degree ≥ 1")
		}
	}
	if float64(maxDeg) < 3*avg {
		t.Fatalf("expected heavy tail: max=%d avg=%v", maxDeg, avg)
	}
	// Determinism.
	g2 := DBPediaGraph(1000, 1)
	if len(g2.Edges) != len(g.Edges) || !g2.Edges[17].Equal(g.Edges[17]) {
		t.Fatal("generator must be deterministic")
	}
}

func TestTwitterGraphHubbier(t *testing.T) {
	d := DBPediaGraph(2000, 2)
	tw := TwitterGraph(2000, 2)
	maxIn := func(g *Graph) int {
		in := make([]int, g.NumVertices)
		for _, e := range g.Edges {
			dst, _ := types.AsInt(e[1])
			in[dst]++
		}
		m := 0
		for _, v := range in {
			if v > m {
				m = v
			}
		}
		return m
	}
	// Twitter-like graphs concentrate in-degree on hubs much more.
	if maxIn(tw) <= maxIn(d) {
		t.Fatalf("twitter max in-degree %d should exceed dbpedia %d", maxIn(tw), maxIn(d))
	}
}

func TestGeoPointsEnlarge(t *testing.T) {
	base := GeoPoints(100, 4, 1, 3)
	if len(base) != 100 {
		t.Fatal("base size")
	}
	big := GeoPoints(100, 4, 10, 3)
	if len(big) != 1000 {
		t.Fatal("enlarged size")
	}
	// ids unique
	seen := map[int64]bool{}
	for _, p := range big {
		id, _ := types.AsInt(p[0])
		if seen[id] {
			t.Fatal("duplicate point id")
		}
		seen[id] = true
	}
}

func TestLineItems(t *testing.T) {
	rows := LineItems(500, 4)
	if len(rows) != 500 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		ln, _ := types.AsInt(r[1])
		if ln < 1 || ln > 7 {
			t.Fatalf("linenumber %d", ln)
		}
		tax, _ := types.AsFloat(r[5])
		if tax < 0 || tax > 0.08 {
			t.Fatalf("tax %v", tax)
		}
	}
	if len(LineItemSchema) != len(rows[0]) {
		t.Fatal("schema width mismatch")
	}
}
