package cluster

// Wire-codec microbenchmarks: encode/decode round trips of the same delta
// stream through the dictionary row codec and the columnar batch codec
// (whose decode aliases the frame and materializes lazily). Compare B/op
// and allocs/op between the Row/Columnar pairs; CI's bench-micro step
// uploads the output.

import (
	"testing"

	"github.com/rex-data/rex/internal/types"
)

func codecStream(n int) []types.Delta {
	ds := make([]types.Delta, n)
	for i := range ds {
		op := types.OpUpdate
		if i%5 == 0 {
			op = types.OpInsert
		}
		ds[i] = types.Delta{Op: op, Tup: types.NewTuple(int64(i%997), float64(i%31))}
	}
	return ds
}

func BenchmarkEncodeRow(b *testing.B) {
	rows := codecStream(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := EncodeDeltas(rows)
		if len(payload) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkEncodeColumnar(b *testing.B) {
	cb, ok := types.FromDeltas(codecStream(4096))
	if !ok {
		b.Fatal("stream not batchable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetPayloadBuf()
		payload := EncodeDeltaBatch(buf, cb)
		if len(payload) == 0 {
			b.Fatal("empty payload")
		}
		PutPayloadBuf(payload)
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	payload := EncodeDeltas(codecStream(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := DecodeDeltas(payload)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4096 {
			b.Fatal("short decode")
		}
	}
}

// BenchmarkDecodeColumnar is the near-zero-copy path: the decode parses
// the O(columns) header and aliases the payload without touching rows.
func BenchmarkDecodeColumnar(b *testing.B) {
	cb, ok := types.FromDeltas(codecStream(4096))
	if !ok {
		b.Fatal("stream not batchable")
	}
	payload := EncodeDeltaBatch(nil, cb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, dec, err := DecodeDeltasAny(payload)
		if err != nil {
			b.Fatal(err)
		}
		if dec == nil || dec.Len() != 4096 {
			b.Fatal("short decode")
		}
	}
}

// BenchmarkDecodeColumnarHashRoute adds the typical consumer work on top
// of the aliasing decode: hashing every row's key column, as the rehash
// operator does, without materializing tuples.
func BenchmarkDecodeColumnarHashRoute(b *testing.B) {
	cb, ok := types.FromDeltas(codecStream(4096))
	if !ok {
		b.Fatal("stream not batchable")
	}
	payload := EncodeDeltaBatch(nil, cb)
	key := []int{0}
	scratch := make(types.Tuple, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		_, dec, err := DecodeDeltasAny(payload)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < dec.Len(); j++ {
			sum ^= dec.HashKeyAt(j, key, scratch)
		}
	}
	if sum == 42 {
		b.Log(sum) // keep the loop observable
	}
}
